type t =
  | Element of string * (string * string) list * t list
  | Text of string

exception Parse_error of string

let element ?(attrs = []) name children = Element (name, attrs, children)
let text s = Text s
let leaf name value = Element (name, [], [ Text value ])

let name = function Element (n, _, _) -> Some n | Text _ -> None
let children = function Element (_, _, c) -> c | Text _ -> []

let child_elements node =
  List.filter (function Element _ -> true | Text _ -> false) (children node)

let rec text_content = function
  | Text s -> s
  | Element (_, _, c) -> String.concat "" (List.map text_content c)

let find_children node wanted =
  List.filter
    (function Element (n, _, _) -> String.equal n wanted | Text _ -> false)
    (children node)

let find_child node wanted =
  match find_children node wanted with [] -> None | first :: _ -> Some first

let sorted_attrs attrs = List.sort (fun (a, _) (b, _) -> String.compare a b) attrs

let rec equal a b =
  match (a, b) with
  | Text s, Text s' -> String.equal s s'
  | Element (n, attrs, c), Element (n', attrs', c') ->
      String.equal n n'
      && List.equal
           (fun (k, v) (k', v') -> String.equal k k' && String.equal v v')
           (sorted_attrs attrs) (sorted_attrs attrs')
      && List.equal equal c c'
  | Text _, Element _ | Element _, Text _ -> false

let rec canonical_compare a b =
  match (a, b) with
  | Text s, Text s' -> String.compare s s'
  | Text _, Element _ -> -1
  | Element _, Text _ -> 1
  | Element (n, attrs, c), Element (n', attrs', c') ->
      let by_name = String.compare n n' in
      if by_name <> 0 then by_name
      else
        let by_attrs = compare (sorted_attrs attrs) (sorted_attrs attrs') in
        if by_attrs <> 0 then by_attrs
        else
          (* Children as multisets: sort both sides by this same order. *)
          let sort l = List.sort canonical_compare_memo l in
          compare_lists (sort c) (sort c')

and canonical_compare_memo a b = canonical_compare a b

and compare_lists l l' =
  match (l, l') with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: rest, x' :: rest' ->
      let c = canonical_compare x x' in
      if c <> 0 then c else compare_lists rest rest'

let escape s =
  let buffer = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buffer "&lt;"
      | '>' -> Buffer.add_string buffer "&gt;"
      | '&' -> Buffer.add_string buffer "&amp;"
      | '"' -> Buffer.add_string buffer "&quot;"
      | '\'' -> Buffer.add_string buffer "&apos;"
      | _ -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let to_string ?(indent = false) node =
  let buffer = Buffer.create 256 in
  let add_attrs attrs =
    List.iter
      (fun (k, v) -> Buffer.add_string buffer (Printf.sprintf " %s=\"%s\"" k (escape v)))
      attrs
  in
  let rec render depth node =
    let pad () = if indent then Buffer.add_string buffer (String.make (2 * depth) ' ') in
    match node with
    | Text s ->
        pad ();
        Buffer.add_string buffer (escape s);
        if indent then Buffer.add_char buffer '\n'
    | Element (n, attrs, []) ->
        pad ();
        Buffer.add_char buffer '<';
        Buffer.add_string buffer n;
        add_attrs attrs;
        Buffer.add_string buffer "/>";
        if indent then Buffer.add_char buffer '\n'
    | Element (n, attrs, [ Text s ]) ->
        (* Compact form for leaves: <year>1989</year>. *)
        pad ();
        Buffer.add_char buffer '<';
        Buffer.add_string buffer n;
        add_attrs attrs;
        Buffer.add_char buffer '>';
        Buffer.add_string buffer (escape s);
        Buffer.add_string buffer "</";
        Buffer.add_string buffer n;
        Buffer.add_char buffer '>';
        if indent then Buffer.add_char buffer '\n'
    | Element (n, attrs, c) ->
        pad ();
        Buffer.add_char buffer '<';
        Buffer.add_string buffer n;
        add_attrs attrs;
        Buffer.add_char buffer '>';
        if indent then Buffer.add_char buffer '\n';
        List.iter (render (depth + 1)) c;
        pad ();
        Buffer.add_string buffer "</";
        Buffer.add_string buffer n;
        Buffer.add_char buffer '>';
        if indent then Buffer.add_char buffer '\n'
  in
  render 0 node;
  Buffer.contents buffer

let pp ppf node = Format.pp_print_string ppf (to_string ~indent:true node)

let size_bytes node = String.length (to_string node)

(* ------------------------------------------------------------------ *)
(* Parser: plain recursive descent over a cursor into the input string. *)

type cursor = { input : string; mutable pos : int }

let peek c = if c.pos < String.length c.input then Some c.input.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let rec skip_whitespace c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_whitespace c
  | Some _ | None -> ()

let looking_at c prefix =
  let len = String.length prefix in
  c.pos + len <= String.length c.input && String.sub c.input c.pos len = prefix

let expect c prefix =
  if looking_at c prefix then c.pos <- c.pos + String.length prefix
  else fail c (Printf.sprintf "expected %S" prefix)

let is_name_char ch =
  match ch with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let parse_name c =
  let start = c.pos in
  let rec scan () =
    match peek c with
    | Some ch when is_name_char ch ->
        advance c;
        scan ()
    | Some _ | None -> ()
  in
  scan ();
  if c.pos = start then fail c "expected a name";
  String.sub c.input start (c.pos - start)

let parse_entity c =
  expect c "&";
  let start = c.pos in
  let rec scan () =
    match peek c with
    | Some ';' -> String.sub c.input start (c.pos - start)
    | Some _ ->
        advance c;
        scan ()
    | None -> fail c "unterminated entity"
  in
  let entity = scan () in
  advance c;
  match entity with
  | "lt" -> '<'
  | "gt" -> '>'
  | "amp" -> '&'
  | "quot" -> '"'
  | "apos" -> '\''
  | other -> raise (Parse_error (Printf.sprintf "unknown entity &%s;" other))

let parse_quoted c =
  let quote =
    match peek c with
    | Some ('"' as q) | Some ('\'' as q) ->
        advance c;
        q
    | Some _ | None -> fail c "expected a quoted value"
  in
  let buffer = Buffer.create 16 in
  let rec scan () =
    match peek c with
    | Some ch when ch = quote -> advance c
    | Some '&' -> (
        Buffer.add_char buffer (parse_entity c);
        scan ())
    | Some ch ->
        advance c;
        Buffer.add_char buffer ch;
        scan ()
    | None -> fail c "unterminated attribute value"
  in
  scan ();
  Buffer.contents buffer

let parse_attrs c =
  let rec loop acc =
    skip_whitespace c;
    match peek c with
    | Some ch when is_name_char ch ->
        let key = parse_name c in
        skip_whitespace c;
        expect c "=";
        skip_whitespace c;
        let value = parse_quoted c in
        loop ((key, value) :: acc)
    | Some _ | None -> List.rev acc
  in
  loop []

let skip_comment c =
  expect c "<!--";
  let rec scan () =
    if looking_at c "-->" then c.pos <- c.pos + 3
    else if c.pos >= String.length c.input then fail c "unterminated comment"
    else begin
      advance c;
      scan ()
    end
  in
  scan ()

let trim_text s =
  let trimmed = String.trim s in
  if String.equal trimmed "" then None else Some trimmed

let rec parse_element c =
  expect c "<";
  let tag = parse_name c in
  let attrs = parse_attrs c in
  skip_whitespace c;
  if looking_at c "/>" then begin
    c.pos <- c.pos + 2;
    Element (tag, attrs, [])
  end
  else begin
    expect c ">";
    let children = parse_content c tag in
    Element (tag, attrs, children)
  end

and parse_content c enclosing =
  let buffer = Buffer.create 16 in
  let flush acc =
    match trim_text (Buffer.contents buffer) with
    | None ->
        Buffer.clear buffer;
        acc
    | Some s ->
        Buffer.clear buffer;
        Text s :: acc
  in
  let rec loop acc =
    if looking_at c "</" then begin
      let acc = flush acc in
      c.pos <- c.pos + 2;
      let tag = parse_name c in
      skip_whitespace c;
      expect c ">";
      if not (String.equal tag enclosing) then
        fail c (Printf.sprintf "mismatched closing tag </%s>, expected </%s>" tag enclosing);
      List.rev acc
    end
    else if looking_at c "<!--" then begin
      skip_comment c;
      loop acc
    end
    else
      match peek c with
      | Some '<' -> loop (parse_element c :: flush acc)
      | Some '&' ->
          Buffer.add_char buffer (parse_entity c);
          loop acc
      | Some ch ->
          advance c;
          Buffer.add_char buffer ch;
          loop acc
      | None -> fail c (Printf.sprintf "unterminated element <%s>" enclosing)
  in
  loop []

let skip_prolog c =
  skip_whitespace c;
  if looking_at c "<?" then begin
    let rec scan () =
      if looking_at c "?>" then c.pos <- c.pos + 2
      else if c.pos >= String.length c.input then fail c "unterminated XML declaration"
      else begin
        advance c;
        scan ()
      end
    in
    scan ()
  end;
  skip_whitespace c;
  while looking_at c "<!--" do
    skip_comment c;
    skip_whitespace c
  done

let of_string input =
  let c = { input; pos = 0 } in
  skip_prolog c;
  let root = parse_element c in
  skip_whitespace c;
  if c.pos <> String.length input then fail c "trailing content after root element";
  root

(** Minimal semi-structured XML documents.

    File descriptors in the paper (Fig. 1) are small XML trees such as
    [<article><author><first>John</first>...</article>].  This module gives
    the element tree, a parser, a printer, and the canonical ordering used to
    compare descriptors structurally. *)

type t =
  | Element of string * (string * string) list * t list
      (** [Element (name, attributes, children)]. *)
  | Text of string  (** Character data (whitespace-trimmed by the parser). *)

val element : ?attrs:(string * string) list -> string -> t list -> t
(** Convenience constructor. *)

val text : string -> t

val leaf : string -> string -> t
(** [leaf name value] is [<name>value</name>]. *)

val name : t -> string option
(** Element name; [None] for text nodes. *)

val children : t -> t list
(** Child nodes; [\[\]] for text nodes. *)

val child_elements : t -> t list
(** Child nodes that are elements. *)

val text_content : t -> string
(** Concatenated text descendants, in document order. *)

val find_child : t -> string -> t option
(** First child element with the given name. *)

val find_children : t -> string -> t list
(** All child elements with the given name, in document order. *)

val equal : t -> t -> bool
(** Structural equality (attribute order-insensitive, child order-sensitive). *)

val canonical_compare : t -> t -> int
(** A total order on documents that ignores sibling order: children are
    compared as multisets.  Two descriptors that differ only in field order
    compare equal, which is what descriptor identity requires. *)

val to_string : ?indent:bool -> t -> string
(** Serialize; [indent] pretty-prints with two-space indentation. *)

val pp : Format.formatter -> t -> unit

val size_bytes : t -> int
(** Length of the compact serialization — the unit of the paper's storage
    accounting. *)

exception Parse_error of string

val of_string : string -> t
(** Parse a single document (an optional XML declaration followed by one
    root element).  Supports elements, attributes, character data, comments
    and the five predefined entities.  @raise Parse_error on malformed
    input. *)

(** Deterministic pseudo-random number generator.

    All randomness in the project flows through this module so that every
    simulation and benchmark is bit-reproducible from a fixed seed.  The
    implementation is SplitMix64 (Steele, Lea, Flood; OOPSLA 2014), a fast
    64-bit generator with good statistical properties and trivial seeding. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator.  Two generators created with the
    same seed produce identical streams. *)

val copy : t -> t
(** [copy g] returns an independent generator whose future output equals the
    future output of [g] at the time of the copy. *)

val split : t -> t
(** [split g] derives a new generator from [g], advancing [g].  The two
    resulting streams are statistically independent; use it to give each
    subsystem its own stream without sharing state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** 62 uniformly random non-negative bits as an OCaml [int]. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range g ~lo ~hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniformly random element of a non-empty list.
    @raise Invalid_argument on an empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose_weighted : t -> ('a * float) list -> 'a
(** [choose_weighted g choices] picks one element with probability
    proportional to its weight.  Weights must be positive and the list
    non-empty.  @raise Invalid_argument otherwise. *)

let render_table ~headers ~rows =
  let arity = List.length headers in
  List.iter
    (fun row ->
      if List.length row <> arity then
        invalid_arg "Tabular.render_table: row arity mismatch")
    rows;
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell)
        row)
    rows;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let render_row row = "| " ^ String.concat " | " (List.mapi pad row) ^ " |" in
  let sep =
    "|-"
    ^ String.concat "-|-" (Array.to_list (Array.map (fun w -> String.make w '-') widths))
    ^ "-|"
  in
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (render_row headers);
  Buffer.add_char buffer '\n';
  Buffer.add_string buffer sep;
  Buffer.add_char buffer '\n';
  List.iter
    (fun row ->
      Buffer.add_string buffer (render_row row);
      Buffer.add_char buffer '\n')
    rows;
  Buffer.contents buffer

let print_table ~headers ~rows = print_string (render_table ~headers ~rows)

let bar ~width ~max_value v =
  if max_value <= 0.0 || v <= 0.0 then ""
  else
    let cells = int_of_float (Float.round (v /. max_value *. float_of_int width)) in
    String.make (Stdlib.min width (Stdlib.max 0 cells)) '#'

let render_bar_chart ~title ~unit_label entries =
  let max_value = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 entries in
  let label_width =
    List.fold_left (fun acc (l, _) -> Stdlib.max acc (String.length l)) 0 entries
  in
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (Printf.sprintf "%s (%s)\n" title unit_label);
  List.iter
    (fun (label, v) ->
      let padded = label ^ String.make (label_width - String.length label) ' ' in
      Buffer.add_string buffer
        (Printf.sprintf "  %s %10.2f  %s\n" padded v (bar ~width:40 ~max_value v)))
    entries;
  Buffer.contents buffer

let fmt_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let fmt_bytes v =
  let abs = Float.abs v in
  if abs >= 1024.0 *. 1024.0 *. 1024.0 then
    Printf.sprintf "%.2f GB" (v /. (1024.0 *. 1024.0 *. 1024.0))
  else if abs >= 1024.0 *. 1024.0 then Printf.sprintf "%.2f MB" (v /. (1024.0 *. 1024.0))
  else if abs >= 1024.0 then Printf.sprintf "%.2f KB" (v /. 1024.0)
  else Printf.sprintf "%.0f B" v

let fmt_pct ?(decimals = 1) v = Printf.sprintf "%.*f%%" decimals (v *. 100.0)

(** Streaming descriptive statistics and histograms used by the simulation
    harness to aggregate per-query metrics. *)

module Summary : sig
  type t
  (** A mutable accumulator of float observations. *)

  val create : unit -> t
  val add : t -> float -> unit
  val add_int : t -> int -> unit
  val count : t -> int
  val total : t -> float
  val mean : t -> float
  (** Mean of the observations; 0 when empty. *)

  val variance : t -> float
  (** Population variance (Welford's algorithm); 0 when empty. *)

  val stddev : t -> float
  val min : t -> float
  (** Smallest observation; [infinity] when empty. *)

  val max : t -> float
  (** Largest observation; [neg_infinity] when empty. *)

  val merge : t -> t -> t
  (** [merge a b] is a fresh summary describing the union of both streams. *)
end

module Histogram : sig
  type t
  (** Fixed-width bucket counts over [\[lo, hi)], with outliers clamped into
      the first and last buckets. *)

  val create : lo:float -> hi:float -> buckets:int -> t
  val add : t -> float -> unit
  val bucket_count : t -> int
  val bucket_range : t -> int -> float * float
  val count : t -> int -> int
  val total : t -> int
end

val percentile : float array -> float -> float
(** [percentile values p] with [p] in [\[0, 100\]]; sorts a copy, linear
    interpolation between ranks.  @raise Invalid_argument on empty input. *)

val gini : float array -> float
(** Gini coefficient of a non-negative load distribution: 0 = perfectly
    balanced, 1 = one node carries everything.  Used for the hot-spot
    analysis (Fig. 15).  Returns 0 on empty or all-zero input. *)

val linear_fit : (float * float) list -> float * float
(** [linear_fit points] is the least-squares [(slope, intercept)] of y on x.
    Used to recover power-law exponents from log-log series, mirroring the
    paper's "minimum square method" fit.  @raise Invalid_argument when fewer
    than two points are given. *)

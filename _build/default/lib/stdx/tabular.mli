(** Plain-text tables and bar charts for the benchmark harness output.

    The harness reproduces the paper's figures as text: grouped-bar figures
    (Figs. 11-14) become tables plus ASCII bars, and log-log scatter plots
    (Figs. 9, 15) become rank/value series. *)

val render_table : headers:string list -> rows:string list list -> string
(** Render an aligned table with a header separator.  Every row must have the
    same arity as [headers].  @raise Invalid_argument otherwise. *)

val print_table : headers:string list -> rows:string list list -> unit

val bar : width:int -> max_value:float -> float -> string
(** [bar ~width ~max_value v] is a proportional bar of at most [width] cells,
    e.g. ["#########"].  Negative values render empty; [max_value <= 0]
    renders empty bars. *)

val render_bar_chart :
  title:string -> unit_label:string -> (string * float) list -> string
(** A labelled horizontal ASCII bar chart, scaled to the largest value. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point rendering, default 2 decimals. *)

val fmt_bytes : float -> string
(** Human-readable byte counts (B, KB, MB, GB with 1024 steps). *)

val fmt_pct : ?decimals:int -> float -> string
(** [fmt_pct 0.37] is ["37.0%"] (fraction in, percent out). *)

module Summary = struct
  (* Welford's online algorithm: numerically stable mean/variance without
     storing the observations. *)
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable total : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; total = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let add_int t x = add t (float_of_int x)
  let count t = t.count
  let total t = t.total
  let mean t = if t.count = 0 then 0.0 else t.mean
  let variance t = if t.count = 0 then 0.0 else t.m2 /. float_of_int t.count
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max

  let merge a b =
    if a.count = 0 then { b with count = b.count }
    else if b.count = 0 then { a with count = a.count }
    else begin
      let count = a.count + b.count in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.count /. float_of_int count) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.count *. float_of_int b.count
            /. float_of_int count)
      in
      {
        count;
        mean;
        m2;
        total = a.total +. b.total;
        min = Float.min a.min b.min;
        max = Float.max a.max b.max;
      }
    end
end

module Histogram = struct
  type t = { lo : float; hi : float; counts : int array; mutable total : int }

  let create ~lo ~hi ~buckets =
    if buckets <= 0 then invalid_arg "Histogram.create: buckets must be positive";
    if hi <= lo then invalid_arg "Histogram.create: empty range";
    { lo; hi; counts = Array.make buckets 0; total = 0 }

  let bucket_count t = Array.length t.counts

  let index_of t x =
    let buckets = Array.length t.counts in
    let width = (t.hi -. t.lo) /. float_of_int buckets in
    let i = int_of_float (Float.floor ((x -. t.lo) /. width)) in
    if i < 0 then 0 else if i >= buckets then buckets - 1 else i

  let add t x =
    t.counts.(index_of t x) <- t.counts.(index_of t x) + 1;
    t.total <- t.total + 1

  let bucket_range t i =
    let buckets = Array.length t.counts in
    if i < 0 || i >= buckets then invalid_arg "Histogram.bucket_range: out of bounds";
    let width = (t.hi -. t.lo) /. float_of_int buckets in
    (t.lo +. (width *. float_of_int i), t.lo +. (width *. float_of_int (i + 1)))

  let count t i =
    if i < 0 || i >= Array.length t.counts then
      invalid_arg "Histogram.count: out of bounds";
    t.counts.(i)

  let total t = t.total
end

let percentile values p =
  let n = Array.length values in
  if n = 0 then invalid_arg "Stats.percentile: empty input";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let gini values =
  let n = Array.length values in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy values in
    Array.sort compare sorted;
    let total = Array.fold_left ( +. ) 0.0 sorted in
    if total <= 0.0 then 0.0
    else begin
      (* G = (2 sum_i i*x_i) / (n sum x) - (n + 1) / n with 1-based ranks
         over the ascending order. *)
      let weighted = ref 0.0 in
      Array.iteri (fun i x -> weighted := !weighted +. (float_of_int (i + 1) *. x)) sorted;
      (2.0 *. !weighted /. (float_of_int n *. total)) -. ((float_of_int n +. 1.0) /. float_of_int n)
    end
  end

let linear_fit points =
  let n = List.length points in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let nf = float_of_int n in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 points in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 points in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0.0 points in
  let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0.0 points in
  let denom = (nf *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = ((nf *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. nf in
  (slope, intercept)

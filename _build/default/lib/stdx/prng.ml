(* SplitMix64: each call advances the state by a fixed odd constant (a Weyl
   sequence) and scrambles it with two xor-shift-multiply rounds.  See
   Steele, Lea, Flood, "Fast splittable pseudorandom number generators". *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy g = { state = g.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let seed = next_int64 g in
  create ~seed

let bits g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = bits g in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then draw () else v
  in
  draw ()

let int_in_range g ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in_range: empty range";
  lo + int g (hi - lo + 1)

let unit_float g =
  (* 53 random bits scaled into [0, 1). *)
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  r *. 0x1p-53

let float g bound = unit_float g *. bound

let bool g = Int64.logand (next_int64 g) 1L = 1L

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))

let pick_list g l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ :: _ -> List.nth l (int g (List.length l))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose_weighted g choices =
  let total =
    List.fold_left
      (fun acc (_, w) ->
        if w <= 0.0 then invalid_arg "Prng.choose_weighted: non-positive weight";
        acc +. w)
      0.0 choices
  in
  if total <= 0.0 then invalid_arg "Prng.choose_weighted: empty choice list";
  let target = float g total in
  let rec walk acc = function
    | [] -> invalid_arg "Prng.choose_weighted: empty choice list"
    | [ (x, _) ] -> x
    | (x, w) :: rest -> if acc +. w > target then x else walk (acc +. w) rest
  in
  walk 0.0 choices

(* Both samplers precompute the CDF at every rank and sample by inverse
   transform with binary search: simple, exact, and fast enough (the largest
   support used by the simulations is 10,000 ranks). *)

type t = {
  n : int;
  cdf : float array; (* cdf.(i) = P(rank <= i + 1), normalized to end at 1. *)
}

let paper_c = 0.063
let paper_alpha = 0.3

let of_cdf_raw raw =
  let n = Array.length raw in
  if n = 0 then invalid_arg "Power_law: empty support";
  let total = raw.(n - 1) in
  if total <= 0.0 then invalid_arg "Power_law: degenerate distribution";
  let cdf = Array.map (fun v -> v /. total) raw in
  { n; cdf }

let fitted_cdf ?(c = paper_c) ?(alpha = paper_alpha) ~n () =
  if n <= 0 then invalid_arg "Power_law.fitted_cdf: n must be positive";
  let raw =
    Array.init n (fun i ->
        let rank = float_of_int (i + 1) in
        Float.min 1.0 (c *. (rank ** alpha)))
  in
  (* The fitted CDF is monotone by construction; clamping at 1 keeps the tail
     flat, meaning ranks past the clamp point have probability 0, exactly as
     in the paper ("the remaining articles ... we can effectively neglect"). *)
  of_cdf_raw raw

let zipf ~s ~n =
  if n <= 0 then invalid_arg "Power_law.zipf: n must be positive";
  let acc = ref 0.0 in
  let raw =
    Array.init n (fun i ->
        let rank = float_of_int (i + 1) in
        acc := !acc +. (1.0 /. (rank ** s));
        !acc)
  in
  of_cdf_raw raw

let support t = t.n

let sample t g =
  let u = Prng.unit_float g in
  (* Smallest index i with cdf.(i) >= u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (t.n - 1) + 1

let cdf t i = if i < 1 then 0.0 else if i >= t.n then 1.0 else t.cdf.(i - 1)

let ccdf t i = 1.0 -. cdf t i

let probability t i =
  if i < 1 || i > t.n then 0.0 else cdf t i -. cdf t (i - 1)

(** Power-law (Zipf-like) distributions over integer ranks.

    The paper models article popularity by a power law fitted to the BibFinder
    query log: the complementary cumulative distribution function over the
    10,000 most popular articles is F̄(i) = 1 − 0.063·i^0.3 (Fig. 10), i.e. the
    CDF is F(i) = c·i^a with c = 0.063 and a = 0.3.  This module provides both
    that fitted CDF form and classic Zipf sampling for corpus generation. *)

type t
(** A sampler over ranks [1..n]. *)

val paper_c : float
(** The paper's fitted CDF coefficient, 0.063. *)

val paper_alpha : float
(** The paper's fitted CDF exponent, 0.3. *)

val fitted_cdf : ?c:float -> ?alpha:float -> n:int -> unit -> t
(** [fitted_cdf ~n ()] is the paper's popularity model over ranks [1..n]:
    CDF F(i) = min(1, c·i^alpha), with the top rank drawn with probability
    F(1) = c.  Defaults are the paper's fitted parameters. *)

val zipf : s:float -> n:int -> t
(** [zipf ~s ~n] is a classic Zipf distribution: P(i) proportional to i^(-s)
    over ranks [1..n].  Used for corpus skew (author productivity). *)

val sample : t -> Prng.t -> int
(** Draw a rank in [1..n]. *)

val probability : t -> int -> float
(** [probability t i] is P(rank = i).  0 outside [1..n]. *)

val cdf : t -> int -> float
(** [cdf t i] is P(rank <= i). *)

val ccdf : t -> int -> float
(** [ccdf t i] is P(rank > i) = 1 − cdf(i). *)

val support : t -> int
(** Number of ranks n. *)

lib/stdx/prng.mli:

lib/stdx/stats.mli:

lib/stdx/tabular.ml: Array Buffer Float List Printf Stdlib String

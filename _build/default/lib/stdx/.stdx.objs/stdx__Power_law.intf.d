lib/stdx/power_law.mli: Prng

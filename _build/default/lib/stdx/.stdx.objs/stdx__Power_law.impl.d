lib/stdx/power_law.ml: Array Float Prng

lib/stdx/tabular.mli:

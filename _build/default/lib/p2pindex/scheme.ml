(** Indexing schemes: which query-to-query mappings a file gets.

    An indexing scheme (Section IV-C, Fig. 8) decides, for each descriptor,
    the set of index entries to create: pairs [(parent ; child)] where the
    parent covers the child and following children eventually reaches the
    most specific descriptor.  The choice is application-dependent ("requires
    human input"), so a scheme is simply a named edge generator. *)

type 'q edge = { parent : 'q; child : 'q }
(** One index mapping to install: the node responsible for [h(parent)]
    stores [(parent ; child)]. *)

type 'q t = {
  name : string;
  edges : 'q -> 'q edge list;
      (** All mappings for one descriptor, given its most specific query.
          Every returned edge must satisfy [covers parent child]. *)
}

let make ~name ~edges = { name; edges }

let name t = t.name

let edges t msd = t.edges msd

(** The edges for a whole collection, deduplicated — shared coarse-level
    entries like [(q6 ; q3)] appear once even when many files induce them. *)
let collection_edges ~compare_query t msds =
  let compare_edge a b =
    let c = compare_query a.parent b.parent in
    if c <> 0 then c else compare_query a.child b.child
  in
  List.sort_uniq compare_edge (List.concat_map (edges t) msds)

lib/p2pindex/wire.mli: Storage

lib/p2pindex/query_sig.ml: Format

lib/p2pindex/index.ml: Array Dht Hashing Hashtbl List Query_sig Queue Scheme Set Storage Wire

lib/p2pindex/xpath_query.ml: Xpath

lib/p2pindex/xpath_index.ml: Index Xpath_query

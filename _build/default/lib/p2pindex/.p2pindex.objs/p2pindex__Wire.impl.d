lib/p2pindex/wire.ml: List Storage String

lib/p2pindex/scheme.ml: List

lib/p2pindex/session.ml: Index List Query_sig

(** The generic XPath instance of {!Query_sig.QUERY}.

    [compatible] is the always-[true] conservative approximation: deciding
    whether two arbitrary tree patterns can match a common document needs a
    schema (is a field single-valued?), which generic XPath does not have.
    The search prunes less but stays complete.  Applications with structure
    knowledge (like {!Bib.Bib_query}) give precise answers. *)

type t = Xpath.t

let equal = Xpath.equal
let compare = Xpath.compare
let to_string = Xpath.to_string
let pp = Xpath.pp
let covers = Xpath.covers
let compatible _ _ = true
let generalizations = Xpath.generalizations

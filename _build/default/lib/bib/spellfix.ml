type t = {
  authors : Fuzzy.Spell.t;
  titles : Fuzzy.Spell.t;
  venues : Fuzzy.Spell.t;
}

let of_corpus articles =
  let authors = Fuzzy.Spell.create () in
  let titles = Fuzzy.Spell.create () in
  let venues = Fuzzy.Spell.create () in
  Array.iter
    (fun (a : Article.t) ->
      List.iter (fun x -> Fuzzy.Spell.add authors (Article.author_to_string x)) a.authors;
      Fuzzy.Spell.add titles a.title;
      Fuzzy.Spell.add venues a.conf)
    articles;
  { authors; titles; venues }

let author_vocabulary t = t.authors
let title_vocabulary t = t.titles
let venue_vocabulary t = t.venues

type outcome = Unchanged | Corrected of Bib_query.t | Unfixable

type 'a field_fix = Ok_as_is | Fixed of 'a | Hopeless

let fix_string vocabulary value =
  if Fuzzy.Spell.mem vocabulary value then Ok_as_is
  else
    match Fuzzy.Spell.correct vocabulary value with
    | Some corrected -> Fixed corrected
    | None -> Hopeless

let fix_author vocabulary (a : Article.author) =
  match fix_string vocabulary (Article.author_to_string a) with
  | Ok_as_is -> Ok_as_is
  | Hopeless -> Hopeless
  | Fixed full -> (
      match String.index_opt full ' ' with
      | Some i ->
          Fixed
            {
              Article.first = String.sub full 0 i;
              last = String.sub full (i + 1) (String.length full - i - 1);
            }
      | None -> Hopeless)

let fix t query =
  match query with
  | Bib_query.Msd _ | Bib_query.Author_last_prefix _ -> Unchanged
  | Bib_query.Fields f -> (
      let changed = ref false in
      let apply fixer value =
        match value with
        | None -> Some None
        | Some v -> (
            match fixer v with
            | Ok_as_is -> Some (Some v)
            | Fixed v' ->
                changed := true;
                Some (Some v')
            | Hopeless -> None)
      in
      let author = apply (fix_author t.authors) f.Bib_query.author in
      let title = apply (fix_string t.titles) f.Bib_query.title in
      let conf = apply (fix_string t.venues) f.Bib_query.conf in
      match (author, title, conf) with
      | Some author, Some title, Some conf ->
          if !changed then
            Corrected (Bib_query.Fields { f with Bib_query.author; title; conf })
          else Unchanged
      | None, _, _ | _, None, _ | _, _, None -> Unfixable)

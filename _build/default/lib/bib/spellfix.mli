(** Misspelled-query recovery for the bibliographic database.

    Implements the validation step sketched in the paper's final notes
    (Section VI): before hashing a query into the DHT — where only exact
    matches can succeed — each constrained field is checked against the
    vocabulary of known values (the CDDB role), and corrected when it is a
    near-miss of exactly one known value. *)

type t

val of_corpus : Article.t array -> t
(** Build the vocabularies (author names, titles, venues) of a corpus. *)

val author_vocabulary : t -> Fuzzy.Spell.t
val title_vocabulary : t -> Fuzzy.Spell.t
val venue_vocabulary : t -> Fuzzy.Spell.t

type outcome =
  | Unchanged  (** Every field was already a known value. *)
  | Corrected of Bib_query.t  (** Some fields were fixed; here is the query to run. *)
  | Unfixable  (** A field matches nothing known, even fuzzily. *)

val fix : t -> Bib_query.t -> outcome
(** Validate and correct each constrained field of a [Fields] query.
    [Msd] and prefix queries pass through [Unchanged]. *)

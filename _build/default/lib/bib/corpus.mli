(** Synthetic DBLP-like corpus generation.

    The paper builds its database from the DBLP archive (115,879 article
    entries) and simulates over the 10,000 most popular ones.  The archive
    itself is not shipped here, so this module generates a corpus with the
    same shape: a shared author pool with skewed productivity (a few authors
    write many papers), multi-author articles, mostly-unique titles, a few
    dozen venues of skewed size, and two decades of publication years.
    Generation is deterministic from the seed. *)

type config = {
  article_count : int;
  author_pool : int;  (** Distinct authors to draw from. *)
  venue_count : int;
  first_year : int;
  last_year : int;
  author_skew : float;  (** Zipf exponent for author productivity. *)
  venue_skew : float;  (** Zipf exponent for venue size. *)
}

val default_config : article_count:int -> config
(** The simulation defaults: an author pool of [article_count / 5]
    (at least 10), 30 venues, years 1980-2003, author skew 0.72, venue skew
    0.7 — giving DBLP-like sharing of authors across articles (an average of
    about six articles per author, tens for the most productive ones). *)

val generate : seed:int64 -> config -> Article.t array
(** [generate ~seed config] returns [config.article_count] articles with
    ids 1..count (the popularity ranks).
    @raise Invalid_argument on nonsensical configurations. *)

val fig1_articles : unit -> Article.t list
(** The paper's three running-example descriptors d1, d2, d3 (Fig. 1). *)

val to_xml : Article.t array -> Xmlkit.Xml.t
(** The whole corpus as one [<bibliography>] document of Fig. 1-style
    [<article>] descriptors. *)

val of_xml : Xmlkit.Xml.t -> Article.t array
(** Parse a [<bibliography>] document back; articles are assigned ranks in
    document order.  Accepts a bare [<article>] as a one-element corpus.
    @raise Invalid_argument on other documents. *)

val save_xml : out_channel -> Article.t array -> unit

val load_xml : in_channel -> Article.t array
(** @raise Xmlkit.Xml.Parse_error or [Invalid_argument] on bad content.
    This is the hook for real DBLP-style data: any file of Fig. 1-shaped
    descriptors loads as a corpus. *)

val distinct_authors : Article.t array -> Article.author list
(** All authors appearing in the corpus, deduplicated. *)

val articles_by_author : Article.t array -> Article.author -> Article.t list
val articles_by_year : Article.t array -> int -> Article.t list

type result = { msd : Bib_query.t; file : Storage.Block_store.file }

let matches_filters ?author ?conf msd =
  (match author with
  | None -> true
  | Some a -> Bib_query.covers (Bib_query.author_q a) msd)
  && match conf with None -> true | Some c -> Bib_query.covers (Bib_query.conf_q c) msd

let years ?interactions ?author ?conf index ~first ~last =
  if last < first then invalid_arg "Range_search.years: empty interval";
  let collected = ref [] in
  for year = first to last do
    (* Year-only probes keep each point query on an indexed chain; the
       author/venue constraints filter the descriptors afterwards. *)
    let results = Bib_index.search_with_generalization ?interactions index (Bib_query.year_q year) in
    List.iter
      (fun (msd, file) ->
        if matches_filters ?author ?conf msd then collected := { msd; file } :: !collected)
      results
  done;
  List.sort_uniq
    (fun a b ->
      let year_of r =
        match r.msd with
        | Bib_query.Msd article -> article.Article.year
        | Bib_query.Fields _ | Bib_query.Author_last_prefix _ -> 0
      in
      let c = Int.compare (year_of a) (year_of b) in
      if c <> 0 then c else Bib_query.compare a.msd b.msd)
    !collected

let before ?interactions ?author ?conf index ~year ~since =
  if year - 1 < since then []
  else years ?interactions ?author ?conf index ~first:since ~last:(year - 1)

let after ?interactions ?author ?conf index ~year ~until =
  if until < year + 1 then []
  else years ?interactions ?author ?conf index ~first:(year + 1) ~last:until

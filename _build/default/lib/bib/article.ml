module Xml = Xmlkit.Xml

type author = { first : string; last : string }

let author_equal a b = String.equal a.first b.first && String.equal a.last b.last

let compare_author a b =
  let c = String.compare a.last b.last in
  if c <> 0 then c else String.compare a.first b.first

let author_to_string a = a.first ^ " " ^ a.last

type t = {
  id : int;
  authors : author list;
  title : string;
  conf : string;
  year : int;
  size_bytes : int;
}

let make ~id ~authors ~title ~conf ~year ~size_bytes =
  (match authors with [] -> invalid_arg "Article.make: no authors" | _ :: _ -> ());
  let distinct = List.sort_uniq compare_author authors in
  if List.length distinct <> List.length authors then
    invalid_arg "Article.make: duplicate authors";
  { id; authors; title; conf; year; size_bytes }

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id

let to_xml t =
  Xml.element "article"
    (List.map
       (fun a -> Xml.element "author" [ Xml.leaf "first" a.first; Xml.leaf "last" a.last ])
       t.authors
    @ [
        Xml.leaf "title" t.title;
        Xml.leaf "conf" t.conf;
        Xml.leaf "year" (string_of_int t.year);
        Xml.leaf "size" (string_of_int t.size_bytes);
      ])

let of_xml doc =
  let field name =
    match Xml.find_child doc name with
    | Some child -> Xml.text_content child
    | None -> invalid_arg (Printf.sprintf "Article.of_xml: missing <%s>" name)
  in
  if Xml.name doc <> Some "article" then invalid_arg "Article.of_xml: not an <article>";
  let authors =
    List.map
      (fun author_node ->
        let part name =
          match Xml.find_child author_node name with
          | Some child -> Xml.text_content child
          | None -> invalid_arg (Printf.sprintf "Article.of_xml: author missing <%s>" name)
        in
        { first = part "first"; last = part "last" })
      (Xml.find_children doc "author")
  in
  let int_field name =
    match int_of_string_opt (field name) with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Article.of_xml: <%s> is not a number" name)
  in
  make ~id:0 ~authors ~title:(field "title") ~conf:(field "conf") ~year:(int_field "year")
    ~size_bytes:(int_field "size")

let file t =
  { Storage.Block_store.name = Printf.sprintf "article-%d.pdf" t.id;
    size_bytes = t.size_bytes }

let pp ppf t =
  Format.fprintf ppf "%s: %S (%s %d)"
    (String.concat ", " (List.map author_to_string t.authors))
    t.title t.conf t.year

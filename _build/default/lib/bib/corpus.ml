module Xml = Xmlkit.Xml

type config = {
  article_count : int;
  author_pool : int;
  venue_count : int;
  first_year : int;
  last_year : int;
  author_skew : float;
  venue_skew : float;
}

let default_config ~article_count =
  {
    article_count;
    author_pool = Stdlib.max 10 (article_count / 5);
    venue_count = 30;
    first_year = 1980;
    last_year = 2003;
    author_skew = 0.72;
    venue_skew = 0.7;
  }

(* Vocabularies.  Names and words are plain ASCII without the characters the
   canonical query syntax reserves ('/', '[', ']', '*'). *)

let first_names =
  [|
    "John"; "Alan"; "Maria"; "Wei"; "Anna"; "David"; "Laura"; "Pedro"; "Yuki"; "Hans";
    "Elena"; "Marc"; "Sofia"; "Ivan"; "Nina"; "Paul"; "Clara"; "Tom"; "Rita"; "Omar";
    "Lena"; "Hugo"; "Iris"; "Karl"; "Mona"; "Nils"; "Olga"; "Petr"; "Ruth"; "Sven";
    "Tara"; "Uwe"; "Vera"; "Yann"; "Zoe"; "Adam"; "Beth"; "Carl"; "Dana"; "Erik";
    "Fay"; "Gail"; "Henk"; "Ines"; "Jack"; "Kate"; "Liam"; "Mira"; "Noel"; "Pia";
    "Quentin"; "Rosa"; "Said"; "Tess"; "Udo"; "Vito"; "Wanda"; "Ximena"; "Yosef"; "Zara";
  |]

let last_names =
  [|
    "Smith"; "Doe"; "Garcia"; "Chen"; "Mueller"; "Rossi"; "Tanaka"; "Novak"; "Silva";
    "Dubois"; "Kim"; "Patel"; "Ivanov"; "Haddad"; "Olsen"; "Kowalski"; "Moreau"; "Weber";
    "Ricci"; "Sato"; "Lopez"; "Nguyen"; "Fischer"; "Marino"; "Suzuki"; "Horak"; "Costa";
    "Lefevre"; "Park"; "Shah"; "Petrov"; "Nasser"; "Berg"; "Zielinski"; "Fontaine";
    "Keller"; "Greco"; "Mori"; "Vargas"; "Tran"; "Wagner"; "Conti"; "Ito"; "Dvorak";
    "Pinto"; "Renard"; "Schmid"; "Russo"; "Kato"; "Blanc"; "Ortiz"; "Pham"; "Koch";
    "Ferrari"; "Saito"; "Maly"; "Ramos"; "Leroy"; "Braun"; "Villa"; "Ono"; "Urban";
    "Reyes"; "Huber"; "Serra"; "Abe"; "Cerny"; "Nunez"; "Vogel"; "Riva"; "Endo";
    "Svoboda"; "Mendez"; "Baum"; "Sala"; "Hara"; "Prochazka"; "Flores"; "Stein";
    "Monti"; "Yada"; "Benes"; "Aguilar"; "Wolf"; "Longo"; "Mura"; "Kral"; "Delgado";
    "Frank"; "Gatti"; "Oda"; "Sedlak"; "Campos"; "Lang"; "Testa"; "Koga"; "Vesely";
    "Romero"; "Roth"; "Ferri"; "Goto"; "Hruska"; "Medina"; "Busch"; "Bruno"; "Wada";
    "Pokorny"; "Castillo"; "Kuhn"; "Vitale"; "Baba"; "Marek"; "Guerrero"; "Seidel";
    "Palma"; "Ueda"; "Stastny"; "Cabrera"; "Ernst"; "Leone"; "Mizuno"; "Fiala";
  |]

let title_words =
  [|
    "Scalable"; "Adaptive"; "Distributed"; "Efficient"; "Robust"; "Secure"; "Dynamic";
    "Hierarchical"; "Decentralized"; "Optimal"; "Parallel"; "Incremental"; "Reliable";
    "Anonymous"; "Cooperative"; "Hybrid"; "Lightweight"; "Probabilistic"; "Semantic";
    "Structured"; "Routing"; "Caching"; "Indexing"; "Lookup"; "Replication"; "Storage";
    "Multicast"; "Streaming"; "Scheduling"; "Congestion"; "Mobility"; "Measurement";
    "Topology"; "Membership"; "Consistency"; "Aggregation"; "Discovery"; "Placement";
    "Recovery"; "Naming"; "Search"; "Gossip"; "Overlay"; "Peer"; "Network"; "Protocol";
    "Architecture"; "Framework"; "Algorithm"; "System"; "Service"; "Infrastructure";
    "Mechanism"; "Model"; "Analysis"; "Evaluation"; "Design"; "Implementation"; "Study";
    "Approach"; "Wavelets"; "TCP"; "IPv6"; "DHT"; "Multimedia"; "Wireless"; "Sensor";
    "Mobile"; "Internet"; "Web"; "Grid"; "Cluster"; "Database"; "Query"; "Stream";
    "Cache"; "Proxy"; "Latency"; "Bandwidth"; "Throughput"; "Fairness"; "Security";
    "Privacy"; "Trust"; "Reputation"; "Incentive"; "Economics"; "Game"; "Auction";
    "Coding"; "Compression"; "Encryption"; "Authentication"; "Tomography"; "Sampling";
    "Estimation"; "Prediction"; "Learning"; "Clustering"; "Classification"; "Filtering";
  |]

let venue_names =
  [|
    "SIGCOMM"; "INFOCOM"; "SOSP"; "OSDI"; "NSDI"; "MobiCom"; "SIGMETRICS"; "PODC";
    "ICNP"; "ICDCS"; "Middleware"; "IPTPS"; "VLDB"; "SIGMOD"; "PODS"; "ICDE"; "WWW";
    "HotNets"; "IMC"; "CoNEXT"; "EuroSys"; "USENIX-ATC"; "FAST"; "SPAA"; "STOC";
    "FOCS"; "SODA"; "CCS"; "NDSS"; "Oakland"; "CRYPTO"; "PKC"; "ICALP"; "ESA";
    "DISC"; "OPODIS"; "SRDS"; "DSN"; "PerCom"; "SenSys";
  |]

let generate ~seed config =
  if config.article_count <= 0 then invalid_arg "Corpus.generate: no articles requested";
  if config.author_pool < 3 then invalid_arg "Corpus.generate: author pool too small";
  if config.venue_count <= 0 || config.venue_count > Array.length venue_names then
    invalid_arg "Corpus.generate: bad venue count";
  if config.last_year < config.first_year then invalid_arg "Corpus.generate: bad years";
  let g = Stdx.Prng.create ~seed in
  (* Author pool: distinct (first, last) pairs.  When the pool outgrows the
     cartesian product of the name lists, a numbered suffix keeps pairs
     distinct (like disambiguated DBLP homonyms). *)
  let seen = Hashtbl.create config.author_pool in
  let fresh_author i =
    let rec draw attempts =
      let first = Stdx.Prng.pick g first_names in
      let last = Stdx.Prng.pick g last_names in
      let candidate =
        if attempts < 20 then { Article.first; last }
        else { Article.first; last = Printf.sprintf "%s-%d" last i }
      in
      if Hashtbl.mem seen candidate then draw (attempts + 1)
      else begin
        Hashtbl.add seen candidate ();
        candidate
      end
    in
    draw 0
  in
  let pool = Array.init config.author_pool fresh_author in
  let author_law = Stdx.Power_law.zipf ~s:config.author_skew ~n:config.author_pool in
  let venue_law = Stdx.Power_law.zipf ~s:config.venue_skew ~n:config.venue_count in
  let sample_authors () =
    let wanted =
      Stdx.Prng.choose_weighted g [ (1, 0.45); (2, 0.35); (3, 0.20) ]
    in
    let rec collect acc remaining attempts =
      if remaining = 0 || attempts > 50 then List.rev acc
      else
        let a = pool.(Stdx.Power_law.sample author_law g - 1) in
        if List.exists (Article.author_equal a) acc then
          collect acc remaining (attempts + 1)
        else collect (a :: acc) (remaining - 1) (attempts + 1)
    in
    collect [] wanted 0
  in
  let sample_title () =
    let words = Stdx.Prng.int_in_range g ~lo:2 ~hi:5 in
    String.concat " " (List.init words (fun _ -> Stdx.Prng.pick g title_words))
  in
  Array.init config.article_count (fun i ->
      Article.make ~id:(i + 1) ~authors:(sample_authors ()) ~title:(sample_title ())
        ~conf:venue_names.(Stdx.Power_law.sample venue_law g - 1)
        ~year:(Stdx.Prng.int_in_range g ~lo:config.first_year ~hi:config.last_year)
        ~size_bytes:(Stdx.Prng.int_in_range g ~lo:100_000 ~hi:450_000))

let fig1_articles () =
  [
    Article.make ~id:1
      ~authors:[ { Article.first = "John"; last = "Smith" } ]
      ~title:"TCP" ~conf:"SIGCOMM" ~year:1989 ~size_bytes:315635;
    Article.make ~id:2
      ~authors:[ { Article.first = "John"; last = "Smith" } ]
      ~title:"IPv6" ~conf:"INFOCOM" ~year:1996 ~size_bytes:312352;
    Article.make ~id:3
      ~authors:[ { Article.first = "Alan"; last = "Doe" } ]
      ~title:"Wavelets" ~conf:"INFOCOM" ~year:1996 ~size_bytes:259827;
  ]

let to_xml articles =
  Xml.element "bibliography" (Array.to_list (Array.map Article.to_xml articles))

let of_xml doc =
  match Xml.name doc with
  | Some "bibliography" ->
      let entries = Xml.find_children doc "article" in
      if entries = [] then invalid_arg "Corpus.of_xml: empty bibliography";
      Array.of_list
        (List.mapi (fun i entry -> { (Article.of_xml entry) with Article.id = i + 1 }) entries)
  | Some "article" -> [| { (Article.of_xml doc) with Article.id = 1 } |]
  | Some _ | None -> invalid_arg "Corpus.of_xml: expected <bibliography> or <article>"

let save_xml out articles =
  output_string out (Xml.to_string ~indent:true (to_xml articles))

let load_xml input = of_xml (Xml.of_string (In_channel.input_all input))

let distinct_authors articles =
  let all = Array.to_list articles |> List.concat_map (fun (a : Article.t) -> a.authors) in
  List.sort_uniq Article.compare_author all

let articles_by_author articles author =
  Array.to_list articles
  |> List.filter (fun (a : Article.t) -> List.exists (Article.author_equal author) a.authors)

let articles_by_year articles year =
  Array.to_list articles |> List.filter (fun (a : Article.t) -> a.year = year)

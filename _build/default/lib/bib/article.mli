(** Bibliographic records — the data items of the paper's running example.

    An article mirrors a DBLP entry (Fig. 1): one or more authors, a title,
    a venue, a year, and the size of the stored file.  The [id] is the
    article's popularity rank (1 = most popular), which the workload
    generator draws from the paper's fitted power law. *)

type author = { first : string; last : string }

val author_equal : author -> author -> bool
val compare_author : author -> author -> int
val author_to_string : author -> string
(** ["John Smith"]. *)

type t = {
  id : int;  (** Popularity rank, 1-based, unique within a corpus. *)
  authors : author list;  (** Non-empty, distinct. *)
  title : string;
  conf : string;
  year : int;
  size_bytes : int;  (** Size of the article file (Postscript/PDF). *)
}

val make :
  id:int ->
  authors:author list ->
  title:string ->
  conf:string ->
  year:int ->
  size_bytes:int ->
  t
(** @raise Invalid_argument on an empty or duplicated author list. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** By [id]. *)

val to_xml : t -> Xmlkit.Xml.t
(** The article's descriptor, in the Fig. 1 format (one [author] element per
    author). *)

val of_xml : Xmlkit.Xml.t -> t
(** Parse a descriptor back (with [id = 0]; identity is not part of the
    descriptor).  @raise Invalid_argument on a non-article document. *)

val file : t -> Storage.Block_store.file
(** The stored payload: ["article-<id>.pdf"] of [size_bytes]. *)

val pp : Format.formatter -> t -> unit

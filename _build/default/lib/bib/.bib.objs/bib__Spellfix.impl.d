lib/bib/spellfix.ml: Array Article Bib_query Fuzzy List String

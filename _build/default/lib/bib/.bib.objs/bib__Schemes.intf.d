lib/bib/schemes.mli: Article Bib_query P2pindex

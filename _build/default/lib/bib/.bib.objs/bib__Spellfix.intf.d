lib/bib/spellfix.mli: Article Bib_query Fuzzy

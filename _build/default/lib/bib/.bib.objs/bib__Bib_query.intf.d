lib/bib/bib_query.mli: Article Format Xpath

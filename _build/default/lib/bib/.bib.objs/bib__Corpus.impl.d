lib/bib/corpus.ml: Array Article Hashtbl In_channel List Printf Stdlib Stdx String Xmlkit

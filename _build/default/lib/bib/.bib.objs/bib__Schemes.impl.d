lib/bib/schemes.ml: Article Bib_query List P2pindex String

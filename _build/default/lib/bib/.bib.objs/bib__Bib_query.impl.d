lib/bib/bib_query.ml: Article Format Fun Int List Printf String Xpath

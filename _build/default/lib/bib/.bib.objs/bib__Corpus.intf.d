lib/bib/corpus.mli: Article Xmlkit

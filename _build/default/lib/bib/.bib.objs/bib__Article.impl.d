lib/bib/article.ml: Format Int List Printf Storage String Xmlkit

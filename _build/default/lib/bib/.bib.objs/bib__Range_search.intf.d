lib/bib/range_search.mli: Article Bib_index Bib_query Storage

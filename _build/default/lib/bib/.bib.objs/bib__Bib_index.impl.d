lib/bib/bib_index.ml: Array Article Bib_query P2pindex Schemes

lib/bib/article.mli: Format Storage Xmlkit

lib/bib/range_search.ml: Article Bib_index Bib_query Int List Storage

(** Year-interval queries over the exact-match indexes.

    Both query logs the paper studied offer publication-date intervals
    (NetBib: "publication date (year intervals)"; BibFinder: "published
    before/after a given year"), but a DHT can only look up exact keys.
    A range therefore decomposes into the union of its per-year point
    queries — each resolved through the ordinary index chains — with the
    results merged and filtered by any additional constraints.  The cost is
    linear in the interval width, which is exactly the trade-off the
    paper's exact-match layering implies. *)

type result = { msd : Bib_query.t; file : Storage.Block_store.file }

val years :
  ?interactions:int ref ->
  ?author:Article.author ->
  ?conf:string ->
  Bib_index.t ->
  first:int ->
  last:int ->
  result list
(** [years index ~first ~last] is every article published in
    [\[first, last\]] (inclusive), optionally restricted to an author
    and/or venue, sorted by year then descriptor.  Each per-year probe adds
    to [interactions].  @raise Invalid_argument when [last < first]. *)

val before : ?interactions:int ref -> ?author:Article.author -> ?conf:string ->
  Bib_index.t -> year:int -> since:int -> result list
(** Articles published before [year] (exclusive), scanning back to
    [since] — an explicit lower bound keeps the probe count finite. *)

val after : ?interactions:int ref -> ?author:Article.author -> ?conf:string ->
  Bib_index.t -> year:int -> until:int -> result list
(** Articles published after [year] (exclusive), up to [until]. *)

(* Straightforward RFC 3174 implementation over Int32 words.  The message is
   padded to a multiple of 64 bytes with 0x80, zeros, and the 64-bit bit
   length; each block updates the five-word chaining state through 80 rounds
   in four 20-round groups. *)

type digest = string

let rotl32 x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let padded_message s =
  let len = String.length s in
  (* Room for the 0x80 marker and the 8-byte length, rounded up to 64. *)
  let total = ((len + 8) / 64 * 64) + 64 in
  let b = Bytes.make total '\000' in
  Bytes.blit_string s 0 b 0 len;
  Bytes.set b len '\x80';
  let bitlen = Int64.of_int (len * 8) in
  for i = 0 to 7 do
    let shift = (7 - i) * 8 in
    let byte = Int64.to_int (Int64.logand (Int64.shift_right_logical bitlen shift) 0xFFL) in
    Bytes.set b (total - 8 + i) (Char.chr byte)
  done;
  b

let word_at b off =
  let byte i = Int32.of_int (Char.code (Bytes.get b (off + i))) in
  Int32.logor
    (Int32.shift_left (byte 0) 24)
    (Int32.logor
       (Int32.shift_left (byte 1) 16)
       (Int32.logor (Int32.shift_left (byte 2) 8) (byte 3)))

let digest_string s =
  let msg = padded_message s in
  let h0 = ref 0x67452301l
  and h1 = ref 0xEFCDAB89l
  and h2 = ref 0x98BADCFEl
  and h3 = ref 0x10325476l
  and h4 = ref 0xC3D2E1F0l in
  let w = Array.make 80 0l in
  let blocks = Bytes.length msg / 64 in
  for block = 0 to blocks - 1 do
    let base = block * 64 in
    for t = 0 to 15 do
      w.(t) <- word_at msg (base + (t * 4))
    done;
    for t = 16 to 79 do
      w.(t) <-
        rotl32 (Int32.logxor (Int32.logxor w.(t - 3) w.(t - 8)) (Int32.logxor w.(t - 14) w.(t - 16))) 1
    done;
    let a = ref !h0 and b = ref !h1 and c = ref !h2 and d = ref !h3 and e = ref !h4 in
    for t = 0 to 79 do
      let f, k =
        if t < 20 then
          (Int32.logor (Int32.logand !b !c) (Int32.logand (Int32.lognot !b) !d), 0x5A827999l)
        else if t < 40 then (Int32.logxor !b (Int32.logxor !c !d), 0x6ED9EBA1l)
        else if t < 60 then
          ( Int32.logor
              (Int32.logand !b !c)
              (Int32.logor (Int32.logand !b !d) (Int32.logand !c !d)),
            0x8F1BBCDCl )
        else (Int32.logxor !b (Int32.logxor !c !d), 0xCA62C1D6l)
      in
      let temp = Int32.add (Int32.add (Int32.add (rotl32 !a 5) f) (Int32.add !e k)) w.(t) in
      e := !d;
      d := !c;
      c := rotl32 !b 30;
      b := !a;
      a := temp
    done;
    h0 := Int32.add !h0 !a;
    h1 := Int32.add !h1 !b;
    h2 := Int32.add !h2 !c;
    h3 := Int32.add !h3 !d;
    h4 := Int32.add !h4 !e
  done;
  let out = Bytes.create 20 in
  let store i v =
    for j = 0 to 3 do
      let shift = (3 - j) * 8 in
      Bytes.set out ((i * 4) + j)
        (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v shift) 0xFFl)))
    done
  in
  store 0 !h0;
  store 1 !h1;
  store 2 !h2;
  store 3 !h3;
  store 4 !h4;
  Bytes.to_string out

let hex_digits = "0123456789abcdef"

let to_hex d =
  let out = Bytes.create (String.length d * 2) in
  String.iteri
    (fun i c ->
      let v = Char.code c in
      Bytes.set out (2 * i) hex_digits.[v lsr 4];
      Bytes.set out ((2 * i) + 1) hex_digits.[v land 0xF])
    d;
  Bytes.to_string out

let of_hex s =
  let len = String.length s in
  if len mod 2 <> 0 then invalid_arg "Sha1.of_hex: odd length";
  let value c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Sha1.of_hex: invalid character"
  in
  String.init (len / 2) (fun i -> Char.chr ((value s.[2 * i] lsl 4) lor value s.[(2 * i) + 1]))

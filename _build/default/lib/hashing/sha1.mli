(** SHA-1 (RFC 3174), implemented from scratch.

    The DHT identifier space is the standard Chord/Pastry choice of SHA-1
    digests.  Cryptographic strength is irrelevant here; what matters is the
    uniform spread of keys over the 160-bit ring, and having a self-contained
    implementation keeps the project dependency-free. *)

type digest = string
(** 20-byte binary digest. *)

val digest_string : string -> digest
(** [digest_string s] is the 20-byte SHA-1 digest of [s]. *)

val to_hex : digest -> string
(** Lowercase hexadecimal rendering (40 characters). *)

val of_hex : string -> digest
(** Inverse of {!to_hex}.  @raise Invalid_argument on malformed input. *)

(** 160-bit identifiers on the DHT ring.

    Keys are points on the circle [0, 2^160); both node identifiers and data
    keys live in this space.  The module provides the modular arithmetic that
    Chord routing needs: clockwise intervals, distances, and adding powers of
    two for finger-table targets. *)

type t
(** An immutable 160-bit key. *)

val bits : int
(** Width of the identifier space: 160. *)

val zero : t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
(** For use in hash tables. *)

val of_string : string -> t
(** [of_string s] hashes an arbitrary string into the key space (SHA-1). *)

val of_int : int -> t
(** [of_int n] is the key with numeric value [n] (for tests).
    @raise Invalid_argument when [n < 0]. *)

val of_hex : string -> t
(** Parse a 40-character hex key.  @raise Invalid_argument on bad input. *)

val to_hex : t -> string

val short_hex : t -> string
(** First 8 hex characters — convenient for logs and examples. *)

val nibble : t -> int -> int
(** [nibble k i] is the i-th hexadecimal digit of the key, most significant
    first, [i] in [\[0, 40)] — the digit view prefix-routing DHTs (Pastry)
    work with.  @raise Invalid_argument when [i] is out of range. *)

val pp : Format.formatter -> t -> unit

val succ : t -> t
(** Next key clockwise (wraps at the top of the ring). *)

val add_pow2 : t -> int -> t
(** [add_pow2 k i] is [k + 2^i mod 2^160]; [i] must be in [\[0, bits)].
    Finger [i] of a Chord node [n] targets [add_pow2 n i].
    @raise Invalid_argument when [i] is out of range. *)

val in_interval_oo : t -> lo:t -> hi:t -> bool
(** Clockwise open interval membership: is [k] strictly between [lo] and
    [hi] walking clockwise from [lo]?  When [lo = hi] the interval is the
    whole ring minus that point. *)

val in_interval_oc : t -> lo:t -> hi:t -> bool
(** Clockwise half-open interval (lo, hi]: the interval Chord uses for
    successor responsibility.  When [lo = hi] it is the whole ring. *)

val distance_cw : t -> t -> t
(** [distance_cw a b] is the clockwise distance from [a] to [b]
    (i.e. [b - a mod 2^160]). *)

val to_float : t -> float
(** Approximate numeric value, for load-spread diagnostics. *)

val random : Stdx.Prng.t -> t
(** A uniformly random key. *)

(* A key is a 20-byte big-endian string; byte-wise [String.compare] is then
   exactly numeric comparison, and modular arithmetic works byte by byte with
   carries. *)

type t = string

let bits = 160
let byte_count = bits / 8

let zero = String.make byte_count '\000'

let compare = String.compare
let equal = String.equal
let hash = Hashtbl.hash

let of_string s = Sha1.digest_string s

let of_int n =
  if n < 0 then invalid_arg "Key.of_int: negative value";
  let b = Bytes.make byte_count '\000' in
  let rec fill pos n =
    if n > 0 && pos >= 0 then begin
      Bytes.set b pos (Char.chr (n land 0xFF));
      fill (pos - 1) (n lsr 8)
    end
  in
  fill (byte_count - 1) n;
  Bytes.to_string b

let of_hex s =
  let d = Sha1.of_hex s in
  if String.length d <> byte_count then invalid_arg "Key.of_hex: wrong length";
  d

let to_hex = Sha1.to_hex

let short_hex k = String.sub (to_hex k) 0 8

let pp ppf k = Format.pp_print_string ppf (short_hex k)

let nibble t i =
  if i < 0 || i >= 2 * byte_count then invalid_arg "Key.nibble: index out of range";
  let byte = Char.code t.[i / 2] in
  if i mod 2 = 0 then byte lsr 4 else byte land 0xF

let add t u =
  (* Byte-wise addition modulo 2^160 (the final carry is discarded). *)
  let out = Bytes.create byte_count in
  let carry = ref 0 in
  for i = byte_count - 1 downto 0 do
    let sum = Char.code t.[i] + Char.code u.[i] + !carry in
    Bytes.set out i (Char.chr (sum land 0xFF));
    carry := sum lsr 8
  done;
  Bytes.to_string out

let sub t u =
  (* Byte-wise subtraction modulo 2^160. *)
  let out = Bytes.create byte_count in
  let borrow = ref 0 in
  for i = byte_count - 1 downto 0 do
    let diff = Char.code t.[i] - Char.code u.[i] - !borrow in
    if diff < 0 then begin
      Bytes.set out i (Char.chr (diff + 256));
      borrow := 1
    end
    else begin
      Bytes.set out i (Char.chr diff);
      borrow := 0
    end
  done;
  Bytes.to_string out

let one = of_int 1

let succ t = add t one

let pow2 i =
  if i < 0 || i >= bits then invalid_arg "Key.add_pow2: exponent out of range";
  let b = Bytes.make byte_count '\000' in
  let byte = byte_count - 1 - (i / 8) in
  Bytes.set b byte (Char.chr (1 lsl (i mod 8)));
  Bytes.to_string b

let add_pow2 t i = add t (pow2 i)

let in_interval_oo k ~lo ~hi =
  if equal lo hi then not (equal k lo)
  else if compare lo hi < 0 then compare lo k < 0 && compare k hi < 0
  else compare lo k < 0 || compare k hi < 0

let in_interval_oc k ~lo ~hi =
  if equal lo hi then true
  else if compare lo hi < 0 then compare lo k < 0 && compare k hi <= 0
  else compare lo k < 0 || compare k hi <= 0

let distance_cw a b = sub b a

let to_float t =
  let acc = ref 0.0 in
  String.iter (fun c -> acc := (!acc *. 256.0) +. float_of_int (Char.code c)) t;
  !acc

let random g =
  String.init byte_count (fun _ -> Char.chr (Stdx.Prng.int g 256))

lib/hashing/key.mli: Format Stdx

lib/hashing/sha1.mli:

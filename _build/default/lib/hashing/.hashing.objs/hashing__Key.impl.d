lib/hashing/key.ml: Bytes Char Format Hashtbl Sha1 Stdx String

lib/workload/trace.ml: Array Bib In_channel List Printf Query_gen String

lib/workload/query_gen.ml: Array Bib List Stdx

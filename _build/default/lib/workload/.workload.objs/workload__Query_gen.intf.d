lib/workload/query_gen.mli: Bib Stdx

lib/workload/trace.mli: Bib Query_gen

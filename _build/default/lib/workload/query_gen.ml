module Article = Bib.Article
module Q = Bib.Bib_query

type structure = Author | Title | Year | Author_title | Author_year | Author_conf

let all_structures = [ Author; Title; Year; Author_title; Author_year; Author_conf ]

let structure_label = function
  | Author -> "author"
  | Title -> "title"
  | Year -> "year"
  | Author_title -> "author+title"
  | Author_year -> "author+year"
  | Author_conf -> "author+conf"

type mix = {
  p_author : float;
  p_title : float;
  p_year : float;
  p_author_title : float;
  p_author_year : float;
  p_author_conf : float;
}

(* The BibFinder log has no author+conference class of its own; the weight
   exists for the scheme ablations. *)
let bibfinder_mix =
  {
    p_author = 0.60;
    p_title = 0.20;
    p_year = 0.10;
    p_author_title = 0.05;
    p_author_year = 0.05;
    p_author_conf = 0.0;
  }

let uniform_mix =
  {
    p_author = 0.2;
    p_title = 0.2;
    p_year = 0.2;
    p_author_title = 0.2;
    p_author_year = 0.2;
    p_author_conf = 0.0;
  }

type event = { target : Article.t; structure : structure; query : Q.t }

type t = {
  articles : Article.t array;
  popularity : Stdx.Power_law.t;
  weights : (structure * float) list;
  prng : Stdx.Prng.t;
}

let paper_popularity ~article_count = Stdx.Power_law.fitted_cdf ~n:article_count ()

let create ?(mix = bibfinder_mix) ?popularity ~articles ~seed () =
  if Array.length articles = 0 then invalid_arg "Query_gen.create: empty corpus";
  let popularity =
    match popularity with
    | Some p -> p
    | None -> paper_popularity ~article_count:(Array.length articles)
  in
  if Stdx.Power_law.support popularity > Array.length articles then
    invalid_arg "Query_gen.create: popularity support exceeds the corpus";
  let weights =
    (* Structures with zero weight are simply never drawn. *)
    List.filter
      (fun (_, w) -> w > 0.0)
      [
        (Author, mix.p_author);
        (Title, mix.p_title);
        (Year, mix.p_year);
        (Author_title, mix.p_author_title);
        (Author_year, mix.p_author_year);
        (Author_conf, mix.p_author_conf);
      ]
  in
  if weights = [] then invalid_arg "Query_gen.create: all structure weights are zero";
  { articles; popularity; weights; prng = Stdx.Prng.create ~seed }

(* Users search by the primary (first-listed) author, as bibliography
   interfaces display them; this also concentrates repeated queries on the
   same strings, which is what makes the caches effective in the paper. *)
let pick_author _t (article : Article.t) =
  match article.authors with
  | primary :: _ -> primary
  | [] -> assert false (* Article.make rejects empty author lists *)

let next t =
  let rank = Stdx.Power_law.sample t.popularity t.prng in
  let target = t.articles.(rank - 1) in
  let structure = Stdx.Prng.choose_weighted t.prng t.weights in
  let query =
    match structure with
    | Author -> Q.author_q (pick_author t target)
    | Title -> Q.title_q target.title
    | Year -> Q.year_q target.year
    | Author_title -> Q.author_title (pick_author t target) target.title
    | Author_year -> Q.author_year (pick_author t target) target.year
    | Author_conf -> Q.author_conf (pick_author t target) target.conf
  in
  { target; structure; query }

let events t n = List.init n (fun _ -> next t)

(** Query-log traces: save and replay workloads.

    The paper drives its user model from the BibFinder and NetBib query
    logs.  This module gives the equivalent artifact for the synthetic
    workload: a generated query stream can be written to a log (one line per
    query: target rank, structure, canonical query string) and replayed
    later — so experiments can be rerun on the exact same stream, shared, or
    inspected by hand. *)

type line = {
  target_rank : int;  (** Rank (= id) of the article the user wanted. *)
  structure : Query_gen.structure;
  query_string : string;  (** Canonical rendering, for human readers. *)
}

val line_of_event : Query_gen.event -> line
val to_line : line -> string
(** Tab-separated: rank, structure label, query string. *)

val of_line : string -> line
(** @raise Invalid_argument on a malformed line. *)

val save : out_channel -> Query_gen.event list -> unit

val load_lines : in_channel -> line list
(** @raise Invalid_argument on malformed content. *)

val replay : articles:Bib.Article.t array -> line list -> Query_gen.event list
(** Reconstruct the events against a corpus: each line's target is looked
    up by rank and its query rebuilt from the structure, then checked
    against the recorded string.
    @raise Invalid_argument when a rank is out of range or a rebuilt query
    disagrees with the recorded string (the trace belongs to a different
    corpus). *)

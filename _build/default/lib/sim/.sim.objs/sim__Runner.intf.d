lib/sim/runner.mli: Bib Cache Stdx Workload

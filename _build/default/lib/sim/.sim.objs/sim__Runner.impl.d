lib/sim/runner.ml: Array Bib Cache Dht Int64 List Option P2pindex Stdlib Stdx String Workload

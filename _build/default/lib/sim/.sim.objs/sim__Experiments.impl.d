lib/sim/experiments.ml: Array Bib Cache Dht Float Hashing Hashtbl Int Int64 List Option P2pindex Printf Runner Stdlib Stdx Storage String Workload

lib/sim/experiments.mli: Bib Cache Runner

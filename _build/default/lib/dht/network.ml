type category = Request | Response | Cache_update | Maintenance

let category_label = function
  | Request -> "request"
  | Response -> "response"
  | Cache_update -> "cache-update"
  | Maintenance -> "maintenance"

let category_index = function
  | Request -> 0
  | Response -> 1
  | Cache_update -> 2
  | Maintenance -> 3

let category_count = 4

type t = {
  node_count : int;
  messages : int array; (* per category *)
  bytes : int array; (* per category *)
  touches : int array; (* per node *)
}

let create ~node_count =
  if node_count <= 0 then invalid_arg "Network.create: need at least one node";
  {
    node_count;
    messages = Array.make category_count 0;
    bytes = Array.make category_count 0;
    touches = Array.make node_count 0;
  }

let node_count t = t.node_count

let send t ~dst ~bytes ~category =
  if dst < 0 || dst >= t.node_count then invalid_arg "Network.send: bad destination";
  let i = category_index category in
  t.messages.(i) <- t.messages.(i) + 1;
  t.bytes.(i) <- t.bytes.(i) + bytes

let touch t ~node =
  if node < 0 || node >= t.node_count then invalid_arg "Network.touch: bad node";
  t.touches.(node) <- t.touches.(node) + 1

let messages t category = t.messages.(category_index category)
let bytes t category = t.bytes.(category_index category)

let total_messages t = Array.fold_left ( + ) 0 t.messages
let total_bytes t = Array.fold_left ( + ) 0 t.bytes

let touches t = Array.copy t.touches

let reset t =
  Array.fill t.messages 0 category_count 0;
  Array.fill t.bytes 0 category_count 0;
  Array.fill t.touches 0 t.node_count 0

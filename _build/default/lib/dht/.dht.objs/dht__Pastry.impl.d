lib/dht/pastry.ml: Array Float Fun Hashing Hashtbl List Resolver Stdx

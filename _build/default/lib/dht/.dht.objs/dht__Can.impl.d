lib/dht/can.ml: Array Float Fun Hashing Int List Resolver Stdlib Stdx

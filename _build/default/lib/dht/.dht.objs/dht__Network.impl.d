lib/dht/network.ml: Array

lib/dht/network.mli:

lib/dht/kademlia.ml: Array Char Hashing Hashtbl List Resolver Stdlib Stdx String

lib/dht/chord.mli: Hashing Resolver

lib/dht/can.mli: Hashing Resolver

lib/dht/kademlia.mli: Hashing Resolver

lib/dht/chord.ml: Array Hashing Hashtbl List Resolver Stdlib Stdx

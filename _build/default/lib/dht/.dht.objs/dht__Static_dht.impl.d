lib/dht/static_dht.ml: Array Hashing Hashtbl Resolver Stdx

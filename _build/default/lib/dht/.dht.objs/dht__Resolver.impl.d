lib/dht/resolver.ml: Hashing List Stdlib

lib/dht/pastry.mli: Hashing Resolver

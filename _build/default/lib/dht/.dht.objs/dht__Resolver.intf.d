lib/dht/resolver.mli: Hashing

lib/dht/static_dht.mli: Hashing Resolver

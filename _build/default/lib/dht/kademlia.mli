(** Kademlia (Maymounkov & Mazières, IPTPS 2002) — the XOR-metric DHT.

    The fourth substrate family: distance between identifiers is their
    bitwise XOR interpreted as a number.  Each node keeps one {e k-bucket}
    per distance scale (shared-prefix length), holding up to [k] contacts
    ordered least-recently seen first; lookups proceed {e iteratively} — the
    querier itself contacts the [alpha] closest known nodes, learns closer
    ones from their buckets, and repeats until no progress — rather than
    forwarding through the overlay as Chord/Pastry/CAN do.

    A key is owned by the node whose identifier is XOR-closest to it. *)

type t

val create : ?seed:int64 -> ?k:int -> ?alpha:int -> unit -> t
(** An empty network.  [k] (default 8) is the bucket capacity, [alpha]
    (default 3) the lookup parallelism. *)

val create_network : ?seed:int64 -> ?k:int -> ?alpha:int -> node_count:int -> unit -> t
(** Bootstrap a network: every node joins through the first and performs
    the self-lookup that populates its buckets. *)

val join : t -> Hashing.Key.t
(** Add a node with a fresh identifier: it inserts its bootstrap contact,
    looks its own identifier up (populating buckets along the way), and
    becomes known to the nodes it contacted. *)

val join_with_key : t -> Hashing.Key.t -> unit
(** @raise Invalid_argument if the identifier is already present. *)

val leave : t -> Hashing.Key.t -> unit
(** Abrupt failure; stale contacts are evicted lazily when touched.
    @raise Not_found if no such live node. *)

val live_count : t -> int
val live_keys : t -> Hashing.Key.t list

val xor_distance : Hashing.Key.t -> Hashing.Key.t -> Hashing.Key.t
(** The metric itself (exposed for tests): bitwise XOR of the keys. *)

val lookup : t -> ?from:Hashing.Key.t -> Hashing.Key.t -> Hashing.Key.t * int
(** Iterative lookup from [from] (default: first live node): returns the
    XOR-closest node found and the number of nodes contacted (the message
    cost).  @raise Not_found on an empty network. *)

val responsible_oracle : t -> Hashing.Key.t -> Hashing.Key.t
(** Ground truth: the live node XOR-closest to the key. *)

val refresh : t -> unit
(** One maintenance pass: every node re-looks-up its own identifier,
    repopulating buckets (used after churn). *)

val is_converged : t -> bool
(** Lookups from every node find the oracle owner for a sample of keys. *)

val resolver : t -> Resolver.t
(** Resolver view over live nodes (indexes in sorted-key order);
    [replicas] returns the r XOR-closest nodes, Kademlia's natural replica
    set. *)

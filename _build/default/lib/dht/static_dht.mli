(** Consistent-hashing "perfect" DHT.

    Node identifiers are spread over the ring and every key is owned by its
    clockwise successor node — the same ownership rule as Chord, computed
    from global knowledge in O(log n) per lookup.  The large simulations use
    this substrate because the paper treats the lookup layer as orthogonal:
    "we simply assume that the underlying DHT is able to find a node n
    responsible for a given key k" (Section V-A). *)

type t

val create : ?seed:int64 -> node_count:int -> unit -> t
(** [create ~node_count ()] places [node_count] nodes at pseudo-random ring
    positions derived from [seed] (default 1). *)

val of_keys : Hashing.Key.t array -> t
(** Build from explicit node identifiers (for tests).  Identifiers must be
    distinct.  @raise Invalid_argument otherwise, or if the array is empty. *)

val node_count : t -> int

val node_key : t -> int -> Hashing.Key.t
(** Ring identifier of node [i] (indexes are assigned in ring order). *)

val responsible : t -> Hashing.Key.t -> int
(** Index of the node owning the key: the first node clockwise from it. *)

val resolver : t -> Resolver.t
(** A resolver view; [route_hops] is 1 (direct key-to-node oracle). *)

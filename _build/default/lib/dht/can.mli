(** CAN — the Content-Addressable Network (Ratnasamy et al., SIGCOMM 2001).

    The third substrate geometry named by the paper (with Chord's ring and
    Pastry's prefix space): a [d]-dimensional torus [\[0,1)^d] partitioned
    into rectangular zones, one per node.  Keys hash to points; the node
    whose zone contains the point owns the key.  A joining node picks a
    random point and splits the zone that contains it in half; routing
    greedily forwards towards the target point through zone neighbours,
    giving O(d·n^(1/d)) hops.

    Departures hand the zone to a neighbour (the paper's takeover), so the
    space always stays fully covered; the merged node then owns both
    regions. *)

type t

val create : ?seed:int64 -> ?dimensions:int -> unit -> t
(** An empty overlay over [\[0,1)^dimensions] (default 2).
    @raise Invalid_argument when [dimensions < 1]. *)

val create_network : ?seed:int64 -> ?dimensions:int -> node_count:int -> unit -> t
(** Bootstrap a network of [node_count] nodes by successive joins. *)

val dimensions : t -> int
val node_count : t -> int

val join : t -> int
(** Add a node at a random point: splits the zone containing it; returns
    the new node's id. *)

val leave : t -> int -> unit
(** Graceful departure: the zone is taken over by one of its neighbours.
    @raise Not_found if no such live node.
    @raise Invalid_argument when removing the last node. *)

val point_of_key : t -> Hashing.Key.t -> float array
(** The deterministic point a key hashes to. *)

val owner_of_point : t -> float array -> int
(** The node whose zone contains the point (exact, from global knowledge). *)

val lookup : t -> ?from:int -> Hashing.Key.t -> int * int
(** Greedy neighbour routing from [from] (default: node 0's successor
    in id order) to the key's owner; returns (owner, hops). *)

val is_well_formed : t -> bool
(** Structural invariants: zones tile the space exactly (volumes sum to 1,
    no overlaps among sampled points) and the neighbour relation is
    symmetric and complete. *)

val resolver : t -> Resolver.t
(** Resolver view; node indexes are CAN node ids.  [replicas] uses the
    zone's neighbours (CAN's natural replica set). *)

(** Pastry (Rowstron & Druschel, Middleware 2001) — the paper's second
    reference substrate (Pastry/PAST).

    Prefix-based routing over the 160-bit identifier space read as 40
    hexadecimal digits (b = 4): each node keeps a {e leaf set} of its
    numerically closest neighbours and a {e routing table} with one row per
    shared-prefix length and one column per next digit.  A message for key
    [k] is delivered to the live node whose identifier is numerically
    closest to [k]; each hop either lands in the leaf set or extends the
    shared prefix by at least one digit, giving O(log_16 N) routes.

    Note the ownership rule differs from Chord's (numerically closest node
    rather than clockwise successor) — the {!resolver} view reflects that,
    and the indexing layer runs unchanged on either. *)

type t

val create : ?seed:int64 -> ?leaf_set_radius:int -> unit -> t
(** An empty overlay.  [leaf_set_radius] (default 8) is the number of leaf
    neighbours kept on each side. *)

val create_network :
  ?seed:int64 -> ?leaf_set_radius:int -> node_count:int -> unit -> t
(** Bootstrap a network with fully correct routing state. *)

val join : t -> Hashing.Key.t
(** Add one node with a fresh identifier, routing its join request through
    the overlay and initializing its state from the nodes encountered, as
    in the Pastry join protocol; returns the identifier. *)

val join_with_key : t -> Hashing.Key.t -> unit
(** Join with an explicit identifier (for tests).
    @raise Invalid_argument if already present. *)

val leave : t -> Hashing.Key.t -> unit
(** Abrupt failure.  @raise Not_found if no such live node. *)

val repair : t -> unit
(** One repair round on every node: purge dead entries, refill leaf sets
    from neighbours' leaf sets, and patch routing-table holes from
    reachable nodes.  Run a few times after failures. *)

val live_count : t -> int
val live_keys : t -> Hashing.Key.t list

val lookup : t -> ?from:Hashing.Key.t -> Hashing.Key.t -> Hashing.Key.t * int
(** Route to the node responsible for the key; returns (owner, hops).
    @raise Not_found on an empty overlay. *)

val responsible_oracle : t -> Hashing.Key.t -> Hashing.Key.t
(** Ground truth: the live node numerically closest to the key (ties to the
    counter-clockwise side). *)

val is_converged : t -> bool
(** All lookups from all nodes agree with the oracle and leaf sets are
    correct. *)

val resolver : t -> Resolver.t
(** Resolver view: node indexes are ring-order positions among live nodes;
    [route_hops] measures real Pastry routes. *)

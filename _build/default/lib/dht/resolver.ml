type t = {
  node_count : int;
  responsible : Hashing.Key.t -> int;
  route_hops : Hashing.Key.t -> int;
  replicas : Hashing.Key.t -> int -> int list;
}

let responsible t key = t.responsible key
let route_hops t key = t.route_hops key
let node_count t = t.node_count
let replicas t key r = t.replicas key r

let ring_replicas ~node_count ~primary r =
  if r < 1 then invalid_arg "Resolver.ring_replicas: need at least one replica";
  List.init (Stdlib.min r node_count) (fun i -> (primary + i) mod node_count)

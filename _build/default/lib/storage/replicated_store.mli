(** Replicated DHT storage.

    Section IV-D: because index entries are regular DHT data, "they can
    benefit from the mechanisms implemented by the DHT substrate for
    increasing availability and scalability, such as data replication".
    This store writes every key to the [replication] nodes the resolver
    designates (the primary and its ring successors, Chord/DHash-style) and
    reads from the first replica that is still alive, so index paths survive
    node failures without any change to the index layer. *)

type 'v t

val create : resolver:Dht.Resolver.t -> replication:int -> unit -> 'v t
(** @raise Invalid_argument when [replication < 1]. *)

val replication : 'v t -> int

val insert : 'v t -> key:Hashing.Key.t -> 'v -> unit
(** Register the entry on every replica node. *)

val fail_node : 'v t -> int -> unit
(** Mark a node as failed: its replicas stop answering (their contents are
    kept, as a paused process would). *)

val revive_node : 'v t -> int -> unit

val alive : 'v t -> int -> bool

val lookup : 'v t -> Hashing.Key.t -> 'v list
(** Entries from the first live replica; [] when the key is unknown or
    every replica is down. *)

val available : 'v t -> Hashing.Key.t -> bool
(** Is at least one replica of this key's node set alive {e and} holding
    it? *)

val key_count : 'v t -> int
(** Distinct keys stored (counted once, not per replica). *)

val total_replica_entries : 'v t -> int
(** Stored entries across all replicas — the storage cost of replication. *)

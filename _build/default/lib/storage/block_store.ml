type file = { name : string; size_bytes : int }

type t = file Store.t

let create ~resolver () = Store.create ~resolver ()

let put t ~key file =
  ignore (Store.remove_key t key);
  Store.insert t ~key file

let get t key = match Store.lookup t key with [] -> None | file :: _ -> Some file

let mem t key = Store.mem t key

let delete t key = Store.remove_key t key > 0

let node_of t key = Store.node_of t key

let file_count t = Store.key_count t

let total_bytes t =
  Store.fold t ~init:0 ~f:(fun acc _key files ->
      List.fold_left (fun acc file -> acc + file.size_bytes) acc files)

let files_per_node t = Store.keys_per_node t

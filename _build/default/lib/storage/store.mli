(** DHT-backed multi-entry storage.

    The paper's only requirement on the storage substrate is that it "allow
    for the registration of multiple entries using the same key"
    (Section II).  This store places each key on the node a {!Dht.Resolver.t}
    designates and keeps, per node, a table from keys to entry lists.

    Entry values are polymorphic; the index layer stores query-to-query
    mappings here and the block store keeps file payloads. *)

type 'v t

val create : resolver:Dht.Resolver.t -> unit -> 'v t

val resolver : 'v t -> Dht.Resolver.t

val node_of : 'v t -> Hashing.Key.t -> int
(** The node responsible for a key. *)

val insert : 'v t -> key:Hashing.Key.t -> 'v -> unit
(** Register one more entry under [key] (duplicates allowed; most recent
    first). *)

val insert_unique : equal:('v -> 'v -> bool) -> 'v t -> key:Hashing.Key.t -> 'v -> bool
(** Like {!insert} but a no-op when an [equal] entry is already registered;
    returns whether the entry was added. *)

val lookup : 'v t -> Hashing.Key.t -> 'v list
(** All entries under [key], most recently inserted first; [] when absent. *)

val mem : 'v t -> Hashing.Key.t -> bool

val remove : 'v t -> key:Hashing.Key.t -> ('v -> bool) -> int
(** Remove all entries under [key] satisfying the predicate; returns how many
    were removed.  The key disappears when its last entry goes. *)

val remove_key : 'v t -> Hashing.Key.t -> int
(** Remove the key with all its entries; returns the number removed. *)

val key_count : 'v t -> int
(** Number of distinct keys stored (across all nodes). *)

val entry_count : 'v t -> int
(** Total entries across all keys. *)

val keys_per_node : 'v t -> int array
(** Distinct keys stored on each node. *)

val entries_per_node : 'v t -> int array
(** Registered entries on each node (a key with several entries counts each
    of them) — the paper's "regular keys per node" measure (Section V-f). *)

val fold : 'v t -> init:'acc -> f:('acc -> Hashing.Key.t -> 'v list -> 'acc) -> 'acc
(** Fold over every key with its entries (iteration order unspecified). *)

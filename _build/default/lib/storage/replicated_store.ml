module Key = Hashing.Key

type 'v t = {
  resolver : Dht.Resolver.t;
  replication : int;
  tables : (Key.t, 'v list) Hashtbl.t array;
  alive : bool array;
  keys : (Key.t, unit) Hashtbl.t; (* distinct keys, for counting *)
}

let create ~resolver ~replication () =
  if replication < 1 then
    invalid_arg "Replicated_store.create: need at least one replica";
  let n = Dht.Resolver.node_count resolver in
  {
    resolver;
    replication;
    tables = Array.init n (fun _ -> Hashtbl.create 64);
    alive = Array.make n true;
    keys = Hashtbl.create 1024;
  }

let replication t = t.replication

let replica_nodes t key = Dht.Resolver.replicas t.resolver key t.replication

let insert t ~key v =
  Hashtbl.replace t.keys key ();
  List.iter
    (fun node ->
      let table = t.tables.(node) in
      let existing = Option.value ~default:[] (Hashtbl.find_opt table key) in
      Hashtbl.replace table key (v :: existing))
    (replica_nodes t key)

let check_node t node =
  if node < 0 || node >= Array.length t.alive then
    invalid_arg "Replicated_store: bad node index"

let fail_node t node =
  check_node t node;
  t.alive.(node) <- false

let revive_node t node =
  check_node t node;
  t.alive.(node) <- true

let alive t node =
  check_node t node;
  t.alive.(node)

let lookup t key =
  let rec try_replicas = function
    | [] -> []
    | node :: rest ->
        if t.alive.(node) then
          Option.value ~default:[] (Hashtbl.find_opt t.tables.(node) key)
        else try_replicas rest
  in
  try_replicas (replica_nodes t key)

let available t key =
  List.exists
    (fun node -> t.alive.(node) && Hashtbl.mem t.tables.(node) key)
    (replica_nodes t key)

let key_count t = Hashtbl.length t.keys

let total_replica_entries t =
  Array.fold_left
    (fun acc table -> Hashtbl.fold (fun _ entries n -> n + List.length entries) table acc)
    0 t.tables

(** File payload storage (the "Publication index" top level of Fig. 5).

    Actual article files never leave their home node; the indexes only carry
    keys.  The block store models that home: each file is a named blob with a
    size, placed at the node responsible for the hash of its most specific
    descriptor.  Sizes drive the paper's storage-overhead comparison
    (Section V-B: 29.1 GB of articles at an average of 250 KB each). *)

type file = { name : string; size_bytes : int }

type t

val create : resolver:Dht.Resolver.t -> unit -> t

val put : t -> key:Hashing.Key.t -> file -> unit
(** Store a file under its descriptor key.  Re-putting replaces. *)

val get : t -> Hashing.Key.t -> file option

val mem : t -> Hashing.Key.t -> bool

val delete : t -> Hashing.Key.t -> bool
(** Returns whether a file was present. *)

val node_of : t -> Hashing.Key.t -> int

val file_count : t -> int

val total_bytes : t -> int
(** Sum of stored file sizes. *)

val files_per_node : t -> int array

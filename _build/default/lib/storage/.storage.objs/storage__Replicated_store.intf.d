lib/storage/replicated_store.mli: Dht Hashing

lib/storage/block_store.mli: Dht Hashing

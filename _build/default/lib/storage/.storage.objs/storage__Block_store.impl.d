lib/storage/block_store.ml: List Store

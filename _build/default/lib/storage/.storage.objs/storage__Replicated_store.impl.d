lib/storage/replicated_store.ml: Array Dht Hashing Hashtbl List Option

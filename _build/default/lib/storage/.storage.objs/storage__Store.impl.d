lib/storage/store.ml: Array Dht Hashing Hashtbl List Option

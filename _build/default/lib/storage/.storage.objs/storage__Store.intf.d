lib/storage/store.mli: Dht Hashing

lib/cache/shortcut_cache.ml: Hashtbl List Lru

lib/cache/lru.ml: Hashtbl List

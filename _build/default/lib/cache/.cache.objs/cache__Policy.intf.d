lib/cache/policy.mli:

lib/cache/shortcut_cache.mli:

lib/cache/lru.mli:

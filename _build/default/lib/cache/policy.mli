(** The shortcut-caching policies compared in Section V-D.

    After a successful lookup, peers may create shortcut entries — direct
    mappings from generic queries to the target's descriptor — in the caches
    of nodes traversed on the lookup path:

    - {e multi-cache}: on every node along the path, unbounded;
    - {e single-cache}: only on the first node contacted, unbounded;
    - {e LRU-k}: single placement with at most [k] entries per node. *)

type placement =
  | No_cache
  | Single_cache  (** Shortcut on the first node of the path only. *)
  | Multi_cache  (** Shortcut on every node along the path. *)

type t = { placement : placement; capacity : int option }

val no_cache : t
val single_cache : t
val multi_cache : t
val lru : int -> t
(** [lru k] is single placement with an LRU-bounded per-node capacity.
    @raise Invalid_argument when [k <= 0]. *)

val caches_enabled : t -> bool
val label : t -> string
(** Display name: "No Cache", "Single", "Multi", "LRU10", ... *)

val paper_policies : t list
(** The six configurations of Figs. 11-14: no-cache, multi, single,
    LRU 10/20/30. *)

type placement = No_cache | Single_cache | Multi_cache

type t = { placement : placement; capacity : int option }

let no_cache = { placement = No_cache; capacity = None }
let single_cache = { placement = Single_cache; capacity = None }
let multi_cache = { placement = Multi_cache; capacity = None }

let lru k =
  if k <= 0 then invalid_arg "Policy.lru: capacity must be positive";
  { placement = Single_cache; capacity = Some k }

let caches_enabled t = t.placement <> No_cache

let label t =
  match (t.placement, t.capacity) with
  | No_cache, _ -> "No Cache"
  | Single_cache, None -> "Single"
  | Multi_cache, None -> "Multi"
  | Single_cache, Some k -> Printf.sprintf "LRU%d" k
  | Multi_cache, Some k -> Printf.sprintf "Multi-LRU%d" k

let paper_policies = [ no_cache; multi_cache; single_cache; lru 10; lru 20; lru 30 ]

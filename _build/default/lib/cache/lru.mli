(** Generic LRU map: hash table plus intrusive doubly-linked recency list.

    All operations are O(1).  With [capacity = None] the map never evicts
    (the paper's unbounded single/multi-cache policies); with
    [capacity = Some k] inserting into a full map evicts the least recently
    used entry first (the paper's LRU-10/20/30 policies). *)

type ('k, 'v) t

val create : ?capacity:int -> ?on_evict:('k -> 'v -> unit) -> unit -> ('k, 'v) t
(** [create ()] is unbounded.  [on_evict] fires for every capacity eviction
    (not for {!remove} or overwrites).
    @raise Invalid_argument when [capacity <= 0]. *)

val capacity : ('k, 'v) t -> int option
val length : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit refreshes the entry's recency. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Lookup without touching recency. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership without touching recency. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite; either way the entry becomes most recent.  May
    evict the least recently used entry. *)

val remove : ('k, 'v) t -> 'k -> bool
(** Returns whether the key was present. *)

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Entries from most to least recently used. *)

val fold : ('k, 'v) t -> init:'acc -> f:('acc -> 'k -> 'v -> 'acc) -> 'acc
(** Fold from most to least recently used. *)

val clear : ('k, 'v) t -> unit

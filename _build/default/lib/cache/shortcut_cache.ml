(* Entries live in an LRU keyed by the (query, target) string pair, with a
   secondary index from query string to the set of its cached pairs so that
   [find] is proportional to the number of shortcuts for that query, not the
   cache size.  The LRU eviction hook keeps the secondary index in sync. *)

module String_pair = struct
  type t = string * string
end

type 'q t = {
  lru : (String_pair.t, 'q * 'q) Lru.t;
  by_query : (string, (string, unit) Hashtbl.t) Hashtbl.t;
}

let unindex by_query (query_key, target_key) =
  match Hashtbl.find_opt by_query query_key with
  | None -> ()
  | Some targets ->
      Hashtbl.remove targets target_key;
      if Hashtbl.length targets = 0 then Hashtbl.remove by_query query_key

let create ~capacity () =
  let by_query = Hashtbl.create 16 in
  let on_evict pair _value = unindex by_query pair in
  { lru = Lru.create ?capacity ~on_evict (); by_query }

let find t ~query_key =
  match Hashtbl.find_opt t.by_query query_key with
  | None -> []
  | Some targets ->
      Hashtbl.fold
        (fun target_key () acc ->
          match Lru.find t.lru (query_key, target_key) with
          | Some pair -> pair :: acc
          | None -> acc)
        targets []

let find_target t ~query_key ~target_key =
  match Lru.find t.lru (query_key, target_key) with
  | Some (_query, target) -> Some target
  | None -> None

let add t ~query_key ~target_key pair =
  let fresh = not (Lru.mem t.lru (query_key, target_key)) in
  Lru.add t.lru (query_key, target_key) pair;
  if fresh then begin
    let targets =
      match Hashtbl.find_opt t.by_query query_key with
      | Some targets -> targets
      | None ->
          let targets = Hashtbl.create 4 in
          Hashtbl.replace t.by_query query_key targets;
          targets
    in
    Hashtbl.replace targets target_key ()
  end;
  fresh

let size t = Lru.length t.lru

let capacity t = Lru.capacity t.lru

let is_full t =
  match Lru.capacity t.lru with None -> false | Some c -> Lru.length t.lru >= c

let entries t = List.map snd (Lru.to_list t.lru)

(** Fuzzy matching against a vocabulary of known strings.

    The paper's closing note (Section VI): the indexing techniques depend on
    the DHT's exact matching, so misspelled descriptors or queries find
    nothing — but "misspellings can often be taken care of by validating
    descriptors and queries against databases that store known file
    descriptors, such as CDDB".  This module is that validation database: a
    character-trigram index over the known values of a field, answering
    "which known strings is this misspelled one likely to mean?" by trigram
    overlap, ranked by Damerau-Levenshtein distance.

    Lookups are case-insensitive; suggestions are returned in their original
    spelling. *)

type t

val create : unit -> t

val add : t -> string -> unit
(** Register a known value.  Duplicates are ignored. *)

val of_list : string list -> t

val size : t -> int
(** Number of distinct known values. *)

val mem : t -> string -> bool
(** Case-insensitive exact membership. *)

val edit_distance : string -> string -> int
(** Damerau-Levenshtein distance (insert, delete, substitute, and adjacent
    transposition — the classic typo operations), case-sensitive. *)

val suggest : ?max_distance:int -> ?limit:int -> t -> string -> (string * int) list
(** [suggest t misspelled] returns known values within [max_distance]
    (default: 1 + length / 4, so longer strings tolerate more typos) with
    their distances, closest first, at most [limit] (default 5) of them.
    An exact (case-insensitive) match is returned alone with distance 0. *)

val correct : t -> string -> string option
(** The single best suggestion: the exact match, or the unique closest
    known value.  [None] when nothing is close enough or several candidates
    tie (correcting would be a guess). *)

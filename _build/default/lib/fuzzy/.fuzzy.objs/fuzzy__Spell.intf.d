lib/fuzzy/spell.mli:

lib/fuzzy/spell.ml: Array Hashtbl Int List Option Stdlib String

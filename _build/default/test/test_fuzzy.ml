(* Fuzzy matching (Section VI future work): edit distance, trigram
   suggestions, and the bibliographic spell-fixing layer. *)

module Spell = Fuzzy.Spell
module Q = Bib.Bib_query
module Article = Bib.Article

let edit_distance_cases () =
  let check a b expected =
    Alcotest.(check int) (Printf.sprintf "d(%s, %s)" a b) expected (Spell.edit_distance a b)
  in
  check "" "" 0;
  check "abc" "abc" 0;
  check "abc" "" 3;
  check "" "xy" 2;
  check "kitten" "sitting" 3;
  check "smith" "smyth" 1;
  (* Transposition counts as one operation (Damerau). *)
  check "smith" "simth" 1;
  check "ab" "ba" 1;
  check "infocom" "infocmo" 1;
  check "abc" "cab" 2

let edit_distance_symmetric =
  QCheck.Test.make ~name:"edit distance symmetric" ~count:300
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 12)) (string_of_size (QCheck.Gen.int_range 0 12)))
    (fun (a, b) -> Spell.edit_distance a b = Spell.edit_distance b a)

let edit_distance_triangle =
  QCheck.Test.make ~name:"edit distance triangle inequality" ~count:300
    QCheck.(triple (string_of_size (QCheck.Gen.int_range 0 8))
              (string_of_size (QCheck.Gen.int_range 0 8))
              (string_of_size (QCheck.Gen.int_range 0 8)))
    (fun (a, b, c) ->
      Spell.edit_distance a c <= Spell.edit_distance a b + Spell.edit_distance b c)

let edit_distance_identity =
  QCheck.Test.make ~name:"edit distance zero iff equal" ~count:300
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 10)) (string_of_size (QCheck.Gen.int_range 0 10)))
    (fun (a, b) -> Spell.edit_distance a b = 0 = String.equal a b)

let suggestions_basic () =
  let vocabulary = Spell.of_list [ "SIGCOMM"; "INFOCOM"; "SOSP"; "OSDI"; "ICDCS" ] in
  Alcotest.(check int) "five values" 5 (Spell.size vocabulary);
  (match Spell.suggest vocabulary "INFOCMO" with
  | ("INFOCOM", 1) :: _ -> ()
  | other ->
      Alcotest.failf "expected INFOCOM first, got [%s]"
        (String.concat "; " (List.map fst other)));
  (* Exact matches win outright, case-insensitively. *)
  Alcotest.(check (list (pair string int))) "exact match" [ ("SIGCOMM", 0) ]
    (Spell.suggest vocabulary "sigcomm");
  Alcotest.(check (list (pair string int))) "nothing close" []
    (Spell.suggest vocabulary "ZZZZZZZZ")

let correct_picks_unique_best () =
  let vocabulary = Spell.of_list [ "John Smith"; "John Smyth"; "Alan Doe" ] in
  (* "John Smoth" is distance 1 from both Smith and Smyth: ambiguous. *)
  Alcotest.(check (option string)) "ambiguous stays unfixed" None
    (Spell.correct vocabulary "John Smoth");
  Alcotest.(check (option string)) "unique typo fixed" (Some "Alan Doe")
    (Spell.correct vocabulary "Alan De");
  Alcotest.(check (option string)) "exact passes" (Some "John Smith")
    (Spell.correct vocabulary "john smith")

let suggest_respects_limits () =
  let vocabulary = Spell.of_list [ "aaa1"; "aaa2"; "aaa3"; "aaa4"; "aaa5"; "aaa6" ] in
  Alcotest.(check int) "limit" 3 (List.length (Spell.suggest ~limit:3 vocabulary "aaa9"));
  Alcotest.(check int) "max distance 0 finds nothing" 0
    (List.length (Spell.suggest ~max_distance:0 vocabulary "aaa9"))

let suggestions_find_all_close_values =
  (* Any vocabulary word deformed by one substitution must be recovered. *)
  QCheck.Test.make ~name:"one-typo words are recovered" ~count:200
    QCheck.(int_range 0 99)
    (fun i ->
      let vocabulary =
        Spell.of_list (List.init 100 (fun j -> Printf.sprintf "value-%02d-word" j))
      in
      let original = Printf.sprintf "value-%02d-word" i in
      let misspelled = "value-" ^ String.sub original 6 2 ^ "-wxrd" in
      match Spell.suggest vocabulary misspelled with
      | (best, _) :: _ -> String.equal best original
      | [] -> false)

let spellfix_corpus () =
  let articles = Bib.Corpus.generate ~seed:3L (Bib.Corpus.default_config ~article_count:200) in
  let fixer = Bib.Spellfix.of_corpus articles in
  let a0 : Article.t = articles.(0) in
  let author = List.hd a0.authors in
  (* A correct query is untouched. *)
  (match Bib.Spellfix.fix fixer (Q.author_q author) with
  | Bib.Spellfix.Unchanged -> ()
  | Bib.Spellfix.Corrected _ | Bib.Spellfix.Unfixable ->
      Alcotest.fail "correct query must pass unchanged");
  (* Misspell the author's last name by one letter. *)
  let broken_last = "X" ^ String.sub author.Article.last 1 (String.length author.Article.last - 1) in
  let broken = Q.author_q { author with Article.last = broken_last } in
  (match Bib.Spellfix.fix fixer broken with
  | Bib.Spellfix.Corrected fixed ->
      Alcotest.(check string) "restored the known author"
        (Q.to_string (Q.author_q author))
        (Q.to_string fixed)
  | Bib.Spellfix.Unchanged -> Alcotest.fail "misspelling not noticed"
  | Bib.Spellfix.Unfixable -> Alcotest.fail "misspelling not fixed");
  (* Garbage is reported unfixable. *)
  match Bib.Spellfix.fix fixer (Q.title_q "zzzzqqqqppp") with
  | Bib.Spellfix.Unfixable -> ()
  | Bib.Spellfix.Unchanged | Bib.Spellfix.Corrected _ ->
      Alcotest.fail "garbage should be unfixable"

let spellfix_end_to_end () =
  (* The full Section VI story: a misspelled venue query finds nothing in
     the exact-match index, gets validated against the vocabulary, and the
     corrected query succeeds. *)
  let articles = Bib.Corpus.generate ~seed:5L (Bib.Corpus.default_config ~article_count:300) in
  let resolver = Dht.Static_dht.resolver (Dht.Static_dht.create ~seed:5L ~node_count:30 ()) in
  let index = Bib.Bib_index.create ~resolver () in
  Bib.Bib_index.publish_corpus index ~kind:Bib.Schemes.Simple articles;
  let fixer = Bib.Spellfix.of_corpus articles in
  let a0 : Article.t = articles.(0) in
  let misspelled = Q.conf_q (a0.conf ^ "X") in
  Alcotest.(check int) "exact index finds nothing" 0
    (List.length (Bib.Bib_index.search index misspelled));
  match Bib.Spellfix.fix fixer misspelled with
  | Bib.Spellfix.Corrected fixed ->
      Alcotest.(check bool) "corrected query succeeds" true
        (Bib.Bib_index.search index fixed <> [])
  | Bib.Spellfix.Unchanged | Bib.Spellfix.Unfixable ->
      Alcotest.fail "venue typo should be corrected"

let spellfix_msd_passthrough () =
  let articles = Bib.Corpus.generate ~seed:7L (Bib.Corpus.default_config ~article_count:50) in
  let fixer = Bib.Spellfix.of_corpus articles in
  match Bib.Spellfix.fix fixer (Q.msd articles.(0)) with
  | Bib.Spellfix.Unchanged -> ()
  | Bib.Spellfix.Corrected _ | Bib.Spellfix.Unfixable ->
      Alcotest.fail "descriptors pass through"

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "fuzzy:spell",
      [
        Alcotest.test_case "edit distance cases" `Quick edit_distance_cases;
        Alcotest.test_case "suggestions" `Quick suggestions_basic;
        Alcotest.test_case "correct picks unique best" `Quick correct_picks_unique_best;
        Alcotest.test_case "limits respected" `Quick suggest_respects_limits;
      ]
      @ qcheck
          [
            edit_distance_symmetric;
            edit_distance_triangle;
            edit_distance_identity;
            suggestions_find_all_close_values;
          ] );
    ( "fuzzy:spellfix",
      [
        Alcotest.test_case "corpus vocabulary" `Quick spellfix_corpus;
        Alcotest.test_case "end to end" `Quick spellfix_end_to_end;
        Alcotest.test_case "MSDs pass through" `Quick spellfix_msd_passthrough;
      ] );
  ]

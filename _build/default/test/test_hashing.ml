(* SHA-1 against RFC 3174 / FIPS 180 test vectors, and the 160-bit ring key
   arithmetic Chord depends on. *)

module Sha1 = Hashing.Sha1
module Key = Hashing.Key

let sha1_vectors () =
  let check input expected =
    Alcotest.(check string) input expected (Sha1.to_hex (Sha1.digest_string input))
  in
  check "" "da39a3ee5e6b4b0d3255bfef95601890afd80709";
  check "abc" "a9993e364706816aba3e25717850c26c9cd0d89d";
  check "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "84983e441c3bd26ebaae4aa1f95129e5e54670f1";
  check "The quick brown fox jumps over the lazy dog"
    "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"

let sha1_million_a () =
  (* FIPS 180-1 vector: one million repetitions of "a". *)
  let input = String.make 1_000_000 'a' in
  Alcotest.(check string) "million a" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Sha1.to_hex (Sha1.digest_string input))

let sha1_block_boundaries () =
  (* Lengths around the 64-byte block and 55/56-byte padding boundaries must
     all round-trip through hex without error and be distinct. *)
  let digests =
    List.map
      (fun len -> Sha1.to_hex (Sha1.digest_string (String.make len 'x')))
      [ 54; 55; 56; 57; 63; 64; 65; 119; 120; 128 ]
  in
  let distinct = List.sort_uniq String.compare digests in
  Alcotest.(check int) "all boundary digests distinct" (List.length digests)
    (List.length distinct)

let sha1_hex_roundtrip =
  QCheck.Test.make ~name:"Sha1 hex roundtrip" ~count:200 QCheck.string (fun s ->
      let d = Sha1.digest_string s in
      String.equal (Sha1.of_hex (Sha1.to_hex d)) d)

let key_of_int_roundtrip () =
  Alcotest.(check string) "key 1"
    "0000000000000000000000000000000000000001"
    (Key.to_hex (Key.of_int 1));
  Alcotest.(check string) "key 0x1234"
    "0000000000000000000000000000000000001234"
    (Key.to_hex (Key.of_int 0x1234))

let key_succ_wraps () =
  let top = Key.of_hex "ffffffffffffffffffffffffffffffffffffffff" in
  Alcotest.(check bool) "succ of max is zero" true (Key.equal (Key.succ top) Key.zero)

let key_add_pow2 () =
  let k = Key.of_int 1 in
  Alcotest.(check string) "1 + 2^0 = 2"
    "0000000000000000000000000000000000000002"
    (Key.to_hex (Key.add_pow2 k 0));
  Alcotest.(check string) "1 + 2^8 = 257"
    "0000000000000000000000000000000000000101"
    (Key.to_hex (Key.add_pow2 k 8));
  (* 2^159 + 2^159 wraps to 0. *)
  let half = Key.add_pow2 Key.zero 159 in
  Alcotest.(check bool) "2^159 * 2 wraps" true (Key.equal (Key.add_pow2 half 159) Key.zero)

let key_add_pow2_bounds () =
  Alcotest.check_raises "exponent 160 rejected"
    (Invalid_argument "Key.add_pow2: exponent out of range") (fun () ->
      ignore (Key.add_pow2 Key.zero 160))

let key_interval_plain () =
  let k1 = Key.of_int 10 and k5 = Key.of_int 50 and k9 = Key.of_int 90 in
  Alcotest.(check bool) "50 in (10,90)" true (Key.in_interval_oo k5 ~lo:k1 ~hi:k9);
  Alcotest.(check bool) "10 not in (10,90)" false (Key.in_interval_oo k1 ~lo:k1 ~hi:k9);
  Alcotest.(check bool) "90 not in (10,90)" false (Key.in_interval_oo k9 ~lo:k1 ~hi:k9);
  Alcotest.(check bool) "90 in (10,90]" true (Key.in_interval_oc k9 ~lo:k1 ~hi:k9)

let key_interval_wrapping () =
  let k1 = Key.of_int 10 and k9 = Key.of_int 90 in
  let k95 = Key.of_int 95 and k5 = Key.of_int 5 in
  (* The wrapping interval (90, 10) contains 95 and 5 but not 50. *)
  Alcotest.(check bool) "95 in (90,10)" true (Key.in_interval_oo k95 ~lo:k9 ~hi:k1);
  Alcotest.(check bool) "5 in (90,10)" true (Key.in_interval_oo k5 ~lo:k9 ~hi:k1);
  Alcotest.(check bool) "50 not in (90,10)" false
    (Key.in_interval_oo (Key.of_int 50) ~lo:k9 ~hi:k1);
  (* Degenerate interval (k, k): the whole ring minus the point (open) or the
     whole ring (half-open). *)
  Alcotest.(check bool) "(k,k) open excludes k" false (Key.in_interval_oo k1 ~lo:k1 ~hi:k1);
  Alcotest.(check bool) "(k,k) open has others" true (Key.in_interval_oo k9 ~lo:k1 ~hi:k1);
  Alcotest.(check bool) "(k,k] contains k" true (Key.in_interval_oc k1 ~lo:k1 ~hi:k1)

let key_distance () =
  let a = Key.of_int 10 and b = Key.of_int 90 in
  Alcotest.(check string) "distance 10->90"
    (Key.to_hex (Key.of_int 80))
    (Key.to_hex (Key.distance_cw a b));
  (* Distance wrapping through zero: 90 -> 10 is 2^160 - 80. *)
  let wrap = Key.distance_cw b a in
  Alcotest.(check string) "distance 90->10 wraps"
    "ffffffffffffffffffffffffffffffffffffffb0"
    (Key.to_hex wrap)

let arbitrary_key =
  QCheck.make
    ~print:(fun k -> Key.to_hex k)
    (QCheck.Gen.map
       (fun seed -> Key.random (Stdx.Prng.create ~seed:(Int64.of_int seed)))
       QCheck.Gen.int)

let key_interval_oc_trichotomy =
  QCheck.Test.make ~name:"ring trichotomy: k in (a,b] xor k in (b,a]" ~count:500
    (QCheck.triple arbitrary_key arbitrary_key arbitrary_key)
    (fun (k, a, b) ->
      QCheck.assume (not (Key.equal a b));
      let in_ab = Key.in_interval_oc k ~lo:a ~hi:b in
      let in_ba = Key.in_interval_oc k ~lo:b ~hi:a in
      (* Every point other than a and b lies in exactly one of the two arcs. *)
      if Key.equal k a || Key.equal k b then in_ab <> in_ba else in_ab <> in_ba)

let key_distance_inverse =
  QCheck.Test.make ~name:"distance_cw a b + distance_cw b a = 0 (mod ring)" ~count:500
    (QCheck.pair arbitrary_key arbitrary_key)
    (fun (a, b) ->
      QCheck.assume (not (Key.equal a b));
      let d1 = Key.to_float (Key.distance_cw a b) in
      let d2 = Key.to_float (Key.distance_cw b a) in
      let ring = 2.0 ** 160.0 in
      Float.abs ((d1 +. d2) -. ring) /. ring < 1e-9)

let key_of_string_spread () =
  (* Hashed keys should spread: among 1000 consecutive strings, the top
     eighth of the ring should hold roughly an eighth of the keys. *)
  let count = ref 0 in
  let threshold = Key.of_hex "e000000000000000000000000000000000000000" in
  for i = 1 to 1_000 do
    let k = Key.of_string (Printf.sprintf "key-%d" i) in
    if Key.compare k threshold >= 0 then incr count
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d of 1000 keys in top eighth" !count)
    true
    (!count > 80 && !count < 170)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "hashing:sha1",
      [
        Alcotest.test_case "RFC 3174 vectors" `Quick sha1_vectors;
        Alcotest.test_case "million 'a'" `Slow sha1_million_a;
        Alcotest.test_case "block boundary lengths" `Quick sha1_block_boundaries;
      ]
      @ qcheck [ sha1_hex_roundtrip ] );
    ( "hashing:key",
      [
        Alcotest.test_case "of_int/to_hex" `Quick key_of_int_roundtrip;
        Alcotest.test_case "succ wraps" `Quick key_succ_wraps;
        Alcotest.test_case "add_pow2" `Quick key_add_pow2;
        Alcotest.test_case "add_pow2 bounds" `Quick key_add_pow2_bounds;
        Alcotest.test_case "plain intervals" `Quick key_interval_plain;
        Alcotest.test_case "wrapping intervals" `Quick key_interval_wrapping;
        Alcotest.test_case "clockwise distance" `Quick key_distance;
        Alcotest.test_case "hashed key spread" `Quick key_of_string_spread;
      ]
      @ qcheck [ key_interval_oc_trichotomy; key_distance_inverse ] );
  ]

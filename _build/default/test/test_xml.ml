(* XML tree, parser and printer tests, built around the paper's Fig. 1
   descriptors. *)

module Xml = Xmlkit.Xml

let d1_text =
  "<article><author><first>John</first><last>Smith</last></author>\n\
   <title>TCP</title><conf>SIGCOMM</conf><year>1989</year><size>315635</size></article>"

let d1 () = Xml.of_string d1_text

let parse_fig1 () =
  let doc = d1 () in
  Alcotest.(check (option string)) "root name" (Some "article") (Xml.name doc);
  Alcotest.(check int) "five fields" 5 (List.length (Xml.child_elements doc));
  match Xml.find_child doc "author" with
  | None -> Alcotest.fail "author element missing"
  | Some author ->
      Alcotest.(check string) "first name" "John"
        (Xml.text_content (Option.get (Xml.find_child author "first")));
      Alcotest.(check string) "last name" "Smith"
        (Xml.text_content (Option.get (Xml.find_child author "last")))

let parse_roundtrip () =
  let doc = d1 () in
  let doc' = Xml.of_string (Xml.to_string doc) in
  Alcotest.(check bool) "parse . print = id" true (Xml.equal doc doc')

let parse_indent_roundtrip () =
  let doc = d1 () in
  let doc' = Xml.of_string (Xml.to_string ~indent:true doc) in
  Alcotest.(check bool) "indented print reparses" true (Xml.equal doc doc')

let parse_attributes () =
  let doc = Xml.of_string "<a x=\"1\" y=\"two words\"><b/></a>" in
  match doc with
  | Xml.Element ("a", attrs, [ Xml.Element ("b", [], []) ]) ->
      Alcotest.(check (list (pair string string)))
        "attributes" [ ("x", "1"); ("y", "two words") ] attrs
  | _ -> Alcotest.fail "unexpected structure"

let parse_entities () =
  let doc = Xml.of_string "<t>a &lt;b&gt; &amp; &quot;c&quot; &apos;d&apos;</t>" in
  Alcotest.(check string) "entities decoded" "a <b> & \"c\" 'd'" (Xml.text_content doc)

let escape_roundtrip () =
  let doc = Xml.leaf "t" "x < y & z > \"w\"" in
  let doc' = Xml.of_string (Xml.to_string doc) in
  Alcotest.(check bool) "special characters survive print/parse" true (Xml.equal doc doc')

let parse_comments_and_prolog () =
  let doc =
    Xml.of_string
      "<?xml version=\"1.0\"?><!-- a header comment --><a><!-- inner -->\n<b>x</b></a>"
  in
  Alcotest.(check (option string)) "root" (Some "a") (Xml.name doc);
  Alcotest.(check string) "text below comment" "x" (Xml.text_content doc)

let parse_self_closing () =
  let doc = Xml.of_string "<a><b/><c></c></a>" in
  Alcotest.(check int) "two children" 2 (List.length (Xml.child_elements doc))

let parse_rejects_mismatch () =
  let is_parse_error = function Xml.Parse_error _ -> true | _ -> false in
  List.iter
    (fun input ->
      match Xml.of_string input with
      | exception e when is_parse_error e -> ()
      | exception e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
      | _ -> Alcotest.failf "accepted malformed input %S" input)
    [ "<a><b></a>"; "<a>"; "text"; "<a></a><b></b>"; "<a>&unknown;</a>"; "" ]

let find_children_ordered () =
  let doc = Xml.of_string "<r><x>1</x><y>2</y><x>3</x></r>" in
  let xs = Xml.find_children doc "x" in
  Alcotest.(check (list string)) "both x children in order" [ "1"; "3" ]
    (List.map Xml.text_content xs)

let canonical_ignores_sibling_order () =
  let a = Xml.of_string "<r><x>1</x><y>2</y></r>" in
  let b = Xml.of_string "<r><y>2</y><x>1</x></r>" in
  Alcotest.(check int) "field order irrelevant" 0 (Xml.canonical_compare a b);
  Alcotest.(check bool) "structural equality is order-sensitive" false (Xml.equal a b)

let canonical_distinguishes_content () =
  let a = Xml.of_string "<r><x>1</x></r>" in
  let b = Xml.of_string "<r><x>2</x></r>" in
  Alcotest.(check bool) "different values differ" true (Xml.canonical_compare a b <> 0)

let size_accounts_serialization () =
  let doc = d1 () in
  Alcotest.(check int) "size = compact serialization length"
    (String.length (Xml.to_string doc))
    (Xml.size_bytes doc)

let multi_author_article () =
  (* Articles can have several author elements; all must be reachable. *)
  let doc =
    Xml.of_string
      "<article><author><first>A</first><last>B</last></author>\
       <author><first>C</first><last>D</last></author><title>T</title></article>"
  in
  Alcotest.(check int) "two authors" 2 (List.length (Xml.find_children doc "author"))

let builder_equivalence () =
  let built =
    Xml.element "article"
      [
        Xml.element "author" [ Xml.leaf "first" "John"; Xml.leaf "last" "Smith" ];
        Xml.leaf "title" "TCP";
        Xml.leaf "conf" "SIGCOMM";
        Xml.leaf "year" "1989";
        Xml.leaf "size" "315635";
      ]
  in
  Alcotest.(check bool) "builder matches parsed Fig. 1" true (Xml.equal built (d1 ()))

let gen_xml =
  (* Random small trees for round-trip properties. *)
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c"; "node"; "field" ] in
  let value = oneofl [ "x"; "hello world"; "1989"; "a&b"; "<tag>" ] in
  sized (fun size ->
      fix
        (fun self size ->
          if size <= 1 then map2 (fun n v -> Xml.leaf n v) name value
          else
            map2
              (fun n children -> Xml.element n children)
              name
              (list_size (int_range 1 3) (self (size / 2))))
        (min size 8))

let arbitrary_xml = QCheck.make ~print:Xml.to_string gen_xml

let xml_roundtrip_property =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:300 arbitrary_xml (fun doc ->
      Xml.equal doc (Xml.of_string (Xml.to_string doc)))

let xml_canonical_reflexive =
  QCheck.Test.make ~name:"canonical_compare reflexive" ~count:300 arbitrary_xml (fun doc ->
      Xml.canonical_compare doc doc = 0)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "xmlkit",
      [
        Alcotest.test_case "parse Fig. 1 descriptor" `Quick parse_fig1;
        Alcotest.test_case "print/parse roundtrip" `Quick parse_roundtrip;
        Alcotest.test_case "indented print reparses" `Quick parse_indent_roundtrip;
        Alcotest.test_case "attributes" `Quick parse_attributes;
        Alcotest.test_case "entities" `Quick parse_entities;
        Alcotest.test_case "escaping" `Quick escape_roundtrip;
        Alcotest.test_case "comments and prolog" `Quick parse_comments_and_prolog;
        Alcotest.test_case "self-closing elements" `Quick parse_self_closing;
        Alcotest.test_case "malformed input rejected" `Quick parse_rejects_mismatch;
        Alcotest.test_case "find_children order" `Quick find_children_ordered;
        Alcotest.test_case "canonical order-insensitive" `Quick canonical_ignores_sibling_order;
        Alcotest.test_case "canonical content-sensitive" `Quick canonical_distinguishes_content;
        Alcotest.test_case "size accounting" `Quick size_accounts_serialization;
        Alcotest.test_case "multi-author articles" `Quick multi_author_article;
        Alcotest.test_case "builder equivalence" `Quick builder_equivalence;
      ]
      @ qcheck [ xml_roundtrip_property; xml_canonical_reflexive ] );
  ]

test/test_p2pindex.ml: Alcotest Array Dht Hashing List Option P2pindex Printf Storage Xmlkit Xpath

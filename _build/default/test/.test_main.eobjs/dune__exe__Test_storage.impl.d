test/test_storage.ml: Alcotest Array Dht Format Hashing Int List Printf QCheck QCheck_alcotest Storage String

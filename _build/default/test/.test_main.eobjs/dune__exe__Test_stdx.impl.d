test/test_stdx.ml: Alcotest Array Float Hashtbl Int64 List Option Printf QCheck QCheck_alcotest Stdx String

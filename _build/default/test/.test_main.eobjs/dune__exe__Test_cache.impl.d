test/test_cache.ml: Alcotest Cache List QCheck QCheck_alcotest

test/test_dht.ml: Alcotest Array Dht Fun Hashing Int Int64 List Printf QCheck QCheck_alcotest Stdlib Stdx

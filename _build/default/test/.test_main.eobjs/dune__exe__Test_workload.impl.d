test/test_workload.ml: Alcotest Bib Filename Float Fun Hashtbl In_channel List Option Out_channel Printf Stdx Sys Workload

test/test_fuzzy.ml: Alcotest Array Bib Dht Fuzzy List Printf QCheck QCheck_alcotest String

test/test_xpath.ml: Alcotest List Printf QCheck QCheck_alcotest String Xmlkit Xpath

test/test_bib.ml: Alcotest Array Bib Dht Filename Fun Hashtbl In_channel List Out_channel P2pindex Printf QCheck QCheck_alcotest Storage String Sys Xmlkit Xpath

test/test_xml.ml: Alcotest List Option Printexc QCheck QCheck_alcotest String Xmlkit

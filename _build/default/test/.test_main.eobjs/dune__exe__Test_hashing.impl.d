test/test_hashing.ml: Alcotest Float Hashing Int64 List Printf QCheck QCheck_alcotest Stdx String

test/test_sim.ml: Alcotest Array Bib Cache Float Int Int64 List Printf Sim Stdx Workload

test/test_main.ml: Alcotest Test_bib Test_cache Test_dht Test_fuzzy Test_hashing Test_p2pindex Test_sim Test_stdx Test_storage Test_workload Test_xml Test_xpath

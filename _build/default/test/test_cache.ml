(* LRU, caching policies and per-node shortcut tables. *)

module Lru = Cache.Lru
module Policy = Cache.Policy
module Shortcut = Cache.Shortcut_cache

let lru_basic () =
  let l : (string, int) Lru.t = Lru.create () in
  Lru.add l "a" 1;
  Lru.add l "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find l "a");
  Alcotest.(check (option int)) "find missing" None (Lru.find l "zzz");
  Alcotest.(check int) "length" 2 (Lru.length l);
  Alcotest.(check bool) "unbounded" true (Lru.capacity l = None)

let lru_eviction_order () =
  let l : (int, int) Lru.t = Lru.create ~capacity:3 () in
  Lru.add l 1 10;
  Lru.add l 2 20;
  Lru.add l 3 30;
  (* Touch 1 so that 2 becomes least recently used. *)
  ignore (Lru.find l 1);
  Lru.add l 4 40;
  Alcotest.(check bool) "2 evicted" false (Lru.mem l 2);
  Alcotest.(check bool) "1 survived (recently used)" true (Lru.mem l 1);
  Alcotest.(check bool) "3 survived" true (Lru.mem l 3);
  Alcotest.(check bool) "4 inserted" true (Lru.mem l 4);
  Alcotest.(check int) "at capacity" 3 (Lru.length l)

let lru_peek_does_not_touch () =
  let l : (int, int) Lru.t = Lru.create ~capacity:2 () in
  Lru.add l 1 10;
  Lru.add l 2 20;
  ignore (Lru.peek l 1);
  (* 1 is still least recently used, so it gets evicted. *)
  Lru.add l 3 30;
  Alcotest.(check bool) "peek did not refresh" false (Lru.mem l 1)

let lru_overwrite_refreshes () =
  let l : (int, int) Lru.t = Lru.create ~capacity:2 () in
  Lru.add l 1 10;
  Lru.add l 2 20;
  Lru.add l 1 11;
  Lru.add l 3 30;
  Alcotest.(check (option int)) "overwritten value" (Some 11) (Lru.peek l 1);
  Alcotest.(check bool) "2 evicted instead" false (Lru.mem l 2)

let lru_on_evict_hook () =
  let evicted = ref [] in
  let l : (int, int) Lru.t =
    Lru.create ~capacity:2 ~on_evict:(fun k v -> evicted := (k, v) :: !evicted) ()
  in
  Lru.add l 1 10;
  Lru.add l 2 20;
  Lru.add l 3 30;
  Alcotest.(check (list (pair int int))) "hook fired for capacity eviction" [ (1, 10) ]
    !evicted;
  ignore (Lru.remove l 2);
  Alcotest.(check int) "hook not fired for remove" 1 (List.length !evicted)

let lru_remove_and_clear () =
  let l : (int, int) Lru.t = Lru.create () in
  Lru.add l 1 10;
  Alcotest.(check bool) "remove existing" true (Lru.remove l 1);
  Alcotest.(check bool) "remove missing" false (Lru.remove l 1);
  Lru.add l 2 20;
  Lru.clear l;
  Alcotest.(check bool) "cleared" true (Lru.is_empty l)

let lru_to_list_mru_order () =
  let l : (int, int) Lru.t = Lru.create () in
  Lru.add l 1 10;
  Lru.add l 2 20;
  Lru.add l 3 30;
  ignore (Lru.find l 1);
  Alcotest.(check (list (pair int int))) "MRU first" [ (1, 10); (3, 30); (2, 20) ]
    (Lru.to_list l)

let lru_zero_capacity_rejected () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Lru.create: capacity must be positive")
    (fun () -> ignore (Lru.create ~capacity:0 () : (int, int) Lru.t))

(* Model-based property: the LRU behaves like a naive list-based model. *)
let lru_matches_model =
  QCheck.Test.make ~name:"LRU matches reference model" ~count:300
    QCheck.(pair (int_range 1 5) (small_list (pair (int_range 0 9) bool)))
    (fun (capacity, ops) ->
      let l : (int, int) Lru.t = Lru.create ~capacity () in
      (* Model: association list, most recent first. *)
      let model = ref [] in
      let model_add k v =
        model := (k, v) :: List.remove_assoc k !model;
        if List.length !model > capacity then
          model := List.filteri (fun i _ -> i < capacity) !model
      in
      let model_find k =
        match List.assoc_opt k !model with
        | Some v ->
            model := (k, v) :: List.remove_assoc k !model;
            Some v
        | None -> None
      in
      List.for_all
        (fun (k, is_add) ->
          if is_add then begin
            Lru.add l k k;
            model_add k k;
            true
          end
          else Lru.find l k = model_find k)
        ops
      && Lru.to_list l = !model)

let policy_labels () =
  Alcotest.(check string) "no cache" "No Cache" (Policy.label Policy.no_cache);
  Alcotest.(check string) "single" "Single" (Policy.label Policy.single_cache);
  Alcotest.(check string) "multi" "Multi" (Policy.label Policy.multi_cache);
  Alcotest.(check string) "lru" "LRU20" (Policy.label (Policy.lru 20));
  Alcotest.(check int) "six paper policies" 6 (List.length Policy.paper_policies);
  Alcotest.(check bool) "no-cache disabled" false (Policy.caches_enabled Policy.no_cache);
  Alcotest.(check bool) "lru enabled" true (Policy.caches_enabled (Policy.lru 10))

let policy_lru_positive () =
  Alcotest.check_raises "lru 0" (Invalid_argument "Policy.lru: capacity must be positive")
    (fun () -> ignore (Policy.lru 0))

let shortcut_basics () =
  let c : string Shortcut.t = Shortcut.create ~capacity:None () in
  Alcotest.(check bool) "fresh add" true
    (Shortcut.add c ~query_key:"q" ~target_key:"t1" ("q", "t1"));
  Alcotest.(check bool) "duplicate pair" false
    (Shortcut.add c ~query_key:"q" ~target_key:"t1" ("q", "t1"));
  Alcotest.(check bool) "same query, new target" true
    (Shortcut.add c ~query_key:"q" ~target_key:"t2" ("q", "t2"));
  Alcotest.(check int) "two entries" 2 (Shortcut.size c);
  Alcotest.(check int) "find returns both" 2 (List.length (Shortcut.find c ~query_key:"q"));
  Alcotest.(check (option string)) "find_target exact" (Some "t1")
    (Shortcut.find_target c ~query_key:"q" ~target_key:"t1");
  Alcotest.(check (option string)) "find_target miss" None
    (Shortcut.find_target c ~query_key:"q" ~target_key:"t9");
  Alcotest.(check int) "unrelated query empty" 0
    (List.length (Shortcut.find c ~query_key:"other"))

let shortcut_lru_eviction () =
  let c : int Shortcut.t = Shortcut.create ~capacity:(Some 2) () in
  ignore (Shortcut.add c ~query_key:"a" ~target_key:"1" (1, 1));
  ignore (Shortcut.add c ~query_key:"b" ~target_key:"2" (2, 2));
  Alcotest.(check bool) "full" true (Shortcut.is_full c);
  (* Refresh a so that b is evicted. *)
  ignore (Shortcut.find c ~query_key:"a");
  ignore (Shortcut.add c ~query_key:"c" ~target_key:"3" (3, 3));
  Alcotest.(check int) "capacity respected" 2 (Shortcut.size c);
  Alcotest.(check int) "b evicted and unindexed" 0 (List.length (Shortcut.find c ~query_key:"b"));
  Alcotest.(check int) "a survived" 1 (List.length (Shortcut.find c ~query_key:"a"))

let shortcut_secondary_index_consistent =
  QCheck.Test.make ~name:"shortcut secondary index stays consistent" ~count:200
    QCheck.(pair (int_range 1 4) (small_list (pair (int_range 0 5) (int_range 0 5))))
    (fun (capacity, pairs) ->
      let c : (int * int) Shortcut.t = Shortcut.create ~capacity:(Some capacity) () in
      List.iter
        (fun (q, t) ->
          ignore
            (Shortcut.add c ~query_key:(string_of_int q) ~target_key:(string_of_int t)
               ((q, t), (q, t))))
        pairs;
      (* Every entry reachable through find is present in entries, and
         totals agree. *)
      let total =
        List.fold_left
          (fun acc q -> acc + List.length (Shortcut.find c ~query_key:(string_of_int q)))
          0 [ 0; 1; 2; 3; 4; 5 ]
      in
      total = Shortcut.size c && Shortcut.size c <= capacity)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "cache:lru",
      [
        Alcotest.test_case "basics" `Quick lru_basic;
        Alcotest.test_case "eviction order" `Quick lru_eviction_order;
        Alcotest.test_case "peek does not touch" `Quick lru_peek_does_not_touch;
        Alcotest.test_case "overwrite refreshes" `Quick lru_overwrite_refreshes;
        Alcotest.test_case "on_evict hook" `Quick lru_on_evict_hook;
        Alcotest.test_case "remove and clear" `Quick lru_remove_and_clear;
        Alcotest.test_case "to_list order" `Quick lru_to_list_mru_order;
        Alcotest.test_case "zero capacity rejected" `Quick lru_zero_capacity_rejected;
      ]
      @ qcheck [ lru_matches_model ] );
    ( "cache:policy",
      [
        Alcotest.test_case "labels and enablement" `Quick policy_labels;
        Alcotest.test_case "lru capacity positive" `Quick policy_lru_positive;
      ] );
    ( "cache:shortcut",
      [
        Alcotest.test_case "basics" `Quick shortcut_basics;
        Alcotest.test_case "LRU eviction" `Quick shortcut_lru_eviction;
      ]
      @ qcheck [ shortcut_secondary_index_consistent ] );
  ]

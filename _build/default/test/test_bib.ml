(* Bibliographic application tests: articles, field queries (and their
   equivalence with the XPath layer), the Fig. 8 schemes and the corpus
   generator. *)

module Article = Bib.Article
module Q = Bib.Bib_query
module Schemes = Bib.Schemes
module Corpus = Bib.Corpus
module Index = Bib.Bib_index

let smith = { Article.first = "John"; last = "Smith" }
let doe = { Article.first = "Alan"; last = "Doe" }

let d1, d2, d3 =
  match Corpus.fig1_articles () with
  | [ a; b; c ] -> (a, b, c)
  | _ -> assert false

let article_xml_roundtrip () =
  List.iter
    (fun a ->
      let parsed = Article.of_xml (Article.to_xml a) in
      Alcotest.(check bool) "fields preserved" true
        (List.equal Article.author_equal parsed.Article.authors a.Article.authors
        && String.equal parsed.title a.title
        && String.equal parsed.conf a.conf
        && parsed.year = a.year
        && parsed.size_bytes = a.size_bytes))
    [ d1; d2; d3 ]

let article_validation () =
  Alcotest.check_raises "no authors" (Invalid_argument "Article.make: no authors")
    (fun () ->
      ignore (Article.make ~id:1 ~authors:[] ~title:"t" ~conf:"c" ~year:2000 ~size_bytes:1));
  Alcotest.check_raises "duplicate authors"
    (Invalid_argument "Article.make: duplicate authors") (fun () ->
      ignore
        (Article.make ~id:1 ~authors:[ smith; smith ] ~title:"t" ~conf:"c" ~year:2000
           ~size_bytes:1))

let query_rendering_matches_paper () =
  Alcotest.(check string) "author query is q3"
    "/article/author[first/John][last/Smith]"
    (Q.to_string (Q.author_q smith));
  Alcotest.(check string) "title query is q4" "/article/title/TCP"
    (Q.to_string (Q.title_q "TCP"));
  Alcotest.(check string) "conf query is q5" "/article/conf/INFOCOM"
    (Q.to_string (Q.conf_q "INFOCOM"));
  Alcotest.(check string) "author+conf is q2"
    "/article[author[first/John][last/Smith]][conf/INFOCOM]"
    (Q.to_string (Q.author_conf smith "INFOCOM"));
  Alcotest.(check string) "msd of d1 is q1"
    "/article[author[first/John][last/Smith]][conf/SIGCOMM][size/315635][title/TCP][year/1989]"
    (Q.to_string (Q.msd d1))

let to_string_equals_xpath_rendering () =
  (* The canonical string of a field query must be exactly the canonical
     rendering of its XPath translation — this ties the two layers (and the
     DHT keys) together. *)
  let queries =
    [
      Q.author_q smith;
      Q.title_q "TCP";
      Q.conf_q "INFOCOM";
      Q.year_q 1996;
      Q.author_title smith "IPv6";
      Q.author_year smith 1996;
      Q.author_conf doe "INFOCOM";
      Q.conf_year "INFOCOM" 1996;
      Q.conf_year_author "INFOCOM" 1996 doe;
      Q.msd d1;
      Q.msd d2;
      Q.msd d3;
      Q.fields ();
    ]
  in
  List.iter
    (fun query ->
      Alcotest.(check string)
        (Q.to_string query)
        (Q.to_string query)
        (Xpath.to_string (Q.to_xpath query)))
    queries

let covers_agrees_with_xpath_covers () =
  let queries =
    [
      Q.author_q smith; Q.author_q doe; Q.title_q "TCP"; Q.conf_q "INFOCOM";
      Q.year_q 1996; Q.author_title smith "TCP"; Q.author_year smith 1989;
      Q.conf_year "INFOCOM" 1996; Q.msd d1; Q.msd d2; Q.msd d3; Q.fields ();
    ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool)
            (Printf.sprintf "covers(%s, %s) agrees with XPath" (Q.to_string a) (Q.to_string b))
            (Xpath.covers (Q.to_xpath a) (Q.to_xpath b))
            (Q.covers a b))
        queries)
    queries

let matches_article_semantics () =
  Alcotest.(check bool) "author matches" true (Q.matches_article (Q.author_q smith) d1);
  Alcotest.(check bool) "author rejects" false (Q.matches_article (Q.author_q smith) d3);
  Alcotest.(check bool) "year matches d2 and d3" true
    (Q.matches_article (Q.year_q 1996) d2 && Q.matches_article (Q.year_q 1996) d3);
  Alcotest.(check bool) "author+year" true
    (Q.matches_article (Q.author_year smith 1989) d1);
  Alcotest.(check bool) "msd only matches itself" true
    (Q.matches_article (Q.msd d1) d1 && not (Q.matches_article (Q.msd d1) d2));
  Alcotest.(check bool) "empty query matches all" true (Q.matches_article (Q.fields ()) d3)

let multi_author_coverage () =
  let pair =
    Article.make ~id:9 ~authors:[ smith; doe ] ~title:"Joint" ~conf:"ICDCS" ~year:2004
      ~size_bytes:1000
  in
  Alcotest.(check bool) "either author covers the article" true
    (Q.matches_article (Q.author_q smith) pair && Q.matches_article (Q.author_q doe) pair);
  (* Different authors stay compatible — they may co-author. *)
  Alcotest.(check bool) "authors compatible" true
    (Q.compatible (Q.author_q smith) (Q.author_q doe));
  (* Single-valued fields conflict. *)
  Alcotest.(check bool) "conflicting years incompatible" false
    (Q.compatible (Q.year_q 1989) (Q.year_q 1996));
  Alcotest.(check bool) "conflicting titles incompatible" false
    (Q.compatible (Q.title_q "TCP") (Q.title_q "IPv6"))

let generalization_order () =
  (* author+year drops the year first, keeping the selective field. *)
  match Q.generalizations (Q.author_year smith 1989) with
  | first :: rest ->
      Alcotest.(check string) "author kept first"
        (Q.to_string (Q.author_q smith))
        (Q.to_string first);
      Alcotest.(check int) "then the year-only query" 1 (List.length rest)
  | [] -> Alcotest.fail "author+year must generalize"

let generalizations_cover_property =
  let arbitrary_query =
    let open QCheck.Gen in
    let author = oneofl [ smith; doe ] in
    let gen =
      frequency
        [
          (3, map Q.author_q author);
          (2, map Q.title_q (oneofl [ "TCP"; "IPv6"; "Wavelets" ]));
          (2, map Q.year_q (int_range 1985 2000));
          (1, map2 Q.author_title author (oneofl [ "TCP"; "IPv6" ]));
          (1, map2 Q.author_year author (int_range 1985 2000));
          (1, map (fun a -> Q.msd a) (oneofl [ d1; d2; d3 ]));
        ]
    in
    QCheck.make ~print:Q.to_string gen
  in
  QCheck.Test.make ~name:"bib generalizations cover their input" ~count:300 arbitrary_query
    (fun query ->
      List.for_all (fun gen -> Q.covers gen query) (Q.generalizations query))

let msd_generalization_is_all_fields () =
  match Q.generalizations (Q.msd d1) with
  | [ g ] ->
      Alcotest.(check string) "all four fields"
        "/article[author[first/John][last/Smith]][conf/SIGCOMM][title/TCP][year/1989]"
        (Q.to_string g)
  | other -> Alcotest.failf "expected one generalization, got %d" (List.length other)

let scheme_edges_satisfy_covering () =
  let articles = Corpus.generate ~seed:11L (Corpus.default_config ~article_count:50) in
  List.iter
    (fun kind ->
      Array.iter
        (fun article ->
          List.iter
            (fun { P2pindex.Scheme.parent; child } ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s covers %s" (Schemes.label kind) (Q.to_string parent)
                   (Q.to_string child))
                true (Q.covers parent child))
            (Schemes.edges kind article))
        articles)
    (Schemes.all @ [ Schemes.Complex_ac ])

let scheme_chains_reach_msd () =
  let articles = Corpus.generate ~seed:13L (Corpus.default_config ~article_count:30) in
  let workload_queries (a : Article.t) =
    let x = List.hd a.authors in
    [
      Q.author_q x; Q.title_q a.title; Q.year_q a.year; Q.author_title x a.title;
      Q.conf_q a.conf; Q.conf_year a.conf a.year;
    ]
  in
  List.iter
    (fun kind ->
      Array.iter
        (fun article ->
          List.iter
            (fun query ->
              let chain = Schemes.chain_to kind article query in
              (* The chain ends at the MSD and every link is covered by its
                 predecessor. *)
              (match List.rev chain with
              | last :: _ ->
                  Alcotest.(check bool) "ends at msd" true (Q.equal last (Q.msd article))
              | [] -> Alcotest.fail "chain may not be empty");
              let rec check_links prev = function
                | [] -> ()
                | next :: rest ->
                    Alcotest.(check bool)
                      (Printf.sprintf "%s covers %s" (Q.to_string prev) (Q.to_string next))
                      true (Q.covers prev next);
                    check_links next rest
              in
              check_links query chain)
            (workload_queries article))
        articles)
    [ Schemes.Simple; Schemes.Flat; Schemes.Complex ]

let chain_lengths_by_scheme () =
  let x = List.hd d1.Article.authors in
  let author = Q.author_q x in
  let year = Q.year_q d1.Article.year in
  Alcotest.(check int) "flat author chain" 1
    (List.length (Schemes.chain_to Schemes.Flat d1 author));
  Alcotest.(check int) "simple author chain" 2
    (List.length (Schemes.chain_to Schemes.Simple d1 author));
  Alcotest.(check int) "simple year chain" 2
    (List.length (Schemes.chain_to Schemes.Simple d1 year));
  Alcotest.(check int) "complex year chain is deeper" 3
    (List.length (Schemes.chain_to Schemes.Complex d1 year))

let chain_rejects_unindexed_shapes () =
  let x = List.hd d1.Article.authors in
  let unindexed = Q.author_year x d1.Article.year in
  Alcotest.check_raises "author+year not indexed"
    (Invalid_argument "Schemes.chain_to: query shape is not indexed by this scheme")
    (fun () -> ignore (Schemes.chain_to Schemes.Simple d1 unindexed));
  Alcotest.check_raises "mismatched query"
    (Invalid_argument "Schemes.chain_to: query does not match the article") (fun () ->
      ignore (Schemes.chain_to Schemes.Simple d1 (Q.author_q doe)))

let author_conf_only_in_complex_ac () =
  let x = List.hd d1.Article.authors in
  let ac = Q.author_conf x d1.Article.conf in
  Alcotest.check_raises "complex does not index author+conf"
    (Invalid_argument "Schemes.chain_to: query shape is not indexed by this scheme")
    (fun () -> ignore (Schemes.chain_to Schemes.Complex d1 ac));
  Alcotest.(check int) "complex+ac does" 2
    (List.length (Schemes.chain_to Schemes.Complex_ac d1 ac))

let prefix_query_semantics () =
  Alcotest.(check string) "rendering" "/article/author/last/Smi*"
    (Q.to_string (Q.author_last_prefix "Smi"));
  Alcotest.(check bool) "covers matching author query" true
    (Q.covers (Q.author_last_prefix "Smi") (Q.author_q smith));
  Alcotest.(check bool) "rejects other authors" false
    (Q.covers (Q.author_last_prefix "Smi") (Q.author_q doe));
  Alcotest.(check bool) "covers matching article" true
    (Q.covers (Q.author_last_prefix "S") (Q.msd d1));
  Alcotest.(check bool) "prefix of prefix" true
    (Q.covers (Q.author_last_prefix "S") (Q.author_last_prefix "Smi"));
  (* Agreement with the XPath engine's prefix tests. *)
  Alcotest.(check string) "xpath rendering agrees"
    (Q.to_string (Q.author_last_prefix "Smi"))
    (Xpath.to_string (Q.to_xpath (Q.author_last_prefix "Smi")));
  Alcotest.(check bool) "xpath covering agrees" true
    (Xpath.covers (Q.to_xpath (Q.author_last_prefix "Smi")) (Q.to_xpath (Q.author_q smith)));
  Alcotest.check_raises "empty prefix rejected"
    (Invalid_argument "Bib_query.author_last_prefix: empty prefix") (fun () ->
      ignore (Q.author_last_prefix ""))

let alphabetic_browsing () =
  (* Publish under simple + prefix entry points, then browse by initial:
     every article whose (any) author's last name starts with the letter
     must be reachable. *)
  let articles = Corpus.generate ~seed:41L (Corpus.default_config ~article_count:150) in
  let resolver = Dht.Static_dht.resolver (Dht.Static_dht.create ~seed:41L ~node_count:20 ()) in
  let index = Index.create ~resolver () in
  Array.iter
    (fun article ->
      Index.publish index
        ~scheme:(Schemes.with_author_prefix Schemes.Simple)
        ~msd:(Q.msd article) (Article.file article))
    articles;
  let initial = "S" in
  let browse = Q.author_last_prefix initial in
  let results = Index.search index browse in
  let expected =
    Array.to_list articles
    |> List.filter (fun (a : Article.t) ->
           List.exists (fun (x : Article.author) -> String.sub x.last 0 1 = initial) a.authors)
  in
  Alcotest.(check bool) "browsing finds something" true (List.length expected > 0);
  List.iter
    (fun (a : Article.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "article %d reachable via initial %s" a.id initial)
        true
        (List.exists
           (fun (_q, (f : Storage.Block_store.file)) ->
             String.equal f.name (Article.file a).name)
           results))
    expected;
  (* And nothing else: every result is covered by the prefix query. *)
  List.iter
    (fun (found_msd, _f) ->
      Alcotest.(check bool) "result covered by prefix" true (Q.covers browse found_msd))
    results;
  (* The base scheme alone has no such entry point. *)
  let plain = Index.create ~resolver () in
  Index.publish_corpus plain ~kind:Schemes.Simple articles;
  Alcotest.(check int) "no prefix entry without augmentation" 0
    (List.length (Index.search plain browse))

let corpus_properties () =
  let config = Corpus.default_config ~article_count:500 in
  let articles = Corpus.generate ~seed:21L config in
  Alcotest.(check int) "count" 500 (Array.length articles);
  Array.iteri
    (fun i (a : Article.t) ->
      Alcotest.(check int) "ids are ranks" (i + 1) a.id;
      Alcotest.(check bool) "1-3 authors" true
        (List.length a.authors >= 1 && List.length a.authors <= 3);
      Alcotest.(check bool) "year range" true
        (a.year >= config.first_year && a.year <= config.last_year);
      Alcotest.(check bool) "size range" true
        (a.size_bytes >= 100_000 && a.size_bytes <= 450_000))
    articles;
  let authors = Corpus.distinct_authors articles in
  Alcotest.(check bool) "authors shared across articles" true
    (List.length authors < 500 * 2);
  (* Determinism. *)
  let again = Corpus.generate ~seed:21L config in
  Alcotest.(check bool) "generation deterministic" true
    (Array.for_all2 (fun a b -> Article.equal a b && a.Article.title = b.Article.title)
       articles again)

let corpus_helpers () =
  let articles = Corpus.generate ~seed:23L (Corpus.default_config ~article_count:200) in
  let author = List.hd articles.(0).Article.authors in
  let own = Corpus.articles_by_author articles author in
  Alcotest.(check bool) "author finds own article" true
    (List.exists (Article.equal articles.(0)) own);
  List.iter
    (fun (a : Article.t) ->
      Alcotest.(check bool) "every hit names the author" true
        (List.exists (Article.author_equal author) a.authors))
    own;
  let y = articles.(0).Article.year in
  Alcotest.(check bool) "year lookup" true
    (List.exists (Article.equal articles.(0)) (Corpus.articles_by_year articles y))

let corpus_xml_roundtrip () =
  let articles = Corpus.generate ~seed:51L (Corpus.default_config ~article_count:60) in
  let reloaded = Corpus.of_xml (Corpus.to_xml articles) in
  Alcotest.(check int) "same count" 60 (Array.length reloaded);
  Array.iteri
    (fun i (a : Article.t) ->
      let b = reloaded.(i) in
      Alcotest.(check int) "ranks assigned in order" (i + 1) b.Article.id;
      Alcotest.(check string) "title survives" a.title b.Article.title;
      Alcotest.(check bool) "authors survive" true
        (List.equal Article.author_equal a.authors b.Article.authors))
    articles;
  (* File round-trip through the channel API. *)
  let path = Filename.temp_file "p2pindex" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun out -> Corpus.save_xml out articles);
      let from_file = In_channel.with_open_text path Corpus.load_xml in
      Alcotest.(check int) "file roundtrip count" 60 (Array.length from_file));
  (* A bare article loads as a one-element corpus; garbage is rejected. *)
  Alcotest.(check int) "bare article" 1
    (Array.length (Corpus.of_xml (Article.to_xml d1)));
  match Corpus.of_xml (Xmlkit.Xml.leaf "nonsense" "x") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "garbage accepted"

let publish_and_search_corpus () =
  (* End-to-end through Bib_index: everything published is findable through
     every workload query shape. *)
  let articles = Corpus.generate ~seed:31L (Corpus.default_config ~article_count:100) in
  let resolver = Dht.Static_dht.resolver (Dht.Static_dht.create ~seed:31L ~node_count:20 ()) in
  List.iter
    (fun kind ->
      let index = Index.create ~resolver () in
      Index.publish_corpus index ~kind articles;
      Array.iter
        (fun (a : Article.t) ->
          let x = List.hd a.Article.authors in
          let results = Index.search index (Q.author_q x) in
          Alcotest.(check bool)
            (Printf.sprintf "%s: author search finds article %d" (Schemes.label kind) a.id)
            true
            (List.exists
               (fun (_q, f) -> String.equal f.Storage.Block_store.name (Article.file a).name)
               results))
        articles)
    Schemes.all

let range_search_years () =
  let articles = Corpus.generate ~seed:71L (Corpus.default_config ~article_count:300) in
  let resolver = Dht.Static_dht.resolver (Dht.Static_dht.create ~seed:71L ~node_count:20 ()) in
  let index = Index.create ~resolver () in
  Index.publish_corpus index ~kind:Schemes.Simple articles;
  let first = 1990 and last = 1994 in
  let interactions = ref 0 in
  let results = Bib.Range_search.years ~interactions index ~first ~last in
  let expected =
    Array.to_list articles
    |> List.filter (fun (a : Article.t) -> a.year >= first && a.year <= last)
  in
  Alcotest.(check int) "every article in the interval found" (List.length expected)
    (List.length results);
  List.iter
    (fun (r : Bib.Range_search.result) ->
      match r.msd with
      | Q.Msd a ->
          Alcotest.(check bool) "within the interval" true
            (a.Article.year >= first && a.Article.year <= last)
      | Q.Fields _ | Q.Author_last_prefix _ -> Alcotest.fail "results are descriptors")
    results;
  Alcotest.(check bool) "cost is linear in the interval" true (!interactions >= last - first + 1);
  (* Filtered variants. *)
  let a0 : Article.t = List.hd expected in
  let author = List.hd a0.authors in
  let filtered = Bib.Range_search.years ~author index ~first ~last in
  Alcotest.(check bool) "author filter keeps the author's article" true
    (List.exists (fun (r : Bib.Range_search.result) -> Q.equal r.msd (Q.msd a0)) filtered);
  List.iter
    (fun (r : Bib.Range_search.result) ->
      Alcotest.(check bool) "filter respected" true
        (Q.covers (Q.author_q author) r.msd))
    filtered;
  (* before / after decompositions partition the interval. *)
  let all = Bib.Range_search.years index ~first:1980 ~last:2003 in
  let before = Bib.Range_search.before index ~year:1990 ~since:1980 in
  let after = Bib.Range_search.after index ~year:1989 ~until:2003 in
  Alcotest.(check int) "before + after = all" (List.length all)
    (List.length before + List.length after);
  Alcotest.check_raises "empty interval rejected"
    (Invalid_argument "Range_search.years: empty interval") (fun () ->
      ignore (Bib.Range_search.years index ~first:2000 ~last:1999))

(* Model-based property over random publish/unpublish sequences: afterwards
   the index must contain exactly the surviving articles, with no dead
   mapping targets left behind. *)
let publish_unpublish_invariant =
  QCheck.Test.make ~name:"publish/unpublish keeps the index clean" ~count:25
    QCheck.(pair (int_range 5 40) (list_of_size (QCheck.Gen.int_range 0 25) (int_range 0 39)))
    (fun (count, deletions) ->
      let articles = Corpus.generate ~seed:61L (Corpus.default_config ~article_count:count) in
      let resolver =
        Dht.Static_dht.resolver (Dht.Static_dht.create ~seed:61L ~node_count:10 ())
      in
      let index = Index.create ~resolver () in
      Index.publish_corpus index ~kind:Schemes.Simple articles;
      let deleted = Hashtbl.create 16 in
      List.iter
        (fun i ->
          let a = articles.(i mod count) in
          if not (Hashtbl.mem deleted a.Article.id) then begin
            Hashtbl.add deleted a.Article.id ();
            Index.unpublish index ~scheme:(Schemes.scheme Schemes.Simple) ~msd:(Q.msd a)
          end)
        deletions;
      (* Invariant 1: every mapping target is alive (a file or further
         mappings exist under it). *)
      let clean = ref true in
      Index.iter_mappings index (fun ~parent_key:_ child ->
          let reachable =
            (match Index.lookup_step index child with
            | Index.File _ | Index.Children _ -> true
            | Index.Not_indexed -> false)
          in
          if not reachable then clean := false);
      (* Invariant 2: survivors findable, deleted articles not. *)
      let correct = ref true in
      Array.iter
        (fun (a : Article.t) ->
          let found =
            List.exists
              (fun (m, _) -> Q.equal m (Q.msd a))
              (Index.search index (Q.author_q (List.hd a.authors)))
          in
          let expected = not (Hashtbl.mem deleted a.id) in
          if found <> expected then correct := false)
        articles;
      !clean && !correct)

let arbitrary_bib_query =
  let open QCheck.Gen in
  let author = oneofl [ smith; doe ] in
  let gen =
    frequency
      [
        (3, map Q.author_q author);
        (2, map Q.title_q (oneofl [ "TCP"; "IPv6"; "Wavelets" ]));
        (2, map Q.year_q (int_range 1985 2000));
        (1, map2 Q.author_title author (oneofl [ "TCP"; "IPv6" ]));
        (1, map (fun a -> Q.msd a) (oneofl [ d1; d2; d3 ]));
        (1, map (fun c -> Q.author_last_prefix (String.make 1 c)) (oneofl [ 'S'; 'D' ]));
      ]
  in
  QCheck.make ~print:Q.to_string gen

let bib_compare_total_order =
  QCheck.Test.make ~name:"bib compare is a total order consistent with to_string"
    ~count:500
    (QCheck.triple arbitrary_bib_query arbitrary_bib_query arbitrary_bib_query)
    (fun (a, b, c) ->
      (* antisymmetry via equality of canonical strings *)
      (Q.compare a b = 0) = String.equal (Q.to_string a) (Q.to_string b)
      && (if Q.compare a b <= 0 && Q.compare b c <= 0 then Q.compare a c <= 0 else true)
      && Q.compare a b = -Q.compare b a)

let bib_covers_reflexive_transitive =
  QCheck.Test.make ~name:"bib covers reflexive and transitive" ~count:500
    (QCheck.triple arbitrary_bib_query arbitrary_bib_query arbitrary_bib_query)
    (fun (a, b, c) ->
      Q.covers a a
      && if Q.covers a b && Q.covers b c then Q.covers a c else true)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "bib:article",
      [
        Alcotest.test_case "xml roundtrip" `Quick article_xml_roundtrip;
        Alcotest.test_case "validation" `Quick article_validation;
      ] );
    ( "bib:query",
      [
        Alcotest.test_case "paper-style rendering" `Quick query_rendering_matches_paper;
        Alcotest.test_case "to_string = xpath rendering" `Quick to_string_equals_xpath_rendering;
        Alcotest.test_case "covers agrees with xpath" `Quick covers_agrees_with_xpath_covers;
        Alcotest.test_case "matches_article" `Quick matches_article_semantics;
        Alcotest.test_case "multi-author semantics" `Quick multi_author_coverage;
        Alcotest.test_case "generalization order" `Quick generalization_order;
        Alcotest.test_case "msd generalization" `Quick msd_generalization_is_all_fields;
        Alcotest.test_case "prefix query semantics" `Quick prefix_query_semantics;
        Alcotest.test_case "alphabetic browsing" `Quick alphabetic_browsing;
      ]
      @ qcheck
          [
            generalizations_cover_property;
            bib_compare_total_order;
            bib_covers_reflexive_transitive;
          ] );
    ( "bib:schemes",
      [
        Alcotest.test_case "edges satisfy covering" `Quick scheme_edges_satisfy_covering;
        Alcotest.test_case "chains reach the MSD" `Quick scheme_chains_reach_msd;
        Alcotest.test_case "chain lengths per scheme" `Quick chain_lengths_by_scheme;
        Alcotest.test_case "unindexed shapes rejected" `Quick chain_rejects_unindexed_shapes;
        Alcotest.test_case "author+conf variant" `Quick author_conf_only_in_complex_ac;
        Alcotest.test_case "year-range search" `Quick range_search_years;
      ] );
    ( "bib:corpus",
      [
        Alcotest.test_case "generation properties" `Quick corpus_properties;
        Alcotest.test_case "helpers" `Quick corpus_helpers;
        Alcotest.test_case "xml roundtrip" `Quick corpus_xml_roundtrip;
        Alcotest.test_case "publish and search end-to-end" `Slow publish_and_search_corpus;
      ]
      @ qcheck [ publish_unpublish_invariant ] );
  ]

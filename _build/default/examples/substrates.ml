(* One indexing layer, five substrates.

   The paper's architecture claim: the indexes are ordinary DHT data, so
   they run unchanged on any key-to-node substrate.  This example publishes
   the same database over all five substrates shipped here — each with a
   different geometry and even a different ownership rule — and shows that
   searches return identical results while routing costs differ.

   Run with:  dune exec examples/substrates.exe *)

module Q = Bib.Bib_query
module Index = Bib.Bib_index
module Key = Hashing.Key

let articles = Bib.Corpus.generate ~seed:4L (Bib.Corpus.default_config ~article_count:500)

let substrates =
  [
    ( "Static oracle (consistent hashing)",
      Dht.Static_dht.resolver (Dht.Static_dht.create ~seed:7L ~node_count:64 ()) );
    ( "Chord (ring + fingers)",
      Dht.Chord.resolver (Dht.Chord.create_network ~seed:7L ~node_count:64 ()) );
    ( "Pastry (prefix routing + leaf sets)",
      Dht.Pastry.resolver (Dht.Pastry.create_network ~seed:7L ~node_count:64 ()) );
    ( "CAN (2-d coordinate space)",
      Dht.Can.resolver (Dht.Can.create_network ~seed:7L ~dimensions:2 ~node_count:64 ()) );
    ( "Kademlia (XOR metric, iterative)",
      Dht.Kademlia.resolver (Dht.Kademlia.create_network ~seed:7L ~node_count:64 ()) );
  ]

let () =
  let author = List.hd articles.(0).Bib.Article.authors in
  let query = Q.author_q author in
  Printf.printf "database: 500 articles on 64 nodes; query: %s\n\n" (Q.to_string query);
  Printf.printf "%-38s %8s %12s %11s\n" "substrate" "results" "interactions" "route hops";
  let g = Stdx.Prng.create ~seed:99L in
  let probe_keys = List.init 200 (fun _ -> Key.random g) in
  List.iter
    (fun (name, resolver) ->
      let index = Index.create ~resolver () in
      Index.publish_corpus index ~kind:Bib.Schemes.Simple articles;
      let interactions = ref 0 in
      let results = Index.search ~interactions index query in
      let hops = Stdx.Stats.Summary.create () in
      List.iter
        (fun key -> Stdx.Stats.Summary.add_int hops (Dht.Resolver.route_hops resolver key))
        probe_keys;
      Printf.printf "%-38s %8d %12d %11.2f\n" name (List.length results) !interactions
        (Stdx.Stats.Summary.mean hops))
    substrates;
  print_endline
    "\nidentical results and interaction counts everywhere: the indexing layer only\n\
     needs a key-to-node service; substrates differ in how they route to it"

(* The interactive lookup mode of Section IV-B, driven as a scripted user:
   start from a broad query, inspect the result set, descend, back out,
   descend elsewhere, and finally let the session auto-explore the rest.

   Run with:  dune exec examples/interactive_session.exe *)

module Q = Bib.Bib_query
module Article = Bib.Article
module Index = Bib.Bib_index
module Session = P2pindex.Session.Make (Bib.Bib_query) (Bib.Bib_index)

let () =
  let articles = Bib.Corpus.generate ~seed:11L (Bib.Corpus.default_config ~article_count:800) in
  let resolver = Dht.Static_dht.resolver (Dht.Static_dht.create ~seed:11L ~node_count:50 ()) in
  let index = Index.create ~resolver () in
  Index.publish_corpus index ~kind:Bib.Schemes.Simple articles;

  (* Pick a productive author so the walk is interesting. *)
  let author =
    let counts = Hashtbl.create 64 in
    Array.iter
      (fun (a : Article.t) ->
        let x = List.hd a.authors in
        Hashtbl.replace counts x (1 + Option.value ~default:0 (Hashtbl.find_opt counts x)))
      articles;
    fst (Hashtbl.fold (fun x n (bx, bn) -> if n > bn then (x, n) else (bx, bn)) counts
           (List.hd articles.(0).Article.authors, 0))
  in
  Printf.printf "browsing the works of %s\n\n" (Article.author_to_string author);

  let session = Session.start index (Q.author_q author) in
  let show () =
    let position = Session.current session in
    Printf.printf "at %s\n" (Q.to_string position.Session.query);
    (match position.Session.file with
    | Some file -> Printf.printf "   => FILE %s\n" file.Storage.Block_store.name
    | None -> ());
    List.iteri
      (fun i option -> if i < 6 then Printf.printf "   [%d] %s\n" i (Q.to_string option))
      position.Session.options;
    if List.length position.Session.options > 6 then
      Printf.printf "   ... %d more options\n" (List.length position.Session.options - 6)
  in
  show ();

  print_endline "\n-- user picks option 0 --";
  ignore (Session.refine_nth session 0);
  show ();

  print_endline "\n-- descends to the descriptor --";
  ignore (Session.refine_nth session 0);
  show ();

  print_endline "\n-- backs out twice and explores everything else automatically --";
  ignore (Session.back session);
  ignore (Session.back session);
  let rest = Session.explore_all session in
  Printf.printf "auto-explore returned %d files\n" (List.length rest);

  Printf.printf "\nsession summary: %d interactions, %d distinct files discovered, depth %d\n"
    (Session.interactions session)
    (List.length (Session.discovered session))
    (Session.depth session)

(* A second application domain, straight on the generic XPath layer.

   The paper's motivation names music files and CDDB; nothing in the
   indexing layer is specific to bibliographies.  This example indexes a
   music catalog — album descriptors with artist, album, genre and year —
   under a custom hierarchical scheme (artist -> album -> track file), and
   searches it by artist, by genre, and with a misspelled artist name
   validated against the catalog (the CDDB role from the paper's final
   notes).

   Run with:  dune exec examples/music_catalog.exe *)

module Xml = Xmlkit.Xml
module Index = P2pindex.Xpath_index
module Scheme = P2pindex.Scheme

type track = { artist : string; album : string; title : string; genre : string; year : int }

let catalog =
  [
    { artist = "Miles Davis"; album = "Kind of Blue"; title = "So What"; genre = "Jazz"; year = 1959 };
    { artist = "Miles Davis"; album = "Kind of Blue"; title = "Blue in Green"; genre = "Jazz"; year = 1959 };
    { artist = "Miles Davis"; album = "Bitches Brew"; title = "Spanish Key"; genre = "Fusion"; year = 1970 };
    { artist = "John Coltrane"; album = "Giant Steps"; title = "Naima"; genre = "Jazz"; year = 1960 };
    { artist = "Nina Simone"; album = "Pastel Blues"; title = "Sinnerman"; genre = "Jazz"; year = 1965 };
    { artist = "Kraftwerk"; album = "Autobahn"; title = "Autobahn"; genre = "Electronic"; year = 1974 };
    { artist = "Kraftwerk"; album = "Computer World"; title = "Numbers"; genre = "Electronic"; year = 1981 };
  ]

let descriptor t =
  Xml.element "track"
    [
      Xml.leaf "artist" t.artist;
      Xml.leaf "album" t.album;
      Xml.leaf "title" t.title;
      Xml.leaf "genre" t.genre;
      Xml.leaf "year" (string_of_int t.year);
    ]

let q fmt = Printf.ksprintf Xpath.of_string fmt

(* Scheme: artist -> (artist, album) -> track descriptor on the main
   branch; genre and year entry points map to descriptors directly (a
   genre entry cannot point at the album level — the album query does not
   constrain the genre, and the index layer rejects mappings that break
   the covering relation). *)
let edges_for t =
  let msd = Xpath.of_document (descriptor t) in
  let artist_album = q "/track[artist/%s][album/%s]" t.artist t.album in
  [
    (* Alphabetic browsing: first letter of the artist -> artist index. *)
    { Scheme.parent = q "/track/artist/%c*" t.artist.[0];
      child = q "/track/artist/%s" t.artist };
    { Scheme.parent = q "/track/artist/%s" t.artist; child = artist_album };
    { Scheme.parent = artist_album; child = msd };
    { Scheme.parent = q "/track/genre/%s" t.genre; child = msd };
    { Scheme.parent = q "/track/year/%d" t.year; child = msd };
  ]

let () =
  let resolver = Dht.Static_dht.resolver (Dht.Static_dht.create ~seed:3L ~node_count:16 ()) in
  let index = Index.create ~resolver () in
  let scheme =
    Scheme.make ~name:"music" ~edges:(fun msd ->
        let t =
          List.find (fun t -> Xpath.equal (Xpath.of_document (descriptor t)) msd) catalog
        in
        edges_for t)
  in
  List.iteri
    (fun i t ->
      Index.publish index ~scheme
        ~msd:(Xpath.of_document (descriptor t))
        { Storage.Block_store.name = Printf.sprintf "track-%02d.flac" i;
          size_bytes = 30_000_000 + (1_000_000 * i) })
    catalog;

  let show header query =
    let results = Index.search index query in
    Printf.printf "%s: %s\n" header (Xpath.to_string query);
    List.iter
      (fun (msd, (f : Storage.Block_store.file)) ->
        Printf.printf "   %-14s %s\n" f.name (Xpath.to_string msd))
      results;
    print_newline ()
  in
  show "by artist" (q "/track/artist/Miles Davis");
  show "by genre" (q "/track/genre/Electronic");
  show "by artist prefix" (q "/track/artist/K*");

  (* The CDDB validation step: a misspelled artist matches nothing exactly,
     so validate it against the known artists and retry. *)
  let artists = Fuzzy.Spell.of_list (List.map (fun t -> t.artist) catalog) in
  let misspelled = "Mils Davis" in
  Printf.printf "misspelled %S: %d exact results\n" misspelled
    (List.length (Index.search index (q "/track/artist/%s" misspelled)));
  match Fuzzy.Spell.correct artists misspelled with
  | Some fixed ->
      Printf.printf "validated against the catalog -> %S\n" fixed;
      show "retry" (q "/track/artist/%s" fixed)
  | None -> print_endline "no close artist found"

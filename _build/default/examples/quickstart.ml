(* Quickstart: the paper's running example, end to end.

   Publishes the three Fig. 1 descriptors into a distributed index over a
   20-node DHT, then looks them up with the Fig. 2 queries — one lookup
   step at a time, the way a user iteratively refines a broad query, and
   automatically with [search].

   Run with:  dune exec examples/quickstart.exe *)

module Xml = Xmlkit.Xml
module Index = P2pindex.Xpath_index
module Scheme = P2pindex.Scheme

let descriptor ~first ~last ~title ~conf ~year ~size =
  Xml.element "article"
    [
      Xml.element "author" [ Xml.leaf "first" first; Xml.leaf "last" last ];
      Xml.leaf "title" title;
      Xml.leaf "conf" conf;
      Xml.leaf "year" year;
      Xml.leaf "size" size;
    ]

(* The Fig. 4 indexing scheme: last name -> author -> (author, title) ->
   MSD, and conference / year -> (conference, year) -> MSD. *)
let edges_for doc =
  let text name = Xml.text_content (Option.get (Xml.find_child doc name)) in
  let author = Option.get (Xml.find_child doc "author") in
  let first = Xml.text_content (Option.get (Xml.find_child author "first")) in
  let last = Xml.text_content (Option.get (Xml.find_child author "last")) in
  let msd = Xpath.of_document doc in
  let q = Xpath.of_string in
  let q_author = q (Printf.sprintf "/article/author[first/%s][last/%s]" first last) in
  let q_at =
    q (Printf.sprintf "/article[author[first/%s][last/%s]][title/%s]" first last (text "title"))
  in
  let q_cy = q (Printf.sprintf "/article[conf/%s][year/%s]" (text "conf") (text "year")) in
  [
    { Scheme.parent = q (Printf.sprintf "/article/author/last/%s" last); child = q_author };
    { Scheme.parent = q_author; child = q_at };
    { Scheme.parent = q (Printf.sprintf "/article/title/%s" (text "title")); child = q_at };
    { Scheme.parent = q_at; child = msd };
    { Scheme.parent = q (Printf.sprintf "/article/conf/%s" (text "conf")); child = q_cy };
    { Scheme.parent = q (Printf.sprintf "/article/year/%s" (text "year")); child = q_cy };
    { Scheme.parent = q_cy; child = msd };
  ]

let () =
  let d1 =
    descriptor ~first:"John" ~last:"Smith" ~title:"TCP" ~conf:"SIGCOMM" ~year:"1989"
      ~size:"315635"
  in
  let d2 =
    descriptor ~first:"John" ~last:"Smith" ~title:"IPv6" ~conf:"INFOCOM" ~year:"1996"
      ~size:"312352"
  in
  let d3 =
    descriptor ~first:"Alan" ~last:"Doe" ~title:"Wavelets" ~conf:"INFOCOM" ~year:"1996"
      ~size:"259827"
  in
  let docs = [ (d1, "x.pdf"); (d2, "y.pdf"); (d3, "z.pdf") ] in

  (* A 20-node DHT substrate and an index layered on top of it. *)
  let dht = Dht.Static_dht.create ~seed:1L ~node_count:20 () in
  let index = Index.create ~resolver:(Dht.Static_dht.resolver dht) () in
  let scheme =
    Scheme.make ~name:"fig4" ~edges:(fun msd ->
        let doc, _ =
          List.find (fun (doc, _) -> Xpath.equal (Xpath.of_document doc) msd) docs
        in
        edges_for doc)
  in
  List.iter
    (fun (doc, name) ->
      let msd = Xpath.of_document doc in
      Printf.printf "publish %-6s at node %2d  key %s\n" name
        (Index.node_of_query index msd)
        (Hashing.Key.short_hex (Index.key_of_query msd));
      Index.publish index ~scheme ~msd
        { Storage.Block_store.name; size_bytes = Xml.size_bytes doc })
    docs;

  (* Interactive lookup: iterate from the broad query q6 down to the files,
     exactly the walk of Section IV-B. *)
  let rec follow depth query =
    let pad = String.make (2 * depth) ' ' in
    match Index.lookup_step index query with
    | Index.File file ->
        Printf.printf "%s%s  ->  FILE %s (%d bytes)\n" pad (Xpath.to_string query)
          file.Storage.Block_store.name file.size_bytes
    | Index.Children children ->
        Printf.printf "%s%s  ->  %d more specific quer%s\n" pad (Xpath.to_string query)
          (List.length children)
          (if List.length children = 1 then "y" else "ies");
        List.iter (follow (depth + 1)) children
    | Index.Not_indexed -> Printf.printf "%s%s  ->  not indexed\n" pad (Xpath.to_string query)
  in
  print_endline "\n-- interactive walk from q6 = /article/author/last/Smith --";
  follow 0 (Xpath.of_string "/article/author/last/Smith");

  (* Automated search with the other Fig. 2 queries. *)
  print_endline "\n-- automated search --";
  List.iter
    (fun qs ->
      let results = Index.search index (Xpath.of_string qs) in
      Printf.printf "%-40s -> [%s]\n" qs
        (String.concat "; "
           (List.map (fun (_q, f) -> f.Storage.Block_store.name) results)))
    [ "/article/title/TCP"; "/article/conf/INFOCOM"; "/article/author/last/Doe" ];

  (* q2 is valid for d2 but not indexed: generalization/specialization
     still finds it (Section IV-B). *)
  print_endline "\n-- non-indexed query, recovered by generalization --";
  let q2 = Xpath.of_string "/article[author[first/John][last/Smith]][conf/INFOCOM]" in
  let interactions = ref 0 in
  let results = Index.search_with_generalization ~interactions index q2 in
  Printf.printf "%s -> [%s] in %d interactions\n" (Xpath.to_string q2)
    (String.concat "; " (List.map (fun (_q, f) -> f.Storage.Block_store.name) results))
    !interactions

(* Driving the Chord substrate directly: ring construction, logarithmic
   lookups, churn, and the indexing layer's independence from all of it.

   Run with:  dune exec examples/chord_ring.exe *)

module Chord = Dht.Chord
module Key = Hashing.Key

let () =
  (* Grow a ring node by node, the way a real deployment would. *)
  let ring = Chord.create ~seed:2026L () in
  print_endline "-- incremental joins --";
  List.iter
    (fun target ->
      while Chord.live_count ring < target do
        ignore (Chord.join ring);
        Chord.stabilize ring ~rounds:2
      done;
      Chord.stabilize ring ~rounds:6;
      Printf.printf "  %3d nodes, converged: %b\n" (Chord.live_count ring)
        (Chord.is_converged ring))
    [ 4; 16; 64 ];

  (* Lookup cost scales logarithmically. *)
  print_endline "\n-- lookup hops vs ring size (mean over 500 random keys) --";
  List.iter
    (fun n ->
      let ring = Chord.create_network ~seed:7L ~node_count:n () in
      let g = Stdx.Prng.create ~seed:11L in
      let summary = Stdx.Stats.Summary.create () in
      for _ = 1 to 500 do
        let _owner, hops = Chord.lookup ring (Key.random g) in
        Stdx.Stats.Summary.add_int summary hops
      done;
      Printf.printf "  %5d nodes: %.2f hops (log2 n = %.1f)\n" n
        (Stdx.Stats.Summary.mean summary)
        (log (float_of_int n) /. log 2.0))
    [ 16; 64; 256; 1024 ];

  (* Abrupt failures, repaired by stabilization. *)
  print_endline "\n-- churn --";
  let ring = Chord.create_network ~seed:13L ~node_count:100 () in
  let victims = List.filteri (fun i _ -> i mod 4 = 0) (Chord.live_keys ring) in
  List.iter (Chord.leave ring) victims;
  Printf.printf "  failed %d of 100 nodes; converged: %b\n" (List.length victims)
    (Chord.is_converged ring);
  Chord.stabilize ring ~rounds:8;
  Printf.printf "  after 8 stabilization rounds:  converged: %b, %d live nodes\n"
    (Chord.is_converged ring) (Chord.live_count ring);
  let g = Stdx.Prng.create ~seed:17L in
  let correct = ref 0 in
  for _ = 1 to 200 do
    let key = Key.random g in
    let owner, _ = Chord.lookup ring key in
    if Key.equal owner (Chord.responsible_oracle ring key) then incr correct
  done;
  Printf.printf "  post-churn lookup correctness: %d/200\n" !correct;

  (* The indexing layer runs unchanged on top (Section V: "completely
     independent issues — layered protocols"). *)
  print_endline "\n-- the index layer over Chord --";
  let articles = Bib.Corpus.generate ~seed:3L (Bib.Corpus.default_config ~article_count:500) in
  let index = Bib.Bib_index.create ~resolver:(Chord.resolver ring) () in
  Bib.Bib_index.publish_corpus index ~kind:Bib.Schemes.Simple articles;
  let a : Bib.Article.t = articles.(0) in
  let results = Bib.Bib_index.search index (Bib.Bib_query.author_q (List.hd a.authors)) in
  Printf.printf "  published 500 articles over the repaired ring; author search: %d results\n"
    (List.length results)

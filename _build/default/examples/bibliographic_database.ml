(* A distributed bibliographic database, the paper's Section V scenario at a
   small interactive scale: generate a synthetic DBLP-like corpus, publish
   it under each of the three Fig. 8 indexing schemes, compare their storage
   footprints, and run the kinds of searches the BibFinder logs contain.

   Run with:  dune exec examples/bibliographic_database.exe *)

module Q = Bib.Bib_query
module Article = Bib.Article
module Index = Bib.Bib_index
module Schemes = Bib.Schemes

let articles = Bib.Corpus.generate ~seed:2026L (Bib.Corpus.default_config ~article_count:2_000)

let build kind =
  let resolver = Dht.Static_dht.resolver (Dht.Static_dht.create ~seed:9L ~node_count:100 ()) in
  let index = Index.create ~resolver () in
  Index.publish_corpus index ~kind articles;
  index

let show_results header results =
  Printf.printf "%s (%d result%s)\n" header (List.length results)
    (if List.length results = 1 then "" else "s");
  List.iteri
    (fun i (msd, (file : Storage.Block_store.file)) ->
      if i < 5 then Printf.printf "   %-18s %s\n" file.name (Q.to_string msd))
    results;
  if List.length results > 5 then Printf.printf "   ... %d more\n" (List.length results - 5)

let () =
  Printf.printf "corpus: %d articles, %d distinct authors, %d venues\n"
    (Array.length articles)
    (List.length (Bib.Corpus.distinct_authors articles))
    (List.length
       (List.sort_uniq String.compare
          (Array.to_list (Array.map (fun (a : Article.t) -> a.conf) articles))));

  (* Storage comparison across the three schemes (Section V-B). *)
  print_endline "\n-- index storage by scheme --";
  let indexes = List.map (fun kind -> (kind, build kind)) Schemes.all in
  let simple_bytes =
    match indexes with (_, index) :: _ -> Index.index_bytes index | [] -> assert false
  in
  List.iter
    (fun (kind, index) ->
      Printf.printf "  %-8s %10s (%+.0f%% vs simple), %d mappings\n" (Schemes.label kind)
        (Stdx.Tabular.fmt_bytes (float_of_int (Index.index_bytes index)))
        ((float_of_int (Index.index_bytes index) /. float_of_int simple_bytes -. 1.0)
        *. 100.0)
        (Index.mapping_count index))
    indexes;

  (* Realistic searches over the simple scheme. *)
  let index = build Schemes.Simple in
  let a0 : Article.t = articles.(0) in
  let author = List.hd a0.authors in
  print_endline "\n-- searches --";
  show_results
    (Printf.sprintf "by author %S" (Article.author_to_string author))
    (Index.search index (Q.author_q author));
  show_results (Printf.sprintf "by title %S" a0.title) (Index.search index (Q.title_q a0.title));
  show_results
    (Printf.sprintf "by venue and year %s %d" a0.conf a0.year)
    (Index.search index (Q.conf_year a0.conf a0.year));

  (* A non-indexed author+year query, answered via generalization. *)
  let ay = Q.author_year author a0.year in
  let interactions = ref 0 in
  let recovered = Index.search_with_generalization ~interactions index ay in
  print_newline ();
  show_results
    (Printf.sprintf "by author+year %s (non-indexed; %d interactions)" (Q.to_string ay)
       !interactions)
    recovered;

  (* Write/delete semantics: retract an article and show the indexes clean
     themselves up (Section IV-C). *)
  print_endline "\n-- deletion --";
  Index.unpublish index ~scheme:(Schemes.scheme Schemes.Simple) ~msd:(Q.msd a0);
  show_results
    (Printf.sprintf "by title %S after deleting article %d" a0.title a0.id)
    (Index.search index (Q.title_q a0.title));
  Printf.printf "mappings now: %d\n" (Index.mapping_count index)

examples/adaptive_cache.ml: Bib Cache List Printf Sim String

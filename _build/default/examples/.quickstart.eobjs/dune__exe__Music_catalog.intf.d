examples/music_catalog.mli:

examples/bibliographic_database.ml: Array Bib Dht List Printf Stdx Storage String

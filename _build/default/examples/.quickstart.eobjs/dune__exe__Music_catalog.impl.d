examples/music_catalog.ml: Dht Fuzzy List P2pindex Printf Storage String Xmlkit Xpath

examples/quickstart.ml: Dht Hashing List Option P2pindex Printf Storage String Xmlkit Xpath

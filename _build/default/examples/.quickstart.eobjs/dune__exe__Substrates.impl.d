examples/substrates.ml: Array Bib Dht Hashing List Printf Stdx

examples/interactive_session.ml: Array Bib Dht Hashtbl List Option P2pindex Printf Storage

examples/chord_ring.ml: Array Bib Dht Hashing List Printf Stdx

examples/adaptive_cache.mli:

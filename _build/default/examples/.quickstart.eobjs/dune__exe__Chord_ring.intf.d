examples/chord_ring.mli:

examples/bibliographic_database.mli:

examples/substrates.mli:

examples/quickstart.mli:

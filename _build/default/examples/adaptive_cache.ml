(* The adaptive distributed cache (Sections IV-C and V-D) in action.

   Runs the same skewed workload against the same indexed corpus under the
   paper's caching policies and shows how shortcuts make popular lookups
   cheaper over time: hit ratio, interactions per query, traffic, and the
   error counts of Table I.

   Run with:  dune exec examples/adaptive_cache.exe *)

module Runner = Sim.Runner
module Policy = Cache.Policy

let config =
  {
    Runner.default_config with
    node_count = 200;
    article_count = 2_000;
    query_count = 20_000;
    scheme = Bib.Schemes.Simple;
  }

let () =
  Printf.printf
    "workload: %d queries over %d articles on %d nodes, simple indexing scheme\n\n"
    config.query_count config.article_count config.node_count;
  Printf.printf "%-10s %13s %10s %12s %13s %7s\n" "policy" "interactions" "hit ratio"
    "traffic B/q" "cached/node" "errors";
  List.iter
    (fun policy ->
      let r = Runner.run { config with policy } in
      Printf.printf "%-10s %13.2f %9.1f%% %12.0f %13.1f %7d\n" (Policy.label policy)
        (Runner.interactions_mean r)
        (Runner.hit_ratio r *. 100.0)
        (Runner.normal_traffic_per_query r +. Runner.cache_traffic_per_query r)
        (Runner.cached_keys_mean r) r.Runner.errors)
    Policy.paper_policies;

  (* The adaptation over time: hit ratio per 2k-query window under LRU30. *)
  print_endline "\n-- cache warm-up (LRU30): hit ratio per window --";
  let windows = 10 in
  let per_window = config.query_count / windows in
  let previous = ref 0 in
  for w = 1 to windows do
    let r = Runner.run { config with policy = Policy.lru 30; query_count = w * per_window } in
    let hits_in_window = r.Runner.hits - !previous in
    previous := r.Runner.hits;
    let ratio = float_of_int hits_in_window /. float_of_int per_window in
    Printf.printf "  queries %6d-%6d  hit ratio %5.1f%%  %s\n"
      (((w - 1) * per_window) + 1)
      (w * per_window) (ratio *. 100.0)
      (String.make (int_of_float (ratio *. 40.0)) '#')
  done;
  print_endline
    "\nthe cache adapts to the query pattern: popular articles become reachable in\n\
     two interactions, and previously-erroring author+year queries stop erroring"

type latency =
  | No_latency
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }

type spec = {
  loss_rate : float;
  duplicate_rate : float;
  latency : latency;
}

let zero_spec = { loss_rate = 0.0; duplicate_rate = 0.0; latency = No_latency }

let valid_rate r = Float.is_finite r && r >= 0.0 && r <= 1.0

let validate_spec s =
  if not (valid_rate s.loss_rate) then
    invalid_arg "Plan.spec: loss_rate must lie in [0, 1]";
  if not (valid_rate s.duplicate_rate) then
    invalid_arg "Plan.spec: duplicate_rate must lie in [0, 1]";
  match s.latency with
  | No_latency -> ()
  | Constant c ->
      if not (Float.is_finite c && c >= 0.0) then
        invalid_arg "Plan.spec: constant latency must be finite and >= 0"
  | Uniform { lo; hi } ->
      if not (Float.is_finite lo && Float.is_finite hi && 0.0 <= lo && lo <= hi)
      then invalid_arg "Plan.spec: uniform latency needs 0 <= lo <= hi"
  | Exponential { mean } ->
      if not (Float.is_finite mean && mean >= 0.0) then
        invalid_arg "Plan.spec: exponential latency mean must be finite and >= 0"

let spec ?(loss_rate = 0.0) ?(duplicate_rate = 0.0) ?(latency = No_latency) () =
  let s = { loss_rate; duplicate_rate; latency } in
  validate_spec s;
  s

let spec_is_zero s =
  s.loss_rate = 0.0 && s.duplicate_rate = 0.0
  &&
  match s.latency with
  | No_latency | Constant 0.0 -> true
  | Uniform { lo = 0.0; hi = 0.0 } | Exponential { mean = 0.0 } -> true
  | Constant _ | Uniform _ | Exponential _ -> false

type t = {
  seed : int64;
  base : spec;
  node_overrides : (int, spec) Hashtbl.t;
  link_overrides : (int * int, spec) Hashtbl.t;
  mutable next_id : int64;
  mutable sampled : int;
  control : Stdx.Prng.t;
  zero : bool;
}

let create ?(seed = 0L) ?(node_overrides = []) ?(link_overrides = []) base =
  validate_spec base;
  let nodes = Hashtbl.create (List.length node_overrides + 1) in
  List.iter
    (fun (node, s) ->
      if node < 0 then invalid_arg "Plan.create: override node index must be >= 0";
      validate_spec s;
      Hashtbl.replace nodes node s)
    node_overrides;
  let links = Hashtbl.create (List.length link_overrides + 1) in
  List.iter
    (fun (link, s) ->
      validate_spec s;
      Hashtbl.replace links link s)
    link_overrides;
  let zero =
    spec_is_zero base
    && Hashtbl.fold (fun _ s acc -> acc && spec_is_zero s) nodes true
    && Hashtbl.fold (fun _ s acc -> acc && spec_is_zero s) links true
  in
  {
    seed;
    base;
    node_overrides = nodes;
    link_overrides = links;
    next_id = 0L;
    sampled = 0;
    control = Stdx.Prng.create ~seed:(Int64.logxor seed 0x636f6e74726f6cL);
    zero;
  }

let zero = create zero_spec

let is_zero t = t.zero

let seed t = t.seed

type verdict = { lost : bool; duplicated : bool; latency : float }

let clean_verdict = { lost = false; duplicated = false; latency = 0.0 }

let resolve t ~src ~dst =
  match Hashtbl.find_opt t.link_overrides (src, dst) with
  | Some s -> s
  | None -> (
      match Hashtbl.find_opt t.node_overrides dst with
      | Some s -> s
      | None -> (
          match Hashtbl.find_opt t.node_overrides src with
          | Some s -> s
          | None -> t.base))

(* One PRNG per message, keyed by (seed, message id): the verdict is a
   pure function of the pair, so sampling one message never perturbs
   another and the whole stream replays from the seed. *)
let message_prng t id =
  Stdx.Prng.create
    ~seed:(Int64.logxor t.seed (Int64.mul id 0x9e3779b97f4a7c15L))

let sample_latency g = function
  | No_latency -> 0.0
  | Constant c -> c
  | Uniform { lo; hi } -> lo +. Stdx.Prng.float g (hi -. lo)
  | Exponential { mean } ->
      if mean = 0.0 then 0.0
      else -.mean *. log (1.0 -. Stdx.Prng.unit_float g)

let message t ~src ~dst =
  let id = t.next_id in
  t.next_id <- Int64.add id 1L;
  t.sampled <- t.sampled + 1;
  if t.zero then clean_verdict
  else begin
    let s = resolve t ~src ~dst in
    let g = message_prng t id in
    let lost = Stdx.Prng.unit_float g < s.loss_rate in
    let duplicated = Stdx.Prng.unit_float g < s.duplicate_rate in
    let latency = sample_latency g s.latency in
    { lost; duplicated; latency }
  end

let hop_survives t ~dst = not (message t ~src:dst ~dst).lost

let messages_sampled t = t.sampled

let control_uniform t = Stdx.Prng.unit_float t.control

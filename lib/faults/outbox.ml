(* Binary min-heap of delivery thunks ordered by (time, posting seq),
   mirroring Churn.Event_queue — faults sits below churn in the
   dependency order, so it carries its own copy of the idiom. *)

type cell = { time : float; seq : int; deliver : unit -> unit }

type t = {
  mutable heap : cell option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = Array.make 16 None; size = 0; next_seq = 0 }

let pending t = t.size

let cell_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let get t i =
  match t.heap.(i) with
  | Some c -> c
  | None -> assert false

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if cell_lt (get t i) (get t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && cell_lt (get t left) (get t !smallest) then smallest := left;
  if right < t.size && cell_lt (get t right) (get t !smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let heap = Array.make (2 * Array.length t.heap) None in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let post t ~time deliver =
  if Float.is_nan time then invalid_arg "Outbox.post: NaN time";
  if t.size = Array.length t.heap then grow t;
  let cell = { time; seq = t.next_seq; deliver } in
  t.next_seq <- t.next_seq + 1;
  t.heap.(t.size) <- Some cell;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let root = get t 0 in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    Some root
  end

let deliver_until t ~now =
  let ran = ref 0 in
  let rec loop () =
    match if t.size = 0 then None else Some (get t 0) with
    | Some head when head.time <= now -> (
        match pop t with
        | Some cell ->
            cell.deliver ();
            incr ran;
            loop ()
        | None -> ())
    | _ -> ()
  in
  loop ();
  !ran

let flush t =
  let ran = ref 0 in
  let rec loop () =
    match pop t with
    | Some cell ->
        cell.deliver ();
        incr ran;
        loop ()
    | None -> ()
  in
  loop ();
  !ran

(** Deterministic fault plans for the simulated message layer.

    A plan decides, message by message, whether a send is lost, how long
    it takes to arrive, and whether the network delivers a second copy.
    Every decision is a pure function of the plan's seed and the
    message's sequence number: two plans built with the same seed issue
    the identical verdict stream, so any simulation driven through a
    plan is bit-reproducible — the property the fault-injection tests
    pin down.

    The zero plan (no loss, no delay, no duplication) is recognisable in
    O(1) via {!is_zero}; callers use it to take a fault-free fast path
    that is byte-identical to the pre-fault code. *)

type latency =
  | No_latency  (** Instant delivery — the static model. *)
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }

type spec = {
  loss_rate : float;  (** Probability a message disappears in flight. *)
  duplicate_rate : float;  (** Probability a second copy is delivered. *)
  latency : latency;
}

val zero_spec : spec
(** No loss, no duplication, no latency. *)

val spec :
  ?loss_rate:float -> ?duplicate_rate:float -> ?latency:latency -> unit -> spec
(** Build a spec from {!zero_spec}.
    @raise Invalid_argument when a rate is outside [0, 1] or a latency
    parameter is negative, NaN or an empty interval. *)

type t

val create :
  ?seed:int64 ->
  ?node_overrides:(int * spec) list ->
  ?link_overrides:((int * int) * spec) list ->
  spec ->
  t
(** [create base] is a plan applying [base] to every message.
    [node_overrides] replaces the spec for messages to or from a given
    node (destination wins over source); [link_overrides] replaces it
    for a directed (src, dst) pair and beats both node entries.  The
    client side of an RPC is node [-1].
    @raise Invalid_argument on an invalid spec or a negative override
    node index. *)

val zero : t
(** The shared zero plan: {!is_zero} holds and no verdict ever faults. *)

val is_zero : t -> bool
(** True when no message can ever be lost, delayed or duplicated —
    the condition under which fault-aware layers take their fast path. *)

val seed : t -> int64

type verdict = { lost : bool; duplicated : bool; latency : float }

val message : t -> src:int -> dst:int -> verdict
(** The verdict for the next message from [src] to [dst].  Consumes one
    sequence number; the verdict depends only on (seed, sequence number,
    resolved spec), never on earlier verdicts. *)

val hop_survives : t -> dst:int -> bool
(** One substrate forwarding hop towards [dst]: samples a fresh message
    verdict and reports whether it was delivered.  Used to fault overlay
    routing without simulating intermediate nodes. *)

val messages_sampled : t -> int
(** How many verdicts the plan has issued (diagnostics and tests). *)

val control_uniform : t -> float
(** A uniform draw in [0, 1) from the plan's control stream — for
    decisions owned by the client, e.g. retry jitter.  Deterministic
    under a fixed seed and call order. *)

(** Deferred deliveries for fire-and-forget messages.

    Under a fault plan with latency, one-way messages (cache updates,
    republish traffic) do not take effect at send time: the sender posts
    a delivery thunk stamped with its arrival time and the simulation
    drains the outbox as its virtual clock advances.  Messages with
    earlier arrival times run first; ties run in posting order, so a
    fixed plan seed replays the identical delivery schedule. *)

type t

val create : unit -> t

val post : t -> time:float -> (unit -> unit) -> unit
(** Schedule [deliver] to run when the clock reaches [time].
    @raise Invalid_argument on a NaN time. *)

val pending : t -> int
(** Deliveries posted but not yet run. *)

val deliver_until : t -> now:float -> int
(** Run every delivery with arrival time [<= now], in (time, posting
    order), and return how many ran. *)

val flush : t -> int
(** Run every remaining delivery regardless of arrival time and return
    how many ran. *)

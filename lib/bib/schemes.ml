module Q = Bib_query

type kind = Simple | Flat | Complex | Complex_ac | Prefix

let all = [ Simple; Flat; Complex ]

let label = function
  | Simple -> "Simple"
  | Flat -> "Flat"
  | Complex -> "Complex"
  | Complex_ac -> "Complex+AC"
  | Prefix -> "Prefix"

let of_label s =
  match String.lowercase_ascii s with
  | "simple" -> Some Simple
  | "flat" -> Some Flat
  | "complex" -> Some Complex
  | "complex+ac" | "complex-ac" -> Some Complex_ac
  | "prefix" -> Some Prefix
  | _ -> None

let edge parent child = { P2pindex.Scheme.parent; child }

let simple_edges (a : Article.t) =
  let m = Q.msd a in
  let author_side =
    List.concat_map
      (fun x ->
        let at = Q.author_title x a.title in
        [ edge (Q.author_q x) at; edge (Q.title_q a.title) at; edge at m ])
      a.authors
  in
  let cy = Q.conf_year a.conf a.year in
  author_side @ [ edge (Q.conf_q a.conf) cy; edge (Q.year_q a.year) cy; edge cy m ]

let flat_edges (a : Article.t) =
  let m = Q.msd a in
  let author_side =
    List.concat_map
      (fun x -> [ edge (Q.author_q x) m; edge (Q.author_title x a.title) m ])
      a.authors
  in
  author_side
  @ [
      edge (Q.title_q a.title) m;
      edge (Q.conf_q a.conf) m;
      edge (Q.year_q a.year) m;
      edge (Q.conf_year a.conf a.year) m;
    ]

let complex_edges ?(author_conf_index = false) (a : Article.t) =
  let m = Q.msd a in
  let author_side =
    List.concat_map
      (fun x ->
        let at = Q.author_title x a.title in
        [ edge (Q.author_q x) at; edge (Q.title_q a.title) at; edge at m ])
      a.authors
  in
  let cy = Q.conf_year a.conf a.year in
  (* The conference branch is split one level deeper: (conf, year) resolves
     to (conf, year, author) entries — the paper's "returns a list of
     queries that further indicate all the publication years" behaviour.
     Entries exist for every author so that any covering entry a user
     follows leads to the file.  The optional (author, conference)
     entry-point index (the Complex_ac variant) also feeds that level. *)
  let conf_side =
    [ edge (Q.conf_q a.conf) cy; edge (Q.year_q a.year) cy ]
    @ List.concat_map
        (fun x ->
          let cya = Q.conf_year_author a.conf a.year x in
          let base = [ edge cy cya; edge cya m ] in
          if author_conf_index then edge (Q.author_conf x a.conf) cya :: base else base)
        a.authors
  in
  author_side @ conf_side

let edges = function
  | Simple -> simple_edges
  | Flat -> flat_edges
  | Complex -> complex_edges ~author_conf_index:false
  | Complex_ac -> complex_edges ~author_conf_index:true
  (* The routed prefix scheme hashes the same chains as Simple; its prefix
     entry points are not hashed edges at all — they live in the
     order-preserving [Prefix.Prefix_index] and are routed by key range. *)
  | Prefix -> simple_edges

(* Section IV-C's substring generalization: add alphabetic entry points
   mapping each last-name initial to the author queries it covers, on top of
   any base scheme.  [prefix_length] letters of the last name form the
   index key (1 = one index per initial). *)
let author_prefix_edges ?(prefix_length = 1) (a : Article.t) =
  List.filter_map
    (fun (x : Article.author) ->
      if String.length x.last >= prefix_length then
        Some
          (edge
             (Q.author_last_prefix (String.sub x.last 0 prefix_length))
             (Q.author_q x))
      else None)
    a.authors

let with_author_prefix ?prefix_length kind =
  let edges_of_msd = function
    | Q.Msd article ->
        edges kind article @ author_prefix_edges ?prefix_length article
    | Q.Fields _ | Q.Author_last_prefix _ ->
        invalid_arg "Schemes.with_author_prefix: only descriptors can be published"
  in
  P2pindex.Scheme.make ~name:(label kind ^ "+prefix") ~edges:edges_of_msd

let scheme kind =
  let edges_of_msd = function
    | Q.Msd article -> edges kind article
    | Q.Fields _ | Q.Author_last_prefix _ ->
        invalid_arg "Schemes.scheme: only descriptors can be published"
  in
  P2pindex.Scheme.make ~name:(label kind) ~edges:edges_of_msd

(* ------------------------------------------------------------------ *)

let first_author (a : Article.t) =
  match a.authors with
  | x :: _ -> x
  | [] -> assert false (* Article.make rejects empty author lists *)

(* The author a query mentions, falling back to the article's first author
   for queries without one (title-only chains can go through any author). *)
let chain_author (a : Article.t) (q : Q.t) =
  match q with
  | Q.Fields { author = Some x; _ } -> x
  | Q.Author_last_prefix p -> (
      (* The chain passes through an author with that prefix. *)
      match
        List.find_opt
          (fun (x : Article.author) ->
            String.length x.last >= String.length p
            && String.equal p (String.sub x.last 0 (String.length p)))
          a.authors
      with
      | Some x -> x
      | None -> first_author a)
  | Q.Fields _ | Q.Msd _ -> first_author a

let rec chain_to kind (a : Article.t) q =
  if not (Q.matches_article q a) then
    invalid_arg "Schemes.chain_to: query does not match the article";
  let m = Q.msd a in
  let x = chain_author a q in
  let at = Q.author_title x a.title in
  let cy = Q.conf_year a.conf a.year in
  let cya = Q.conf_year_author a.conf a.year x in
  let unindexed () =
    invalid_arg "Schemes.chain_to: query shape is not indexed by this scheme"
  in
  match q with
  | Q.Msd _ -> []
  | Q.Author_last_prefix _ ->
      (* Prefix entry points sit above the author index. *)
      Q.author_q x :: chain_to kind a (Q.author_q x)
  | Q.Fields { author; title; conf; year } -> (
      match kind with
      | Flat -> (
          (* Everything indexed points straight at the MSD. *)
          match (author, title, conf, year) with
          | Some _, None, None, None
          | None, Some _, None, None
          | Some _, Some _, None, None
          | None, None, Some _, None
          | None, None, None, Some _
          | None, None, Some _, Some _ ->
              [ m ]
          | _ -> unindexed ())
      | Simple | Prefix -> (
          match (author, title, conf, year) with
          | Some _, None, None, None | None, Some _, None, None -> [ at; m ]
          | Some _, Some _, None, None -> [ m ]
          | None, None, Some _, None | None, None, None, Some _ -> [ cy; m ]
          | None, None, Some _, Some _ -> [ m ]
          | _ -> unindexed ())
      | Complex | Complex_ac -> (
          match (author, title, conf, year) with
          | Some _, None, None, None | None, Some _, None, None -> [ at; m ]
          | Some _, Some _, None, None -> [ m ]
          | None, None, Some _, None | None, None, None, Some _ -> [ cy; cya; m ]
          | None, None, Some _, Some _ -> [ cya; m ]
          | Some _, None, Some _, None when kind = Complex_ac -> [ cya; m ]
          | _ -> unindexed ()))

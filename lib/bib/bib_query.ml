type fields = {
  author : Article.author option;
  title : string option;
  conf : string option;
  year : int option;
}

type t = Fields of fields | Msd of Article.t | Author_last_prefix of string

let empty_fields = { author = None; title = None; conf = None; year = None }

let fields ?author ?title ?conf ?year () = Fields { author; title; conf; year }

let author_q a = Fields { empty_fields with author = Some a }
let title_q title = Fields { empty_fields with title = Some title }
let conf_q conf = Fields { empty_fields with conf = Some conf }
let year_q year = Fields { empty_fields with year = Some year }
let author_title a title = Fields { empty_fields with author = Some a; title = Some title }
let author_year a year = Fields { empty_fields with author = Some a; year = Some year }
let author_conf a conf = Fields { empty_fields with author = Some a; conf = Some conf }
let conf_year conf year = Fields { empty_fields with conf = Some conf; year = Some year }

let conf_year_author conf year a =
  Fields { empty_fields with conf = Some conf; year = Some year; author = Some a }

let msd article = Msd article

let author_last_prefix prefix =
  if String.equal prefix "" then invalid_arg "Bib_query.author_last_prefix: empty prefix";
  Author_last_prefix prefix

(* ------------------------------------------------------------------ *)
(* Structural comparison (fast path for sets and dedup). *)

let compare_fields f g =
  let compare_opt cmp a b =
    match (a, b) with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some x, Some y -> cmp x y
  in
  let c = compare_opt Article.compare_author f.author g.author in
  if c <> 0 then c
  else
    let c = compare_opt String.compare f.title g.title in
    if c <> 0 then c
    else
      let c = compare_opt String.compare f.conf g.conf in
      if c <> 0 then c else compare_opt Int.compare f.year g.year

let compare a b =
  match (a, b) with
  | Fields f, Fields g -> compare_fields f g
  | Fields _, (Msd _ | Author_last_prefix _) -> -1
  | Msd _, Fields _ -> 1
  | Msd x, Msd y -> Article.compare x y
  | Msd _, Author_last_prefix _ -> -1
  | Author_last_prefix _, (Fields _ | Msd _) -> 1
  | Author_last_prefix p, Author_last_prefix p' -> String.compare p p' 

let equal a b = compare a b = 0

(* ------------------------------------------------------------------ *)
(* Canonical rendering: exactly the canonical form of the equivalent XPath
   pattern.  Predicates sort by their rendered strings; for article fields
   that is the fixed name order author < conf < size < title < year, with
   multiple author predicates ordered by their own rendering. *)

let author_pred (a : Article.author) =
  Printf.sprintf "author[first/%s][last/%s]" a.first a.last

let field_preds f =
  let preds = [] in
  let preds = match f.year with Some y -> Printf.sprintf "year/%d" y :: preds | None -> preds in
  let preds =
    match f.title with Some t -> Printf.sprintf "title/%s" t :: preds | None -> preds
  in
  let preds =
    match f.conf with Some c -> Printf.sprintf "conf/%s" c :: preds | None -> preds
  in
  match f.author with Some a -> author_pred a :: preds | None -> preds

let msd_preds (article : Article.t) =
  let authors = List.sort String.compare (List.map author_pred article.authors) in
  authors
  @ [
      Printf.sprintf "conf/%s" article.conf;
      Printf.sprintf "size/%d" article.size_bytes;
      Printf.sprintf "title/%s" article.title;
      Printf.sprintf "year/%d" article.year;
    ]

let render preds =
  match preds with
  | [] -> "/article"
  | [ only ] -> "/article/" ^ only
  | many -> "/article[" ^ String.concat "][" many ^ "]"

let to_string = function
  | Fields f -> render (field_preds f)
  | Msd article -> render (msd_preds article)
  | Author_last_prefix p -> "/article/author/last/" ^ p ^ "*"

let pp ppf q = Format.pp_print_string ppf (to_string q)

let to_xpath q = Xpath.of_string (to_string q)

(* Structural recognizer for the routed-prefix shape: the single chain
   /article/author/last/p* with child axes throughout and a non-empty
   prefix leaf.  Anything else — extra predicates, descendant axes, a
   wildcard — is not a prefix entry point and returns None. *)
let of_xpath_author_prefix q =
  let chain_child node =
    match (Xpath.node_axis node, Xpath.node_children node) with
    | Xpath.Child, [ only ] -> Some only
    | (Xpath.Child | Xpath.Descendant), _ -> None
  in
  let named_step name node =
    match Xpath.node_test node with
    | Xpath.Name n when String.equal n name -> chain_child node
    | Xpath.Name _ | Xpath.Prefix _ | Xpath.Wildcard -> None
  in
  match Xpath.top_nodes q with
  | [ top ] -> (
      match
        Option.bind (named_step "article" top) (fun author ->
            Option.bind (named_step "author" author) (named_step "last"))
      with
      | Some leaf -> (
          match
            (Xpath.node_axis leaf, Xpath.node_test leaf, Xpath.node_children leaf)
          with
          | Xpath.Child, Xpath.Prefix p, [] when not (String.equal p "") ->
              Some (Author_last_prefix p)
          | _, (Xpath.Name _ | Xpath.Prefix _ | Xpath.Wildcard), _ -> None)
      | None -> None)
  | [] | _ :: _ -> None

(* ------------------------------------------------------------------ *)
(* Covering and compatibility. *)

let opt_covers equal constraint_ value =
  match constraint_ with None -> true | Some c -> ( match value with Some v -> equal c v | None -> false )

let fields_cover_fields f g =
  (* Every constraint of f must appear verbatim in g. *)
  opt_covers Article.author_equal f.author g.author
  && opt_covers String.equal f.title g.title
  && opt_covers String.equal f.conf g.conf
  && opt_covers Int.equal f.year g.year

let fields_cover_article f (article : Article.t) =
  (match f.author with
  | None -> true
  | Some a -> List.exists (Article.author_equal a) article.authors)
  && (match f.title with None -> true | Some t -> String.equal t article.title)
  && (match f.conf with None -> true | Some c -> String.equal c article.conf)
  && match f.year with None -> true | Some y -> y = article.year

let is_prefix p s =
  String.length p <= String.length s && String.equal p (String.sub s 0 (String.length p))

let article_has_last_prefix p (article : Article.t) =
  List.exists (fun (x : Article.author) -> is_prefix p x.last) article.authors

let covers general specific =
  match (general, specific) with
  | Fields f, Fields g -> fields_cover_fields f g
  | Fields f, Msd article -> fields_cover_article f article
  | Msd a, Msd b -> Article.equal a b
  | Msd _, (Fields _ | Author_last_prefix _) -> false
  | Author_last_prefix p, Fields { author = Some a; _ } -> is_prefix p a.Article.last
  | Author_last_prefix _, Fields _ -> false
  | Author_last_prefix p, Msd article -> article_has_last_prefix p article
  | Author_last_prefix p, Author_last_prefix p' -> is_prefix p p'
  | Fields f, Author_last_prefix _ ->
      (* Only the unconstrained query covers a prefix query. *)
      compare_fields f empty_fields = 0

let matches_article q article = covers q (Msd article)

let compatible a b =
  (* False only when no article can satisfy both.  Title, conference and
     year are single-valued, so differing constraints conflict; authors are
     multi-valued (co-authorship), so differing authors stay compatible. *)
  let conflict equal x y =
    match (x, y) with Some v, Some w -> not (equal v w) | None, _ | _, None -> false
  in
  match (a, b) with
  | Fields f, Fields g ->
      (not (conflict String.equal f.title g.title))
      && (not (conflict String.equal f.conf g.conf))
      && not (conflict Int.equal f.year g.year)
  | Fields f, Msd article | Msd article, Fields f -> fields_cover_article f article
  | Msd x, Msd y -> Article.equal x y
  | Author_last_prefix p, Msd article | Msd article, Author_last_prefix p ->
      article_has_last_prefix p article
  | Author_last_prefix _, Fields _ | Fields _, Author_last_prefix _ ->
      (* Authors are multi-valued: a differing author field never rules a
         prefix out. *)
      true
  | Author_last_prefix _, Author_last_prefix _ -> true

(* ------------------------------------------------------------------ *)

let generalizations = function
  | Author_last_prefix p ->
      if String.length p <= 1 then []
      else [ Author_last_prefix (String.sub p 0 (String.length p - 1)) ]
  | Msd article ->
      List.map
        (fun a ->
          Fields
            {
              author = Some a;
              title = Some article.title;
              conf = Some article.conf;
              year = Some article.year;
            })
        article.authors
  | Fields f ->
      (* Drop one constraint, least selective first. *)
      let drops =
        [
          (match f.year with Some _ -> Some (Fields { f with year = None }) | None -> None);
          (match f.conf with Some _ -> Some (Fields { f with conf = None }) | None -> None);
          (match f.title with Some _ -> Some (Fields { f with title = None }) | None -> None);
          (match f.author with
          | Some _ -> Some (Fields { f with author = None })
          | None -> None);
        ]
      in
      List.filter_map Fun.id drops

let constraint_count = function
  | Author_last_prefix _ -> 1
  | Msd _ -> 5
  | Fields f ->
      let count opt = match opt with Some _ -> 1 | None -> 0 in
      count f.author + count f.title + count f.conf + count f.year

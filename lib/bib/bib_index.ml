(** The distributed index instantiated over bibliographic field queries —
    what the paper's simulations run on. *)

include P2pindex.Index.Make (Bib_query)

(** Publish a whole corpus under a scheme. *)
let publish_corpus t ~kind articles =
  Array.iter
    (fun article ->
      publish t ~scheme:(Schemes.scheme kind) ~msd:(Bib_query.msd article)
        (Article.file article))
    articles

(** Soft-state refresh: every publisher re-sends its entries with fresh
    TTLs, restoring copies lost to churn. *)
let republish_corpus t ~kind articles =
  Array.iter
    (fun article ->
      republish t ~scheme:(Schemes.scheme kind) ~msd:(Bib_query.msd article)
        (Article.file article))
    articles

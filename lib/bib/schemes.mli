(** The three indexing schemes of Fig. 8.

    Each scheme maps an article's most specific descriptor to the set of
    query-to-query index entries to install:

    - {e Simple}: two hierarchies — author and title meet in an
      (author, title) index that points at the MSD; conference and year meet
      in a (conference, year) index that points at the MSD.
    - {e Flat}: every query of the simple scheme points directly at the MSD,
      so every index chain has length two.
    - {e Complex}: the simple scheme with the conference branch deepened —
      (conference, year) resolves to (conference, year, author) entries, so
      "a query specifying an author and a conference returns a list of
      queries that further indicate all the publication years"
      (Section V-B).
    - {e Complex_ac}: an extension of the complex scheme with an explicit
      (author, conference) entry-point index feeding the
      (conference, year, author) level.  Not part of the paper's measured
      trio; used by the ablation benches.
    - {e Prefix}: the routed prefix/range scheme.  Its hashed chains are
      identical to Simple; what changes is how [p*] entry points are
      answered — via the order-preserving [Prefix.Prefix_index] routed to
      the covering key range instead of hashed entry-point edges (compare
      {!with_author_prefix}, which hashes them).

    Multi-author articles install the author-side entries once per author. *)

type kind = Simple | Flat | Complex | Complex_ac | Prefix

val all : kind list
(** The paper's measured trio: [Simple; Flat; Complex]. *)

val label : kind -> string
val of_label : string -> kind option
(** Case-insensitive; [None] for unknown labels. *)

val scheme : kind -> Bib_query.t P2pindex.Scheme.t

val with_author_prefix : ?prefix_length:int -> kind -> Bib_query.t P2pindex.Scheme.t
(** The base scheme augmented with alphabetic entry points: an index per
    last-name prefix of [prefix_length] letters (default 1) mapping to the
    author queries it covers — Section IV-C's "all the files of an author
    that start with the letter A". *)

val edges : kind -> Article.t -> Bib_query.t P2pindex.Scheme.edge list
(** The entries this scheme installs for one article. *)

val chain_to : kind -> Article.t -> Bib_query.t -> Bib_query.t list
(** [chain_to kind article q] is the index path a user starting at [q]
    follows to reach the article, {e excluding} [q] itself and ending with
    the MSD — i.e. the successive queries selected at each interaction.
    @raise Invalid_argument when [q] does not match the article or is not an
    indexed query shape. *)

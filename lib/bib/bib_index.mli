(** The distributed index instantiated over bibliographic field queries —
    what the paper's simulations run on. *)

include P2pindex.Index.S with type query = Bib_query.t

val publish_corpus : t -> kind:Schemes.kind -> Article.t array -> unit
(** Publish a whole corpus under a scheme. *)

val republish_corpus : t -> kind:Schemes.kind -> Article.t array -> unit
(** Soft-state refresh: every publisher re-sends its entries with fresh
    TTLs, restoring copies lost to churn. *)

(** Field queries over the bibliographic database.

    The query logs the paper studied (BibFinder, NetBib) contain conjunctive
    field queries — author, title, conference, year, and combinations — so
    the application works with a typed record of optional constraints rather
    than raw XPath.  Every query still {e is} an XPath expression: the
    canonical string (and hence the DHT key) is exactly the canonical
    rendering of the equivalent XPath pattern, which {!to_xpath} exposes and
    the test suite verifies.

    The module satisfies {!P2pindex.Query_sig.QUERY} and is what the
    simulations index. *)

type fields = {
  author : Article.author option;
  title : string option;
  conf : string option;
  year : int option;
}

type t =
  | Fields of fields  (** A broad query: the conjunction of set fields. *)
  | Msd of Article.t  (** The most specific descriptor of an article. *)
  | Author_last_prefix of string
      (** All authors whose last name starts with the given prefix — the
          "substring matching" index keys of Section IV-C ("all the files
          of an author that start with the letter A").  Rendered as
          [/article/author/last/A*]. *)

(** {1 Constructors} *)

val fields : ?author:Article.author -> ?title:string -> ?conf:string -> ?year:int -> unit -> t
val author_q : Article.author -> t
val title_q : string -> t
val conf_q : string -> t
val year_q : int -> t
val author_title : Article.author -> string -> t
val author_year : Article.author -> int -> t
val author_conf : Article.author -> string -> t
val conf_year : string -> int -> t
val conf_year_author : string -> int -> Article.author -> t
val msd : Article.t -> t

val author_last_prefix : string -> t
(** @raise Invalid_argument on an empty prefix. *)

(** {1 The QUERY interface} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val covers : t -> t -> bool
val compatible : t -> t -> bool
val generalizations : t -> t list
(** For a [Fields] query: drop one constraint, least selective first (year,
    then conference, then title, then author).  For an [Msd]: the full-field
    queries of each of its authors (the "drop the size" step). *)

(** {1 Application helpers} *)

val matches_article : t -> Article.t -> bool
(** Does the article's descriptor match the query?  Equivalent to
    [covers q (msd article)]. *)

val to_xpath : t -> Xpath.t
(** The equivalent XPath pattern.  [Xpath.to_string (to_xpath q)] equals
    [to_string q]. *)

val of_xpath_author_prefix : Xpath.t -> t option
(** Recognize the routed-prefix query shape: the single child-axis chain
    [/article/author/last/p*] compiles to [Author_last_prefix p].  [None]
    for every other pattern (extra predicates, descendant axes, wildcard
    or empty-prefix leaves).  Round-trips with {!to_xpath}:
    [of_xpath_author_prefix (to_xpath (author_last_prefix p))] is
    [Some (author_last_prefix p)]. *)

val constraint_count : t -> int
(** Number of constrained fields ([Msd] counts as 5: all fields plus
    size; a prefix counts as 1). *)

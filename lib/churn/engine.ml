type 'a t = {
  queue : 'a Event_queue.t;
  prng : Stdx.Prng.t;
  mutable now : float;
}

let create ~dummy ~seed =
  { queue = Event_queue.create ~dummy (); prng = Stdx.Prng.create ~seed; now = 0.0 }

let now t = t.now
let prng t = t.prng

let schedule t ~at event =
  if Float.is_nan at then invalid_arg "Engine.schedule: NaN time";
  if at < t.now then invalid_arg "Engine.schedule: time is in the past";
  Event_queue.push t.queue ~time:at event

let schedule_after t ~delay event =
  if Float.is_nan delay || delay < 0. then
    invalid_arg "Engine.schedule_after: bad delay";
  Event_queue.push t.queue ~time:(t.now +. delay) event

let pending t = Event_queue.length t.queue
let peek_time t = Event_queue.peek_time t.queue

let advance_to t time = if time > t.now then t.now <- time

let[@hot] next_until t ~until =
  (* Reuses the queue's own pair rather than re-wrapping it — no extra
     allocation on the per-event path. *)
  match Event_queue.pop_until t.queue ~until with
  | Some (time, _) as popped ->
      advance_to t time;
      popped
  | None ->
      advance_to t until;
      None

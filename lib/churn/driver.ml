type event = Fail of int | Join of int | Republish | Repair

type config = {
  session : Lifetime.t;
  downtime : Lifetime.t;
  republish_period : float;
  repair_period : float;
}

type instruments = {
  live_nodes : Obs.Metrics.Gauge.t;
  failures : Obs.Metrics.Counter.t;
  joins : Obs.Metrics.Counter.t;
  republishes : Obs.Metrics.Counter.t;
  repairs : Obs.Metrics.Counter.t;
}

type t = {
  engine : event Engine.t;
  liveness : Dht.Liveness.t;
  config : config;
  instruments : instruments option;
}

let make_instruments registry liveness =
  let counter name help = Obs.Metrics.counter registry ~help name in
  let live_nodes =
    Obs.Metrics.gauge registry ~help:"Nodes currently alive under churn"
      "p2pindex_churn_live_nodes"
  in
  Obs.Metrics.Gauge.set live_nodes (float_of_int (Dht.Liveness.live_count liveness));
  {
    live_nodes;
    failures = counter "p2pindex_churn_failures_total" "Abrupt node failures";
    joins = counter "p2pindex_churn_joins_total" "Nodes rejoining after downtime";
    republishes =
      counter "p2pindex_churn_republishes_total" "Global republish rounds";
    repairs = counter "p2pindex_churn_repairs_total" "Anti-entropy repair passes";
  }

let check_period name period =
  if Float.is_nan period || period <= 0. then
    invalid_arg (Printf.sprintf "Churn.Driver: %s must be > 0 (or infinity)" name)

let create ?metrics ~seed ~liveness config =
  check_period "republish_period" config.republish_period;
  check_period "repair_period" config.repair_period;
  let engine = Engine.create ~dummy:Republish ~seed in
  let t =
    { engine; liveness; config; instruments = Option.map (fun r -> make_instruments r liveness) metrics }
  in
  (* One lifetime draw per node, in node order, so the whole schedule is a
     pure function of the seed. *)
  let prng = Engine.prng engine in
  for node = 0 to Dht.Liveness.node_count liveness - 1 do
    Engine.schedule engine ~at:(Lifetime.sample config.session prng) (Fail node)
  done;
  if config.republish_period < infinity then
    Engine.schedule engine ~at:config.republish_period Republish;
  if config.repair_period < infinity then
    Engine.schedule engine ~at:config.repair_period Repair;
  t

let now t = Engine.now t.engine
let live_count t = Dht.Liveness.live_count t.liveness

let next_event_time t = Engine.peek_time t.engine

let set_gauge t =
  match t.instruments with
  | None -> ()
  | Some ins ->
      Obs.Metrics.Gauge.set ins.live_nodes
        (float_of_int (Dht.Liveness.live_count t.liveness))

let count t pick =
  match t.instruments with
  | None -> ()
  | Some ins -> Obs.Metrics.Counter.incr (pick ins)

let run_until t ~until ~on_fail ~on_join ~on_republish ~on_repair =
  let prng = Engine.prng t.engine in
  let rec loop () =
    match Engine.next_until t.engine ~until with
    | None -> ()
    | Some (time, event) ->
        (match event with
        | Fail node ->
            if Dht.Liveness.fail t.liveness node then begin
              count t (fun i -> i.failures);
              set_gauge t;
              on_fail ~time node
            end;
            Engine.schedule_after t.engine
              ~delay:(Lifetime.sample t.config.downtime prng)
              (Join node)
        | Join node ->
            if Dht.Liveness.revive t.liveness node then begin
              count t (fun i -> i.joins);
              set_gauge t;
              on_join ~time node
            end;
            Engine.schedule_after t.engine
              ~delay:(Lifetime.sample t.config.session prng)
              (Fail node)
        | Republish ->
            count t (fun i -> i.republishes);
            on_republish ~time;
            Engine.schedule_after t.engine ~delay:t.config.republish_period
              Republish
        | Repair ->
            count t (fun i -> i.repairs);
            on_repair ~time;
            Engine.schedule_after t.engine ~delay:t.config.repair_period Repair);
        loop ()
  in
  loop ()

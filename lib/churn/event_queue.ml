(* Binary min-heap ordered by (time, sequence number).  The sequence
   number — assigned at push — breaks ties in FIFO order, so equal-time
   events pop in the order they were scheduled and the whole queue is
   deterministic.

   Layout is struct-of-arrays: times live in a flat float array (unboxed
   storage), seqs in an int array, events in a dummy-backed slot column.
   The dummy (supplied at creation) replaces the [Some]-per-push boxing
   of an ['a option array]; slots past [size] are reset to the dummy on
   pop so the queue never retains popped events. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  events : 'a Stdx.Arena.Slots.t; (* dummy above [size] *)
  mutable size : int;
  mutable next_seq : int;
}

let initial_capacity = 16

let create ~dummy () =
  {
    times = Array.make initial_capacity 0.0;
    seqs = Array.make initial_capacity 0;
    events = Stdx.Arena.Slots.create ~capacity:initial_capacity ~dummy ();
    size = 0;
    next_seq = 0;
  }

let length t = t.size
let is_empty t = t.size = 0

(* Strict (time, seq) heap order between two live slots. *)
let slot_lt t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let time = t.times.(i) and seq = t.seqs.(i) in
  let event = Stdx.Arena.Slots.get t.events i in
  t.times.(i) <- t.times.(j);
  t.seqs.(i) <- t.seqs.(j);
  Stdx.Arena.Slots.set t.events i (Stdx.Arena.Slots.get t.events j);
  t.times.(j) <- time;
  t.seqs.(j) <- seq;
  Stdx.Arena.Slots.set t.events j event

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if slot_lt t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && slot_lt t left !smallest then smallest := left;
  if right < t.size && slot_lt t right !smallest then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let capacity = 2 * Array.length t.times in
  let times = Array.make capacity 0.0 in
  let seqs = Array.make capacity 0 in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  Stdx.Arena.Slots.ensure t.events (capacity - 1)

let[@hot] push t ~time event =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  if t.size = Array.length t.times then grow t;
  t.times.(t.size) <- time;
  t.seqs.(t.size) <- t.next_seq;
  Stdx.Arena.Slots.set t.events t.size event;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek_time t = if t.size = 0 then None else Some t.times.(0)

(* Remove the root, restore the heap, return the root's payload. *)
let[@hot] pop_root t =
  let event = Stdx.Arena.Slots.get t.events 0 in
  t.size <- t.size - 1;
  t.times.(0) <- t.times.(t.size);
  t.seqs.(0) <- t.seqs.(t.size);
  Stdx.Arena.Slots.set t.events 0 (Stdx.Arena.Slots.get t.events t.size);
  Stdx.Arena.Slots.clear t.events t.size;
  if t.size > 0 then sift_down t 0;
  event

let[@hot] pop t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) in
    let event = pop_root t in
    (* lint: allow P3 — API boundary: one (time, event) pair per pop, destructured immediately by callers *)
    Some (time, event)
  end

let[@hot] pop_until t ~until =
  if t.size = 0 || t.times.(0) > until then None else pop t

let[@hot] drain_until t ~until ~f =
  let drained = ref 0 in
  while t.size > 0 && t.times.(0) <= until do
    let time = t.times.(0) in
    let event = pop_root t in
    incr drained;
    f ~time event
  done;
  !drained

(* Binary min-heap ordered by (time, sequence number).  The sequence
   number — assigned at push — breaks ties in FIFO order, so equal-time
   events pop in the order they were scheduled and the whole queue is
   deterministic. *)

type 'a cell = { time : float; seq : int; event : 'a }

type 'a t = {
  mutable heap : 'a cell option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = Array.make 16 None; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let cell_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let get t i =
  match t.heap.(i) with
  | Some c -> c
  | None -> assert false

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if cell_lt (get t i) (get t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && cell_lt (get t left) (get t !smallest) then smallest := left;
  if right < t.size && cell_lt (get t right) (get t !smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let heap = Array.make (2 * Array.length t.heap) None in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let push t ~time event =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  if t.size = Array.length t.heap then grow t;
  let cell = { time; seq = t.next_seq; event } in
  t.next_seq <- t.next_seq + 1;
  t.heap.(t.size) <- Some cell;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek_time t = if t.size = 0 then None else Some (get t 0).time

let pop t =
  if t.size = 0 then None
  else begin
    let root = get t 0 in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    Some (root.time, root.event)
  end

let pop_until t ~until =
  match peek_time t with
  | Some time when time <= until -> pop t
  | _ -> None

type t =
  | Exponential of { mean : float }
  | Pareto of { alpha : float; xmin : float }

let exponential ~mean =
  if not (mean > 0.) then invalid_arg "Lifetime.exponential: mean must be > 0";
  Exponential { mean }

let pareto ?(alpha = 1.5) ~mean () =
  if not (mean > 0.) then invalid_arg "Lifetime.pareto: mean must be > 0";
  if not (alpha > 1.) then
    invalid_arg "Lifetime.pareto: alpha must be > 1 for a finite mean";
  Pareto { alpha; xmin = mean *. (alpha -. 1.) /. alpha }

let mean = function
  | Exponential { mean } -> mean
  | Pareto { alpha; xmin } -> xmin *. alpha /. (alpha -. 1.)

(* [Prng.float] yields u in [0, 1); both inversions below need the open
   side at u = 1 instead, so use 1 - u which lies in (0, 1]. *)
let sample t prng =
  let u = 1.0 -. Stdx.Prng.float prng 1.0 in
  match t with
  | Exponential { mean } -> -.mean *. log u
  | Pareto { alpha; xmin } -> xmin *. (u ** (-1. /. alpha))

let label = function
  | Exponential { mean } -> Printf.sprintf "exp(mean=%g)" mean
  | Pareto { alpha; xmin } ->
      Printf.sprintf "pareto(alpha=%g,mean=%g)" alpha
        (xmin *. alpha /. (alpha -. 1.))

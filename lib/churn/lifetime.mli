(** Session-lifetime distributions for the churn engine.

    Measurement studies of deployed peer-to-peer networks disagree on the
    shape of session lifetimes — early work fit exponentials, later work
    heavy tails — so the engine supports both: memoryless
    {!exponential} sessions and Pareto sessions whose long tail keeps a
    stable core of nodes alive while the rest flicker. *)

type t =
  | Exponential of { mean : float }
  | Pareto of { alpha : float; xmin : float }

val exponential : mean:float -> t
(** @raise Invalid_argument when [mean <= 0]. *)

val pareto : ?alpha:float -> mean:float -> unit -> t
(** Pareto with shape [alpha] (default 1.5) and scale chosen so the
    distribution's mean is [mean]: [xmin = mean *. (alpha -. 1.) /. alpha].
    @raise Invalid_argument when [mean <= 0] or [alpha <= 1] (the mean
    diverges at [alpha <= 1]). *)

val mean : t -> float

val sample : t -> Stdx.Prng.t -> float
(** Draw a lifetime by inversion from the PRNG's next float.  Always
    strictly positive and finite. *)

val label : t -> string
(** ["exp(mean=30)"] / ["pareto(alpha=1.5,mean=30)"] — for reports. *)

(** The churn driver: turns an {!Engine} plus session-lifetime
    distributions into a concrete schedule of node failures, rejoins and
    periodic soft-state maintenance.

    Each node alternates between sessions (alive, drawn from
    [session]) and downtimes (dead, drawn from [downtime]); failures are
    abrupt (crash-stop — the owner of the node's state decides what is
    lost via the [on_fail] callback).  Republish and repair fire globally
    on fixed periods.  Everything is deterministic from the engine seed:
    two drivers with the same seed and config emit identical event
    sequences. *)

type event =
  | Fail of int  (** The node's session ended; it crashes. *)
  | Join of int  (** The node's downtime ended; it rejoins, state lost. *)
  | Republish  (** Publishers refresh their soft state. *)
  | Repair  (** Anti-entropy pass over replica sets. *)

type config = {
  session : Lifetime.t;  (** Alive-time distribution. *)
  downtime : Lifetime.t;  (** Dead-time distribution. *)
  republish_period : float;  (** [infinity]: never republish. *)
  repair_period : float;  (** [infinity]: never repair. *)
}

type t

val create :
  ?metrics:Obs.Metrics.t ->
  seed:int64 ->
  liveness:Dht.Liveness.t ->
  config ->
  t
(** Draw every node's first session end and schedule it, along with the
    first republish/repair ticks.  The [liveness] set is shared: the
    driver flips nodes there and every store built over it sees the
    change.  With [metrics], maintains the
    [p2pindex_churn_live_nodes] gauge and
    [p2pindex_churn_{failures,joins,republishes,repairs}_total]
    counters. *)

val now : t -> float

val live_count : t -> int

val run_until :
  t ->
  until:float ->
  on_fail:(time:float -> int -> unit) ->
  on_join:(time:float -> int -> unit) ->
  on_republish:(time:float -> unit) ->
  on_repair:(time:float -> unit) ->
  unit
(** Fire every event scheduled at or before [until] in order, advancing
    the virtual clock to [until].  [on_fail node] runs after the node is
    marked dead (drop its state there); [on_join node] after it is marked
    alive again.  A [Fail] schedules the matching [Join] at
    [now + downtime]; a [Join] schedules the next [Fail] at
    [now + session]; periodic events reschedule themselves. *)

val next_event_time : t -> float option
(** When the next scheduled event fires, if any. *)

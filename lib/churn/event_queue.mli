(** A priority queue of timed events — the heart of the discrete-event
    engine.

    Events are ordered by nondecreasing virtual time; events scheduled for
    the {e same} time fire in insertion (FIFO) order, which makes every
    simulation that uses the queue deterministic: the schedule is a pure
    function of the push sequence. *)

type 'a t

val create : dummy:'a -> unit -> 'a t
(** An empty queue.  [dummy] is an inert value of the event type used to
    fill unoccupied slots — it is never returned, only stored, so any
    cheap constant of ['a] works.  Supplying it lets the queue keep
    events in a flat array without per-push [option] boxing. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit
(** Schedule an event.  [time] may be in the past relative to previously
    popped events — the queue itself imposes no clock; engines layering a
    clock on top enforce monotonicity there.
    @raise Invalid_argument when [time] is NaN. *)

val peek_time : 'a t -> float option
(** Earliest scheduled time, without popping. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event; among equal times, the one
    pushed first.  [None] when empty. *)

val pop_until : 'a t -> until:float -> (float * 'a) option
(** {!pop}, but only when the earliest event's time is [<= until]. *)

val drain_until : 'a t -> until:float -> f:(time:float -> 'a -> unit) -> int
(** Pop every event with time [<= until] in queue order, calling [f] on
    each without allocating the per-event pair {!pop} returns; yields
    the number of events drained.  Events [f] pushes at or before
    [until] are drained in the same call — a quantum of the engine's
    tick loop. *)

(** Deterministic discrete-event engine: a virtual clock over an
    {!Event_queue}, with a seeded PRNG for everything stochastic.

    Time is purely virtual — nothing here sleeps or reads a wall clock.
    The clock only moves forward, either to the timestamp of a popped
    event or explicitly via {!advance_to}, so the event schedule (and any
    simulation built on it) is a deterministic function of the seed. *)

type 'a t

val create : dummy:'a -> seed:int64 -> 'a t
(** [dummy] is an inert event value for unoccupied queue slots — see
    {!Event_queue.create}. *)

val now : 'a t -> float
(** Current virtual time; [0.0] at creation. *)

val prng : 'a t -> Stdx.Prng.t
(** The engine's own PRNG stream (split from the seed). *)

val schedule : 'a t -> at:float -> 'a -> unit
(** Schedule an event at absolute virtual time [at].
    @raise Invalid_argument when [at] is NaN or earlier than {!now}. *)

val schedule_after : 'a t -> delay:float -> 'a -> unit
(** [schedule_after t ~delay ev] is [schedule t ~at:(now t +. delay) ev].
    @raise Invalid_argument when [delay] is NaN or negative. *)

val pending : 'a t -> int
(** Events scheduled and not yet fired. *)

val peek_time : 'a t -> float option
(** When the earliest pending event fires, if any. *)

val next_until : 'a t -> until:float -> (float * 'a) option
(** Pop the earliest event whose time is [<= until], advancing the clock
    to that event's time.  When no such event exists the clock advances
    to [until] and the result is [None].  Never moves the clock
    backwards: events at times [< now] (impossible via {!schedule}) would
    fire at [now]. *)

val advance_to : 'a t -> float -> unit
(** Move the clock forward to the given time; no-op when already past. *)

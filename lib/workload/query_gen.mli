(** The realistic user model of Section V-C.

    Two independent choices per query:
    - {e which} article is wanted: drawn from the power-law popularity
      fitted to the BibFinder/NetBib/CiteSeer observations
      (CCDF [F̄(i) = 1 − 0.063·i^0.3], Fig. 10);
    - {e how} it is asked for: the query-structure mix extracted from the
      BibFinder log (Fig. 7) — author only (0.60), title only (0.20), year
      only (0.10), author+title (0.05), author+year (0.05).

    The generated query always matches the chosen target article (users ask
    for something that exists); for multi-author articles the author field
    names the primary (first-listed) author, as bibliographic interfaces
    display them. *)

type structure =
  | Author
  | Title
  | Year
  | Author_title
  | Author_year
  | Author_conf
  | Author_prefix
      (** A last-name prefix query ([Smi*]) on the target's primary
          author — the browsing/autocomplete class the routed prefix
          scheme answers. *)

val all_structures : structure list
val structure_label : structure -> string

type mix = {
  p_author : float;
  p_title : float;
  p_year : float;
  p_author_title : float;
  p_author_year : float;
  p_author_conf : float;
      (** 0 in the paper's mix; used by the scheme ablations. *)
  p_author_prefix : float;
      (** 0 in the paper's mix; non-zero only for prefix-scheme runs. *)
}

val bibfinder_mix : mix
(** The paper's probabilities: 0.60 / 0.20 / 0.10 / 0.05 / 0.05. *)

val uniform_mix : mix
(** Equal weight on the five log-observed structures (author+conf and
    author-prefix stay at zero; they exist for the scheme ablations). *)

val prefix_mix : ?share:float -> mix -> mix
(** [prefix_mix base] moves [share] (default 0.10) of probability mass
    from the author-only class into the author-prefix class, leaving all
    other classes untouched — the browsing workload of prefix-scheme
    runs.  @raise Invalid_argument unless [0 <= share <= base.p_author]. *)

type event = {
  target : Bib.Article.t;  (** The article the user is after. *)
  structure : structure;
  query : Bib.Bib_query.t;  (** Always satisfies [matches_article query target]. *)
}

type t

val create :
  ?mix:mix ->
  ?popularity:Stdx.Power_law.t ->
  ?prefix_len:int ->
  articles:Bib.Article.t array ->
  seed:int64 ->
  unit ->
  t
(** [create ~articles ~seed ()] uses the paper's fitted popularity over the
    articles' ranks and the BibFinder mix.  Articles are addressed by rank:
    element [i] of the array is rank [i+1].  [prefix_len] (default 1) is
    how many last-name characters an [Author_prefix] query keeps; it only
    matters when the mix gives that class weight.  Zero-weight structures
    are never drawn, so mixes that leave the new classes at zero generate
    byte-identical streams to the historical five-class generator.
    @raise Invalid_argument on an empty article array, a popularity law
    whose support exceeds the corpus, or [prefix_len < 1]. *)

val next : t -> event

val events : t -> int -> event list
(** The next [n] events. *)

val paper_popularity : article_count:int -> Stdx.Power_law.t
(** The fitted power law of Fig. 10 over [article_count] ranks. *)

module Article = Bib.Article
module Q = Bib.Bib_query

type structure =
  | Author
  | Title
  | Year
  | Author_title
  | Author_year
  | Author_conf
  | Author_prefix

let all_structures =
  [ Author; Title; Year; Author_title; Author_year; Author_conf; Author_prefix ]

let structure_label = function
  | Author -> "author"
  | Title -> "title"
  | Year -> "year"
  | Author_title -> "author+title"
  | Author_year -> "author+year"
  | Author_conf -> "author+conf"
  | Author_prefix -> "author-prefix"

type mix = {
  p_author : float;
  p_title : float;
  p_year : float;
  p_author_title : float;
  p_author_year : float;
  p_author_conf : float;
  p_author_prefix : float;
}

(* The BibFinder log has no author+conference class of its own; the weight
   exists for the scheme ablations.  Author-prefix (browsing/autocomplete)
   queries are likewise absent from the log and stay at zero except under
   the routed prefix scheme. *)
let bibfinder_mix =
  {
    p_author = 0.60;
    p_title = 0.20;
    p_year = 0.10;
    p_author_title = 0.05;
    p_author_year = 0.05;
    p_author_conf = 0.0;
    p_author_prefix = 0.0;
  }

let uniform_mix =
  {
    p_author = 0.2;
    p_title = 0.2;
    p_year = 0.2;
    p_author_title = 0.2;
    p_author_year = 0.2;
    p_author_conf = 0.0;
    p_author_prefix = 0.0;
  }

(* The browsing workload of the prefix scheme: carve a share out of the
   author-only class (those are the users an autocomplete/browse interface
   serves) and leave every other class untouched. *)
let prefix_mix ?(share = 0.10) base =
  if share < 0.0 || share > base.p_author then
    invalid_arg "Query_gen.prefix_mix: share must be within [0, p_author]";
  {
    base with
    p_author = base.p_author -. share;
    p_author_prefix = base.p_author_prefix +. share;
  }

type event = { target : Article.t; structure : structure; query : Q.t }

type t = {
  articles : Article.t array;
  popularity : Stdx.Power_law.t;
  weights : (structure * float) list;
  prefix_len : int;
  prng : Stdx.Prng.t;
}

let paper_popularity ~article_count = Stdx.Power_law.fitted_cdf ~n:article_count ()

let create ?(mix = bibfinder_mix) ?popularity ?(prefix_len = 1) ~articles ~seed
    () =
  if Array.length articles = 0 then invalid_arg "Query_gen.create: empty corpus";
  if prefix_len < 1 then invalid_arg "Query_gen.create: prefix_len must be >= 1";
  let popularity =
    match popularity with
    | Some p -> p
    | None -> paper_popularity ~article_count:(Array.length articles)
  in
  if Stdx.Power_law.support popularity > Array.length articles then
    invalid_arg "Query_gen.create: popularity support exceeds the corpus";
  let weights =
    (* Structures with zero weight are simply never drawn. *)
    List.filter
      (fun (_, w) -> w > 0.0)
      [
        (Author, mix.p_author);
        (Title, mix.p_title);
        (Year, mix.p_year);
        (Author_title, mix.p_author_title);
        (Author_year, mix.p_author_year);
        (Author_conf, mix.p_author_conf);
        (Author_prefix, mix.p_author_prefix);
      ]
  in
  if weights = [] then invalid_arg "Query_gen.create: all structure weights are zero";
  { articles; popularity; weights; prefix_len; prng = Stdx.Prng.create ~seed }

(* Users search by the primary (first-listed) author, as bibliography
   interfaces display them; this also concentrates repeated queries on the
   same strings, which is what makes the caches effective in the paper. *)
let pick_author _t (article : Article.t) =
  match article.authors with
  | primary :: _ -> primary
  | [] -> assert false (* Article.make rejects empty author lists *)

let author_prefix t (article : Article.t) =
  let last = (pick_author t article).Article.last in
  Q.author_last_prefix
    (String.sub last 0 (Stdlib.min t.prefix_len (String.length last)))

let next t =
  let rank = Stdx.Power_law.sample t.popularity t.prng in
  let target = t.articles.(rank - 1) in
  let structure = Stdx.Prng.choose_weighted t.prng t.weights in
  let query =
    match structure with
    | Author -> Q.author_q (pick_author t target)
    | Title -> Q.title_q target.title
    | Year -> Q.year_q target.year
    | Author_title -> Q.author_title (pick_author t target) target.title
    | Author_year -> Q.author_year (pick_author t target) target.year
    | Author_conf -> Q.author_conf (pick_author t target) target.conf
    | Author_prefix -> author_prefix t target
  in
  { target; structure; query }

let events t n = List.init n (fun _ -> next t)

module Article = Bib.Article
module Q = Bib.Bib_query

type line = {
  target_rank : int;
  structure : Query_gen.structure;
  query_string : string;
}

let line_of_event (event : Query_gen.event) =
  {
    target_rank = event.target.Article.id;
    structure = event.structure;
    query_string = Q.to_string event.query;
  }

let to_line line =
  Printf.sprintf "%d\t%s\t%s" line.target_rank
    (Query_gen.structure_label line.structure)
    line.query_string

let structure_of_label label =
  List.find_opt
    (fun s -> String.equal (Query_gen.structure_label s) label)
    Query_gen.all_structures

let of_line s =
  match String.split_on_char '\t' s with
  | [ rank; label; query_string ] -> (
      match (int_of_string_opt rank, structure_of_label label) with
      | Some target_rank, Some structure when target_rank > 0 ->
          { target_rank; structure; query_string }
      | _, _ -> invalid_arg (Printf.sprintf "Trace.of_line: malformed line %S" s))
  | _ -> invalid_arg (Printf.sprintf "Trace.of_line: malformed line %S" s)

let save out events =
  List.iter
    (fun event -> output_string out (to_line (line_of_event event) ^ "\n"))
    events

let load_lines input =
  let rec loop acc =
    match In_channel.input_line input with
    | None -> List.rev acc
    | Some "" -> loop acc
    | Some raw -> loop (of_line raw :: acc)
  in
  loop []

let rebuild_query (article : Article.t) structure ~query_string =
  let primary =
    match article.authors with
    | x :: _ -> x
    | [] -> assert false (* Article.make rejects empty author lists *)
  in
  match structure with
  | Query_gen.Author -> Q.author_q primary
  | Query_gen.Title -> Q.title_q article.title
  | Query_gen.Year -> Q.year_q article.year
  | Query_gen.Author_title -> Q.author_title primary article.title
  | Query_gen.Author_year -> Q.author_year primary article.year
  | Query_gen.Author_conf -> Q.author_conf primary article.conf
  | Query_gen.Author_prefix -> (
      (* The prefix length is not a trace column; recover the query from
         its canonical rendering instead. *)
      match Q.of_xpath_author_prefix (Xpath.of_string query_string) with
      | Some q -> q
      | None ->
          invalid_arg
            (Printf.sprintf "Trace.rebuild_query: malformed prefix query %S"
               query_string))

let replay ~articles lines =
  List.map
    (fun line ->
      if line.target_rank > Array.length articles then
        invalid_arg
          (Printf.sprintf "Trace.replay: rank %d outside the corpus" line.target_rank);
      let target = articles.(line.target_rank - 1) in
      let query = rebuild_query target line.structure ~query_string:line.query_string in
      if not (String.equal (Q.to_string query) line.query_string) then
        invalid_arg
          (Printf.sprintf "Trace.replay: query mismatch at rank %d (corpus differs?)"
             line.target_rank);
      { Query_gen.target; structure = line.structure; query })
    lines

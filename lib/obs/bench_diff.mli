(** Compare two {!Bench_report}s metric by metric — the engine behind
    [bin/benchdiff.exe] and the CI regression gate.

    Both reports are {!Bench_report.flatten}ed and joined by metric name.
    Each pair gets a relative threshold (from {!default_threshold}, or a
    caller-supplied policy) and a verdict:

    - {e Regression} — the current value is worse than baseline by more
      than the threshold, in the metric's own direction
      ({!Bench_report.Lower_better} metrics regress upward,
      {!Bench_report.Higher_better} downward);
    - {e Improvement} — better than baseline by more than the threshold;
    - {e Within} — inside the threshold band (and always, for
      {!Bench_report.Informational} metrics);
    - {e Missing} — present in the baseline but absent from the current
      report: lost coverage, which {b fails} the gate just as a
      regression does (a gate that can be passed by deleting the metric
      is no gate);
    - {e Added} — new in the current report; never fails.

    The relative delta is computed against [max |baseline| eps], so a
    zero baseline (e.g. an error count of 0) makes any worsening an
    unbounded relative change — deliberately: those metrics regress the
    moment they move at all. *)

type verdict = Regression | Improvement | Within | Missing | Added

type row = {
  name : string;
  baseline : float option;  (** [None] for {!Added} rows. *)
  current : float option;  (** [None] for {!Missing} rows. *)
  delta : float option;
      (** Signed relative change, positive = worse (direction-adjusted);
          [None] when either side is absent or the metric is
          informational. *)
  threshold : float;
  verdict : verdict;
}

type result = {
  rows : row list;  (** Sorted by metric name. *)
  compared : int;  (** Rows present on both sides. *)
  regressions : int;
  improvements : int;
  missing : int;
  added : int;
}

val default_threshold : string -> float
(** Relative threshold by (flattened) metric name:
    allocation-per-run and GC word metrics 0.35, GC collection counts
    0.5, wall-clock metrics 0.25, everything else — the simulation's
    deterministic cost metrics — 0.005. *)

val compare_reports :
  ?threshold_for:(string -> float) ->
  baseline:Bench_report.t ->
  Bench_report.t ->
  (result, string) Stdlib.result
(** [compare_reports ~baseline current] — [Error] when the reports are
    not comparable: different scales (the metrics would differ for
    reasons that are not regressions). *)

val ok : result -> bool
(** No regressions and no missing metrics. *)

val render : ?all:bool -> result -> string
(** A deterministic table of the rows — only the noteworthy ones
    (everything except {!Within}) unless [all] — followed by a one-line
    summary ending in [PASS] or [FAIL]. *)

(** Prometheus text exposition format (version 0.0.4): rendering a metrics
    {!Metrics.snapshot} and parsing the format back.

    The parser accepts what {!render} produces — [# HELP] / [# TYPE]
    comment lines followed by sample lines, histograms as
    [_bucket]/[_sum]/[_count] series — which lets the CLI re-render a
    previously exported snapshot ([p2pindex metrics FILE]) without keeping
    the process alive. *)

val render : Metrics.snapshot -> string

val parse : string -> (Metrics.snapshot, string) result
(** Inverse of {!render} up to float formatting.  Series without a
    [# TYPE] line are read as gauges (untyped samples). *)

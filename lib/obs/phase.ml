type clock = unit -> int64

let null_clock () = 0L

type entry = {
  phase : string;
  calls : int;
  elapsed_ns : int64;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

(* Accumulation cells are mutable so the hot [span] path does one Hashtbl
   lookup and in-place adds — no per-span consing beyond the two
   [Gc.quick_stat] records. *)
type cell = {
  mutable c_calls : int;
  mutable c_elapsed_ns : int64;
  mutable c_minor_words : float;
  mutable c_promoted_words : float;
  mutable c_major_words : float;
  mutable c_minor_collections : int;
  mutable c_major_collections : int;
}

type t = { clock : clock; cells : (string, cell) Hashtbl.t }

let create ?(clock = null_clock) () = { clock; cells = Hashtbl.create 8 }

let cell t phase =
  match Hashtbl.find_opt t.cells phase with
  | Some c -> c
  | None ->
      let c =
        {
          c_calls = 0;
          c_elapsed_ns = 0L;
          c_minor_words = 0.0;
          c_promoted_words = 0.0;
          c_major_words = 0.0;
          c_minor_collections = 0;
          c_major_collections = 0;
        }
      in
      Hashtbl.replace t.cells phase c;
      c

let span t phase f =
  let c = cell t phase in
  let before = Gc.quick_stat () in
  (* [quick_stat]'s minor_words only advances at minor collections, so a
     short span would read as zero allocation; [Gc.minor_words] samples the
     live allocation pointer instead. *)
  let minor_before = Gc.minor_words () in
  let t0 = t.clock () in
  (* The measurement lands even when [f] raises, so a failing run still
     reports where it spent its time. *)
  Fun.protect
    ~finally:(fun () ->
      let t1 = t.clock () in
      let minor_after = Gc.minor_words () in
      let after = Gc.quick_stat () in
      c.c_calls <- c.c_calls + 1;
      c.c_elapsed_ns <- Int64.add c.c_elapsed_ns (Int64.sub t1 t0);
      c.c_minor_words <- c.c_minor_words +. (minor_after -. minor_before);
      c.c_promoted_words <-
        c.c_promoted_words +. (after.promoted_words -. before.promoted_words);
      c.c_major_words <- c.c_major_words +. (after.major_words -. before.major_words);
      c.c_minor_collections <-
        c.c_minor_collections + (after.minor_collections - before.minor_collections);
      c.c_major_collections <-
        c.c_major_collections + (after.major_collections - before.major_collections))
    f

let span_opt t phase f = match t with Some t -> span t phase f | None -> f ()

let entry_of_cell phase (c : cell) =
  {
    phase;
    calls = c.c_calls;
    elapsed_ns = c.c_elapsed_ns;
    minor_words = c.c_minor_words;
    promoted_words = c.c_promoted_words;
    major_words = c.c_major_words;
    minor_collections = c.c_minor_collections;
    major_collections = c.c_major_collections;
  }

let entries t =
  List.map
    (fun (phase, c) -> entry_of_cell phase c)
    (Stdx.Det_tbl.sorted_bindings ~compare:String.compare t.cells)

let find t phase = Option.map (entry_of_cell phase) (Hashtbl.find_opt t.cells phase)

let total_elapsed_ns t =
  List.fold_left (fun acc e -> Int64.add acc e.elapsed_ns) 0L (entries t)

let to_metrics t registry =
  List.iter
    (fun e ->
      let labels = [ ("phase", e.phase) ] in
      let set name help v =
        Metrics.Gauge.set (Metrics.gauge registry ~help ~labels name) v
      in
      set "p2pindex_phase_elapsed_ns" "Clock time spent in the phase, nanoseconds"
        (Int64.to_float e.elapsed_ns);
      set "p2pindex_phase_calls" "Spans accumulated into the phase"
        (float_of_int e.calls);
      set "p2pindex_phase_minor_words" "Minor-heap words allocated in the phase"
        e.minor_words;
      set "p2pindex_phase_promoted_words"
        "Words promoted from the minor to the major heap in the phase"
        e.promoted_words;
      set "p2pindex_phase_major_words"
        "Major-heap words allocated in the phase (promotions included)"
        e.major_words;
      set "p2pindex_phase_minor_collections" "Minor collections during the phase"
        (float_of_int e.minor_collections);
      set "p2pindex_phase_major_collections" "Major collections during the phase"
        (float_of_int e.major_collections))
    (entries t)

let render_table t =
  let rows =
    List.map
      (fun e ->
        [
          e.phase;
          string_of_int e.calls;
          Printf.sprintf "%.3f" (Int64.to_float e.elapsed_ns /. 1e6);
          Printf.sprintf "%.0f" e.minor_words;
          Printf.sprintf "%.0f" e.promoted_words;
          Printf.sprintf "%.0f" e.major_words;
          string_of_int e.minor_collections;
          string_of_int e.major_collections;
        ])
      (entries t)
  in
  Stdx.Tabular.render_table
    ~headers:
      [
        "phase"; "calls"; "elapsed ms"; "minor words"; "promoted"; "major words";
        "minor gcs"; "major gcs";
      ]
    ~rows

type outcome = Msd_reached | Refined | Generalized | Not_found

let outcome_label = function
  | Msd_reached -> "msd-reached"
  | Refined -> "refined"
  | Generalized -> "generalized"
  | Not_found -> "not-found"

let outcome_of_label = function
  | "msd-reached" -> Some Msd_reached
  | "refined" -> Some Refined
  | "generalized" -> Some Generalized
  | "not-found" -> Some Not_found
  | _ -> None

type span = {
  trace_id : int;
  seq : int;
  query : string;
  node : int;
  route_hops : int;
  cache_hit : bool;
  result_count : int;
  request_bytes : int;
  response_bytes : int;
  outcome : outcome;
}

type trace = { id : int; root : string; spans : span list }

(* ------------------------------------------------------------------ *)
(* Collector: a queue of finished traces bounded by [capacity], plus the
   one trace currently being recorded. *)

type open_trace = { ot_id : int; ot_root : string; mutable rev_spans : span list; mutable next_seq : int }

type t = {
  capacity : int option;
  finished : trace Queue.t;
  mutable current : open_trace option;
  mutable next_id : int;
  mutable dropped : int;
  mutable finished_spans : int;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Trace.create: capacity must be positive"
  | Some _ | None -> ());
  {
    capacity;
    finished = Queue.create ();
    current = None;
    next_id = 0;
    dropped = 0;
    finished_spans = 0;
  }

let push_finished t tr =
  Queue.add tr t.finished;
  t.finished_spans <- t.finished_spans + List.length tr.spans;
  match t.capacity with
  | None -> ()
  | Some cap ->
      while Queue.length t.finished > cap do
        let evicted = Queue.pop t.finished in
        t.finished_spans <- t.finished_spans - List.length evicted.spans;
        t.dropped <- t.dropped + 1
      done

let end_trace t =
  match t.current with
  | None -> ()
  | Some ot ->
      t.current <- None;
      push_finished t { id = ot.ot_id; root = ot.ot_root; spans = List.rev ot.rev_spans }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let begin_trace t ~root =
  end_trace t;
  t.current <- Some { ot_id = fresh_id t; ot_root = root; rev_spans = []; next_seq = 0 }

let span t ~query ~node ?(route_hops = 0) ?(cache_hit = false) ?(result_count = 0)
    ?(request_bytes = 0) ?(response_bytes = 0) ~outcome () =
  let mk trace_id seq =
    {
      trace_id;
      seq;
      query;
      node;
      route_hops;
      cache_hit;
      result_count;
      request_bytes;
      response_bytes;
      outcome;
    }
  in
  match t.current with
  | Some ot ->
      ot.rev_spans <- mk ot.ot_id ot.next_seq :: ot.rev_spans;
      ot.next_seq <- ot.next_seq + 1
  | None ->
      (* A lone interaction outside any lookup chain: record it as its own
         single-span trace. *)
      let id = fresh_id t in
      push_finished t { id; root = query; spans = [ mk id 0 ] }

let traces t = List.of_seq (Queue.to_seq t.finished)

let trace_count t = Queue.length t.finished

let span_count t = t.finished_spans

let dropped t = t.dropped

let clear t =
  Queue.clear t.finished;
  t.current <- None;
  t.finished_spans <- 0;
  t.dropped <- 0

(* ------------------------------------------------------------------ *)
(* JSONL. *)

let span_to_json s : Json.t =
  Obj
    [
      ("trace", Int s.trace_id);
      ("seq", Int s.seq);
      ("query", String s.query);
      ("node", Int s.node);
      ("hops", Int s.route_hops);
      ("cache_hit", Bool s.cache_hit);
      ("results", Int s.result_count);
      ("request_bytes", Int s.request_bytes);
      ("response_bytes", Int s.response_bytes);
      ("outcome", String (outcome_label s.outcome));
    ]

let span_of_json j =
  let int_field name =
    match Json.member j name with
    | Some v -> (
        match Json.to_int v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "span field %S is not an integer" name))
    | None -> Error (Printf.sprintf "span is missing field %S" name)
  in
  let ( let* ) = Result.bind in
  let* trace_id = int_field "trace" in
  let* seq = int_field "seq" in
  let* query =
    match Option.bind (Json.member j "query") Json.to_str with
    | Some s -> Ok s
    | None -> Error "span is missing field \"query\""
  in
  let* node = int_field "node" in
  let* route_hops = int_field "hops" in
  let* cache_hit =
    match Option.bind (Json.member j "cache_hit") Json.to_bool with
    | Some b -> Ok b
    | None -> Error "span is missing field \"cache_hit\""
  in
  let* result_count = int_field "results" in
  let* request_bytes = int_field "request_bytes" in
  let* response_bytes = int_field "response_bytes" in
  let* outcome =
    match Option.bind (Json.member j "outcome") Json.to_str with
    | Some s -> (
        match outcome_of_label s with
        | Some o -> Ok o
        | None -> Error (Printf.sprintf "unknown span outcome %S" s))
    | None -> Error "span is missing field \"outcome\""
  in
  Ok
    {
      trace_id;
      seq;
      query;
      node;
      route_hops;
      cache_hit;
      result_count;
      request_bytes;
      response_bytes;
      outcome;
    }

let output_jsonl t oc =
  Queue.iter
    (fun tr ->
      List.iter
        (fun s ->
          output_string oc (Json.to_string (span_to_json s));
          output_char oc '\n')
        tr.spans)
    t.finished

let to_jsonl t =
  let buf = Buffer.create 4096 in
  Queue.iter
    (fun tr ->
      List.iter
        (fun s ->
          Buffer.add_string buf (Json.to_string (span_to_json s));
          Buffer.add_char buf '\n')
        tr.spans)
    t.finished;
  Buffer.contents buf

let spans_of_jsonl content =
  let lines = String.split_on_char '\n' content in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line = String.trim line in
        if line = "" then go acc (lineno + 1) rest
        else (
          match Json.of_string line with
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
          | Ok j -> (
              match span_of_json j with
              | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
              | Ok s -> go (s :: acc) (lineno + 1) rest))
  in
  go [] 1 lines

let traces_of_spans spans =
  let order = ref [] in
  let by_id = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match Hashtbl.find_opt by_id s.trace_id with
      | Some spans -> Hashtbl.replace by_id s.trace_id (s :: spans)
      | None ->
          order := s.trace_id :: !order;
          Hashtbl.add by_id s.trace_id [ s ])
    spans;
  List.rev_map
    (fun id ->
      let spans =
        List.sort (fun a b -> compare a.seq b.seq) (Hashtbl.find by_id id)
      in
      let root = match spans with s :: _ -> s.query | [] -> "" in
      { id; root; spans })
    !order

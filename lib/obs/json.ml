type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing. *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  (* Shortest representation that round-trips; integral floats keep a
     trailing ".0" marker via %.17g only when needed. *)
  let s = Printf.sprintf "%.15g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_to_string f)
      else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, value) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf name;
          Buffer.add_char buf ':';
          write buf value)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over a cursor. *)

exception Parse_error of int * string

let fail pos msg = raise (Parse_error (pos, msg))

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        go ()
    | Some _ | None -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c.pos (Printf.sprintf "expected %C, found %C" ch x)
  | None -> fail c.pos (Printf.sprintf "expected %C, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c.pos (Printf.sprintf "invalid literal (expected %s)" word)

let utf8_of_code buf code =
  (* Encode one Unicode scalar value. *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_hex4 c =
  let value = ref 0 in
  for _ = 1 to 4 do
    (match peek c with
    | Some ch ->
        let digit =
          match ch with
          | '0' .. '9' -> Char.code ch - Char.code '0'
          | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
          | _ -> fail c.pos "invalid \\u escape"
        in
        value := (!value * 16) + digit
    | None -> fail c.pos "truncated \\u escape");
    advance c
  done;
  !value

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' ->
        advance c;
        Buffer.contents buf
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> Buffer.add_char buf '"'; advance c; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance c; go ()
        | Some '/' -> Buffer.add_char buf '/'; advance c; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance c; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance c; go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance c; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance c; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance c; go ()
        | Some 'u' ->
            advance c;
            utf8_of_code buf (parse_hex4 c);
            go ()
        | Some x -> fail c.pos (Printf.sprintf "invalid escape \\%C" x)
        | None -> fail c.pos "truncated escape")
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_number_char ch ->
        advance c;
        go ()
    | Some _ | None -> ()
  in
  go ();
  let token = String.sub c.text start (c.pos - start) in
  let is_integral = not (String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') token) in
  if is_integral then
    match int_of_string_opt token with
    | Some n -> Int n
    | None -> fail start "invalid number"
  else
    match float_of_string_opt token with
    | Some f -> Float f
    | None -> fail start "invalid number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws c;
          let name = parse_string c in
          skip_ws c;
          expect c ':';
          let value = parse_value c in
          fields := (name, value) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields_loop ()
          | Some '}' -> advance c
          | Some x -> fail c.pos (Printf.sprintf "expected ',' or '}', found %C" x)
          | None -> fail c.pos "unterminated object"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let value = parse_value c in
          items := value :: !items;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items_loop ()
          | Some ']' -> advance c
          | Some x -> fail c.pos (Printf.sprintf "expected ',' or ']', found %C" x)
          | None -> fail c.pos "unterminated array"
        in
        items_loop ();
        List (List.rev !items)
      end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some x -> fail c.pos (Printf.sprintf "unexpected character %C" x)

let of_string s =
  let c = { text = s; pos = 0 } in
  match parse_value c with
  | value ->
      skip_ws c;
      if c.pos < String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
      else Ok value
  | exception Parse_error (pos, msg) -> Error (Printf.sprintf "%s at offset %d" msg pos)

(* ------------------------------------------------------------------ *)
(* Accessors. *)

let member v name =
  match v with Obj fields -> List.assoc_opt name fields | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Int n -> Some (float_of_int n) | Float f -> Some f | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_list = function List items -> Some items | _ -> None

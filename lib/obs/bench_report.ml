let schema = "p2pindex.bench_report"
let version = 1

type direction = Lower_better | Higher_better | Informational

type metric = { name : string; value : float; better : direction }

let metric name better value = { name; value; better }

type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

let gc_delta ~(before : Gc.stat) ~(after : Gc.stat) =
  {
    minor_words = after.minor_words -. before.minor_words;
    promoted_words = after.promoted_words -. before.promoted_words;
    major_words = after.major_words -. before.major_words;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
  }

type micro = {
  micro_name : string;
  runs : int;
  time_ns_per_run : float option;
  minor_words_per_run : float;
  promoted_words_per_run : float;
  major_words_per_run : float;
}

type experiment = {
  exp_id : string;
  wall_ns : int64 option;
  gc : gc_delta;
  exp_metrics : metric list;
}

type scale = {
  node_count : int;
  article_count : int;
  query_count : int;
  seed : int64;
}

type t = {
  label : string;
  timed : bool;
  scale : scale;
  micro : micro list;
  experiments : experiment list;
}

let label_of_path path =
  let base = Filename.basename path in
  let base = Filename.remove_extension base in
  if String.starts_with ~prefix:"BENCH_" base then
    String.sub base 6 (String.length base - 6)
  else base

(* ------------------------------------------------------------------ *)
(* Serialization.  Field order is fixed — it is part of the canonical
   byte form the determinism guarantee covers. *)

let direction_label = function
  | Lower_better -> "lower"
  | Higher_better -> "higher"
  | Informational -> "info"

let direction_of_label = function
  | "lower" -> Ok Lower_better
  | "higher" -> Ok Higher_better
  | "info" -> Ok Informational
  | s -> Error (Printf.sprintf "unknown metric direction %S" s)

let opt_float = function Some f -> Json.Float f | None -> Json.Null

let metric_to_json m =
  Json.Obj
    [
      ("name", Json.String m.name);
      ("value", Json.Float m.value);
      ("better", Json.String (direction_label m.better));
    ]

let gc_to_json g =
  Json.Obj
    [
      ("minor_words", Json.Float g.minor_words);
      ("promoted_words", Json.Float g.promoted_words);
      ("major_words", Json.Float g.major_words);
      ("minor_collections", Json.Int g.minor_collections);
      ("major_collections", Json.Int g.major_collections);
    ]

let micro_to_json m =
  Json.Obj
    [
      ("name", Json.String m.micro_name);
      ("runs", Json.Int m.runs);
      ("time_ns_per_run", opt_float m.time_ns_per_run);
      ("minor_words_per_run", Json.Float m.minor_words_per_run);
      ("promoted_words_per_run", Json.Float m.promoted_words_per_run);
      ("major_words_per_run", Json.Float m.major_words_per_run);
    ]

let experiment_to_json e =
  Json.Obj
    [
      ("id", Json.String e.exp_id);
      ( "wall_ns",
        match e.wall_ns with
        | Some ns -> Json.String (Int64.to_string ns)
        | None -> Json.Null );
      ("gc", gc_to_json e.gc);
      ("metrics", Json.List (List.map metric_to_json e.exp_metrics));
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("version", Json.Int version);
      ("label", Json.String t.label);
      ("timed", Json.Bool t.timed);
      ( "scale",
        Json.Obj
          [
            ("node_count", Json.Int t.scale.node_count);
            ("article_count", Json.Int t.scale.article_count);
            ("query_count", Json.Int t.scale.query_count);
            ("seed", Json.String (Int64.to_string t.scale.seed));
          ] );
      ("micro", Json.List (List.map micro_to_json t.micro));
      ("experiments", Json.List (List.map experiment_to_json t.experiments));
    ]

let to_string t = Json.to_string (to_json t) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Parsing. *)

let ( let* ) r f = Result.bind r f

let field ~what json name =
  match Json.member json name with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" what name)

let str_field ~what json name =
  let* v = field ~what json name in
  match Json.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "%s: field %S is not a string" what name)

let int_field ~what json name =
  let* v = field ~what json name in
  match Json.to_int v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s: field %S is not an integer" what name)

let float_field ~what json name =
  let* v = field ~what json name in
  match Json.to_float v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: field %S is not a number" what name)

let bool_field ~what json name =
  let* v = field ~what json name in
  match Json.to_bool v with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "%s: field %S is not a boolean" what name)

let opt_float_field ~what json name =
  let* v = field ~what json name in
  match v with
  | Json.Null -> Ok None
  | v -> (
      match Json.to_float v with
      | Some f -> Ok (Some f)
      | None -> Error (Printf.sprintf "%s: field %S is not a number or null" what name))

let int64_str_field ~what json name =
  let* s = str_field ~what json name in
  match Int64.of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s: field %S is not an int64 string" what name)

let list_field ~what json name =
  let* v = field ~what json name in
  match Json.to_list v with
  | Some items -> Ok items
  | None -> Error (Printf.sprintf "%s: field %S is not an array" what name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let metric_of_json json =
  let what = "metric" in
  let* name = str_field ~what json "name" in
  let* value = float_field ~what json "value" in
  let* better_label = str_field ~what json "better" in
  let* better = direction_of_label better_label in
  Ok { name; value; better }

let gc_of_json json =
  let what = "gc" in
  let* minor_words = float_field ~what json "minor_words" in
  let* promoted_words = float_field ~what json "promoted_words" in
  let* major_words = float_field ~what json "major_words" in
  let* minor_collections = int_field ~what json "minor_collections" in
  let* major_collections = int_field ~what json "major_collections" in
  Ok { minor_words; promoted_words; major_words; minor_collections; major_collections }

let micro_of_json json =
  let what = "micro" in
  let* micro_name = str_field ~what json "name" in
  let* runs = int_field ~what json "runs" in
  let* time_ns_per_run = opt_float_field ~what json "time_ns_per_run" in
  let* minor_words_per_run = float_field ~what json "minor_words_per_run" in
  let* promoted_words_per_run = float_field ~what json "promoted_words_per_run" in
  let* major_words_per_run = float_field ~what json "major_words_per_run" in
  Ok
    {
      micro_name;
      runs;
      time_ns_per_run;
      minor_words_per_run;
      promoted_words_per_run;
      major_words_per_run;
    }

let experiment_of_json json =
  let what = "experiment" in
  let* exp_id = str_field ~what json "id" in
  let* wall_ns =
    let* v = field ~what json "wall_ns" in
    match v with
    | Json.Null -> Ok None
    | _ ->
        let* ns = int64_str_field ~what json "wall_ns" in
        Ok (Some ns)
  in
  let* gc_json = field ~what json "gc" in
  let* gc = gc_of_json gc_json in
  let* metric_items = list_field ~what json "metrics" in
  let* exp_metrics = map_result metric_of_json metric_items in
  Ok { exp_id; wall_ns; gc; exp_metrics }

let of_json json =
  let what = "bench report" in
  let* schema_name = str_field ~what json "schema" in
  if not (String.equal schema_name schema) then
    Error (Printf.sprintf "not a bench report (schema %S, expected %S)" schema_name schema)
  else
    let* v = int_field ~what json "version" in
    if v <> version then
      Error
        (Printf.sprintf "unsupported bench report version %d (this build reads %d)" v
           version)
    else
      let* label = str_field ~what json "label" in
      let* timed = bool_field ~what json "timed" in
      let* scale_json = field ~what json "scale" in
      let what = "scale" in
      let* node_count = int_field ~what scale_json "node_count" in
      let* article_count = int_field ~what scale_json "article_count" in
      let* query_count = int_field ~what scale_json "query_count" in
      let* seed = int64_str_field ~what scale_json "seed" in
      let what = "bench report" in
      let* micro_items = list_field ~what json "micro" in
      let* micro = map_result micro_of_json micro_items in
      let* experiment_items = list_field ~what json "experiments" in
      let* experiments = map_result experiment_of_json experiment_items in
      Ok
        {
          label;
          timed;
          scale = { node_count; article_count; query_count; seed };
          micro;
          experiments;
        }

let of_string s =
  let* json = Json.of_string s in
  of_json json

let write ~path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let read ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      of_string text

(* ------------------------------------------------------------------ *)
(* The flat view the diff tool compares. *)

let flatten t =
  let micro_metrics m =
    let base = "micro/" ^ m.micro_name ^ "/" in
    let time =
      match m.time_ns_per_run with
      | Some ns -> [ metric (base ^ "time_ns_per_run") Lower_better ns ]
      | None -> []
    in
    time
    @ [
        metric (base ^ "minor_words_per_run") Lower_better m.minor_words_per_run;
        metric (base ^ "promoted_words_per_run") Lower_better m.promoted_words_per_run;
        metric (base ^ "major_words_per_run") Lower_better m.major_words_per_run;
      ]
  in
  let experiment_metrics e =
    let base = "exp/" ^ e.exp_id ^ "/" in
    let wall =
      match e.wall_ns with
      | Some ns -> [ metric (base ^ "wall_ns") Lower_better (Int64.to_float ns) ]
      | None -> []
    in
    wall
    @ [
        metric (base ^ "gc/minor_words") Lower_better e.gc.minor_words;
        metric (base ^ "gc/promoted_words") Lower_better e.gc.promoted_words;
        metric (base ^ "gc/major_words") Lower_better e.gc.major_words;
        metric (base ^ "gc/minor_collections") Lower_better
          (float_of_int e.gc.minor_collections);
        metric (base ^ "gc/major_collections") Lower_better
          (float_of_int e.gc.major_collections);
      ]
    @ List.map (fun m -> { m with name = base ^ m.name }) e.exp_metrics
  in
  let all =
    List.concat_map micro_metrics t.micro
    @ List.concat_map experiment_metrics t.experiments
  in
  List.sort (fun a b -> String.compare a.name b.name) all

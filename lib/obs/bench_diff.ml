type verdict = Regression | Improvement | Within | Missing | Added

type row = {
  name : string;
  baseline : float option;
  current : float option;
  delta : float option;
  threshold : float;
  verdict : verdict;
}

type result = {
  rows : row list;
  compared : int;
  regressions : int;
  improvements : int;
  missing : int;
  added : int;
}

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  m = 0 || go 0

(* Allocation accounting is deterministic for one binary but moves with
   compiler versions and stdlib changes, so it gets room; collection
   counts additionally wobble with heap-state phase, so they get more.
   The simulation's cost metrics are pure functions of the seed and must
   not move at all — the tight band is only float-formatting slack. *)
let default_threshold name =
  if contains name "/gc/minor_collections" || contains name "/gc/major_collections"
  then 0.5
  else if contains name "/gc/" || contains name "_words_per_run" then 0.35
  else if contains name "wall_ns" || contains name "time_ns" then 0.25
  else 0.005

(* Relative change against a floor so a zero baseline still regresses the
   moment the metric moves. *)
let eps = 1e-9

let relative ~baseline ~current = (current -. baseline) /. Float.max (Float.abs baseline) eps

let compare_reports ?(threshold_for = default_threshold) ~(baseline : Bench_report.t)
    (current : Bench_report.t) =
  if
    baseline.scale.node_count <> current.scale.node_count
    || baseline.scale.article_count <> current.scale.article_count
    || baseline.scale.query_count <> current.scale.query_count
    || not (Int64.equal baseline.scale.seed current.scale.seed)
  then
    Error
      (Printf.sprintf
         "scale mismatch: baseline %d/%d/%d seed %Ld vs current %d/%d/%d seed %Ld — \
          reports are only comparable at the same scale"
         baseline.scale.node_count baseline.scale.article_count
         baseline.scale.query_count baseline.scale.seed current.scale.node_count
         current.scale.article_count current.scale.query_count current.scale.seed)
  else begin
    let base_metrics = Bench_report.flatten baseline in
    let cur_metrics = Bench_report.flatten current in
    let cur_tbl = Hashtbl.create 256 in
    List.iter
      (fun (m : Bench_report.metric) -> Hashtbl.replace cur_tbl m.name m)
      cur_metrics;
    let base_names = Hashtbl.create 256 in
    List.iter
      (fun (m : Bench_report.metric) -> Hashtbl.replace base_names m.name ())
      base_metrics;
    let paired =
      List.map
        (fun (b : Bench_report.metric) ->
          let threshold = threshold_for b.name in
          match Hashtbl.find_opt cur_tbl b.name with
          | None ->
              {
                name = b.name;
                baseline = Some b.value;
                current = None;
                delta = None;
                threshold;
                verdict = Missing;
              }
          | Some c ->
              let verdict, delta =
                match b.better with
                | Bench_report.Informational -> (Within, None)
                | Bench_report.Lower_better | Bench_report.Higher_better ->
                    let change = relative ~baseline:b.value ~current:c.value in
                    (* Direction-adjust: positive = worse. *)
                    let worse =
                      match b.better with
                      | Bench_report.Higher_better -> -.change
                      | Bench_report.Lower_better | Bench_report.Informational ->
                          change
                    in
                    let verdict =
                      if worse > threshold then Regression
                      else if worse < -.threshold then Improvement
                      else Within
                    in
                    (verdict, Some worse)
              in
              {
                name = b.name;
                baseline = Some b.value;
                current = Some c.value;
                delta;
                threshold;
                verdict;
              })
        base_metrics
    in
    let added =
      List.filter_map
        (fun (c : Bench_report.metric) ->
          if Hashtbl.mem base_names c.name then None
          else
            Some
              {
                name = c.name;
                baseline = None;
                current = Some c.value;
                delta = None;
                threshold = threshold_for c.name;
                verdict = Added;
              })
        cur_metrics
    in
    let rows =
      List.sort (fun a b -> String.compare a.name b.name) (paired @ added)
    in
    let count v = List.length (List.filter (fun r -> r.verdict = v) rows) in
    Ok
      {
        rows;
        compared = List.length (List.filter (fun r -> r.delta <> None) rows);
        regressions = count Regression;
        improvements = count Improvement;
        missing = count Missing;
        added = count Added;
      }
  end

let ok r = r.regressions = 0 && r.missing = 0

let verdict_label = function
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | Within -> "within"
  | Missing -> "MISSING"
  | Added -> "added"

let fmt_value = function
  | None -> "-"
  | Some v ->
      if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
      else Printf.sprintf "%.6g" v

let render ?(all = false) r =
  let shown = if all then r.rows else List.filter (fun row -> row.verdict <> Within) r.rows in
  let table =
    if shown = [] then ""
    else
      Stdx.Tabular.render_table
        ~headers:[ "metric"; "baseline"; "current"; "delta"; "threshold"; "verdict" ]
        ~rows:
          (List.map
             (fun row ->
               [
                 row.name;
                 fmt_value row.baseline;
                 fmt_value row.current;
                 (match row.delta with
                 | None -> "-"
                 | Some d -> Printf.sprintf "%+.2f%%" (d *. 100.0));
                 Printf.sprintf "%.1f%%" (row.threshold *. 100.0);
                 verdict_label row.verdict;
               ])
             shown)
  in
  let summary =
    Printf.sprintf
      "benchdiff: %d compared, %d regressions, %d improvements, %d missing, %d added — %s\n"
      r.compared r.regressions r.improvements r.missing r.added
      (if ok r then "PASS" else "FAIL")
  in
  table ^ summary

let json_of_labels labels : Json.t =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let json_of_series (s : Metrics.series) : Json.t =
  let base = [ ("labels", json_of_labels s.labels) ] in
  let value_fields =
    match s.value with
    | Metrics.Counter_value n -> [ ("value", Json.Int n) ]
    | Metrics.Gauge_value v -> [ ("value", Json.Float v) ]
    | Metrics.Histogram_value h ->
        [
          ("count", Json.Int h.count);
          ("sum", Json.Float h.sum);
          ( "buckets",
            Json.List
              (List.map
                 (fun (bound, cum) ->
                   let le =
                     if Float.is_finite bound then Json.Float bound
                     else Json.String "+Inf"
                   in
                   Json.Obj [ ("le", le); ("count", Json.Int cum) ])
                 h.buckets) );
        ]
  in
  Json.Obj (base @ value_fields)

let snapshot_to_json (snap : Metrics.snapshot) : Json.t =
  Json.Obj
    [
      ( "families",
        Json.List
          (List.map
             (fun (f : Metrics.family) ->
               Json.Obj
                 [
                   ("name", Json.String f.name);
                   ("kind", Json.String (Metrics.kind_label f.kind));
                   ("help", Json.String f.help);
                   ("series", Json.List (List.map json_of_series f.series));
                 ])
             snap) );
    ]

(* ------------------------------------------------------------------ *)

let labels_cell labels =
  if labels = [] then "-"
  else String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let number_cell v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

let render_table (snap : Metrics.snapshot) =
  let rows =
    List.concat_map
      (fun (f : Metrics.family) ->
        List.map
          (fun (s : Metrics.series) ->
            let value =
              match s.value with
              | Metrics.Counter_value n -> string_of_int n
              | Metrics.Gauge_value v -> number_cell v
              | Metrics.Histogram_value h ->
                  if h.count = 0 then "n=0"
                  else
                    Printf.sprintf "n=%d sum=%s p50=%s p90=%s p99=%s" h.count
                      (number_cell h.sum)
                      (number_cell (Metrics.snapshot_quantile h 0.50))
                      (number_cell (Metrics.snapshot_quantile h 0.90))
                      (number_cell (Metrics.snapshot_quantile h 0.99))
            in
            [ f.name; Metrics.kind_label f.kind; labels_cell s.labels; value ])
          f.series)
      snap
  in
  Stdx.Tabular.render_table ~headers:[ "metric"; "kind"; "labels"; "value" ] ~rows

(* ------------------------------------------------------------------ *)

let has_suffix s suffix =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

let write_metrics ~path snap =
  Out_channel.with_open_text path (fun oc ->
      if has_suffix path ".json" then
        output_string oc (Json.to_string (snapshot_to_json snap) ^ "\n")
      else output_string oc (Prometheus.render snap))

let read_metrics ~path =
  if has_suffix path ".json" then
    Error "JSON snapshots are write-only; point this at a Prometheus text file"
  else
    match In_channel.with_open_text path In_channel.input_all with
    | content -> Prometheus.parse content
    | exception Sys_error e -> Error e

let write_trace_jsonl ~path collector =
  Out_channel.with_open_text path (fun oc -> Trace.output_jsonl collector oc)

(** A minimal JSON value with a printer and a parser.

    The telemetry subsystem exports traces as JSONL and metric snapshots as
    JSON documents; it must also read its own output back (the [metrics]
    CLI subcommand, the trace round-trip tests).  Rather than pulling in a
    JSON dependency, this module implements the small subset we need:
    finite numbers, strings with standard escapes, arrays and objects.

    Non-finite floats print as [null] (JSON has no representation for
    them); parsing accepts any RFC 8259 document whose numbers fit OCaml's
    [int]/[float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val of_string : string -> (t, string) result
(** Parse one JSON document; the error string carries a character offset. *)

(** {1 Accessors} — shallow, option-returning. *)

val member : t -> string -> t option
(** Field of an [Obj]; [None] on missing fields and non-objects. *)

val to_int : t -> int option
(** [Int n] and integral [Float]s. *)

val to_float : t -> float option
val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option

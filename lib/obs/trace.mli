(** Lookup tracing: one {!span} per user–system interaction, grouped into
    one {!trace} per lookup chain.

    The index layer emits a span for every {!P2pindex.Index.S.lookup_step}:
    the query string, the responsible node, the substrate route hops (when
    measured), whether a cache shortcut answered, the result-set size, the
    request/response bytes under the wire model, and the interaction's
    {!outcome}.  A collector keeps finished traces in a ring buffer
    (bounded collectors drop the oldest trace) and exports them as JSONL —
    one span object per line — which this module can also read back. *)

type outcome =
  | Msd_reached  (** The step returned a file: a most specific descriptor. *)
  | Refined  (** The step returned more specific queries to descend into. *)
  | Generalized
      (** The step probed a generalization of a non-indexed query and found
          an indexed entry (Section IV-B recovery). *)
  | Not_found  (** The step hit a key with no entry anywhere. *)

val outcome_label : outcome -> string
val outcome_of_label : string -> outcome option

type span = {
  trace_id : int;
  seq : int;  (** Position within the trace, starting at 0. *)
  query : string;
  node : int;  (** Responsible node contacted. *)
  route_hops : int;  (** Substrate hops; 0 when not measured. *)
  cache_hit : bool;
  result_count : int;
  request_bytes : int;
  response_bytes : int;
  outcome : outcome;
}

type trace = { id : int; root : string; spans : span list  (** In seq order. *) }

(** {1 Collector} *)

type t

val create : ?capacity:int -> unit -> t
(** A collector retaining at most [capacity] finished traces (dropping the
    oldest); unbounded when omitted.  @raise Invalid_argument when
    [capacity <= 0]. *)

val begin_trace : t -> root:string -> unit
(** Open a new trace; any trace still open is finished first. *)

val end_trace : t -> unit
(** Finish the open trace (no-op when none is open). *)

val span :
  t ->
  query:string ->
  node:int ->
  ?route_hops:int ->
  ?cache_hit:bool ->
  ?result_count:int ->
  ?request_bytes:int ->
  ?response_bytes:int ->
  outcome:outcome ->
  unit ->
  unit
(** Append a span to the open trace; with no open trace, the span becomes
    a finished single-span trace of its own. *)

val traces : t -> trace list
(** Finished traces, oldest first (the open trace is not included). *)

val trace_count : t -> int
val span_count : t -> int
(** Spans across finished traces. *)

val dropped : t -> int
(** Traces evicted by the ring buffer so far. *)

val clear : t -> unit

(** {1 JSONL export / import} *)

val span_to_json : span -> Json.t
val span_of_json : Json.t -> (span, string) result

val to_jsonl : t -> string
(** Every span of every finished trace, one JSON object per line. *)

val output_jsonl : t -> out_channel -> unit

val spans_of_jsonl : string -> (span list, string) result
(** Parse JSONL content (blank lines are skipped); fails on the first
    malformed line. *)

val traces_of_spans : span list -> trace list
(** Regroup spans by trace id (order of first appearance); each trace's
    spans are sorted by [seq] and its root is its first span's query. *)

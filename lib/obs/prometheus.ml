(* ------------------------------------------------------------------ *)
(* Rendering. *)

let compact_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* Avoid "1." noise: counters-as-floats and integral sums print bare. *)
    Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let bound_string b = if Float.is_finite b then compact_float b else "+Inf"

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let labels_string labels =
  match labels with
  | [] -> ""
  | _ ->
      let pairs =
        List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels
      in
      "{" ^ String.concat "," pairs ^ "}"

let render (snap : Metrics.snapshot) =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (f : Metrics.family) ->
      if f.help <> "" then line "# HELP %s %s" f.name (escape_help f.help);
      line "# TYPE %s %s" f.name (Metrics.kind_label f.kind);
      List.iter
        (fun (s : Metrics.series) ->
          match s.value with
          | Metrics.Counter_value n -> line "%s%s %d" f.name (labels_string s.labels) n
          | Metrics.Gauge_value v -> line "%s%s %s" f.name (labels_string s.labels) (compact_float v)
          | Metrics.Histogram_value h ->
              List.iter
                (fun (bound, cum) ->
                  let labels = s.labels @ [ ("le", bound_string bound) ] in
                  line "%s_bucket%s %d" f.name (labels_string labels) cum)
                h.buckets;
              line "%s_sum%s %s" f.name (labels_string s.labels) (compact_float h.sum);
              line "%s_count%s %d" f.name (labels_string s.labels) h.count)
        f.series)
    snap;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing. *)

exception Bad of string

let parse_float_token token =
  let token = String.lowercase_ascii token in
  match float_of_string_opt token with
  | Some f -> f
  | None -> raise (Bad (Printf.sprintf "invalid numeric value %S" token))

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '\\' && i + 1 < n then begin
        (match s.[i + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | '\\' -> Buffer.add_char buf '\\'
        | '"' -> Buffer.add_char buf '"'
        | c ->
            Buffer.add_char buf '\\';
            Buffer.add_char buf c);
        go (i + 2)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
  | _ -> false

(* One sample line: name, optional {labels}, value. *)
let parse_sample line =
  let n = String.length line in
  let rec name_end i = if i < n && is_name_char line.[i] then name_end (i + 1) else i in
  let ne = name_end 0 in
  if ne = 0 then raise (Bad (Printf.sprintf "malformed sample line %S" line));
  let name = String.sub line 0 ne in
  let labels = ref [] in
  let i = ref ne in
  if !i < n && line.[!i] = '{' then begin
    incr i;
    let rec parse_pairs () =
      (* label name *)
      let start = !i in
      while !i < n && is_name_char line.[!i] do incr i done;
      let lname = String.sub line start (!i - start) in
      if !i >= n || line.[!i] <> '=' then raise (Bad "expected '=' in label");
      incr i;
      if !i >= n || line.[!i] <> '"' then raise (Bad "expected '\"' in label");
      incr i;
      let buf = Buffer.create 16 in
      let rec value_loop () =
        if !i >= n then raise (Bad "unterminated label value")
        else if line.[!i] = '\\' && !i + 1 < n then begin
          (match line.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | c ->
              Buffer.add_char buf '\\';
              Buffer.add_char buf c);
          i := !i + 2;
          value_loop ()
        end
        else if line.[!i] = '"' then incr i
        else begin
          Buffer.add_char buf line.[!i];
          incr i;
          value_loop ()
        end
      in
      value_loop ();
      labels := (lname, Buffer.contents buf) :: !labels;
      if !i < n && line.[!i] = ',' then begin
        incr i;
        parse_pairs ()
      end
      else if !i < n && line.[!i] = '}' then incr i
      else raise (Bad "expected ',' or '}' in labels")
    in
    if !i < n && line.[!i] = '}' then incr i else parse_pairs ()
  end;
  let rest = String.trim (String.sub line !i (n - !i)) in
  (* Ignore a trailing timestamp if one is present. *)
  let value_token =
    match String.index_opt rest ' ' with
    | Some sp -> String.sub rest 0 sp
    | None -> rest
  in
  if value_token = "" then raise (Bad (Printf.sprintf "sample %S has no value" line));
  (name, List.rev !labels, parse_float_token value_token)

type hist_acc = {
  mutable buckets : (float * int) list;  (* reverse order of appearance *)
  mutable hsum : float;
  mutable hcount : int;
}

type fam_acc = {
  mutable help : string;
  mutable kind : Metrics.kind option;
  (* Simple series and histogram accumulators keyed by the label set. *)
  mutable simple : (Metrics.labels * float) list;
  mutable hists : (Metrics.labels * hist_acc) list;
}

let parse text =
  let families : (string, fam_acc) Hashtbl.t = Hashtbl.create 16 in
  let fam name =
    match Hashtbl.find_opt families name with
    | Some f -> f
    | None ->
        let f = { help = ""; kind = None; simple = []; hists = [] } in
        Hashtbl.add families name f;
        f
  in
  let sorted_labels ls = List.sort (fun (a, _) (b, _) -> String.compare a b) ls in
  let hist_for f labels =
    match List.assoc_opt labels f.hists with
    | Some h -> h
    | None ->
        let h = { buckets = []; hsum = 0.0; hcount = 0 } in
        f.hists <- (labels, h) :: f.hists;
        h
  in
  let strip_suffix name suffix =
    let n = String.length name and s = String.length suffix in
    if n > s && String.sub name (n - s) s = suffix then Some (String.sub name 0 (n - s))
    else None
  in
  let histogram_base name =
    (* The base family of a histogram component sample, if that is what
       this sample is. *)
    let check suffix =
      match strip_suffix name suffix with
      | Some base -> (
          match Hashtbl.find_opt families base with
          | Some f when f.kind = Some Metrics.Histogram_kind -> Some base
          | Some _ | None -> None)
      | None -> None
    in
    match check "_bucket" with
    | Some base -> Some (`Bucket, base)
    | None -> (
        match check "_sum" with
        | Some base -> Some (`Sum, base)
        | None -> (
            match check "_count" with
            | Some base -> Some (`Count, base)
            | None -> None))
  in
  let handle_line line =
    let line = String.trim line in
    if line = "" then ()
    else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
      let rest = String.sub line 7 (String.length line - 7) in
      match String.index_opt rest ' ' with
      | Some sp ->
          let name = String.sub rest 0 sp in
          (fam name).help <-
            unescape (String.sub rest (sp + 1) (String.length rest - sp - 1))
      | None -> (fam rest).help <- ""
    end
    else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
      let rest = String.sub line 7 (String.length line - 7) in
      match String.index_opt rest ' ' with
      | Some sp -> (
          let name = String.sub rest 0 sp in
          let kind_token =
            String.trim (String.sub rest (sp + 1) (String.length rest - sp - 1))
          in
          match kind_token with
          | "counter" -> (fam name).kind <- Some Metrics.Counter_kind
          | "gauge" -> (fam name).kind <- Some Metrics.Gauge_kind
          | "histogram" -> (fam name).kind <- Some Metrics.Histogram_kind
          | other -> raise (Bad (Printf.sprintf "unknown metric type %S" other)))
      | None -> raise (Bad (Printf.sprintf "malformed TYPE line %S" line))
    end
    else if line.[0] = '#' then ()
    else begin
      let name, labels, value = parse_sample line in
      match histogram_base name with
      | Some (`Bucket, base) ->
          let le, rest =
            match List.partition (fun (k, _) -> String.equal k "le") labels with
            | [ (_, le) ], rest -> (le, rest)
            | _ -> raise (Bad (Printf.sprintf "bucket sample %S without le label" line))
          in
          let bound =
            if String.equal (String.lowercase_ascii le) "+inf" then infinity
            else parse_float_token le
          in
          let h = hist_for (fam base) (sorted_labels rest) in
          h.buckets <- (bound, int_of_float value) :: h.buckets
      | Some (`Sum, base) ->
          (hist_for (fam base) (sorted_labels labels)).hsum <- value
      | Some (`Count, base) ->
          (hist_for (fam base) (sorted_labels labels)).hcount <- int_of_float value
      | None ->
          let f = fam name in
          f.simple <- (sorted_labels labels, value) :: f.simple
    end
  in
  match String.split_on_char '\n' text |> List.iter handle_line with
  | () ->
      let snap =
        Stdx.Det_tbl.fold_sorted ~compare:String.compare
          (fun name (f : fam_acc) acc ->
            let kind = Option.value f.kind ~default:Metrics.Gauge_kind in
            let series =
              match kind with
              | Metrics.Histogram_kind ->
                  List.rev_map
                    (fun (labels, h) ->
                      let buckets =
                        List.sort (fun (a, _) (b, _) -> compare a b) h.buckets
                      in
                      {
                        Metrics.labels;
                        value =
                          Metrics.Histogram_value
                            { buckets; sum = h.hsum; count = h.hcount };
                      })
                    f.hists
              | Metrics.Counter_kind ->
                  List.rev_map
                    (fun (labels, v) ->
                      { Metrics.labels; value = Metrics.Counter_value (int_of_float v) })
                    f.simple
              | Metrics.Gauge_kind ->
                  List.rev_map
                    (fun (labels, v) -> { Metrics.labels; value = Metrics.Gauge_value v })
                    f.simple
            in
            let series =
              List.sort (fun (a : Metrics.series) b -> compare a.labels b.labels) series
            in
            { Metrics.name; help = f.help; kind; series } :: acc)
          families []
        |> List.sort (fun (a : Metrics.family) b -> String.compare a.name b.name)
      in
      Ok snap
  | exception Bad msg -> Error msg

(** Snapshot and trace writers: Prometheus text, JSON documents, JSONL
    traces, and a human-readable table.

    File writers pick the format from the path: a [.json] suffix selects
    the JSON document form, anything else the Prometheus text form. *)

val snapshot_to_json : Metrics.snapshot -> Json.t
(** [{ "families": [ { name; kind; help; series: [ { labels; ... } ] } ] }].
    Counter series carry ["value"]; gauges ["value"]; histograms
    ["count"], ["sum"] and ["buckets"] ([{"le"; "count"}], cumulative,
    with the overflow bucket's bound rendered as the string ["+Inf"]). *)

val render_table : Metrics.snapshot -> string
(** An aligned {!Stdx.Tabular} table: one row per series; histograms
    summarized as count / sum / estimated p50, p90, p99. *)

val write_metrics : path:string -> Metrics.snapshot -> unit
(** Prometheus text, or a JSON document when [path] ends in [.json]. *)

val read_metrics : path:string -> (Metrics.snapshot, string) result
(** Read back a Prometheus text file written by {!write_metrics} (the JSON
    form is write-only; pointing this at a [.json] file reports an
    error). *)

val write_trace_jsonl : path:string -> Trace.t -> unit
(** All finished traces of the collector, one span per line. *)

(** The metrics registry: named counters, gauges and fixed-bucket
    histograms with labels.

    Every subsystem (the index layer, the DHT substrates, the shortcut
    caches, the simulator) emits into one registry; exporters read a
    consistent {!snapshot} out of it.  The design follows the Prometheus
    data model: a {e family} is a named metric of one kind, and each
    distinct label set under it is an independent {e series}.

    Instruments are cheap mutable cells: fetch them once
    ([counter]/[gauge]/[histogram] return the {e same} instrument for the
    same name and label set — instrument identity) and bump them on the hot
    path without further lookups. *)

type labels = (string * string) list
(** Label pairs; order is irrelevant (they are kept sorted by name). *)

module Counter : sig
  type t

  val incr : ?by:int -> t -> unit
  (** Add [by] (default 1).  @raise Invalid_argument when [by < 0]:
      counters are monotone. *)

  val value : t -> int

  val reset : t -> unit
  (** Zero the counter — for instruments mirroring an accounting layer
      that itself resets (e.g. {!Dht.Network.reset} after corpus
      publication). *)
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  val observe_int : t -> int -> unit

  val count : t -> int
  (** Total number of observations. *)

  val sum : t -> float

  val cumulative : t -> (float * int) list
  (** [(upper_bound, cumulative_count)] per bucket, in increasing bound
      order, ending with the [infinity] bucket whose count equals
      {!count}.  Cumulative counts are non-decreasing by construction. *)

  val quantile : t -> float -> float
  (** [quantile h q] (with [q] in [\[0,1\]]) estimates the [q]-quantile by
      linear interpolation inside the bucket holding the [q]-th
      observation.  The estimate is clamped to the bucket's bounds and to
      the observed min/max, so it always lies within the bucket that
      contains the true quantile.  Returns [nan] when empty. *)
end

val default_buckets : float array
(** A general-purpose 1–1000 log-ish ladder. *)

val linear_buckets : start:float -> step:float -> count:int -> float array
val exponential_buckets : start:float -> factor:float -> count:int -> float array

(** {1 Registry} *)

type t

val create : unit -> t

val counter : t -> ?help:string -> ?labels:labels -> string -> Counter.t
(** Fetch-or-create.  Metric and label names must match
    [[a-zA-Z_:][a-zA-Z0-9_:]*].
    @raise Invalid_argument on a malformed name or when [name] is already
    registered with a different kind. *)

val gauge : t -> ?help:string -> ?labels:labels -> string -> Gauge.t

val histogram :
  t -> ?help:string -> ?labels:labels -> ?buckets:float array -> string -> Histogram.t
(** [buckets] (default {!default_buckets}) are the strictly increasing
    upper bounds; they are fixed by the first registration of the family
    and ignored afterwards.  @raise Invalid_argument when not strictly
    increasing or empty. *)

(** {1 Snapshots} *)

type kind = Counter_kind | Gauge_kind | Histogram_kind

val kind_label : kind -> string
(** ["counter"], ["gauge"], ["histogram"] — the Prometheus TYPE names. *)

type histogram_snapshot = {
  buckets : (float * int) list;  (** As {!Histogram.cumulative}. *)
  sum : float;
  count : int;
}

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of histogram_snapshot

type series = { labels : labels; value : value }

type family = { name : string; help : string; kind : kind; series : series list }

type snapshot = family list

val snapshot : t -> snapshot
(** A consistent copy, families sorted by name and series by labels, so
    exports are deterministic. *)

val merge_snapshots : snapshot list -> snapshot
(** Fold per-shard snapshots into one network-wide view, merging families
    by name and series by label set: counters add, histograms add
    bucket-wise (bounds must match), gauges add — except families whose
    name ends in [_info], which are constant markers every shard carries
    and take the max instead.  Input and output keep the {!snapshot}
    ordering (families by name, series by labels), so merging preserves
    export determinism; the merge is associative, and folding in shard
    order makes the result independent of how shards were scheduled.
    @raise Invalid_argument when the same family name appears with
    different kinds or histogram bucket bounds. *)

val snapshot_quantile : histogram_snapshot -> float -> float
(** Quantile estimate from an exported histogram (bucket bounds only — no
    min/max clamping; the overflow bucket reports the last finite bound).
    [nan] when empty. *)

val counter_total : snapshot -> string -> int
(** Sum of a counter family's series; 0 when the family is absent. *)

type labels = (string * string) list

(* ------------------------------------------------------------------ *)
(* Instruments. *)

module Counter = struct
  type t = { mutable value : int }

  let make () = { value = 0 }

  let incr ?(by = 1) c =
    if by < 0 then invalid_arg "Metrics.Counter.incr: counters are monotone";
    c.value <- c.value + by

  let value c = c.value

  let reset c = c.value <- 0
end

module Gauge = struct
  type t = { mutable value : float }

  let make () = { value = 0.0 }
  let set g v = g.value <- v
  let add g v = g.value <- g.value +. v
  let value g = g.value
end

module Histogram = struct
  type t = {
    bounds : float array;  (* strictly increasing upper bounds *)
    counts : int array;  (* per bucket; length bounds + 1, last = overflow *)
    mutable sum : float;
    mutable total : int;
    mutable min_obs : float;
    mutable max_obs : float;
  }

  let make bounds =
    if Array.length bounds = 0 then
      invalid_arg "Metrics.histogram: need at least one bucket bound";
    Array.iteri
      (fun i b ->
        if not (Float.is_finite b) then
          invalid_arg "Metrics.histogram: bucket bounds must be finite";
        if i > 0 && b <= bounds.(i - 1) then
          invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing")
      bounds;
    {
      bounds = Array.copy bounds;
      counts = Array.make (Array.length bounds + 1) 0;
      sum = 0.0;
      total = 0;
      min_obs = infinity;
      max_obs = neg_infinity;
    }

  let bucket_of h v =
    (* First bound >= v; the overflow bucket otherwise. *)
    let n = Array.length h.bounds in
    let rec go i = if i >= n then n else if v <= h.bounds.(i) then i else go (i + 1) in
    go 0

  let observe h v =
    let i = bucket_of h v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.sum <- h.sum +. v;
    h.total <- h.total + 1;
    if v < h.min_obs then h.min_obs <- v;
    if v > h.max_obs then h.max_obs <- v

  let observe_int h n = observe h (float_of_int n)

  let count h = h.total
  let sum h = h.sum

  let cumulative h =
    let acc = ref 0 in
    let finite =
      Array.to_list
        (Array.mapi
           (fun i bound ->
             acc := !acc + h.counts.(i);
             (bound, !acc))
           h.bounds)
    in
    finite @ [ (infinity, h.total) ]

  (* The bucket holding the q-th observation, with rank interpolation
     inside it.  [lower]/[upper] fall back to the observed extremes at the
     edges, so the estimate always lies inside the covering bucket. *)
  let quantile h q =
    if h.total = 0 then nan
    else begin
      let q = Float.min 1.0 (Float.max 0.0 q) in
      let target = q *. float_of_int h.total in
      let n = Array.length h.bounds in
      let rec locate i before =
        if i > n then (n, before)
        else
          let here = before + h.counts.(i) in
          if float_of_int here >= target && h.counts.(i) > 0 then (i, before)
          else if i = n then (i, before)
          else locate (i + 1) here
      in
      let i, before = locate 0 0 in
      let lower =
        if i = 0 then h.min_obs
        else Float.max h.min_obs h.bounds.(i - 1)
      in
      let upper = if i = n then h.max_obs else Float.min h.max_obs h.bounds.(i) in
      if h.counts.(i) = 0 then Float.min lower upper
      else begin
        let frac =
          let r = (target -. float_of_int before) /. float_of_int h.counts.(i) in
          Float.min 1.0 (Float.max 0.0 r)
        in
        lower +. (frac *. (upper -. lower))
      end
    end
end

let default_buckets = [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000. |]

let linear_buckets ~start ~step ~count =
  if count <= 0 || step <= 0.0 then invalid_arg "Metrics.linear_buckets";
  Array.init count (fun i -> start +. (float_of_int i *. step))

let exponential_buckets ~start ~factor ~count =
  if count <= 0 || start <= 0.0 || factor <= 1.0 then
    invalid_arg "Metrics.exponential_buckets";
  let b = Array.make count start in
  for i = 1 to count - 1 do
    b.(i) <- b.(i - 1) *. factor
  done;
  b

(* ------------------------------------------------------------------ *)
(* Registry. *)

type kind = Counter_kind | Gauge_kind | Histogram_kind

let kind_label = function
  | Counter_kind -> "counter"
  | Gauge_kind -> "gauge"
  | Histogram_kind -> "histogram"

type instrument =
  | Counter_i of Counter.t
  | Gauge_i of Gauge.t
  | Histogram_i of Histogram.t

type family_state = {
  help : string;
  fkind : kind;
  buckets : float array option;  (* fixed by first histogram registration *)
  mutable instruments : (labels * instrument) list;
}

type t = { families : (string, family_state) Hashtbl.t }

let create () = { families = Hashtbl.create 32 }

let valid_name s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s

let check_name what s =
  if not (valid_name s) then
    invalid_arg (Printf.sprintf "Metrics: invalid %s %S" what s)

let normalize_labels labels =
  List.iter (fun (k, _) -> check_name "label name" k) labels;
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let rec check_dups = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg (Printf.sprintf "Metrics: duplicate label %S" a);
        check_dups rest
    | [ _ ] | [] -> ()
  in
  check_dups sorted;
  sorted

let family t ~name ~help ~kind ~buckets =
  check_name "metric name" name;
  match Hashtbl.find_opt t.families name with
  | Some f ->
      if f.fkind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_label f.fkind)
             (kind_label kind));
      f
  | None ->
      let f = { help; fkind = kind; buckets; instruments = [] } in
      Hashtbl.add t.families name f;
      f

let series f ~labels ~make =
  match List.assoc_opt labels f.instruments with
  | Some i -> i
  | None ->
      let i = make () in
      f.instruments <- (labels, i) :: f.instruments;
      i

let counter t ?(help = "") ?(labels = []) name =
  let labels = normalize_labels labels in
  let f = family t ~name ~help ~kind:Counter_kind ~buckets:None in
  match series f ~labels ~make:(fun () -> Counter_i (Counter.make ())) with
  | Counter_i c -> c
  | Gauge_i _ | Histogram_i _ -> assert false

let gauge t ?(help = "") ?(labels = []) name =
  let labels = normalize_labels labels in
  let f = family t ~name ~help ~kind:Gauge_kind ~buckets:None in
  match series f ~labels ~make:(fun () -> Gauge_i (Gauge.make ())) with
  | Gauge_i g -> g
  | Counter_i _ | Histogram_i _ -> assert false

let histogram t ?(help = "") ?(labels = []) ?(buckets = default_buckets) name =
  let labels = normalize_labels labels in
  let f = family t ~name ~help ~kind:Histogram_kind ~buckets:(Some buckets) in
  let bounds = match f.buckets with Some b -> b | None -> buckets in
  match series f ~labels ~make:(fun () -> Histogram_i (Histogram.make bounds)) with
  | Histogram_i h -> h
  | Counter_i _ | Gauge_i _ -> assert false

(* ------------------------------------------------------------------ *)
(* Snapshots. *)

type histogram_snapshot = { buckets : (float * int) list; sum : float; count : int }

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of histogram_snapshot

type series = { labels : labels; value : value }

type family = { name : string; help : string; kind : kind; series : series list }

type snapshot = family list

let labels_compare (a : labels) (b : labels) = compare a b

let snapshot t =
  Stdx.Det_tbl.fold_sorted ~compare:String.compare
    (fun name (f : family_state) acc ->
      let series =
        List.map
          (fun (labels, instrument) ->
            let value =
              match instrument with
              | Counter_i c -> Counter_value (Counter.value c)
              | Gauge_i g -> Gauge_value (Gauge.value g)
              | Histogram_i h ->
                  Histogram_value
                    {
                      buckets = Histogram.cumulative h;
                      sum = Histogram.sum h;
                      count = Histogram.count h;
                    }
            in
            { labels; value })
          f.instruments
        |> List.sort (fun a b -> labels_compare a.labels b.labels)
      in
      { name; help = f.help; kind = f.fkind; series } :: acc)
    t.families []
  |> List.sort (fun a b -> String.compare a.name b.name)

(* Per-shard snapshot merge: the sharded engine runs S isolated
   sub-simulations, each with its own registry, and folds their snapshots
   into one network-wide view.  Families and series are merged by name and
   label set (both sides are sorted, so this is a linear merge that keeps
   the {!snapshot} ordering invariant). *)

let has_info_suffix name =
  let n = String.length name in
  n >= 5 && String.equal (String.sub name (n - 5) 5) "_info"

let merge_value name a b =
  match (a, b) with
  | Counter_value x, Counter_value y -> Counter_value (x + y)
  | Gauge_value x, Gauge_value y ->
      (* Gauges add (queue depths, per-phase words); [_info] families are
         constant markers carried by every shard, where a sum would turn
         "present" into a shard count — keep the max instead. *)
      Gauge_value (if has_info_suffix name then Float.max x y else x +. y)
  | Histogram_value x, Histogram_value y ->
      let buckets =
        try
          List.map2
            (fun (bx, cx) (by, cy) ->
              if not (Float.equal bx by) then raise Exit;
              (bx, cx + cy))
            x.buckets y.buckets
        with Exit | Invalid_argument _ ->
          invalid_arg
            (Printf.sprintf "Metrics.merge_snapshots: %S bucket bounds differ" name)
      in
      Histogram_value { buckets; sum = x.sum +. y.sum; count = x.count + y.count }
  | (Counter_value _ | Gauge_value _ | Histogram_value _), _ ->
      invalid_arg (Printf.sprintf "Metrics.merge_snapshots: %S kind mismatch" name)

let rec merge_series name xs ys =
  match (xs, ys) with
  | [], rest | rest, [] -> rest
  | x :: xt, y :: yt ->
      let c = labels_compare x.labels y.labels in
      if c = 0 then
        { labels = x.labels; value = merge_value name x.value y.value }
        :: merge_series name xt yt
      else if c < 0 then x :: merge_series name xt ys
      else y :: merge_series name xs yt

let rec merge_families xs ys =
  match (xs, ys) with
  | [], rest | rest, [] -> rest
  | x :: xt, y :: yt ->
      let c = String.compare x.name y.name in
      if c = 0 then begin
        if x.kind <> y.kind then
          invalid_arg
            (Printf.sprintf "Metrics.merge_snapshots: %S kind mismatch" x.name);
        let help = if String.equal x.help "" then y.help else x.help in
        { x with help; series = merge_series x.name x.series y.series }
        :: merge_families xt yt
      end
      else if c < 0 then x :: merge_families xt ys
      else y :: merge_families xs yt

let merge_snapshots = function
  | [] -> []
  | first :: rest -> List.fold_left merge_families first rest

let snapshot_quantile hs q =
  if hs.count = 0 then nan
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let target = q *. float_of_int hs.count in
    let rec locate prev_bound = function
      | [] -> prev_bound
      | (bound, cum) :: rest ->
          if float_of_int cum >= target then
            if Float.is_finite bound then bound else prev_bound
          else locate (if Float.is_finite bound then bound else prev_bound) rest
    in
    locate 0.0 hs.buckets
  end

let counter_total snap name =
  match List.find_opt (fun f -> String.equal f.name name) snap with
  | None -> 0
  | Some f ->
      List.fold_left
        (fun acc s -> match s.value with Counter_value n -> acc + n | _ -> acc)
        0 f.series

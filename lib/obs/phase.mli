(** Phase profiler: named, accumulating spans that account for where a
    run's wall-clock time and allocation go.

    A phase is a named bucket ("setup", "walk", "tally", "report"); every
    {!span} adds one call's elapsed time and GC deltas ([Gc.quick_stat]:
    minor/major words allocated, promotions, collection counts) to its
    bucket.  The simulation runner and the concurrent engine thread an
    optional collector through their stages, so a profiled run's report
    snapshot says which stage allocated and which stage burned time.

    {b Determinism.}  The clock is injected: the collector never reads
    ambient time itself, so this module stays inside the repo's
    no-ambient-nondeterminism contract (lint rule D1).  The default clock
    is {!null_clock}, which always returns 0 — a collector without a real
    clock still produces exact, byte-reproducible allocation accounting
    (GC word counts are a function of the code executed, not of the
    scheduler), with every elapsed time equal to zero.  Callers that want
    real timings (the CLI's [--profile-phases], the bench harness) pass a
    monotonic nanosecond clock and forfeit byte-reproducibility of the
    timing fields only. *)

type clock = unit -> int64
(** Monotonic nanoseconds.  Only differences are used. *)

val null_clock : clock
(** Always 0: allocation accounting without timing, fully deterministic. *)

type entry = {
  phase : string;
  calls : int;  (** Spans accumulated into this bucket. *)
  elapsed_ns : int64;  (** Total clock time (0 under {!null_clock}). *)
  minor_words : float;  (** Words allocated on the minor heap. *)
  promoted_words : float;  (** Words promoted minor → major. *)
  major_words : float;  (** Words allocated on the major heap (incl. promotions). *)
  minor_collections : int;
  major_collections : int;
}

type t

val create : ?clock:clock -> unit -> t
(** A fresh collector; [clock] defaults to {!null_clock}. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t phase f] runs [f ()] and accumulates its elapsed time and GC
    deltas into [phase]'s bucket (created on first use).  The measurement
    is recorded even when [f] raises.  Spans of different phases must not
    nest — a nested span's costs would be double-counted in the outer
    bucket; call sites keep phases disjoint instead. *)

val span_opt : t option -> string -> (unit -> 'a) -> 'a
(** [span_opt (Some t)] is [span t]; [span_opt None phase f] is [f ()] —
    the no-profiling fast path, free of clock and GC reads. *)

val entries : t -> entry list
(** Accumulated buckets, sorted by phase name — deterministic. *)

val find : t -> string -> entry option

val total_elapsed_ns : t -> int64
(** Sum of all buckets' elapsed time. *)

val to_metrics : t -> Metrics.t -> unit
(** Export every bucket into a registry as gauges labelled
    [("phase", name)]: [p2pindex_phase_elapsed_ns],
    [p2pindex_phase_calls], [p2pindex_phase_minor_words],
    [p2pindex_phase_promoted_words], [p2pindex_phase_major_words],
    [p2pindex_phase_minor_collections] and
    [p2pindex_phase_major_collections]. *)

val render_table : t -> string
(** An aligned table of the buckets (phase, calls, elapsed ms, allocation
    columns), sorted by phase name. *)

let src = Logs.Src.create "p2pindex.obs" ~doc:"p2pindex telemetry events"

module L = (val Logs.src_log src : Logs.LOG)

type verbosity = Quiet | Events | Debug

let set_verbosity = function
  | Quiet -> Logs.Src.set_level src None
  | Events -> Logs.Src.set_level src (Some Logs.Info)
  | Debug -> Logs.Src.set_level src (Some Logs.Debug)

let () = set_verbosity Quiet

let enabled ?(debug = false) () =
  match Logs.Src.level src with
  | None -> false
  | Some Logs.Debug -> true
  | Some _ -> not debug

let install_reporter () =
  (* Only claim the reporter slot when the application left it empty. *)
  (* lint: allow phys-equal — nop_reporter is a sentinel compared by identity *)
  if Logs.reporter () == Logs.nop_reporter then
    Logs.set_reporter (Logs.format_reporter ())

let field_to_string (k, v) =
  let rendered =
    match (v : Json.t) with
    | Json.String s -> s  (* unquoted: event lines are for humans *)
    | other -> Json.to_string other
  in
  k ^ "=" ^ rendered

let event ?(debug = false) name fields =
  let text =
    match fields with
    | [] -> name
    | _ -> name ^ " " ^ String.concat " " (List.map field_to_string fields)
  in
  if debug then L.debug (fun m -> m "%s" text) else L.info (fun m -> m "%s" text)

(** Structured benchmark reports: the versioned, machine-readable form of
    a bench-harness run ([BENCH_<label>.json]), and the substrate the CI
    regression gate compares.

    A report carries, per micro-benchmark, fixed-iteration allocation
    accounting (and optionally Bechamel wall-clock estimates), and per
    reproduction experiment a [Gc.quick_stat] delta plus the experiment's
    headline cost metrics (interactions per query, billed bytes, hit
    ratios — see {!Sim.Experiments.run_experiment}).

    {b Determinism.}  Serialization is canonical: fields in a fixed
    order, floats printed with {!Json.to_string}'s shortest round-trip
    form, one trailing newline.  In the default {e strict} mode every
    recorded quantity is a deterministic function of the code and the
    seed — wall-clock fields are [null] — so the same binary invoked with
    the same arguments writes a byte-identical file, and a diff between
    two reports is meaningful down to the last bit.  With [timed = true]
    the harness fills the wall-clock fields and the byte-reproducibility
    guarantee is deliberately forfeited (the remaining fields stay
    deterministic).

    Unknown schema versions are rejected on read: bump {!version} when
    the shape changes, and teach {!of_json} the old form if old baselines
    must stay readable. *)

val schema : string
(** ["p2pindex.bench_report"] — the document's self-identification. *)

val version : int
(** Current schema version (1). *)

type direction =
  | Lower_better  (** Costs: interactions, bytes, allocation, time. *)
  | Higher_better  (** Yields: hit ratio, availability, lookup success. *)
  | Informational  (** Tracked but never gated (model-fit slopes, peaks). *)

type metric = { name : string; value : float; better : direction }

val metric : string -> direction -> float -> metric

type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

val gc_delta : before:Gc.stat -> after:Gc.stat -> gc_delta
(** Field-wise difference of two [Gc.quick_stat] readings. *)

type micro = {
  micro_name : string;
  runs : int;  (** Fixed iteration count the allocation columns average over. *)
  time_ns_per_run : float option;  (** [None] in strict mode. *)
  minor_words_per_run : float;
  promoted_words_per_run : float;
  major_words_per_run : float;
}

type experiment = {
  exp_id : string;  (** An id from {!Sim.Experiments.all_experiment_ids}. *)
  wall_ns : int64 option;  (** [None] in strict mode. *)
  gc : gc_delta;
  exp_metrics : metric list;
}

type scale = {
  node_count : int;
  article_count : int;
  query_count : int;
  seed : int64;
}

type t = {
  label : string;
  timed : bool;  (** Whether wall-clock fields were filled. *)
  scale : scale;
  micro : micro list;
  experiments : experiment list;
}

val label_of_path : string -> string
(** ["bench/BENCH_smoke.json"] → ["smoke"]: basename, minus a leading
    [BENCH_] and a trailing [.json]. *)

(** {1 Serialization} *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val to_string : t -> string
(** Canonical single-line JSON document plus a trailing newline. *)

val of_string : string -> (t, string) result

val write : path:string -> t -> unit
val read : path:string -> (t, string) result

(** {1 The flat metric view}

    The diff tool compares reports metric-by-metric; [flatten] projects
    every quantity into one namespaced list:

    - [micro/<name>/minor_words_per_run] (and promoted/major, and
      [time_ns_per_run] when timed) — all {!Lower_better};
    - [exp/<id>/gc/minor_words] (etc.) — {!Lower_better};
    - [exp/<id>/wall_ns] when timed — {!Lower_better};
    - [exp/<id>/<metric.name>] with the metric's own direction. *)

val flatten : t -> metric list
(** Sorted by name; names are unique within a well-formed report. *)

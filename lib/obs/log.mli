(** Structured event logging over [Logs], behind a verbosity flag.

    Subsystems report notable events (a run starting, an exporter writing a
    file, a routing failure) as a name plus JSON fields.  Events render as
    one line: [name key=value key=value].  Everything is emitted on a
    dedicated [Logs] source, silent by default — {!set_verbosity} turns it
    on, and the CLI's [--verbose] flag maps straight onto it. *)

val src : Logs.src

type verbosity =
  | Quiet  (** No telemetry events (the default). *)
  | Events  (** Milestone events ([Logs.Info]). *)
  | Debug  (** Everything, including per-operation events ([Logs.Debug]). *)

val set_verbosity : verbosity -> unit

val enabled : ?debug:bool -> unit -> bool
(** Would {!event} (at the given level) be emitted right now?  Lets hot
    paths skip building the field list entirely. *)

val install_reporter : unit -> unit
(** Install a minimal stderr line reporter if the application has not set
    one ([Logs] discards everything without a reporter). *)

val event : ?debug:bool -> string -> (string * Json.t) list -> unit
(** [event name fields] logs at [Info] level, or [Debug] when [~debug:true]. *)

(** The generic XPath instance of {!Query_sig.QUERY}.

    [compatible] is the always-[true] conservative approximation: deciding
    whether two arbitrary tree patterns can match a common document needs a
    schema (is a field single-valued?), which generic XPath does not have.
    The search prunes less but stays complete.  Applications with structure
    knowledge (like [Bib.Bib_query]) give precise answers. *)

type t = Xpath.t

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val covers : t -> t -> bool
val compatible : t -> t -> bool
val generalizations : t -> t list

(** Interactive search sessions (Section IV-B).

    "The lookup process can be interactive, i.e., the user directs the
    search and restricts its query at each step, or automated."  A session
    is the interactive mode: a cursor over the query-refinement graph that
    remembers where it has been, so a user interface can present the result
    set, descend into one of the more specific queries, back out, and keep
    every file discovered along the way. *)

module Make (Q : Query_sig.QUERY) (I : Index.S with type query = Q.t) = struct
  module L = Lookup.Make (Q)

  type position = {
    query : Q.t;
    options : Q.t list;  (** More specific queries offered at this step. *)
    file : I.file option;  (** Set when the query was a descriptor. *)
  }

  type t = {
    index : I.t;
    mutable trail : position list;  (** Current position first. *)
    mutable interactions : int;
    mutable discovered : (Q.t * I.file) list;  (** Files seen, latest first. *)
  }

  let answer_of_step : I.step -> L.answer = function
    | I.File file -> L.File file
    | I.Children children -> L.Children children
    | I.Not_indexed -> L.Not_indexed

  (* Each user move is a single-probe {!Lookup} machine driven against
     the index; the session keeps the cursor the machine returns. *)
  let probe t query =
    let result =
      L.drive (L.probe query) ~step:(fun ~generalization:_ q ->
          answer_of_step (I.lookup_step t.index q))
    in
    t.interactions <- t.interactions + result.L.interactions;
    match result.L.last with
    | Some (L.File file) ->
        if
          not
            (List.exists (fun (q, _) -> Q.equal q query) t.discovered)
        then t.discovered <- (query, file) :: t.discovered;
        { query; options = []; file = Some file }
    | Some (L.Children children) -> { query; options = children; file = None }
    | Some L.Not_indexed | None -> { query; options = []; file = None }

  let start index query =
    (* Each session is one lookup chain: open a trace so the probes below
       group under it (any previous open trace is finished first). *)
    Option.iter
      (fun tracer -> Obs.Trace.begin_trace tracer ~root:(Q.to_string query))
      (I.tracer index);
    let t = { index; trail = []; interactions = 0; discovered = [] } in
    t.trail <- [ probe t query ];
    t

  (** Close the session's trace (a no-op without a tracer or when another
      session has already taken over the collector). *)
  let finish t = Option.iter Obs.Trace.end_trace (I.tracer t.index)

  let current t =
    match t.trail with
    | position :: _ -> position
    | [] -> invalid_arg "Session: empty trail" (* unreachable: start seeds it *)

  let options t = (current t).options

  let file t = (current t).file

  let at_dead_end t =
    let position = current t in
    position.options = [] && position.file = None

  let interactions t = t.interactions

  let discovered t = t.discovered

  let depth t = List.length t.trail

  exception No_such_option

  let refine t choice =
    let position = current t in
    if not (List.exists (Q.equal choice) position.options) then raise No_such_option;
    let next = probe t choice in
    t.trail <- next :: t.trail;
    next

  let refine_nth t n =
    let position = current t in
    match List.nth_opt position.options n with
    | Some choice -> refine t choice
    | None -> raise No_such_option

  let back t =
    match t.trail with
    | _ :: (previous :: _ as rest) ->
        t.trail <- rest;
        Some previous
    | [ _ ] | [] -> None

  let trail t = List.rev_map (fun position -> position.query) t.trail

  (** Expand every remaining option below the current position (switching to
      the automated mode mid-session); returns the files found. *)
  let explore_all t =
    let position = current t in
    List.concat_map
      (fun option ->
        let interactions = ref 0 in
        let results = I.search ~interactions t.index option in
        t.interactions <- t.interactions + !interactions;
        List.iter
          (fun (q, file) ->
            if not (List.exists (fun (q', _) -> Q.equal q' q) t.discovered) then
              t.discovered <- (q, file) :: t.discovered)
          results;
        results)
      position.options
end

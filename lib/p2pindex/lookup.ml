(** Resumable lookup machines (Section IV-B as a state machine).

    A lookup is a value: either [Pending] local work (frontier bookkeeping
    between probes), [Need_step] — the machine wants one user-system
    interaction answered — or [Done].  Nothing here touches a network or a
    store; the caller owns the probe loop.  {!Index} drives these machines
    to completion synchronously (reproducing the old recursive searches
    step for step), {!Session} drives single-probe machines, and
    [Sim.Engine] interleaves many machines on a virtual clock, parking each
    one at its [Need_step] while the simulated RPC is in flight.

    Every machine threads a {!progress} cursor: the interaction count and
    the wire bill — the bytes the probes would cost under {!Wire} (one
    request per probe, plus the estimated response for the answer fed
    back).  On a fault-free replication-1 index the bill equals the bytes
    actually charged to the network, which the tests pin. *)

module Make (Q : Query_sig.QUERY) = struct
  type query = Q.t
  type file = Storage.Block_store.file

  type answer = File of file | Children of query list | Not_indexed

  type progress = { interactions : int; wire_bill : int }

  type results = {
    files : (query * file) list;
    interactions : int;
    wire_bill : int;
    last : answer option;
  }

  type t = Pending of resume | Need_step of query * k | Done of results

  and resume = { progress : progress; run : unit -> t }

  and k = { generalization : bool; billed : progress; feed : answer -> t }

  (* ---------------------------------------------------------------- *)
  (* A purely functional FIFO (push to the back, pop from the front), so
     suspended machines share structure instead of mutating a Queue. *)
  module Fifo = struct
    type 'a t = { front : 'a list; back : 'a list }

    let of_list xs = { front = xs; back = [] }

    let push x t = { t with back = x :: t.back }

    let push_list xs t = List.fold_left (fun t x -> push x t) t xs

    let pop t =
      match t.front with
      | x :: front -> Some (x, { t with front })
      | [] -> (
          match List.rev t.back with
          | [] -> None
          | x :: front -> Some (x, { front; back = [] }))
  end

  module Query_set = Set.Make (Q)

  let response_estimate = function
    | File file -> Wire.file_response_bytes file
    | Children children -> Wire.response_bytes (List.map Q.to_string children)
    | Not_indexed -> Wire.response_bytes []

  (* Emit one probe: bill the request and the interaction up front, the
     response estimate when the answer comes back. *)
  let probe_query ~generalization (progress : progress) q feed =
    let progress =
      {
        interactions = progress.interactions + 1;
        wire_bill = progress.wire_bill + Wire.request_bytes (Q.to_string q);
      }
    in
    Need_step
      ( q,
        {
          generalization;
          billed = progress;
          feed =
            (fun answer ->
              feed
                { progress with
                  wire_bill = progress.wire_bill + response_estimate answer }
                answer);
        } )

  let done_ (progress : progress) ?last files =
    Done
      {
        files;
        interactions = progress.interactions;
        wire_bill = progress.wire_bill;
        last;
      }

  let finish_results progress rev_files = done_ progress (List.rev rev_files)

  (* Breadth-first expansion of the query DAG: the step-machine rendering
     of the old [Index.search_from] loop — same visit order, same [keep]
     filter applied when children are pushed, same [max_results] cut. *)
  let rec bfs ~keep ~max_results ~finish progress visited rev_files count queue =
    if count >= max_results then finish progress rev_files
    else
      match Fifo.pop queue with
      | None -> finish progress rev_files
      | Some (q, queue) ->
          if Query_set.mem q visited then
            bfs ~keep ~max_results ~finish progress visited rev_files count queue
          else
            let visited = Query_set.add q visited in
            probe_query ~generalization:false progress q (fun progress answer ->
                let continue progress rev_files count queue =
                  Pending
                    {
                      progress;
                      run =
                        (fun () ->
                          bfs ~keep ~max_results ~finish progress visited
                            rev_files count queue);
                    }
                in
                match answer with
                | File file ->
                    if keep q then
                      continue progress ((q, file) :: rev_files) (count + 1) queue
                    else continue progress rev_files count queue
                | Children children ->
                    continue progress rev_files count
                      (Fifo.push_list (List.filter keep children) queue)
                | Not_indexed -> continue progress rev_files count queue)

  let start_progress : progress = { interactions = 0; wire_bill = 0 }

  let search ?(max_results = max_int) q =
    Pending
      {
        progress = start_progress;
        run =
          (fun () ->
            bfs
              ~keep:(fun _ -> true)
              ~max_results ~finish:finish_results start_progress
              Query_set.empty [] 0
              (Fifo.of_list [ q ]));
      }

  let search_with_generalization ?(max_results = max_int)
      ?(generalization_budget = 64) q =
    (* Specialize back down from the indexed entry the generalization walk
       found, pruning with [compatible] and keeping only files the
       original query covers. *)
    let after_entry progress entry =
      match entry with
      | None -> done_ progress []
      | Some (`File (g, file)) -> done_ progress [ (g, file) ]
      | Some (`Children children) ->
          let finish progress rev_files =
            done_ progress
              (List.rev rev_files
              |> List.filter (fun (msd, _file) -> Q.covers q msd))
          in
          bfs
            ~keep:(fun candidate -> Q.compatible q candidate)
            ~max_results ~finish progress Query_set.empty [] 0
            (Fifo.of_list (List.filter (fun child -> Q.compatible q child) children))
    in
    (* Generalize breadth-first until some query is indexed, spending at
       most [generalization_budget] probes. *)
    let rec generalize progress visited budget queue =
      if budget <= 0 then after_entry progress None
      else
        match Fifo.pop queue with
        | None -> after_entry progress None
        | Some (g, queue) ->
            if Query_set.mem g visited then
              generalize progress visited budget queue
            else
              let visited = Query_set.add g visited in
              let budget = budget - 1 in
              probe_query ~generalization:true progress g
                (fun progress answer ->
                  let continue progress next =
                    Pending { progress; run = (fun () -> next ()) }
                  in
                  match answer with
                  | File file when Q.covers q g ->
                      continue progress (fun () ->
                          after_entry progress (Some (`File (g, file))))
                  | File _ | Not_indexed ->
                      let queue = Fifo.push_list (Q.generalizations g) queue in
                      continue progress (fun () ->
                          generalize progress visited budget queue)
                  | Children children ->
                      continue progress (fun () ->
                          after_entry progress (Some (`Children children))))
    in
    Pending
      {
        progress = start_progress;
        run =
          (fun () ->
            probe_query ~generalization:false start_progress q
              (fun progress answer ->
                match answer with
                | File file -> done_ progress [ (q, file) ]
                | Children children ->
                    Pending
                      {
                        progress;
                        run =
                          (fun () ->
                            bfs
                              ~keep:(fun _ -> true)
                              ~max_results ~finish:finish_results progress
                              Query_set.empty [] 0 (Fifo.of_list children));
                      }
                | Not_indexed ->
                    Pending
                      {
                        progress;
                        run =
                          (fun () ->
                            generalize progress Query_set.empty
                              generalization_budget
                              (Fifo.of_list (Q.generalizations q)));
                      }));
      }

  let probe q =
    probe_query ~generalization:false start_progress q (fun progress answer ->
        let files = match answer with File file -> [ (q, file) ] | _ -> [] in
        done_ progress ~last:answer files)

  let progress : t -> progress = function
    | Pending r -> r.progress
    | Need_step (_, k) -> k.billed
    | Done r -> { interactions = r.interactions; wire_bill = r.wire_bill }

  let drive ~step machine =
    let rec go = function
      | Pending r -> go (r.run ())
      | Need_step (q, k) -> go (k.feed (step ~generalization:k.generalization q))
      | Done r -> r
    in
    go machine
end

(** The distributed index instantiated over the generic XPath queries —
    the out-of-the-box configuration for semi-structured descriptors. *)

include Index.S with type query = Xpath_query.t

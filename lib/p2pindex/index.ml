(** The distributed query-to-query index (Section IV).

    Indexes are stored in the DHT itself: the node responsible for [h(q)]
    keeps the mappings [(q ; q_i)] with [q ⊒ q_i].  Looking up a query
    returns either the file (when the query is a most specific descriptor),
    the list of more specific queries registered under it, or nothing — in
    which case the generalization/specialization search of Section IV-B can
    still locate matching files at a higher lookup cost.

    Because index entries are regular DHT data (Section IV-D), they ride on
    the substrate's replication: every entry is written to [replication]
    replica nodes, lookups retry down the replica list when the responsible
    node is dead or has lost the mapping, and under churn the entries are
    soft state — TTL-stamped, refreshed by {!republish} and re-homed by
    {!repair}.  With the defaults (replication 1, everything alive,
    infinite TTL) the index behaves exactly as the static version did.

    The module is a functor over the query language; all traffic flows
    through an optional {!Dht.Network.t} so simulations and examples get
    byte-accurate accounting for free. *)

module Key = Hashing.Key

module type S = sig
  type query

  type file = Storage.Block_store.file

  type t

  val create :
    ?network:Dht.Network.t ->
    ?rpc:Dht.Rpc.t ->
    ?metrics:Obs.Metrics.t ->
    ?tracer:Obs.Trace.t ->
    ?charge_route_hops:bool ->
    ?replication:int ->
    ?read_quorum:int ->
    ?write_quorum:int ->
    ?liveness:Dht.Liveness.t ->
    ?clock:(unit -> float) ->
    ?ttl:float ->
    resolver:Dht.Resolver.t ->
    unit ->
    t
  (** [create ~resolver ()] builds an empty index over the given substrate.
      When [network] is set, every lookup and publication is charged to it;
      [charge_route_hops] (default false) additionally bills substrate
      routing hops as maintenance traffic.

      All messaging flows through an {!Dht.Rpc} channel: [rpc] supplies a
      fault-injecting one (deadlines, retries, hedging — its plan decides
      which messages are lost or delayed); by default a private zero-plan
      channel over [network] is built, which degenerates byte-for-byte to
      direct accounting.  A custom [rpc] should be created over the same
      network, resolver and hop-charging flag.

      [replication] (default 1) is the number of replica nodes every entry
      is written to (the primary and its ring successors); [liveness]
      (default: a private all-alive set) is the shared alive-set a churn
      driver flips; [clock] (default: constantly [0.0]) supplies virtual
      time; [ttl] (default [infinity]) is the soft-state lifetime stamped
      on every published entry.

      Passing [read_quorum] or [write_quorum] turns the Dynamo-style
      quorum machinery on (see [quorum_enabled]): every lookup step
      consults live replicas until [read_quorum] (default 1) non-empty
      answers arrive, reconciles them by version vector, read-repairs
      the diverged consulted replicas, and — with [metrics] — counts
      reads, stale reads and read repairs under [p2pindex_quorum_*];
      every write counts its live-replica acknowledgements against
      [write_quorum] (default [replication]).  Without either parameter
      nothing quorum-related is registered or billed and lookups take
      the historical first-live-replica path, byte for byte.

      With [metrics], every lookup step bumps
      [p2pindex_index_lookup_steps_total] (labelled by outcome), the
      [p2pindex_index_route_hops] histogram and the
      [p2pindex_index_lookup_retries] histogram (replica-list attempts
      beyond the first), and every search observes its interaction count
      and result-set size.  With [tracer], every lookup step appends an
      {!Obs.Trace.span} to the open trace.
      @raise Invalid_argument when [replication < 1] or [liveness] covers
      a different node count than the resolver. *)

  val resolver : t -> Dht.Resolver.t

  val rpc : t -> Dht.Rpc.t
  (** The messaging channel every lookup and publication goes through. *)

  val replication : t -> int

  val read_quorum : t -> int
  val write_quorum : t -> int

  val quorum_enabled : t -> bool
  (** Whether a quorum parameter was passed at [create] time — the
      switch between the quorum read path and the historical
      first-live-replica path. *)

  val liveness : t -> Dht.Liveness.t
  (** The shared alive-set: fail/revive nodes here and every lookup sees
      it.  After an abrupt failure, also call {!drop_node_state}. *)

  val metrics : t -> Obs.Metrics.t option
  val tracer : t -> Obs.Trace.t option
  (** The observability hooks passed at {!create} time, so layers above
      (sessions, the simulation runner) can join the same trace stream. *)

  val key_of_query : query -> Key.t
  (** [h(q)]: the DHT key of a query's canonical string. *)

  val node_of_query : t -> query -> int
  (** The primary responsible node, dead or alive. *)

  val live_node_of_query : t -> query -> int option
  (** The acting responsible node: the first live replica, if any. *)

  val node_of_string : t -> string -> int
  (** {!node_of_query} for an already-rendered query string, so hot
      paths that hold the rendering never re-render. *)

  val live_node_of_string : t -> string -> int
  (** {!live_node_of_query} for an already-rendered query string,
      without the option: the acting responsible node's index, or [-1]
      when the whole replica set is dead. *)

  exception Covering_violation of { parent : string; child : string }
  (** Raised when trying to register a mapping whose parent does not cover
      its child — the property that makes the system "resilient to arbitrary
      linking" (Section IV-D). *)

  val insert_mapping : t -> parent:query -> child:query -> bool
  (** Register [(parent ; child)] at the nodes responsible for [h(parent)].
      Returns false when the mapping already existed (its TTL is refreshed).
      @raise Covering_violation if [covers parent child] does not hold. *)

  val remove_mapping : t -> parent:query -> child:query -> bool
  (** Returns whether the mapping was present. *)

  val store_file : t -> msd:query -> file -> unit
  (** Store the file payload at the nodes responsible for its most specific
      descriptor. *)

  val publish : t -> scheme:query Scheme.t -> msd:query -> file -> unit
  (** Store the file and install every index entry the scheme derives from
      its descriptor. *)

  val republish : t -> scheme:query Scheme.t -> msd:query -> file -> unit
  (** Soft-state refresh: re-send every entry {!publish} would install,
      stamping fresh TTLs, restoring lost copies, and billing the full
      round as maintenance traffic whether or not receivers already held
      the entries. *)

  val repair : t -> int
  (** Full-state repair pass over both stores: re-home entries onto live
      replicas that lost them (billing each copied entry as maintenance);
      returns the number of entries re-homed.  Tombstone-aware: a
      replica whose empty state postdates the source's copy is left
      alone. *)

  val anti_entropy : t -> int
  (** Digest-based divergence repair over both stores
      ({!Storage.Anti_entropy}): replica pairs exchange per-range SHA-1
      digests (billed as maintenance) and ship only the diverged keys'
      entries.  Returns the number of entries shipped; with quorum
      metrics on, the [p2pindex_antientropy_*] counters record digest
      vs shipped vs would-be full-state bytes. *)

  val drop_node_state : t -> int -> unit
  (** Forget every mapping and file a node held — an abrupt, crash-stop
      failure.  The caller flips the node in {!liveness}. *)

  val unpublish : t -> scheme:query Scheme.t -> msd:query -> unit
  (** Delete the file and clean up: mappings whose child no longer leads
      anywhere are removed, recursively (Section IV-C). *)

  type step =
    | File of file  (** The query was a most specific descriptor. *)
    | Children of query list  (** More specific queries, covered by the input. *)
    | Not_indexed  (** No entry anywhere for this query. *)

  val lookup_step : t -> query -> step
  (** One user-system interaction: contact the node responsible for the
      query and return what it knows.  When that node is dead or answers
      empty, retry down the replica list (each attempt billed as a
      request) before giving up — at most [replication] probes. *)

  val lookup_step_rendered : t -> rendered:string -> query -> step
  (** {!lookup_step} when the caller already rendered the query:
      [rendered] must be [Q.to_string q].  The session walk renders each
      hop once and threads the string here. *)

  val mapping_children : t -> query -> query list
  (** The children registered under a query, without traffic accounting
      (inspection only). *)

  val search : ?interactions:int ref -> ?max_results:int -> t -> query -> (query * file) list
  (** Automated lookup: recursively explore the index from the query and
      return every reachable file with its descriptor.  Every
      {!lookup_step} performed increments [interactions]. *)

  val search_with_generalization :
    ?interactions:int ref ->
    ?max_results:int ->
    ?generalization_budget:int ->
    t ->
    query ->
    (query * file) list
  (** Like {!search}, but when the query is not indexed, generalize it
      (breadth-first over [Q.generalizations], at most
      [generalization_budget] probes, default 64) until an indexed query is
      found, then specialize back down — following only children compatible
      with the original query — and keep the files it covers. *)

  val mapping_count : t -> int
  val index_key_count : t -> int

  val iter_mappings : t -> (parent_key:Hashing.Key.t -> query -> unit) -> unit
  (** Visit every registered mapping (for audits and invariant checks):
      the DHT key it is filed under and the child query it maps to. *)

  val index_bytes : t -> int
  (** Storage footprint of all index entries under the wire model. *)

  val keys_per_node : t -> int array
  (** Distinct keys (index keys and stored files) physically held per
      node — replicas included. *)

  val entries_per_node : t -> int array
  (** Registered entries (index mappings plus stored files) per node — the
      "regular keys per node" measure of Section V-f, where every
      registration under a key counts. *)

  val file_count : t -> int
  val file_bytes : t -> int
  val files_per_node : t -> int array
end

module Make (Q : Query_sig.QUERY) : S with type query = Q.t = struct
  type query = Q.t

  type file = Storage.Block_store.file

  module Rstore = Storage.Replicated_store

  (* Registry instruments, prefetched at creation so the lookup hot path
     pays no hashtable lookups. *)
  type instruments = {
    steps_msd : Obs.Metrics.Counter.t;
    steps_refined : Obs.Metrics.Counter.t;
    steps_generalized : Obs.Metrics.Counter.t;
    steps_not_found : Obs.Metrics.Counter.t;
    route_hops : Obs.Metrics.Histogram.t;
    lookup_retries : Obs.Metrics.Histogram.t;
    interactions_per_query : Obs.Metrics.Histogram.t;
    result_set_size : Obs.Metrics.Histogram.t;
  }

  (* Consistency accounting, registered only when a quorum parameter was
     passed at creation — inactive indexes keep their metric snapshots
     byte-identical to the pre-quorum ones. *)
  type quorum_instruments = {
    q_reads : Obs.Metrics.Counter.t;
    q_stale_reads : Obs.Metrics.Counter.t;
    q_read_repairs : Obs.Metrics.Counter.t;
    q_writes : Obs.Metrics.Counter.t;
    q_write_failures : Obs.Metrics.Counter.t;
    ae_rounds : Obs.Metrics.Counter.t;
    ae_exchanges : Obs.Metrics.Counter.t;
    ae_digest_bytes : Obs.Metrics.Counter.t;
    ae_shipped_entries : Obs.Metrics.Counter.t;
    ae_shipped_bytes : Obs.Metrics.Counter.t;
    ae_full_state_bytes : Obs.Metrics.Counter.t;
  }

  type t = {
    resolver : Dht.Resolver.t;
    rpc : Dht.Rpc.t;
    liveness : Dht.Liveness.t;
    clock : unit -> float;
    ttl : float;
    quorum_enabled : bool;
    mappings : Q.t Rstore.t;
    files : file Rstore.t;
    key_cache : (string, Key.t) Hashtbl.t;
        (* Hashing a query is hot; memoize canonical-string -> key. *)
    metrics : Obs.Metrics.t option;
    instruments : instruments option;
    quorum_instruments : quorum_instruments option;
    tracer : Obs.Trace.t option;
  }

  let make_instruments registry =
    let step outcome =
      Obs.Metrics.counter registry
        ~help:"Lookup steps performed, by what the responsible node answered"
        ~labels:[ ("outcome", Obs.Trace.outcome_label outcome) ]
        "p2pindex_index_lookup_steps_total"
    in
    {
      steps_msd = step Obs.Trace.Msd_reached;
      steps_refined = step Obs.Trace.Refined;
      steps_generalized = step Obs.Trace.Generalized;
      steps_not_found = step Obs.Trace.Not_found;
      route_hops =
        Obs.Metrics.histogram registry
          ~help:"Substrate route hops per lookup step"
          ~buckets:(Obs.Metrics.exponential_buckets ~start:1.0 ~factor:2.0 ~count:8)
          "p2pindex_index_route_hops";
      lookup_retries =
        Obs.Metrics.histogram registry
          ~help:"Replica-list attempts beyond the first, per lookup step"
          ~buckets:(Obs.Metrics.linear_buckets ~start:0.0 ~step:1.0 ~count:8)
          "p2pindex_index_lookup_retries";
      interactions_per_query =
        Obs.Metrics.histogram registry
          ~help:"User-system interactions per automated search"
          "p2pindex_index_interactions_per_query";
      result_set_size =
        Obs.Metrics.histogram registry
          ~help:"Files returned per automated search"
          "p2pindex_index_result_set_size";
    }

  let make_quorum_instruments registry =
    let c help name = Obs.Metrics.counter registry ~help name in
    {
      q_reads = c "Quorum lookup steps performed" "p2pindex_quorum_reads_total";
      q_stale_reads =
        c "Quorum reads whose merged answer missed newer live-replica state"
          "p2pindex_quorum_stale_reads_total";
      q_read_repairs =
        c "Consulted replicas overwritten by read repair"
          "p2pindex_quorum_read_repairs_total";
      q_writes = c "Coordinated writes" "p2pindex_quorum_writes_total";
      q_write_failures =
        c "Writes acknowledged by fewer than write_quorum live replicas"
          "p2pindex_quorum_write_failures_total";
      ae_rounds = c "Anti-entropy passes run" "p2pindex_antientropy_rounds_total";
      ae_exchanges =
        c "Anti-entropy digest push-pulls" "p2pindex_antientropy_exchanges_total";
      ae_digest_bytes =
        c "Bytes spent on anti-entropy digest messages"
          "p2pindex_antientropy_digest_bytes_total";
      ae_shipped_entries =
        c "Entries shipped to converge diverged keys"
          "p2pindex_antientropy_shipped_entries_total";
      ae_shipped_bytes =
        c "Bytes of entries shipped by anti-entropy"
          "p2pindex_antientropy_shipped_bytes_total";
      ae_full_state_bytes =
        c "Bytes a digestless full-state exchange would have shipped"
          "p2pindex_antientropy_full_state_bytes_total";
    }

  let create ?network ?rpc ?metrics ?tracer ?(charge_route_hops = false)
      ?(replication = 1) ?read_quorum ?write_quorum ?liveness
      ?(clock = fun () -> 0.0) ?(ttl = infinity) ~resolver () =
    if not (ttl > 0.) then invalid_arg "Index.create: ttl must be > 0";
    let liveness =
      match liveness with
      | Some l -> l
      | None -> Dht.Liveness.create ~node_count:(Dht.Resolver.node_count resolver)
    in
    let rpc =
      match rpc with
      | Some r -> r
      | None ->
          (* A private zero-plan channel: transparent accounting, no
             registered metric families, byte-identical to direct sends. *)
          Dht.Rpc.create ?network ~resolver ~charge_route_hops ()
    in
    let quorum_enabled = read_quorum <> None || write_quorum <> None in
    let quorum_instruments =
      if quorum_enabled then Option.map make_quorum_instruments metrics else None
    in
    let on_write_acks =
      Option.map
        (fun qi ~acks ~needed ->
          Obs.Metrics.Counter.incr qi.q_writes;
          if acks < needed then Obs.Metrics.Counter.incr qi.q_write_failures)
        quorum_instruments
    in
    {
      resolver;
      rpc;
      liveness;
      clock;
      ttl;
      quorum_enabled;
      mappings =
        Rstore.create ~resolver ~replication ?read_quorum ?write_quorum
          ?on_write_acks ~liveness ~clock ();
      files =
        Rstore.create ~resolver ~replication ?read_quorum ?write_quorum
          ?on_write_acks ~liveness ~clock ();
      key_cache = Hashtbl.create 4096;
      metrics;
      instruments = Option.map make_instruments metrics;
      quorum_instruments;
      tracer;
    }

  let resolver t = t.resolver
  let rpc t = t.rpc
  let replication t = Rstore.replication t.mappings
  let read_quorum t = Rstore.read_quorum t.mappings
  let write_quorum t = Rstore.write_quorum t.mappings
  let quorum_enabled t = t.quorum_enabled
  let liveness t = t.liveness

  let metrics t = t.metrics
  let tracer t = t.tracer

  let key_of_string_memo t s =
    match Hashtbl.find_opt t.key_cache s with
    | Some key -> key
    | None ->
        let key = Key.of_string s in
        Hashtbl.add t.key_cache s key;
        key

  let key_of_query q = Key.of_string (Q.to_string q)

  let key_of t q = key_of_string_memo t (Q.to_string q)

  let node_of_query t q = Dht.Resolver.responsible t.resolver (key_of t q)

  let live_node_of_query t q = Rstore.live_node t.mappings (key_of t q)

  let[@hot] node_of_string t s =
    Dht.Resolver.responsible t.resolver (key_of_string_memo t s)

  let[@hot] live_node_of_string t s =
    Rstore.live_node_id t.mappings (key_of_string_memo t s)

  (* Expiry stamped on entries written now; infinity when soft state is
     off, so the static path never compares clocks. *)
  let entry_expiry t = if t.ttl = infinity then infinity else t.clock () +. t.ttl

  exception Covering_violation of { parent : string; child : string }

  (* ---------------------------------------------------------------- *)
  (* Traffic helpers: every logical message goes through the RPC
     channel, which bills the network (when one is attached) and — under
     a faulty plan — decides delivery.  Publication and repair writes
     are reliable one-ways: the soft-state design assumes publishers
     reach their replicas, and republish/repair restore anything a
     faulty period loses. *)

  let charge_maintenance t ~dst ~bytes =
    Dht.Rpc.send_oneway t.rpc ~dst ~bytes ~category:Dht.Network.Maintenance
      ~deliver:(fun () -> true)

  (* One maintenance message per live replica of [key] — with replication 1
     and everything alive this is the single primary-bound message the
     static index charged. *)
  let charge_live_replicas t ~key ~bytes =
    List.iter
      (fun dst ->
        if Dht.Liveness.alive t.liveness dst then charge_maintenance t ~dst ~bytes)
      (Rstore.replica_nodes t.mappings key)

  (* ---------------------------------------------------------------- *)
  (* Publication. *)

  let insert_mapping t ~parent ~child =
    if not (Q.covers parent child) then
      raise
        (Covering_violation { parent = Q.to_string parent; child = Q.to_string child });
    let key = key_of t parent in
    let added =
      Rstore.insert_unique ~expires_at:(entry_expiry t) ~equal:Q.equal t.mappings
        ~key child
    in
    if added then
      charge_live_replicas t ~key
        ~bytes:(Wire.cache_install_bytes (Q.to_string parent) (Q.to_string child));
    added

  let remove_mapping t ~parent ~child =
    let key = key_of t parent in
    Rstore.remove t.mappings ~key (Q.equal child) > 0

  let store_file t ~msd file =
    let key = key_of t msd in
    ignore (Rstore.remove_key t.files key);
    Rstore.insert ~expires_at:(entry_expiry t) t.files ~key file;
    charge_live_replicas t ~key ~bytes:(Wire.request_bytes (Q.to_string msd))

  let publish t ~scheme ~msd file =
    store_file t ~msd file;
    List.iter
      (fun { Scheme.parent; child } -> ignore (insert_mapping t ~parent ~child))
      (Scheme.edges scheme msd)

  let republish t ~scheme ~msd file =
    let expires_at = entry_expiry t in
    let file_key = key_of t msd in
    ignore
      (Rstore.insert_unique ~expires_at ~equal:( = ) t.files ~key:file_key file);
    charge_live_replicas t ~key:file_key
      ~bytes:(Wire.request_bytes (Q.to_string msd));
    List.iter
      (fun { Scheme.parent; child } ->
        let key = key_of t parent in
        ignore
          (Rstore.insert_unique ~expires_at ~equal:Q.equal t.mappings ~key child);
        charge_live_replicas t ~key
          ~bytes:(Wire.cache_install_bytes (Q.to_string parent) (Q.to_string child)))
      (Scheme.edges scheme msd)

  let repair t =
    Rstore.repair t.mappings
      ~on_restore:(fun ~node child ->
        charge_maintenance t ~dst:node
          ~bytes:(Wire.stored_entry_bytes (Q.to_string child)))
    + Rstore.repair t.files
        ~on_restore:(fun ~node file ->
          charge_maintenance t ~dst:node ~bytes:(Wire.file_response_bytes file))

  let file_render (file : file) = Printf.sprintf "%s#%d" file.name file.size_bytes

  let anti_entropy t =
    let on_exchange ~peer ~bytes = charge_maintenance t ~dst:peer ~bytes in
    let on_ship ~node ~bytes = charge_maintenance t ~dst:node ~bytes in
    let sm =
      Storage.Anti_entropy.run t.mappings ~render:Q.to_string
        ~entry_bytes:(fun child -> Wire.stored_entry_bytes (Q.to_string child))
        ~on_exchange ~on_ship ()
    in
    let sf =
      Storage.Anti_entropy.run t.files ~render:file_render
        ~entry_bytes:Wire.file_response_bytes ~on_exchange ~on_ship ()
    in
    let s = Storage.Anti_entropy.add sm sf in
    (match t.quorum_instruments with
    | None -> ()
    | Some qi ->
        let add c n = if n > 0 then Obs.Metrics.Counter.incr ~by:n c in
        Obs.Metrics.Counter.incr qi.ae_rounds;
        add qi.ae_exchanges s.Storage.Anti_entropy.exchanges;
        add qi.ae_digest_bytes s.Storage.Anti_entropy.digest_bytes;
        add qi.ae_shipped_entries s.Storage.Anti_entropy.entries_shipped;
        add qi.ae_shipped_bytes s.Storage.Anti_entropy.shipped_bytes;
        add qi.ae_full_state_bytes s.Storage.Anti_entropy.full_state_bytes);
    s.Storage.Anti_entropy.entries_shipped

  let drop_node_state t node =
    Rstore.drop_state t.mappings node;
    Rstore.drop_state t.files node

  (* A query is dead when nothing is reachable from it anymore: no file
     stored under its key and no index children left. *)
  let is_dead t q =
    let key = key_of t q in
    (not (Rstore.mem t.files key)) && Rstore.lookup t.mappings key = []

  let unpublish t ~scheme ~msd =
    ignore (Rstore.remove_key t.files (key_of t msd));
    let edges = Scheme.edges scheme msd in
    (* Remove edges whose child leads nowhere; repeat until a fixpoint so
       chains collapse bottom-up ("recursively delete the references"). *)
    let rec sweep () =
      let changed =
        List.fold_left
          (fun changed { Scheme.parent; child } ->
            if is_dead t child && remove_mapping t ~parent ~child then true else changed)
          false edges
      in
      if changed then sweep ()
    in
    sweep ()

  (* ---------------------------------------------------------------- *)
  (* Lookup. *)

  type step = File of file | Children of query list | Not_indexed

  (* Telemetry for one lookup step.  [hops] is measured only when someone
     is listening; spans carry the same wire-model byte counts the network
     accounting was charged, so trace totals and network totals agree. *)
  let observed t =
    (match t.instruments with Some _ -> true | None -> false)
    || match t.tracer with Some _ -> true | None -> false

  let measured_hops t key =
    if observed t then
      (* lint: allow catch-all-handler — hop telemetry is best-effort; a routing failure here must not fail the lookup *)
      try Dht.Resolver.route_hops t.resolver key with _ -> 0
    else 0

  let record_step t ?request_bytes ~query_string ~dst ~hops ~result_count
      ~response_bytes ~outcome () =
    let request_bytes =
      match request_bytes with
      | Some bytes -> bytes
      | None -> Wire.request_bytes query_string
    in
    (match t.instruments with
    | None -> ()
    | Some ins ->
        let counter =
          match (outcome : Obs.Trace.outcome) with
          | Msd_reached -> ins.steps_msd
          | Refined -> ins.steps_refined
          | Generalized -> ins.steps_generalized
          | Not_found -> ins.steps_not_found
        in
        Obs.Metrics.Counter.incr counter;
        Obs.Metrics.Histogram.observe_int ins.route_hops hops);
    (match t.tracer with
    | None -> ()
    | Some tracer ->
        Obs.Trace.span tracer ~query:query_string ~node:dst ~route_hops:hops
          ~result_count ~request_bytes ~response_bytes ~outcome ());
    if Obs.Log.enabled ~debug:true () then
      (Obs.Log.event ~debug:true "lookup_step"
         [
           ("query", Obs.Json.String query_string);
           ("node", Obs.Json.Int dst);
           ("outcome", Obs.Json.String (Obs.Trace.outcome_label outcome));
           ("results", Obs.Json.Int result_count);
         ]
      [@lint.allow "P3 — debug-gated log fields: the tuples exist only when --debug tracing is on"])

  let observe_retries t ~attempts =
    match t.instruments with
    | None -> ()
    | Some ins -> Obs.Metrics.Histogram.observe_int ins.lookup_retries (attempts - 1)

  (* What the replica answers over the wire, paired with its billed
     response size. *)
  type answer = A_file of file | A_children of query list | A_empty

  (* One user-system interaction, failure-tolerant: walk the replica list
     in order, one RPC call per replica.  A dead replica costs the
     request (timeout) and nothing else; a live replica that knows
     nothing answers empty and the walk moves on; the first live replica
     with an entry answers.  Bounded by the replication factor.  Under a
     fault plan each call additionally retries lost messages with
     backoff and may hedge to the next replica; with the zero plan and
     the node alive this is exactly the static single-probe lookup. *)
  let[@hot] lookup_step_plain t ~generalization ~query_string =
    let key = key_of_string_memo t query_string in
    let replicas = Rstore.replica_buf t.mappings key in
    let primary = Stdx.Arena.Int_buf.get replicas 0 in
    let request_bytes = Wire.request_bytes query_string in
    (* The remote side of the call: runs once per delivered request
       copy, so it must be (and is) a read-only probe. *)
    (* lint: allow P1 — RPC handler contract: Rpc.call takes a callback; one handler per lookup step *)
    let handler ~node =
      if not (Dht.Liveness.alive t.liveness node) then Dht.Rpc.No_response
      else
        match Rstore.lookup_at t.files ~node key with
        | file :: _ ->
            Dht.Rpc.Reply
              { bytes = Wire.file_response_bytes file; value = A_file file }
        | [] -> (
            match Rstore.lookup_at t.mappings ~node key with
            | [] -> Dht.Rpc.Reply { bytes = Wire.response_bytes []; value = A_empty }
            | children ->
                (* lint: allow P4 — wire serialization: the reply materializes its entry strings once per answered probe *)
                let entries = List.map Q.to_string children in
                Dht.Rpc.Reply
                  { bytes = Wire.response_bytes entries; value = A_children children })
    in
    (* lint: allow P1 — replica-walk contract: walk_replicas takes the probe as a callback; one closure per lookup step *)
    let probe ~node ~next =
      (* Hedge to the next replica in placement order ([next] is [-1] on
         the last replica): it holds the same data, so its answer is as
         authoritative as the primary's. *)
      let hedge_dst = if next >= 0 then Some next else None in
      match
        Dht.Rpc.call t.rpc ~dst:node ?hedge_dst ~route_key:key ~request_bytes
          ~handler ()
      with
      | Dht.Rpc.Exhausted -> None
      | Dht.Rpc.Answered { value; node = responder } -> (
          match value with
          | A_file file ->
              if observed t then
                record_step t ~query_string ~dst:responder
                  ~hops:(measured_hops t key) ~result_count:1
                  ~response_bytes:(Wire.file_response_bytes file)
                  ~outcome:Obs.Trace.Msd_reached ();
              Some (File file)
          | A_children children ->
              if observed t then
                record_step t ~query_string ~dst:responder
                  ~hops:(measured_hops t key)
                  ~result_count:(List.length children)
                  (* lint: allow P4 — telemetry only: re-deriving the billed response size runs under [observed] *)
                  ~response_bytes:(Wire.response_bytes (List.map Q.to_string children))
                  ~outcome:
                    (if generalization then Obs.Trace.Generalized
                     else Obs.Trace.Refined)
                  ();
              Some (Children children)
          | A_empty ->
              if next < 0 then begin
                if observed t then
                  record_step t ~query_string ~dst:responder
                    ~hops:(measured_hops t key) ~result_count:0
                    ~response_bytes:(Wire.response_bytes [])
                    ~outcome:Obs.Trace.Not_found ();
                Some Not_indexed
              end
              else
                (* This replica may have rejoined after losing the entry;
                   a later replica can still hold it. *)
                None)
    in
    match Dht.Rpc.walk_replicas_buf ~replicas ~probe with
    | Some step, attempts ->
        observe_retries t ~attempts;
        step
    | None, attempts ->
        (* Every replica dead or unreachable: requests were paid, nobody
           answered. *)
        if observed t then
          record_step t ~query_string ~dst:primary ~hops:(measured_hops t key)
            ~result_count:0 ~response_bytes:0 ~outcome:Obs.Trace.Not_found ();
        observe_retries t ~attempts;
        Not_indexed

  (* Quorum lookup: walk the replica list like the plain path, but keep
     probing until [read_quorum] live replicas answered non-empty — an
     empty answer is still consulted (the replica may have rejoined
     after losing the entry and joins the reconcile) but does not count
     toward R.  The consulted states are then reconciled by version
     vector: dominance decides, diverged replicas are overwritten (read
     repair, billed as maintenance) and the merged state is the answer.
     Quorum responses carry their replica's version vectors on the wire
     ({!Wire.version_bytes}); the plain path bills nothing extra. *)
  let lookup_step_quorum t ~generalization ~query_string =
    let key = key_of_string_memo t query_string in
    let replicas = Rstore.replica_nodes t.mappings key in
    let primary = List.hd replicas in
    let request_bytes = Wire.request_bytes query_string in
    let r_needed = Rstore.read_quorum t.mappings in
    (* One replica's billed answer: its entry state plus the version
       vectors it carries on the wire.  Shared by the RPC handler and
       the walk's span accounting, so the step's span carries exactly
       the bytes the network was charged. *)
    let probe_state ~node =
      let version_bytes =
        Wire.version_bytes
          (Storage.Version.dots (Rstore.version_at t.files ~node key)
          + Storage.Version.dots (Rstore.version_at t.mappings ~node key))
      in
      match Rstore.lookup_at t.files ~node key with
      | file :: _ -> (Wire.file_response_bytes file + version_bytes, A_file file)
      | [] -> (
          match Rstore.lookup_at t.mappings ~node key with
          | [] -> (Wire.response_bytes [] + version_bytes, A_empty)
          | children ->
              let entries = List.map Q.to_string children in
              (Wire.response_bytes entries + version_bytes, A_children children))
    in
    let handler ~node =
      if not (Dht.Liveness.alive t.liveness node) then Dht.Rpc.No_response
      else
        let bytes, value = probe_state ~node in
        Dht.Rpc.Reply { bytes; value }
    in
    (* Consult replicas in placement order; a hedged answer may arrive
       from a later replica, which is then skipped when its turn comes.
       [resp_bytes] accumulates every consulted answer's billed bytes:
       unlike the plain path's single-exchange steps, a quorum step is
       one span covering the whole walk (the prefix scheme's
       covering-set spans set the precedent), so trace byte totals and
       network totals still agree. *)
    (* Monomorphic membership: [List.mem] would compare node ids with the
       polymorphic runtime equality. *)
    let rec already_consulted node = function
      | [] -> false
      | r :: rest -> Int.equal r node || already_consulted node rest
    in
    let rec walk responders first_nonempty nonempty attempts resp_bytes =
      function
      | [] -> (List.rev responders, first_nonempty, attempts, resp_bytes)
      | _ when nonempty >= r_needed ->
          (List.rev responders, first_nonempty, attempts, resp_bytes)
      | node :: rest ->
          if already_consulted node responders then
            walk responders first_nonempty nonempty attempts resp_bytes rest
          else begin
            let hedge_dst = match rest with next :: _ -> Some next | [] -> None in
            match
              Dht.Rpc.call t.rpc ~dst:node ?hedge_dst ~route_key:key ~request_bytes
                ~handler ()
            with
            | Dht.Rpc.Exhausted ->
                walk responders first_nonempty nonempty (attempts + 1) resp_bytes
                  rest
            | Dht.Rpc.Answered { value; node = responder } ->
                let resp_bytes =
                  resp_bytes + fst (probe_state ~node:responder)
                in
                let nonempty, first_nonempty =
                  match value with
                  | A_empty -> (nonempty, first_nonempty)
                  | A_file _ | A_children _ ->
                      ( nonempty + 1,
                        (match first_nonempty with
                        | Some _ as fn -> fn
                        | None -> Some responder) )
                in
                walk (responder :: responders) first_nonempty nonempty (attempts + 1)
                  resp_bytes rest
          end
    in
    let responders, first_nonempty, attempts, resp_bytes =
      walk [] None 0 0 0 replicas
    in
    observe_retries t ~attempts;
    (match t.quorum_instruments with
    | None -> ()
    | Some qi -> Obs.Metrics.Counter.incr qi.q_reads);
    match responders with
    | [] ->
        (* Every replica dead or unreachable: requests were paid, nobody
           answered. *)
        if observed t then
          record_step t ~request_bytes:(attempts * request_bytes) ~query_string
            ~dst:primary ~hops:(measured_hops t key) ~result_count:0
            ~response_bytes:0 ~outcome:Obs.Trace.Not_found ();
        Not_indexed
    | first :: _ ->
        let files, vf, repairs_f =
          Rstore.quorum_read t.files ~key ~nodes:responders
        in
        let children, vm, repairs_m =
          Rstore.quorum_read t.mappings ~key ~nodes:responders
        in
        List.iter
          (fun (node, gained) ->
            List.iter
              (fun file ->
                charge_maintenance t ~dst:node
                  ~bytes:(Wire.file_response_bytes file))
              gained)
          repairs_f;
        List.iter
          (fun (node, gained) ->
            List.iter
              (fun child ->
                charge_maintenance t ~dst:node
                  ~bytes:(Wire.stored_entry_bytes (Q.to_string child)))
              gained)
          repairs_m;
        (match t.quorum_instruments with
        | None -> ()
        | Some qi ->
            let repaired = List.length repairs_f + List.length repairs_m in
            if repaired > 0 then
              Obs.Metrics.Counter.incr ~by:repaired qi.q_read_repairs;
            (* Stale iff a read of every live replica would have seen a
               strictly newer history than this quorum did (oracle view,
               no messaging). *)
            let stale =
              Storage.Version.compare vf (Rstore.live_merged_version t.files key)
              = Storage.Version.Dominated
              || Storage.Version.compare vm
                   (Rstore.live_merged_version t.mappings key)
                 = Storage.Version.Dominated
            in
            if stale then Obs.Metrics.Counter.incr qi.q_stale_reads);
        let step, result_count, outcome =
          match files with
          | file :: _ -> (File file, 1, Obs.Trace.Msd_reached)
          | [] -> (
              match children with
              | [] -> (Not_indexed, 0, Obs.Trace.Not_found)
              | cs ->
                  ( Children cs,
                    List.length cs,
                    if generalization then Obs.Trace.Generalized
                    else Obs.Trace.Refined ))
        in
        if observed t then
          record_step t ~request_bytes:(attempts * request_bytes) ~query_string
            ~dst:(Option.value first_nonempty ~default:first)
            ~hops:(measured_hops t key) ~result_count ~response_bytes:resp_bytes
            ~outcome ();
        step

  (* Not marked [@hot] despite sitting on the walk's probe path: hotness
     would propagate into the quorum branch, whose reconcile is
     deliberately list-shaped.  The plain branch carries its own
     annotation. *)
  let lookup_step_rendered_at t ~generalization ~rendered =
    if t.quorum_enabled then
      lookup_step_quorum t ~generalization ~query_string:rendered
    else lookup_step_plain t ~generalization ~query_string:rendered

  let lookup_step_at t ~generalization q =
    lookup_step_rendered_at t ~generalization ~rendered:(Q.to_string q)

  let lookup_step_rendered t ~rendered (_ : Q.t) =
    lookup_step_rendered_at t ~generalization:false ~rendered

  let lookup_step t q = lookup_step_at t ~generalization:false q

  let mapping_children t q = Rstore.lookup t.mappings (key_of t q)

  (* ---------------------------------------------------------------- *)
  (* Automated search: drive the resumable {!Lookup} machines to
     completion, answering every probe synchronously.  The machines
     reproduce the historical recursive searches step for step; this
     module only supplies the probe loop. *)

  module Lookup_m = Lookup.Make (Q)

  let count interactions = match interactions with None -> () | Some r -> incr r

  let answer_of_step : step -> Lookup_m.answer = function
    | File file -> Lookup_m.File file
    | Children children -> Lookup_m.Children children
    | Not_indexed -> Lookup_m.Not_indexed

  let drive interactions t machine =
    let step ~generalization q =
      count interactions;
      answer_of_step (lookup_step_at t ~generalization q)
    in
    (Lookup_m.drive ~step machine).Lookup_m.files

  (* Per-query histograms: run the search with a private interaction
     counter, observe it and the result-set size, then credit the caller's
     counter as before. *)
  let with_query_instruments t interactions f =
    match t.instruments with
    | None -> f interactions
    | Some ins ->
        let local = ref 0 in
        let results = f (Some local) in
        (match interactions with Some r -> r := !r + !local | None -> ());
        Obs.Metrics.Histogram.observe_int ins.interactions_per_query !local;
        Obs.Metrics.Histogram.observe_int ins.result_set_size (List.length results);
        results

  let search ?interactions ?max_results t q =
    with_query_instruments t interactions (fun interactions ->
        drive interactions t (Lookup_m.search ?max_results q))

  let search_with_generalization ?interactions ?max_results ?generalization_budget
      t q =
    with_query_instruments t interactions (fun interactions ->
        drive interactions t
          (Lookup_m.search_with_generalization ?max_results
             ?generalization_budget q))

  (* ---------------------------------------------------------------- *)
  (* Introspection. *)

  let mapping_count t = Rstore.entry_count t.mappings
  let index_key_count t = Rstore.key_count t.mappings

  let iter_mappings t f =
    Rstore.fold t.mappings ~init:() ~f:(fun () key children ->
        List.iter (fun child -> f ~parent_key:key child) children)

  let index_bytes t =
    Rstore.fold t.mappings ~init:0 ~f:(fun acc _key children ->
        List.fold_left
          (fun acc child -> acc + Wire.stored_entry_bytes (Q.to_string child))
          acc children)

  let keys_per_node t =
    let index_keys = Rstore.keys_per_node t.mappings in
    let file_keys = Rstore.keys_per_node t.files in
    Array.mapi (fun i n -> n + file_keys.(i)) index_keys

  let entries_per_node t =
    let index_entries = Rstore.entries_per_node t.mappings in
    let file_keys = Rstore.keys_per_node t.files in
    Array.mapi (fun i n -> n + file_keys.(i)) index_entries

  let file_count t = Rstore.key_count t.files

  let file_bytes t =
    Rstore.fold t.files ~init:0 ~f:(fun acc _key files ->
        List.fold_left (fun acc (file : file) -> acc + file.size_bytes) acc files)

  let files_per_node t = Rstore.keys_per_node t.files
end

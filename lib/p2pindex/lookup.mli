(** Resumable lookup machines (Section IV-B as a state machine).

    A lookup is a value: [Pending] local work between probes, [Need_step]
    — the machine wants one user-system interaction answered — or [Done].
    The machine performs no I/O itself; whoever holds it decides when and
    how each probe is answered.  {!Index.S.search} and
    {!Index.S.search_with_generalization} drive these machines to
    completion synchronously (step-for-step equal to the historical
    recursive searches), {!Session} drives {!Make.probe} machines, and
    [Sim.Engine] interleaves many machines on a virtual clock, parking
    each at its [Need_step] while the simulated RPC is in flight.

    Machines thread a {!Make.progress} cursor: interactions performed and
    the wire bill — what the probes cost under the {!Wire} model (one
    request per probe plus the estimated response for each answer fed
    back).  On a fault-free replication-1 index with every node alive the
    bill equals the bytes actually charged to the network. *)

module Make (Q : Query_sig.QUERY) : sig
  type query = Q.t

  type file = Storage.Block_store.file

  type answer = File of file | Children of query list | Not_indexed
  (** What the responsible node answered — mirrors {!Index.S.step}, but
      belongs to the machine so [Lookup] does not depend on [Index]. *)

  type progress = { interactions : int; wire_bill : int }
  (** [interactions] counts probes emitted so far; [wire_bill] the bytes
      they cost under {!Wire} (requests up front, responses as fed). *)

  type results = {
    files : (query * file) list;  (** In discovery order. *)
    interactions : int;
    wire_bill : int;
    last : answer option;
        (** The final probe's answer for single-probe machines
            ({!probe}); [None] for search machines. *)
  }

  type t = Pending of resume | Need_step of query * k | Done of results

  and resume = { progress : progress; run : unit -> t }
  (** Local work (frontier bookkeeping): free to run, no I/O. *)

  and k = { generalization : bool; billed : progress; feed : answer -> t }
  (** A suspended probe of the query carried by [Need_step]:
      [generalization] tells the driver which outcome label the step
      should record (matching [Index.lookup_step]'s internal flag);
      [progress] already bills this probe's request; [feed] resumes the
      machine with the answer. *)

  val search : ?max_results:int -> query -> t
  (** The machine behind {!Index.S.search}: breadth-first expansion of
      the query DAG from [query], collecting every file reached. *)

  val search_with_generalization :
    ?max_results:int -> ?generalization_budget:int -> query -> t
  (** The machine behind {!Index.S.search_with_generalization}:
      like {!search}, but a not-indexed root generalizes breadth-first
      (at most [generalization_budget] probes, default 64) until an
      indexed query is found, then specializes back down, keeping only
      files the original query covers. *)

  val probe : query -> t
  (** A single-interaction machine: one [Need_step], then [Done] with
      [last = Some answer] (and the file as its sole result when the
      query was a descriptor).  {!Session} builds its positions from
      this. *)

  val progress : t -> progress
  (** The cursor at any state — interactions and bytes committed so far. *)

  val response_estimate : answer -> int
  (** The {!Wire} response size billed when this answer is fed. *)

  val drive : step:(generalization:bool -> query -> answer) -> t -> results
  (** Run a machine to completion, answering every [Need_step] with
      [step] — the synchronous driver used by {!Index} and {!Session}. *)
end

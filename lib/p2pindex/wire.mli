(** Wire-format size model.

    The paper measures traffic in bytes per query (Fig. 12) without giving a
    message format, so we fix a simple one and use it consistently: every
    message carries a fixed header (source and destination keys, a type tag
    and a length field) plus its payload.  Queries travel as their canonical
    strings; result sets as length-prefixed lists of strings.  Absolute byte
    counts therefore depend on this model, but ratios between indexing
    schemes — what the paper's figure actually shows — do not. *)

val header_bytes : int
(** Fixed per-message overhead: two 20-byte keys, a 4-byte type tag and a
    4-byte length — 48 bytes. *)

val entry_overhead_bytes : int
(** Per-list-entry framing in a response: a 4-byte length prefix. *)

val request_bytes : string -> int
(** Size of a lookup request carrying one query string. *)

val response_bytes : string list -> int
(** Size of a response carrying a result set of query strings. *)

val file_response_bytes : Storage.Block_store.file -> int
(** Size of a response carrying a file handle (name + size + header).  The
    file content itself is not counted: the paper measures index traffic,
    not download traffic. *)

val cache_install_bytes : string -> string -> int
(** Size of the message installing one shortcut (query ; target) pair. *)

val consult_bytes : string -> int
(** Size of a local cache-consultation ticket: what a coalesced lookup
    pays to ride an identical in-flight probe's response instead of
    issuing its own — the query string plus a header, no response. *)

val stored_entry_bytes : string -> int
(** Storage footprint of one index entry: the 20-byte key it is filed under
    plus its target string. *)

val version_bytes : int -> int
(** Wire size of a piggybacked version vector with the given number of
    dots: a 4-byte count plus 12 bytes (actor + counter) per dot.
    Quorum-path responses carry their replica's vectors; the plain
    first-live-replica path bills nothing extra. *)

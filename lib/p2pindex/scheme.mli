(** Indexing schemes: which query-to-query mappings a file gets.

    An indexing scheme (Section IV-C, Fig. 8) decides, for each descriptor,
    the set of index entries to create: pairs [(parent ; child)] where the
    parent covers the child and following children eventually reaches the
    most specific descriptor.  The choice is application-dependent ("requires
    human input"), so a scheme is simply a named edge generator. *)

type 'q edge = { parent : 'q; child : 'q }
(** One index mapping to install: the node responsible for [h(parent)]
    stores [(parent ; child)]. *)

type 'q t = {
  name : string;
  edges : 'q -> 'q edge list;
      (** All mappings for one descriptor, given its most specific query.
          Every returned edge must satisfy [covers parent child]. *)
}

val make : name:string -> edges:('q -> 'q edge list) -> 'q t

val name : 'q t -> string

val edges : 'q t -> 'q -> 'q edge list
(** The mappings to install for one descriptor. *)

val collection_edges : compare_query:('q -> 'q -> int) -> 'q t -> 'q list -> 'q edge list
(** The edges for a whole collection, deduplicated — shared coarse-level
    entries like [(q6 ; q3)] appear once even when many files induce them. *)

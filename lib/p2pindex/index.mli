(** The distributed query-to-query index (Section IV).

    Indexes are stored in the DHT itself: the node responsible for [h(q)]
    keeps the mappings [(q ; q_i)] with [q ⊒ q_i].  Looking up a query
    returns either the file (when the query is a most specific descriptor),
    the list of more specific queries registered under it, or nothing — in
    which case the generalization/specialization search of Section IV-B can
    still locate matching files at a higher lookup cost.

    Because index entries are regular DHT data (Section IV-D), they ride on
    the substrate's replication: every entry is written to [replication]
    replica nodes, lookups retry down the replica list when the responsible
    node is dead or has lost the mapping, and under churn the entries are
    soft state — TTL-stamped, refreshed by [republish] and re-homed by
    [repair].  With the defaults (replication 1, everything alive,
    infinite TTL) the index behaves exactly as the static version did.

    The module is a functor over the query language; all traffic flows
    through an optional {!Dht.Network.t} so simulations and examples get
    byte-accurate accounting for free. *)

module Key = Hashing.Key

module type S = sig
  type query

  type file = Storage.Block_store.file

  type t

  val create :
    ?network:Dht.Network.t ->
    ?rpc:Dht.Rpc.t ->
    ?metrics:Obs.Metrics.t ->
    ?tracer:Obs.Trace.t ->
    ?charge_route_hops:bool ->
    ?replication:int ->
    ?read_quorum:int ->
    ?write_quorum:int ->
    ?liveness:Dht.Liveness.t ->
    ?clock:(unit -> float) ->
    ?ttl:float ->
    resolver:Dht.Resolver.t ->
    unit ->
    t
  (** [create ~resolver ()] builds an empty index over the given substrate.
      When [network] is set, every lookup and publication is charged to it;
      [charge_route_hops] (default false) additionally bills substrate
      routing hops as maintenance traffic.

      All messaging flows through an {!Dht.Rpc} channel: [rpc] supplies a
      fault-injecting one (deadlines, retries, hedging — its plan decides
      which messages are lost or delayed); by default a private zero-plan
      channel over [network] is built, which degenerates byte-for-byte to
      direct accounting.  A custom [rpc] should be created over the same
      network, resolver and hop-charging flag.

      [replication] (default 1) is the number of replica nodes every entry
      is written to (the primary and its ring successors); [liveness]
      (default: a private all-alive set) is the shared alive-set a churn
      driver flips; [clock] (default: constantly [0.0]) supplies virtual
      time; [ttl] (default [infinity]) is the soft-state lifetime stamped
      on every published entry.

      Passing [read_quorum] or [write_quorum] turns the Dynamo-style
      quorum machinery on (see {!quorum_enabled}): every lookup step
      consults live replicas until [read_quorum] (default 1) non-empty
      answers arrive, reconciles them by version vector, read-repairs
      the diverged consulted replicas, and — with [metrics] — counts
      reads, stale reads (answers a fully-consistent read would have
      improved on) and read repairs under [p2pindex_quorum_*]; every
      write counts its live-replica acknowledgements against
      [write_quorum] (default [replication]).  Without either parameter
      nothing quorum-related is registered or billed and lookups take
      the historical first-live-replica path, byte for byte.

      With [metrics], every lookup step bumps
      [p2pindex_index_lookup_steps_total] (labelled by outcome), the
      [p2pindex_index_route_hops] histogram and the
      [p2pindex_index_lookup_retries] histogram (replica-list attempts
      beyond the first), and every search observes its interaction count
      and result-set size.  With [tracer], every lookup step appends an
      {!Obs.Trace.span} to the open trace.
      @raise Invalid_argument when [replication < 1] or [liveness] covers
      a different node count than the resolver. *)

  val resolver : t -> Dht.Resolver.t

  val rpc : t -> Dht.Rpc.t
  (** The messaging channel every lookup and publication goes through. *)

  val replication : t -> int

  val read_quorum : t -> int
  val write_quorum : t -> int

  val quorum_enabled : t -> bool
  (** Whether a quorum parameter was passed at {!create} time — the
      switch between the quorum read path and the historical
      first-live-replica path. *)

  val liveness : t -> Dht.Liveness.t
  (** The shared alive-set: fail/revive nodes here and every lookup sees
      it.  After an abrupt failure, also call {!drop_node_state}. *)

  val metrics : t -> Obs.Metrics.t option

  val tracer : t -> Obs.Trace.t option
  (** The observability hooks passed at {!create} time, so layers above
      (sessions, the simulation runner) can join the same trace stream. *)

  val key_of_query : query -> Key.t
  (** [h(q)]: the DHT key of a query's canonical string. *)

  val node_of_query : t -> query -> int
  (** The primary responsible node, dead or alive. *)

  val live_node_of_query : t -> query -> int option
  (** The acting responsible node: the first live replica, if any. *)

  val node_of_string : t -> string -> int
  (** {!node_of_query} for an already-rendered query string, so hot
      paths that hold the rendering never re-render. *)

  val live_node_of_string : t -> string -> int
  (** {!live_node_of_query} for an already-rendered query string,
      without the option: the acting responsible node's index, or [-1]
      when the whole replica set is dead. *)

  exception Covering_violation of { parent : string; child : string }
  (** Raised when trying to register a mapping whose parent does not cover
      its child — the property that makes the system "resilient to arbitrary
      linking" (Section IV-D). *)

  val insert_mapping : t -> parent:query -> child:query -> bool
  (** Register [(parent ; child)] at the nodes responsible for [h(parent)].
      Returns false when the mapping already existed (its TTL is refreshed).
      @raise Covering_violation if [covers parent child] does not hold. *)

  val remove_mapping : t -> parent:query -> child:query -> bool
  (** Returns whether the mapping was present. *)

  val store_file : t -> msd:query -> file -> unit
  (** Store the file payload at the nodes responsible for its most specific
      descriptor. *)

  val publish : t -> scheme:query Scheme.t -> msd:query -> file -> unit
  (** Store the file and install every index entry the scheme derives from
      its descriptor. *)

  val republish : t -> scheme:query Scheme.t -> msd:query -> file -> unit
  (** Soft-state refresh: re-send every entry {!publish} would install,
      stamping fresh TTLs, restoring lost copies, and billing the full
      round as maintenance traffic whether or not receivers already held
      the entries. *)

  val repair : t -> int
  (** Full-state repair pass over both stores: re-home entries onto live
      replicas that lost them (billing each copied entry as maintenance);
      returns the number of entries re-homed.  Tombstone-aware: a
      replica whose empty state postdates the source's copy is left
      alone (see {!Storage.Replicated_store.repair}). *)

  val anti_entropy : t -> int
  (** Digest-based divergence repair over both stores
      ({!Storage.Anti_entropy}): replica pairs exchange per-range SHA-1
      digests (billed as maintenance) and ship only the diverged keys'
      entries.  Catches what {!repair} cannot — stale copies on replicas
      that still hold {e something} — and converges removals through the
      tombstones.  Returns the number of entries shipped; with quorum
      metrics on, the [p2pindex_antientropy_*] counters record digest
      vs shipped vs would-be full-state bytes. *)

  val drop_node_state : t -> int -> unit
  (** Forget every mapping and file a node held — an abrupt, crash-stop
      failure.  The caller flips the node in {!liveness}. *)

  val unpublish : t -> scheme:query Scheme.t -> msd:query -> unit
  (** Delete the file and clean up: mappings whose child no longer leads
      anywhere are removed, recursively (Section IV-C). *)

  type step =
    | File of file  (** The query was a most specific descriptor. *)
    | Children of query list  (** More specific queries, covered by the input. *)
    | Not_indexed  (** No entry anywhere for this query. *)

  val lookup_step : t -> query -> step
  (** One user-system interaction: contact the node responsible for the
      query and return what it knows.  When that node is dead or answers
      empty, retry down the replica list (each attempt billed as a
      request) before giving up — at most [replication] probes. *)

  val lookup_step_rendered : t -> rendered:string -> query -> step
  (** {!lookup_step} when the caller already rendered the query:
      [rendered] must be [Q.to_string q].  The session walk renders each
      hop once and threads the string here. *)

  val mapping_children : t -> query -> query list
  (** The children registered under a query, without traffic accounting
      (inspection only). *)

  val search : ?interactions:int ref -> ?max_results:int -> t -> query -> (query * file) list
  (** Automated lookup: recursively explore the index from the query and
      return every reachable file with its descriptor.  Every
      {!lookup_step} performed increments [interactions]. *)

  val search_with_generalization :
    ?interactions:int ref ->
    ?max_results:int ->
    ?generalization_budget:int ->
    t ->
    query ->
    (query * file) list
  (** Like {!search}, but when the query is not indexed, generalize it
      (breadth-first over [Q.generalizations], at most
      [generalization_budget] probes, default 64) until an indexed query is
      found, then specialize back down — following only children compatible
      with the original query — and keep the files it covers. *)

  val mapping_count : t -> int
  val index_key_count : t -> int

  val iter_mappings : t -> (parent_key:Hashing.Key.t -> query -> unit) -> unit
  (** Visit every registered mapping (for audits and invariant checks):
      the DHT key it is filed under and the child query it maps to. *)

  val index_bytes : t -> int
  (** Storage footprint of all index entries under the wire model. *)

  val keys_per_node : t -> int array
  (** Distinct keys (index keys and stored files) physically held per
      node — replicas included. *)

  val entries_per_node : t -> int array
  (** Registered entries (index mappings plus stored files) per node — the
      "regular keys per node" measure of Section V-f, where every
      registration under a key counts. *)

  val file_count : t -> int
  val file_bytes : t -> int
  val files_per_node : t -> int array
end

module Make (Q : Query_sig.QUERY) : S with type query = Q.t

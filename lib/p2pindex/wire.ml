let header_bytes = 48

let entry_overhead_bytes = 4

let request_bytes q = header_bytes + String.length q

let response_bytes entries =
  header_bytes
  + List.fold_left
      (fun acc entry -> acc + entry_overhead_bytes + String.length entry)
      0 entries

let file_response_bytes (file : Storage.Block_store.file) =
  header_bytes + entry_overhead_bytes + String.length file.name + 8

let cache_install_bytes query target =
  header_bytes + (2 * entry_overhead_bytes) + String.length query + String.length target

let consult_bytes q = header_bytes + String.length q

let stored_entry_bytes target = 20 + String.length target

(* A piggybacked version vector: a dot count plus (actor, counter)
   pairs.  Billed only on quorum-path responses. *)
let version_bytes dots = 4 + (12 * dots)

(** Interactive search sessions (Section IV-B).

    "The lookup process can be interactive, i.e., the user directs the
    search and restricts its query at each step, or automated."  A session
    is the interactive mode: a cursor over the query-refinement graph that
    remembers where it has been, so a user interface can present the result
    set, descend into one of the more specific queries, back out, and keep
    every file discovered along the way. *)

module Make (Q : Query_sig.QUERY) (I : Index.S with type query = Q.t) : sig
  type position = {
    query : Q.t;
    options : Q.t list;  (** More specific queries offered at this step. *)
    file : I.file option;  (** Set when the query was a descriptor. *)
  }

  type t

  val start : I.t -> Q.t -> t
  (** Open a session at the given query: probes it once and seeds the trail.
      When the index carries a tracer, a trace rooted at the query is opened
      so the session's probes group under it. *)

  val finish : t -> unit
  (** Close the session's trace (a no-op without a tracer or when another
      session has already taken over the collector). *)

  val probe : t -> Q.t -> position
  (** One billed lookup step, recording any file discovered.  Exposed for
      drivers that manage their own trail. *)

  val current : t -> position
  (** The position the cursor is at (the trail is never empty). *)

  val options : t -> Q.t list
  (** The refinement choices offered at the current position. *)

  val file : t -> I.file option

  val at_dead_end : t -> bool
  (** No options and no file at the current position. *)

  val interactions : t -> int
  (** Billed user-system interactions so far. *)

  val discovered : t -> (Q.t * I.file) list
  (** Every file seen during the session, latest first, deduplicated. *)

  val depth : t -> int
  (** Trail length (1 right after {!start}). *)

  exception No_such_option

  val refine : t -> Q.t -> position
  (** Descend into one of the current options.
      @raise No_such_option when the query is not among them. *)

  val refine_nth : t -> int -> position
  (** Descend into the nth option (0-based).
      @raise No_such_option when out of range. *)

  val back : t -> position option
  (** Pop the trail: return to (and report) the previous position, or
      [None] when already at the session root. *)

  val trail : t -> Q.t list
  (** The queries visited, session root first. *)

  val explore_all : t -> (Q.t * I.file) list
  (** Expand every remaining option below the current position (switching to
      the automated mode mid-session); returns the files found. *)
end

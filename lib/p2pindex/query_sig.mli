(** The query abstraction the distributed index is parameterized over.

    The index layer (Section IV) never inspects query internals: it only
    needs a canonical string (to derive the DHT key and account wire bytes),
    the covering relation, a compatibility test for pruning during
    generalization/specialization, and a generalization step.  Any module
    satisfying [QUERY] — the generic XPath instance, the bibliographic field
    queries, or an application's own query language — can be indexed. *)

module type QUERY = sig
  type t

  val equal : t -> t -> bool

  val compare : t -> t -> int
  (** Total order consistent with {!equal} (canonical forms compare equal
      iff equivalent). *)

  val to_string : t -> string
  (** Canonical rendering: injective on normalized queries.  [to_string q]
      is the string hashed into the DHT key space ([k = h(q)]) and its
      length is the wire size of [q]. *)

  val pp : Format.formatter -> t -> unit

  val covers : t -> t -> bool
  (** [covers q' q] is the paper's [q' ⊒ q]: every descriptor matching [q]
      also matches [q'].  Must be reflexive and transitive. *)

  val compatible : t -> t -> bool
  (** [compatible a b] may be [false] only when no descriptor can match both
      [a] and [b]; returning [true] is always sound (the search just prunes
      less).  Used to direct specialization after a generalization step. *)

  val generalizations : t -> t list
  (** Immediate generalizations of a query — each result must cover the
      input.  Must eventually reach queries general enough to be indexed (or
      run out, ending the generalization search). *)
end

(** The typed lint pass: runs the P-series rules ({!Typed_rules}) over
    the [.cmt] files dune emits under [_build].

    Discovery is deterministic: every [*.cmt] under the given directories
    is loaded in sorted path order, mapped back to its source via
    [cmt_sourcefile] (dune compiles from the project root, so these are
    already root-relative), and deduplicated first-wins.  Alias stubs
    ([.ml-gen]), interfaces, sources missing on disk and unreadable cmts
    are skipped silently — the syntactic pass owns per-file frontend
    errors.  Run [dune build \@check] first so executables' cmts exist
    too.

    Suppressions reuse the exact {!Suppress} forms of the syntactic pass
    ([(* lint: allow P2 — why *)] comments and [[\@lint.allow]]
    attributes); malformed suppressions are {e not} re-reported here —
    the syntactic pass already emits their S1s. *)

val default_cmt_dir : string
(** ["_build/default"]. *)

val run :
  rules:Rule.t list ->
  known:Rule.t list ->
  root:string ->
  ?exclude:(string -> bool) ->
  cmt_dirs:string list ->
  unit ->
  string list * Rule.violation list
(** [run ~rules ~known ~root ~cmt_dirs ()] is [(files, violations)]:
    the root-relative sources analyzed (sorted) and the surviving
    violations in {!Rule.compare_violation} order.  [rules] selects
    which P-rules report (by code) and scopes them via their [applies];
    [known] is the full namespace suppression names resolve against.
    [exclude] drops sources by root-relative path (default: none) —
    the CLI uses it to keep the lint-fixture corpus out of repo runs. *)

val hot_names_of_cmt : string -> (string list, string) result
(** The propagated hot-scope names of one [.cmt] file, sorted — the
    surface the fixture tests pin. [Error] when the file cannot be read
    or holds no implementation. *)

(** The rule abstraction of the [p2plint] analyzer.

    A rule is a named check over one source file: it sees the file's raw
    text, its parsed AST (when parsing succeeded) and its path relative to
    the lint root, and returns violations.  Rules are plain values, so the
    engine's rule set is pluggable — [Rules.all] is the default registry,
    and callers can filter or extend it. *)

type violation = {
  code : string;  (** Short code, e.g. ["D2"]. *)
  rule_id : string;  (** Kebab-case name, e.g. ["unordered-iteration"]. *)
  file : string;  (** Path relative to the lint root, ['/']-separated. *)
  line : int;  (** 1-based. *)
  col : int;  (** 0-based, as in compiler locations. *)
  message : string;
}

type source = {
  path : string;  (** On-disk path, for file-system checks (H1). *)
  rel : string;  (** Root-relative path used in reports and [applies]. *)
  text : string;  (** Raw file contents. *)
  ast : Parsetree.structure option;  (** [None] when parsing failed. *)
}

type t = {
  code : string;
  id : string;
  summary : string;  (** One line for [--list-rules] and the docs. *)
  applies : string -> bool;  (** Scope predicate over root-relative paths. *)
  check : source -> violation list;
}

val v :
  code:string ->
  id:string ->
  summary:string ->
  ?applies:(string -> bool) ->
  (source -> violation list) ->
  t
(** [applies] defaults to every file. *)

val violation :
  rule:t -> file:string -> loc:Location.t -> string -> violation
(** Violation at the start of [loc]. *)

val compare_violation : violation -> violation -> int
(** Report order: by file, then line, column, code and message — total, so
    reports are deterministic. *)

val matches : t -> string -> bool
(** [matches rule name] is true when [name] (case-insensitive) is the
    rule's code or id — the names accepted by suppressions and CLI rule
    selection. *)

open Parsetree

(* Rules build violations directly (rather than through {!Rule.violation})
   so each check closes over its own code/id without tying the knot on the
   rule record. *)
let viol ~code ~id ~rel ~(loc : Location.t) message =
  let pos = loc.loc_start in
  {
    Rule.code;
    rule_id = id;
    file = rel;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    message;
  }

(* Run [f] over every expression of the file, collecting violations. *)
let expr_rule f (source : Rule.source) =
  match source.ast with
  | None -> []
  | Some ast ->
      let acc = ref [] in
      let open Ast_iterator in
      let it =
        {
          default_iterator with
          expr =
            (fun it e ->
              f ~rel:source.rel acc e;
              default_iterator.expr it e);
        }
      in
      it.structure it ast;
      List.rev !acc

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Longident.flatten txt)
  | _ -> None

let last_two path =
  match List.rev path with b :: a :: _ -> Some (a, b) | _ -> None

(* ------------------------------------------------------------------ *)
(* D1: ambient nondeterminism. *)

let d1_offender path =
  let joined = String.concat "." path in
  let last = List.nth path (List.length path - 1) in
  let non_last = List.filteri (fun i _ -> i < List.length path - 1) path in
  if List.mem "Random" non_last then Some joined
  else if String.equal joined "Sys.time" then Some joined
  else if String.equal joined "Unix.gettimeofday" || String.equal joined "Unix.time"
  then Some joined
  else if
    String.equal last "self_init"
    || (String.length last > 10 && Filename.check_suffix last "_self_init")
  then Some joined
  else None

let d1 =
  Rule.v ~code:"D1" ~id:"ambient-nondeterminism"
    ~summary:
      "Random.*, Sys.time, Unix.gettimeofday and *self_init outside lib/stdx/prng.ml"
    ~applies:(fun rel -> not (String.equal rel "lib/stdx/prng.ml"))
    (expr_rule (fun ~rel acc e ->
         match ident_path e with
         | None -> ()
         | Some path -> (
             match d1_offender path with
             | None -> ()
             | Some name ->
                 acc :=
                   viol ~code:"D1" ~id:"ambient-nondeterminism" ~rel ~loc:e.pexp_loc
                     (Printf.sprintf
                        "`%s` is ambient nondeterminism; thread a seeded Stdx.Prng \
                         (or a virtual clock) instead"
                        name)
                   :: !acc)))

(* ------------------------------------------------------------------ *)
(* D2: order-sensitive Hashtbl.fold / Hashtbl.iter. *)

(* Operators whose reductions are associative and commutative, so the
   bucket order cannot leak into the result.  Integer arithmetic only:
   float addition is not associative, so [+.] deliberately fails. *)
let commutative_op path =
  match path with
  | [ op ] -> List.mem op [ "+"; "*"; "land"; "lor"; "lxor"; "&&"; "||"; "max"; "min" ]
  | [ m; op ] ->
      List.mem m [ "Int"; "Int32"; "Int64"; "Nativeint"; "Bool"; "Stdlib" ]
      && List.mem op
           [ "add"; "mul"; "max"; "min"; "logand"; "logor"; "logxor"; "+"; "*"; "&&"; "||" ]
  | _ -> false

(* The conservative auto-pass: the body must combine the accumulator with a
   commutative-associative operator at every leaf (if/match branching
   allowed).  Anything else — consing, string building, I/O, calling an
   unknown function on the accumulator — fails and is flagged. *)
let rec commutative ~acc e =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident v; _ } -> String.equal v acc
  | Pexp_apply (fn, args) -> (
      match ident_path fn with
      | Some path when commutative_op path ->
          List.exists (fun (_, a) -> commutative ~acc a) args
      | Some _ | None -> false)
  | Pexp_ifthenelse (_, then_, Some else_) ->
      commutative ~acc then_ && commutative ~acc else_
  | Pexp_ifthenelse (_, then_, None) -> commutative ~acc then_
  | Pexp_match (_, cases) ->
      List.for_all (fun case -> commutative ~acc case.pc_rhs) cases
  | Pexp_constraint (e, _) -> commutative ~acc e
  | _ -> false

let rec fun_params e params =
  match e.pexp_desc with
  | Pexp_fun (Asttypes.Nolabel, None, p, body) -> fun_params body (p :: params)
  | _ -> (List.rev params, e)

let fold_auto_passes callback =
  match fun_params callback [] with
  | [ _key; _value; acc_pat ], body -> (
      match acc_pat.ppat_desc with
      | Ppat_var { txt; _ } -> commutative ~acc:txt body
      | _ -> false)
  | _ -> false

let d2 =
  Rule.v ~code:"D2" ~id:"unordered-iteration"
    ~summary:
      "Hashtbl.fold/iter whose callback is order-sensitive (use Stdx.Det_tbl)"
    (expr_rule (fun ~rel acc e ->
         match e.pexp_desc with
         | Pexp_apply (fn, args) -> (
             match ident_path fn with
             | None -> ()
             | Some path -> (
                 match last_two path with
                 | Some ("Hashtbl", "iter") ->
                     acc :=
                       viol ~code:"D2" ~id:"unordered-iteration" ~rel ~loc:e.pexp_loc
                         "Hashtbl.iter visits bindings in nondeterministic bucket \
                          order; use Stdx.Det_tbl.iter_sorted"
                       :: !acc
                 | Some ("Hashtbl", "fold") ->
                     let passes =
                       match
                         List.find_opt
                           (fun (label, _) -> label = Asttypes.Nolabel)
                           args
                       with
                       | Some (_, callback) -> fold_auto_passes callback
                       | None -> false
                     in
                     if not passes then
                       acc :=
                         viol ~code:"D2" ~id:"unordered-iteration" ~rel
                           ~loc:e.pexp_loc
                           "Hashtbl.fold visits bindings in nondeterministic \
                            bucket order and this accumulator is order-sensitive; \
                            use Stdx.Det_tbl.fold_sorted (or sorted_keys / \
                            sorted_bindings)"
                         :: !acc
                 | _ -> ()))
         | _ -> ()))

(* ------------------------------------------------------------------ *)
(* D3: physical equality and Obj.magic. *)

let d3 =
  Rule.v ~code:"D3" ~id:"phys-equal"
    ~summary:"physical equality (==/!=) and Obj.magic"
    (expr_rule (fun ~rel acc e ->
         match ident_path e with
         | Some [ ("==" | "!=") as op ] ->
             acc :=
               viol ~code:"D3" ~id:"phys-equal" ~rel ~loc:e.pexp_loc
                 (Printf.sprintf
                    "physical equality (%s) depends on value representation; use \
                     structural (dis)equality or suppress with the identity \
                     argument spelled out"
                    op)
               :: !acc
         | Some path when (match last_two path with
                          | Some ("Obj", ("magic" | "repr" | "obj")) -> true
                          | _ -> false) ->
             acc :=
               viol ~code:"D3" ~id:"phys-equal" ~rel ~loc:e.pexp_loc
                 (Printf.sprintf "`%s` defeats the type system"
                    (String.concat "." path))
               :: !acc
         | _ -> ()))

(* ------------------------------------------------------------------ *)
(* E1: catch-all exception handlers. *)

let rec catch_all_pattern p =
  match p.ppat_desc with
  | Ppat_any -> Some "_"
  | Ppat_construct ({ txt = Lident "Failure"; _ }, Some (_, arg))
    when (match arg.ppat_desc with Ppat_any -> true | _ -> false) ->
      Some "Failure _"
  | Ppat_or (a, b) -> (
      match catch_all_pattern a with
      | Some _ as found -> found
      | None -> catch_all_pattern b)
  | Ppat_alias (p, _) -> catch_all_pattern p
  | _ -> None

let e1 =
  Rule.v ~code:"E1" ~id:"catch-all-handler"
    ~summary:"try ... with _ -> and with Failure _ -> swallow errors"
    (expr_rule (fun ~rel acc e ->
         match e.pexp_desc with
         | Pexp_try (_, cases) ->
             List.iter
               (fun case ->
                 match catch_all_pattern case.pc_lhs with
                 | None -> ()
                 | Some shape ->
                     acc :=
                       viol ~code:"E1" ~id:"catch-all-handler" ~rel
                         ~loc:case.pc_lhs.ppat_loc
                         (Printf.sprintf
                            "`with %s ->` swallows unexpected exceptions; match \
                             the specific exceptions the expression can raise"
                            shape)
                       :: !acc)
               cases
         | _ -> ()))

(* ------------------------------------------------------------------ *)
(* H1: every module under lib/ carries an interface. *)

let h1 =
  Rule.v ~code:"H1" ~id:"missing-mli"
    ~summary:"every module under lib/ must have an .mli interface"
    ~applies:(fun rel -> String.starts_with ~prefix:"lib/" rel)
    (fun source ->
      if Sys.file_exists (source.path ^ "i") then []
      else
        [
          {
            Rule.code = "H1";
            rule_id = "missing-mli";
            file = source.rel;
            line = 1;
            col = 0;
            message =
              Printf.sprintf "module has no interface; add %si"
                (Filename.basename source.rel);
          };
        ])

(* ------------------------------------------------------------------ *)
(* O1: metric naming convention. *)

let name_shaped s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let lower_alnum s =
  String.length s > 0
  && String.for_all (function 'a' .. 'z' | '0' .. '9' -> true | _ -> false) s

let metric_name_error ~kind s =
  let segments = String.split_on_char '_' s in
  if List.length segments < 3 || not (List.for_all lower_alnum segments) then
    Some "must be p2pindex_<subsystem>_<name> in lower_snake_case"
  else if not (String.equal (List.hd segments) "p2pindex") then
    Some "must carry the p2pindex_ prefix"
  else
    let last = List.nth segments (List.length segments - 1) in
    match kind with
    | `Counter when not (String.equal last "total") ->
        Some "counters must end in _total"
    | `Gauge when String.equal last "total" || String.equal last "seconds" ->
        Some "gauges take no _total/_seconds unit suffix"
    | `Counter | `Gauge | `Histogram -> None

let o1 =
  Rule.v ~code:"O1" ~id:"metric-naming"
    ~summary:
      "metric registrations must match p2pindex_<subsystem>_<name>[_total|_seconds]"
    ~applies:(fun rel -> not (String.starts_with ~prefix:"test/" rel))
    (expr_rule (fun ~rel acc e ->
         match e.pexp_desc with
         | Pexp_apply (fn, args) -> (
             let kind =
               match ident_path fn with
               | None -> None
               | Some path -> (
                   match List.rev path with
                   | "counter" :: _ -> Some `Counter
                   | "gauge" :: _ -> Some `Gauge
                   | "histogram" :: _ -> Some `Histogram
                   | _ -> None)
             in
             match kind with
             | None -> ()
             | Some kind ->
                 List.iter
                   (fun (label, arg) ->
                     match (label, arg.pexp_desc) with
                     | ( Asttypes.(Nolabel | Optional _),
                         Pexp_constant (Pconst_string (s, _, _)) )
                       when name_shaped s -> (
                         match metric_name_error ~kind s with
                         | None -> ()
                         | Some why ->
                             acc :=
                               viol ~code:"O1" ~id:"metric-naming" ~rel
                                 ~loc:arg.pexp_loc
                                 (Printf.sprintf "metric name %S: %s" s why)
                               :: !acc)
                     | _ -> ())
                   args)
         | _ -> ()))

(* ------------------------------------------------------------------ *)

let all = [ d1; d2; d3; e1; h1; o1 ]
let typed = Typed_rules.stubs
let everything = all @ typed

let find name = List.find_opt (fun r -> Rule.matches r name) everything

type t = { rule_name : string; from_line : int; to_line : int }

let bad_suppression_code = "S1"
let bad_suppression_id = "bad-suppression"

let bad ~rel ~line ~col message =
  {
    Rule.code = bad_suppression_code;
    rule_id = bad_suppression_id;
    file = rel;
    line;
    col;
    message;
  }

let known ~rules name = List.exists (fun r -> Rule.matches r name) rules

let is_separator c = c = ' ' || c = '\t' || c = '-' || c = ':'

(* Also strip the UTF-8 em dash used as a separator in prose comments. *)
let strip_leading_separators s =
  let n = String.length s in
  let rec go i =
    if i >= n then i
    else if is_separator s.[i] then go (i + 1)
    else if i + 2 < n && s.[i] = '\xe2' && s.[i + 1] = '\x80' && s.[i + 2] = '\x94'
    then go (i + 3)
    else i
  in
  let i = go 0 in
  String.trim (String.sub s i (n - i))

(* [validate] turns "<rule> <separator> <justification>" into a suppression
   covering [from_line..to_line], or a bad-suppression violation. *)
let validate ~known:rules ~rel ~line ~col ~from_line ~to_line body =
  let body = String.trim body in
  let rule_name, rest =
    match String.index_opt body ' ' with
    | None -> (body, "")
    | Some i ->
        (String.sub body 0 i, String.sub body (i + 1) (String.length body - i - 1))
  in
  let rule_name =
    (* Allow "rule:" and "rule —" spellings. *)
    match String.index_opt rule_name ':' with
    | Some i -> String.sub rule_name 0 i
    | None -> rule_name
  in
  let justification = strip_leading_separators rest in
  if String.length rule_name = 0 then
    Error (bad ~rel ~line ~col "suppression names no rule")
  else if not (known ~rules rule_name) then
    Error (bad ~rel ~line ~col (Printf.sprintf "suppression names unknown rule %S" rule_name))
  else if String.length justification = 0 then
    Error
      (bad ~rel ~line ~col
         (Printf.sprintf
            "suppression of %S lacks a justification (write \"%s — why it is safe\")"
            rule_name rule_name))
  else Ok { rule_name; from_line; to_line }

(* ------------------------------------------------------------------ *)
(* Comment form: a single-line comment carrying the marker below followed
   by a rule name and a justification. *)

let marker = "lint: allow"

let find_sub ~start hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.equal (String.sub hay i nn) needle then Some i
    else go (i + 1)
  in
  go start

let of_comments ~known:rules ~rel text =
  let lines = String.split_on_char '\n' text in
  let _, sups, errs =
    List.fold_left
      (fun (lineno, sups, errs) line ->
        match find_sub ~start:0 line "(*" with
        | None -> (lineno + 1, sups, errs)
        | Some copen -> (
            match find_sub ~start:copen line marker with
            | None -> (lineno + 1, sups, errs)
            | Some m -> (
                let after = m + String.length marker in
                match find_sub ~start:after line "*)" with
                | None ->
                    ( lineno + 1,
                      sups,
                      bad ~rel ~line:lineno ~col:copen
                        "lint suppression comments must be single-line"
                      :: errs )
                | Some cclose -> (
                    let body = String.sub line after (cclose - after) in
                    match
                      validate ~known:rules ~rel ~line:lineno ~col:copen
                        ~from_line:lineno ~to_line:(lineno + 1) body
                    with
                    | Ok s -> (lineno + 1, s :: sups, errs)
                    | Error e -> (lineno + 1, sups, e :: errs)))))
      (1, [], []) lines
  in
  (List.rev sups, List.rev errs)

(* ------------------------------------------------------------------ *)
(* Attribute form: [@lint.allow "rule: why"] on a node, [@@@...] floating. *)

let payload_string = function
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let of_ast ~known:rules ~rel structure =
  let sups = ref [] and errs = ref [] in
  let handle_attrs ~node_loc attrs =
    List.iter
      (fun (attr : Parsetree.attribute) ->
        if String.equal attr.attr_name.txt "lint.allow" then begin
          let line = attr.attr_loc.Location.loc_start.Lexing.pos_lnum in
          let col =
            attr.attr_loc.Location.loc_start.Lexing.pos_cnum
            - attr.attr_loc.Location.loc_start.Lexing.pos_bol
          in
          let from_line, to_line =
            match node_loc with
            | Some (loc : Location.t) ->
                (loc.loc_start.Lexing.pos_lnum, loc.loc_end.Lexing.pos_lnum)
            | None -> (1, max_int) (* floating: whole file *)
          in
          match payload_string attr.attr_payload with
          | None ->
              errs :=
                bad ~rel ~line ~col
                  "[@lint.allow] expects a string payload \"rule: justification\""
                :: !errs
          | Some body -> (
              let body =
                (* Normalize "rule: why" to the shared "<rule> <why>" shape. *)
                String.map (fun c -> if c = ':' then ' ' else c) body
              in
              match
                validate ~known:rules ~rel ~line ~col ~from_line ~to_line body
              with
              | Ok s -> sups := s :: !sups
              | Error e -> errs := e :: !errs)
        end)
      attrs
  in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          handle_attrs ~node_loc:(Some e.pexp_loc) e.pexp_attributes;
          default_iterator.expr it e);
      pat =
        (fun it p ->
          handle_attrs ~node_loc:(Some p.ppat_loc) p.ppat_attributes;
          default_iterator.pat it p);
      value_binding =
        (fun it vb ->
          handle_attrs ~node_loc:(Some vb.pvb_loc) vb.pvb_attributes;
          default_iterator.value_binding it vb);
      module_binding =
        (fun it mb ->
          handle_attrs ~node_loc:(Some mb.pmb_loc) mb.pmb_attributes;
          default_iterator.module_binding it mb);
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_attribute attr -> handle_attrs ~node_loc:None [ attr ]
          | Pstr_eval (_, attrs) -> handle_attrs ~node_loc:(Some si.pstr_loc) attrs
          | _ -> ());
          default_iterator.structure_item it si);
    }
  in
  it.structure it structure;
  (List.rev !sups, List.rev !errs)

let covers ~rules sups (violation : Rule.violation) =
  match List.find_opt (fun r -> String.equal r.Rule.code violation.code) rules with
  | None -> false
  | Some rule ->
      List.exists
        (fun s ->
          Rule.matches rule s.rule_name
          && (String.equal violation.code "H1" (* file-scoped rule *)
             || (violation.line >= s.from_line && violation.line <= s.to_line)))
        sups

open Typedtree

let viol ~code ~id ~rel ~(loc : Location.t) message =
  let pos = loc.loc_start in
  {
    Rule.code;
    rule_id = id;
    file = rel;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    message;
  }

(* ------------------------------------------------------------------ *)
(* Registry stubs: the P-rules as plain Rule.t values so selection,    *)
(* --list-rules and suppression validation share one namespace.  The   *)
(* real checks live in [check_scope]; the stub checks are no-ops.      *)
(* ------------------------------------------------------------------ *)

let stub ~code ~id ~summary = Rule.v ~code ~id ~summary (fun _ -> [])

let p1 =
  stub ~code:"P1" ~id:"hot-closure"
    ~summary:
      "closure capture or partial application allocating per call in a [@hot] \
       path"

let p2 =
  stub ~code:"P2" ~id:"polymorphic-compare"
    ~summary:
      "polymorphic compare/equality/hash at an unspecializable type in a \
       [@hot] path"

let p3 =
  stub ~code:"P3" ~id:"boxed-allocation"
    ~summary:"tuple or boxed-float allocation per call in a [@hot] path"

let p4 =
  stub ~code:"P4" ~id:"list-per-event"
    ~summary:"Stdlib.List call building a fresh list per event in a [@hot] path"

let stubs = [ p1; p2; p3; p4 ]

(* ------------------------------------------------------------------ *)
(* Type helpers.  cmt types come without an environment, so aliases    *)
(* are not expanded: an alias of int is reported as unspecializable —  *)
(* conservative, and silenced by using a monomorphic operation.        *)
(* ------------------------------------------------------------------ *)

let specialized_names =
  [
    "int"; "char"; "bool"; "unit"; "float"; "string"; "bytes"; "int32";
    "int64"; "nativeint";
  ]

let specializable ty =
  match Types.get_desc ty with
  | Tconstr (p, [], _) -> List.mem (Path.name p) specialized_names
  | _ -> false

let rec type_label ty =
  match Types.get_desc ty with
  | Tconstr (p, [], _) -> "`" ^ Path.name p ^ "`"
  | Tconstr (p, _ :: _, _) -> "`_ " ^ Path.name p ^ "`"
  | Ttuple _ -> "a tuple"
  | Tarrow _ -> "a function"
  | Tvar _ | Tunivar _ -> "a type variable"
  | Tpoly (t, _) -> type_label t
  | _ -> "a non-immediate type"

let rec first_arrow_arg ty =
  match Types.get_desc ty with
  | Tarrow (_, a, _, _) -> Some a
  | Tpoly (t, _) -> first_arrow_arg t
  | _ -> None

let is_arrow ty =
  match Types.get_desc ty with Tarrow _ -> true | _ -> false

let is_float ty =
  match Types.get_desc ty with
  | Tconstr (p, [], _) -> String.equal (Path.name p) "float"
  | _ -> false

let is_list ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> String.equal (Path.name p) "list"
  | _ -> false

(* ------------------------------------------------------------------ *)
(* P2 targets: runtime polymorphic structural comparison / hashing.    *)
(* Keyed by resolved path name, so shadowing cannot fool the check.    *)
(* ------------------------------------------------------------------ *)

let poly_targets =
  [
    ("Stdlib.=", "="); ("Stdlib.<>", "<>"); ("Stdlib.<", "<");
    ("Stdlib.>", ">"); ("Stdlib.<=", "<="); ("Stdlib.>=", ">=");
    ("Stdlib.compare", "compare"); ("Stdlib.min", "min");
    ("Stdlib.max", "max"); ("Stdlib.Hashtbl.hash", "Hashtbl.hash");
    ("Stdlib.Hashtbl.hash_param", "Hashtbl.hash_param");
    ("Stdlib.List.mem", "List.mem"); ("Stdlib.List.assoc", "List.assoc");
    ("Stdlib.List.assoc_opt", "List.assoc_opt");
    ("Stdlib.List.mem_assoc", "List.mem_assoc");
  ]

(* ------------------------------------------------------------------ *)
(* P1 capture analysis.  Stamped idents make this exact: a use is a    *)
(* capture iff its binder is outside the closure, is not one of the    *)
(* file's structure-level bindings (static module access), and is not  *)
(* the closure's own [let rec] name (static self-reference).  Two      *)
(* passes — binders first — so traversal order cannot matter.          *)
(* ------------------------------------------------------------------ *)

let rec pattern_idents : type k. k general_pattern -> Ident.t list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> [ id ]
  | Tpat_alias (sub, id, _) -> id :: pattern_idents sub
  | Tpat_tuple ps | Tpat_construct (_, _, ps, _) | Tpat_array ps ->
      List.concat_map pattern_idents ps
  | Tpat_variant (_, Some sub, _) | Tpat_lazy sub | Tpat_exception sub ->
      pattern_idents sub
  | Tpat_record (fields, _) ->
      List.concat_map (fun (_, _, sub) -> pattern_idents sub) fields
  | Tpat_or (a, b, _) -> pattern_idents a @ pattern_idents b
  | Tpat_value v -> pattern_idents (v :> value general_pattern)
  | Tpat_any | Tpat_constant _ | Tpat_variant (_, None, _) -> []

let captured_names ~graph ~self (e : expression) : string list =
  let bound = Hashtbl.create 16 in
  let bind id = Hashtbl.replace bound (Ident.unique_name id) () in
  List.iter bind self;
  (* Pass 1: every binder inside the closure. *)
  let binder_pat : type k. Tast_iterator.iterator -> k general_pattern -> unit
      =
   fun sub p ->
    List.iter bind (pattern_idents p);
    Tast_iterator.default_iterator.pat sub p
  in
  let binder_expr sub x =
    (match x.exp_desc with Texp_for (id, _, _, _, _, _) -> bind id | _ -> ());
    Tast_iterator.default_iterator.expr sub x
  in
  let binders =
    {
      Tast_iterator.default_iterator with
      pat = (fun sub p -> binder_pat sub p);
      expr = binder_expr;
    }
  in
  binders.expr binders e;
  (* Pass 2: unbound value uses. *)
  let seen = Hashtbl.create 16 in
  let free = ref [] in
  let use_expr sub x =
    (match x.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
        let key = Ident.unique_name id in
        if
          (not (Hashtbl.mem bound key))
          && (not (Callgraph.is_toplevel graph id))
          && not (Hashtbl.mem seen key)
        then begin
          Hashtbl.replace seen key ();
          free := Ident.name id :: !free
        end
    | _ -> ());
    Tast_iterator.default_iterator.expr sub x
  in
  let uses = { Tast_iterator.default_iterator with expr = use_expr } in
  uses.expr uses e;
  List.sort_uniq String.compare !free

(* ------------------------------------------------------------------ *)
(* The walker.                                                         *)
(* ------------------------------------------------------------------ *)

let is_function e =
  match e.exp_desc with Texp_function _ -> true | _ -> false

let funct_name (funct : expression) =
  match funct.exp_desc with
  | Texp_ident (path, _, _) -> "`" ^ Path.name path ^ "`"
  | _ -> "this function"

let check_scope ~rel ~graph (scope : Callgraph.scope) =
  let acc = ref [] in
  let add ~code ~id ~loc message =
    acc := viol ~code ~id ~rel ~loc message :: !acc
  in
  let p1_closure ~self (e : expression) =
    match captured_names ~graph ~self e with
    | [] -> () (* non-capturing closures are statically allocated *)
    | names ->
        add ~code:"P1" ~id:"hot-closure" ~loc:e.exp_loc
          (Printf.sprintf
             "closure capturing %s allocates on every call; hoist it to a \
              static function or thread the state through arguments"
             (String.concat ", "
                (List.map (fun n -> "`" ^ n ^ "`") names)))
  in
  let p1_apply (e : expression) funct args =
    let omitted = List.exists (fun (_, a) -> Option.is_none a) args in
    if omitted then
      add ~code:"P1" ~id:"hot-closure" ~loc:e.exp_loc
        (Printf.sprintf
           "partial application of %s (an argument is omitted) allocates a \
            closure per call; pass all arguments"
           (funct_name funct))
    else if is_arrow e.exp_type then
      add ~code:"P1" ~id:"hot-closure" ~loc:e.exp_loc
        (Printf.sprintf
           "application of %s yields a function — a partial application \
            allocates a closure per call; apply it fully or eta-expand at \
            definition site"
           (funct_name funct))
  in
  let p2_ident (e : expression) path =
    match List.assoc_opt (Path.name path) poly_targets with
    | None -> ()
    | Some display -> (
        match first_arrow_arg e.exp_type with
        | Some ty when not (specializable ty) ->
            add ~code:"P2" ~id:"polymorphic-compare" ~loc:e.exp_loc
              (Printf.sprintf
                 "`%s` at %s uses runtime polymorphic comparison; use a \
                  monomorphic equivalent (Int.equal, String.compare, a \
                  keyed List.exists, ...)"
                 display (type_label ty))
        | Some _ | None -> ())
  in
  let p3_expr (e : expression) =
    match e.exp_desc with
    | Texp_tuple _ ->
        add ~code:"P3" ~id:"boxed-allocation" ~loc:e.exp_loc
          "tuple allocated on every call; return components separately or \
           reuse a mutable record"
    | Texp_construct (lid, _, args)
      when List.exists (fun a -> is_float a.exp_type) args ->
        add ~code:"P3" ~id:"boxed-allocation" ~loc:e.exp_loc
          (Printf.sprintf
             "`%s` boxes a float argument on every call; keep floats in \
              unboxed positions (float record fields, arrays) or split the \
              value"
             (String.concat "." (Longident.flatten lid.txt)))
    | Texp_record { fields; representation; _ } -> (
        match representation with
        | Types.Record_float | Types.Record_unboxed _ -> ()
        | Types.Record_regular | Types.Record_inlined _
        | Types.Record_extension _ ->
            let boxed =
              Array.to_list fields
              |> List.filter_map (fun ((lbl : Types.label_description), _) ->
                     if is_float lbl.lbl_arg then Some lbl.lbl_name else None)
              |> List.sort_uniq String.compare
            in
            if boxed <> [] then
              add ~code:"P3" ~id:"boxed-allocation" ~loc:e.exp_loc
                (Printf.sprintf
                   "mixed record boxes float field%s %s on every call; use a \
                    flat float record, separate arrays, or an int \
                    representation"
                   (if List.length boxed > 1 then "s" else "")
                   (String.concat ", "
                      (List.map (fun n -> "`" ^ n ^ "`") boxed))))
    | _ -> ()
  in
  let p4_apply (e : expression) funct =
    match funct.exp_desc with
    | Texp_ident (path, _, _) ->
        let name = Path.name path in
        if String.starts_with ~prefix:"Stdlib.List." name && is_list e.exp_type
        then
          add ~code:"P4" ~id:"list-per-event" ~loc:e.exp_loc
            (Printf.sprintf
               "`List.%s` builds a fresh list per event; precompute it, use \
                an array, or fold without materializing"
               (String.sub name 12 (String.length name - 12)))
    | _ -> ()
  in
  (* Depth-aware traversal.  [self] holds the let-group idents when the
     visited expression is a binding's right-hand side, so a recursive
     closure's self-reference is not counted as a capture. *)
  let rec visit ~depth ~self (e : expression) =
    if depth >= 1 then begin
      (match e.exp_desc with
      | Texp_ident (path, _, _) -> p2_ident e path
      | Texp_apply (funct, args) ->
          p1_apply e funct args;
          p4_apply e funct
      | Texp_function _ -> p1_closure ~self e
      | _ -> ());
      p3_expr e
    end;
    match e.exp_desc with
    | Texp_function _ -> visit_function ~depth e
    | Texp_let (_, vbs, body) ->
        let group = List.concat_map (fun vb -> pattern_idents vb.vb_pat) vbs in
        List.iter (fun vb -> visit ~depth ~self:group vb.vb_expr) vbs;
        visit ~depth ~self:[] body
    | _ ->
        let sub =
          {
            Tast_iterator.default_iterator with
            expr = (fun _ child -> visit ~depth ~self:[] child);
          }
        in
        Tast_iterator.default_iterator.expr sub e
  (* One n-ary closure: collapse the single-case unguarded curried chain,
     then enter each body one level deeper. *)
  and visit_function ~depth (e : expression) =
    match e.exp_desc with
    | Texp_function { cases = [ { c_guard = None; c_rhs; _ } ]; _ }
      when is_function c_rhs ->
        visit_function ~depth c_rhs
    | Texp_function { cases; _ } ->
        List.iter
          (fun c ->
            Option.iter (visit ~depth:(depth + 1) ~self:[]) c.c_guard;
            visit ~depth:(depth + 1) ~self:[] c.c_rhs)
          cases
    | _ -> assert false
  in
  visit ~depth:0 ~self:[] scope.Callgraph.expr;
  List.rev !acc

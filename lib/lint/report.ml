let scan_stats ~files_scanned ~cmts_loaded =
  match cmts_loaded with
  | None -> Printf.sprintf "%d files scanned" files_scanned
  | Some cmts -> Printf.sprintf "%d files scanned, %d cmts" files_scanned cmts

let render_text ~files_scanned ?cmts_loaded violations =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (v : Rule.violation) ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d:%d: %s %s: %s\n" v.file v.line v.col v.code
           v.rule_id v.message))
    violations;
  let files_with =
    List.sort_uniq String.compare
      (List.map (fun (v : Rule.violation) -> v.file) violations)
  in
  let stats = scan_stats ~files_scanned ~cmts_loaded in
  (match violations with
  | [] -> Buffer.add_string buf (Printf.sprintf "p2plint: clean (%s)\n" stats)
  | _ ->
      Buffer.add_string buf
        (Printf.sprintf "p2plint: %d violation%s in %d file%s (%s)\n"
           (List.length violations)
           (if List.length violations = 1 then "" else "s")
           (List.length files_with)
           (if List.length files_with = 1 then "" else "s")
           stats));
  Buffer.contents buf

let render_json ~files_scanned ?cmts_loaded violations =
  let violation_json (v : Rule.violation) =
    Obs.Json.Obj
      [
        ("file", Obs.Json.String v.file);
        ("line", Obs.Json.Int v.line);
        ("col", Obs.Json.Int v.col);
        ("code", Obs.Json.String v.code);
        ("rule", Obs.Json.String v.rule_id);
        ("message", Obs.Json.String v.message);
      ]
  in
  let cmt_field =
    match cmts_loaded with
    | None -> []
    | Some cmts -> [ ("cmts_loaded", Obs.Json.Int cmts) ]
  in
  Obs.Json.to_string
    (Obs.Json.Obj
       ([ ("version", Obs.Json.Int 1);
          ("files_scanned", Obs.Json.Int files_scanned) ]
       @ cmt_field
       @ [
           ("violation_count", Obs.Json.Int (List.length violations));
           ("violations", Obs.Json.List (List.map violation_json violations));
         ]))
  ^ "\n"

let default_cmt_dir = "_build/default"

(* ------------------------------------------------------------------ *)
(* Discovery.                                                          *)
(* ------------------------------------------------------------------ *)

let find_cmts dirs =
  let rec walk dir acc =
    if not (Sys.file_exists dir && Sys.is_directory dir) then acc
    else
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then walk path acc
          else if Filename.check_suffix entry ".cmt" then path :: acc
          else acc)
        acc (Sys.readdir dir)
  in
  List.sort String.compare (List.fold_left (fun acc d -> walk d acc) [] dirs)

(* An unreadable or foreign-format cmt is skipped, not fatal: stale
   files from older compilers can coexist under _build. *)
let load_cmt path =
  match Cmt_format.read_cmt path with
  | info -> Some info
  | exception (Cmi_format.Error _ | Cmt_format.Error _ | Sys_error _ | End_of_file)
    ->
      None

let structure_of_cmt (info : Cmt_format.cmt_infos) =
  match (info.cmt_sourcefile, info.cmt_annots) with
  | Some src, Cmt_format.Implementation str
    when Filename.check_suffix src ".ml" ->
      Some (src, str)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Per-file check.                                                     *)
(* ------------------------------------------------------------------ *)

let selected_code (rules : Rule.t list) ~rel code =
  List.exists
    (fun (r : Rule.t) -> String.equal r.code code && r.applies rel)
    rules

(* Suppressions are computed lazily — only files with raw violations pay
   for a source reparse.  Malformed-suppression violations are dropped
   here: the syntactic pass already reports them as S1. *)
let surviving ~known ~root ~rel raw =
  match raw with
  | [] -> []
  | raw ->
      let path = Filename.concat root rel in
      let text = Engine.read_file path in
      let comment_sups, _ = Suppress.of_comments ~known ~rel text in
      let attr_sups =
        match Engine.parse path with
        | Ok ast -> fst (Suppress.of_ast ~known ~rel ast)
        | Error _ -> []
      in
      let sups = comment_sups @ attr_sups in
      List.filter (fun v -> not (Suppress.covers ~rules:known sups v)) raw

let check_file ~rules ~known ~root ~rel str =
  let graph = Callgraph.analyze str in
  let raw =
    List.concat_map
      (fun scope -> Typed_rules.check_scope ~rel ~graph scope)
      (Callgraph.hot_scopes graph)
  in
  let raw =
    List.filter
      (fun (v : Rule.violation) -> selected_code rules ~rel v.code)
      raw
  in
  surviving ~known ~root ~rel raw

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)
(* ------------------------------------------------------------------ *)

let run ~rules ~known ~root ?(exclude = fun _ -> false) ~cmt_dirs () =
  let seen = Hashtbl.create 64 in
  let files = ref [] and violations = ref [] in
  List.iter
    (fun cmt_path ->
      match Option.bind (load_cmt cmt_path) structure_of_cmt with
      | None -> ()
      | Some (rel, str) ->
          if
            (not (Hashtbl.mem seen rel))
            && (not (exclude rel))
            && Sys.file_exists (Filename.concat root rel)
          then begin
            Hashtbl.replace seen rel ();
            files := rel :: !files;
            violations := check_file ~rules ~known ~root ~rel str @ !violations
          end)
    (find_cmts cmt_dirs);
  ( List.sort String.compare !files,
    List.sort Rule.compare_violation !violations )

let hot_names_of_cmt path =
  match Option.bind (load_cmt path) structure_of_cmt with
  | Some (_, str) -> Ok (Callgraph.hot_names (Callgraph.analyze str))
  | None -> Error (Printf.sprintf "%s: not a readable implementation cmt" path)

type violation = {
  code : string;
  rule_id : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

type source = {
  path : string;
  rel : string;
  text : string;
  ast : Parsetree.structure option;
}

type t = {
  code : string;
  id : string;
  summary : string;
  applies : string -> bool;
  check : source -> violation list;
}

let v ~code ~id ~summary ?(applies = fun _ -> true) check =
  { code; id; summary; applies; check }

let violation ~rule ~file ~loc message =
  let pos = loc.Location.loc_start in
  {
    code = rule.code;
    rule_id = rule.id;
    file;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    message;
  }

let compare_violation a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.code b.code in
        if c <> 0 then c else String.compare a.message b.message

let matches rule name =
  let name = String.lowercase_ascii name in
  String.equal name (String.lowercase_ascii rule.code)
  || String.equal name (String.lowercase_ascii rule.id)

(** Deterministic report rendering.

    Both renderers consume violations already sorted by
    {!Rule.compare_violation} and never look at the clock, the environment
    or absolute paths, so two runs over the same tree produce byte-identical
    output. *)

val render_text :
  files_scanned:int -> ?cmts_loaded:int -> Rule.violation list -> string
(** GCC-style lines — [file:line:col: CODE rule-id: message] — followed by
    a summary line.  Ends with a newline.  [cmts_loaded], when given,
    extends the summary's scan stats with the typed pass's cmt count. *)

val render_json :
  files_scanned:int -> ?cmts_loaded:int -> Rule.violation list -> string
(** A single-line JSON document:
    [{"version":1,"files_scanned":N,"violation_count":N,"violations":[...]}]
    with each violation as
    [{"file","line","col","code","rule","message"}].  Ends with a
    newline.  When [cmts_loaded] is given, a ["cmts_loaded"] field follows
    ["files_scanned"]. *)

(** The typed P-series rules, run over the [[\@hot]] scopes of a
    {!Callgraph.t}.

    These checks need types and resolved paths, so unlike the D/E/H/O
    rules they are not [Rule.check] functions over raw sources — the
    {!Typed_engine} drives them over [.cmt] trees.  {!stubs} exposes
    them as ordinary (no-op) {!Rule.t} values so the registry, CLI rule
    selection, [--list-rules] and suppression validation see one uniform
    rule namespace.

    Allocation-depth semantics: inside a hot scope, depth counts the
    function bodies entered from the scope's root expression, with a
    curried chain ([fun a -> fun b -> …] or [fun a b -> …], single case,
    no guard) collapsed to one body — the compiler compiles it to one
    n-ary closure.  Depth 0 is definition time (runs once — never
    flagged); depth ≥ 1 runs per call, where all four rules apply. *)

val p1 : Rule.t
(** P1 [hot-closure]: a capturing closure or a partial application at
    depth ≥ 1.  Non-capturing closures are statically allocated and
    stay silent; captures of same-file structure-level values and of a
    [let rec]'s own name do not count (both resolve statically). *)

val p2 : Rule.t
(** P2 [polymorphic-compare]: [Stdlib.(=)] / [compare] / [min] /
    [Hashtbl.hash] / [List.mem]-family used at a type the compiler
    cannot specialize (anything but int/char/bool/unit/float/string/
    bytes/int32/int64/nativeint — including aliases of those, which the
    cmt does not expand; use a monomorphic operation to silence). *)

val p3 : Rule.t
(** P3 [boxed-allocation]: tuple construction, float-typed constructor
    arguments, and non-flat records with float fields — each boxes per
    call at depth ≥ 1. *)

val p4 : Rule.t
(** P4 [list-per-event]: a fully-applied [Stdlib.List.*] call returning
    a fresh list on every event. *)

val stubs : Rule.t list
(** [[p1; p2; p3; p4]], each with a no-op [check] — registry entries
    only; the real checks run in {!check_scope}. *)

val check_scope :
  rel:string ->
  graph:Callgraph.t ->
  Callgraph.scope ->
  Rule.violation list
(** All P1–P4 violations of one hot scope, in traversal order (the
    engine sorts globally). *)

(** Deterministic per-module call graph over a typed tree, and the
    [@hot] propagation the P-series rules run on.

    Nodes are the file's structure-level value bindings (at any module
    nesting depth — functor bodies and nested [struct]s included), keyed
    by their compiler idents, so shadowed or same-named bindings in
    different submodules stay distinct.  Edges go from a binding to every
    same-file structure-level binding its body references, resolved
    through the file's own module structure ([Fifo.pop] from inside the
    enclosing functor resolves to the [pop] of the local [Fifo]).

    A binding is {e hot} when it carries the [[\@hot]] attribute, or
    transitively when any hot binding references it — annotating an entry
    point covers its helpers.  Local [let[\@hot] f = … in] bindings are
    additional roots: their bound expression becomes a scope of its own
    and the structure-level bindings it references are propagated to,
    exactly as for a hot structure-level binding.

    Everything is deterministic: scopes come out in source order and
    {!hot_names} is sorted, so reports built on top are byte-stable. *)

type scope = {
  name : string;
      (** Qualified within the file, e.g. ["Make.Fifo.pop"]; local hot
          bindings are qualified by their enclosing structure-level
          binding, e.g. ["run.quantum"]. *)
  loc : Location.t;  (** The binding's location. *)
  expr : Typedtree.expression;  (** The bound expression to analyze. *)
  root : bool;  (** Carries [[\@hot]] itself (vs. reached by propagation). *)
}

type t

val analyze : Typedtree.structure -> t

val hot_scopes : t -> scope list
(** The scopes the P-rules must check, in source order: every hot
    structure-level binding's expression plus every local [[\@hot]]
    binding's expression. *)

val hot_names : t -> string list
(** Sorted qualified names of all hot scopes — the propagation surface,
    pinned by the fixture tests. *)

val is_toplevel : t -> Ident.t -> bool
(** Whether the ident is one of the file's structure-level value
    bindings.  References to these from inside a closure are static
    (resolved through the module block), so they do not force a closure
    allocation — the P1 capture analysis excludes them. *)

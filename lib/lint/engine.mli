(** The [p2plint] driver: parse, check, suppress, aggregate.

    Files are parsed with the compiler's own frontend ([Pparse] →
    [Parsetree]) and walked with [Ast_iterator]; a file that fails to parse
    is reported as an [E0 parse-error] violation rather than aborting the
    run.  All output is deterministic: files are scanned in sorted
    root-relative path order and violations are sorted with
    {!Rule.compare_violation}. *)

val default_dirs : string list
(** [["lib"; "bin"; "bench"; "test"]] — the sub-trees a repo-level run
    scans for [.ml] files. *)

val parse_error_code : string
val parse_error_id : string

val read_file : string -> string
(** Raw bytes of a file (shared with {!Typed_engine}). *)

val parse : string -> (Parsetree.structure, string) result
(** Parse one implementation with the compiler frontend; [Error] carries
    a one-line summary of the failure. *)

val lint_file :
  rules:Rule.t list ->
  ?known:Rule.t list ->
  root:string ->
  rel:string ->
  unit ->
  Rule.violation list
(** Lint one file.  [rel] is the ['/']-separated path under [root]; only
    rules whose [applies] accepts [rel] run.  Suppressions (see
    {!Suppress}) are applied before returning; malformed suppressions are
    returned as [S1] violations.  [known] (default [rules]) is the
    namespace suppression names resolve against — pass the full registry
    when running a rule subset so a suppression for an unselected rule is
    not misreported as unknown. *)

val scan_files : root:string -> dirs:string list -> string list
(** All [.ml] files under [root]/[dirs], as sorted root-relative paths.
    Directories that do not exist are skipped, as are [_build] trees and
    [lint_fixtures] corpora (the latter are linted only when passed as a
    root of their own). *)

val lint_tree :
  rules:Rule.t list ->
  ?known:Rule.t list ->
  root:string ->
  dirs:string list ->
  unit ->
  string list * Rule.violation list
(** [lint_tree ~rules ~root ~dirs ()] is [(files_scanned, violations)],
    both sorted.  [known] as in {!lint_file}. *)

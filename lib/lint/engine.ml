let default_dirs = [ "lib"; "bin"; "bench"; "test" ]

let parse_error_code = "E0"
let parse_error_id = "parse-error"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One-line description of a frontend failure, without the file/line prefix
   [Location] would add (the violation carries those). *)
let exn_summary exn =
  match Location.error_of_exn exn with
  | Some (`Ok report) ->
      Format.asprintf "%a" Location.print_report report
      |> String.split_on_char '\n'
      |> List.map String.trim
      |> String.concat " "
  | Some `Already_displayed | None -> Printexc.to_string exn

let parse path =
  match Pparse.parse_implementation ~tool_name:"p2plint" path with
  | ast -> Ok ast
  | exception exn -> Error (exn_summary exn)

let lint_file ~rules ?known ~root ~rel () =
  let known = Option.value known ~default:rules in
  let path = Filename.concat root rel in
  let text = read_file path in
  let comment_sups, comment_errs = Suppress.of_comments ~known ~rel text in
  let ast, parse_violations =
    match parse path with
    | Ok ast -> (Some ast, [])
    | Error message ->
        ( None,
          [
            {
              Rule.code = parse_error_code;
              rule_id = parse_error_id;
              file = rel;
              line = 1;
              col = 0;
              message;
            };
          ] )
  in
  let attr_sups, attr_errs =
    match ast with
    | None -> ([], [])
    | Some ast -> Suppress.of_ast ~known ~rel ast
  in
  let sups = comment_sups @ attr_sups in
  let source = { Rule.path; rel; text; ast } in
  let raw =
    List.concat_map
      (fun (rule : Rule.t) -> if rule.applies rel then rule.check source else [])
      rules
  in
  let kept =
    List.filter (fun v -> not (Suppress.covers ~rules:known sups v)) raw
  in
  List.sort Rule.compare_violation
    (parse_violations @ comment_errs @ attr_errs @ kept)

(* ------------------------------------------------------------------ *)
(* Tree walking. *)

let is_ml name = Filename.check_suffix name ".ml"

let scan_files ~root ~dirs =
  let rec walk rel_dir acc =
    let dir = Filename.concat root rel_dir in
    if not (Sys.file_exists dir && Sys.is_directory dir) then acc
    else
      Array.fold_left
        (fun acc entry ->
          let rel = rel_dir ^ "/" ^ entry in
          let path = Filename.concat root rel in
          if Sys.is_directory path then
            (* [lint_fixtures] holds seeded-violation corpora for the lint
               tests themselves; it is a target only when passed as a root. *)
            if String.equal entry "_build" || String.equal entry "lint_fixtures"
            then acc
            else walk rel acc
          else if is_ml entry then rel :: acc
          else acc)
        acc
        (Sys.readdir dir)
  in
  List.sort String.compare (List.fold_left (fun acc d -> walk d acc) [] dirs)

let lint_tree ~rules ?known ~root ~dirs () =
  let files = scan_files ~root ~dirs in
  let violations =
    List.concat_map (fun rel -> lint_file ~rules ?known ~root ~rel ()) files
  in
  (files, List.sort Rule.compare_violation violations)

(** In-source suppressions for lint rules.

    Two forms are recognized, both requiring a non-empty justification:

    - a single-line comment
      [(* lint: allow <rule> — <justification> *)]
      which suppresses [<rule>] on the comment's own line and on the line
      after it (the separator may be [—], [-] or [:]);
    - an attribute [[\@lint.allow "<rule>: <justification>"]] attached to an
      expression, value binding or structure item, which suppresses
      [<rule>] over the attributed node's whole line span.  The floating
      form [[\@\@\@lint.allow "..."]] suppresses for the entire file.

    [<rule>] is a rule code ([D2]) or id ([unordered-iteration]),
    case-insensitive.  A suppression that names an unknown rule or omits
    the justification does not suppress anything and is itself reported
    (code [S1], [bad-suppression]) — so every silenced finding carries an
    auditable reason.

    The [missing-mli] (H1) rule is file-scoped, so any of its suppressions
    anywhere in the file applies. *)

type t = {
  rule_name : string;  (** As written; matched via {!Rule.matches}. *)
  from_line : int;
  to_line : int;  (** Inclusive. *)
}

val bad_suppression_code : string
val bad_suppression_id : string

val of_comments :
  known:Rule.t list -> rel:string -> string -> t list * Rule.violation list
(** Scan raw file text for comment suppressions.  Returns the suppressions
    and the violations for malformed ones. *)

val of_ast :
  known:Rule.t list ->
  rel:string ->
  Parsetree.structure ->
  t list * Rule.violation list
(** Collect [[\@lint.allow]] attribute suppressions from a parsed file. *)

val covers : rules:Rule.t list -> t list -> Rule.violation -> bool
(** Whether any suppression silences the violation: the named rule must
    match the violation's rule and the violation's line must fall in the
    suppression's range (any range for the file-scoped H1). *)

(* Deterministic per-module call graph + [@hot] propagation.

   See callgraph.mli for the model.  Hashtables here are used strictly
   as membership/lookup maps — never folded or iterated — so every
   output derives from source-order lists and explicit sorts. *)

open Typedtree

type scope = {
  name : string;
  loc : Location.t;
  expr : Typedtree.expression;
  root : bool;
}

(* One structure-level value binding. *)
type binding = {
  b_key : string;  (* Ident.unique_name — unique within the file *)
  b_name : string; (* qualified display name, e.g. "Make.Fifo.pop" *)
  b_loc : Location.t;
  b_expr : expression;
  b_hot : bool;
}

(* A [let[@hot] f = … in] inside some structure-level binding. *)
type local_hot = {
  lh_name : string; (* "owner.f" *)
  lh_loc : Location.t;
  lh_expr : expression;
}

(* Member environment of a named module, for resolving [Pdot] paths
   through the file's own structure. *)
type menv = {
  mutable m_values : (string * string) list; (* member -> binding key *)
  mutable m_mods : (string * menv) list;     (* member -> submodule env *)
}

type t = {
  bindings : binding list; (* source order *)
  by_key : (string, binding) Hashtbl.t;
  edges : (string, string list) Hashtbl.t; (* caller key -> callee keys *)
  local_hots : (string * local_hot list) list; (* owner key, source order *)
  hot : (string, unit) Hashtbl.t; (* keys hot after propagation *)
}

let attr_is_hot (a : Parsetree.attribute) = String.equal a.attr_name.txt "hot"
let has_hot attrs = List.exists attr_is_hot attrs

let rec pattern_idents : type k. k general_pattern -> Ident.t list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> [ id ]
  | Tpat_alias (sub, id, _) -> id :: pattern_idents sub
  | Tpat_tuple ps | Tpat_construct (_, _, ps, _) | Tpat_array ps ->
      List.concat_map pattern_idents ps
  | Tpat_variant (_, Some sub, _) | Tpat_lazy sub | Tpat_exception sub ->
      pattern_idents sub
  | Tpat_record (fields, _) ->
      List.concat_map (fun (_, _, sub) -> pattern_idents sub) fields
  | Tpat_or (a, b, _) -> pattern_idents a @ pattern_idents b
  | Tpat_value v -> pattern_idents (v :> value general_pattern)
  | Tpat_any | Tpat_constant _ | Tpat_variant (_, None, _) -> []

(* ------------------------------------------------------------------ *)
(* Pass 1: collect structure-level bindings and the module-member      *)
(* environment used to resolve Pdot references.                        *)
(* ------------------------------------------------------------------ *)

type collector = {
  mutable c_bindings : binding list; (* reversed source order *)
  c_mod_envs : (string, menv) Hashtbl.t; (* module ident key -> env *)
}

let fresh_menv () = { m_values = []; m_mods = [] }

let rec collect_structure c ~prefix ~env (str : structure) =
  List.iter (collect_item c ~prefix ~env) str.str_items

and collect_item c ~prefix ~env item =
  match item.str_desc with
  | Tstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          let hot = has_hot vb.vb_attributes in
          List.iter
            (fun id ->
              let key = Ident.unique_name id in
              let name = prefix ^ Ident.name id in
              c.c_bindings <-
                {
                  b_key = key;
                  b_name = name;
                  b_loc = vb.vb_loc;
                  b_expr = vb.vb_expr;
                  b_hot = hot;
                }
                :: c.c_bindings;
              env.m_values <- env.m_values @ [ (Ident.name id, key) ])
            (pattern_idents vb.vb_pat))
        vbs
  | Tstr_module mb -> collect_module c ~prefix ~env mb
  | Tstr_recmodule mbs -> List.iter (collect_module c ~prefix ~env) mbs
  | Tstr_include incl -> collect_module_expr c ~prefix ~env incl.incl_mod
  | Tstr_eval _ | Tstr_primitive _ | Tstr_type _ | Tstr_typext _
  | Tstr_exception _ | Tstr_modtype _ | Tstr_open _ | Tstr_class _
  | Tstr_class_type _ | Tstr_attribute _ ->
      ()

and collect_module c ~prefix ~env mb =
  match mb.mb_name.txt with
  | None -> ()
  | Some name ->
      let sub = fresh_menv () in
      env.m_mods <- env.m_mods @ [ (name, sub) ];
      (match mb.mb_id with
      | Some id -> Hashtbl.replace c.c_mod_envs (Ident.unique_name id) sub
      | None -> ());
      collect_module_expr c ~prefix:(prefix ^ name ^ ".") ~env:sub mb.mb_expr

and collect_module_expr c ~prefix ~env me =
  match me.mod_desc with
  | Tmod_structure str -> collect_structure c ~prefix ~env str
  | Tmod_functor (_, body) -> collect_module_expr c ~prefix ~env body
  | Tmod_constraint (inner, _, _, _) -> collect_module_expr c ~prefix ~env inner
  | Tmod_ident _ | Tmod_apply _ | Tmod_apply_unit _ | Tmod_unpack _ -> ()

(* ------------------------------------------------------------------ *)
(* Path resolution against the collected environment.                  *)
(* ------------------------------------------------------------------ *)

let rec resolve_module c (path : Path.t) : menv option =
  match path with
  | Path.Pident id -> Hashtbl.find_opt c.c_mod_envs (Ident.unique_name id)
  | Path.Pdot (parent, name) -> (
      match resolve_module c parent with
      | Some env -> List.assoc_opt name env.m_mods
      | None -> None)
  | Path.Papply _ | Path.Pextra_ty _ -> None

let resolve_value by_key c (path : Path.t) : string option =
  match path with
  | Path.Pident id ->
      let key = Ident.unique_name id in
      if Hashtbl.mem by_key key then Some key else None
  | Path.Pdot (parent, name) -> (
      match resolve_module c parent with
      | Some env -> List.assoc_opt name env.m_values
      | None -> None)
  | Path.Papply _ | Path.Pextra_ty _ -> None

(* ------------------------------------------------------------------ *)
(* Pass 2: per-binding edges and local [@hot] bindings.                *)
(* ------------------------------------------------------------------ *)

(* All same-file structure-level bindings referenced from [e], in first-
   use order, deduplicated. *)
let refs_of ~resolve (e : expression) : string list =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let expr sub (x : expression) =
    (match x.exp_desc with
    | Texp_ident (path, _, _) -> (
        match resolve path with
        | Some key when not (Hashtbl.mem seen key) ->
            Hashtbl.replace seen key ();
            acc := key :: !acc
        | Some _ | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub x
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  List.rev !acc

(* Outermost [let[@hot] …] bindings inside [e] (not descending into a
   hot binding's own expression), in source order. *)
let local_hots_of ~owner (e : expression) : local_hot list =
  let acc = ref [] in
  let expr sub (x : expression) =
    match x.exp_desc with
    | Texp_let (_, vbs, body) ->
        List.iter
          (fun vb ->
            if has_hot vb.vb_attributes then
              let name =
                match pattern_idents vb.vb_pat with
                | id :: _ -> Ident.name id
                | [] -> "_"
              in
              acc :=
                {
                  lh_name = owner ^ "." ^ name;
                  lh_loc = vb.vb_loc;
                  lh_expr = vb.vb_expr;
                }
                :: !acc
            else sub.Tast_iterator.expr sub vb.vb_expr)
          vbs;
        sub.Tast_iterator.expr sub body
    | _ -> Tast_iterator.default_iterator.expr sub x
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Analysis.                                                           *)
(* ------------------------------------------------------------------ *)

let analyze (str : structure) : t =
  let c = { c_bindings = []; c_mod_envs = Hashtbl.create 16 } in
  collect_structure c ~prefix:"" ~env:(fresh_menv ()) str;
  let bindings = List.rev c.c_bindings in
  let by_key = Hashtbl.create 64 in
  List.iter (fun b -> Hashtbl.replace by_key b.b_key b) bindings;
  let resolve = resolve_value by_key c in
  let edges = Hashtbl.create 64 in
  let local_hots =
    List.filter_map
      (fun b ->
        Hashtbl.replace edges b.b_key (refs_of ~resolve b.b_expr);
        match local_hots_of ~owner:b.b_name b.b_expr with
        | [] -> None
        | lhs -> Some (b.b_key, lhs))
      bindings
  in
  (* Seeds: [@hot] structure bindings, plus everything a local [@hot]
     binding references (the local binding itself is not a graph node —
     its scope is emitted directly). *)
  let hot = Hashtbl.create 16 in
  let worklist = ref [] in
  let seed key =
    if not (Hashtbl.mem hot key) then begin
      Hashtbl.replace hot key ();
      worklist := key :: !worklist
    end
  in
  List.iter (fun b -> if b.b_hot then seed b.b_key) bindings;
  List.iter
    (fun (_, lhs) ->
      List.iter (fun lh -> List.iter seed (refs_of ~resolve lh.lh_expr)) lhs)
    local_hots;
  let rec propagate () =
    match !worklist with
    | [] -> ()
    | key :: rest ->
        worklist := rest;
        (match Hashtbl.find_opt edges key with
        | Some callees -> List.iter seed callees
        | None -> ());
        propagate ()
  in
  propagate ();
  { bindings; by_key; edges; local_hots; hot }

let hot_scopes t : scope list =
  List.concat_map
    (fun b ->
      if Hashtbl.mem t.hot b.b_key then
        [ { name = b.b_name; loc = b.b_loc; expr = b.b_expr; root = b.b_hot } ]
      else
        (* Local hot bindings stand alone only when their owner is not
           itself hot (a hot owner's scope already spans them). *)
        match List.assoc_opt b.b_key t.local_hots with
        | None -> []
        | Some lhs ->
            List.map
              (fun lh ->
                { name = lh.lh_name; loc = lh.lh_loc; expr = lh.lh_expr;
                  root = true })
              lhs)
    t.bindings

let hot_names t =
  List.sort_uniq String.compare (List.map (fun s -> s.name) (hot_scopes t))

let is_toplevel t id = Hashtbl.mem t.by_key (Ident.unique_name id)

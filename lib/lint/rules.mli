(** The default rule registry of [p2plint].

    Every rule is purely syntactic (parsetree-level, no typing), erring on
    the side of flagging: a site the analysis cannot prove safe is reported
    and must either be rewritten or carry a justified suppression.

    - [D1 ambient-nondeterminism] — [Random.*], [Sys.time],
      [Unix.gettimeofday] and [*self_init*] anywhere but [lib/stdx/prng.ml];
      all randomness and time must flow through seeded [Stdx.Prng] values
      and virtual clocks.
    - [D2 unordered-iteration] — [Hashtbl.fold]/[Hashtbl.iter] whose
      callback is order-sensitive.  A fold auto-passes only when its body is
      a conservative commutative reduction over the accumulator:
      combinations of [+], [*], [land]/[lor]/[lxor], [&&]/[||], [max]/[min]
      (integer operators only — float addition is not associative, so [+.]
      does not pass), possibly under [if]/[match].  Everything else —
      building lists, I/O, unknown functions, every [iter] — is flagged;
      route it through [Stdx.Det_tbl].
    - [D3 phys-equal] — physical equality ([==]/[!=]) and [Obj.magic]:
      representation-dependent and a determinism/refactor hazard.
    - [E1 catch-all-handler] — [try … with _ ->] and [with Failure _ ->]
      swallow unexpected exceptions, hiding broken invariants.
    - [H1 missing-mli] — every module under [lib/] must have an interface.
    - [O1 metric-naming] — metric name literals passed to
      [counter]/[gauge]/[histogram] registrations must match
      [p2pindex_<subsystem>_<name>]; counters must end in [_total] (and
      only counters or [_seconds]-suffixed durations may carry a unit
      suffix).  Not applied under [test/], where registry tests exercise
      arbitrary names.

    The typed P-series (P1 hot-closure, P2 polymorphic-compare, P3
    boxed-allocation, P4 list-per-event) lives in {!Typed_rules} and runs
    over [.cmt] files via {!Typed_engine}; {!typed} exposes its registry
    stubs so CLI selection and suppression validation share one
    namespace. *)

val all : Rule.t list
(** Every syntactic rule, in code order (D1, D2, D3, E1, H1, O1). *)

val typed : Rule.t list
(** The typed P-series registry stubs, in code order (P1–P4).  Their
    [check] functions are no-ops — {!Typed_engine.run} performs the real
    checks. *)

val everything : Rule.t list
(** [all @ typed] — the full rule namespace. *)

val find : string -> Rule.t option
(** Look up a rule by code or id, case-insensitive, across
    {!everything}. *)

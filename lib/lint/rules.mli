(** The default rule registry of [p2plint].

    Every rule is purely syntactic (parsetree-level, no typing), erring on
    the side of flagging: a site the analysis cannot prove safe is reported
    and must either be rewritten or carry a justified suppression.

    - [D1 ambient-nondeterminism] — [Random.*], [Sys.time],
      [Unix.gettimeofday] and [*self_init*] anywhere but [lib/stdx/prng.ml];
      all randomness and time must flow through seeded [Stdx.Prng] values
      and virtual clocks.
    - [D2 unordered-iteration] — [Hashtbl.fold]/[Hashtbl.iter] whose
      callback is order-sensitive.  A fold auto-passes only when its body is
      a conservative commutative reduction over the accumulator:
      combinations of [+], [*], [land]/[lor]/[lxor], [&&]/[||], [max]/[min]
      (integer operators only — float addition is not associative, so [+.]
      does not pass), possibly under [if]/[match].  Everything else —
      building lists, I/O, unknown functions, every [iter] — is flagged;
      route it through [Stdx.Det_tbl].
    - [D3 phys-equal] — physical equality ([==]/[!=]) and [Obj.magic]:
      representation-dependent and a determinism/refactor hazard.
    - [E1 catch-all-handler] — [try … with _ ->] and [with Failure _ ->]
      swallow unexpected exceptions, hiding broken invariants.
    - [H1 missing-mli] — every module under [lib/] must have an interface.
    - [O1 metric-naming] — metric name literals passed to
      [counter]/[gauge]/[histogram] registrations must match
      [p2pindex_<subsystem>_<name>]; counters must end in [_total] (and
      only counters or [_seconds]-suffixed durations may carry a unit
      suffix).  Not applied under [test/], where registry tests exercise
      arbitrary names. *)

val all : Rule.t list
(** Every rule, in code order (D1, D2, D3, E1, H1, O1). *)

val find : string -> Rule.t option
(** Look up a rule by code or id, case-insensitive. *)

(** Shared node-liveness state.

    Under churn, several layers must agree on which peers are currently
    alive: the replicated stores skip dead replicas, the index layer
    retries lookups against live ones, and the simulation's churn driver
    flips nodes between the two states.  This module is that single
    source of truth — one mutable alive set, shared by reference between
    every component built over the same node population.

    A fresh liveness set has every node alive, which is exactly the
    static (churn-free) world: components that never receive a shared
    set create a private one and behave as before. *)

type t

val create : node_count:int -> t
(** All [node_count] nodes alive.
    @raise Invalid_argument when [node_count <= 0]. *)

val node_count : t -> int

val alive : t -> int -> bool
(** @raise Invalid_argument on an out-of-range node index. *)

val fail : t -> int -> bool
(** Mark a node dead; returns false when it already was (idempotent). *)

val revive : t -> int -> bool
(** Mark a node alive; returns false when it already was. *)

val live_count : t -> int
(** Number of currently live nodes (O(1)). *)

val first_live_in : t -> int array -> pos:int -> len:int -> int
(** The first live node among [nodes.(pos) .. nodes.(pos+len-1)], in
    order, or [-1] when every candidate in the range is dead — the
    allocation-free primitive behind replica failover.
    @raise Invalid_argument when the range falls outside [nodes]. *)

val first_live_buf : t -> Stdx.Arena.Int_buf.t -> int
(** {!first_live_in} over a resolved replica scratch buffer. *)

val first_live : t -> int list -> int option
(** The first live node of a candidate list (e.g. a replica set), in
    order; [None] when every candidate is dead.  Thin list wrapper kept
    for tests and cold paths — hot paths use {!first_live_in}. *)

val all_alive : t -> bool

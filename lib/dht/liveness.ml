type t = { alive : bool array; mutable live : int }

let create ~node_count =
  if node_count <= 0 then invalid_arg "Liveness.create: need at least one node";
  { alive = Array.make node_count true; live = node_count }

let node_count t = Array.length t.alive

let check t node =
  if node < 0 || node >= Array.length t.alive then
    invalid_arg "Liveness: bad node index"

let alive t node =
  check t node;
  t.alive.(node)

let fail t node =
  check t node;
  if t.alive.(node) then begin
    t.alive.(node) <- false;
    t.live <- t.live - 1;
    true
  end
  else false

let revive t node =
  check t node;
  if t.alive.(node) then false
  else begin
    t.alive.(node) <- true;
    t.live <- t.live + 1;
    true
  end

let live_count t = t.live

let first_live t nodes = List.find_opt (fun node -> alive t node) nodes

let all_alive t = t.live = Array.length t.alive

(* Packed-bitset liveness: one bit per node plus a live counter.  The
   bitset is unchecked — [check] below validates once per public call,
   so the hot [alive] probe costs a shift and a mask, no bounds test
   inside the Bytes access. *)

type t = { alive : Stdx.Arena.Bitset.t; mutable live : int }

let create ~node_count =
  if node_count <= 0 then invalid_arg "Liveness.create: need at least one node";
  {
    alive = Stdx.Arena.Bitset.create ~checked:false ~len:node_count ~default:true ();
    live = node_count;
  }

let node_count t = Stdx.Arena.Bitset.length t.alive

let check t node =
  if node < 0 || node >= Stdx.Arena.Bitset.length t.alive then
    invalid_arg "Liveness: bad node index"

let[@hot] alive t node =
  check t node;
  Stdx.Arena.Bitset.get t.alive node

let fail t node =
  check t node;
  if Stdx.Arena.Bitset.get t.alive node then begin
    Stdx.Arena.Bitset.set t.alive node false;
    t.live <- t.live - 1;
    true
  end
  else false

let revive t node =
  check t node;
  if Stdx.Arena.Bitset.get t.alive node then false
  else begin
    Stdx.Arena.Bitset.set t.alive node true;
    t.live <- t.live + 1;
    true
  end

let live_count t = t.live

let[@hot] rec scan_array t nodes i stop =
  if i >= stop then -1
  else begin
    let node = Array.unsafe_get nodes i in
    check t node;
    if Stdx.Arena.Bitset.get t.alive node then node
    else scan_array t nodes (i + 1) stop
  end

let[@hot] first_live_in t nodes ~pos ~len =
  let stop = pos + len in
  if pos < 0 || len < 0 || stop > Array.length nodes then
    invalid_arg "Liveness.first_live_in: bad range";
  scan_array t nodes pos stop

let[@hot] rec scan_buf t buf i n =
  if i >= n then -1
  else begin
    let node = Stdx.Arena.Int_buf.unsafe_get buf i in
    check t node;
    if Stdx.Arena.Bitset.get t.alive node then node
    else scan_buf t buf (i + 1) n
  end

let[@hot] first_live_buf t buf =
  scan_buf t buf 0 (Stdx.Arena.Int_buf.length buf)

let first_live t nodes = List.find_opt (fun node -> alive t node) nodes

let all_alive t = t.live = Stdx.Arena.Bitset.length t.alive

(** Chord (Stoica et al., SIGCOMM 2001) — the reference DHT substrate.

    A full single-process implementation of the protocol: the 160-bit ring,
    per-node finger tables, successor lists, iterative lookup with
    closest-preceding-finger routing, join, the periodic stabilization /
    notify / fix-fingers maintenance loop, and failure handling through
    successor lists.

    Nodes are driven synchronously: the simulation calls {!stabilize_round}
    explicitly, so every run is deterministic.  Lookups report their hop
    count, which the substrate-ablation benchmark uses to charge real routing
    costs under the indexing layer. *)

type t

val create : ?metrics:Obs.Metrics.t -> ?seed:int64 -> ?successor_list_length:int -> unit -> t
(** An empty ring.  [successor_list_length] (default 8) bounds the
    per-node successor list used for failure recovery.  With [metrics],
    maintenance rounds and abandoned lookups are counted in the registry
    ([p2pindex_chord_stabilization_rounds_total],
    [p2pindex_chord_failed_lookups_total]). *)

val create_network :
  ?metrics:Obs.Metrics.t ->
  ?seed:int64 ->
  ?successor_list_length:int ->
  node_count:int ->
  unit ->
  t
(** [create_network ~node_count ()] bootstraps a ring of [node_count] nodes
    with fully correct routing state (joins followed by stabilization until
    convergence). *)

val join : t -> Hashing.Key.t
(** Add one node with a fresh pseudo-random identifier, bootstrapping through
    an arbitrary live node; returns the new node's identifier.  The node is
    immediately linked to its successor; background stabilization completes
    its fingers. *)

val join_with_key : t -> Hashing.Key.t -> unit
(** Add a node with an explicit identifier (for tests).
    @raise Invalid_argument if the identifier is already present. *)

val leave : t -> Hashing.Key.t -> unit
(** Fail the node with the given identifier (abrupt departure — no goodbye
    messages, mimicking churn).  @raise Not_found if no such live node. *)

val live_count : t -> int

val live_keys : t -> Hashing.Key.t list
(** Identifiers of live nodes, in ring order. *)

val stabilize_round : t -> unit
(** One maintenance round on every live node: stabilize + notify, check
    predecessor, refresh successor list, and fix every finger. *)

val stabilize : t -> rounds:int -> unit
(** Run several rounds. *)

val lookup : t -> ?from:Hashing.Key.t -> Hashing.Key.t -> Hashing.Key.t * int
(** [lookup t key] routes from [from] (default: the first live node) to the
    node responsible for [key] using finger tables; returns the responsible
    node's identifier and the hop count.  @raise Not_found on an empty
    ring. *)

val responsible_oracle : t -> Hashing.Key.t -> Hashing.Key.t
(** Ground truth from global knowledge: the live successor of [key].  Tests
    compare {!lookup} against this. *)

val is_converged : t -> bool
(** True when every live node's successor pointer and every finger entry
    match the oracle — i.e. stabilization has fully repaired the ring. *)

val resolver : t -> Resolver.t
(** Resolver view over live nodes: node indexes are positions in ring order
    (as in {!live_keys}); [route_hops] is the measured lookup hop count. *)

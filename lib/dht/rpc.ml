module Plan = Faults.Plan

(* The querying client's endpoint in fault-plan terms: not a DHT node,
   so it sits outside the node index space. *)
let client = -1

type config = {
  timeout : float;
  retries : int;
  backoff : float;
  backoff_factor : float;
  jitter : float;
  hedge : bool;
  hedge_delay : float;
}

let default_config =
  {
    timeout = 0.5;
    retries = 2;
    backoff = 0.05;
    backoff_factor = 2.0;
    jitter = 0.5;
    hedge = false;
    hedge_delay = 0.25;
  }

let validate_config c =
  let pos name v =
    if not (Float.is_finite v && v > 0.0) then
      invalid_arg (Printf.sprintf "Rpc.create: %s must be finite and > 0" name)
  in
  let non_neg name v =
    if not (Float.is_finite v && v >= 0.0) then
      invalid_arg (Printf.sprintf "Rpc.create: %s must be finite and >= 0" name)
  in
  pos "timeout" c.timeout;
  pos "hedge_delay" c.hedge_delay;
  non_neg "backoff" c.backoff;
  non_neg "jitter" c.jitter;
  if c.retries < 0 then invalid_arg "Rpc.create: retries must be >= 0";
  if not (Float.is_finite c.backoff_factor && c.backoff_factor >= 1.0) then
    invalid_arg "Rpc.create: backoff_factor must be >= 1"

type clock = { now : unit -> float; advance : float -> unit }

let private_clock () =
  let t = ref 0.0 in
  { now = (fun () -> !t); advance = (fun dt -> t := !t +. dt) }

type 'a reply = Reply of { bytes : int; value : 'a } | No_response

type 'a outcome = Answered of { value : 'a; node : int } | Exhausted

type instruments = {
  calls : Obs.Metrics.Counter.t;
  exhausted : Obs.Metrics.Counter.t;
  attempts : Obs.Metrics.Histogram.t;
  timeouts : Obs.Metrics.Counter.t;
  retries : Obs.Metrics.Counter.t;
  hedges : Obs.Metrics.Counter.t;
  hedges_won : Obs.Metrics.Counter.t;
  duplicates_suppressed : Obs.Metrics.Counter.t;
  lost_requests : Obs.Metrics.Counter.t;
  lost_responses : Obs.Metrics.Counter.t;
  lost_oneway : Obs.Metrics.Counter.t;
  rtt : Obs.Metrics.Histogram.t;
  oneway : Obs.Metrics.Counter.t;
}

let make_instruments registry =
  let counter ?labels help name = Obs.Metrics.counter registry ~help ?labels name in
  let lost direction =
    counter
      ~labels:[ ("direction", direction) ]
      "Messages the fault plan dropped, by direction"
      "p2pindex_rpc_lost_messages_total"
  in
  {
    calls = counter "RPC calls issued" "p2pindex_rpc_calls_total";
    exhausted =
      counter "RPC calls that exhausted every attempt"
        "p2pindex_rpc_exhausted_total";
    attempts =
      Obs.Metrics.histogram registry ~help:"Attempts per RPC call"
        ~buckets:(Obs.Metrics.linear_buckets ~start:1.0 ~step:1.0 ~count:8)
        "p2pindex_rpc_attempts_per_call";
    timeouts = counter "Attempts that timed out" "p2pindex_rpc_timeouts_total";
    retries = counter "Retries issued after a timeout" "p2pindex_rpc_retries_total";
    hedges = counter "Hedged second requests fired" "p2pindex_rpc_hedges_total";
    hedges_won =
      counter "Hedged requests that answered first" "p2pindex_rpc_hedges_won_total";
    duplicates_suppressed =
      counter "Duplicate deliveries discarded by the client"
        "p2pindex_rpc_duplicates_suppressed_total";
    lost_requests = lost "request";
    lost_responses = lost "response";
    lost_oneway = lost "oneway";
    rtt =
      Obs.Metrics.histogram registry
        ~help:"Round-trip time of successful RPC calls (virtual seconds)"
        ~buckets:(Obs.Metrics.exponential_buckets ~start:0.001 ~factor:2.0 ~count:12)
        "p2pindex_rpc_rtt_seconds";
    oneway = counter "One-way messages sent" "p2pindex_rpc_oneway_total";
  }

type t = {
  network : Network.t option;
  plan : Plan.t;
  config : config;
  clock : clock;
  resolver : Resolver.t option;
  charge_route_hops : bool;
  outbox : Faults.Outbox.t;
  instruments : instruments option;
}

let create ?network ?metrics ?(plan = Plan.zero) ?(config = default_config)
    ?clock ?resolver ?(charge_route_hops = false) () =
  validate_config config;
  let clock = match clock with Some c -> c | None -> private_clock () in
  {
    network;
    plan;
    config;
    clock;
    resolver;
    charge_route_hops;
    outbox = Faults.Outbox.create ();
    instruments = Option.map make_instruments metrics;
  }

let plan t = t.plan
let settings t = t.config
let now t = t.clock.now ()
let fault_free t = Plan.is_zero t.plan

let bump t pick =
  match t.instruments with
  | None -> ()
  | Some ins -> Obs.Metrics.Counter.incr (pick ins)

let observe t pick v =
  match t.instruments with
  | None -> ()
  | Some ins -> Obs.Metrics.Histogram.observe (pick ins) v

(* ------------------------------------------------------------------ *)
(* Billing: the network is an accounting layer, so every copy the
   sender puts on the wire is charged whether or not it arrives. *)

let bill t ~dst ~bytes ~category ~copies =
  match t.network with
  | None -> ()
  | Some net ->
      for _ = 1 to copies do
        Network.send net ~dst ~bytes ~category
      done

(* Exactly the billing the index layer historically performed per
   request: the request itself plus, when route hops are charged,
   (hops - 1) forwarded copies as maintenance. *)
let bill_request t ~dst ~bytes ~copies ~route_key =
  match t.network with
  | None -> ()
  | Some net ->
      for _ = 1 to copies do
        Network.send net ~dst ~bytes ~category:Network.Request
      done;
      if t.charge_route_hops then (
        match route_key with
        | None -> ()
        | Some key -> (
            match t.resolver with
            | None -> ()
            | Some resolver ->
                let hops = Resolver.route_hops resolver key in
                if hops > 1 then
                  Network.send net ~dst ~bytes:((hops - 1) * bytes)
                    ~category:Network.Maintenance))

let touch t ~dst =
  match t.network with None -> () | Some net -> Network.touch net ~node:dst

(* Under a faulty plan each substrate forwarding hop can drop the
   request independently — the overlay path is only as reliable as its
   weakest link. *)
let forwarding_hops_survive t ~dst ~route_key =
  match route_key with
  | Some key when t.charge_route_hops -> (
      match t.resolver with
      | Some resolver ->
          let hops = Resolver.route_hops resolver key in
          let ok = ref true in
          for _ = 2 to hops do
            if not (Plan.hop_survives t.plan ~dst) then ok := false
          done;
          !ok
      | None -> true)
  | Some _ | None -> true

(* ------------------------------------------------------------------ *)
(* One request/response leg.  Returns [Some (rtt, value)] when both
   directions were delivered (the caller checks the deadline), [None]
   when the request or response was lost or the node never answered. *)

let[@hot] exchange t ~dst ~route_key ~request_bytes ~handler =
  let v_req = Plan.message t.plan ~src:client ~dst in
  let req_copies = if v_req.Plan.duplicated then 2 else 1 in
  bill_request t ~dst ~bytes:request_bytes ~copies:req_copies ~route_key;
  let survives = forwarding_hops_survive t ~dst ~route_key in
  if v_req.Plan.lost || not survives then begin
    bump t (fun i -> i.lost_requests);
    None
  end
  else
    match handler ~node:dst with
    | No_response -> None
    | Reply { bytes; value } ->
        touch t ~dst;
        (* A duplicated request reaches the node twice: the handler runs
           again (exercising idempotence) and its extra answer is billed
           and then discarded by the client. *)
        if v_req.Plan.duplicated then begin
          ignore (handler ~node:dst);
          bump t (fun i -> i.duplicates_suppressed)
        end;
        let v_resp = Plan.message t.plan ~src:dst ~dst:client in
        let resp_copies =
          (if v_req.Plan.duplicated then 1 else 0)
          + if v_resp.Plan.duplicated then 2 else 1
        in
        bill t ~dst ~bytes ~category:Network.Response ~copies:resp_copies;
        if v_resp.Plan.duplicated then bump t (fun i -> i.duplicates_suppressed);
        if v_resp.Plan.lost then begin
          bump t (fun i -> i.lost_responses);
          None
        end
        else
          (* lint: allow P3 — API boundary: one (rtt, value) pair per completed exchange, consumed immediately *)
          Some (v_req.Plan.latency +. v_resp.Plan.latency, value)

(* ------------------------------------------------------------------ *)
(* The fault-free fast path: single attempt, no clock movement — the
   exact historical charge sequence (request, hop maintenance, touch,
   response), with a dead node costing only the unanswered request. *)

let[@hot] fast_call t ~dst ~route_key ~request_bytes ~handler =
  bill_request t ~dst ~bytes:request_bytes ~copies:1 ~route_key;
  match handler ~node:dst with
  | No_response ->
      bump t (fun i -> i.exhausted);
      Exhausted
  | Reply { bytes; value } ->
      touch t ~dst;
      bill t ~dst ~bytes ~category:Network.Response ~copies:1;
      observe t (fun i -> i.attempts) 1.0;
      observe t (fun i -> i.rtt) 0.0;
      Answered { value; node = dst }

(* The full cascade, parameterized over who absorbs the elapsed time:
   [call] advances the shared clock in place (mid-cascade advancement is
   observable — soft-state reads during retries see the later time);
   [call_async] accumulates it into a private counter so an engine can
   schedule the completion on its own event queue instead. *)
let run_call t ~advance ~dst ?hedge_dst ?route_key ~request_bytes ~handler () =
  bump t (fun i -> i.calls);
  if Plan.is_zero t.plan then fast_call t ~dst ~route_key ~request_bytes ~handler
  else begin
    let timeout = t.config.timeout in
    let succeed ~attempts ~elapsed ~node value =
      observe t (fun i -> i.attempts) (float_of_int attempts);
      observe t (fun i -> i.rtt) elapsed;
      advance elapsed;
      Answered { value; node }
    in
    let rec attempt k =
      let primary = exchange t ~dst ~route_key ~request_bytes ~handler in
      let completion =
        match (k, t.config.hedge, hedge_dst) with
        | 0, true, Some hdst -> (
            match primary with
            | Some (rtt, v) when rtt <= t.config.hedge_delay && rtt <= timeout ->
                (* Answered before the hedge would have fired. *)
                Some (rtt, v, dst)
            | _ ->
                bump t (fun i -> i.hedges);
                let hedge =
                  exchange t ~dst:hdst ~route_key ~request_bytes ~handler
                in
                let pc =
                  match primary with
                  | Some (rtt, v) when rtt <= timeout -> Some (rtt, v, dst)
                  | _ -> None
                in
                let hc =
                  match hedge with
                  | Some (rtt, v) when t.config.hedge_delay +. rtt <= timeout ->
                      Some (t.config.hedge_delay +. rtt, v, hdst)
                  | _ -> None
                in
                let won c =
                  bump t (fun i -> i.hedges_won);
                  c
                in
                (match (pc, hc) with
                | Some (tp, _, _), Some (th, _, _) ->
                    if tp <= th then pc else won hc
                | Some _, None -> pc
                | None, Some _ -> won hc
                | None, None -> None))
        | _ -> (
            match primary with
            | Some (rtt, v) when rtt <= timeout -> Some (rtt, v, dst)
            | _ -> None)
      in
      match completion with
      | Some (elapsed, v, node) -> succeed ~attempts:(k + 1) ~elapsed ~node v
      | None ->
          bump t (fun i -> i.timeouts);
          advance timeout;
          if k < t.config.retries then begin
            bump t (fun i -> i.retries);
            let pause =
              t.config.backoff
              *. (t.config.backoff_factor ** float_of_int k)
              *. (1.0 +. (t.config.jitter *. Plan.control_uniform t.plan))
            in
            if pause > 0.0 then advance pause;
            attempt (k + 1)
          end
          else begin
            observe t (fun i -> i.attempts) (float_of_int (k + 1));
            bump t (fun i -> i.exhausted);
            Exhausted
          end
    in
    attempt 0
  end

let call t ~dst ?hedge_dst ?route_key ~request_bytes ~handler () =
  run_call t ~advance:t.clock.advance ~dst ?hedge_dst ?route_key ~request_bytes
    ~handler ()

let call_async t ~dst ?hedge_dst ?route_key ~request_bytes ~handler ~on_complete
    () =
  let elapsed = ref 0.0 in
  let outcome =
    run_call t
      ~advance:(fun dt -> elapsed := !elapsed +. dt)
      ~dst ?hedge_dst ?route_key ~request_bytes ~handler ()
  in
  on_complete ~elapsed:!elapsed outcome

(* ------------------------------------------------------------------ *)
(* One-way messages. *)

let send_oneway ?(lossy = false) t ~dst ~bytes ~category ~deliver =
  bump t (fun i -> i.oneway);
  if Plan.is_zero t.plan || not lossy then begin
    (* Reliable (or fault-free) delivery is immediate; keep the
       historical bill-only-when-the-delivery-had-effect accounting. *)
    if deliver () then bill t ~dst ~bytes ~category ~copies:1
  end
  else begin
    let v = Plan.message t.plan ~src:client ~dst in
    let copies = if v.Plan.duplicated then 2 else 1 in
    (* Sender pays at send time, delivered or not. *)
    bill t ~dst ~bytes ~category ~copies;
    if v.Plan.lost then bump t (fun i -> i.lost_oneway)
    else begin
      let run () = ignore (deliver ()) in
      if v.Plan.latency = 0.0 then begin
        run ();
        if v.Plan.duplicated then run ()
      end
      else begin
        let arrival = t.clock.now () +. v.Plan.latency in
        Faults.Outbox.post t.outbox ~time:arrival run;
        if v.Plan.duplicated then Faults.Outbox.post t.outbox ~time:arrival run
      end
    end
  end

let deliver_until t ~now = Faults.Outbox.deliver_until t.outbox ~now
let flush_deliveries t = Faults.Outbox.flush t.outbox
let pending_deliveries t = Faults.Outbox.pending t.outbox

(* ------------------------------------------------------------------ *)

let walk_replicas ~replicas ~probe =
  let rec go ~attempts = function
    | [] -> (None, attempts)
    | node :: rest -> (
        let attempts = attempts + 1 in
        match probe ~node ~rest with
        | Some _ as answer -> (answer, attempts)
        | None -> go ~attempts rest)
  in
  go ~attempts:0 replicas

let rec walk_buf_go replicas probe n i =
  if i >= n then
    (* lint: allow P3 — API boundary: one (answer, attempts) pair per walk, destructured immediately by callers *)
    (None, i)
  else begin
    let node = Stdx.Arena.Int_buf.unsafe_get replicas i in
    let next =
      if i + 1 < n then Stdx.Arena.Int_buf.unsafe_get replicas (i + 1) else -1
    in
    match probe ~node ~next with
    | Some _ as answer ->
        (* lint: allow P3 — API boundary: one (answer, attempts) pair per walk, destructured immediately by callers *)
        (answer, i + 1)
    | None -> walk_buf_go replicas probe n (i + 1)
  end

let[@hot] walk_replicas_buf ~replicas ~probe =
  walk_buf_go replicas probe (Stdx.Arena.Int_buf.length replicas) 0

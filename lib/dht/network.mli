(** Simulated message-passing layer with traffic accounting.

    The evaluation (Section V) measures traffic in bytes per query, split
    into normal lookup traffic and cache-maintenance traffic (Fig. 12), and
    the per-node query load (Fig. 15).  This module is that measuring
    instrument: every message the index layer sends is recorded here, with
    its size, category and destination node. *)

type category =
  | Request  (** A query sent towards the node responsible for a key. *)
  | Response  (** The result set returned to the requester. *)
  | Cache_update  (** Traffic spent installing shortcut cache entries. *)
  | Maintenance  (** Substrate upkeep (index insertion, stabilization). *)

val category_label : category -> string

type t

val create : ?metrics:Obs.Metrics.t -> node_count:int -> unit -> t
(** A network of [node_count] peers, all counters at zero.  With
    [metrics], the network doubles as a thin client of the registry:
    every [send]/[touch] also bumps the
    [p2pindex_network_{messages,bytes,touches}_total] counters (bytes and
    messages labelled by category), and {!reset} zeroes them in lock-step,
    so registry totals always equal {!total_messages}/{!total_bytes}. *)

val node_count : t -> int

val send : t -> dst:int -> bytes:int -> category:category -> unit
(** Record a message of [bytes] delivered to node [dst].
    @raise Invalid_argument if [dst] is not a valid node index or
    [bytes] is negative (a negative count would silently corrupt the
    traffic totals). *)

val touch : t -> node:int -> unit
(** Record that the current query accessed node [node] (one count per
    interaction) — the Fig. 15 hot-spot measure. *)

val messages : t -> category -> int
val bytes : t -> category -> int

val total_messages : t -> int
val total_bytes : t -> int

val touches : t -> int array
(** Per-node access counts (a fresh copy). *)

val reset : t -> unit
(** Zero every counter (e.g. after warming up the indexes). *)

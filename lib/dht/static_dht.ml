module Key = Hashing.Key

type t = { keys : Key.t array }

let of_keys keys =
  if Array.length keys = 0 then invalid_arg "Static_dht.of_keys: no nodes";
  let sorted = Array.copy keys in
  Array.sort Key.compare sorted;
  for i = 1 to Array.length sorted - 1 do
    if Key.equal sorted.(i - 1) sorted.(i) then
      invalid_arg "Static_dht.of_keys: duplicate node identifier"
  done;
  { keys = sorted }

let create ?(seed = 1L) ~node_count () =
  if node_count <= 0 then invalid_arg "Static_dht.create: need at least one node";
  let g = Stdx.Prng.create ~seed in
  let table = Hashtbl.create node_count in
  let rec fresh () =
    let k = Key.random g in
    if Hashtbl.mem table k then fresh ()
    else begin
      Hashtbl.add table k ();
      k
    end
  in
  of_keys (Array.init node_count (fun _ -> fresh ()))

let node_count t = Array.length t.keys

let node_key t i =
  if i < 0 || i >= Array.length t.keys then invalid_arg "Static_dht.node_key: bad index";
  t.keys.(i)

let responsible t key =
  (* First node whose identifier is >= key, wrapping to node 0: binary
     search over the sorted ring positions. *)
  let n = Array.length t.keys in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Key.compare t.keys.(mid) key >= 0 then search lo mid else search (mid + 1) hi
  in
  let i = search 0 n in
  if i = n then 0 else i

let resolver t =
  let count = node_count t in
  {
    Resolver.node_count = count;
    responsible = responsible t;
    route_hops = (fun _ -> 1);
    replicas =
      (fun key r -> Resolver.ring_replicas ~node_count:count ~primary:(responsible t key) r);
    replicas_into =
      (fun key r buf ->
        Resolver.ring_replicas_into ~node_count:count ~primary:(responsible t key) r buf);
  }

(** Fault-aware request/response messaging over the accounting network.

    {!Network.t} only measures traffic; this layer adds delivery
    semantics on top of it.  Every RPC consults a {!Faults.Plan} for a
    per-message verdict (lost, delayed, duplicated), waits out a
    deadline, retries with exponential backoff and jitter, and can hedge
    the first attempt with a second request to the next replica.  All
    decisions are pure functions of the plan seed, so a faulty run
    replays bit-for-bit.

    With the zero plan, {!call} degenerates to exactly the billing the
    pre-fault code performed — one request (plus optional route-hop
    maintenance), a touch and one response when the handler answers —
    and never advances the clock, so fault-free simulations stay
    byte-identical to their historical output. *)

type config = {
  timeout : float;  (** Virtual seconds an attempt waits for its reply. *)
  retries : int;  (** Extra attempts after the first one times out. *)
  backoff : float;  (** Base pause before the first retry. *)
  backoff_factor : float;  (** Multiplier applied per further retry. *)
  jitter : float;
      (** Relative jitter: each pause is scaled by a uniform factor in
          [1, 1 + jitter]. *)
  hedge : bool;  (** Fire a second request when the first runs long. *)
  hedge_delay : float;
      (** How long the first attempt may run before the hedge fires. *)
}

val default_config : config
(** timeout 0.5, retries 2, backoff 0.05 doubling, jitter 0.5, hedging
    off with a 0.25 hedge delay. *)

type clock = { now : unit -> float; advance : float -> unit }
(** The virtual clock RPCs spend time on.  [advance] is called with the
    round-trip time of a successful call, the full [timeout] of a failed
    attempt and every backoff pause. *)

type 'a reply =
  | Reply of { bytes : int; value : 'a }
      (** The node answered with a [bytes]-sized response. *)
  | No_response  (** The node is down; the request is never answered. *)

type 'a outcome =
  | Answered of { value : 'a; node : int }
      (** [node] is the replica whose answer won (the hedge target when
          the hedge came back first). *)
  | Exhausted
      (** Every attempt timed out or was lost — degrade gracefully. *)

type t

val create :
  ?network:Network.t ->
  ?metrics:Obs.Metrics.t ->
  ?plan:Faults.Plan.t ->
  ?config:config ->
  ?clock:clock ->
  ?resolver:Resolver.t ->
  ?charge_route_hops:bool ->
  unit ->
  t
(** [create ()] with the defaults is a transparent channel: zero plan,
    private clock, no billing.  [network] receives the byte accounting;
    [charge_route_hops] (default false, requires [resolver]) bills
    substrate forwarding hops as maintenance and — under a faulty plan —
    lets each forwarding hop drop the request.  With [metrics], the
    [p2pindex_rpc_*] counter/histogram families are registered; leave it
    unset on fault-free runs to keep snapshots unchanged.
    @raise Invalid_argument on a non-positive timeout or hedge delay,
    negative retries/backoff/jitter, or a backoff factor below 1. *)

val plan : t -> Faults.Plan.t
val settings : t -> config
val now : t -> float

val fault_free : t -> bool
(** True when the plan is zero — the byte-identical fast path. *)

val call :
  t ->
  dst:int ->
  ?hedge_dst:int ->
  ?route_key:Hashing.Key.t ->
  request_bytes:int ->
  handler:(node:int -> 'a reply) ->
  unit ->
  'a outcome
(** One request/response exchange with [dst].  The [handler] plays the
    remote node: it runs once per request copy the network delivers
    (twice for a duplicated request — idempotence is exercised, the
    duplicate answer suppressed) and never runs for a lost request.
    [route_key] keys the route-hop billing and per-hop faulting;
    [hedge_dst] is the replica the hedged second request goes to (only
    used when hedging is configured; must itself hold the data).
    Billing is sender-pays: requests and responses are charged to the
    network even when the plan then loses them. *)

val call_async :
  t ->
  dst:int ->
  ?hedge_dst:int ->
  ?route_key:Hashing.Key.t ->
  request_bytes:int ->
  handler:(node:int -> 'a reply) ->
  on_complete:(elapsed:float -> 'a outcome -> unit) ->
  unit ->
  unit
(** {!call} for engines that own the clock: the cascade runs to its
    outcome immediately (billing, metrics and handler invocations are
    identical to {!call}), but instead of advancing the shared clock the
    total elapsed time — latencies, timeouts and backoff pauses — is
    accumulated and handed to [on_complete], so the caller can schedule
    the completion at [now + elapsed] on its own event queue and overlap
    other calls meanwhile.  Note the semantic difference from {!call}:
    handlers and soft-state reads during the cascade see the clock as it
    was at the call, not mid-cascade time. *)

val send_oneway :
  ?lossy:bool ->
  t ->
  dst:int ->
  bytes:int ->
  category:Network.category ->
  deliver:(unit -> bool) ->
  unit
(** Fire-and-forget message carrying [deliver], which applies the
    message's effect and reports whether it changed anything.  Reliable
    sends ([lossy] false, the default — publication and maintenance
    traffic) deliver immediately; on the zero plan the message is billed
    only when [deliver] returns true, preserving the historical
    bill-only-when-fresh accounting.  Lossy sends (cache updates, per
    the soft-state design) are billed at send time, may be silently
    dropped, and arrive through the outbox after the plan's latency —
    duplicated copies run [deliver] again. *)

val deliver_until : t -> now:float -> int
(** Run every delayed one-way delivery due by [now]; returns how many. *)

val flush_deliveries : t -> int
(** Run every remaining delayed delivery regardless of due time. *)

val pending_deliveries : t -> int

val walk_replicas :
  replicas:int list ->
  probe:(node:int -> rest:int list -> 'a option) ->
  'a option * int
(** The shared retry-down-the-replica-list shape: probe each replica in
    placement order until one yields, returning the answer and the
    number of replicas probed.  [rest] lets a probe know whether later
    replicas remain (e.g. to treat the last one specially). *)

val walk_replicas_buf :
  replicas:Stdx.Arena.Int_buf.t ->
  probe:(node:int -> next:int -> 'a option) ->
  'a option * int
(** {!walk_replicas} over a resolved replica scratch buffer, probing in
    buffer order without consuming list cells.  [next] is the replica
    after [node] in placement order, or [-1] when [node] is the last —
    the hedging target and the "rest is empty" signal in one int. *)

module Key = Hashing.Key

(* Identifiers are read as 40 hexadecimal digits (b = 4).  Each node keeps
   - a leaf set: the [radius] numerically closest live nodes on each side;
   - a routing table: row r holds, per digit d, some node sharing the first
     r digits with this node and having digit d at position r.
   Routing (Rowstron & Druschel, Section 2.3): deliver within the leaf-set
   range to the numerically closest entry; otherwise follow the routing
   table; otherwise any known node strictly closer to the key that does not
   shorten the shared prefix. *)

let digits = 40
let radix = 16

let key_digit = Key.nibble

let shared_prefix_length a b =
  let rec walk i = if i >= digits then digits
    else if key_digit a i = key_digit b i then walk (i + 1) else i
  in
  walk 0

(* Numeric circular distance: min(clockwise, counter-clockwise). *)
let circular_distance a b =
  let cw = Key.to_float (Key.distance_cw a b) in
  let ccw = Key.to_float (Key.distance_cw b a) in
  Float.min cw ccw

type node = {
  id : Key.t;
  mutable alive : bool;
  mutable leaf_left : Key.t list; (* counter-clockwise, nearest first *)
  mutable leaf_right : Key.t list; (* clockwise, nearest first *)
  table : Key.t option array array; (* digits x radix *)
}

type t = {
  nodes : (Key.t, node) Hashtbl.t;
  prng : Stdx.Prng.t;
  leaf_set_radius : int;
}

let create ?(seed = 1L) ?(leaf_set_radius = 8) () =
  if leaf_set_radius < 1 then invalid_arg "Pastry.create: leaf set radius must be positive";
  { nodes = Hashtbl.create 64; prng = Stdx.Prng.create ~seed; leaf_set_radius }

let node_of t key =
  match Hashtbl.find_opt t.nodes key with
  | Some n -> n
  | None -> invalid_arg "Pastry: dangling node reference"

let is_alive t key =
  match Hashtbl.find_opt t.nodes key with Some n -> n.alive | None -> false

let live_keys t =
  List.filter_map
    (fun (k, n) -> if n.alive then Some k else None)
    (Stdx.Det_tbl.sorted_bindings ~compare:Key.compare t.nodes)

let live_count t =
  Hashtbl.fold (fun _ n acc -> if n.alive then acc + 1 else acc) t.nodes 0

let responsible_oracle t key =
  match live_keys t with
  | [] -> raise Not_found
  | keys ->
      let best = ref (List.hd keys) in
      List.iter
        (fun candidate ->
          let d = circular_distance key candidate in
          let best_d = circular_distance key !best in
          if d < best_d || (d = best_d && Key.compare candidate !best < 0) then
            best := candidate)
        keys;
      !best

(* ------------------------------------------------------------------ *)
(* Per-node views. *)

let known_nodes t n =
  let table_entries =
    Array.to_list n.table
    |> List.concat_map (fun row -> Array.to_list row |> List.filter_map Fun.id)
  in
  List.filter (is_alive t) (n.leaf_left @ n.leaf_right @ table_entries)

let leaf_candidates t n = List.filter (is_alive t) (n.leaf_left @ n.leaf_right)

let closest_to key candidates =
  List.fold_left
    (fun best candidate ->
      match best with
      | None -> Some candidate
      | Some b ->
          let d = circular_distance key candidate and bd = circular_distance key b in
          if d < bd || (d = bd && Key.compare candidate b < 0) then Some candidate
          else best)
    None candidates

(* Is [key] within this node's leaf-set span — the arc from the farthest
   left leaf through the node itself to the farthest right leaf?  With a
   partial or overlapping leaf set (small networks) the span is the whole
   ring. *)
let in_leaf_range t n key =
  let left = List.filter (is_alive t) n.leaf_left in
  let right = List.filter (is_alive t) n.leaf_right in
  match (List.rev left, List.rev right) with
  | [], _ | _, [] -> true
  | far_left :: _, far_right :: _ ->
      (* Overlapping leaf sets mean the node knows every peer. *)
      List.exists (fun k -> List.exists (Key.equal k) right) left
      || Key.equal key far_left
      || Key.in_interval_oc key ~lo:far_left ~hi:n.id
      || Key.in_interval_oc key ~lo:n.id ~hi:far_right

exception Routing_failure of string

let route t ~from key =
  let limit = (2 * digits) + 8 in
  let rec step current hops =
    if hops > limit then raise (Routing_failure "Pastry route did not converge");
    let n = node_of t current in
    if Key.equal current key then (current, hops + 1)
    else if in_leaf_range t n key then begin
      (* Deliver to the numerically closest node among self and leaves. *)
      match closest_to key (current :: leaf_candidates t n) with
      | Some best when not (Key.equal best current) -> step_deliver best current hops
      | Some _ | None -> (current, hops + 1)
    end
    else begin
      let l = shared_prefix_length current key in
      let next_digit = key_digit key l in
      match n.table.(l).(next_digit) with
      | Some candidate when is_alive t candidate -> step candidate (hops + 1)
      | Some _ | None ->
          (* Rare case: no table entry; take any known node closer to the
             key without shortening the prefix. *)
          let better candidate =
            shared_prefix_length candidate key >= l
            && circular_distance key candidate < circular_distance key current
          in
          (match List.find_opt better (known_nodes t n) with
          | Some candidate -> step candidate (hops + 1)
          | None -> (current, hops + 1))
    end
  and step_deliver best current hops =
    (* One more hop into the leaf set; the receiving node re-checks with its
       own (wider) leaf set. *)
    if Key.equal best current then (current, hops + 1) else step best (hops + 1)
  in
  step from 0

let lookup t ?from key =
  let from =
    match from with
    | Some f -> f
    | None -> ( match live_keys t with [] -> raise Not_found | k :: _ -> k)
  in
  if not (is_alive t from) then invalid_arg "Pastry.lookup: start node is not alive";
  route t ~from key

(* ------------------------------------------------------------------ *)
(* State construction and maintenance. *)

let blank_node id =
  {
    id;
    alive = true;
    leaf_left = [];
    leaf_right = [];
    table = Array.make_matrix digits radix None;
  }

let rec take k = function
  | [] -> []
  | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest

(* Rebuild one node's leaf set from a candidate pool (always includes the
   global live set when called from [repair]). *)
let set_leaves t n candidates =
  let others =
    List.sort_uniq Key.compare (List.filter (fun k -> is_alive t k && not (Key.equal k n.id)) candidates)
  in
  let by_cw_distance =
    List.sort
      (fun a b -> Key.compare (Key.distance_cw n.id a) (Key.distance_cw n.id b))
      others
  in
  let by_ccw_distance =
    List.sort
      (fun a b -> Key.compare (Key.distance_cw a n.id) (Key.distance_cw b n.id))
      others
  in
  n.leaf_right <- take t.leaf_set_radius by_cw_distance;
  n.leaf_left <- take t.leaf_set_radius by_ccw_distance

let fill_table_from t n candidates =
  List.iter
    (fun candidate ->
      if is_alive t candidate && not (Key.equal candidate n.id) then begin
        let l = shared_prefix_length n.id candidate in
        let d = key_digit candidate l in
        match n.table.(l).(d) with
        | Some existing when is_alive t existing -> ()
        | Some _ | None -> n.table.(l).(d) <- Some candidate
      end)
    candidates

let purge_dead t n =
  n.leaf_left <- List.filter (is_alive t) n.leaf_left;
  n.leaf_right <- List.filter (is_alive t) n.leaf_right;
  Array.iter
    (fun row ->
      Array.iteri
        (fun i entry ->
          match entry with
          | Some key when not (is_alive t key) -> row.(i) <- None
          | Some _ | None -> ())
        row)
    n.table

let rebuild_globally t =
  let keys = live_keys t in
  List.iter
    (fun key ->
      let n = node_of t key in
      set_leaves t n keys;
      Array.iteri (fun r row -> Array.iteri (fun c _ -> n.table.(r).(c) <- None) row) n.table;
      fill_table_from t n keys)
    keys

let create_network ?seed ?leaf_set_radius ~node_count () =
  if node_count <= 0 then invalid_arg "Pastry.create_network: need at least one node";
  let t = create ?seed ?leaf_set_radius () in
  for _ = 1 to node_count do
    let rec fresh () =
      let k = Key.random t.prng in
      if Hashtbl.mem t.nodes k then fresh () else k
    in
    Hashtbl.replace t.nodes (fresh ()) (blank_node Key.zero)
  done;
  (* The blank nodes above carry the wrong ids; rebuild them properly. *)
  let keys = Stdx.Det_tbl.sorted_keys ~compare:Key.compare t.nodes in
  Hashtbl.reset t.nodes;
  List.iter (fun k -> Hashtbl.replace t.nodes k (blank_node k)) keys;
  rebuild_globally t;
  t

let join_with_key t key =
  if is_alive t key then invalid_arg "Pastry.join_with_key: identifier already joined";
  match live_keys t with
  | [] -> Hashtbl.replace t.nodes key (blank_node key)
  | bootstrap :: _ ->
      (* Route the join towards the new identifier; harvest state from the
         nodes along the path (rows from each hop, leaves from the target),
         then announce to the new leaf set (Pastry join, Section 2.4). *)
      let path = ref [] in
      let owner, _hops =
        (* Reuse [route] but record hops by instrumenting known steps: the
           simple way is to route and then collect the path again greedily;
           for state harvesting the target's view suffices in practice. *)
        route t ~from:bootstrap key
      in
      path := [ bootstrap; owner ];
      let n = blank_node key in
      Hashtbl.replace t.nodes key n;
      let owner_node = node_of t owner in
      set_leaves t n (owner :: (owner_node.leaf_left @ owner_node.leaf_right));
      List.iter
        (fun hop ->
          let hop_node = node_of t hop in
          fill_table_from t n (hop :: known_nodes t hop_node))
        !path;
      (* Announce: every node in the new node's neighbourhood refreshes its
         leaf set and table with the newcomer. *)
      List.iter
        (fun neighbour ->
          let m = node_of t neighbour in
          set_leaves t m (key :: (m.leaf_left @ m.leaf_right));
          fill_table_from t m [ key ])
        (n.leaf_left @ n.leaf_right);
      fill_table_from t owner_node [ key ]

let join t =
  let rec fresh () =
    let k = Key.random t.prng in
    if Hashtbl.mem t.nodes k then fresh () else k
  in
  let key = fresh () in
  join_with_key t key;
  key

let leave t key =
  match Hashtbl.find_opt t.nodes key with
  | Some n when n.alive -> n.alive <- false
  | Some _ | None -> raise Not_found

let repair t =
  let keys = live_keys t in
  List.iter
    (fun key ->
      let n = node_of t key in
      purge_dead t n;
      (* Refill leaves from the neighbours' leaf sets (leaf-set repair). *)
      let pool =
        List.concat_map
          (fun neighbour ->
            if is_alive t neighbour then
              let m = node_of t neighbour in
              neighbour :: (m.leaf_left @ m.leaf_right)
            else [])
          (n.leaf_left @ n.leaf_right)
      in
      set_leaves t n (pool @ n.leaf_left @ n.leaf_right);
      fill_table_from t n (known_nodes t n))
    keys

(* ------------------------------------------------------------------ *)

let is_converged t =
  match live_keys t with
  | [] -> true
  | keys ->
      List.for_all
        (fun from ->
          List.for_all
            (fun target ->
              match lookup t ~from target with
              | owner, _ -> Key.equal owner target
              | exception Routing_failure _ -> false)
            keys)
        keys

let resolver t =
  let keys = Array.of_list (live_keys t) in
  let count = Array.length keys in
  if count = 0 then invalid_arg "Pastry.resolver: empty overlay";
  let index_of key =
    (* Numerically closest node, via the sorted ring positions. *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if Key.compare keys.(mid) key >= 0 then search lo mid else search (mid + 1) hi
    in
    let i = search 0 count in
    let successor = if i = count then 0 else i in
    let predecessor = (successor + count - 1) mod count in
    let ds = circular_distance key keys.(successor) in
    let dp = circular_distance key keys.(predecessor) in
    if dp < ds || (dp = ds && Key.compare keys.(predecessor) keys.(successor) < 0) then
      predecessor
    else successor
  in
  {
    Resolver.node_count = count;
    responsible = index_of;
    route_hops =
      (fun key ->
        let _owner, hops = lookup t key in
        hops);
    replicas =
      (fun key r ->
        (* The leaf-set neighbourhood of the primary, in ring order. *)
        Resolver.ring_replicas ~node_count:count ~primary:(index_of key) r);
    replicas_into =
      (fun key r buf ->
        Resolver.ring_replicas_into ~node_count:count ~primary:(index_of key) r buf);
  }

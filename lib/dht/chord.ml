module Key = Hashing.Key

(* Every node is a mutable record addressed by its ring identifier.  The
   implementation follows the SIGCOMM 2001 pseudocode: find_successor /
   closest_preceding_node for routing, and stabilize / notify / fix_fingers /
   check_predecessor as the periodic maintenance driven by
   [stabilize_round].  Failures are abrupt (a node is marked dead) and
   repaired through successor lists, as in the paper's failure handling. *)

type node = {
  id : Key.t;
  mutable alive : bool;
  mutable successor : Key.t;
  mutable predecessor : Key.t option;
  fingers : Key.t array;
  mutable successor_list : Key.t list;
}

(* Substrate health counters, prefetched from the registry at creation. *)
type instruments = {
  stabilization_rounds : Obs.Metrics.Counter.t;
  failed_lookups : Obs.Metrics.Counter.t;
}

type t = {
  nodes : (Key.t, node) Hashtbl.t;
  prng : Stdx.Prng.t;
  successor_list_length : int;
  instruments : instruments option;
}

let create ?metrics ?(seed = 1L) ?(successor_list_length = 8) () =
  if successor_list_length < 1 then
    invalid_arg "Chord.create: successor list must hold at least one entry";
  let instruments =
    Option.map
      (fun registry ->
        {
          stabilization_rounds =
            Obs.Metrics.counter registry
              ~help:"Chord maintenance rounds executed over all live nodes"
              "p2pindex_chord_stabilization_rounds_total";
          failed_lookups =
            Obs.Metrics.counter registry
              ~help:"Chord lookups abandoned because routing did not converge"
              "p2pindex_chord_failed_lookups_total";
        })
      metrics
  in
  {
    nodes = Hashtbl.create 64;
    prng = Stdx.Prng.create ~seed;
    successor_list_length;
    instruments;
  }

let node_of t key =
  match Hashtbl.find_opt t.nodes key with
  | Some n -> n
  | None -> invalid_arg "Chord: dangling node reference"

let is_alive t key =
  match Hashtbl.find_opt t.nodes key with Some n -> n.alive | None -> false

let live_keys t =
  List.filter_map
    (fun (k, n) -> if n.alive then Some k else None)
    (Stdx.Det_tbl.sorted_bindings ~compare:Key.compare t.nodes)

let live_count t =
  Hashtbl.fold (fun _ n acc -> if n.alive then acc + 1 else acc) t.nodes 0

(* The minimal live key — the head [live_keys] would produce, found by a
   single fold over the table instead of sorting all bindings into a
   list per call (this sits on the default-origin lookup path). *)
let[@hot] first_live t =
  let best =
    (* lint: allow D2 — min accumulator: commutative-associative, bucket order cannot change the result *)
    Hashtbl.fold
      (fun k n acc ->
        if not n.alive then acc
        else
          match acc with
          | Some b when Key.compare b k <= 0 -> acc
          | Some _ | None -> Some k)
      t.nodes None
  in
  match best with Some k -> k | None -> raise Not_found

(* Ground truth: the live successor of [key] on the ring. *)
let responsible_oracle t key =
  let keys = live_keys t in
  match keys with
  | [] -> raise Not_found
  | first :: _ ->
      let rec walk = function
        | [] -> first (* wrap around *)
        | k :: rest -> if Key.compare k key >= 0 then k else walk rest
      in
      walk keys

(* The first live entry of a node's successor chain; the node itself when
   everything it knows about is dead (a partition stabilization must fix). *)
let live_successor t n =
  let candidates = n.successor :: n.successor_list in
  let rec pick = function
    | [] -> n.id
    | k :: rest -> if is_alive t k && not (Key.equal k n.id) then k else pick rest
  in
  if is_alive t n.successor then n.successor else pick candidates

let closest_preceding_node t n key =
  (* Scan fingers from the most distant down, keeping only live nodes
     strictly inside (n, key). *)
  let rec scan i =
    if i < 0 then n.id
    else
      let f = n.fingers.(i) in
      if is_alive t f && Key.in_interval_oo f ~lo:n.id ~hi:key then f else scan (i - 1)
  in
  scan (Key.bits - 1)

exception Routing_failure of string

let count_failed_lookup t =
  match t.instruments with
  | Some ins -> Obs.Metrics.Counter.incr ins.failed_lookups
  | None -> ()

let find_successor t ~from key =
  let limit = (2 * live_count t) + Key.bits in
  let rec route current hops =
    if hops > limit then begin
      count_failed_lookup t;
      raise (Routing_failure "routing did not converge")
    end;
    let n = node_of t current in
    let succ = live_successor t n in
    if Key.in_interval_oc key ~lo:n.id ~hi:succ then (succ, hops + 1)
    else
      let next = closest_preceding_node t n key in
      if Key.equal next n.id then
        (* No finger improves on the successor: forward to it. *)
        route succ (hops + 1)
      else route next (hops + 1)
  in
  route from 0

let lookup t ?from key =
  let from = match from with Some f -> f | None -> first_live t in
  if not (is_alive t from) then invalid_arg "Chord.lookup: start node is not alive";
  find_successor t ~from key

(* ------------------------------------------------------------------ *)
(* Membership. *)

let insert_node t key successor =
  let n =
    {
      id = key;
      alive = true;
      successor;
      predecessor = None;
      fingers = Array.make Key.bits successor;
      successor_list = [];
    }
  in
  Hashtbl.replace t.nodes key n;
  n

let join_with_key t key =
  if is_alive t key then invalid_arg "Chord.join_with_key: identifier already joined";
  match live_keys t with
  | [] ->
      (* First node: its own successor. *)
      let n = insert_node t key key in
      n.fingers.(0) <- key
  | bootstrap :: _ ->
      let succ, _hops = find_successor t ~from:bootstrap key in
      ignore (insert_node t key succ)

let join t =
  let rec fresh () =
    let k = Key.random t.prng in
    if Hashtbl.mem t.nodes k then fresh () else k
  in
  let key = fresh () in
  join_with_key t key;
  key

let leave t key =
  match Hashtbl.find_opt t.nodes key with
  | Some n when n.alive -> n.alive <- false
  | Some _ | None -> raise Not_found

(* ------------------------------------------------------------------ *)
(* Maintenance. *)

let stabilize_node t n =
  let succ_key = live_successor t n in
  n.successor <- succ_key;
  let succ = node_of t succ_key in
  (match succ.predecessor with
  | Some x when is_alive t x && Key.in_interval_oo x ~lo:n.id ~hi:succ.id ->
      n.successor <- x
  | Some _ | None -> ());
  (* notify: tell our (possibly updated) successor about us. *)
  let succ = node_of t (live_successor t n) in
  (match succ.predecessor with
  | Some p when is_alive t p && Key.in_interval_oo n.id ~lo:p ~hi:succ.id ->
      succ.predecessor <- Some n.id
  | Some p when is_alive t p -> ()
  | Some _ | None -> if not (Key.equal succ.id n.id) then succ.predecessor <- Some n.id)

let check_predecessor t n =
  match n.predecessor with
  | Some p when not (is_alive t p) -> n.predecessor <- None
  | Some _ | None -> ()

let refresh_successor_list t n =
  let succ_key = live_successor t n in
  let succ = node_of t succ_key in
  let list = succ_key :: succ.successor_list in
  let rec take k = function
    | [] -> []
    | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
  in
  n.successor_list <- take t.successor_list_length (List.filter (is_alive t) list)

let fix_fingers t n =
  for i = 0 to Key.bits - 1 do
    let target = Key.add_pow2 n.id i in
    match find_successor t ~from:n.id target with
    | owner, _hops -> n.fingers.(i) <- owner
    | exception Routing_failure _ -> ()
  done

let stabilize_round t =
  (match t.instruments with
  | Some ins -> Obs.Metrics.Counter.incr ins.stabilization_rounds
  | None -> ());
  let keys = live_keys t in
  List.iter
    (fun key ->
      let n = node_of t key in
      if n.alive then begin
        check_predecessor t n;
        stabilize_node t n;
        refresh_successor_list t n;
        fix_fingers t n
      end)
    keys

let stabilize t ~rounds =
  for _ = 1 to rounds do
    stabilize_round t
  done

(* ------------------------------------------------------------------ *)
(* Convergence check against the oracle. *)

let is_converged t =
  let keys = live_keys t in
  match keys with
  | [] -> true
  | _ :: _ ->
      List.for_all
        (fun key ->
          let n = node_of t key in
          let expected_succ = responsible_oracle t (Key.succ n.id) in
          Key.equal (live_successor t n) expected_succ
          && Array.length n.fingers = Key.bits
          &&
          let finger_ok i f =
            let target = Key.add_pow2 n.id i in
            Key.equal f (responsible_oracle t target)
          in
          let rec all i = i >= Key.bits || (finger_ok i n.fingers.(i) && all (i + 1)) in
          all 0)
        keys

(* ------------------------------------------------------------------ *)
(* Bootstrap a converged network quickly: join every node, then install the
   oracle routing state directly (equivalent to running stabilization to
   convergence, in O(n log n) instead of many protocol rounds). *)

let repair_globally t =
  let keys = Array.of_list (live_keys t) in
  let count = Array.length keys in
  if count > 0 then begin
    let responsible key =
      (* First live node >= key, wrapping. *)
      let rec search lo hi = if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if Key.compare keys.(mid) key >= 0 then search lo mid else search (mid + 1) hi
      in
      let i = search 0 count in
      if i = count then keys.(0) else keys.(i)
    in
    Array.iteri
      (fun i key ->
        let n = node_of t key in
        n.successor <- keys.((i + 1) mod count);
        n.predecessor <- Some keys.((i + count - 1) mod count);
        let rec successors acc j k =
          if k = 0 then List.rev acc
          else successors (keys.((j + 1) mod count) :: acc) ((j + 1) mod count) (k - 1)
        in
        n.successor_list <- successors [] i (Stdlib.min t.successor_list_length (count - 1));
        for b = 0 to Key.bits - 1 do
          n.fingers.(b) <- responsible (Key.add_pow2 key b)
        done)
      keys
  end

let create_network ?metrics ?seed ?successor_list_length ~node_count () =
  if node_count <= 0 then invalid_arg "Chord.create_network: need at least one node";
  let t = create ?metrics ?seed ?successor_list_length () in
  for _ = 1 to node_count do
    ignore (join t)
  done;
  repair_globally t;
  t

(* ------------------------------------------------------------------ *)

let resolver t =
  let keys = Array.of_list (live_keys t) in
  let count = Array.length keys in
  if count = 0 then invalid_arg "Chord.resolver: empty ring";
  let index_of key =
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if Key.compare keys.(mid) key >= 0 then search lo mid else search (mid + 1) hi
    in
    let i = search 0 count in
    if i = count then 0 else i
  in
  {
    Resolver.node_count = count;
    responsible = (fun key -> index_of key);
    route_hops =
      (fun key ->
        let _owner, hops = lookup t key in
        hops);
    replicas =
      (fun key r -> Resolver.ring_replicas ~node_count:count ~primary:(index_of key) r);
    replicas_into =
      (fun key r buf ->
        Resolver.ring_replicas_into ~node_count:count ~primary:(index_of key) r buf);
  }

type t = {
  node_count : int;
  responsible : Hashing.Key.t -> int;
  route_hops : Hashing.Key.t -> int;
  replicas : Hashing.Key.t -> int -> int list;
  replicas_into : Hashing.Key.t -> int -> Stdx.Arena.Int_buf.t -> unit;
}

let responsible t key = t.responsible key
let route_hops t key = t.route_hops key
let node_count t = t.node_count
let replicas t key r = t.replicas key r

let[@hot] replicas_into t key r buf = t.replicas_into key r buf

let ring_replicas ~node_count ~primary r =
  if r < 1 then invalid_arg "Resolver.ring_replicas: need at least one replica";
  List.init (Stdlib.min r node_count) (fun i -> (primary + i) mod node_count)

let[@hot] ring_replicas_into ~node_count ~primary r buf =
  if r < 1 then
    invalid_arg "Resolver.ring_replicas_into: need at least one replica";
  Stdx.Arena.Int_buf.clear buf;
  for i = 0 to Stdlib.min r node_count - 1 do
    Stdx.Arena.Int_buf.push buf ((primary + i) mod node_count)
  done

let rec push_all buf = function
  | [] -> ()
  | node :: rest ->
      Stdx.Arena.Int_buf.push buf node;
      push_all buf rest

let into_of_list replicas key r buf =
  Stdx.Arena.Int_buf.clear buf;
  push_all buf (replicas key r)

module Key = Hashing.Key

let xor_distance a b =
  let ha = Key.to_hex a and hb = Key.to_hex b in
  let hex_value c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | _ -> invalid_arg "Kademlia.xor_distance: bad hex"
  in
  let digits = "0123456789abcdef" in
  Key.of_hex
    (String.init (String.length ha) (fun i -> digits.[hex_value ha.[i] lxor hex_value hb.[i]]))

(* Bucket index: position of the highest differing bit (0..159), i.e. the
   distance scale.  None when the keys are equal. *)
let bucket_index a b =
  let d = xor_distance a b in
  let rec scan nibble =
    if nibble >= 40 then None
    else
      let v = Key.nibble d nibble in
      if v = 0 then scan (nibble + 1)
      else
        let bit_in_nibble =
          if v >= 8 then 3 else if v >= 4 then 2 else if v >= 2 then 1 else 0
        in
        Some ((4 * (39 - nibble)) + bit_in_nibble)
  in
  scan 0

type node = {
  id : Key.t;
  mutable alive : bool;
  buckets : Key.t list array; (* per distance scale; most recently seen last *)
}

type t = {
  nodes : (Key.t, node) Hashtbl.t;
  prng : Stdx.Prng.t;
  k : int;
  alpha : int;
}

let create ?(seed = 1L) ?(k = 8) ?(alpha = 3) () =
  if k < 1 || alpha < 1 then invalid_arg "Kademlia.create: k and alpha must be positive";
  { nodes = Hashtbl.create 64; prng = Stdx.Prng.create ~seed; k; alpha }

let node_of t key =
  match Hashtbl.find_opt t.nodes key with
  | Some n -> n
  | None -> invalid_arg "Kademlia: dangling node reference"

let is_alive t key =
  match Hashtbl.find_opt t.nodes key with Some n -> n.alive | None -> false

let live_keys t =
  List.filter_map
    (fun (k, n) -> if n.alive then Some k else None)
    (Stdx.Det_tbl.sorted_bindings ~compare:Key.compare t.nodes)

let live_count t =
  Hashtbl.fold (fun _ n acc -> if n.alive then acc + 1 else acc) t.nodes 0

let responsible_oracle t key =
  match live_keys t with
  | [] -> raise Not_found
  | first :: rest ->
      List.fold_left
        (fun best candidate ->
          if Key.compare (xor_distance key candidate) (xor_distance key best) < 0 then
            candidate
          else best)
        first rest

(* Bucket update on hearing from [contact]: refresh recency, or append when
   there is room; a full bucket first evicts dead contacts, then keeps its
   old (live) entries and drops the newcomer — Kademlia's stability rule. *)
let observe t n contact =
  if not (Key.equal n.id contact) then
    match bucket_index n.id contact with
    | None -> ()
    | Some i ->
        let without = List.filter (fun c -> not (Key.equal c contact)) n.buckets.(i) in
        if List.length without < List.length n.buckets.(i) then
          (* Known contact: move to most-recently-seen. *)
          n.buckets.(i) <- without @ [ contact ]
        else if List.length without < t.k then n.buckets.(i) <- without @ [ contact ]
        else begin
          let live = List.filter (is_alive t) without in
          if List.length live < t.k then n.buckets.(i) <- live @ [ contact ]
        end

let known_contacts n = Array.to_list n.buckets |> List.concat

let closest_contacts t n ~target ~count =
  known_contacts n
  |> List.filter (is_alive t)
  |> List.sort (fun a b -> Key.compare (xor_distance target a) (xor_distance target b))
  |> List.filteri (fun i _ -> i < count)

exception Lookup_failure of string

(* Iterative lookup driven by [from]: repeatedly query the alpha closest
   un-queried candidates, learning closer contacts from each, until the k
   closest known are all queried.  Every query teaches both sides. *)
let iterative_lookup t ~from target =
  let querier = node_of t from in
  let distance c = xor_distance target c in
  let closer a b = Key.compare (distance a) (distance b) < 0 in
  let sort_by_distance l = List.sort (fun a b -> Key.compare (distance a) (distance b)) l in
  let candidates = ref (sort_by_distance (from :: closest_contacts t querier ~target ~count:t.k)) in
  let queried = Hashtbl.create 32 in
  let contacted = ref 0 in
  let limit = (4 * live_count t) + 32 in
  let rec round () =
    let unqueried =
      List.filter (fun c -> (not (Hashtbl.mem queried c)) && is_alive t c) !candidates
      |> List.filteri (fun i _ -> i < t.alpha)
    in
    match unqueried with
    | [] -> ()
    | _ :: _ ->
        List.iter
          (fun c ->
            if !contacted > limit then raise (Lookup_failure "lookup did not converge");
            Hashtbl.replace queried c ();
            incr contacted;
            let peer = node_of t c in
            (* The peer learns about the querier; the querier learns the
               peer's closest contacts. *)
            observe t peer from;
            let learned = closest_contacts t peer ~target ~count:t.k in
            List.iter (observe t querier) (c :: learned);
            let merged =
              List.sort_uniq Key.compare (learned @ !candidates) |> sort_by_distance
            in
            candidates := merged)
          unqueried;
        (* Continue while one of the k closest known candidates is still
           un-queried. *)
        let k_closest =
          List.filter (is_alive t) !candidates |> List.filteri (fun i _ -> i < t.k)
        in
        if List.exists (fun c -> not (Hashtbl.mem queried c)) k_closest then round ()
  in
  round ();
  match List.filter (is_alive t) !candidates with
  | [] -> raise (Lookup_failure "no live candidates")
  | best :: rest ->
      let best = List.fold_left (fun b c -> if closer c b then c else b) best rest in
      (best, !contacted)

let lookup t ?from key =
  let from =
    match from with
    | Some f -> f
    | None -> ( match live_keys t with [] -> raise Not_found | k :: _ -> k)
  in
  if not (is_alive t from) then invalid_arg "Kademlia.lookup: start node is not alive";
  iterative_lookup t ~from key

(* ------------------------------------------------------------------ *)

let blank id = { id; alive = true; buckets = Array.make Key.bits [] }

let join_with_key t key =
  if is_alive t key then invalid_arg "Kademlia.join_with_key: identifier already joined";
  match live_keys t with
  | [] -> Hashtbl.replace t.nodes key (blank key)
  | bootstrap :: _ ->
      let n = blank key in
      Hashtbl.replace t.nodes key n;
      observe t n bootstrap;
      (* The self-lookup populates the joiner's buckets and announces it to
         the nodes along the path. *)
      ignore (iterative_lookup t ~from:key key)

let join t =
  let rec fresh () =
    let k = Key.random t.prng in
    if Hashtbl.mem t.nodes k then fresh () else k
  in
  let key = fresh () in
  join_with_key t key;
  key

let leave t key =
  match Hashtbl.find_opt t.nodes key with
  | Some n when n.alive -> n.alive <- false
  | Some _ | None -> raise Not_found

let refresh t =
  List.iter (fun key -> ignore (iterative_lookup t ~from:key key)) (live_keys t)

let create_network ?seed ?k ?alpha ~node_count () =
  if node_count <= 0 then invalid_arg "Kademlia.create_network: need at least one node";
  let t = create ?seed ?k ?alpha () in
  for _ = 1 to node_count do
    ignore (join t)
  done;
  refresh t;
  t

let is_converged t =
  match live_keys t with
  | [] -> true
  | keys ->
      (* Sample: every node looks up a handful of random keys plus every
         node identifier; all must land on the oracle owner. *)
      let g = Stdx.Prng.create ~seed:3141L in
      let sample = List.init 10 (fun _ -> Key.random g) in
      List.for_all
        (fun from ->
          List.for_all
            (fun target ->
              match iterative_lookup t ~from target with
              | owner, _ -> Key.equal owner (responsible_oracle t target)
              | exception Lookup_failure _ -> false)
            sample)
        keys

let resolver t =
  let keys = Array.of_list (live_keys t) in
  let count = Array.length keys in
  if count = 0 then invalid_arg "Kademlia.resolver: empty network";
  let index_of key =
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if Key.compare keys.(mid) key >= 0 then search lo mid else search (mid + 1) hi
    in
    let i = search 0 count in
    if i = count then count - 1 else i
  in
  let xor_closest key r =
    Array.to_list keys
    |> List.sort (fun a b -> Key.compare (xor_distance key a) (xor_distance key b))
    |> List.filteri (fun i _ -> i < r)
    |> List.map index_of
  in
  {
    Resolver.node_count = count;
    responsible = (fun key -> index_of (responsible_oracle t key));
    route_hops =
      (fun key ->
        let _owner, contacted = lookup t key in
        contacted);
    replicas = (fun key r -> xor_closest key (Stdlib.min r count));
    replicas_into =
      Resolver.into_of_list (fun key r -> xor_closest key (Stdlib.min r count));
  }

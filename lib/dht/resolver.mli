(** The key-to-node service every substrate provides.

    The indexing layer only needs one operation from the P2P substrate: given
    a key, find the live node responsible for it (Section III-A).  A resolver
    packages that operation together with the routing cost of answering it,
    so the simulation can charge substrate hops when it wants to (the paper
    treats them as orthogonal; the ablation benches do not). *)

type t = {
  node_count : int;
  responsible : Hashing.Key.t -> int;
      (** Index of the live node responsible for the key. *)
  route_hops : Hashing.Key.t -> int;
      (** Number of overlay hops a lookup of this key takes. *)
  replicas : Hashing.Key.t -> int -> int list;
      (** [replicas key r]: the [r] distinct nodes that hold the key's
          replicas, primary first — on ring substrates, the responsible node
          followed by its successors (Chord/DHash-style replica placement).
          Shorter than [r] when the network is smaller. *)
  replicas_into : Hashing.Key.t -> int -> Stdx.Arena.Int_buf.t -> unit;
      (** [replicas_into key r buf]: the same replica set, written into
          [buf] (cleared first) instead of a fresh list — the hot-path
          variant; must agree element-for-element with [replicas]. *)
}

val responsible : t -> Hashing.Key.t -> int
val route_hops : t -> Hashing.Key.t -> int
val node_count : t -> int
val replicas : t -> Hashing.Key.t -> int -> int list

val replicas_into : t -> Hashing.Key.t -> int -> Stdx.Arena.Int_buf.t -> unit
(** Allocation-free {!replicas}: fills the scratch buffer in placement
    order. *)

val ring_replicas : node_count:int -> primary:int -> int -> int list
(** Helper for substrates whose node indexes are ring-ordered: [primary]
    and its [r - 1] successors, wrapping. *)

val ring_replicas_into :
  node_count:int -> primary:int -> int -> Stdx.Arena.Int_buf.t -> unit
(** {!ring_replicas} into a scratch buffer (cleared first). *)

val into_of_list :
  (Hashing.Key.t -> int -> int list) ->
  Hashing.Key.t ->
  int ->
  Stdx.Arena.Int_buf.t ->
  unit
(** Adapter for substrates whose replica placement is inherently
    list-shaped (Kademlia XOR-closest, CAN zone neighbours): fill the
    buffer from the list the substrate computes. *)

module Key = Hashing.Key

(* The coordinate space is the d-torus [0,1)^d.  Every node owns one or
   more rectangular zones (several only after takeovers that could not be
   merged back into a rectangle, as in the CAN paper's departure handling).
   Zones always tile the space exactly: joins split the containing zone at
   its midpoint along its largest dimension, departures hand zones to a
   neighbour and re-coalesce rectangles when possible. *)

type zone = { lo : float array; hi : float array }

type node = { id : int; mutable alive : bool; mutable zones : zone list }

type t = {
  dims : int;
  mutable nodes : node list; (* all ever created; dead ones keep no zones *)
  mutable next_id : int;
  prng : Stdx.Prng.t;
}

let create ?(seed = 1L) ?(dimensions = 2) () =
  if dimensions < 1 then invalid_arg "Can.create: need at least one dimension";
  { dims = dimensions; nodes = []; next_id = 0; prng = Stdx.Prng.create ~seed }

let dimensions t = t.dims

let live_nodes t = List.filter (fun n -> n.alive) t.nodes

let node_count t = List.length (live_nodes t)

let node_of t id =
  match List.find_opt (fun n -> n.id = id) t.nodes with
  | Some n -> n
  | None -> raise Not_found

(* ------------------------------------------------------------------ *)
(* Geometry. *)

let zone_volume t z =
  let v = ref 1.0 in
  for d = 0 to t.dims - 1 do
    v := !v *. (z.hi.(d) -. z.lo.(d))
  done;
  !v

let zone_contains t z p =
  let rec check d = d >= t.dims || (p.(d) >= z.lo.(d) && p.(d) < z.hi.(d) && check (d + 1)) in
  check 0

let intervals_overlap lo1 hi1 lo2 hi2 = Float.max lo1 lo2 < Float.min hi1 hi2

let intervals_abut lo1 hi1 lo2 hi2 =
  hi1 = lo2 || hi2 = lo1 || (hi1 = 1.0 && lo2 = 0.0) || (hi2 = 1.0 && lo1 = 0.0)

(* Two zones are neighbours when they abut in exactly one dimension and
   overlap in all others (the CAN adjacency rule, on the torus). *)
let zones_adjacent t a b =
  let abut_dims = ref 0 in
  let overlap_dims = ref 0 in
  for d = 0 to t.dims - 1 do
    if intervals_overlap a.lo.(d) a.hi.(d) b.lo.(d) b.hi.(d) then incr overlap_dims
    else if intervals_abut a.lo.(d) a.hi.(d) b.lo.(d) b.hi.(d) then incr abut_dims
  done;
  !abut_dims = 1 && !overlap_dims = t.dims - 1

let nodes_adjacent t a b =
  a.id <> b.id
  && List.exists (fun za -> List.exists (fun zb -> zones_adjacent t za zb) b.zones) a.zones

let neighbours t n = List.filter (fun m -> nodes_adjacent t n m) (live_nodes t)

let torus_axis_distance a b =
  let d = Float.abs (a -. b) in
  Float.min d (1.0 -. d)

(* Distance from a point to a zone, per dimension 0 when inside the
   interval, otherwise the torus distance to the nearest edge. *)
let zone_distance t z p =
  let acc = ref 0.0 in
  for d = 0 to t.dims - 1 do
    let axis =
      if p.(d) >= z.lo.(d) && p.(d) < z.hi.(d) then 0.0
      else
        Float.min (torus_axis_distance p.(d) z.lo.(d)) (torus_axis_distance p.(d) z.hi.(d))
    in
    acc := !acc +. (axis *. axis)
  done;
  sqrt !acc

let node_distance t n p =
  List.fold_left (fun best z -> Float.min best (zone_distance t z p)) infinity n.zones

(* ------------------------------------------------------------------ *)
(* Key-to-point mapping: carve the 160-bit digest into d chunks of 8 hex
   digits each (wrapping), scaled into [0,1). *)

let point_of_key t key =
  Array.init t.dims (fun d ->
      let acc = ref 0.0 in
      for i = 0 to 7 do
        acc := (!acc *. 16.0) +. float_of_int (Key.nibble key ((d * 8) + i mod 40))
      done;
      !acc /. (16.0 ** 8.0))

let owner_of_point t p =
  match
    List.find_opt (fun n -> List.exists (fun z -> zone_contains t z p) n.zones) (live_nodes t)
  with
  | Some n -> n.id
  | None -> raise Not_found

(* ------------------------------------------------------------------ *)
(* Membership. *)

let whole_space t =
  { lo = Array.make t.dims 0.0; hi = Array.make t.dims 1.0 }

let split_zone t z p =
  (* Split along the widest dimension; the half containing [p] goes to the
     joiner. *)
  let widest = ref 0 in
  for d = 1 to t.dims - 1 do
    if z.hi.(d) -. z.lo.(d) > z.hi.(!widest) -. z.lo.(!widest) then widest := d
  done;
  let d = !widest in
  let mid = (z.lo.(d) +. z.hi.(d)) /. 2.0 in
  let lower = { lo = Array.copy z.lo; hi = Array.copy z.hi } in
  let upper = { lo = Array.copy z.lo; hi = Array.copy z.hi } in
  lower.hi.(d) <- mid;
  upper.lo.(d) <- mid;
  if p.(d) < mid then (upper, lower) else (lower, upper)

let random_point t = Array.init t.dims (fun _ -> Stdx.Prng.unit_float t.prng)

let join t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let joiner = { id; alive = true; zones = [] } in
  (match live_nodes t with
  | [] -> joiner.zones <- [ whole_space t ]
  | _ :: _ ->
      let p = random_point t in
      let owner = node_of t (owner_of_point t p) in
      let containing = List.find (fun z -> zone_contains t z p) owner.zones in
      let keep, give = split_zone t containing p in
      owner.zones <-
        (* lint: allow phys-equal — removes the exact zone record just split *)
        keep :: List.filter (fun z -> not (z == containing)) owner.zones;
      joiner.zones <- [ give ]);
  t.nodes <- joiner :: t.nodes;
  id

(* Merge two zones into a rectangle when they abut in one dimension with
   identical cross-sections. *)
let try_merge t a b =
  let differing = ref [] in
  for d = 0 to t.dims - 1 do
    if not (a.lo.(d) = b.lo.(d) && a.hi.(d) = b.hi.(d)) then differing := d :: !differing
  done;
  match !differing with
  | [ d ] when a.hi.(d) = b.lo.(d) ->
      let merged = { lo = Array.copy a.lo; hi = Array.copy a.hi } in
      merged.hi.(d) <- b.hi.(d);
      Some merged
  | [ d ] when b.hi.(d) = a.lo.(d) ->
      let merged = { lo = Array.copy b.lo; hi = Array.copy b.hi } in
      merged.hi.(d) <- a.hi.(d);
      Some merged
  | _ -> None

let rec coalesce t zones =
  let rec find_pair before = function
    | [] -> None
    | z :: rest -> (
        match
          List.fold_left
            (fun acc other ->
              match acc with
              | Some _ -> acc
              | None -> (
                  match try_merge t z other with
                  | Some merged -> Some (merged, other)
                  | None -> None))
            None rest
        with
        | Some (merged, other) ->
            (* lint: allow phys-equal — drops the exact zone record consumed by the merge *)
            Some (merged :: List.rev_append before (List.filter (fun x -> not (x == other)) rest))
        | None -> find_pair (z :: before) rest)
  in
  match find_pair [] zones with Some zones' -> coalesce t zones' | None -> zones

let leave t id =
  let n = node_of t id in
  if not n.alive then raise Not_found;
  (match live_nodes t with
  | [] | [ _ ] -> invalid_arg "Can.leave: cannot remove the last node"
  | _ :: _ :: _ -> ());
  (* Takeover: the neighbour with the smallest total volume inherits the
     zones, then coalesces what it can. *)
  let candidates = neighbours t n in
  let heir =
    List.fold_left
      (fun best m ->
        match best with
        | None -> Some m
        | Some b ->
            let vm = List.fold_left (fun acc z -> acc +. zone_volume t z) 0.0 m.zones in
            let vb = List.fold_left (fun acc z -> acc +. zone_volume t z) 0.0 b.zones in
            if vm < vb || (vm = vb && m.id < b.id) then Some m else best)
      None candidates
  in
  match heir with
  | None -> invalid_arg "Can.leave: node has no neighbour"
  | Some heir ->
      heir.zones <- coalesce t (n.zones @ heir.zones);
      n.zones <- [];
      n.alive <- false

let create_network ?seed ?dimensions ~node_count () =
  if node_count <= 0 then invalid_arg "Can.create_network: need at least one node";
  let t = create ?seed ?dimensions () in
  for _ = 1 to node_count do
    ignore (join t)
  done;
  t

(* ------------------------------------------------------------------ *)
(* Routing: greedy forwarding towards the target point through neighbours;
   the zone-to-point distance strictly decreases, so it terminates at the
   owner. *)

exception Routing_failure of string

let route t ~from p =
  let limit = (4 * node_count t) + 16 in
  let rec step current hops =
    if hops > limit then raise (Routing_failure "CAN route did not converge");
    let n = node_of t current in
    if List.exists (fun z -> zone_contains t z p) n.zones then (current, hops + 1)
    else
      let next =
        List.fold_left
          (fun best m ->
            match best with
            | None -> Some m
            | Some b -> if node_distance t m p < node_distance t b p then Some m else best)
          None (neighbours t n)
      in
      match next with
      | Some m -> step m.id (hops + 1)
      | None -> raise (Routing_failure "CAN node has no neighbours")
  in
  step from 0

let lookup t ?from key =
  let from =
    match from with
    | Some id -> id
    | None -> (
        match live_nodes t with [] -> raise Not_found | n :: _ -> n.id)
  in
  let n = node_of t from in
  if not n.alive then invalid_arg "Can.lookup: start node is not alive";
  route t ~from (point_of_key t key)

(* ------------------------------------------------------------------ *)

let is_well_formed t =
  let live = live_nodes t in
  let total_volume =
    List.fold_left
      (fun acc n -> List.fold_left (fun acc z -> acc +. zone_volume t z) acc n.zones)
      0.0 live
  in
  let volume_ok = Float.abs (total_volume -. 1.0) < 1e-9 in
  (* Sampled points each have exactly one owner. *)
  let g = Stdx.Prng.create ~seed:424242L in
  let sampling_ok =
    List.for_all
      (fun _ ->
        let p = Array.init t.dims (fun _ -> Stdx.Prng.unit_float g) in
        let owners =
          List.filter
            (fun n -> List.exists (fun z -> zone_contains t z p) n.zones)
            live
        in
        List.length owners = 1)
      (List.init 100 Fun.id)
  in
  volume_ok && sampling_ok

let resolver t =
  let live = live_nodes t in
  let count = List.length live in
  if count = 0 then invalid_arg "Can.resolver: empty overlay";
  (* Node ids may be sparse after departures: map them onto dense indexes. *)
  let ids = Array.of_list (List.sort Int.compare (List.map (fun n -> n.id) live)) in
  let index_of_id id =
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if ids.(mid) >= id then search lo mid else search (mid + 1) hi
    in
    search 0 count
  in
  {
    Resolver.node_count = count;
    responsible = (fun key -> index_of_id (owner_of_point t (point_of_key t key)));
    route_hops =
      (fun key ->
        let _owner, hops = lookup t key in
        hops);
    replicas =
      (fun key r ->
        (* The owner plus its zone neighbours, by id order. *)
        let owner = node_of t (owner_of_point t (point_of_key t key)) in
        let candidates =
          owner.id
          :: List.map (fun m -> m.id) (List.sort (fun a b -> Int.compare a.id b.id) (neighbours t owner))
        in
        let rec take k = function
          | [] -> []
          | x :: rest -> if k = 0 then [] else index_of_id x :: take (k - 1) rest
        in
        take (Stdlib.min r count) candidates);
    replicas_into =
      (fun key r buf ->
        let owner = node_of t (owner_of_point t (point_of_key t key)) in
        let candidates =
          owner.id
          :: List.map (fun m -> m.id) (List.sort (fun a b -> Int.compare a.id b.id) (neighbours t owner))
        in
        Stdx.Arena.Int_buf.clear buf;
        let rec take k = function
          | [] -> ()
          | x :: rest ->
              if k > 0 then begin
                Stdx.Arena.Int_buf.push buf (index_of_id x);
                take (k - 1) rest
              end
        in
        take (Stdlib.min r count) candidates);
  }

type category = Request | Response | Cache_update | Maintenance

let category_label = function
  | Request -> "request"
  | Response -> "response"
  | Cache_update -> "cache-update"
  | Maintenance -> "maintenance"

let category_index = function
  | Request -> 0
  | Response -> 1
  | Cache_update -> 2
  | Maintenance -> 3

let all_categories = [| Request; Response; Cache_update; Maintenance |]

let category_count = 4

(* Registry instruments, one (messages, bytes) counter pair per category,
   prefetched so [send] stays two array reads and two increments. *)
type instruments = {
  msg_counters : Obs.Metrics.Counter.t array;
  byte_counters : Obs.Metrics.Counter.t array;
  touch_counter : Obs.Metrics.Counter.t;
}

type t = {
  node_count : int;
  messages : int array; (* per category *)
  bytes : int array; (* per category *)
  touch_arena : Stdx.Arena.t; (* dense node-id space *)
  touches : Stdx.Arena.Int_col.col; (* per node *)
  instruments : instruments option;
}

let make_instruments registry =
  let per_category name help =
    Array.map
      (fun category ->
        Obs.Metrics.counter registry ~help
          ~labels:[ ("category", category_label category) ]
          name)
      all_categories
  in
  {
    msg_counters =
      per_category "p2pindex_network_messages_total" "Messages delivered, by category";
    byte_counters =
      per_category "p2pindex_network_bytes_total" "Bytes delivered, by category";
    touch_counter =
      Obs.Metrics.counter registry ~help:"Per-interaction node accesses (Fig. 15 load)"
        "p2pindex_network_touches_total";
  }

let create ?metrics ~node_count () =
  if node_count <= 0 then invalid_arg "Network.create: need at least one node";
  (match metrics with
  | Some registry ->
      Obs.Metrics.Gauge.set
        (Obs.Metrics.gauge registry ~help:"Peers in the simulated network"
           "p2pindex_network_nodes")
        (float_of_int node_count)
  | None -> ());
  let touch_arena = Stdx.Arena.of_dense ~checked:false ~count:node_count () in
  {
    node_count;
    messages = Array.make category_count 0;
    bytes = Array.make category_count 0;
    touch_arena;
    touches = Stdx.Arena.Int_col.make touch_arena ~default:0;
    instruments = Option.map make_instruments metrics;
  }

let node_count t = t.node_count

let send t ~dst ~bytes ~category =
  if dst < 0 || dst >= t.node_count then
    invalid_arg
      (Printf.sprintf "Network.send: node %d out of range [0, %d)" dst
         t.node_count);
  if bytes < 0 then
    invalid_arg (Printf.sprintf "Network.send: negative byte count %d" bytes);
  let i = category_index category in
  t.messages.(i) <- t.messages.(i) + 1;
  t.bytes.(i) <- t.bytes.(i) + bytes;
  match t.instruments with
  | None -> ()
  | Some ins ->
      Obs.Metrics.Counter.incr ins.msg_counters.(i);
      Obs.Metrics.Counter.incr ~by:bytes ins.byte_counters.(i)

let[@hot] touch t ~node =
  if node < 0 || node >= t.node_count then
    invalid_arg
      (Printf.sprintf "Network.touch: node %d out of range [0, %d)" node
         t.node_count);
  Stdx.Arena.Int_col.add t.touches node 1;
  match t.instruments with
  | None -> ()
  | Some ins -> Obs.Metrics.Counter.incr ins.touch_counter

let messages t category = t.messages.(category_index category)
let bytes t category = t.bytes.(category_index category)

let total_messages t = Array.fold_left ( + ) 0 t.messages
let total_bytes t = Array.fold_left ( + ) 0 t.bytes

let touches t = Stdx.Arena.Int_col.to_array t.touches ~len:t.node_count

let reset t =
  Array.fill t.messages 0 category_count 0;
  Array.fill t.bytes 0 category_count 0;
  for node = 0 to t.node_count - 1 do
    Stdx.Arena.Int_col.set t.touches node 0
  done;
  (* Keep the registry in lock-step: its counters mirror this accounting
     layer, which has just been zeroed (e.g. after corpus publication). *)
  match t.instruments with
  | None -> ()
  | Some ins ->
      Array.iter Obs.Metrics.Counter.reset ins.msg_counters;
      Array.iter Obs.Metrics.Counter.reset ins.byte_counters;
      Obs.Metrics.Counter.reset ins.touch_counter

module Q = Bib.Bib_query
module Article = Bib.Article
module Index = Bib.Bib_index
module Schemes = Bib.Schemes
module Query_gen = Workload.Query_gen
module Policy = Cache.Policy
module Shortcut = Cache.Shortcut_cache
module Network = Dht.Network
module Summary = Stdx.Stats.Summary

type substrate = Static | Chord | Pastry | Can | Kademlia

let substrate_label = function
  | Static -> "static"
  | Chord -> "chord"
  | Pastry -> "pastry"
  | Can -> "can"
  | Kademlia -> "kademlia"

type popularity_model = Fitted_cdf of float | Zipf of float

type churn_config = {
  churn_rate : float;
  heavy_tailed : bool;
  downtime_mean : float;
  replication : int;
  ttl : float;
  republish_period : float;
  repair_period : float;
  query_rate : float;
}

let default_churn =
  {
    churn_rate = 0.002;
    heavy_tailed = false;
    downtime_mean = 30.0;
    replication = 3;
    ttl = 300.0;
    republish_period = 100.0;
    repair_period = 25.0;
    query_rate = 50.0;
  }

type fault_config = {
  loss_rate : float;
  duplicate_rate : float;
  latency_mean : float;  (* exponential per-direction latency; 0 = instant *)
  rpc_timeout : float;
  rpc_retries : int;
  hedge : bool;
  fault_replication : int;
}

let default_faults =
  {
    loss_rate = 0.0;
    duplicate_rate = 0.0;
    latency_mean = 0.0;
    rpc_timeout = 0.5;
    rpc_retries = 2;
    hedge = false;
    fault_replication = 1;
  }

type prefix_config = { prefix_len : int; multicast : bool }

let default_prefix = { prefix_len = 1; multicast = true }

type quorum_config = {
  read_quorum : int;
  write_quorum : int;
  anti_entropy_interval : float;
}

type config = {
  node_count : int;
  article_count : int;
  query_count : int;
  seed : int64;
  scheme : Schemes.kind;
  policy : Policy.t;
  substrate : substrate;
  charge_route_hops : bool;
  mix : Query_gen.mix;
  popularity : popularity_model;
  churn : churn_config option;
  faults : fault_config option;
  prefix : prefix_config option;
  quorum : quorum_config option;
}

let default_config =
  {
    node_count = 500;
    article_count = 10_000;
    query_count = 50_000;
    seed = 42L;
    scheme = Schemes.Simple;
    policy = Policy.no_cache;
    substrate = Static;
    charge_route_hops = false;
    mix = Query_gen.bibfinder_mix;
    popularity = Fitted_cdf Stdx.Power_law.paper_alpha;
    churn = None;
    faults = None;
    prefix = None;
    quorum = None;
  }

(* A fault block whose rates are all zero and that never hedges changes
   nothing: the plan is the zero plan and the RPC layer takes its
   byte-identical fast path. *)
let fault_active cfg =
  match cfg.faults with
  | None -> false
  | Some f ->
      f.loss_rate > 0. || f.duplicate_rate > 0. || f.latency_mean > 0. || f.hedge

(* The replication factor the index is created with: the larger of the
   churn and fault blocks' asks, 1 when neither is present. *)
let effective_replication cfg =
  let churn_replication =
    match cfg.churn with Some c -> c.replication | None -> 1
  in
  let fault_replication =
    match cfg.faults with Some f -> f.fault_replication | None -> 1
  in
  Stdlib.max churn_replication fault_replication

(* A quorum block asking for R = 1, W = replication and no anti-entropy
   is the historical behavior spelled out: the index never takes the
   quorum path and the block changes nothing, byte for byte. *)
let quorum_active cfg =
  match cfg.quorum with
  | None -> false
  | Some q ->
      q.read_quorum > 1
      || q.write_quorum < effective_replication cfg
      || q.anti_entropy_interval > 0.

type report = {
  config : config;
  interactions : Summary.t;
  hits : int;
  hits_first_node : int;
  errors : int;
  error_probes : Summary.t;
  unreachable : int;
  request_bytes : int;
  response_bytes : int;
  cache_bytes : int;
  maintenance_bytes : int;
  node_touches : int array;
  cached_keys : int array;
  regular_keys : int array;
  index_bytes : int;
  article_bytes : int;
  index_mappings : int;
  publish_bytes : int;
  network_messages : int;
  rpc_calls : int;
  rpc_exhausted : int;
  rpc_timeouts : int;
  rpc_retries : int;
  rpc_hedges : int;
  rpc_hedges_won : int;
  rpc_duplicates_suppressed : int;
  rpc_lost_messages : int;
  quorum_reads : int;
  quorum_stale_reads : int;
  quorum_read_repairs : int;
  quorum_writes : int;
  quorum_write_failures : int;
  antientropy_rounds : int;
  antientropy_digest_bytes : int;
  antientropy_shipped_bytes : int;
  antientropy_full_state_bytes : int;
  metrics : Obs.Metrics.snapshot;
}

(* ------------------------------------------------------------------ *)
(* One user session is a {!Walk}: the runner drives each walk to
   completion in arrival order; the {!Engine} interleaves many. *)

let build_resolver ?metrics cfg =
  match cfg.substrate with
  | Static ->
      Dht.Static_dht.resolver (Dht.Static_dht.create ~seed:cfg.seed ~node_count:cfg.node_count ())
  | Chord ->
      Dht.Chord.resolver
        (Dht.Chord.create_network ?metrics ~seed:cfg.seed ~node_count:cfg.node_count ())
  | Pastry ->
      Dht.Pastry.resolver (Dht.Pastry.create_network ~seed:cfg.seed ~node_count:cfg.node_count ())
  | Can ->
      Dht.Can.resolver (Dht.Can.create_network ~seed:cfg.seed ~node_count:cfg.node_count ())
  | Kademlia ->
      Dht.Kademlia.resolver
        (Dht.Kademlia.create_network ~seed:cfg.seed ~node_count:cfg.node_count ())

(* ------------------------------------------------------------------ *)
(* The routed prefix scheme's range index: one (last-name, author-query)
   entry per distinct author, filed under the order-preserving key of the
   last name.  The entry list is sorted, so publication order — and with
   it every byte of traffic — is independent of corpus iteration order. *)

let prefix_entries articles =
  Array.to_list articles
  |> List.concat_map (fun (a : Article.t) ->
         List.map
           (fun (x : Article.author) -> (x.Article.last, Q.author_q x))
           a.authors)
  |> List.sort_uniq (fun (t1, q1) (t2, q2) ->
         match String.compare t1 t2 with 0 -> Q.compare q1 q2 | c -> c)

let publish_prefix ~multicast pindex articles =
  let entries = prefix_entries articles in
  if multicast then
    ignore
      (Prefix.Prefix_index.publish_multicast pindex entries
        : Prefix.Multicast.stats option)
  else
    List.iter
      (fun (term, q) -> Prefix.Prefix_index.publish pindex ~term q)
      entries

(* ------------------------------------------------------------------ *)
(* Everything a run needs, factored out so the concurrent {!Engine} can
   reuse the exact setup, tallying and report assembly — the degeneration
   guarantee (engine at concurrency 1 = this runner, byte-for-byte) rests
   on both going through these same functions in the same order. *)

module Internal = struct
  type env = {
    cfg : config;  (* post-[events] override *)
    registry : Obs.Metrics.t;
    net : Network.t;
    clock_ref : float ref;
    liveness : Dht.Liveness.t;
    rpc : Dht.Rpc.t;
    index : Index.t;
    articles : Article.t array;
    publish_bytes : int;
    caches : Q.t Shortcut.t array;
    driver : (churn_config * Churn.Driver.t) option;
    prefix_index : (prefix_config * Q.t Prefix.Prefix_index.t) option;
    gen : Query_gen.t;
    ctx : Walk.ctx;
    tracer : Obs.Trace.t option;
    phases : Obs.Phase.t option;
    gc_baseline : Gc.stat;  (* quick_stat at setup, for end-of-run deltas *)
    gc_minor_baseline : float;  (* Gc.minor_words at setup — quick_stat's
                                   minor_words only advances at minor GCs *)
    mutable remaining_events : Query_gen.event list;
  }

  let validate cfg =
    if cfg.node_count <= 0 || cfg.article_count <= 0 || cfg.query_count <= 0 then
      invalid_arg "Runner.run: nonsensical configuration";
    (* Caught here rather than deep inside replica resolution, where an
       oversized factor used to surface as a confusing ring wrap. *)
    if effective_replication cfg > cfg.node_count then
      invalid_arg
        "Runner.run: replication exceeds node_count (every replica needs a \
         distinct node)";
    (match cfg.churn with
  | None -> ()
  | Some c ->
      if
        c.churn_rate < 0.
        || Float.is_nan c.churn_rate
        || c.replication < 1
        || not (c.downtime_mean > 0.)
        || not (c.ttl > 0.)
        || not (c.republish_period > 0.)
        || not (c.repair_period > 0.)
        || not (c.query_rate > 0.)
      then invalid_arg "Runner.run: nonsensical churn configuration");
  (match cfg.faults with
  | None -> ()
  | Some f ->
      if
        f.loss_rate < 0. || f.loss_rate > 1.
        || Float.is_nan f.loss_rate
        || f.duplicate_rate < 0.
        || f.duplicate_rate > 1.
        || Float.is_nan f.duplicate_rate
        || f.latency_mean < 0.
        || Float.is_nan f.latency_mean
        || not (f.rpc_timeout > 0.)
        || f.rpc_retries < 0
        || f.fault_replication < 1
      then invalid_arg "Runner.run: nonsensical fault configuration");
    (match cfg.prefix with
    | None -> ()
    | Some p ->
        if cfg.scheme <> Schemes.Prefix then
          invalid_arg "Runner.run: prefix options require the Prefix scheme";
        if p.prefix_len < 1 || p.prefix_len > Prefix.Prefix_key.max_bytes then
          invalid_arg "Runner.run: prefix_len must be within [1, 20]");
    (match cfg.quorum with
    | None -> ()
    | Some q ->
        let replication = effective_replication cfg in
        if q.read_quorum < 1 || q.read_quorum > replication then
          invalid_arg "Runner.run: read_quorum must be within [1, replication]";
        if q.write_quorum < 1 || q.write_quorum > replication then
          invalid_arg "Runner.run: write_quorum must be within [1, replication]";
        if q.anti_entropy_interval < 0. || Float.is_nan q.anti_entropy_interval
        then invalid_arg "Runner.run: anti_entropy_interval must be >= 0";
        let churn_active =
          match cfg.churn with Some c -> c.churn_rate > 0. | None -> false
        in
        if q.anti_entropy_interval > 0. && not churn_active then
          invalid_arg
            "Runner.run: anti_entropy_interval requires active churn (the \
             churn driver schedules the passes)")

  let setup ?events ?metrics ?tracer ?phases cfg =
    let gc_baseline = Gc.quick_stat () in
    let gc_minor_baseline = Gc.minor_words () in
    let cfg =
      match events with
      | Some list -> { cfg with query_count = List.length list }
      | None -> cfg
    in
    validate cfg;
  (* A registry per run unless the caller shares one: every layer below
     (network, substrate, index, caches) emits into it. *)
  let registry = match metrics with Some r -> r | None -> Obs.Metrics.create () in
  Obs.Metrics.Gauge.set
    (Obs.Metrics.gauge registry ~help:"Run configuration (labels carry the setup)"
       ~labels:
         [
           ("scheme", Schemes.label cfg.scheme);
           ("substrate", substrate_label cfg.substrate);
           ("policy", Policy.label cfg.policy);
         ]
       "p2pindex_run_info")
    1.0;
  Obs.Log.event "run_start"
    [
      ("scheme", Obs.Json.String (Schemes.label cfg.scheme));
      ("substrate", Obs.Json.String (substrate_label cfg.substrate));
      ("policy", Obs.Json.String (Policy.label cfg.policy));
      ("nodes", Obs.Json.Int cfg.node_count);
      ("articles", Obs.Json.Int cfg.article_count);
      ("queries", Obs.Json.Int cfg.query_count);
    ];
  let resolver = build_resolver ~metrics:registry cfg in
  let net = Network.create ~metrics:registry ~node_count:cfg.node_count () in
  (* Churn plumbing.  A rate of 0 degenerates completely: no driver, the
     virtual clock never advances, TTLs never bite — the run is the static
     run (byte-for-byte, at replication 1). *)
  let churn_active =
    match cfg.churn with Some c -> c.churn_rate > 0. | None -> false
  in
  let clock_ref = ref 0.0 in
  let clock () = !clock_ref in
  let liveness = Dht.Liveness.create ~node_count:cfg.node_count in
  let replication =
    let churn_replication =
      match cfg.churn with Some c -> c.replication | None -> 1
    in
    let fault_replication =
      match cfg.faults with Some f -> f.fault_replication | None -> 1
    in
    Stdlib.max churn_replication fault_replication
  in
  let ttl =
    match cfg.churn with Some c when churn_active -> c.ttl | Some _ | None -> infinity
  in
  (* The RPC channel every lookup goes through.  Without an active fault
     block this is a zero-plan channel — the byte-identical fast path —
     and its metric families stay unregistered so snapshots match the
     pre-fault output exactly. *)
  let faulty = fault_active cfg in
  let plan =
    match cfg.faults with
    | Some f when faulty ->
        Faults.Plan.create
          ~seed:(Int64.add cfg.seed 7_777_777L)
          (Faults.Plan.spec ~loss_rate:f.loss_rate
             ~duplicate_rate:f.duplicate_rate
             ~latency:
               (if f.latency_mean > 0. then
                  Faults.Plan.Exponential { mean = f.latency_mean }
                else Faults.Plan.No_latency)
             ())
    | Some _ | None -> Faults.Plan.zero
  in
  let rpc_config =
    match cfg.faults with
    | None -> Dht.Rpc.default_config
    | Some f ->
        {
          Dht.Rpc.default_config with
          timeout = f.rpc_timeout;
          retries = f.rpc_retries;
          hedge = f.hedge;
          hedge_delay = f.rpc_timeout /. 2.0;
        }
  in
  let rpc =
    Dht.Rpc.create ~network:net
      ?metrics:(if faulty then Some registry else None)
      ~plan ~config:rpc_config
      ~clock:
        { Dht.Rpc.now = clock; advance = (fun dt -> clock_ref := !clock_ref +. dt) }
      ~resolver ~charge_route_hops:cfg.charge_route_hops ()
  in
  (* An inactive quorum block (R = 1, W = replication, no anti-entropy)
     must not reach the index at all: passing either parameter flips it
     onto the quorum read path and registers the consistency metric
     families, and the degeneration guarantee promises neither. *)
  let index =
    match cfg.quorum with
    | Some q when quorum_active cfg ->
        Index.create ~rpc ~metrics:registry ?tracer
          ~charge_route_hops:cfg.charge_route_hops ~replication
          ~read_quorum:q.read_quorum ~write_quorum:q.write_quorum ~liveness
          ~clock ~ttl ~resolver ()
    | Some _ | None ->
        Index.create ~rpc ~metrics:registry ?tracer
          ~charge_route_hops:cfg.charge_route_hops ~replication ~liveness ~clock
          ~ttl ~resolver ()
  in
  let articles =
    Bib.Corpus.generate ~seed:cfg.seed (Bib.Corpus.default_config ~article_count:cfg.article_count)
  in
  Index.publish_corpus index ~kind:cfg.scheme articles;
  (* The prefix scheme's range index is published alongside the hashed
     corpus, so its installs land in the same pre-reset maintenance
     bucket ([publish_bytes]) as everything else. *)
  let prefix_index =
    match cfg.scheme with
    | Schemes.Prefix ->
        let pcfg = Option.value ~default:default_prefix cfg.prefix in
        let pindex =
          Prefix.Prefix_index.create ~rpc ~metrics:registry ~liveness
            ~render:Q.to_string ~resolver ()
        in
        publish_prefix ~multicast:pcfg.multicast pindex articles;
        Some (pcfg, pindex)
    | Schemes.Simple | Schemes.Flat | Schemes.Complex | Schemes.Complex_ac ->
        None
  in
  let publish_bytes = Network.bytes net Network.Maintenance in
  Network.reset net;
  let caches =
    (* With caching off no walk ever reads or writes a cache (the policy
       guards every access), so all nodes can share one never-touched
       instance: at million-node scale this avoids node_count empty
       LRU + arena structures.  Metric families are fetch-or-create, so
       the registry contents are identical either way. *)
    if Policy.caches_enabled cfg.policy then
      Array.init cfg.node_count (fun _ ->
          Shortcut.create ~metrics:registry ~clock ~ttl
            ~capacity:cfg.policy.Policy.capacity ())
    else
      Array.make cfg.node_count
        (Shortcut.create ~metrics:registry ~clock ~ttl
           ~capacity:cfg.policy.Policy.capacity ())
  in
  let driver =
    match cfg.churn with
    | Some c when churn_active ->
        let session_mean = 1.0 /. c.churn_rate in
        let session =
          if c.heavy_tailed then Churn.Lifetime.pareto ~mean:session_mean ()
          else Churn.Lifetime.exponential ~mean:session_mean
        in
        (* With anti-entropy on, its passes replace the full-state repair
           walk on the driver's repair schedule, at the requested
           interval. *)
        let repair_period =
          match cfg.quorum with
          | Some q when q.anti_entropy_interval > 0. -> q.anti_entropy_interval
          | Some _ | None -> c.repair_period
        in
        Some
          ( c,
            Churn.Driver.create ~metrics:registry
              ~seed:(Int64.add cfg.seed 9_999_991L) ~liveness
              {
                Churn.Driver.session;
                downtime = Churn.Lifetime.exponential ~mean:c.downtime_mean;
                republish_period = c.republish_period;
                repair_period;
              } )
    | Some _ | None -> None
  in
    let popularity =
      match cfg.popularity with
      | Fitted_cdf alpha -> Stdx.Power_law.fitted_cdf ~alpha ~n:cfg.article_count ()
      | Zipf s -> Stdx.Power_law.zipf ~s ~n:cfg.article_count
    in
    let gen =
      Query_gen.create ~mix:cfg.mix ~popularity
        ~prefix_len:
          (match prefix_index with
          | Some (pcfg, _) -> pcfg.prefix_len
          | None -> 1)
        ~articles
        ~seed:(Int64.add cfg.seed 1_000_003L) ()
    in
    let prefix_route =
      Option.map
        (fun (pcfg, pindex) p ->
          (* The routed exchange bills the network inside the prefix index
             (possibly several messages when the covering set or the
             multicast tree has more than one node).  One span carries the
             whole exchange, so summing span bytes over a trace file still
             reproduces the network byte counters exactly — span {e count}
             may undercount request messages on multi-node coverings. *)
          let req0 = Network.bytes net Network.Request
          and resp0 = Network.bytes net Network.Response in
          let results =
            Prefix.Prefix_index.query ~multicast:pcfg.multicast pindex
              ~prefix:p
          in
          (match tracer with
          | None -> ()
          | Some tracer ->
              let node =
                match
                  Prefix.Prefix_index.covering_nodes pindex ~prefix:p
                with
                | n :: _ -> n
                | [] -> 0
              in
              let outcome =
                if results = [] then Obs.Trace.Not_found else Obs.Trace.Refined
              in
              Obs.Trace.span tracer
                ~query:(Q.to_string (Q.Author_last_prefix p))
                ~node
                ~result_count:(List.length results)
                ~request_bytes:(Network.bytes net Network.Request - req0)
                ~response_bytes:(Network.bytes net Network.Response - resp0)
                ~outcome ());
          match results with
          | [] -> Index.Not_indexed
          | rs -> Index.Children (List.map snd rs))
        prefix_index
    in
    let ctx =
      {
        Walk.policy = cfg.policy;
        rpc;
        index;
        caches;
        liveness;
        tracer;
        prefix_route;
      }
    in
    {
      cfg;
      registry;
      net;
      clock_ref;
      liveness;
      rpc;
      index;
      articles;
      publish_bytes;
      caches;
      driver;
      prefix_index;
      gen;
      ctx;
      tracer;
      phases;
      gc_baseline;
      gc_minor_baseline;
      remaining_events = Option.value ~default:[] events;
    }

  let config env = env.cfg
  let registry env = env.registry
  let rpc env = env.rpc
  let index env = env.index
  let clock_ref env = env.clock_ref
  let walk_ctx env = env.ctx
  let tracer env = env.tracer

  (* Advance virtual time to [until], firing every churn event due before
     it.  Abrupt failures lose the node's index shard and its shortcut
     cache; republication and repair restore soft state on live nodes.
     Without a churn driver this is a no-op — the clock is left alone, as
     the static run never advances it. *)
  let advance_churn env ~until =
    match env.driver with
    | None -> ()
    | Some (_c, d) ->
        Churn.Driver.run_until d ~until
          ~on_fail:(fun ~time node ->
            env.clock_ref := time;
            (* Crash-stop churn loses the node's index shard; under an
               active quorum block a failure is a pause instead — the
               node rejoins with the (by then lagging) state it held.
               A rejoined-empty replica answers empty and the walk fails
               over anyway; a lagging one silently serves stale entries,
               which is exactly the divergence quorum reads and
               anti-entropy exist to mask and measure. *)
            if not (quorum_active env.cfg) then
              Index.drop_node_state env.index node;
            Option.iter
              (fun (_, p) -> Prefix.Prefix_index.drop_node_state p node)
              env.prefix_index;
            Shortcut.clear env.caches.(node))
          ~on_join:(fun ~time _node -> env.clock_ref := time)
          ~on_republish:(fun ~time ->
            env.clock_ref := time;
            Index.republish_corpus env.index ~kind:env.cfg.scheme env.articles;
            (* Refresh entry-by-entry regardless of the multicast setting:
               soft-state republication bills only the entries a failed
               node actually lost, which a subtree-priced tree message
               cannot express. *)
            Option.iter
              (fun (_, p) -> publish_prefix ~multicast:false p env.articles)
              env.prefix_index)
          ~on_repair:(fun ~time ->
            env.clock_ref := time;
            match env.cfg.quorum with
            | Some q when q.anti_entropy_interval > 0. ->
                ignore (Index.anti_entropy env.index : int)
            | Some _ | None -> ignore (Index.repair env.index : int));
        env.clock_ref := until

  let next_event env =
    match env.remaining_events with
    | event :: rest ->
        env.remaining_events <- rest;
        event
    | [] -> Query_gen.next env.gen

  type tally = {
    interactions : Summary.t;
    error_probes : Summary.t;
    mutable hits : int;
    mutable hits_first_node : int;
    mutable errors : int;
    mutable unreachable : int;
  }

  let tally_create () =
    {
      interactions = Summary.create ();
      error_probes = Summary.create ();
      hits = 0;
      hits_first_node = 0;
      errors = 0;
      unreachable = 0;
    }

  let tally_record t (outcome : Walk.outcome) =
    Summary.add_int t.interactions outcome.steps;
    (match outcome.hit_position with
    | Some p ->
        t.hits <- t.hits + 1;
        if p = 1 then t.hits_first_node <- t.hits_first_node + 1
    | None -> ());
    if outcome.probes_failed > 0 then begin
      t.errors <- t.errors + 1;
      Summary.add_int t.error_probes outcome.probes_failed
    end;
    if not outcome.found then t.unreachable <- t.unreachable + 1

  (* GC accounting over the run — deltas since [setup]'s baseline, plus
     the heap size at report time.  Only exported for profiled runs:
     collection counts and heap size depend on the process's prior heap
     state, so an unconditional export would break the byte-for-byte
     snapshot guarantees (churn-0, zero-plan, engine degeneration). *)
  let export_gc_gauges env =
    let minor_now = Gc.minor_words () in
    let now = Gc.quick_stat () in
    let d = Obs.Bench_report.gc_delta ~before:env.gc_baseline ~after:now in
    let set name help v =
      Obs.Metrics.Gauge.set (Obs.Metrics.gauge env.registry ~help name) v
    in
    set "p2pindex_gc_minor_words" "Minor-heap words allocated during the run"
      (minor_now -. env.gc_minor_baseline);
    set "p2pindex_gc_promoted_words"
      "Words promoted from the minor to the major heap during the run"
      d.Obs.Bench_report.promoted_words;
    set "p2pindex_gc_major_words"
      "Major-heap words allocated during the run (promotions included)"
      d.Obs.Bench_report.major_words;
    set "p2pindex_gc_minor_collections" "Minor collections during the run"
      (float_of_int d.Obs.Bench_report.minor_collections);
    set "p2pindex_gc_major_collections" "Major collections during the run"
      (float_of_int d.Obs.Bench_report.major_collections);
    set "p2pindex_gc_heap_words" "Major-heap size at report time, words"
      (float_of_int now.Gc.heap_words)

  let make_report env tally =
    (match env.phases with
    | Some p ->
        export_gc_gauges env;
        (* The report phase's own cost is still accumulating; its gauges
           export as zero here and are readable from the collector after
           the run. *)
        Obs.Phase.to_metrics p env.registry
    | None -> ());
    let snapshot = Obs.Metrics.snapshot env.registry in
    let rpc_count name = Obs.Metrics.counter_total snapshot name in
    {
      config = env.cfg;
      interactions = tally.interactions;
      hits = tally.hits;
      hits_first_node = tally.hits_first_node;
      errors = tally.errors;
      error_probes = tally.error_probes;
      unreachable = tally.unreachable;
      request_bytes = Network.bytes env.net Network.Request;
      response_bytes = Network.bytes env.net Network.Response;
      cache_bytes = Network.bytes env.net Network.Cache_update;
      maintenance_bytes = Network.bytes env.net Network.Maintenance;
      node_touches = Network.touches env.net;
      cached_keys = Array.map Shortcut.size env.caches;
      regular_keys = Index.entries_per_node env.index;
      index_bytes = Index.index_bytes env.index;
      article_bytes = Index.file_bytes env.index;
      index_mappings = Index.mapping_count env.index;
      publish_bytes = env.publish_bytes;
      network_messages = Network.total_messages env.net;
      rpc_calls = rpc_count "p2pindex_rpc_calls_total";
      rpc_exhausted = rpc_count "p2pindex_rpc_exhausted_total";
      rpc_timeouts = rpc_count "p2pindex_rpc_timeouts_total";
      rpc_retries = rpc_count "p2pindex_rpc_retries_total";
      rpc_hedges = rpc_count "p2pindex_rpc_hedges_total";
      rpc_hedges_won = rpc_count "p2pindex_rpc_hedges_won_total";
      rpc_duplicates_suppressed =
        rpc_count "p2pindex_rpc_duplicates_suppressed_total";
      rpc_lost_messages = rpc_count "p2pindex_rpc_lost_messages_total";
      quorum_reads = rpc_count "p2pindex_quorum_reads_total";
      quorum_stale_reads = rpc_count "p2pindex_quorum_stale_reads_total";
      quorum_read_repairs = rpc_count "p2pindex_quorum_read_repairs_total";
      quorum_writes = rpc_count "p2pindex_quorum_writes_total";
      quorum_write_failures = rpc_count "p2pindex_quorum_write_failures_total";
      antientropy_rounds = rpc_count "p2pindex_antientropy_rounds_total";
      antientropy_digest_bytes = rpc_count "p2pindex_antientropy_digest_bytes_total";
      antientropy_shipped_bytes =
        rpc_count "p2pindex_antientropy_shipped_bytes_total";
      antientropy_full_state_bytes =
        rpc_count "p2pindex_antientropy_full_state_bytes_total";
      metrics = snapshot;
    }
end

let run ?events ?metrics ?tracer ?phases cfg =
  let env =
    Obs.Phase.span_opt phases "setup" (fun () ->
        Internal.setup ?events ?metrics ?tracer ?phases cfg)
  in
  let cfg = Internal.config env in
  let tally = Internal.tally_create () in
  for i = 1 to cfg.query_count do
    let outcome =
      Obs.Phase.span_opt phases "walk" (fun () ->
          (match env.Internal.driver with
          | Some (c, _) ->
              Internal.advance_churn env ~until:(float_of_int i /. c.query_rate)
          | None -> ());
          (* Delayed fire-and-forget messages (cache installs under latency)
             land once the clock has passed their arrival time.  A no-op on the
             zero plan, whose outbox stays empty. *)
          ignore
            (Dht.Rpc.deliver_until env.Internal.rpc ~now:!(env.Internal.clock_ref)
              : int);
          let event = Internal.next_event env in
          Option.iter
            (fun tr ->
              Obs.Trace.begin_trace tr ~root:(Q.to_string event.Query_gen.query))
            env.Internal.tracer;
          let outcome = Walk.run env.Internal.ctx event in
          Option.iter Obs.Trace.end_trace env.Internal.tracer;
          outcome)
    in
    Obs.Phase.span_opt phases "tally" (fun () -> Internal.tally_record tally outcome)
  done;
  ignore (Dht.Rpc.flush_deliveries env.Internal.rpc : int);
  Obs.Phase.span_opt phases "report" (fun () -> Internal.make_report env tally)

(* ------------------------------------------------------------------ *)
(* Derived metrics.  A report can legitimately carry zero queries (e.g.
   one assembled in tests); every per-query ratio is defined as 0 there
   instead of dividing by zero — [run] itself rejects [query_count = 0]
   up front. *)

let queries r = Summary.count r.interactions

let per_query r total =
  let n = queries r in
  if n = 0 then 0.0 else float_of_int total /. float_of_int n

let interactions_mean r = Summary.mean r.interactions

let hit_ratio r = per_query r r.hits

let first_node_hit_share r =
  if r.hits = 0 then 0.0 else float_of_int r.hits_first_node /. float_of_int r.hits

let normal_traffic_per_query r = per_query r (r.request_bytes + r.response_bytes)

let cache_traffic_per_query r = per_query r r.cache_bytes

let array_mean a =
  if Array.length a = 0 then 0.0
  else float_of_int (Array.fold_left ( + ) 0 a) /. float_of_int (Array.length a)

let cached_keys_mean r = array_mean r.cached_keys

let cached_keys_max r = Array.fold_left Stdlib.max 0 r.cached_keys

let caches_full_share r =
  match r.config.policy.Policy.capacity with
  | None -> 0.0
  | Some cap ->
      let full = Array.fold_left (fun acc n -> if n >= cap then acc + 1 else acc) 0 r.cached_keys in
      float_of_int full /. float_of_int (Array.length r.cached_keys)

let caches_empty_share r =
  let empty = Array.fold_left (fun acc n -> if n = 0 then acc + 1 else acc) 0 r.cached_keys in
  float_of_int empty /. float_of_int (Array.length r.cached_keys)

let regular_keys_mean r = array_mean r.regular_keys

let availability r =
  (* Vacuously available: with no queries none went unanswered. *)
  if queries r = 0 then 1.0
  else 1.0 -. (float_of_int r.unreachable /. float_of_int (queries r))

let maintenance_traffic_per_query r = per_query r r.maintenance_bytes

let lookup_success_rate r =
  if r.rpc_calls = 0 then 1.0
  else 1.0 -. (float_of_int r.rpc_exhausted /. float_of_int r.rpc_calls)

let stale_read_rate r =
  if r.quorum_reads = 0 then 0.0
  else float_of_int r.quorum_stale_reads /. float_of_int r.quorum_reads

module Q = Bib.Bib_query
module Article = Bib.Article
module Index = Bib.Bib_index
module Schemes = Bib.Schemes
module Query_gen = Workload.Query_gen
module Policy = Cache.Policy
module Shortcut = Cache.Shortcut_cache
module Network = Dht.Network
module Summary = Stdx.Stats.Summary

type substrate = Static | Chord | Pastry | Can | Kademlia

let substrate_label = function
  | Static -> "static"
  | Chord -> "chord"
  | Pastry -> "pastry"
  | Can -> "can"
  | Kademlia -> "kademlia"

type popularity_model = Fitted_cdf of float | Zipf of float

type churn_config = {
  churn_rate : float;
  heavy_tailed : bool;
  downtime_mean : float;
  replication : int;
  ttl : float;
  republish_period : float;
  repair_period : float;
  query_rate : float;
}

let default_churn =
  {
    churn_rate = 0.002;
    heavy_tailed = false;
    downtime_mean = 30.0;
    replication = 3;
    ttl = 300.0;
    republish_period = 100.0;
    repair_period = 25.0;
    query_rate = 50.0;
  }

type fault_config = {
  loss_rate : float;
  duplicate_rate : float;
  latency_mean : float;  (* exponential per-direction latency; 0 = instant *)
  rpc_timeout : float;
  rpc_retries : int;
  hedge : bool;
  fault_replication : int;
}

let default_faults =
  {
    loss_rate = 0.0;
    duplicate_rate = 0.0;
    latency_mean = 0.0;
    rpc_timeout = 0.5;
    rpc_retries = 2;
    hedge = false;
    fault_replication = 1;
  }

type config = {
  node_count : int;
  article_count : int;
  query_count : int;
  seed : int64;
  scheme : Schemes.kind;
  policy : Policy.t;
  substrate : substrate;
  charge_route_hops : bool;
  mix : Query_gen.mix;
  popularity : popularity_model;
  churn : churn_config option;
  faults : fault_config option;
}

let default_config =
  {
    node_count = 500;
    article_count = 10_000;
    query_count = 50_000;
    seed = 42L;
    scheme = Schemes.Simple;
    policy = Policy.no_cache;
    substrate = Static;
    charge_route_hops = false;
    mix = Query_gen.bibfinder_mix;
    popularity = Fitted_cdf Stdx.Power_law.paper_alpha;
    churn = None;
    faults = None;
  }

(* A fault block whose rates are all zero and that never hedges changes
   nothing: the plan is the zero plan and the RPC layer takes its
   byte-identical fast path. *)
let fault_active cfg =
  match cfg.faults with
  | None -> false
  | Some f ->
      f.loss_rate > 0. || f.duplicate_rate > 0. || f.latency_mean > 0. || f.hedge

type report = {
  config : config;
  interactions : Summary.t;
  hits : int;
  hits_first_node : int;
  errors : int;
  error_probes : Summary.t;
  unreachable : int;
  request_bytes : int;
  response_bytes : int;
  cache_bytes : int;
  maintenance_bytes : int;
  node_touches : int array;
  cached_keys : int array;
  regular_keys : int array;
  index_bytes : int;
  article_bytes : int;
  index_mappings : int;
  publish_bytes : int;
  network_messages : int;
  rpc_calls : int;
  rpc_exhausted : int;
  rpc_timeouts : int;
  rpc_retries : int;
  rpc_hedges : int;
  rpc_hedges_won : int;
  rpc_duplicates_suppressed : int;
  rpc_lost_messages : int;
  metrics : Obs.Metrics.snapshot;
}

(* ------------------------------------------------------------------ *)
(* One user session.  The walk returns the interaction count plus what
   happened, so the caller can aggregate. *)

type session_outcome = {
  steps : int;
  hit_position : int option;  (* interaction index of the shortcut hit *)
  probes_failed : int;  (* Not_indexed responses seen *)
  found : bool;
  path : (Q.t * int) list;  (* visited (query, node) pairs, in order *)
}

type state = {
  cfg : config;
  rpc : Dht.Rpc.t;
  index : Index.t;
  caches : Q.t Shortcut.t array;
  liveness : Dht.Liveness.t;
  tracer : Obs.Trace.t option;
}

let max_walk_steps = 32

let charge_hit_interaction state ~node ~query_string ~msd_string =
  (* The request reaching the node, and the shortcut coming back.  Normal
     lookups are charged inside the index layer; the cache-hit path skips
     it, so the accounting — and the trace span — happens here through
     the same RPC channel.  Under a fault plan the exchange can fail
     outright; the caller then treats the would-be hit as a miss. *)
  let request_bytes = P2pindex.Wire.request_bytes query_string in
  let response_bytes = P2pindex.Wire.response_bytes [ msd_string ] in
  match
    Dht.Rpc.call state.rpc ~dst:node ~request_bytes
      ~handler:(fun ~node:_ -> Dht.Rpc.Reply { bytes = response_bytes; value = () })
      ()
  with
  | Dht.Rpc.Exhausted -> false
  | Dht.Rpc.Answered _ ->
      Option.iter
        (fun tracer ->
          Obs.Trace.span tracer ~query:query_string ~node ~cache_hit:true
            ~result_count:1 ~request_bytes ~response_bytes
            ~outcome:Obs.Trace.Refined ())
        state.tracer;
      true

let run_session state (event : Query_gen.event) =
  let target_msd = Q.msd event.target in
  let msd_string = Q.to_string target_msd in
  let rec walk current steps probes_failed hit_position path =
    if steps >= max_walk_steps then
      { steps; hit_position; probes_failed; found = false; path = List.rev path }
    else
      (* The node contacted is the acting responsible node — the first live
         replica.  With every node alive that is the primary, as in the
         static model; under churn a dead primary's successor answers, and
         when the whole replica set is down the contact is only nominal
         (the lookup below fails over and ultimately reports nothing). *)
      let answering = Index.live_node_of_query state.index current in
      let node =
        match answering with
        | Some n -> n
        | None -> Index.node_of_query state.index current
      in
      let query_string = Q.to_string current in
      let steps = steps + 1 in
      let is_msd_step = Q.equal current target_msd in
      let path = if is_msd_step then path else (current, node) :: path in
      (* The node answers with everything it has under the key: cached
         shortcuts first — they behave like ordinary index entries and serve
         any requester (Section IV-C) — and index mappings otherwise. *)
      let cached_entries =
        if
          answering <> None
          && Policy.caches_enabled state.cfg.policy
          && not is_msd_step
        then Shortcut.find state.caches.(node) ~query_key:query_string
        else []
      in
      let cached_hit =
        List.find_opt
          (fun (_q, target) -> String.equal (Q.to_string target) msd_string)
          cached_entries
      in
      match cached_hit with
      | Some (_q, msd_q)
        when charge_hit_interaction state ~node ~query_string ~msd_string ->
          (* Shortcut hit: jump straight to the descriptor.  (The guard
             bills the exchange; on a fault-free plan it never fails.) *)
          let hit_position =
            match hit_position with Some _ as p -> p | None -> Some steps
          in
          walk msd_q steps probes_failed hit_position path
      | Some _ | None -> (
          let generalize probes_failed =
            let candidates =
              List.filter
                (fun g -> Q.matches_article g event.target)
                (Q.generalizations current)
            in
            match candidates with
            | g :: _ -> walk g steps probes_failed hit_position path
            | [] ->
                {
                  steps;
                  hit_position;
                  probes_failed;
                  found = false;
                  path = List.rev path;
                }
          in
          match Index.lookup_step state.index current with
          | Index.File _file ->
              { steps; hit_position; probes_failed; found = true; path = List.rev path }
          | Index.Children children -> (
              (* The user knows the target: follow the entry that covers its
                 descriptor. *)
              match List.find_opt (fun c -> Q.covers c target_msd) children with
              | Some child -> walk child steps probes_failed hit_position path
              | None ->
                  (* Indexed key, but none of its entries leads to the
                     target (can happen for shortcut-created keys whose
                     cached targets differ): fall back to generalization
                     without counting an error — the key did exist. *)
                  generalize probes_failed)
          | Index.Not_indexed ->
              if cached_entries <> [] then
                (* The key exists in the distributed cache, just without the
                   user's target: not an access to non-indexed data. *)
                generalize probes_failed
              else
                (* Recoverable error (Section V-h): generalize and retry. *)
                generalize (probes_failed + 1))
  in
  let outcome = walk event.query 0 0 None [] in
  (* Install shortcuts along the successful path, per policy. *)
  if outcome.found && Policy.caches_enabled state.cfg.policy then begin
    let installs =
      match state.cfg.policy.Policy.placement with
      | Policy.No_cache -> []
      | Policy.Single_cache -> (
          match outcome.path with [] -> [] | first :: _ -> [ first ])
      | Policy.Multi_cache -> outcome.path
    in
    List.iter
      (fun (q, node) ->
        (* A path node can be the nominal contact of an all-dead replica
           set; installing there would write to a dead node's cache.  The
           install itself is fire-and-forget soft state: under a fault
           plan it may be silently lost or arrive late, and the node is
           re-checked at delivery time. *)
        if Dht.Liveness.alive state.liveness node then begin
          let query_key = Q.to_string q in
          Dht.Rpc.send_oneway ~lossy:true state.rpc ~dst:node
            ~bytes:(P2pindex.Wire.cache_install_bytes query_key msd_string)
            ~category:Network.Cache_update
            ~deliver:(fun () ->
              Dht.Liveness.alive state.liveness node
              && Shortcut.add state.caches.(node) ~query_key
                   ~target_key:msd_string (q, target_msd))
        end)
      installs
  end;
  outcome

(* ------------------------------------------------------------------ *)

let build_resolver ?metrics cfg =
  match cfg.substrate with
  | Static ->
      Dht.Static_dht.resolver (Dht.Static_dht.create ~seed:cfg.seed ~node_count:cfg.node_count ())
  | Chord ->
      Dht.Chord.resolver
        (Dht.Chord.create_network ?metrics ~seed:cfg.seed ~node_count:cfg.node_count ())
  | Pastry ->
      Dht.Pastry.resolver (Dht.Pastry.create_network ~seed:cfg.seed ~node_count:cfg.node_count ())
  | Can ->
      Dht.Can.resolver (Dht.Can.create_network ~seed:cfg.seed ~node_count:cfg.node_count ())
  | Kademlia ->
      Dht.Kademlia.resolver
        (Dht.Kademlia.create_network ~seed:cfg.seed ~node_count:cfg.node_count ())

let run ?events ?metrics ?tracer cfg =
  let cfg =
    match events with
    | Some list -> { cfg with query_count = List.length list }
    | None -> cfg
  in
  if cfg.node_count <= 0 || cfg.article_count <= 0 || cfg.query_count < 0 then
    invalid_arg "Runner.run: nonsensical configuration";
  (match cfg.churn with
  | None -> ()
  | Some c ->
      if
        c.churn_rate < 0.
        || Float.is_nan c.churn_rate
        || c.replication < 1
        || not (c.downtime_mean > 0.)
        || not (c.ttl > 0.)
        || not (c.republish_period > 0.)
        || not (c.repair_period > 0.)
        || not (c.query_rate > 0.)
      then invalid_arg "Runner.run: nonsensical churn configuration");
  (match cfg.faults with
  | None -> ()
  | Some f ->
      if
        f.loss_rate < 0. || f.loss_rate > 1.
        || Float.is_nan f.loss_rate
        || f.duplicate_rate < 0.
        || f.duplicate_rate > 1.
        || Float.is_nan f.duplicate_rate
        || f.latency_mean < 0.
        || Float.is_nan f.latency_mean
        || not (f.rpc_timeout > 0.)
        || f.rpc_retries < 0
        || f.fault_replication < 1
      then invalid_arg "Runner.run: nonsensical fault configuration");
  (* A registry per run unless the caller shares one: every layer below
     (network, substrate, index, caches) emits into it. *)
  let registry = match metrics with Some r -> r | None -> Obs.Metrics.create () in
  Obs.Metrics.Gauge.set
    (Obs.Metrics.gauge registry ~help:"Run configuration (labels carry the setup)"
       ~labels:
         [
           ("scheme", Schemes.label cfg.scheme);
           ("substrate", substrate_label cfg.substrate);
           ("policy", Policy.label cfg.policy);
         ]
       "p2pindex_run_info")
    1.0;
  Obs.Log.event "run_start"
    [
      ("scheme", Obs.Json.String (Schemes.label cfg.scheme));
      ("substrate", Obs.Json.String (substrate_label cfg.substrate));
      ("policy", Obs.Json.String (Policy.label cfg.policy));
      ("nodes", Obs.Json.Int cfg.node_count);
      ("articles", Obs.Json.Int cfg.article_count);
      ("queries", Obs.Json.Int cfg.query_count);
    ];
  let resolver = build_resolver ~metrics:registry cfg in
  let net = Network.create ~metrics:registry ~node_count:cfg.node_count () in
  (* Churn plumbing.  A rate of 0 degenerates completely: no driver, the
     virtual clock never advances, TTLs never bite — the run is the static
     run (byte-for-byte, at replication 1). *)
  let churn_active =
    match cfg.churn with Some c -> c.churn_rate > 0. | None -> false
  in
  let clock_ref = ref 0.0 in
  let clock () = !clock_ref in
  let liveness = Dht.Liveness.create ~node_count:cfg.node_count in
  let replication =
    let churn_replication =
      match cfg.churn with Some c -> c.replication | None -> 1
    in
    let fault_replication =
      match cfg.faults with Some f -> f.fault_replication | None -> 1
    in
    Stdlib.max churn_replication fault_replication
  in
  let ttl =
    match cfg.churn with Some c when churn_active -> c.ttl | Some _ | None -> infinity
  in
  (* The RPC channel every lookup goes through.  Without an active fault
     block this is a zero-plan channel — the byte-identical fast path —
     and its metric families stay unregistered so snapshots match the
     pre-fault output exactly. *)
  let faulty = fault_active cfg in
  let plan =
    match cfg.faults with
    | Some f when faulty ->
        Faults.Plan.create
          ~seed:(Int64.add cfg.seed 7_777_777L)
          (Faults.Plan.spec ~loss_rate:f.loss_rate
             ~duplicate_rate:f.duplicate_rate
             ~latency:
               (if f.latency_mean > 0. then
                  Faults.Plan.Exponential { mean = f.latency_mean }
                else Faults.Plan.No_latency)
             ())
    | Some _ | None -> Faults.Plan.zero
  in
  let rpc_config =
    match cfg.faults with
    | None -> Dht.Rpc.default_config
    | Some f ->
        {
          Dht.Rpc.default_config with
          timeout = f.rpc_timeout;
          retries = f.rpc_retries;
          hedge = f.hedge;
          hedge_delay = f.rpc_timeout /. 2.0;
        }
  in
  let rpc =
    Dht.Rpc.create ~network:net
      ?metrics:(if faulty then Some registry else None)
      ~plan ~config:rpc_config
      ~clock:
        { Dht.Rpc.now = clock; advance = (fun dt -> clock_ref := !clock_ref +. dt) }
      ~resolver ~charge_route_hops:cfg.charge_route_hops ()
  in
  let index =
    Index.create ~rpc ~metrics:registry ?tracer
      ~charge_route_hops:cfg.charge_route_hops ~replication ~liveness ~clock ~ttl
      ~resolver ()
  in
  let articles =
    Bib.Corpus.generate ~seed:cfg.seed (Bib.Corpus.default_config ~article_count:cfg.article_count)
  in
  Index.publish_corpus index ~kind:cfg.scheme articles;
  let publish_bytes = Network.bytes net Network.Maintenance in
  Network.reset net;
  let caches =
    Array.init cfg.node_count (fun _ ->
        Shortcut.create ~metrics:registry ~clock ~ttl
          ~capacity:cfg.policy.Policy.capacity ())
  in
  let driver =
    match cfg.churn with
    | Some c when churn_active ->
        let session_mean = 1.0 /. c.churn_rate in
        let session =
          if c.heavy_tailed then Churn.Lifetime.pareto ~mean:session_mean ()
          else Churn.Lifetime.exponential ~mean:session_mean
        in
        Some
          ( c,
            Churn.Driver.create ~metrics:registry
              ~seed:(Int64.add cfg.seed 9_999_991L) ~liveness
              {
                Churn.Driver.session;
                downtime = Churn.Lifetime.exponential ~mean:c.downtime_mean;
                republish_period = c.republish_period;
                repair_period = c.repair_period;
              } )
    | Some _ | None -> None
  in
  (* Advance virtual time to [until], firing every churn event due before
     it.  Abrupt failures lose the node's index shard and its shortcut
     cache; republication and repair restore soft state on live nodes. *)
  let advance_time until =
    match driver with
    | None -> ()
    | Some (_c, d) ->
        Churn.Driver.run_until d ~until
          ~on_fail:(fun ~time node ->
            clock_ref := time;
            Index.drop_node_state index node;
            Shortcut.clear caches.(node))
          ~on_join:(fun ~time _node -> clock_ref := time)
          ~on_republish:(fun ~time ->
            clock_ref := time;
            Index.republish_corpus index ~kind:cfg.scheme articles)
          ~on_repair:(fun ~time ->
            clock_ref := time;
            ignore (Index.repair index : int));
        clock_ref := until
  in
  let popularity =
    match cfg.popularity with
    | Fitted_cdf alpha -> Stdx.Power_law.fitted_cdf ~alpha ~n:cfg.article_count ()
    | Zipf s -> Stdx.Power_law.zipf ~s ~n:cfg.article_count
  in
  let gen =
    Query_gen.create ~mix:cfg.mix ~popularity ~articles
      ~seed:(Int64.add cfg.seed 1_000_003L) ()
  in
  let state = { cfg; rpc; index; caches; liveness; tracer } in
  let interactions = Summary.create () in
  let error_probes = Summary.create () in
  let hits = ref 0 in
  let hits_first_node = ref 0 in
  let errors = ref 0 in
  let unreachable = ref 0 in
  let remaining_events = ref (Option.value ~default:[] events) in
  let next_event () =
    match !remaining_events with
    | event :: rest ->
        remaining_events := rest;
        event
    | [] -> Query_gen.next gen
  in
  for i = 1 to cfg.query_count do
    (match driver with
    | Some (c, _) -> advance_time (float_of_int i /. c.query_rate)
    | None -> ());
    (* Delayed fire-and-forget messages (cache installs under latency)
       land once the clock has passed their arrival time.  A no-op on the
       zero plan, whose outbox stays empty. *)
    ignore (Dht.Rpc.deliver_until rpc ~now:(clock ()) : int);
    let event = next_event () in
    Option.iter
      (fun tr -> Obs.Trace.begin_trace tr ~root:(Q.to_string event.Query_gen.query))
      tracer;
    let outcome = run_session state event in
    Option.iter Obs.Trace.end_trace tracer;
    Summary.add_int interactions outcome.steps;
    (match outcome.hit_position with
    | Some p ->
        incr hits;
        if p = 1 then incr hits_first_node
    | None -> ());
    if outcome.probes_failed > 0 then begin
      incr errors;
      Summary.add_int error_probes outcome.probes_failed
    end;
    if not outcome.found then incr unreachable
  done;
  ignore (Dht.Rpc.flush_deliveries rpc : int);
  let snapshot = Obs.Metrics.snapshot registry in
  let rpc_count name = Obs.Metrics.counter_total snapshot name in
  {
    config = cfg;
    interactions;
    hits = !hits;
    hits_first_node = !hits_first_node;
    errors = !errors;
    error_probes;
    unreachable = !unreachable;
    request_bytes = Network.bytes net Network.Request;
    response_bytes = Network.bytes net Network.Response;
    cache_bytes = Network.bytes net Network.Cache_update;
    maintenance_bytes = Network.bytes net Network.Maintenance;
    node_touches = Network.touches net;
    cached_keys = Array.map Shortcut.size caches;
    regular_keys = Index.entries_per_node index;
    index_bytes = Index.index_bytes index;
    article_bytes = Index.file_bytes index;
    index_mappings = Index.mapping_count index;
    publish_bytes;
    network_messages = Network.total_messages net;
    rpc_calls = rpc_count "p2pindex_rpc_calls_total";
    rpc_exhausted = rpc_count "p2pindex_rpc_exhausted_total";
    rpc_timeouts = rpc_count "p2pindex_rpc_timeouts_total";
    rpc_retries = rpc_count "p2pindex_rpc_retries_total";
    rpc_hedges = rpc_count "p2pindex_rpc_hedges_total";
    rpc_hedges_won = rpc_count "p2pindex_rpc_hedges_won_total";
    rpc_duplicates_suppressed = rpc_count "p2pindex_rpc_duplicates_suppressed_total";
    rpc_lost_messages = rpc_count "p2pindex_rpc_lost_messages_total";
    metrics = snapshot;
  }

(* ------------------------------------------------------------------ *)

let queries r = Stdlib.max 1 (Summary.count r.interactions)

let interactions_mean r = Summary.mean r.interactions

let hit_ratio r = float_of_int r.hits /. float_of_int (queries r)

let first_node_hit_share r =
  if r.hits = 0 then 0.0 else float_of_int r.hits_first_node /. float_of_int r.hits

let normal_traffic_per_query r =
  float_of_int (r.request_bytes + r.response_bytes) /. float_of_int (queries r)

let cache_traffic_per_query r = float_of_int r.cache_bytes /. float_of_int (queries r)

let array_mean a =
  if Array.length a = 0 then 0.0
  else float_of_int (Array.fold_left ( + ) 0 a) /. float_of_int (Array.length a)

let cached_keys_mean r = array_mean r.cached_keys

let cached_keys_max r = Array.fold_left Stdlib.max 0 r.cached_keys

let caches_full_share r =
  match r.config.policy.Policy.capacity with
  | None -> 0.0
  | Some cap ->
      let full = Array.fold_left (fun acc n -> if n >= cap then acc + 1 else acc) 0 r.cached_keys in
      float_of_int full /. float_of_int (Array.length r.cached_keys)

let caches_empty_share r =
  let empty = Array.fold_left (fun acc n -> if n = 0 then acc + 1 else acc) 0 r.cached_keys in
  float_of_int empty /. float_of_int (Array.length r.cached_keys)

let regular_keys_mean r = array_mean r.regular_keys

let availability r =
  1.0 -. (float_of_int r.unreachable /. float_of_int (queries r))

let maintenance_traffic_per_query r =
  float_of_int r.maintenance_bytes /. float_of_int (queries r)

let lookup_success_rate r =
  if r.rpc_calls = 0 then 1.0
  else 1.0 -. (float_of_int r.rpc_exhausted /. float_of_int r.rpc_calls)

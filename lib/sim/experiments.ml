module Schemes = Bib.Schemes
module Policy = Cache.Policy
module Query_gen = Workload.Query_gen
module Tabular = Stdx.Tabular

type scale = {
  node_count : int;
  article_count : int;
  query_count : int;
  seed : int64;
}

let paper_scale =
  { node_count = 500; article_count = 10_000; query_count = 50_000; seed = 42L }

let quick_scale =
  { node_count = 100; article_count = 1_000; query_count = 5_000; seed = 42L }

let config_of_scale scale =
  {
    Runner.default_config with
    node_count = scale.node_count;
    article_count = scale.article_count;
    query_count = scale.query_count;
    seed = scale.seed;
  }

module Grid = struct
  type t = { scale : scale; cells : (string, Runner.report) Hashtbl.t }

  let create scale = { scale; cells = Hashtbl.create 32 }

  let report t ~scheme ~policy =
    let key = Schemes.label scheme ^ "/" ^ Policy.label policy in
    match Hashtbl.find_opt t.cells key with
    | Some r -> r
    | None ->
        let r = Runner.run { (config_of_scale t.scale) with scheme; policy } in
        Hashtbl.add t.cells key r;
        r

  let scale t = t.scale
end

(* ------------------------------------------------------------------ *)
(* Fig. 7: query-structure mix. *)

type mix_row = { structure : string; model : float; observed : float }

let model_probability (mix : Query_gen.mix) = function
  | Query_gen.Author -> mix.p_author
  | Query_gen.Title -> mix.p_title
  | Query_gen.Year -> mix.p_year
  | Query_gen.Author_title -> mix.p_author_title
  | Query_gen.Author_year -> mix.p_author_year
  | Query_gen.Author_conf -> mix.p_author_conf
  | Query_gen.Author_prefix -> mix.p_author_prefix

let fig7_query_mix scale =
  let articles =
    Bib.Corpus.generate ~seed:scale.seed
      (Bib.Corpus.default_config ~article_count:scale.article_count)
  in
  let gen = Query_gen.create ~articles ~seed:scale.seed () in
  let counts = Hashtbl.create 8 in
  for _ = 1 to scale.query_count do
    let event = Query_gen.next gen in
    let n = Option.value ~default:0 (Hashtbl.find_opt counts event.structure) in
    Hashtbl.replace counts event.structure (n + 1)
  done;
  List.map
    (fun structure ->
      let observed =
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts structure))
        /. float_of_int scale.query_count
      in
      {
        structure = Query_gen.structure_label structure;
        model = model_probability Query_gen.bibfinder_mix structure;
        observed;
      })
    Query_gen.all_structures

(* ------------------------------------------------------------------ *)
(* Fig. 9: popularity distributions. *)

type popularity_series = {
  ranks : int list;
  article_probability : (int * float) list;
  observed_frequency : (int * float) list;
  fitted_slope : float;
  author_frequency : (int * float) list;
      (* observed author-query frequency by author popularity rank *)
  author_slope : float;
}

let sample_ranks n =
  let candidates = [ 1; 2; 3; 5; 10; 20; 50; 100; 200; 500; 1_000; 2_000; 5_000; 10_000 ] in
  List.filter (fun r -> r <= n) candidates

let fig9_popularity scale =
  let articles =
    Bib.Corpus.generate ~seed:scale.seed
      (Bib.Corpus.default_config ~article_count:scale.article_count)
  in
  let law = Query_gen.paper_popularity ~article_count:scale.article_count in
  let gen = Query_gen.create ~articles ~seed:scale.seed () in
  let counts = Array.make scale.article_count 0 in
  let author_counts : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  for _ = 1 to scale.query_count do
    let event = Query_gen.next gen in
    counts.(event.target.id - 1) <- counts.(event.target.id - 1) + 1;
    (* The paper's author-popularity series (Fig. 9): how often each author
       appears in queries with an author field. *)
    match event.query with
    | Bib.Bib_query.Fields { author = Some a; _ } ->
        let key = Bib.Article.author_to_string a in
        Hashtbl.replace author_counts key
          (1 + Option.value ~default:0 (Hashtbl.find_opt author_counts key))
    | Bib.Bib_query.Fields _ | Bib.Bib_query.Msd _ | Bib.Bib_query.Author_last_prefix _ ->
        ()
  done;
  let ranks = sample_ranks scale.article_count in
  let observed_frequency =
    List.map
      (fun r -> (r, float_of_int counts.(r - 1) /. float_of_int scale.query_count))
      ranks
  in
  let fit_log_log points =
    let usable =
      List.filter_map
        (fun (r, f) -> if f > 0.0 then Some (log (float_of_int r), log f) else None)
        points
    in
    match usable with
    | _ :: _ :: _ ->
        let slope, _ = Stdx.Stats.linear_fit usable in
        slope
    | _ -> Float.nan
  in
  let author_total =
    Hashtbl.fold (fun _ n acc -> acc + n) author_counts 0
  in
  let authors_sorted =
    Stdx.Det_tbl.sorted_bindings ~compare:String.compare author_counts
    |> List.map snd
    |> List.sort (fun a b -> Int.compare b a)
    |> Array.of_list
  in
  let author_frequency =
    List.filter_map
      (fun r ->
        if r <= Array.length authors_sorted && author_total > 0 then
          Some (r, float_of_int authors_sorted.(r - 1) /. float_of_int author_total)
        else None)
      ranks
  in
  {
    ranks;
    article_probability = List.map (fun r -> (r, Stdx.Power_law.probability law r)) ranks;
    observed_frequency;
    fitted_slope = fit_log_log observed_frequency;
    author_frequency;
    author_slope = fit_log_log author_frequency;
  }

(* ------------------------------------------------------------------ *)
(* Fig. 10: the complementary CDF. *)

type ccdf_row = { rank : int; formula : float; model : float }

let fig10_ccdf scale =
  let law = Query_gen.paper_popularity ~article_count:scale.article_count in
  List.map
    (fun rank ->
      let formula =
        Float.max 0.0
          (1.0 -. (Stdx.Power_law.paper_c *. (float_of_int rank ** Stdx.Power_law.paper_alpha)))
      in
      { rank; formula; model = Stdx.Power_law.ccdf law rank })
    (sample_ranks scale.article_count)

(* ------------------------------------------------------------------ *)
(* Storage (Section V-B). *)

type storage_row = {
  scheme : string;
  index_bytes : int;
  overhead_vs_simple : float;
  article_bytes : int;
  index_to_data_ratio : float;
  dblp_scaled_bytes : float;
}

let dblp_article_count = 115_879.

let storage_overhead grid =
  let report kind = Grid.report grid ~scheme:kind ~policy:Policy.no_cache in
  let simple_bytes = (report Schemes.Simple).Runner.index_bytes in
  List.map
    (fun kind ->
      let r = report kind in
      let scale_factor =
        dblp_article_count /. float_of_int (Grid.scale grid).article_count
      in
      {
        scheme = Schemes.label kind;
        index_bytes = r.Runner.index_bytes;
        overhead_vs_simple =
          (float_of_int r.Runner.index_bytes /. float_of_int simple_bytes) -. 1.0;
        article_bytes = r.Runner.article_bytes;
        index_to_data_ratio =
          float_of_int r.Runner.index_bytes /. float_of_int r.Runner.article_bytes;
        dblp_scaled_bytes = float_of_int r.Runner.index_bytes *. scale_factor;
      })
    Schemes.all

type keys_row = { scheme : string; keys_per_node_mean : float; paper_value : float }

let paper_keys_per_node = function
  | Schemes.Simple -> 155.0
  | Schemes.Flat -> 195.0
  | Schemes.Complex -> 180.0
  | Schemes.Complex_ac | Schemes.Prefix -> Float.nan

let keys_per_node grid =
  List.map
    (fun kind ->
      let r = Grid.report grid ~scheme:kind ~policy:Policy.no_cache in
      {
        scheme = Schemes.label kind;
        keys_per_node_mean = Runner.regular_keys_mean r;
        paper_value = paper_keys_per_node kind;
      })
    Schemes.all

(* ------------------------------------------------------------------ *)
(* Figs. 11-14 and Table I. *)

type cell = { scheme : string; policy : string; value : float }

let fig11_policies = [ Policy.no_cache; Policy.single_cache; Policy.lru 10; Policy.lru 20; Policy.lru 30 ]
let fig12_policies = Policy.paper_policies
let caching_policies = [ Policy.multi_cache; Policy.single_cache; Policy.lru 10; Policy.lru 20; Policy.lru 30 ]

let cells grid policies metric =
  List.concat_map
    (fun scheme ->
      List.map
        (fun policy ->
          let r = Grid.report grid ~scheme ~policy in
          { scheme = Schemes.label scheme; policy = Policy.label policy; value = metric r })
        policies)
    Schemes.all

let fig11_interactions grid = cells grid fig11_policies Runner.interactions_mean

type traffic_cell = {
  scheme : string;
  policy : string;
  normal_bytes : float;
  cache_bytes : float;
}

let fig12_traffic grid =
  List.concat_map
    (fun scheme ->
      List.map
        (fun policy ->
          let r = Grid.report grid ~scheme ~policy in
          {
            scheme = Schemes.label scheme;
            policy = Policy.label policy;
            normal_bytes = Runner.normal_traffic_per_query r;
            cache_bytes = Runner.cache_traffic_per_query r;
          })
        fig12_policies)
    Schemes.all

let fig13_hit_ratio grid = cells grid caching_policies Runner.hit_ratio

let fig13_first_node_share grid =
  List.map
    (fun scheme ->
      let r = Grid.report grid ~scheme ~policy:Policy.multi_cache in
      {
        scheme = Schemes.label scheme;
        policy = Policy.label Policy.multi_cache;
        value = Runner.first_node_hit_share r;
      })
    Schemes.all

let fig14_cache_storage grid = cells grid caching_policies Runner.cached_keys_mean

type cache_extremes = {
  policy : string;
  scheme : string;
  max_cached : int;
  full_share : float;
  empty_share : float;
}

let fig14_extremes grid =
  List.concat_map
    (fun scheme ->
      List.map
        (fun policy ->
          let r = Grid.report grid ~scheme ~policy in
          {
            policy = Policy.label policy;
            scheme = Schemes.label scheme;
            max_cached = Runner.cached_keys_max r;
            full_share = Runner.caches_full_share r;
            empty_share = Runner.caches_empty_share r;
          })
        caching_policies)
    Schemes.all

type hotspot_series = {
  policy : string;
  share_by_rank : (int * float) list;
  gini : float;  (* load imbalance: 0 = balanced, 1 = one node does it all *)
}

let fig15_hotspots grid =
  let scale = Grid.scale grid in
  let series policy =
    let r = Grid.report grid ~scheme:Schemes.Simple ~policy in
    let touches = Array.copy r.Runner.node_touches in
    Array.sort (fun a b -> Int.compare b a) touches;
    let ranks =
      List.filter (fun i -> i <= Array.length touches)
        [ 1; 2; 3; 5; 10; 20; 50; 100; 200; 500 ]
    in
    {
      policy = Policy.label policy;
      share_by_rank =
        List.map
          (fun rank ->
            (rank, float_of_int touches.(rank - 1) /. float_of_int scale.query_count))
          ranks;
      gini = Stdx.Stats.gini (Array.map float_of_int touches);
    }
  in
  List.map series [ Policy.no_cache; Policy.single_cache; Policy.lru 30 ]

let table1_policies = [ Policy.no_cache; Policy.lru 30; Policy.single_cache ]

let table1_errors grid =
  List.concat_map
    (fun policy ->
      List.map
        (fun scheme ->
          let r = Grid.report grid ~scheme ~policy in
          {
            scheme = Schemes.label scheme;
            policy = Policy.label policy;
            value = float_of_int r.Runner.errors;
          })
        Schemes.all)
    table1_policies

(* ------------------------------------------------------------------ *)
(* Ablations. *)

type substrate_row = {
  substrate : string;
  interactions : float;
  normal_bytes : float;
  substrate_overhead_bytes : float;
}

let ablation_substrate scale =
  (* The point of this ablation is metric equality across substrates, not
     scale; capping it keeps CAN's O(n)-per-hop simulation affordable. *)
  let scale =
    {
      scale with
      node_count = Stdlib.min scale.node_count 150;
      query_count = Stdlib.min scale.query_count 5_000;
      article_count = Stdlib.min scale.article_count 2_000;
    }
  in
  let base = config_of_scale scale in
  let run substrate charge =
    Runner.run
      {
        base with
        substrate;
        charge_route_hops = charge;
        scheme = Schemes.Simple;
        policy = Policy.single_cache;
      }
  in
  let static = run Runner.Static false in
  let chord = run Runner.Chord true in
  let pastry = run Runner.Pastry true in
  let can = run Runner.Can true in
  let kademlia = run Runner.Kademlia true in
  let per_query bytes r =
    float_of_int bytes /. float_of_int (Stdx.Stats.Summary.count r.Runner.interactions)
  in
  [
    {
      substrate = "Static oracle";
      interactions = Runner.interactions_mean static;
      normal_bytes = Runner.normal_traffic_per_query static;
      substrate_overhead_bytes = per_query static.Runner.maintenance_bytes static;
    };
    {
      substrate = "Chord";
      interactions = Runner.interactions_mean chord;
      normal_bytes = Runner.normal_traffic_per_query chord;
      substrate_overhead_bytes = per_query chord.Runner.maintenance_bytes chord;
    };
    {
      substrate = "Pastry";
      interactions = Runner.interactions_mean pastry;
      normal_bytes = Runner.normal_traffic_per_query pastry;
      substrate_overhead_bytes = per_query pastry.Runner.maintenance_bytes pastry;
    };
    {
      substrate = "CAN (2-d)";
      interactions = Runner.interactions_mean can;
      normal_bytes = Runner.normal_traffic_per_query can;
      substrate_overhead_bytes = per_query can.Runner.maintenance_bytes can;
    };
    {
      substrate = "Kademlia";
      interactions = Runner.interactions_mean kademlia;
      normal_bytes = Runner.normal_traffic_per_query kademlia;
      substrate_overhead_bytes = per_query kademlia.Runner.maintenance_bytes kademlia;
    };
  ]

type skew_row = { alpha : float; hit_ratio : float; interactions : float }

let ablation_skew scale =
  (* A Zipf family gives a clean monotone axis: s = 0 is uniform popularity,
     larger s concentrates queries on fewer articles. *)
  let base = config_of_scale scale in
  List.map
    (fun s ->
      let r =
        Runner.run
          {
            base with
            popularity = Runner.Zipf s;
            scheme = Schemes.Simple;
            policy = Policy.lru 30;
          }
      in
      { alpha = s; hit_ratio = Runner.hit_ratio r; interactions = Runner.interactions_mean r })
    [ 0.0; 0.4; 0.8; 1.2 ]

type replication_row = {
  replication : int;
  failed_fraction : float;
  available_keys : float;  (* fraction of index keys still reachable *)
  storage_cost : int;  (* total replica entries *)
}

let ablation_replication scale =
  (* Store the simple scheme's index keys in replicated stores and measure
     how many survive node failures — Section IV-D's availability argument.
     Failures are drawn deterministically from the seed. *)
  let articles =
    Bib.Corpus.generate ~seed:scale.seed
      (Bib.Corpus.default_config ~article_count:scale.article_count)
  in
  let resolver =
    Dht.Static_dht.resolver
      (Dht.Static_dht.create ~seed:scale.seed ~node_count:scale.node_count ())
  in
  let edges =
    P2pindex.Scheme.collection_edges ~compare_query:Bib.Bib_query.compare
      (Schemes.scheme Schemes.Simple)
      (Array.to_list (Array.map Bib.Bib_query.msd articles))
  in
  let keys =
    List.sort_uniq Hashing.Key.compare
      (List.map
         (fun { P2pindex.Scheme.parent; _ } ->
           Hashing.Key.of_string (Bib.Bib_query.to_string parent))
         edges)
  in
  let rows = ref [] in
  List.iter
    (fun replication ->
      List.iter
        (fun failed_fraction ->
          let store : unit Storage.Replicated_store.t =
            Storage.Replicated_store.create ~resolver ~replication ()
          in
          List.iter (fun key -> Storage.Replicated_store.insert store ~key ()) keys;
          let g = Stdx.Prng.create ~seed:(Int64.add scale.seed 77L) in
          let victims = int_of_float (failed_fraction *. float_of_int scale.node_count) in
          let order = Array.init scale.node_count (fun i -> i) in
          Stdx.Prng.shuffle g order;
          for i = 0 to victims - 1 do
            Storage.Replicated_store.fail_node store order.(i)
          done;
          let surviving =
            List.fold_left
              (fun acc key ->
                if Storage.Replicated_store.available store key then acc + 1 else acc)
              0 keys
          in
          rows :=
            {
              replication;
              failed_fraction;
              available_keys = float_of_int surviving /. float_of_int (List.length keys);
              storage_cost = Storage.Replicated_store.total_replica_entries store;
            }
            :: !rows)
        [ 0.1; 0.3; 0.5 ])
    [ 1; 2; 3 ];
  List.rev !rows

type churn_row = {
  churn_rate : float;
  churn_replication : int;
  availability : float;
  churn_interactions : float;
  maintenance_per_query : float;
  live_nodes_end : float;  (* live nodes when the run ended *)
}

let churn_rates = [ 0.0; 0.0005; 0.002; 0.008 ]
let churn_replications = [ 1; 3 ]

let ablation_churn scale =
  (* The churned run mode end-to-end: nodes crash and rejoin on seeded
     session lifetimes while the workload runs; soft state is republished
     and repaired.  Availability degrades with the churn rate and recovers
     with replication — Section IV-D's argument, measured.  The run length
     is query_count / query_rate virtual seconds, so the maintenance
     periods below are chosen to fire several times even at quick scale. *)
  let base =
    { (config_of_scale scale) with scheme = Schemes.Simple; policy = Policy.no_cache }
  in
  let churn_of ~churn_rate ~replication =
    {
      Runner.default_churn with
      churn_rate;
      replication;
      ttl = 90.0;
      republish_period = 30.0;
      repair_period = 10.0;
    }
  in
  List.concat_map
    (fun churn_rate ->
      List.map
        (fun replication ->
          let r =
            Runner.run
              { base with churn = Some (churn_of ~churn_rate ~replication) }
          in
          let live_nodes_end =
            let metric =
              List.find_opt
                (fun (f : Obs.Metrics.family) ->
                  String.equal f.name "p2pindex_churn_live_nodes")
                r.Runner.metrics
            in
            match metric with
            | Some { series = { value = Obs.Metrics.Gauge_value v; _ } :: _; _ } -> v
            | _ -> float_of_int base.Runner.node_count
          in
          {
            churn_rate;
            churn_replication = replication;
            availability = Runner.availability r;
            churn_interactions = Runner.interactions_mean r;
            maintenance_per_query = Runner.maintenance_traffic_per_query r;
            live_nodes_end;
          })
        churn_replications)
    churn_rates

type fault_sweep_row = {
  sweep_loss_rate : float;
  sweep_retries : int;
  sweep_hedged : bool;
  lookup_success : float;  (* RPC exchanges answered within budget *)
  fault_availability : float;  (* sessions that found their target *)
  fault_interactions : float;
  sweep_timeouts : int;
  sweep_retries_used : int;
  sweep_hedges_won : int;
}

let fault_loss_rates = [ 0.0; 0.05; 0.2 ]
let fault_retry_budgets = [ 0; 2 ]

let fault_sweep scale =
  (* Lookup success under message loss, across the retry budget.  Every
     cell shares the duplicate rate and latency; only loss and the retry
     budget vary, so the table isolates what retries + hedging buy back.
     Capped like the substrate ablation: the point is rates, not scale.
     All randomness is seeded, so the same scale prints the same table. *)
  let scale =
    {
      scale with
      node_count = Stdlib.min scale.node_count 150;
      query_count = Stdlib.min scale.query_count 5_000;
      article_count = Stdlib.min scale.article_count 2_000;
    }
  in
  let base =
    { (config_of_scale scale) with scheme = Schemes.Simple; policy = Policy.no_cache }
  in
  List.concat_map
    (fun loss_rate ->
      List.map
        (fun retries ->
          let hedged = retries > 0 in
          let faults =
            {
              Runner.default_faults with
              loss_rate;
              duplicate_rate = 0.05;
              latency_mean = 0.02;
              rpc_retries = retries;
              hedge = hedged;
              fault_replication = 3;
            }
          in
          let r = Runner.run { base with faults = Some faults } in
          {
            sweep_loss_rate = loss_rate;
            sweep_retries = retries;
            sweep_hedged = hedged;
            lookup_success = Runner.lookup_success_rate r;
            fault_availability = Runner.availability r;
            fault_interactions = Runner.interactions_mean r;
            sweep_timeouts = r.Runner.rpc_timeouts;
            sweep_retries_used = r.Runner.rpc_retries;
            sweep_hedges_won = r.Runner.rpc_hedges_won;
          })
        fault_retry_budgets)
    fault_loss_rates

type concurrency_row = {
  row_concurrency : int;
  row_coalesce : bool;
  row_coalesced : int;  (* probes that rode another probe's response *)
  row_normal_per_query : float;
  row_cache_per_query : float;
  row_session_latency : float;  (* mean arrival-to-completion, virtual s *)
  row_peak_in_flight : int;
}

let concurrency_levels = [ 1; 4; 16; 64 ]

let concurrency_sweep scale =
  (* The singleflight experiment: the same hot-spot-prone workload
     (Fig. 15's load concentration) run with overlapping sessions.  RPC
     latency gives probes a window in which identical probes from other
     sessions can coalesce; fault rates stay zero and the timeout is kept
     far above any drawn latency so nothing is lost or retried — the
     traffic difference is coalescing and nothing else.  Capped like the
     fault sweep; all randomness is seeded, so the same scale prints the
     same table. *)
  let scale =
    {
      scale with
      node_count = Stdlib.min scale.node_count 100;
      query_count = Stdlib.min scale.query_count 1_500;
      article_count = Stdlib.min scale.article_count 2_000;
    }
  in
  let faults =
    { Runner.default_faults with latency_mean = 0.05; rpc_timeout = 50.0 }
  in
  let base =
    {
      (config_of_scale scale) with
      scheme = Schemes.Simple;
      policy = Policy.no_cache;
      faults = Some faults;
    }
  in
  let row ~concurrency ~coalesce =
    let r = Engine.run ~concurrency ~coalesce base in
    {
      row_concurrency = concurrency;
      row_coalesce = coalesce;
      row_coalesced = r.Engine.coalesced;
      row_normal_per_query = Runner.normal_traffic_per_query r.Engine.base;
      row_cache_per_query = Runner.cache_traffic_per_query r.Engine.base;
      row_session_latency = Stdx.Stats.Summary.mean r.Engine.session_latency;
      row_peak_in_flight = r.Engine.peak_in_flight;
    }
  in
  List.concat_map
    (fun concurrency ->
      if concurrency = 1 then [ row ~concurrency ~coalesce:false ]
      else
        [ row ~concurrency ~coalesce:false; row ~concurrency ~coalesce:true ])
    concurrency_levels

type scheme_variant_row = {
  scheme_label : string;
  interactions : float;
  non_indexed_errors : int;
  index_megabytes : float;
}

let ablation_scheme_variants scale =
  (* The Complex_ac variant adds an (author, conference) entry-point index.
     Under a workload where users actually combine author and venue, the
     entry point turns recoverable errors into direct chains; the cost is
     extra index storage. *)
  let mix =
    {
      Query_gen.bibfinder_mix with
      Query_gen.p_author = 0.40;
      p_author_conf = 0.25;
    }
  in
  let base = { (config_of_scale scale) with mix; policy = Policy.no_cache } in
  List.map
    (fun scheme ->
      let r = Runner.run { base with scheme } in
      {
        scheme_label = Schemes.label scheme;
        interactions = Runner.interactions_mean r;
        non_indexed_errors = r.Runner.errors;
        index_megabytes = float_of_int r.Runner.index_bytes /. (1024.0 *. 1024.0);
      })
    [ Schemes.Complex; Schemes.Complex_ac ]

type deletion_row = {
  deleted_fraction : float;
  mappings_before : int;
  mappings_after : int;
  dangling_lookups : int;  (* deleted articles still reachable: must be 0 *)
  survivors_lost : int;  (* remaining articles no longer reachable: must be 0 *)
}

let ablation_deletion scale =
  (* Read/write semantics (Section IV-C): deleting a file must remove every
     index path to it — recursively, when a mapping's target dies — while
     shared coarse entries keep serving the surviving files. *)
  let articles =
    Bib.Corpus.generate ~seed:scale.seed
      (Bib.Corpus.default_config ~article_count:scale.article_count)
  in
  let resolver =
    Dht.Static_dht.resolver
      (Dht.Static_dht.create ~seed:scale.seed ~node_count:scale.node_count ())
  in
  let reachable index (a : Bib.Article.t) =
    let query = Bib.Bib_query.author_q (List.hd a.Bib.Article.authors) in
    List.exists
      (fun (msd, _file) -> Bib.Bib_query.equal msd (Bib.Bib_query.msd a))
      (Bib.Bib_index.search index query)
  in
  List.map
    (fun deleted_fraction ->
      let index = Bib.Bib_index.create ~resolver () in
      Bib.Bib_index.publish_corpus index ~kind:Schemes.Simple articles;
      let mappings_before = Bib.Bib_index.mapping_count index in
      let victim_count =
        int_of_float (deleted_fraction *. float_of_int scale.article_count)
      in
      let victims = Array.sub articles 0 victim_count in
      let survivors =
        Array.sub articles victim_count (scale.article_count - victim_count)
      in
      Array.iter
        (fun a ->
          Bib.Bib_index.unpublish index ~scheme:(Schemes.scheme Schemes.Simple)
            ~msd:(Bib.Bib_query.msd a))
        victims;
      let dangling_lookups =
        Array.fold_left (fun acc a -> if reachable index a then acc + 1 else acc) 0 victims
      in
      let survivors_lost =
        Array.fold_left
          (fun acc a -> if reachable index a then acc else acc + 1)
          0 survivors
      in
      {
        deleted_fraction;
        mappings_before;
        mappings_after = Bib.Bib_index.mapping_count index;
        dangling_lookups;
        survivors_lost;
      })
    [ 0.1; 0.5; 1.0 ]

type hotspot_replication_row = {
  key_replicas : int;
  busiest_share : float;  (* share of all interactions at the busiest node *)
  load_gini : float;
}

let ablation_hotspot_replication scale =
  (* Section V-g: "any optimization of the underlying P2P DHT substrate for
     hot-spot avoidance (e.g., using replication) will apply to index
     accesses as well."  Replicate every index key on r nodes and spread
     reads round-robin across the replicas; measure the busiest node's load
     and the overall imbalance. *)
  let articles =
    Bib.Corpus.generate ~seed:scale.seed
      (Bib.Corpus.default_config ~article_count:scale.article_count)
  in
  let resolver =
    Dht.Static_dht.resolver
      (Dht.Static_dht.create ~seed:scale.seed ~node_count:scale.node_count ())
  in
  let gen =
    Workload.Query_gen.create ~articles ~seed:(Int64.add scale.seed 1_000_003L) ()
  in
  (* Per-key interaction counts from the no-cache walk (entry query, its
     chain, and the failed probe of non-indexed queries). *)
  let key_counts : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let bump q =
    let s = Bib.Bib_query.to_string q in
    Hashtbl.replace key_counts s (1 + Option.value ~default:0 (Hashtbl.find_opt key_counts s))
  in
  for _ = 1 to scale.query_count do
    let event = Workload.Query_gen.next gen in
    match Schemes.chain_to Schemes.Simple event.target event.query with
    | chain ->
        bump event.query;
        List.iter bump chain
    | exception Invalid_argument _ ->
        (* Non-indexed shape: the failed probe, then the generalized chain. *)
        bump event.query;
        let fallback =
          List.find
            (fun g -> Bib.Bib_query.matches_article g event.target)
            (Bib.Bib_query.generalizations event.query)
        in
        bump fallback;
        List.iter bump (Schemes.chain_to Schemes.Simple event.target fallback)
  done;
  let row key_replicas =
    let loads = Array.make scale.node_count 0.0 in
    (* Float load shares accumulate per node: iterate keys in sorted order so
       the addition order (and the rounding it implies) is reproducible. *)
    Stdx.Det_tbl.iter_sorted ~compare:String.compare
      (fun key_string count ->
        let key = Hashing.Key.of_string key_string in
        let replicas = Dht.Resolver.replicas resolver key key_replicas in
        let n = List.length replicas in
        (* Round-robin reads: each replica takes an equal share. *)
        List.iter
          (fun node -> loads.(node) <- loads.(node) +. (float_of_int count /. float_of_int n))
          replicas)
      key_counts;
    let total = Array.fold_left ( +. ) 0.0 loads in
    let busiest = Array.fold_left Float.max 0.0 loads in
    {
      key_replicas;
      busiest_share = (if total > 0.0 then busiest /. total else 0.0);
      load_gini = Stdx.Stats.gini loads;
    }
  in
  List.map row [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Prefix sweep: routed range search vs broadcast-and-filter. *)

type prefix_sweep_row = {
  sweep_prefix_len : int;
  routed_nodes_mean : float;  (* covering nodes contacted per routed query *)
  sweep_broadcast_nodes : int;  (* the flooding baseline contacts them all *)
  direct_bytes_per_query : float;
  multicast_bytes_per_query : float;
  broadcast_bytes_per_query : float;
  install_messages : int;  (* spanning-tree dissemination of the index *)
  install_bound_slack : int;  (* members + edges - messages, >= 0 *)
  install_depth : int;
  sweep_interactions : float;  (* end-to-end walk with the prefix route *)
  sweep_normal_bytes : float;
}

let prefix_lens = [ 1; 2; 3 ]

let prefix_sweep scale =
  (* The hashed schemes can only answer [Smi*] by flooding every node and
     filtering; the prefix index files terms under order-preserving keys,
     so the same query routes to the few nodes covering one ring arc.
     Two measurements per prefix length: a standalone harness that prices
     the same probe stream three ways (direct exchanges, spanning-tree
     multicast, broadcast-and-filter) on one billed network, and a full
     [Runner.run] with the prefix scheme for the end-to-end walk numbers.
     Probes are capped — the point is per-query means, not scale — and
     every draw is seeded, so the same scale prints the same table. *)
  let probe_count = Stdlib.min scale.query_count 1_000 in
  let articles =
    Bib.Corpus.generate ~seed:scale.seed
      (Bib.Corpus.default_config ~article_count:scale.article_count)
  in
  let lasts =
    Array.to_list articles
    |> List.concat_map (fun (a : Bib.Article.t) ->
           List.map (fun (x : Bib.Article.author) -> x.Bib.Article.last) a.authors)
    |> List.sort_uniq String.compare
    |> Array.of_list
  in
  let entries =
    Array.to_list articles
    |> List.concat_map (fun (a : Bib.Article.t) ->
           List.map
             (fun (x : Bib.Article.author) ->
               (x.Bib.Article.last, Bib.Bib_query.author_q x))
             a.authors)
    |> List.sort_uniq (fun (t1, q1) (t2, q2) ->
           match String.compare t1 t2 with
           | 0 -> Bib.Bib_query.compare q1 q2
           | c -> c)
  in
  let resolver =
    Dht.Static_dht.resolver
      (Dht.Static_dht.create ~seed:scale.seed ~node_count:scale.node_count ())
  in
  List.map
    (fun len ->
      let network = Dht.Network.create ~node_count:scale.node_count () in
      let rpc = Dht.Rpc.create ~network () in
      let pindex =
        Prefix.Prefix_index.create ~rpc ~render:Bib.Bib_query.to_string
          ~resolver ()
      in
      let install_messages, install_depth, install_slack =
        match Prefix.Prefix_index.publish_multicast pindex entries with
        | None -> (0, 0, 0)
        | Some (s : Prefix.Multicast.stats) ->
            (* The issue's bound: one message per covering member plus one
               per tree edge; non-negative slack certifies it held. *)
            (s.messages, s.depth, s.fanout + (s.fanout - 1) - s.messages)
      in
      Dht.Network.reset network;
      let prng = Stdx.Prng.create ~seed:scale.seed in
      let covering_sum = ref 0 in
      let direct_bytes = ref 0 in
      let multicast_bytes = ref 0 in
      let broadcast_bytes = ref 0 in
      let measure f =
        let before = Dht.Network.total_bytes network in
        let (_ : (string * Bib.Bib_query.t) list) = f () in
        Dht.Network.total_bytes network - before
      in
      for _ = 1 to probe_count do
        let last = Stdx.Prng.pick prng lasts in
        let prefix = String.sub last 0 (Stdlib.min len (String.length last)) in
        covering_sum :=
          !covering_sum
          + List.length (Prefix.Prefix_index.covering_nodes pindex ~prefix);
        direct_bytes :=
          !direct_bytes
          + measure (fun () -> Prefix.Prefix_index.query pindex ~prefix);
        multicast_bytes :=
          !multicast_bytes
          + measure (fun () ->
                Prefix.Prefix_index.query ~multicast:true pindex ~prefix);
        broadcast_bytes :=
          !broadcast_bytes
          + measure (fun () -> Prefix.Prefix_index.query_broadcast pindex ~prefix)
      done;
      let per x = float_of_int x /. float_of_int probe_count in
      let r =
        Runner.run
          {
            (config_of_scale scale) with
            scheme = Schemes.Prefix;
            policy = Policy.no_cache;
            mix = Query_gen.prefix_mix Runner.default_config.mix;
            prefix = Some { Runner.prefix_len = len; multicast = true };
          }
      in
      {
        sweep_prefix_len = len;
        routed_nodes_mean = per !covering_sum;
        sweep_broadcast_nodes = scale.node_count;
        direct_bytes_per_query = per !direct_bytes;
        multicast_bytes_per_query = per !multicast_bytes;
        broadcast_bytes_per_query = per !broadcast_bytes;
        install_messages;
        install_bound_slack = install_slack;
        install_depth;
        sweep_interactions = Runner.interactions_mean r;
        sweep_normal_bytes = Runner.normal_traffic_per_query r;
      })
    prefix_lens

type quorum_sweep_row = {
  sweep_churn_rate : float;
  sweep_read_quorum : int;
  quorum_stale_rate : float;
  quorum_availability : float;
  quorum_sweep_reads : int;
  quorum_sweep_read_repairs : int;
  quorum_sweep_under_acked : int;
  quorum_maint_per_query : float;
  quorum_digest_bytes : int;
  quorum_shipped_bytes : int;
  quorum_full_state_bytes : int;
}

let quorum_read_quorums = [ 1; 2; 3 ]
let quorum_churn_rates = [ 0.002; 0.01 ]

let quorum_sweep scale =
  (* Consistency under churn, over read quorum x churn rate, at
     replication 3 with W = 3 and digest-based anti-entropy replacing
     the repair walk.  Every row is a churned run whose replicas really
     diverge (paused replicas sleep through writes and rejoin lagging),
     so R is the only knob: consulting more replicas per lookup lowers
     the stale-read rate at the price of extra probes.  Republication
     is quickened so even the capped quick scale spans several rounds
     of virtual time — writes during a replica's nap are what create
     the staleness R masks.  Capped like the fault sweep; all
     randomness is seeded, so the same scale prints the same table. *)
  let scale =
    {
      scale with
      node_count = Stdlib.min scale.node_count 150;
      query_count = Stdlib.min scale.query_count 5_000;
      article_count = Stdlib.min scale.article_count 2_000;
    }
  in
  let base =
    { (config_of_scale scale) with scheme = Schemes.Simple; policy = Policy.no_cache }
  in
  List.concat_map
    (fun churn_rate ->
      List.map
        (fun read_quorum ->
          let churn =
            {
              Runner.default_churn with
              churn_rate;
              replication = 3;
              republish_period = 20.0;
            }
          in
          let quorum =
            {
              Runner.read_quorum;
              write_quorum = 3;
              anti_entropy_interval = 10.0;
            }
          in
          let r =
            Runner.run { base with churn = Some churn; quorum = Some quorum }
          in
          {
            sweep_churn_rate = churn_rate;
            sweep_read_quorum = read_quorum;
            quorum_stale_rate = Runner.stale_read_rate r;
            quorum_availability = Runner.availability r;
            quorum_sweep_reads = r.Runner.quorum_reads;
            quorum_sweep_read_repairs = r.Runner.quorum_read_repairs;
            quorum_sweep_under_acked = r.Runner.quorum_write_failures;
            quorum_maint_per_query = Runner.maintenance_traffic_per_query r;
            quorum_digest_bytes = r.Runner.antientropy_digest_bytes;
            quorum_shipped_bytes = r.Runner.antientropy_shipped_bytes;
            quorum_full_state_bytes = r.Runner.antientropy_full_state_bytes;
          })
        quorum_read_quorums)
    quorum_churn_rates

type scale_sweep_row = {
  scale_nodes : int;
  scale_articles : int;
  scale_queries : int;
  scale_interactions : float;
  scale_normal_bytes : float;
  scale_errors : int;
  scale_minor_words_per_query : float;
  scale_phases : Obs.Phase.entry list;
}

let scale_sweep_shards = 4

let scale_sweep_ladder scale =
  (* Absolute population rungs — the sweep measures how cost per query
     holds as the network grows, so the rungs do not scale with the
     figure-level knobs.  The million-node rung only rides the paper
     scale; the quick ladder tops out at 10^5 so the bench gate stays
     fast. *)
  let base = [ (10_000, 5_000, 20_000); (100_000, 20_000, 100_000) ] in
  if scale.node_count >= paper_scale.node_count then
    base @ [ (1_000_000, 100_000, 1_000_000) ]
  else base

let scale_sweep scale =
  (* The sharded engine at population scale: each rung partitions the
     network into four isolated shards, runs them on one worker (so the
     per-phase allocation profile is exact — GC counters are per-domain)
     and merges deterministically.  The phase collector uses the null
     clock, so every number in the row, allocation words included, is
     byte-reproducible. *)
  List.map
    (fun (nodes, articles, queries) ->
      let phases = Obs.Phase.create () in
      let cfg =
        {
          Runner.default_config with
          scheme = Schemes.Simple;
          policy = Policy.no_cache;
          node_count = nodes;
          article_count = articles;
          query_count = queries;
          seed = scale.seed;
        }
      in
      let sr = Sharded.run ~shards:scale_sweep_shards ~domains:1 ~phases cfg in
      let r = sr.Sharded.engine.Engine.base in
      let entries = Obs.Phase.entries phases in
      let minor =
        List.fold_left
          (fun acc (e : Obs.Phase.entry) -> acc +. e.Obs.Phase.minor_words)
          0.0 entries
      in
      {
        scale_nodes = nodes;
        scale_articles = articles;
        scale_queries = queries;
        scale_interactions = Runner.interactions_mean r;
        scale_normal_bytes = Runner.normal_traffic_per_query r;
        scale_errors = r.Runner.errors;
        scale_minor_words_per_query = minor /. float_of_int queries;
        scale_phases = entries;
      })
    (scale_sweep_ladder scale)

(* ------------------------------------------------------------------ *)
(* Rendering.  Each [render_*] takes the precomputed data, so a single
   computation can feed both the printed table and the bench-report
   metrics ({!run_experiment}) without running the simulation twice. *)

let heading title =
  Printf.printf "\n=== %s ===\n" title

let render_fig7 (data : mix_row list) =
  heading "Fig. 7 — Query-structure mix (model vs generated workload)";
  let rows =
    List.map
      (fun (r : mix_row) ->
        [ r.structure; Tabular.fmt_pct r.model; Tabular.fmt_pct r.observed ])
      data
  in
  Tabular.print_table ~headers:[ "structure"; "model (BibFinder)"; "observed" ] ~rows

let print_fig7 scale = render_fig7 (fig7_query_mix scale)

let render_fig9 (s : popularity_series) =
  heading "Fig. 9 — Article popularity (log-log rank/probability)";
  let rows =
    List.map
      (fun rank ->
        let model = List.assoc rank s.article_probability in
        let obs = List.assoc rank s.observed_frequency in
        [ string_of_int rank; Printf.sprintf "%.6f" model; Printf.sprintf "%.6f" obs ])
      s.ranks
  in
  Tabular.print_table ~headers:[ "rank"; "model p(i)"; "observed freq" ] ~rows;
  Printf.printf "article log-log slope: %.3f (power law; paper reports a power-law family)\n"
    s.fitted_slope;
  let author_rows =
    List.map
      (fun (rank, f) -> [ string_of_int rank; Printf.sprintf "%.6f" f ])
      s.author_frequency
  in
  print_string "author-query popularity (BibFinder-authors analogue):\n";
  Tabular.print_table ~headers:[ "author rank"; "observed freq" ] ~rows:author_rows;
  Printf.printf "author log-log slope: %.3f\n" s.author_slope

let print_fig9 scale = render_fig9 (fig9_popularity scale)

let render_fig10 (data : ccdf_row list) =
  heading "Fig. 10 — CCDF of article ranking, F(i) = 1 - 0.063 i^0.3";
  let rows =
    List.map
      (fun (r : ccdf_row) ->
        [ string_of_int r.rank; Printf.sprintf "%.4f" r.formula; Printf.sprintf "%.4f" r.model ])
      data
  in
  Tabular.print_table ~headers:[ "rank"; "paper formula"; "sampler CCDF" ] ~rows

let print_fig10 scale = render_fig10 (fig10_ccdf scale)

let render_storage (data : storage_row list) =
  heading "Section V-B — Index storage per scheme";
  let rows =
    List.map
      (fun (r : storage_row) ->
        [
          r.scheme;
          Tabular.fmt_bytes (float_of_int r.index_bytes);
          Tabular.fmt_pct r.overhead_vs_simple;
          Tabular.fmt_bytes r.dblp_scaled_bytes;
          Tabular.fmt_pct r.index_to_data_ratio;
        ])
      data
  in
  Tabular.print_table
    ~headers:
      [ "scheme"; "index bytes"; "vs simple"; "scaled to DBLP"; "index/data ratio" ]
    ~rows;
  print_string
    "paper: simple 152 MB for full DBLP; complex +25%; flat +37%; overhead <= 0.5% of 29.1 GB\n"

let print_storage grid = render_storage (storage_overhead grid)

let render_keys (data : keys_row list) =
  heading "Section V-f — Regular keys per node";
  let rows =
    List.map
      (fun (r : keys_row) ->
        [ r.scheme; Printf.sprintf "%.0f" r.keys_per_node_mean; Printf.sprintf "%.0f" r.paper_value ])
      data
  in
  Tabular.print_table ~headers:[ "scheme"; "measured"; "paper" ] ~rows

let print_keys grid = render_keys (keys_per_node grid)

let print_cells title unit rows =
  heading title;
  let headers = [ "scheme"; "policy"; unit; "" ] in
  let max_value = List.fold_left (fun acc (c : cell) -> Float.max acc c.value) 0.0 rows in
  let table_rows =
    List.map
      (fun (c : cell) ->
        [
          c.scheme;
          c.policy;
          Printf.sprintf "%.3f" c.value;
          Tabular.bar ~width:30 ~max_value c.value;
        ])
      rows
  in
  Tabular.print_table ~headers ~rows:table_rows

let render_fig11 (data : cell list) =
  print_cells "Fig. 11 — Average interactions per query" "interactions" data;
  print_string "paper: flat lowest (~2.3), simple ~3.3, complex ~3.5; caching reduces all\n"

let print_fig11 grid = render_fig11 (fig11_interactions grid)

let render_fig12 (data : traffic_cell list) =
  heading "Fig. 12 — Average traffic (bytes) per query";
  let rows =
    List.map
      (fun (c : traffic_cell) ->
        [
          c.scheme;
          c.policy;
          Printf.sprintf "%.0f" c.normal_bytes;
          Printf.sprintf "%.0f" c.cache_bytes;
          Printf.sprintf "%.0f" (c.normal_bytes +. c.cache_bytes);
        ])
      data
  in
  Tabular.print_table
    ~headers:[ "scheme"; "policy"; "normal B/query"; "cache B/query"; "total" ]
    ~rows;
  print_string "paper: flat ~2x the others (no indirection); caches save bandwidth\n"

let print_fig12 grid = render_fig12 (fig12_traffic grid)

let render_fig13 ~(hits : cell list) ~(shares : cell list) =
  print_cells "Fig. 13 — Cache efficiency: distributed hit ratio" "hit ratio" hits;
  List.iter
    (fun (c : cell) ->
      Printf.printf "multi-cache hits at first node (%s): %s (paper: simple 86%%, flat 99.9%%, complex 84%%)\n"
        c.scheme (Tabular.fmt_pct c.value))
    shares

let print_fig13 grid =
  render_fig13 ~hits:(fig13_hit_ratio grid) ~shares:(fig13_first_node_share grid)

let render_fig14 ~(storage : cell list) ~(extremes : cache_extremes list) =
  print_cells "Fig. 14 — Average cached keys per node" "cached keys" storage;
  heading "Fig. 14 (cont.) — cache extremes";
  let rows =
    List.map
      (fun (e : cache_extremes) ->
        [
          e.scheme;
          e.policy;
          string_of_int e.max_cached;
          Tabular.fmt_pct e.full_share;
          Tabular.fmt_pct e.empty_share;
        ])
      extremes
  in
  Tabular.print_table ~headers:[ "scheme"; "policy"; "max"; "full"; "empty" ] ~rows;
  print_string
    "paper: single ~2x more space-efficient than multi; maxima 253-413; LRU10 72% full, 4.4% empty overall\n"

let print_fig14 grid =
  render_fig14 ~storage:(fig14_cache_storage grid) ~extremes:(fig14_extremes grid)

let render_fig15 (series : hotspot_series list) =
  heading "Fig. 15 — Hot-spots: % of queries processed, by node rank (simple scheme)";
  List.iter
    (fun s ->
      Printf.printf "%-12s" s.policy;
      List.iter
        (fun (rank, share) -> Printf.printf "  #%d:%s" rank (Tabular.fmt_pct share))
        s.share_by_rank;
      Printf.printf "  (gini %.2f)" s.gini;
      print_newline ())
    series;
  print_string "paper: busiest node sees almost 1 in 10 queries; caching slightly relieves it\n"

let print_fig15 grid = render_fig15 (fig15_hotspots grid)

let render_table1 (data : cell list) =
  heading "Table I — Queries to non-indexed data";
  let by_policy p = List.filter (fun (c : cell) -> String.equal c.policy p) data in
  let table_rows =
    List.map
      (fun policy ->
        let label = Policy.label policy in
        label
        :: List.map (fun (c : cell) -> Printf.sprintf "%.0f" c.value) (by_policy label))
      table1_policies
  in
  Tabular.print_table ~headers:[ "policy"; "Simple"; "Flat"; "Complex" ] ~rows:table_rows;
  print_string
    "paper (50k queries): no cache ~2,502-2,507; LRU30 810-874; single-cache 563-600\n"

let print_table1 grid = render_table1 (table1_errors grid)

let render_ablation_substrate (data : substrate_row list) =
  heading "Ablation — substrate independence (simple scheme, single-cache)";
  let rows =
    List.map
      (fun (r : substrate_row) ->
        [
          r.substrate;
          Printf.sprintf "%.3f" r.interactions;
          Printf.sprintf "%.0f" r.normal_bytes;
          Printf.sprintf "%.0f" r.substrate_overhead_bytes;
        ])
      data
  in
  Tabular.print_table
    ~headers:[ "substrate"; "interactions"; "normal B/query"; "routing B/query" ]
    ~rows;
  print_string
    "index-layer metrics are substrate-independent; Chord pays only routing-hop overhead\n"

let print_ablation_substrate scale = render_ablation_substrate (ablation_substrate scale)

let render_ablation_skew (data : skew_row list) =
  heading "Ablation — popularity skew vs cache efficiency (simple, LRU30)";
  let rows =
    List.map
      (fun (r : skew_row) ->
        [
          Printf.sprintf "%.1f" r.alpha;
          Tabular.fmt_pct r.hit_ratio;
          Printf.sprintf "%.3f" r.interactions;
        ])
      data
  in
  Tabular.print_table ~headers:[ "Zipf exponent"; "hit ratio"; "interactions" ] ~rows;
  print_string
    "uniform popularity (s = 0) defeats the cache; the heavier the skew, the\n\
     bigger the caching payoff — the mechanism behind Figs. 11-13\n"

let print_ablation_skew scale = render_ablation_skew (ablation_skew scale)

let render_ablation_replication (data : replication_row list) =
  heading "Ablation — index availability under node failures (simple scheme)";
  let rows =
    List.map
      (fun (r : replication_row) ->
        [
          string_of_int r.replication;
          Tabular.fmt_pct r.failed_fraction;
          Tabular.fmt_pct r.available_keys;
          string_of_int r.storage_cost;
        ])
      data
  in
  Tabular.print_table
    ~headers:[ "replication"; "nodes failed"; "index keys available"; "replica entries" ]
    ~rows;
  print_string
    "replication (Section IV-D) trades storage for availability: with r replicas,\n\
     a key is lost only when all r consecutive holders fail\n"

let print_ablation_replication scale =
  render_ablation_replication (ablation_replication scale)

let render_ablation_deletion (data : deletion_row list) =
  heading "Ablation — read/write semantics: deletion cleans the indexes";
  let rows =
    List.map
      (fun (r : deletion_row) ->
        [
          Tabular.fmt_pct r.deleted_fraction;
          string_of_int r.mappings_before;
          string_of_int r.mappings_after;
          string_of_int r.dangling_lookups;
          string_of_int r.survivors_lost;
        ])
      data
  in
  Tabular.print_table
    ~headers:
      [ "articles deleted"; "mappings before"; "after"; "dangling paths"; "survivors lost" ]
    ~rows;
  print_string
    "deleting a file removes its mappings recursively (dangling must be 0) while\n\
     shared coarse entries keep serving the surviving files (lost must be 0)\n"

let print_ablation_deletion scale = render_ablation_deletion (ablation_deletion scale)

let render_ablation_churn (data : churn_row list) =
  heading "Ablation — availability under churn (simple scheme, no cache)";
  let rows =
    List.map
      (fun (r : churn_row) ->
        [
          Printf.sprintf "%g" r.churn_rate;
          string_of_int r.churn_replication;
          Tabular.fmt_pct r.availability;
          Printf.sprintf "%.3f" r.churn_interactions;
          Printf.sprintf "%.0f" r.maintenance_per_query;
          Printf.sprintf "%.0f" r.live_nodes_end;
        ])
      data
  in
  Tabular.print_table
    ~headers:
      [
        "churn rate (1/s)";
        "replication";
        "availability";
        "interactions";
        "maint B/query";
        "live nodes at end";
      ]
    ~rows;
  print_string
    "crash-stop failures lose index shards and caches; TTLs, republication and\n\
     repair restore them.  Availability falls as churn rises and climbs back\n\
     with replication — the soft-state index survives a moving population\n"

let print_ablation_churn scale = render_ablation_churn (ablation_churn scale)

let render_fault_sweep (data : fault_sweep_row list) =
  heading "Fault sweep — lookup success vs message loss x retry budget (replication 3)";
  let rows =
    List.map
      (fun (r : fault_sweep_row) ->
        [
          Printf.sprintf "%g" r.sweep_loss_rate;
          string_of_int r.sweep_retries;
          (if r.sweep_hedged then "yes" else "no");
          Tabular.fmt_pct r.lookup_success;
          Tabular.fmt_pct r.fault_availability;
          Printf.sprintf "%.3f" r.fault_interactions;
          string_of_int r.sweep_timeouts;
          string_of_int r.sweep_retries_used;
          string_of_int r.sweep_hedges_won;
        ])
      data
  in
  Tabular.print_table
    ~headers:
      [
        "loss rate";
        "retries";
        "hedged";
        "rpc success";
        "availability";
        "interactions";
        "timeouts";
        "retries used";
        "hedges won";
      ]
    ~rows;
  print_string
    "with no retry budget, per-exchange success collapses to (1-loss)^2; bounded\n\
     backoff retries plus a hedged second request to the next replica recover\n\
     it, and replica failover keeps session availability near 100%\n"

let print_fault_sweep scale = render_fault_sweep (fault_sweep scale)

let render_concurrency_sweep (data : concurrency_row list) =
  heading "Concurrency sweep — singleflight coalescing under overlapping sessions";
  let rows =
    List.map
      (fun (r : concurrency_row) ->
        [
          string_of_int r.row_concurrency;
          (if r.row_coalesce then "yes" else "no");
          string_of_int r.row_coalesced;
          Printf.sprintf "%.1f" r.row_normal_per_query;
          Printf.sprintf "%.1f" r.row_cache_per_query;
          Printf.sprintf "%.3f s" r.row_session_latency;
          string_of_int r.row_peak_in_flight;
        ])
      data
  in
  Tabular.print_table
    ~headers:
      [
        "concurrency";
        "coalesce";
        "coalesced";
        "normal B/query";
        "cache B/query";
        "session latency";
        "peak in flight";
      ]
    ~rows;
  print_string
    "overlapping sessions aim identical probes at the hot keys; with coalescing a\n\
     follower rides the in-flight response for a small consultation ticket, so\n\
     normal traffic per query drops as concurrency grows\n"

let print_concurrency_sweep scale = render_concurrency_sweep (concurrency_sweep scale)

let render_ablation_scheme (data : scheme_variant_row list) =
  heading "Ablation — the author+conference entry point (25% author+conf queries)";
  let rows =
    List.map
      (fun (r : scheme_variant_row) ->
        [
          r.scheme_label;
          Printf.sprintf "%.3f" r.interactions;
          string_of_int r.non_indexed_errors;
          Printf.sprintf "%.1f MB" r.index_megabytes;
        ])
      data
  in
  Tabular.print_table
    ~headers:[ "scheme"; "interactions"; "non-indexed errors"; "index storage" ]
    ~rows;
  print_string
    "the extra index turns author+conference queries from recoverable errors into\n\
     direct chains, at the price of more index storage (Section IV-C's trade-off)\n"

let print_ablation_scheme scale = render_ablation_scheme (ablation_scheme_variants scale)

let render_ablation_hotspot (data : hotspot_replication_row list) =
  heading "Ablation — hot-spot relief through key replication (simple, no cache)";
  let rows =
    List.map
      (fun (r : hotspot_replication_row) ->
        [
          string_of_int r.key_replicas;
          Tabular.fmt_pct r.busiest_share;
          Printf.sprintf "%.3f" r.load_gini;
        ])
      data
  in
  Tabular.print_table ~headers:[ "replicas/key"; "busiest node"; "load gini" ] ~rows;
  print_string
    "spreading reads over r replicas divides the hottest key's load by r — the\n\
     substrate-level hot-spot avoidance the paper defers to (Section V-g)\n"

let print_ablation_hotspot scale =
  render_ablation_hotspot (ablation_hotspot_replication scale)

let render_prefix_sweep (data : prefix_sweep_row list) =
  heading "Prefix sweep — routed range search vs broadcast-and-filter";
  let rows =
    List.map
      (fun (r : prefix_sweep_row) ->
        [
          string_of_int r.sweep_prefix_len;
          Printf.sprintf "%.2f" r.routed_nodes_mean;
          string_of_int r.sweep_broadcast_nodes;
          Printf.sprintf "%.0f" r.direct_bytes_per_query;
          Printf.sprintf "%.0f" r.multicast_bytes_per_query;
          Printf.sprintf "%.0f" r.broadcast_bytes_per_query;
          string_of_int r.install_messages;
          string_of_int r.install_depth;
          Printf.sprintf "%.3f" r.sweep_interactions;
        ])
      data
  in
  Tabular.print_table
    ~headers:
      [
        "prefix len";
        "routed nodes";
        "bcast nodes";
        "direct B/q";
        "mcast B/q";
        "bcast B/q";
        "install msgs";
        "tree depth";
        "interactions";
      ]
    ~rows;
  print_string
    "a prefix query routes to the few nodes covering its key arc instead of\n\
     flooding all of them; multicast trades initiator exchanges for relay\n\
     bytes, and index installs ride a spanning tree whose message count\n\
     stays within covering members + tree edges\n"

let print_prefix_sweep scale = render_prefix_sweep (prefix_sweep scale)

let render_quorum_sweep (data : quorum_sweep_row list) =
  heading
    "Quorum sweep — stale reads vs read quorum under churn (replication 3, W=3, \
     anti-entropy on)";
  let rows =
    List.map
      (fun (r : quorum_sweep_row) ->
        [
          Printf.sprintf "%g" r.sweep_churn_rate;
          string_of_int r.sweep_read_quorum;
          Tabular.fmt_pct r.quorum_stale_rate;
          Tabular.fmt_pct r.quorum_availability;
          string_of_int r.quorum_sweep_reads;
          string_of_int r.quorum_sweep_read_repairs;
          string_of_int r.quorum_sweep_under_acked;
          Printf.sprintf "%.0f" r.quorum_maint_per_query;
          string_of_int r.quorum_digest_bytes;
          string_of_int r.quorum_shipped_bytes;
          string_of_int r.quorum_full_state_bytes;
        ])
      data
  in
  Tabular.print_table
    ~headers:
      [
        "churn rate";
        "R";
        "stale reads";
        "availability";
        "quorum reads";
        "read repairs";
        "under-acked";
        "maint B/query";
        "digest B";
        "shipped B";
        "full-state B";
      ]
    ~rows;
  print_string
    "consulting more replicas per lookup lowers the stale-read rate at fixed\n\
     churn; anti-entropy ships only the diverged keys, so digest + shipped\n\
     bytes stay below what full-state exchanges would have moved\n"

let print_quorum_sweep scale = render_quorum_sweep (quorum_sweep scale)

let render_scale_sweep (data : scale_sweep_row list) =
  heading
    (Printf.sprintf
       "Scale sweep — population growth under the sharded engine (%d shards, \
        deterministic merge)"
       scale_sweep_shards);
  let phase_minor (r : scale_sweep_row) name =
    match
      List.find_opt (fun (e : Obs.Phase.entry) -> e.Obs.Phase.phase = name) r.scale_phases
    with
    | Some e -> e.Obs.Phase.minor_words
    | None -> 0.0
  in
  let rows =
    List.map
      (fun (r : scale_sweep_row) ->
        [
          string_of_int r.scale_nodes;
          string_of_int r.scale_articles;
          string_of_int r.scale_queries;
          Printf.sprintf "%.3f" r.scale_interactions;
          Printf.sprintf "%.0f" r.scale_normal_bytes;
          string_of_int r.scale_errors;
          Printf.sprintf "%.0f" r.scale_minor_words_per_query;
          Printf.sprintf "%.1f %%"
            (100.0 *. phase_minor r "walk"
            /. Float.max 1.0
                 (List.fold_left
                    (fun acc (e : Obs.Phase.entry) -> acc +. e.Obs.Phase.minor_words)
                    0.0 r.scale_phases));
        ])
      data
  in
  Tabular.print_table
    ~headers:
      [
        "nodes";
        "articles";
        "queries";
        "interactions";
        "normal B/query";
        "errors";
        "minor w/query";
        "walk alloc share";
      ]
    ~rows;
  print_string
    "interactions per query are scale-free (the paper's point: the index, not\n\
     the population, prices a query); allocation per query stays flat, so the\n\
     arena-backed hot state holds at a million nodes\n"

let print_scale_sweep scale = render_scale_sweep (scale_sweep scale)

let all_experiment_ids =
  [
    "fig7"; "fig9"; "fig10"; "storage"; "keys"; "fig11"; "fig12"; "fig13"; "fig14";
    "fig15"; "table1"; "ablation-substrate"; "ablation-skew"; "ablation-replication";
    "ablation-deletion"; "ablation-hotspot"; "ablation-scheme"; "ablation-churn";
    "fault-sweep"; "concurrency-sweep"; "prefix-sweep"; "quorum-sweep";
    "scale-sweep";
  ]

(* ------------------------------------------------------------------ *)
(* Bench-report metrics.  Flattened under "exp/<id>/" by
   {!Obs.Bench_report.flatten}; names are slugs so the diff tool's paths
   stay shell-friendly.  Direction conventions: costs (interactions,
   bytes, errors) are lower-better, success ratios (hit ratio,
   availability, RPC success) higher-better, distribution shapes
   (slopes, gini, cache occupancy) informational. *)

let slug s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9') as c -> Buffer.add_char buf c
      | _ ->
          if
            Buffer.length buf > 0
            && Buffer.nth buf (Buffer.length buf - 1) <> '_'
          then Buffer.add_char buf '_')
    s;
  let s = Buffer.contents buf in
  if String.length s > 0 && s.[String.length s - 1] = '_' then
    String.sub s 0 (String.length s - 1)
  else s

let lower = Obs.Bench_report.Lower_better
let higher = Obs.Bench_report.Higher_better
let info = Obs.Bench_report.Informational
let m name better value = Obs.Bench_report.metric name better value
let fnum f = slug (Printf.sprintf "%g" f)

let cell_metrics prefix better (data : cell list) =
  List.map
    (fun (c : cell) ->
      m (prefix ^ "/" ^ slug c.scheme ^ "/" ^ slug c.policy) better c.value)
    data

let metrics_fig7 (data : mix_row list) =
  let worst =
    List.fold_left
      (fun acc (r : mix_row) -> Float.max acc (Float.abs (r.model -. r.observed)))
      0.0 data
  in
  m "mix_abs_error_max" lower worst
  :: List.map
       (fun (r : mix_row) -> m ("mix_observed/" ^ slug r.structure) info r.observed)
       data

let metrics_fig9 (s : popularity_series) =
  [
    m "article_slope" info s.fitted_slope;
    m "author_slope" info s.author_slope;
    m "top_rank_freq" info
      (match s.observed_frequency with (_, f) :: _ -> f | [] -> 0.0);
  ]

let metrics_fig10 (data : ccdf_row list) =
  let worst =
    List.fold_left
      (fun acc (r : ccdf_row) -> Float.max acc (Float.abs (r.formula -. r.model)))
      0.0 data
  in
  [ m "ccdf_abs_error_max" lower worst ]

let metrics_storage (data : storage_row list) =
  List.concat_map
    (fun (r : storage_row) ->
      [
        m ("index_bytes/" ^ slug r.scheme) lower (float_of_int r.index_bytes);
        m ("overhead_vs_simple/" ^ slug r.scheme) info r.overhead_vs_simple;
      ])
    data

let metrics_keys (data : keys_row list) =
  List.map
    (fun (r : keys_row) ->
      m ("keys_per_node/" ^ slug r.scheme) info r.keys_per_node_mean)
    data

let metrics_fig12 (data : traffic_cell list) =
  List.concat_map
    (fun (c : traffic_cell) ->
      let base = slug c.scheme ^ "/" ^ slug c.policy in
      [
        m ("normal_bytes/" ^ base) lower c.normal_bytes;
        m ("cache_bytes/" ^ base) lower c.cache_bytes;
      ])
    data

let metrics_fig14 ~(storage : cell list) ~(extremes : cache_extremes list) =
  cell_metrics "cached_keys" info storage
  @ List.map
      (fun (e : cache_extremes) ->
        m
          ("max_cached/" ^ slug e.scheme ^ "/" ^ slug e.policy)
          info
          (float_of_int e.max_cached))
      extremes

let metrics_fig15 (series : hotspot_series list) =
  List.concat_map
    (fun (s : hotspot_series) ->
      let busiest = match s.share_by_rank with (_, v) :: _ -> v | [] -> 0.0 in
      [
        m ("gini/" ^ slug s.policy) info s.gini;
        m ("busiest_share/" ^ slug s.policy) info busiest;
      ])
    series

let metrics_substrate (data : substrate_row list) =
  List.concat_map
    (fun (r : substrate_row) ->
      let key = slug r.substrate in
      [
        m ("interactions/" ^ key) lower r.interactions;
        m ("normal_bytes/" ^ key) lower r.normal_bytes;
        m ("routing_bytes/" ^ key) lower r.substrate_overhead_bytes;
      ])
    data

let metrics_skew (data : skew_row list) =
  List.concat_map
    (fun (r : skew_row) ->
      let key = "a" ^ fnum r.alpha in
      [
        m ("hit_ratio/" ^ key) higher r.hit_ratio;
        m ("interactions/" ^ key) lower r.interactions;
      ])
    data

let metrics_replication (data : replication_row list) =
  List.concat_map
    (fun (r : replication_row) ->
      let key =
        "r" ^ string_of_int r.replication ^ "/f" ^ fnum r.failed_fraction
      in
      [
        m ("available_keys/" ^ key) higher r.available_keys;
        m ("replica_entries/" ^ key) info (float_of_int r.storage_cost);
      ])
    data

let metrics_deletion (data : deletion_row list) =
  List.concat_map
    (fun (r : deletion_row) ->
      let key = "f" ^ fnum r.deleted_fraction in
      [
        m ("dangling/" ^ key) lower (float_of_int r.dangling_lookups);
        m ("survivors_lost/" ^ key) lower (float_of_int r.survivors_lost);
        m ("mappings_after/" ^ key) info (float_of_int r.mappings_after);
      ])
    data

let metrics_hotspot (data : hotspot_replication_row list) =
  List.concat_map
    (fun (r : hotspot_replication_row) ->
      let key = "r" ^ string_of_int r.key_replicas in
      [
        m ("busiest_share/" ^ key) lower r.busiest_share;
        m ("gini/" ^ key) lower r.load_gini;
      ])
    data

let metrics_scheme (data : scheme_variant_row list) =
  List.concat_map
    (fun (r : scheme_variant_row) ->
      let key = slug r.scheme_label in
      [
        m ("interactions/" ^ key) lower r.interactions;
        m ("errors/" ^ key) lower (float_of_int r.non_indexed_errors);
        m ("index_mb/" ^ key) lower r.index_megabytes;
      ])
    data

let metrics_churn (data : churn_row list) =
  List.concat_map
    (fun (r : churn_row) ->
      let key = "c" ^ fnum r.churn_rate ^ "/r" ^ string_of_int r.churn_replication in
      [
        m ("availability/" ^ key) higher r.availability;
        m ("interactions/" ^ key) lower r.churn_interactions;
        m ("maint_bytes/" ^ key) lower r.maintenance_per_query;
      ])
    data

let metrics_fault_sweep (data : fault_sweep_row list) =
  List.concat_map
    (fun (r : fault_sweep_row) ->
      let key = "l" ^ fnum r.sweep_loss_rate ^ "/r" ^ string_of_int r.sweep_retries in
      [
        m ("rpc_success/" ^ key) higher r.lookup_success;
        m ("availability/" ^ key) higher r.fault_availability;
        m ("interactions/" ^ key) lower r.fault_interactions;
        m ("timeouts/" ^ key) info (float_of_int r.sweep_timeouts);
      ])
    data

let metrics_concurrency (data : concurrency_row list) =
  List.concat_map
    (fun (r : concurrency_row) ->
      let key =
        "c" ^ string_of_int r.row_concurrency
        ^ if r.row_coalesce then "/coalesce" else "/plain"
      in
      [
        m ("normal_bytes/" ^ key) lower r.row_normal_per_query;
        m ("cache_bytes/" ^ key) info r.row_cache_per_query;
        m ("coalesced/" ^ key) info (float_of_int r.row_coalesced);
        m ("session_latency/" ^ key) lower r.row_session_latency;
        m ("peak_in_flight/" ^ key) info (float_of_int r.row_peak_in_flight);
      ])
    data

let metrics_prefix_sweep (data : prefix_sweep_row list) =
  List.concat_map
    (fun (r : prefix_sweep_row) ->
      let key = "l" ^ string_of_int r.sweep_prefix_len in
      [
        m ("routed_nodes/" ^ key) lower r.routed_nodes_mean;
        m ("node_savings/" ^ key) higher
          (float_of_int r.sweep_broadcast_nodes -. r.routed_nodes_mean);
        m ("broadcast_nodes/" ^ key) info
          (float_of_int r.sweep_broadcast_nodes);
        m ("routed_bytes_direct/" ^ key) lower r.direct_bytes_per_query;
        m ("routed_bytes_multicast/" ^ key) lower r.multicast_bytes_per_query;
        m ("broadcast_bytes/" ^ key) info r.broadcast_bytes_per_query;
        m ("multicast_messages/" ^ key) lower
          (float_of_int r.install_messages);
        m ("multicast_bound_slack/" ^ key) higher
          (float_of_int r.install_bound_slack);
        m ("tree_depth/" ^ key) info (float_of_int r.install_depth);
        m ("interactions/" ^ key) lower r.sweep_interactions;
        m ("normal_bytes/" ^ key) lower r.sweep_normal_bytes;
      ])
    data

let metrics_quorum_sweep (data : quorum_sweep_row list) =
  List.concat_map
    (fun (r : quorum_sweep_row) ->
      let key =
        "c" ^ fnum r.sweep_churn_rate ^ "/q" ^ string_of_int r.sweep_read_quorum
      in
      [
        m ("stale_rate/" ^ key) lower r.quorum_stale_rate;
        m ("availability/" ^ key) higher r.quorum_availability;
        m ("read_repairs/" ^ key) info (float_of_int r.quorum_sweep_read_repairs);
        m ("under_acked/" ^ key) info (float_of_int r.quorum_sweep_under_acked);
        m ("maint_bytes/" ^ key) lower r.quorum_maint_per_query;
        m ("ae_digest_bytes/" ^ key) lower (float_of_int r.quorum_digest_bytes);
        m ("ae_shipped_bytes/" ^ key) lower (float_of_int r.quorum_shipped_bytes);
        m ("ae_savings/" ^ key) higher
          (float_of_int
             (r.quorum_full_state_bytes - r.quorum_digest_bytes
            - r.quorum_shipped_bytes));
      ])
    data

let metrics_scale_sweep (data : scale_sweep_row list) =
  List.concat_map
    (fun (r : scale_sweep_row) ->
      let key = "n" ^ string_of_int r.scale_nodes in
      [
        m ("interactions/" ^ key) lower r.scale_interactions;
        m ("normal_bytes/" ^ key) lower r.scale_normal_bytes;
        m ("errors/" ^ key) lower (float_of_int r.scale_errors);
        m ("minor_words_per_query/" ^ key) lower r.scale_minor_words_per_query;
      ]
      @ List.map
          (fun (e : Obs.Phase.entry) ->
            m
              ("phase_minor_words/" ^ key ^ "/" ^ slug e.Obs.Phase.phase)
              info e.Obs.Phase.minor_words)
          r.scale_phases)
    data

let run_experiment grid ~print id =
  let scale = Grid.scale grid in
  match id with
  | "fig7" ->
      let data = fig7_query_mix scale in
      if print then render_fig7 data;
      Some (metrics_fig7 data)
  | "fig9" ->
      let data = fig9_popularity scale in
      if print then render_fig9 data;
      Some (metrics_fig9 data)
  | "fig10" ->
      let data = fig10_ccdf scale in
      if print then render_fig10 data;
      Some (metrics_fig10 data)
  | "storage" ->
      let data = storage_overhead grid in
      if print then render_storage data;
      Some (metrics_storage data)
  | "keys" ->
      let data = keys_per_node grid in
      if print then render_keys data;
      Some (metrics_keys data)
  | "fig11" ->
      let data = fig11_interactions grid in
      if print then render_fig11 data;
      Some (cell_metrics "interactions" lower data)
  | "fig12" ->
      let data = fig12_traffic grid in
      if print then render_fig12 data;
      Some (metrics_fig12 data)
  | "fig13" ->
      let hits = fig13_hit_ratio grid in
      let shares = fig13_first_node_share grid in
      if print then render_fig13 ~hits ~shares;
      Some
        (cell_metrics "hit_ratio" higher hits
        @ List.map
            (fun (c : cell) ->
              m ("first_node_share/" ^ slug c.scheme) higher c.value)
            shares)
  | "fig14" ->
      let storage = fig14_cache_storage grid in
      let extremes = fig14_extremes grid in
      if print then render_fig14 ~storage ~extremes;
      Some (metrics_fig14 ~storage ~extremes)
  | "fig15" ->
      let data = fig15_hotspots grid in
      if print then render_fig15 data;
      Some (metrics_fig15 data)
  | "table1" ->
      let data = table1_errors grid in
      if print then render_table1 data;
      Some (cell_metrics "errors" lower data)
  | "ablation-substrate" ->
      let data = ablation_substrate scale in
      if print then render_ablation_substrate data;
      Some (metrics_substrate data)
  | "ablation-skew" ->
      let data = ablation_skew scale in
      if print then render_ablation_skew data;
      Some (metrics_skew data)
  | "ablation-replication" ->
      let data = ablation_replication scale in
      if print then render_ablation_replication data;
      Some (metrics_replication data)
  | "ablation-deletion" ->
      let data = ablation_deletion scale in
      if print then render_ablation_deletion data;
      Some (metrics_deletion data)
  | "ablation-hotspot" ->
      let data = ablation_hotspot_replication scale in
      if print then render_ablation_hotspot data;
      Some (metrics_hotspot data)
  | "ablation-scheme" ->
      let data = ablation_scheme_variants scale in
      if print then render_ablation_scheme data;
      Some (metrics_scheme data)
  | "ablation-churn" ->
      let data = ablation_churn scale in
      if print then render_ablation_churn data;
      Some (metrics_churn data)
  | "fault-sweep" ->
      let data = fault_sweep scale in
      if print then render_fault_sweep data;
      Some (metrics_fault_sweep data)
  | "concurrency-sweep" ->
      let data = concurrency_sweep scale in
      if print then render_concurrency_sweep data;
      Some (metrics_concurrency data)
  | "prefix-sweep" ->
      let data = prefix_sweep scale in
      if print then render_prefix_sweep data;
      Some (metrics_prefix_sweep data)
  | "quorum-sweep" ->
      let data = quorum_sweep scale in
      if print then render_quorum_sweep data;
      Some (metrics_quorum_sweep data)
  | "scale-sweep" ->
      let data = scale_sweep scale in
      if print then render_scale_sweep data;
      Some (metrics_scale_sweep data)
  | _ -> None

let print_experiment grid id = Option.is_some (run_experiment grid ~print:true id)

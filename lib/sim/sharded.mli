(** Domain-sharded simulation: the node population partitioned into
    isolated shards, run in parallel on OCaml 5 domains, with an ordered
    deterministic merge — the scale-out mode that makes million-node
    populations tractable on one machine.

    A sharded run decomposes the configured population into [shards]
    {e logical} partitions: shard [s] simulates its own slice of the
    nodes, articles and queries (block partition, sizes differing by at
    most one) with its own decorrelated PRNG stream (Weyl seed mixing;
    shard 0 keeps the caller's seed).  Shards share nothing — each is a
    complete {!Engine} run with its own substrate, index, caches, arenas
    and metrics registry — which is exactly what makes the parallelism
    deterministic.

    [domains] is the {e worker} axis: how many OCaml domains execute the
    shards (clamped to the shard count).  Because shards are isolated and
    the merge folds their results in shard order 0, 1, ..., S-1, the
    worker count can never influence a byte of the output:

    {ul
    {- [~domains:n] produces byte-identical reports for every [n] — the
       assignment of shards to workers is pure scheduling;}
    {- [~shards:1] degenerates byte-for-byte to {!Engine.run} (and so,
       at [concurrency = 1], to {!Runner.run}): the single shard is the
       whole population under the original seed.}}

    Merge semantics: counts and byte totals add; interaction/latency
    summaries merge as streams; per-node arrays concatenate in shard
    order (shard [s]'s nodes occupy one dense block of the merged id
    space); metrics registries merge via {!Obs.Metrics.merge_snapshots}.

    What sharding changes: shards cannot share cache entries, replicas
    or query traffic, so a sharded report is the sum of [S] smaller
    networks, not a bit-for-bit replay of the unsharded one — the same
    modelling trade every spatially-decomposed simulation makes.  Scale
    results across shard counts are compared at {e fixed} [shards]. *)

type report = {
  engine : Engine.report;
      (** The merged network-wide report ({!Engine.report.base} carries
          the merged {!Runner.report}).  With one shard, exactly the
          wrapped {!Engine.run} result. *)
  shard_count : int;
  domain_count : int;  (** Workers actually used: [min domains shards]. *)
  per_shard : Engine.report array;  (** One report per shard, in shard order. *)
}

val run :
  ?shards:int ->
  ?domains:int ->
  ?phases:Obs.Phase.t ->
  ?concurrency:int ->
  ?coalesce:bool ->
  Runner.config ->
  report
(** [run config] with the defaults ([shards = 1], [domains = 1]) is
    {!Engine.run}, wrapped.  [concurrency] and [coalesce] apply within
    every shard, as in {!Engine.run}.  [phases] profiles the run
    (per-stage allocation accounting, summed over shards); it requires a
    single worker domain because GC counters are per-domain in OCaml 5.
    @raise Invalid_argument when [shards < 1] or [domains < 1]; when any
    shard would be empty ([shards] exceeds the node, article or query
    count); when the smallest shard cannot hold the effective replication
    factor; when [phases] is combined with more than one worker; or on a
    bad config (as {!Runner.run}). *)

module Q = Bib.Bib_query
module Index = Bib.Bib_index
module Summary = Stdx.Stats.Summary

type report = {
  base : Runner.report;
  concurrency : int;
  coalesce : bool;
  coalesced : int;
  session_latency : Summary.t;
  peak_in_flight : int;
}

type session = { arrived : float; mutable walk : Walk.state }

type ev = Arrival of int | Resume of session

(* A probe whose response is still travelling: any identical probe that
   starts before [completes_at] can ride it. *)
type probe_entry = { answer : Index.step; completes_at : float }

let run ?events ?metrics ?tracer ?phases ?(concurrency = 1) ?(coalesce = false)
    cfg =
  if concurrency < 1 then invalid_arg "Engine.run: concurrency must be >= 1";
  if coalesce && concurrency = 1 then
    invalid_arg "Engine.run: coalescing needs concurrency > 1";
  if concurrency = 1 then
    (* Degeneration: at concurrency 1 the sequential runner IS the engine
       — the identical code path, so the report and metrics snapshot are
       byte-for-byte those of {!Runner.run}, and no engine metric
       families are registered (the churn-0 / zero-plan pattern). *)
    let base = Runner.run ?events ?metrics ?tracer ?phases cfg in
    {
      base;
      concurrency = 1;
      coalesce = false;
      coalesced = 0;
      session_latency = Summary.create ();
      peak_in_flight = 1;
    }
  else begin
    let env =
      Obs.Phase.span_opt phases "setup" (fun () ->
          Runner.Internal.setup ?events ?metrics ?tracer ?phases cfg)
    in
    let cfg = Runner.Internal.config env in
    let registry = Runner.Internal.registry env in
    let rpc = Runner.Internal.rpc env in
    let index = Runner.Internal.index env in
    let clock_ref = Runner.Internal.clock_ref env in
    let ctx = Runner.Internal.walk_ctx env in
    let tracer = Runner.Internal.tracer env in
    (* Arrivals are paced exactly as the sequential runner paces churned
       runs: session i at [i / query_rate].  Static configs take the
       churned default so offered load is still well-defined. *)
    let query_rate =
      match cfg.Runner.churn with
      | Some c -> c.Runner.query_rate
      | None -> Runner.default_churn.Runner.query_rate
    in
    let coalesced_total =
      Obs.Metrics.counter registry
        ~help:"Lookup probes that rode an identical in-flight probe's response"
        "p2pindex_engine_coalesced_total"
    in
    let in_flight_gauge =
      Obs.Metrics.gauge registry ~help:"Sessions currently in flight"
        "p2pindex_engine_in_flight"
    in
    let waiting_gauge =
      Obs.Metrics.gauge registry
        ~help:"Arrived sessions waiting for a concurrency slot"
        "p2pindex_engine_wait_queue"
    in
    let tally = Runner.Internal.tally_create () in
    let session_latency = Summary.create () in
    let queue : ev Churn.Event_queue.t =
      Churn.Event_queue.create ~dummy:(Arrival 0) ()
    in
    let waitq : session Queue.t = Queue.create () in
    let in_flight = ref 0 in
    let peak = ref 0 in
    let coalesced = ref 0 in
    let inflight_probes : (string, probe_entry) Hashtbl.t = Hashtbl.create 256 in
    (* Singleflight: identical probes to the same responsible node (the
       node is a function of the query string) are deduplicated while one
       is in flight.  The follower pays only a consultation ticket —
       billed as cache traffic, so normal traffic strictly drops — and
       resumes when the leader's response lands.  It skips the index
       layer entirely, so it records no lookup-step metrics or spans of
       its own.  Expired entries are dropped lazily by the window check
       and overwritten in place. *)
    let[@hot] lookup =
      if not coalesce then Index.lookup_step_rendered index
      else fun ~rendered:qs q ->
        match Hashtbl.find_opt inflight_probes qs with
        | Some e when e.completes_at > !clock_ref ->
            incr coalesced;
            Obs.Metrics.Counter.incr coalesced_total;
            Dht.Rpc.send_oneway rpc
              ~dst:(Index.node_of_query index q)
              ~bytes:(P2pindex.Wire.consult_bytes qs)
              ~category:Dht.Network.Cache_update
              ~deliver:(fun () -> true);
            clock_ref := e.completes_at;
            e.answer
        | Some _ | None ->
            let answer = Index.lookup_step index q in
            Hashtbl.replace inflight_probes qs
              (* lint: allow P3 — coalescing window bookkeeping: one entry per distinct in-flight probe, not per event *)
              { answer; completes_at = !clock_ref };
            answer
    in
    let[@hot] admit s ~time =
      incr in_flight;
      if !in_flight > !peak then peak := !in_flight;
      Obs.Metrics.Gauge.set in_flight_gauge (float_of_int !in_flight);
      Churn.Event_queue.push queue ~time (Resume s)
    in
    let[@hot] arrival i ~time =
      if i < cfg.Runner.query_count then
        Churn.Event_queue.push queue
          ~time:(float_of_int (i + 1) /. query_rate)
          (Arrival (i + 1));
      let event = Runner.Internal.next_event env in
      (* lint: allow P3 — one session record per arriving query, not per quantum; the arrival stamp must ride with the walk *)
      let s = { arrived = time; walk = Walk.start event } in
      if !in_flight < concurrency then admit s ~time
      else begin
        Queue.add s waitq;
        Obs.Metrics.Gauge.set waiting_gauge (float_of_int (Queue.length waitq))
      end
    in
    (* One scheduling quantum: at most one cache-hit exchange plus one
       lookup, whose RPC latencies advance the clock in place.  The
       session then yields; whatever it spent decides when it resumes,
       and other sessions run quanta in the gap.  In concurrent mode a
       trace groups spans per quantum (sessions interleave, so
       per-session traces would anyway). *)
    (* The unprofiled branches below call the staged work directly: the
       per-quantum fast path allocates no thunks when --profile-phases is
       off. *)
    let[@hot] quantum s =
      (match tracer with
      | None -> ()
      | Some tr ->
          Obs.Trace.begin_trace tr
            ~root:(Q.to_string s.walk.Walk.event.Workload.Query_gen.query));
      let stepped =
        match phases with
        | None -> Walk.step ctx ~lookup s.walk
        | Some p ->
            (* lint: allow P1 — profiled branch only: Phase.span takes a thunk; opt-in --profile-phases forfeits the fast path *)
            Obs.Phase.span p "walk" (fun () -> Walk.step ctx ~lookup s.walk)
      in
      (match stepped with
      | Walk.Running w ->
          s.walk <- w;
          Churn.Event_queue.push queue ~time:!clock_ref (Resume s)
      | Walk.Finished outcome ->
          (match phases with
          | None ->
              Walk.install_shortcuts ctx s.walk outcome;
              Runner.Internal.tally_record tally outcome
          | Some p ->
              (* lint: allow P1 — profiled branch only: Phase.span takes a thunk; opt-in --profile-phases forfeits the fast path *)
              Obs.Phase.span p "walk" (fun () ->
                  Walk.install_shortcuts ctx s.walk outcome);
              (* lint: allow P1 — profiled branch only: Phase.span takes a thunk; opt-in --profile-phases forfeits the fast path *)
              Obs.Phase.span p "tally" (fun () ->
                  Runner.Internal.tally_record tally outcome));
          Summary.add session_latency (!clock_ref -. s.arrived);
          decr in_flight;
          Obs.Metrics.Gauge.set in_flight_gauge (float_of_int !in_flight);
          (match Queue.take_opt waitq with
          | Some next ->
              Obs.Metrics.Gauge.set waiting_gauge
                (float_of_int (Queue.length waitq));
              admit next ~time:!clock_ref
          | None -> ()));
      match tracer with
      | None -> ()
      | Some tr -> Obs.Trace.end_trace tr
    in
    Churn.Event_queue.push queue ~time:(1.0 /. query_rate) (Arrival 1);
    (* Popped times never decrease (every push is at or after the popped
       time), so churn and outbox delivery advance monotonically.  The
       clock itself can dip back between quanta — an executing quantum
       advances it past the next event's start — by at most one RPC's
       latency; deterministic, and harmless to the soft-state reads that
       observe it. *)
    let[@hot] handle ~time ev =
      Runner.Internal.advance_churn env ~until:time;
      clock_ref := time;
      ignore (Dht.Rpc.deliver_until rpc ~now:time : int);
      match ev with Arrival i -> arrival i ~time | Resume s -> quantum s
    in
    (* The queue drains in per-tick quanta: one [drain_until] call sweeps
       every event inside the current tick (including events those events
       push), so at high concurrency the heap is walked in batches of the
       arrival period instead of one pop-allocated pair per event.  The
       global (time, seq) pop order is untouched — ticks only partition
       it — so reports are byte-identical to the one-at-a-time drain. *)
    let tick = 1.0 /. query_rate in
    let horizon = ref tick in
    let rec drain () =
      ignore (Churn.Event_queue.drain_until queue ~until:!horizon ~f:handle : int);
      match Churn.Event_queue.peek_time queue with
      | None -> ()
      | Some next ->
          horizon := Float.max (!horizon +. tick) next;
          drain ()
    in
    drain ();
    ignore (Dht.Rpc.flush_deliveries rpc : int);
    let base =
      Obs.Phase.span_opt phases "report" (fun () ->
          Runner.Internal.make_report env tally)
    in
    {
      base;
      concurrency;
      coalesce;
      coalesced = !coalesced;
      session_latency;
      peak_in_flight = !peak;
    }
  end

(** One user session as a resumable walk (the paper's interactive model,
    Section V).

    The user knows which article they want but asks with partial
    information; at every step they contact the node acting for the
    current query, take a cache shortcut when one exists, otherwise pick
    from the result set the query that leads towards their target, and
    recover from non-indexed queries through generalization.

    Historically this walk was a recursive function private to
    {!Runner}; it is now a step machine so the concurrent {!Engine} can
    interleave many sessions on the virtual clock — {!step} advances one
    session by exactly one interaction quantum (at most one cache-hit
    exchange plus one index lookup), and {!run} is the sequential driver
    the {!Runner} uses, step-for-step identical to the historical
    recursion. *)

module Q = Bib.Bib_query

type ctx = {
  policy : Cache.Policy.t;
  rpc : Dht.Rpc.t;
  index : Bib.Bib_index.t;
  caches : Q.t Cache.Shortcut_cache.t array;
  liveness : Dht.Liveness.t;
  tracer : Obs.Trace.t option;
  prefix_route : (string -> Bib.Bib_index.step) option;
      (** When set (the routed prefix scheme), answers
          [Author_last_prefix] probes through the range-routed prefix
          index instead of the hashed [lookup]; all other query shapes
          are unaffected.  [None] reproduces the hashed-only behaviour
          byte-for-byte. *)
}
(** The shared simulation plumbing every session walks over. *)

type outcome = {
  steps : int;
  hit_position : int option;  (** Interaction index of the shortcut hit. *)
  probes_failed : int;  (** [Not_indexed] responses seen. *)
  found : bool;
  path : (Q.t * int) list;  (** Visited (query, node) pairs, in order. *)
}

type state = {
  event : Workload.Query_gen.event;
  target_msd : Q.t;
  msd_string : string;
  current : Q.t;
  steps : int;
  probes_failed : int;
  hit_position : int option;
  rev_path : (Q.t * int) list;
}
(** A session between steps: immutable — {!step} returns the successor. *)

type status = Running of state | Finished of outcome

val max_steps : int
(** Walks longer than this give up (cycle guard); 32. *)

val start : Workload.Query_gen.event -> state

val step :
  ctx -> lookup:(rendered:string -> Q.t -> Bib.Bib_index.step) -> state -> status
(** Advance one interaction quantum.  [lookup] answers the index probe —
    [Bib.Bib_index.lookup_step_rendered] for a plain run; the {!Engine}
    passes a coalescing wrapper.  [rendered] is the hop query's canonical
    string, rendered once per step and shared with the probe so the index
    layer never re-renders it. *)

val install_shortcuts : ctx -> state -> outcome -> unit
(** Install shortcuts along a finished session's successful path, per
    policy.  [state] identifies the target (any state of the session —
    the target never changes). *)

val run :
  ctx ->
  ?lookup:(rendered:string -> Q.t -> Bib.Bib_index.step) ->
  Workload.Query_gen.event ->
  outcome
(** Drive a session to completion and install its shortcuts — the
    sequential mode. *)

(** One entry per table and figure of the paper's evaluation (Section V).

    Each [figN_*] function computes the data behind the corresponding paper
    artifact and returns it in a typed form; the matching [print_*] renders
    it as text (tables and ASCII bars) alongside the paper's reference
    values so the two can be eyeballed together.  Simulation results are
    memoized per (scheme, policy) inside a {!Grid}, because several figures
    share the same runs. *)

type scale = {
  node_count : int;
  article_count : int;
  query_count : int;
  seed : int64;
}

val paper_scale : scale
(** The paper's setup: 500 nodes, 10,000 articles, 50,000 queries. *)

val quick_scale : scale
(** A reduced setup for tests and smoke runs (100 nodes, 1,000 articles,
    5,000 queries). *)

module Grid : sig
  type t

  val create : scale -> t

  val report : t -> scheme:Bib.Schemes.kind -> policy:Cache.Policy.t -> Runner.report
  (** Run (or reuse) the simulation for one cell. *)

  val scale : t -> scale
end

(** {1 Workload model (Figs. 7, 9, 10)} *)

type mix_row = { structure : string; model : float; observed : float }

val fig7_query_mix : scale -> mix_row list
(** Observed query-structure frequencies over [query_count] generated
    queries vs the BibFinder model. *)

type popularity_series = {
  ranks : int list;
  article_probability : (int * float) list;  (** model pmf at rank *)
  observed_frequency : (int * float) list;  (** measured over the workload *)
  fitted_slope : float;  (** log-log slope of the observed article series *)
  author_frequency : (int * float) list;
      (** observed author-query share by author popularity rank — the
          BibFinder/NetBib author series of Fig. 9 *)
  author_slope : float;
}

val fig9_popularity : scale -> popularity_series

type ccdf_row = { rank : int; formula : float; model : float }

val fig10_ccdf : scale -> ccdf_row list
(** The complementary CDF at sample ranks: the paper's closed form
    [1 − 0.063·i^0.3] against the sampler's actual CCDF. *)

(** {1 Storage (Section V-B and V-f)} *)

type storage_row = {
  scheme : string;
  index_bytes : int;
  overhead_vs_simple : float;  (** fractional increase; 0 for simple *)
  article_bytes : int;
  index_to_data_ratio : float;
  dblp_scaled_bytes : float;
      (** Index bytes linearly scaled to the full 115,879-article DBLP
          archive, comparable to the paper's 152 MB figure. *)
}

val storage_overhead : Grid.t -> storage_row list

type keys_row = { scheme : string; keys_per_node_mean : float; paper_value : float }

val keys_per_node : Grid.t -> keys_row list

(** {1 Simulation figures (11-15) and Table I} *)

type cell = { scheme : string; policy : string; value : float }

val fig11_interactions : Grid.t -> cell list
(** Mean interactions per query: schemes x {no-cache, single, LRU10/20/30}. *)

type traffic_cell = {
  scheme : string;
  policy : string;
  normal_bytes : float;
  cache_bytes : float;
}

val fig12_traffic : Grid.t -> traffic_cell list
(** Bytes per query, split normal/cache: schemes x all six policies. *)

val fig13_hit_ratio : Grid.t -> cell list
(** Cache hit ratio: schemes x caching policies (no-cache excluded). *)

val fig13_first_node_share : Grid.t -> cell list
(** Share of hits occurring at the first node (the paper's 86% / 99.9% /
    84% observation), multi-cache policy. *)

val fig14_cache_storage : Grid.t -> cell list
(** Mean cached keys per node: schemes x caching policies. *)

type cache_extremes = {
  policy : string;
  scheme : string;
  max_cached : int;
  full_share : float;
  empty_share : float;
}

val fig14_extremes : Grid.t -> cache_extremes list

type hotspot_series = {
  policy : string;
  share_by_rank : (int * float) list;
  gini : float;  (** Load imbalance: 0 = balanced, 1 = maximally skewed. *)
}

val fig15_hotspots : Grid.t -> hotspot_series list
(** Percentage of queries processed by each node, by node rank, for the
    simple scheme under no-cache, single-cache and LRU30 (log-log series at
    sample ranks). *)

val table1_errors : Grid.t -> cell list
(** Queries to non-indexed data: {no-cache, LRU30, single} x schemes. *)

(** {1 Ablations (DESIGN.md Section 5)} *)

type substrate_row = {
  substrate : string;
  interactions : float;
  normal_bytes : float;
  substrate_overhead_bytes : float;
      (** Extra routing traffic when hops are charged (0 for the oracle). *)
}

val ablation_substrate : scale -> substrate_row list
(** The same workload over every substrate — the static oracle, Chord,
    Pastry, CAN and Kademlia — with real routing hops charged.  Index-layer
    metrics must be identical (the paper's layering claim); only the billed
    routing overhead differs.  Runs at a capped scale (at most 150 nodes,
    2,000 articles, 5,000 queries): CAN and Kademlia simulate each routing
    step explicitly. *)

type skew_row = { alpha : float  (** Zipf exponent. *); hit_ratio : float; interactions : float }

val ablation_skew : scale -> skew_row list
(** Cache efficiency as the popularity skew varies, over a Zipf family:
    [alpha] is the Zipf exponent, from 0 (uniform popularity — caching
    pays little) upward (heavier skew — caching pays more). *)

type replication_row = {
  replication : int;
  failed_fraction : float;
  available_keys : float;
      (** Fraction of index keys with at least one live replica. *)
  storage_cost : int;  (** Total stored replica entries. *)
}

val ablation_replication : scale -> replication_row list
(** Section IV-D's availability claim: store the simple scheme's index keys
    with 1-3 replicas, fail 10-50% of the nodes, and measure how many keys
    remain reachable. *)

type churn_row = {
  churn_rate : float;  (** Failures per node per virtual second. *)
  churn_replication : int;
  availability : float;  (** Fraction of sessions that found their target. *)
  churn_interactions : float;
  maintenance_per_query : float;
      (** Republish + repair traffic, bytes per query. *)
  live_nodes_end : float;  (** Live nodes when the run ended. *)
}

val churn_rates : float list
val churn_replications : int list

val ablation_churn : scale -> churn_row list
(** The churned run mode end-to-end, over churn rate x replication factor:
    nodes crash (losing their index shard and cache) and rejoin on seeded
    session lifetimes while the workload runs; TTLs, republication and
    repair maintain the soft-state index.  Availability degrades with the
    churn rate and recovers with replication.  Deterministic: the same
    scale produces the identical table. *)

type fault_sweep_row = {
  sweep_loss_rate : float;
  sweep_retries : int;
  sweep_hedged : bool;
  lookup_success : float;
      (** Fraction of RPC exchanges answered within the retry budget. *)
  fault_availability : float;
      (** Fraction of sessions that still found their target (replica
          failover sits above the per-exchange retry budget). *)
  fault_interactions : float;
  sweep_timeouts : int;
  sweep_retries_used : int;
  sweep_hedges_won : int;
}

val fault_loss_rates : float list
val fault_retry_budgets : int list

val fault_sweep : scale -> fault_sweep_row list
(** Lookup success under seeded message loss, over loss rate x retry
    budget (hedging rides with the retries), at replication 3 with a
    fixed duplicate rate and latency.  With no retries, per-exchange
    success collapses to [(1-loss)^2]; bounded backoff retries plus a
    hedged second request recover it.  Deterministic: the same scale
    produces the identical table. *)

type concurrency_row = {
  row_concurrency : int;
  row_coalesce : bool;
  row_coalesced : int;
      (** Probes that rode another in-flight probe's response. *)
  row_normal_per_query : float;
  row_cache_per_query : float;
      (** Includes the coalesced followers' consultation tickets. *)
  row_session_latency : float;
      (** Mean arrival-to-completion virtual seconds (0 at concurrency 1). *)
  row_peak_in_flight : int;
}

val concurrency_levels : int list

val concurrency_sweep : scale -> concurrency_row list
(** The {!Engine} under overlapping sessions: the hot-spot-prone workload
    with nonzero RPC latency (no loss, generous timeout), at each
    concurrency level with coalescing off and — above 1 — on.  The load
    concentration of Fig. 15 makes concurrent sessions aim identical
    probes at the hot keys, so coalescing strictly reduces normal traffic
    per query once enough sessions overlap.  Deterministic: the same
    scale produces the identical table. *)

type scheme_variant_row = {
  scheme_label : string;
  interactions : float;
  non_indexed_errors : int;
  index_megabytes : float;
}

val ablation_scheme_variants : scale -> scheme_variant_row list
(** Complex vs Complex_ac under a workload with author+conference queries:
    the entry-point index removes those queries' recoverable errors at the
    cost of extra storage. *)

type deletion_row = {
  deleted_fraction : float;
  mappings_before : int;
  mappings_after : int;
  dangling_lookups : int;  (** Deleted articles still reachable — must be 0. *)
  survivors_lost : int;  (** Surviving articles lost — must be 0. *)
}

val ablation_deletion : scale -> deletion_row list
(** Section IV-C's read/write semantics: unpublish a fraction of the corpus
    and check that every index path to the deleted files disappears while
    the survivors stay fully reachable. *)

type hotspot_replication_row = {
  key_replicas : int;
  busiest_share : float;  (** Busiest node's share of all interactions. *)
  load_gini : float;
}

val ablation_hotspot_replication : scale -> hotspot_replication_row list
(** Section V-g's deferred fix: replicate every index key on r nodes with
    round-robin reads and measure the busiest node's load share and the
    overall Gini imbalance as r grows. *)

type prefix_sweep_row = {
  sweep_prefix_len : int;
  routed_nodes_mean : float;
      (** Covering nodes contacted per routed prefix query. *)
  sweep_broadcast_nodes : int;
      (** The broadcast-and-filter baseline contacts every node. *)
  direct_bytes_per_query : float;
  multicast_bytes_per_query : float;
  broadcast_bytes_per_query : float;
  install_messages : int;
      (** Messages the spanning-tree index dissemination used. *)
  install_bound_slack : int;
      (** (covering members + tree edges) - messages; non-negative iff the
          issue's multicast message bound held. *)
  install_depth : int;
  sweep_interactions : float;  (** End-to-end walk with the prefix scheme. *)
  sweep_normal_bytes : float;
}

val prefix_lens : int list

val prefix_sweep : scale -> prefix_sweep_row list
(** The routed prefix index vs broadcast-and-filter, per prefix length: a
    standalone harness prices one seeded probe stream three ways (direct
    per-node exchanges, spanning-tree multicast, flooding) on a billed
    network, and a full prefix-scheme {!Runner.run} supplies the
    end-to-end walk numbers.  Routed queries touch the few arc-covering
    nodes instead of all of them; multicast trades initiator exchanges
    for relay bytes.  Deterministic: the same scale produces the
    identical table. *)

type quorum_sweep_row = {
  sweep_churn_rate : float;
  sweep_read_quorum : int;
  quorum_stale_rate : float;
      (** Fraction of quorum reads a fully-consistent read would have
          improved on. *)
  quorum_availability : float;
  quorum_sweep_reads : int;
  quorum_sweep_read_repairs : int;
      (** Consulted replicas overwritten by read repair. *)
  quorum_sweep_under_acked : int;
      (** Writes acknowledged by fewer than W live replicas. *)
  quorum_maint_per_query : float;
  quorum_digest_bytes : int;  (** Anti-entropy digest traffic. *)
  quorum_shipped_bytes : int;  (** Diverged entries actually shipped. *)
  quorum_full_state_bytes : int;
      (** What digestless full-state exchanges would have moved. *)
}

val quorum_read_quorums : int list
val quorum_churn_rates : float list

val quorum_sweep : scale -> quorum_sweep_row list
(** Consistency under churn, over read quorum x churn rate, at
    replication 3 with W = 3 and digest-based anti-entropy in place of
    the repair walk.  At fixed churn the stale-read rate falls
    monotonically as R grows, and anti-entropy's digest + shipped bytes
    stay below the full-state baseline.  Deterministic: the same scale
    produces the identical table. *)

type scale_sweep_row = {
  scale_nodes : int;
  scale_articles : int;
  scale_queries : int;
  scale_interactions : float;
  scale_normal_bytes : float;
  scale_errors : int;
  scale_minor_words_per_query : float;
      (** Minor-heap words allocated per query over the whole run (setup
          included), from the deterministic phase collector. *)
  scale_phases : Obs.Phase.entry list;
      (** Per-stage allocation profile (null clock: elapsed fields are 0). *)
}

val scale_sweep_shards : int

val scale_sweep : scale -> scale_sweep_row list
(** Population growth under the sharded engine: each rung of an absolute
    node/article/query ladder (10^4 and 10^5 everywhere; the 10^6 rung
    rides the paper scale only) runs through {!Sharded.run} with
    {!scale_sweep_shards} shards on a single worker, profiled with the
    null-clock phase collector.  Interactions per query are scale-free
    and allocation per query stays flat — the arena-backed hot state at
    population scale.  Deterministic: the same scale produces the
    identical table, allocation words included. *)

(** {1 Rendering} *)

val print_fig7 : scale -> unit
val print_fig9 : scale -> unit
val print_fig10 : scale -> unit
val print_storage : Grid.t -> unit
val print_keys : Grid.t -> unit
val print_fig11 : Grid.t -> unit
val print_fig12 : Grid.t -> unit
val print_fig13 : Grid.t -> unit
val print_fig14 : Grid.t -> unit
val print_fig15 : Grid.t -> unit
val print_table1 : Grid.t -> unit
val print_ablation_substrate : scale -> unit
val print_ablation_skew : scale -> unit
val print_ablation_replication : scale -> unit
val print_ablation_deletion : scale -> unit
val print_ablation_hotspot : scale -> unit
val print_ablation_scheme : scale -> unit
val print_ablation_churn : scale -> unit
val print_fault_sweep : scale -> unit
val print_concurrency_sweep : scale -> unit
val print_prefix_sweep : scale -> unit
val print_quorum_sweep : scale -> unit
val print_scale_sweep : scale -> unit

val all_experiment_ids : string list
(** ["fig7"; "fig9"; ...] in printing order. *)

val run_experiment :
  Grid.t -> print:bool -> string -> Obs.Bench_report.metric list option
(** Compute one experiment by id, render its tables when [print], and
    return its headline numbers as bench-report metrics (flattened under
    ["exp/<id>/"] by {!Obs.Bench_report.flatten}).  The data is computed
    once and feeds both outputs; grid-backed experiments additionally
    share simulation runs through the memoized {!Grid}.  Costs
    (interactions, bytes, errors) compare lower-better, success ratios
    (hit ratio, availability) higher-better, distribution shapes (slopes,
    gini) are informational.  [None] when the id is unknown. *)

val print_experiment : Grid.t -> string -> bool
(** [run_experiment ~print:true] with the metrics dropped; false when the
    id is unknown. *)

module Q = Bib.Bib_query
module Index = Bib.Bib_index
module Query_gen = Workload.Query_gen
module Policy = Cache.Policy
module Shortcut = Cache.Shortcut_cache
module Network = Dht.Network

type ctx = {
  policy : Policy.t;
  rpc : Dht.Rpc.t;
  index : Index.t;
  caches : Q.t Shortcut.t array;
  liveness : Dht.Liveness.t;
  tracer : Obs.Trace.t option;
  prefix_route : (string -> Index.step) option;
}

type outcome = {
  steps : int;
  hit_position : int option;  (* interaction index of the shortcut hit *)
  probes_failed : int;  (* Not_indexed responses seen *)
  found : bool;
  path : (Q.t * int) list;  (* visited (query, node) pairs, in order *)
}

type state = {
  event : Query_gen.event;
  target_msd : Q.t;
  msd_string : string;
  current : Q.t;
  steps : int;
  probes_failed : int;
  hit_position : int option;
  rev_path : (Q.t * int) list;
}

type status = Running of state | Finished of outcome

let max_steps = 32

let start (event : Query_gen.event) =
  let target_msd = Q.msd event.target in
  {
    event;
    target_msd;
    msd_string = Q.to_string target_msd;
    current = event.query;
    steps = 0;
    probes_failed = 0;
    hit_position = None;
    rev_path = [];
  }

let finished s ~found =
  Finished
    {
      steps = s.steps;
      hit_position = s.hit_position;
      probes_failed = s.probes_failed;
      found;
      (* lint: allow P4 — terminal: the path materializes once per finished walk, not per step *)
      path = List.rev s.rev_path;
    }

(* Static first-match helpers: the hot step allocates no predicate
   closures (P1) and stops at the first hit instead of filtering. *)

let rec find_cached_hit ~msd = function
  | [] -> None
  | ((_q, target) as entry) :: rest ->
      if String.equal (Q.to_string target) msd then Some entry
      else find_cached_hit ~msd rest

let rec first_covering ~target_msd = function
  | [] -> None
  | c :: rest ->
      if Q.covers c target_msd then Some c
      else first_covering ~target_msd rest

let rec first_matching_generalization ~target = function
  | [] -> None
  | g :: rest ->
      if Q.matches_article g target then Some g
      else first_matching_generalization ~target rest

let generalize s ~probes_failed =
  match
    first_matching_generalization ~target:s.event.Query_gen.target
      (Q.generalizations s.current)
  with
  | Some g -> Running { s with current = g; probes_failed }
  | None -> finished { s with probes_failed } ~found:false

let charge_hit_interaction ctx ~node ~query_string ~msd_string =
  (* The request reaching the node, and the shortcut coming back.  Normal
     lookups are charged inside the index layer; the cache-hit path skips
     it, so the accounting — and the trace span — happens here through
     the same RPC channel.  Under a fault plan the exchange can fail
     outright; the caller then treats the would-be hit as a miss. *)
  let request_bytes = P2pindex.Wire.request_bytes query_string in
  let response_bytes = P2pindex.Wire.response_bytes [ msd_string ] in
  match
    Dht.Rpc.call ctx.rpc ~dst:node ~request_bytes
      (* lint: allow P1 — RPC handler contract: Rpc.call takes a callback; one closure per charged cache hit *)
      ~handler:(fun ~node:_ -> Dht.Rpc.Reply { bytes = response_bytes; value = () })
      ()
  with
  | Dht.Rpc.Exhausted -> false
  | Dht.Rpc.Answered _ ->
      (match ctx.tracer with
      | None -> ()
      | Some tracer ->
          Obs.Trace.span tracer ~query:query_string ~node ~cache_hit:true
            ~result_count:1 ~request_bytes ~response_bytes
            ~outcome:Obs.Trace.Refined ());
      true

let[@hot] step ctx ~lookup s =
  if s.steps >= max_steps then finished s ~found:false
  else
    (* The hop's query renders exactly once; the liveness probe, the
       cache lookup and the index step below all reuse this string. *)
    let query_string = Q.to_string s.current in
    (* The node contacted is the acting responsible node — the first live
       replica.  With every node alive that is the primary, as in the
       static model; under churn a dead primary's successor answers, and
       when the whole replica set is down the contact is only nominal
       (the lookup below fails over and ultimately reports nothing). *)
    let answering = Index.live_node_of_string ctx.index query_string in
    let answered = answering >= 0 in
    let node =
      if answered then answering else Index.node_of_string ctx.index query_string
    in
    let is_msd_step = Q.equal s.current s.target_msd in
    let s =
      {
        s with
        steps = s.steps + 1;
        (* lint: allow P3 — path accounting: the outcome records one (query, node) pair per visited hop *)
        rev_path = (if is_msd_step then s.rev_path else (s.current, node) :: s.rev_path);
      }
    in
    (* The node answers with everything it has under the key: cached
       shortcuts first — they behave like ordinary index entries and serve
       any requester (Section IV-C) — and index mappings otherwise. *)
    let cached_entries =
      if answered && Policy.caches_enabled ctx.policy && not is_msd_step then
        Shortcut.find ctx.caches.(node) ~query_key:query_string
      else []
    in
    let cached_hit = find_cached_hit ~msd:s.msd_string cached_entries in
    match cached_hit with
    | Some (_q, msd_q)
      when charge_hit_interaction ctx ~node ~query_string ~msd_string:s.msd_string
      ->
        (* Shortcut hit: jump straight to the descriptor.  (The guard
           bills the exchange; on a fault-free plan it never fails.) *)
        let hit_position =
          match s.hit_position with Some _ as p -> p | None -> Some s.steps
        in
        Running { s with current = msd_q; hit_position }
    | Some _ | None -> (
        let answer =
          (* Under the routed prefix scheme, a prefix entry point is not a
             hashed key at all: the range-routed index answers it before the
             hashed index is ever consulted.  All other query shapes (and
             every scheme without a route) take the hashed path unchanged. *)
          match ctx.prefix_route with
          | None -> lookup ~rendered:query_string s.current
          | Some route -> (
              match s.current with
              | Q.Author_last_prefix p -> route p
              | Q.Fields _ | Q.Msd _ -> lookup ~rendered:query_string s.current)
        in
        match answer with
        | Index.File _file -> finished s ~found:true
        | Index.Children children -> (
            (* The user knows the target: follow the entry that covers its
               descriptor. *)
            match first_covering ~target_msd:s.target_msd children with
            | Some child -> Running { s with current = child }
            | None ->
                (* Indexed key, but none of its entries leads to the
                   target (can happen for shortcut-created keys whose
                   cached targets differ): fall back to generalization
                   without counting an error — the key did exist. *)
                generalize s ~probes_failed:s.probes_failed)
        | Index.Not_indexed -> (
            match cached_entries with
            | _ :: _ ->
                (* The key exists in the distributed cache, just without
                   the user's target: not an access to non-indexed data. *)
                generalize s ~probes_failed:s.probes_failed
            | [] ->
                (* Recoverable error (Section V-h): generalize and retry. *)
                generalize s ~probes_failed:(s.probes_failed + 1)))

let install_shortcuts ctx s outcome =
  (* Install shortcuts along the successful path, per policy. *)
  if outcome.found && Policy.caches_enabled ctx.policy then begin
    let installs =
      match ctx.policy.Policy.placement with
      | Policy.No_cache -> []
      | Policy.Single_cache -> (
          match outcome.path with [] -> [] | first :: _ -> [ first ])
      | Policy.Multi_cache -> outcome.path
    in
    List.iter
      (fun (q, node) ->
        (* A path node can be the nominal contact of an all-dead replica
           set; installing there would write to a dead node's cache.  The
           install itself is fire-and-forget soft state: under a fault
           plan it may be silently lost or arrive late, and the node is
           re-checked at delivery time. *)
        if Dht.Liveness.alive ctx.liveness node then begin
          let query_key = Q.to_string q in
          Dht.Rpc.send_oneway ~lossy:true ctx.rpc ~dst:node
            ~bytes:(P2pindex.Wire.cache_install_bytes query_key s.msd_string)
            ~category:Network.Cache_update
            ~deliver:(fun () ->
              Dht.Liveness.alive ctx.liveness node
              && Shortcut.add ctx.caches.(node) ~query_key
                   ~target_key:s.msd_string (q, s.target_msd))
        end)
      installs
  end

let run ctx ?lookup event =
  let lookup =
    match lookup with
    | Some f -> f
    | None -> Index.lookup_step_rendered ctx.index
  in
  let s0 = start event in
  let rec go s =
    match step ctx ~lookup s with Running s -> go s | Finished outcome -> outcome
  in
  let outcome = go s0 in
  install_shortcuts ctx s0 outcome;
  outcome

module Summary = Stdx.Stats.Summary

type report = {
  engine : Engine.report;
  shard_count : int;
  domain_count : int;
  per_shard : Engine.report array;
}

(* Shard s's slice of a total: a block partition with the remainder
   spread over the low shards, so sizes differ by at most one. *)
let[@hot] split total shards s = (total / shards) + if s < total mod shards then 1 else 0

(* Weyl-sequence seed mixing (the 64-bit golden ratio): shard streams are
   decorrelated without any shared PRNG state, and shard 0 keeps the
   caller's seed so a 1-shard run replays the unsharded stream exactly. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let shard_seed seed s =
  if s = 0 then seed else Int64.add seed (Int64.mul (Int64.of_int s) golden_gamma)

let shard_config (cfg : Runner.config) ~shards s =
  {
    cfg with
    Runner.node_count = split cfg.Runner.node_count shards s;
    article_count = split cfg.Runner.article_count shards s;
    query_count = split cfg.Runner.query_count shards s;
    seed = shard_seed cfg.Runner.seed s;
  }

let validate ~shards ~domains (cfg : Runner.config) =
  if shards < 1 then invalid_arg "Sharded.run: shards must be >= 1";
  if domains < 1 then invalid_arg "Sharded.run: domains must be >= 1";
  if
    shards > cfg.Runner.node_count
    || shards > cfg.Runner.article_count
    || shards > cfg.Runner.query_count
  then
    invalid_arg
      "Sharded.run: every shard needs at least one node, one article and one \
       query";
  if Runner.effective_replication cfg > cfg.Runner.node_count / shards then
    invalid_arg
      "Sharded.run: the smallest shard cannot hold the replication factor \
       (replication needs that many distinct nodes per shard)"

(* The merged sequential report: sums for every count and byte field,
   streaming-summary merges for the distributions, concatenation in shard
   order for the per-node arrays (shard s's nodes occupy the dense id
   block [offset_s, offset_s + node_count_s)), and the snapshot merge for
   the registries.  [config] is the caller's unsharded config, so derived
   metrics (per-query traffic, availability) read network-wide totals. *)
let merge_base (cfg : Runner.config) (reports : Runner.report list) =
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  let cat f = Array.concat (List.map f reports) in
  let summ f =
    List.fold_left (fun acc r -> Summary.merge acc (f r)) (Summary.create ()) reports
  in
  {
    Runner.config = cfg;
    interactions = summ (fun (r : Runner.report) -> r.Runner.interactions);
    hits = sum (fun r -> r.Runner.hits);
    hits_first_node = sum (fun r -> r.Runner.hits_first_node);
    errors = sum (fun r -> r.Runner.errors);
    error_probes = summ (fun (r : Runner.report) -> r.Runner.error_probes);
    unreachable = sum (fun r -> r.Runner.unreachable);
    request_bytes = sum (fun r -> r.Runner.request_bytes);
    response_bytes = sum (fun r -> r.Runner.response_bytes);
    cache_bytes = sum (fun r -> r.Runner.cache_bytes);
    maintenance_bytes = sum (fun r -> r.Runner.maintenance_bytes);
    node_touches = cat (fun r -> r.Runner.node_touches);
    cached_keys = cat (fun r -> r.Runner.cached_keys);
    regular_keys = cat (fun r -> r.Runner.regular_keys);
    index_bytes = sum (fun r -> r.Runner.index_bytes);
    article_bytes = sum (fun r -> r.Runner.article_bytes);
    index_mappings = sum (fun r -> r.Runner.index_mappings);
    publish_bytes = sum (fun r -> r.Runner.publish_bytes);
    network_messages = sum (fun r -> r.Runner.network_messages);
    rpc_calls = sum (fun r -> r.Runner.rpc_calls);
    rpc_exhausted = sum (fun r -> r.Runner.rpc_exhausted);
    rpc_timeouts = sum (fun r -> r.Runner.rpc_timeouts);
    rpc_retries = sum (fun r -> r.Runner.rpc_retries);
    rpc_hedges = sum (fun r -> r.Runner.rpc_hedges);
    rpc_hedges_won = sum (fun r -> r.Runner.rpc_hedges_won);
    rpc_duplicates_suppressed = sum (fun r -> r.Runner.rpc_duplicates_suppressed);
    rpc_lost_messages = sum (fun r -> r.Runner.rpc_lost_messages);
    quorum_reads = sum (fun r -> r.Runner.quorum_reads);
    quorum_stale_reads = sum (fun r -> r.Runner.quorum_stale_reads);
    quorum_read_repairs = sum (fun r -> r.Runner.quorum_read_repairs);
    quorum_writes = sum (fun r -> r.Runner.quorum_writes);
    quorum_write_failures = sum (fun r -> r.Runner.quorum_write_failures);
    antientropy_rounds = sum (fun r -> r.Runner.antientropy_rounds);
    antientropy_digest_bytes = sum (fun r -> r.Runner.antientropy_digest_bytes);
    antientropy_shipped_bytes = sum (fun r -> r.Runner.antientropy_shipped_bytes);
    antientropy_full_state_bytes =
      sum (fun r -> r.Runner.antientropy_full_state_bytes);
    metrics =
      Obs.Metrics.merge_snapshots
        (List.map (fun (r : Runner.report) -> r.Runner.metrics) reports);
  }

let merge_engine ~concurrency ~coalesce (cfg : Runner.config)
    (reports : Engine.report list) =
  {
    Engine.base = merge_base cfg (List.map (fun e -> e.Engine.base) reports);
    concurrency;
    coalesce;
    coalesced = List.fold_left (fun acc e -> acc + e.Engine.coalesced) 0 reports;
    session_latency =
      List.fold_left
        (fun acc e -> Summary.merge acc e.Engine.session_latency)
        (Summary.create ()) reports;
    peak_in_flight =
      List.fold_left (fun acc e -> Stdlib.max acc e.Engine.peak_in_flight) 0 reports;
  }

let run ?(shards = 1) ?(domains = 1) ?phases ?(concurrency = 1)
    ?(coalesce = false) cfg =
  validate ~shards ~domains cfg;
  let workers = Stdlib.min domains shards in
  (match phases with
  | Some _ when workers > 1 ->
      (* GC word counters are per-domain in OCaml 5: a profile summed over
         racing domains would depend on the scheduler.  Profiled sharded
         runs execute on one worker (shards still partition the state). *)
      invalid_arg "Sharded.run: profiling requires a single worker domain"
  | Some _ | None -> ());
  if shards = 1 then begin
    (* Degeneration: one shard IS the engine run — same code path, same
       seed, so report and snapshot are byte-for-byte {!Engine.run}'s. *)
    let e = Engine.run ?phases ~concurrency ~coalesce cfg in
    { engine = e; shard_count = 1; domain_count = 1; per_shard = [| e |] }
  end
  else begin
    let run_shard s =
      Engine.run ?phases ~concurrency ~coalesce (shard_config cfg ~shards s)
    in
    let per_shard =
      if workers = 1 then Array.init shards run_shard
      else begin
        (* Stride assignment: worker w owns shards w, w+N, w+2N, ...  The
           assignment never influences results — shards share nothing —
           and the merge below reads slots in shard order, so any worker
           count produces identical output. *)
        let results = Array.make shards None in
        let worker w () =
          let rec go s acc =
            if s >= shards then acc else go (s + workers) ((s, run_shard s) :: acc)
          in
          go w []
        in
        let joined =
          Array.map Domain.join
            (Array.init workers (fun w -> Domain.spawn (worker w)))
        in
        Array.iter
          (List.iter (fun (s, r) -> results.(s) <- Some r))
          joined;
        Array.map
          (function Some r -> r | None -> assert false (* stride covers all *))
          results
      end
    in
    let engine =
      merge_engine ~concurrency ~coalesce cfg (Array.to_list per_shard)
    in
    { engine; shard_count = shards; domain_count = workers; per_shard }
  end

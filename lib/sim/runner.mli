(** The Section V simulation: a P2P network of peers running the indexing
    layer, fed with the realistic query workload.

    One run builds the substrate, publishes the corpus under an indexing
    scheme, resets the traffic counters, then drives [query_count] user
    sessions.  Each session follows the paper's interactive model: the user
    knows which article they want but asks with partial information; at
    every step they contact the node responsible for the current query,
    take a cache shortcut when one exists, otherwise pick from the result
    set the (unique) query that leads towards their target, until the file
    is returned.  Non-indexed queries are recovered through
    generalization.  Successful sessions install shortcuts according to the
    caching policy. *)

type substrate = Static | Chord | Pastry | Can | Kademlia

val substrate_label : substrate -> string
(** Lower-case name, as used in metric labels and the CLI. *)

type popularity_model =
  | Fitted_cdf of float
      (** The paper's fitted family: CDF [F(i) = 0.063 i^alpha], clamped and
          normalized over the catalog; the paper's exponent is 0.3. *)
  | Zipf of float  (** Classic Zipf with the given exponent (ablations). *)

type churn_config = {
  churn_rate : float;
      (** Mean failures per node per virtual second; a node's session
          length is drawn with mean [1 / churn_rate].  0 degenerates to
          the static run: no events, the clock never advances, TTLs never
          bite (byte-for-byte identical at replication 1). *)
  heavy_tailed : bool;
      (** Draw sessions from a Pareto (alpha 1.5) instead of an
          exponential — a stable core of long-lived nodes plus a flickering
          fringe, as measurement studies observed. *)
  downtime_mean : float;  (** Mean seconds a failed node stays away. *)
  replication : int;  (** Replica nodes per index entry (Section IV-D). *)
  ttl : float;  (** Soft-state lifetime, seconds; [infinity] = hard state. *)
  republish_period : float;
      (** Seconds between global republish rounds (publishers re-send
          their entries with fresh TTLs). *)
  repair_period : float;
      (** Seconds between anti-entropy passes re-homing replicas. *)
  query_rate : float;
      (** Queries per virtual second — what couples the workload to the
          churn clock. *)
}

val default_churn : churn_config
(** Moderate churn: rate 0.002/s (mean session ~8 min), exponential
    sessions, 30 s downtimes, replication 3, TTL 300 s, republish every
    100 s, repair every 25 s, 50 queries/s. *)

type fault_config = {
  loss_rate : float;
      (** Probability each message (request, response or one-way copy) is
          silently dropped.  Applied per direction: a lookup exchange
          survives with [(1-p)^2]. *)
  duplicate_rate : float;
      (** Probability a surviving message is delivered twice (a duplicated
          request runs the handler again — idempotence is exercised — and
          the duplicate answer is suppressed and counted). *)
  latency_mean : float;
      (** Mean of the per-direction exponential latency, virtual seconds;
          0 keeps messages instant.  Round-trips above the RPC timeout
          count as timeouts even when nothing was lost. *)
  rpc_timeout : float;  (** Deadline per attempt, virtual seconds. *)
  rpc_retries : int;  (** Extra attempts after the first timeout. *)
  hedge : bool;
      (** Send a hedged second request to the next replica when the first
          attempt runs past half the timeout. *)
  fault_replication : int;
      (** Replica nodes per index entry; gives retries somewhere to go
          when a replica's messages keep getting lost. *)
}

val default_faults : fault_config
(** All rates zero, timeout 0.5 s, 2 retries, hedging off,
    replication 1 — a block that changes nothing until a rate is raised
    (see {!fault_active}). *)

type prefix_config = {
  prefix_len : int;
      (** Last-name characters an [Author_prefix] query keeps; within
          [1, 20] (the key width). *)
  multicast : bool;
      (** Answer prefix queries (and install the range index) through
          the spanning tree instead of per-covering-node exchanges. *)
}

val default_prefix : prefix_config
(** Single-letter prefixes, multicast on. *)

type quorum_config = {
  read_quorum : int;
      (** Live replicas a lookup step must hear a non-empty answer from
          before reconciling (R of the N/R/W model); within
          [1, replication]. *)
  write_quorum : int;
      (** Live-replica acknowledgements a write needs to count as fully
          acknowledged (W); within [1, replication].  Writes always reach
          every live replica — W decides only what is {e counted} as an
          under-acknowledged write. *)
  anti_entropy_interval : float;
      (** Seconds between digest-based anti-entropy passes; 0 keeps the
          full-state repair walk on [repair_period].  A positive interval
          replaces the repair walk on the churn driver's schedule, so it
          requires active churn. *)
}

type config = {
  node_count : int;
  article_count : int;
  query_count : int;
  seed : int64;
  scheme : Bib.Schemes.kind;
  policy : Cache.Policy.t;
  substrate : substrate;
  charge_route_hops : bool;
      (** Bill substrate routing hops as maintenance traffic (off by
          default: the paper treats the substrate as orthogonal). *)
  mix : Workload.Query_gen.mix;
  popularity : popularity_model;
  churn : churn_config option;
      (** [None] (the default) is the static run.  [Some c] runs the
          discrete-event churned mode: a virtual clock paced by
          [c.query_rate], node failures and rejoins scheduled from the
          session distributions, soft-state TTLs, periodic republication
          and repair.  An abrupt failure loses the node's index shard and
          shortcut cache; lookups fail over down the replica list. *)
  faults : fault_config option;
      (** [None] (the default) is the fault-free run.  [Some f] routes
          every lookup, cache-hit exchange and shortcut install through a
          fault-injecting RPC channel: seeded message loss, duplication
          and latency, with timeouts, bounded exponential-backoff retries
          and optional hedged requests on top.  The fault clock shares
          the churn clock, so both can run together.  Seeded from
          [seed + 7_777_777], so a faulty run replays bit-for-bit. *)
  prefix : prefix_config option;
      (** Options for the routed prefix scheme; only legal with
          [scheme = Prefix] (which without them uses {!default_prefix}).
          A prefix run publishes the order-preserving range index next to
          the hashed corpus and answers [Author_prefix] queries by
          routing to the covering nodes — see [Prefix.Prefix_index]. *)
  quorum : quorum_config option;
      (** [None] (the default) keeps the historical first-live-replica
          reads.  [Some q] runs Dynamo-style quorum consistency over the
          replication the churn/fault blocks configure: lookups consult
          [q.read_quorum] live replicas, reconcile their version vectors
          and read-repair divergence; writes are counted against
          [q.write_quorum]; a positive [q.anti_entropy_interval] swaps
          the periodic full-state repair for digest-based anti-entropy.
          Churned failures become pauses — the node rejoins with the (by
          then lagging) state it held instead of rejoining empty — so
          the stale reads the quorum machinery masks actually occur.
          [Some { read_quorum = 1; write_quorum = replication;
          anti_entropy_interval = 0. }] is inactive (see
          {!quorum_active}) and degenerates byte-for-byte to [None]. *)
}

val default_config : config
(** The paper's setup: 500 nodes, 10,000 articles, 50,000 queries, simple
    scheme, no cache, static substrate, BibFinder mix, fitted popularity,
    no churn, no faults. *)

val fault_active : config -> bool
(** Whether the fault block actually perturbs the run (any rate positive
    or hedging on).  When false — including [faults = Some
    default_faults] — the run takes the zero-plan fast path and its
    output is byte-identical to a run with [faults = None]. *)

val effective_replication : config -> int
(** The replication factor the index is created with: the larger of the
    churn and fault blocks' asks, 1 when neither is present. *)

val quorum_active : config -> bool
(** Whether the quorum block actually changes the run: R above 1, W
    below the effective replication, or anti-entropy on.  When false the
    quorum parameters never reach the index, no consistency metric
    family is registered, and the run's report and metrics snapshot are
    byte-identical to a run with [quorum = None]. *)

type report = {
  config : config;
  interactions : Stdx.Stats.Summary.t;
      (** User-system interactions per query (Fig. 11). *)
  hits : int;  (** Sessions resolved through a cached shortcut (Fig. 13). *)
  hits_first_node : int;  (** Hits found at the first node contacted. *)
  errors : int;  (** Sessions that touched a non-indexed query (Table I). *)
  error_probes : Stdx.Stats.Summary.t;
      (** Extra probes per erroring session ("one extra interaction"). *)
  unreachable : int;
      (** Sessions that could not locate their target (0 in a correct
          system — exposed so the tests can assert it). *)
  request_bytes : int;
  response_bytes : int;
  cache_bytes : int;  (** Shortcut-installation traffic (Fig. 12, dark). *)
  maintenance_bytes : int;
  node_touches : int array;  (** Per-node query accesses (Fig. 15). *)
  cached_keys : int array;  (** Per-node shortcut counts at the end (Fig. 14). *)
  regular_keys : int array;  (** Per-node index+file keys (Section V-f). *)
  index_bytes : int;  (** Index storage footprint (Section V-B). *)
  article_bytes : int;  (** Stored article payload bytes. *)
  index_mappings : int;
  publish_bytes : int;  (** Maintenance traffic spent building the indexes. *)
  network_messages : int;  (** Total messages during the query phase. *)
  rpc_calls : int;  (** Request/response exchanges attempted. *)
  rpc_exhausted : int;  (** Calls that failed every attempt. *)
  rpc_timeouts : int;  (** Attempts that timed out (lost or too slow). *)
  rpc_retries : int;  (** Backed-off re-attempts after a timeout. *)
  rpc_hedges : int;  (** Hedged second requests fired. *)
  rpc_hedges_won : int;  (** Hedges that answered before the primary. *)
  rpc_duplicates_suppressed : int;  (** Duplicate deliveries discarded. *)
  rpc_lost_messages : int;  (** Messages the fault plan dropped. *)
  quorum_reads : int;  (** Lookup steps that took the quorum path. *)
  quorum_stale_reads : int;
      (** Quorum reads whose merged answer a fully-consistent read would
          have improved on (oracle comparison against every live
          replica's version). *)
  quorum_read_repairs : int;  (** Consulted replicas overwritten by read repair. *)
  quorum_writes : int;  (** Coordinated writes counted against W. *)
  quorum_write_failures : int;
      (** Writes acknowledged by fewer than [write_quorum] live replicas. *)
  antientropy_rounds : int;  (** Anti-entropy passes run. *)
  antientropy_digest_bytes : int;  (** Bytes spent on digest messages. *)
  antientropy_shipped_bytes : int;
      (** Bytes of diverged entries anti-entropy actually shipped. *)
  antientropy_full_state_bytes : int;
      (** Bytes a digestless full-state exchange would have shipped over
          the same rounds — the baseline the digests are saving against. *)
  metrics : Obs.Metrics.snapshot;
      (** End-of-run snapshot of the run's registry: network traffic,
          lookup-step outcomes, route-hop / interaction / result-set
          histograms, cache hit/miss/eviction counters, substrate health. *)
}

val run :
  ?events:Workload.Query_gen.event list ->
  ?metrics:Obs.Metrics.t ->
  ?tracer:Obs.Trace.t ->
  ?phases:Obs.Phase.t ->
  config ->
  report
(** [run config] generates the workload from the config; [run ~events]
    replays the given event list instead (e.g. a loaded {!Workload.Trace}),
    overriding [query_count] with its length.  The events' targets must
    belong to the corpus the config generates (same [article_count] and
    [seed]).

    Every run emits into a metrics registry — a fresh one per run, or
    [metrics] when given (e.g. to aggregate across runs); the final
    snapshot is returned in the report.  With [tracer], each user session
    becomes one trace whose spans (including cache-shortcut hits) carry
    the same wire-model byte counts charged to the network.

    With [phases], the run is profiled: its stages accumulate into the
    collector as "setup" (substrate build + corpus publication), "walk"
    (the query loop), "tally" (per-session outcome recording) and
    "report" (snapshot assembly), and the report's metrics snapshot
    additionally carries the [p2pindex_phase_*] gauges (per-phase elapsed
    time and allocation) and the [p2pindex_gc_*] gauges (whole-run
    [Gc.quick_stat] deltas plus heap size).  Without [phases] — the
    default — none of those families exist and no clock or GC state is
    read, preserving the byte-for-byte snapshot guarantees (profiled
    elapsed times are wall-clock and therefore not reproducible; see
    {!Obs.Phase}).
    @raise Invalid_argument on a nonsensical configuration — including
    [query_count <= 0] (so an empty [events] list is rejected too): a
    zero-query run has no meaningful per-query metrics. *)

(** {1 Derived metrics} *)

val interactions_mean : report -> float
val hit_ratio : report -> float
val first_node_hit_share : report -> float
val normal_traffic_per_query : report -> float
(** Request + response bytes per query. *)

val cache_traffic_per_query : report -> float
val cached_keys_mean : report -> float
val cached_keys_max : report -> int
val caches_full_share : report -> float
(** Fraction of nodes whose bounded cache is at capacity (0 when
    unbounded). *)

val caches_empty_share : report -> float
val regular_keys_mean : report -> float

val availability : report -> float
(** Fraction of sessions that located their target — 1.0 in a static run
    (the system is correct), degrading gracefully with churn. *)

val maintenance_traffic_per_query : report -> float
(** Maintenance bytes (republish, repair, routing overhead) per query. *)

val lookup_success_rate : report -> float
(** Fraction of RPC exchanges that got an answer within their retry
    budget; 1.0 when no faults were injected (zero calls recorded). *)

val stale_read_rate : report -> float
(** Fraction of quorum reads that were stale; 0 when the run made no
    quorum reads. *)

(** {1 Engine support}

    The run decomposed into its phases, so the concurrent {!Engine} can
    reuse the exact setup, per-session tallying and report assembly this
    runner performs.  The byte-for-byte degeneration guarantee (engine at
    concurrency 1 = sequential runner) rests on both modes flowing
    through these same functions in the same order.  Not a stable
    end-user surface. *)

module Internal : sig
  type env
  (** Everything one run holds: configuration, registry, network,
      virtual clock, RPC channel, published index, shortcut caches,
      churn driver and workload generator. *)

  val setup :
    ?events:Workload.Query_gen.event list ->
    ?metrics:Obs.Metrics.t ->
    ?tracer:Obs.Trace.t ->
    ?phases:Obs.Phase.t ->
    config ->
    env
  (** Validate the config, then build the substrate, publish the corpus
      and reset the traffic counters — every side effect {!run} performs
      before its query loop, in the same order.  [phases] arms profiling:
      {!make_report} will export the per-phase and GC gauge families into
      the registry before snapshotting (and nothing else changes).
      @raise Invalid_argument as {!run} does. *)

  val config : env -> config
  (** The resolved configuration ([query_count] reflects [events]). *)

  val registry : env -> Obs.Metrics.t
  val rpc : env -> Dht.Rpc.t
  val index : env -> Bib.Bib_index.t

  val clock_ref : env -> float ref
  (** The virtual clock every layer reads; the RPC channel advances it
      in place as calls consume latency. *)

  val walk_ctx : env -> Walk.ctx
  val tracer : env -> Obs.Trace.t option

  val advance_churn : env -> until:float -> unit
  (** Fire every churn event due by [until] and land the clock there; a
      no-op (clock untouched) when the run has no active churn. *)

  val next_event : env -> Workload.Query_gen.event
  (** The next session to run: replayed [events] first, then the
      generator. *)

  type tally
  (** Per-session outcome aggregation (interactions, hits, errors,
      unreachable) — order-insensitive, so concurrent completions may
      record in completion order. *)

  val tally_create : unit -> tally
  val tally_record : tally -> Walk.outcome -> unit

  val make_report : env -> tally -> report
  (** Snapshot the registry and assemble the final report — identical to
      the sequential runner's epilogue. *)
end

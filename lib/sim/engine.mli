(** Concurrent session engine: many in-flight user sessions interleaved
    on the virtual clock, with optional singleflight coalescing of
    identical in-flight lookups.

    The sequential {!Runner} drives each session to completion before the
    next arrives; real deployments overlap them.  This engine schedules
    sessions as {!Walk.step} quanta on a {!Churn.Event_queue}: arrivals
    come at the configured [query_rate], at most [concurrency] sessions
    hold a slot at once (later arrivals wait FIFO), and each quantum's
    RPC latency decides when that session resumes — so sessions genuinely
    interleave in virtual time.

    {b Degeneration guarantee.}  At [concurrency = 1] (coalescing is
    rejected there) the engine calls {!Runner.run} itself — the identical
    code path — so the report {e and the metrics snapshot} are
    byte-for-byte those of a sequential run, and none of the engine's
    metric families exist.

    {b Coalescing.}  With [~coalesce:true], a lookup probe for a query
    string equal to one whose response is still in flight does not hit
    the network again: the follower pays only a small consultation ticket
    ({!P2pindex.Wire.consult_bytes}, billed as cache traffic), inherits
    the leader's answer, and resumes when that response lands.  Counted
    by [p2pindex_engine_coalesced_total]; the in-flight and wait-queue
    depths are exported as [p2pindex_engine_in_flight] and
    [p2pindex_engine_wait_queue].  With a hot-spot workload and enough
    concurrency this strictly reduces normal traffic per query (the
    paper's Fig. 15 load concentration is what makes identical probes
    overlap). *)

type report = {
  base : Runner.report;  (** Everything the sequential report carries. *)
  concurrency : int;
  coalesce : bool;
  coalesced : int;  (** Probes that rode another probe's response. *)
  session_latency : Stdx.Stats.Summary.t;
      (** Arrival-to-completion virtual seconds per session (empty at
          concurrency 1: sequential sessions occupy no queueing time). *)
  peak_in_flight : int;  (** High-water mark of concurrently held slots. *)
}

val run :
  ?events:Workload.Query_gen.event list ->
  ?metrics:Obs.Metrics.t ->
  ?tracer:Obs.Trace.t ->
  ?phases:Obs.Phase.t ->
  ?concurrency:int ->
  ?coalesce:bool ->
  Runner.config ->
  report
(** [run config] with the defaults ([concurrency = 1], [coalesce =
    false]) is exactly [Runner.run config], wrapped.  [?events],
    [?metrics], [?tracer] and [?phases] behave as in {!Runner.run}; in
    concurrent mode the tracer records one trace per scheduling quantum
    rather than per session, since sessions interleave, and the profiled
    "walk" phase accumulates per quantum.
    @raise Invalid_argument on a bad config (as {!Runner.run}), on
    [concurrency < 1], or on [coalesce] without [concurrency > 1] —
    coalescing needs overlapping sessions to have anything to merge. *)

(** Dense int-id arenas: flat column storage for per-node hot state.

    The simulation's hot paths index per-node state by small dense
    integers (node ids, cache-entry ids, heap slots).  Records-of-
    hashtables put every such datum behind a pointer and a hash; at
    million-node scale the pointer chasing and the per-entry boxing
    dominate.  This module is the flat alternative: state lives in
    typed columns ([int array] / [float array] / packed [Bytes] bits /
    a dummy-backed slot array), addressed by an id handed out by a
    free-list allocator.

    Two access modes: {e checked} columns validate indexes and raise
    [Invalid_argument]; {e unchecked} columns use unsafe array access on
    the hot path.  The mode is fixed per structure at creation — tests
    run checked, the simulation engines run unchecked.

    Columns can live standalone (fixed or explicitly grown), or be
    attached to an {!t} allocator, which grows every attached column in
    lock-step when it runs out of ids. *)

(** {1 Standalone columns} *)

(** A packed bitset over [Bytes] — 1 bit per index. *)
module Bitset : sig
  type t

  val create : ?checked:bool -> len:int -> default:bool -> unit -> t
  (** [len] bits, all set to [default].  [checked] defaults to [true].
      @raise Invalid_argument when [len < 0]. *)

  val length : t -> int

  val get : t -> int -> bool
  (** @raise Invalid_argument out of range, when the bitset is checked;
      undefined behavior otherwise. *)

  val set : t -> int -> bool -> unit

  val count : t -> int
  (** Number of set bits (population count; O(len/8)). *)
end

(** A growable int buffer with an explicit length — the reusable
    scratch space replica sets are resolved into, replacing the
    [int list] a resolver would otherwise allocate per lookup. *)
module Int_buf : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val clear : t -> unit

  val push : t -> int -> unit
  (** Append, growing the backing array as needed (amortized O(1),
      allocation-free while within capacity). *)

  val get : t -> int -> int
  (** @raise Invalid_argument when [i] is outside [\[0, length)]. *)

  val unsafe_get : t -> int -> int

  val to_list : t -> int list
  (** The buffer's contents as a fresh list (cold paths and tests). *)
end

(** {1 The id allocator} *)

type t
(** Hands out dense int ids, recycling freed ones LIFO.  Attached
    columns (below) are grown whenever the arena's capacity doubles. *)

val create : ?checked:bool -> ?capacity:int -> unit -> t
(** An empty arena.  [checked] (default [false]) fixes the access mode
    of every column attached to it; [capacity] (default 16) is the
    initial id space.
    @raise Invalid_argument when [capacity < 1]. *)

val of_dense : ?checked:bool -> count:int -> unit -> t
(** An arena with ids [0 .. count-1] pre-allocated — the shape of a
    fixed node population, where the id {e is} the node index.
    @raise Invalid_argument when [count < 1]. *)

val capacity : t -> int
val live : t -> int
(** Ids currently allocated. *)

val checked : t -> bool

val alloc : t -> int
(** A fresh id: the most recently freed one if any (LIFO reuse, so hot
    ids stay cache-warm), else the next dense id, growing every
    attached column when the id space is exhausted. *)

val free : t -> int -> unit
(** Return an id to the free list.  Double-frees are not detected in
    unchecked mode; checked arenas raise.
    @raise Invalid_argument when out of range or (checked mode) not
    currently allocated. *)

val in_use : t -> int -> bool
(** Whether the id is currently allocated (O(1) in checked mode,
    O(free-list length) otherwise — meant for tests and assertions). *)

type arena = t
(** Alias for use inside column signatures, where [t] is shadowed. *)

(** {1 Attached columns}

    One value per arena id; reads and writes of ids outside the arena's
    capacity are invalid.  In checked mode every access validates the
    index against the arena's capacity. *)

module Int_col : sig
  type col

  val make : t -> default:int -> col
  val get : col -> int -> int
  val set : col -> int -> int -> unit
  val add : col -> int -> int -> unit
  (** [add c i d] is [set c i (get c i + d)] in one bounds check. *)

  val to_array : col -> len:int -> int array
  (** The first [len] values, as a fresh array. *)
end

module Float_col : sig
  type col

  val make : t -> default:float -> col
  val get : col -> int -> float
  val set : col -> int -> float -> unit
end

(** A dummy-backed ['a] column: slots hold [dummy] until written, and
    {!clear} restores it so popped state is never retained.  The dummy
    replaces the [option] boxing a ['a option array] would pay per
    write. *)
module Slots : sig
  type 'a t

  val create : ?checked:bool -> ?capacity:int -> dummy:'a -> unit -> 'a t
  (** Standalone slot column (e.g. an event heap's payloads). *)

  val make : arena -> dummy:'a -> 'a t
  (** Arena-attached slot column. *)

  val ensure : 'a t -> int -> unit
  (** Grow (standalone columns only) so index [i] is addressable. *)

  val get : 'a t -> int -> 'a
  val set : 'a t -> int -> 'a -> unit

  val clear : 'a t -> int -> unit
  (** Reset slot [i] to the dummy. *)
end

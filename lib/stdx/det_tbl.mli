(** Deterministic views over [Stdlib.Hashtbl].

    [Hashtbl.fold] and [Hashtbl.iter] visit bindings in bucket order, which
    depends on insertion history and the hash function — two tables holding
    the same bindings can be visited in different orders.  Any fold that
    builds an ordered result (a list, a report, a float sum) from that order
    silently breaks the repo's byte-for-byte determinism contract.  The
    functions here give call sites a canonical replacement: collect, sort by
    key, then fold/iterate in ascending key order.

    All functions assume the [Hashtbl.replace] discipline (at most one
    binding per key), which every table in this codebase follows.  [compare]
    defaults to the polymorphic [Stdlib.compare]; pass the key module's own
    comparison when one exists (e.g. [~compare:Key.compare]).

    The linter's D2 rule ([unordered-iteration], see [lib/lint]) flags
    order-sensitive [Hashtbl.fold]/[iter] call sites and points them here. *)

val sorted_keys : ?compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** The table's keys in ascending order. *)

val sorted_bindings :
  ?compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** The table's bindings, sorted by key in ascending order. *)

val fold_sorted :
  ?compare:('k -> 'k -> int) ->
  ('k -> 'v -> 'acc -> 'acc) ->
  ('k, 'v) Hashtbl.t ->
  'acc ->
  'acc
(** [fold_sorted f tbl init] is [Hashtbl.fold f tbl init] with the bindings
    visited in ascending key order. *)

val iter_sorted :
  ?compare:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter_sorted f tbl] is [Hashtbl.iter f tbl] with the bindings visited in
    ascending key order. *)

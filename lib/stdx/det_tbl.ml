(* Collect in whatever order the buckets give us, then sort by key: the
   only unordered step never escapes this module. *)

let sorted_bindings ?(compare = Stdlib.compare) tbl =
  (* lint: allow unordered-iteration — bindings are sorted by key below *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let sorted_keys ?(compare = Stdlib.compare) tbl =
  (* lint: allow unordered-iteration — keys are sorted (and deduplicated) below *)
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
  |> List.sort_uniq compare

let fold_sorted ?compare f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (sorted_bindings ?compare tbl)

let iter_sorted ?compare f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ?compare tbl)

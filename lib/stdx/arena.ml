(* Flat columns addressed by dense ids.  Checked structures bounds-check
   with [Invalid_argument]; unchecked ones go through unsafe access on
   the hot path — the caller (an engine over a fixed node population)
   owns the range invariant. *)

let bad_index what i len =
  invalid_arg (Printf.sprintf "Arena.%s: index %d out of range [0, %d)" what i len)

(* ------------------------------------------------------------------ *)

module Bitset = struct
  type t = { bits : Bytes.t; len : int; checked : bool }

  (* lint: allow P1 — creation path: runs once per bitset, never per access *)
  let create ?(checked = true) ~len ~default () =
    if len < 0 then invalid_arg "Arena.Bitset.create: negative length";
    let fill = if default then '\xff' else '\x00' in
    { bits = Bytes.make ((len + 7) / 8) fill; len; checked }

  let length t = t.len

  let[@hot] get t i =
    if t.checked && (i < 0 || i >= t.len) then bad_index "Bitset.get" i t.len;
    let byte = Char.code (Bytes.unsafe_get t.bits (i lsr 3)) in
    byte land (1 lsl (i land 7)) <> 0

  let[@hot] set t i v =
    if t.checked && (i < 0 || i >= t.len) then bad_index "Bitset.set" i t.len;
    let pos = i lsr 3 in
    let mask = 1 lsl (i land 7) in
    let byte = Char.code (Bytes.unsafe_get t.bits pos) in
    let byte = if v then byte lor mask else byte land lnot mask in
    Bytes.unsafe_set t.bits pos (Char.unsafe_chr byte)

  let count t =
    let n = ref 0 in
    for i = 0 to t.len - 1 do
      if get t i then incr n
    done;
    !n
end

(* ------------------------------------------------------------------ *)

module Int_buf = struct
  type t = { mutable data : int array; mutable len : int }

  let create ?(capacity = 8) () =
    if capacity < 1 then invalid_arg "Arena.Int_buf.create: capacity must be >= 1";
    { data = Array.make capacity 0; len = 0 }

  let length t = t.len
  let clear t = t.len <- 0

  let[@hot] push t v =
    if t.len = Array.length t.data then begin
      let data = Array.make (2 * t.len) 0 in
      Array.blit t.data 0 data 0 t.len;
      t.data <- data
    end;
    Array.unsafe_set t.data t.len v;
    t.len <- t.len + 1

  let[@hot] get t i =
    if i < 0 || i >= t.len then bad_index "Int_buf.get" i t.len;
    Array.unsafe_get t.data i

  let[@hot] unsafe_get t i = Array.unsafe_get t.data i

  let to_list t = List.init t.len (fun i -> t.data.(i))
end

(* ------------------------------------------------------------------ *)

type t = {
  mutable cap : int;
  mutable next : int; (* dense high-water mark *)
  mutable free : int array; (* LIFO free stack *)
  mutable free_len : int;
  arena_checked : bool;
  mutable used : Bitset.t option; (* checked arenas track liveness exactly *)
  mutable on_grow : (int -> unit) list; (* attached-column resizers *)
}

let create ?(checked = false) ?(capacity = 16) () =
  if capacity < 1 then invalid_arg "Arena.create: capacity must be >= 1";
  {
    cap = capacity;
    next = 0;
    free = Array.make 8 0;
    free_len = 0;
    arena_checked = checked;
    used = (if checked then Some (Bitset.create ~len:capacity ~default:false ()) else None);
    on_grow = [];
  }

let of_dense ?checked ~count () =
  let t = create ?checked ~capacity:count () in
  t.next <- count;
  (match t.used with
  | Some u -> for i = 0 to count - 1 do Bitset.set u i true done
  | None -> ());
  t

let capacity t = t.cap
let live t = t.next - t.free_len
let checked t = t.arena_checked

let rec fire_on_grow fs cap =
  match fs with
  | [] -> ()
  | f :: rest ->
      f cap;
      fire_on_grow rest cap

let grow t =
  let cap = 2 * t.cap in
  t.cap <- cap;
  (match t.used with
  | None -> ()
  | Some u ->
      let grown = Bitset.create ~len:cap ~default:false () in
      for i = 0 to Bitset.length u - 1 do
        if Bitset.get u i then Bitset.set grown i true
      done;
      t.used <- Some grown);
  fire_on_grow t.on_grow cap

let used_bit t i =
  match t.used with None -> true | Some u -> Bitset.get u i

let set_used t i v =
  match t.used with None -> () | Some u -> Bitset.set u i v

let[@hot] alloc t =
  if t.free_len > 0 then begin
    t.free_len <- t.free_len - 1;
    let id = Array.unsafe_get t.free t.free_len in
    set_used t id true;
    id
  end
  else begin
    if t.next = t.cap then grow t;
    let id = t.next in
    t.next <- t.next + 1;
    set_used t id true;
    id
  end

let[@hot] free t id =
  if id < 0 || id >= t.next then bad_index "free" id t.next;
  if t.arena_checked && not (used_bit t id) then
    invalid_arg (Printf.sprintf "Arena.free: id %d is not allocated" id);
  set_used t id false;
  if t.free_len = Array.length t.free then begin
    let data = Array.make (2 * t.free_len) 0 in
    Array.blit t.free 0 data 0 t.free_len;
    t.free <- data
  end;
  Array.unsafe_set t.free t.free_len id;
  t.free_len <- t.free_len + 1

let in_use t id =
  if id < 0 || id >= t.next then false
  else
    match t.used with
    | Some u -> Bitset.get u id
    | None ->
        let rec absent i = i >= t.free_len || (t.free.(i) <> id && absent (i + 1)) in
        absent 0

type arena = t

(* ------------------------------------------------------------------ *)

module Int_col = struct
  type col = { mutable data : int array; default : int; col_checked : bool }

  let make t ~default =
    let c = { data = Array.make t.cap default; default; col_checked = t.arena_checked } in
    t.on_grow <-
      (fun cap ->
        let data = Array.make cap c.default in
        Array.blit c.data 0 data 0 (Array.length c.data);
        c.data <- data)
      :: t.on_grow;
    c

  let[@hot] get c i =
    if c.col_checked && (i < 0 || i >= Array.length c.data) then
      bad_index "Int_col.get" i (Array.length c.data);
    Array.unsafe_get c.data i

  let[@hot] set c i v =
    if c.col_checked && (i < 0 || i >= Array.length c.data) then
      bad_index "Int_col.set" i (Array.length c.data);
    Array.unsafe_set c.data i v

  let[@hot] add c i d =
    if c.col_checked && (i < 0 || i >= Array.length c.data) then
      bad_index "Int_col.add" i (Array.length c.data);
    Array.unsafe_set c.data i (Array.unsafe_get c.data i + d)

  let to_array c ~len = Array.sub c.data 0 len
end

module Float_col = struct
  type col = { mutable data : float array; fdefault : float; fchecked : bool }

  let make t ~default =
    let c = { data = Array.make t.cap default; fdefault = default; fchecked = t.arena_checked } in
    t.on_grow <-
      (fun cap ->
        let data = Array.make cap c.fdefault in
        Array.blit c.data 0 data 0 (Array.length c.data);
        c.data <- data)
      :: t.on_grow;
    c

  let[@hot] get c i =
    if c.fchecked && (i < 0 || i >= Array.length c.data) then
      bad_index "Float_col.get" i (Array.length c.data);
    Array.unsafe_get c.data i

  let[@hot] set c i v =
    if c.fchecked && (i < 0 || i >= Array.length c.data) then
      bad_index "Float_col.set" i (Array.length c.data);
    Array.unsafe_set c.data i v
end

module Slots = struct
  type 'a t = { mutable data : 'a array; dummy : 'a; schecked : bool }

  let create ?(checked = false) ?(capacity = 16) ~dummy () =
    if capacity < 1 then invalid_arg "Arena.Slots.create: capacity must be >= 1";
    { data = Array.make capacity dummy; dummy; schecked = checked }

  let make (t : arena) ~dummy =
    let c = { data = Array.make t.cap dummy; dummy; schecked = t.arena_checked } in
    t.on_grow <-
      (fun cap ->
        let data = Array.make cap c.dummy in
        Array.blit c.data 0 data 0 (Array.length c.data);
        c.data <- data)
      :: t.on_grow;
    c

  let ensure c i =
    let len = Array.length c.data in
    if i >= len then begin
      let cap = ref len in
      while i >= !cap do
        cap := 2 * !cap
      done;
      let data = Array.make !cap c.dummy in
      Array.blit c.data 0 data 0 len;
      c.data <- data
    end

  let[@hot] get c i =
    if c.schecked && (i < 0 || i >= Array.length c.data) then
      bad_index "Slots.get" i (Array.length c.data);
    Array.unsafe_get c.data i

  let[@hot] set c i v =
    if c.schecked && (i < 0 || i >= Array.length c.data) then
      bad_index "Slots.set" i (Array.length c.data);
    Array.unsafe_set c.data i v

  let[@hot] clear c i =
    if c.schecked && (i < 0 || i >= Array.length c.data) then
      bad_index "Slots.clear" i (Array.length c.data);
    Array.unsafe_set c.data i c.dummy
end

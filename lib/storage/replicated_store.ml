module Key = Hashing.Key

type 'v entry = { value : 'v; mutable expires_at : float }

type 'v t = {
  resolver : Dht.Resolver.t;
  replication : int;
  liveness : Dht.Liveness.t;
  clock : unit -> float;
  tables : (Key.t, 'v entry list) Hashtbl.t array;
  directory : (Key.t, unit) Hashtbl.t; (* keys registered and not removed *)
}

let create ~resolver ~replication ?liveness ?(clock = fun () -> 0.0) () =
  if replication < 1 then
    invalid_arg "Replicated_store.create: need at least one replica";
  let n = Dht.Resolver.node_count resolver in
  let liveness =
    match liveness with
    | Some l ->
        if Dht.Liveness.node_count l <> n then
          invalid_arg "Replicated_store.create: liveness covers a different node count";
        l
    | None -> Dht.Liveness.create ~node_count:n
  in
  {
    resolver;
    replication;
    liveness;
    clock;
    tables = Array.init n (fun _ -> Hashtbl.create 64);
    directory = Hashtbl.create 1024;
  }

let replication t = t.replication
let liveness t = t.liveness

let node_of t key = Dht.Resolver.responsible t.resolver key

let replica_nodes t key = Dht.Resolver.replicas t.resolver key t.replication

(* The retry-down-the-replica-list shape is shared with the index layer
   through Rpc.walk_replicas: probe replicas in placement order, first
   acceptable one wins. *)
let first_replica t key ~accept =
  fst
    (Dht.Rpc.walk_replicas ~replicas:(replica_nodes t key)
       ~probe:(fun ~node ~rest:_ -> if accept node then Some node else None))

let live_node t key =
  first_replica t key ~accept:(Dht.Liveness.alive t.liveness)

let expired t entry = entry.expires_at <= t.clock ()

(* Unexpired entries under [key] in [table], pruning expired ones in
   place so tables do not accumulate dead soft state. *)
let live_entries t table key =
  match Hashtbl.find_opt table key with
  | None -> []
  | Some entries -> (
      let kept = List.filter (fun e -> not (expired t e)) entries in
      match kept with
      | [] ->
          Hashtbl.remove table key;
          []
      | _ ->
          if List.compare_lengths kept entries <> 0 then
            Hashtbl.replace table key kept;
          kept)

let values entries = List.map (fun e -> e.value) entries

let insert ?(expires_at = infinity) t ~key v =
  Hashtbl.replace t.directory key ();
  List.iter
    (fun node ->
      if Dht.Liveness.alive t.liveness node then begin
        let table = t.tables.(node) in
        let existing = live_entries t table key in
        Hashtbl.replace table key ({ value = v; expires_at } :: existing)
      end)
    (replica_nodes t key)

let insert_unique ?(expires_at = infinity) ~equal t ~key v =
  let replicas = replica_nodes t key in
  let known_live =
    List.exists
      (fun node ->
        Dht.Liveness.alive t.liveness node
        && List.exists (fun e -> equal e.value v) (live_entries t t.tables.(node) key))
      replicas
  in
  if known_live then begin
    (* Refresh: existing copies take the new expiry; live replicas that
       lost the entry get it back. *)
    List.iter
      (fun node ->
        if Dht.Liveness.alive t.liveness node then begin
          let table = t.tables.(node) in
          let entries = live_entries t table key in
          match List.find_opt (fun e -> equal e.value v) entries with
          | Some e -> e.expires_at <- expires_at
          | None -> Hashtbl.replace table key ({ value = v; expires_at } :: entries)
        end)
      replicas;
    false
  end
  else begin
    insert ~expires_at t ~key v;
    true
  end

let lookup_at t ~node key =
  if Dht.Liveness.alive t.liveness node then
    values (live_entries t t.tables.(node) key)
  else []

let lookup t key =
  match live_node t key with
  | Some node -> values (live_entries t t.tables.(node) key)
  | None -> []

let mem t key =
  List.exists
    (fun node ->
      Dht.Liveness.alive t.liveness node
      && live_entries t t.tables.(node) key <> [])
    (replica_nodes t key)

let available = mem

let remove t ~key pred =
  let removed =
    List.fold_left
      (fun worst node ->
        let table = t.tables.(node) in
        let entries = live_entries t table key in
        let kept, gone = List.partition (fun e -> not (pred e.value)) entries in
        (match kept with
        | [] -> Hashtbl.remove table key
        | _ -> Hashtbl.replace table key kept);
        Stdlib.max worst (List.length gone))
      0 (replica_nodes t key)
  in
  let held_anywhere =
    List.exists (fun node -> Hashtbl.mem t.tables.(node) key) (replica_nodes t key)
  in
  if not held_anywhere then Hashtbl.remove t.directory key;
  removed

let remove_key t key = remove t ~key (fun _ -> true)

let check_node t node =
  if node < 0 || node >= Array.length t.tables then
    invalid_arg "Replicated_store: bad node index"

let fail_node t node =
  check_node t node;
  ignore (Dht.Liveness.fail t.liveness node)

let revive_node t node =
  check_node t node;
  ignore (Dht.Liveness.revive t.liveness node)

let alive t node =
  check_node t node;
  Dht.Liveness.alive t.liveness node

let drop_state t node =
  check_node t node;
  Hashtbl.reset t.tables.(node)

let repair ?(on_restore = fun ~node:_ _ -> ()) t =
  let restored = ref 0 in
  (* Repair order decides which replica serves as the copy source under
     partial failure; walk the directory in key order so runs agree. *)
  Stdx.Det_tbl.iter_sorted ~compare:Key.compare
    (fun key () ->
      let replicas = replica_nodes t key in
      let source =
        first_replica t key ~accept:(fun node ->
            Dht.Liveness.alive t.liveness node
            && live_entries t t.tables.(node) key <> [])
      in
      match source with
      | None -> () (* no live holder: lost until republished *)
      | Some source ->
          let entries = live_entries t t.tables.(source) key in
          List.iter
            (fun node ->
              if
                node <> source
                && Dht.Liveness.alive t.liveness node
                && live_entries t t.tables.(node) key = []
              then begin
                Hashtbl.replace t.tables.(node) key
                  (List.map (fun e -> { e with value = e.value }) entries);
                List.iter
                  (fun e ->
                    incr restored;
                    on_restore ~node e.value)
                  entries
              end)
            replicas)
    t.directory;
  !restored

let key_count t = Hashtbl.length t.directory

let entry_count t =
  Hashtbl.fold
    (fun key () acc ->
      match live_node t key with
      | Some node -> acc + List.length (live_entries t t.tables.(node) key)
      | None -> acc)
    t.directory 0

let total_replica_entries t =
  Array.fold_left
    (fun acc table ->
      Hashtbl.fold
        (fun _key entries n ->
          n + List.length (List.filter (fun e -> not (expired t e)) entries))
        table acc)
    0 t.tables

let keys_per_node t =
  Array.map
    (fun table ->
      Hashtbl.fold
        (fun _key entries n ->
          if List.exists (fun e -> not (expired t e)) entries then n + 1 else n)
        table 0)
    t.tables

let entries_per_node t =
  Array.map
    (fun table ->
      Hashtbl.fold
        (fun _key entries n ->
          n + List.length (List.filter (fun e -> not (expired t e)) entries))
        table 0)
    t.tables

let fold t ~init ~f =
  Stdx.Det_tbl.fold_sorted ~compare:Key.compare
    (fun key () acc ->
      match live_node t key with
      | None -> acc
      | Some node -> (
          match live_entries t t.tables.(node) key with
          | [] -> acc
          | entries -> f acc key (values entries)))
    t.directory init

module Key = Hashing.Key

type 'v entry = { value : 'v; mutable expires_at : float }

(* One replica's view of a key: its live entries, the values removed
   here that other replicas may still hold (tombstones), and the dotted
   version vector ordering this state against the other replicas'.
   States persist after their last entry expires or is removed — the
   version history is what stops a stale rejoined replica from
   resurrecting a deletion — except when a remove finds the key gone
   from every replica, which garbage-collects the key outright. *)
type 'v key_state = {
  mutable entries : 'v entry list;
  mutable tombs : 'v list;
  mutable version : Version.t;
}

type 'v t = {
  resolver : Dht.Resolver.t;
  replication : int;
  read_quorum : int;
  write_quorum : int;
  liveness : Dht.Liveness.t;
  clock : unit -> float;
  tables : (Key.t, 'v key_state) Hashtbl.t array;
  directory : (Key.t, unit) Hashtbl.t; (* keys registered and not removed *)
  on_write_acks : (acks:int -> needed:int -> unit) option;
  scratch : Stdx.Arena.Int_buf.t; (* replica-set resolution buffer *)
}

let create ~resolver ~replication ?read_quorum ?write_quorum ?on_write_acks
    ?liveness ?(clock = fun () -> 0.0) () =
  if replication < 1 then
    invalid_arg "Replicated_store.create: need at least one replica";
  let read_quorum = Option.value ~default:1 read_quorum in
  let write_quorum = Option.value ~default:replication write_quorum in
  if read_quorum < 1 || read_quorum > replication then
    invalid_arg "Replicated_store.create: read_quorum outside [1, replication]";
  if write_quorum < 1 || write_quorum > replication then
    invalid_arg "Replicated_store.create: write_quorum outside [1, replication]";
  let n = Dht.Resolver.node_count resolver in
  let liveness =
    match liveness with
    | Some l ->
        if Dht.Liveness.node_count l <> n then
          invalid_arg "Replicated_store.create: liveness covers a different node count";
        l
    | None -> Dht.Liveness.create ~node_count:n
  in
  {
    resolver;
    replication;
    read_quorum;
    write_quorum;
    liveness;
    clock;
    (* Small initial tables: at million-node scale most replicas hold a
       handful of keys, and 64-bucket tables per node would dominate the
       heap before a single entry lands. *)
    tables = Array.init n (fun _ -> Hashtbl.create 8);
    directory = Hashtbl.create 1024;
    on_write_acks;
    scratch = Stdx.Arena.Int_buf.create ~capacity:(Stdlib.max 1 replication) ();
  }

let replication t = t.replication
let read_quorum t = t.read_quorum
let write_quorum t = t.write_quorum
let liveness t = t.liveness

let node_of t key = Dht.Resolver.responsible t.resolver key

let replica_nodes t key = Dht.Resolver.replicas t.resolver key t.replication

let[@hot] replica_buf t key =
  Dht.Resolver.replicas_into t.resolver key t.replication t.scratch;
  t.scratch

(* The retry-down-the-replica-list shape is shared with the index layer
   through Rpc.walk_replicas: probe replicas in placement order, first
   acceptable one wins. *)
let first_replica t key ~accept =
  fst
    (Dht.Rpc.walk_replicas ~replicas:(replica_nodes t key)
       ~probe:(fun ~node ~rest:_ -> if accept node then Some node else None))

let[@hot] live_node_id t key =
  Dht.Liveness.first_live_buf t.liveness (replica_buf t key)

let live_node t key =
  match live_node_id t key with -1 -> None | node -> Some node

let live_replica_nodes t key =
  List.filter (Dht.Liveness.alive t.liveness) (replica_nodes t key)

let expired t entry = entry.expires_at <= t.clock ()

let state_at t ~node key = Hashtbl.find_opt t.tables.(node) key

let get_state table key =
  match Hashtbl.find_opt table key with
  | Some st -> st
  | None ->
      let st = { entries = []; tombs = []; version = Version.zero } in
      Hashtbl.add table key st;
      st

(* Unexpired entries under [key] in [table], pruning expired ones in
   place so tables do not accumulate dead soft state. *)
let live_entries t table key =
  match Hashtbl.find_opt table key with
  | None -> []
  | Some st ->
      let kept = List.filter (fun e -> not (expired t e)) st.entries in
      if List.compare_lengths kept st.entries <> 0 then st.entries <- kept;
      st.entries

let values entries = List.map (fun e -> e.value) entries

let version_at t ~node key =
  match state_at t ~node key with Some st -> st.version | None -> Version.zero

let live_merged_version t key =
  List.fold_left
    (fun acc node ->
      if Dht.Liveness.alive t.liveness node then
        Version.merge acc (version_at t ~node key)
      else acc)
    Version.zero (replica_nodes t key)

let record_acks t ~acks =
  match t.on_write_acks with
  | None -> ()
  | Some f -> f ~acks ~needed:t.write_quorum

(* The version a write carries: the coordinator (first live replica)
   bumps its own dot past everything it has seen, so the write dominates
   every state it lands on — and is concurrent with states holding
   events the coordinator missed. *)
let write_version t ~coordinator key =
  Version.bump (version_at t ~node:coordinator key) ~actor:coordinator

let insert ?(expires_at = infinity) t ~key v =
  Hashtbl.replace t.directory key ();
  let live = live_replica_nodes t key in
  (match live with
  | [] -> ()
  | coordinator :: _ ->
      let vv = write_version t ~coordinator key in
      List.iter
        (fun node ->
          let table = t.tables.(node) in
          let existing = live_entries t table key in
          let st = get_state table key in
          st.entries <- { value = v; expires_at } :: existing;
          st.tombs <- List.filter (fun tv -> tv <> v) st.tombs;
          st.version <- Version.merge st.version vv)
        live);
  record_acks t ~acks:(List.length live)

let insert_unique ?(expires_at = infinity) ~equal t ~key v =
  let replicas = replica_nodes t key in
  let known_live =
    List.exists
      (fun node ->
        Dht.Liveness.alive t.liveness node
        && List.exists (fun e -> equal e.value v) (live_entries t t.tables.(node) key))
      replicas
  in
  if known_live then begin
    (* Refresh: existing copies take the new expiry; live replicas that
       lost the entry get it back. *)
    let live = live_replica_nodes t key in
    let vv = write_version t ~coordinator:(List.hd live) key in
    List.iter
      (fun node ->
        let table = t.tables.(node) in
        let entries = live_entries t table key in
        let st = get_state table key in
        (match List.find_opt (fun e -> equal e.value v) entries with
        | Some e -> e.expires_at <- expires_at
        | None -> st.entries <- { value = v; expires_at } :: entries);
        st.tombs <- List.filter (fun tv -> not (equal tv v)) st.tombs;
        st.version <- Version.merge st.version vv)
      live;
    record_acks t ~acks:(List.length live);
    false
  end
  else begin
    insert ~expires_at t ~key v;
    true
  end

let lookup_at t ~node key =
  if Dht.Liveness.alive t.liveness node then
    values (live_entries t t.tables.(node) key)
  else []

let read_at t ~node key =
  if not (Dht.Liveness.alive t.liveness node) then None
  else Some (values (live_entries t t.tables.(node) key), version_at t ~node key)

let lookup t key =
  match live_node_id t key with
  | -1 -> []
  | node -> values (live_entries t t.tables.(node) key)

let mem t key =
  List.exists
    (fun node ->
      Dht.Liveness.alive t.liveness node
      && live_entries t t.tables.(node) key <> [])
    (replica_nodes t key)

let available = mem

let remove t ~key pred =
  match live_replica_nodes t key with
  | [] -> 0
  | (coordinator :: _) as live ->
      let vv = write_version t ~coordinator key in
      let removed =
        List.fold_left
          (fun worst node ->
            let table = t.tables.(node) in
            let entries = live_entries t table key in
            let st = get_state table key in
            let kept, gone = List.partition (fun e -> not (pred e.value)) entries in
            st.entries <- kept;
            List.iter
              (fun e ->
                if not (List.exists (fun tv -> tv = e.value) st.tombs) then
                  st.tombs <- st.tombs @ [ e.value ])
              gone;
            st.version <- Version.merge st.version vv;
            Stdlib.max worst (List.length gone))
          0 live
      in
      record_acks t ~acks:(List.length live);
      let held_anywhere =
        List.exists
          (fun node ->
            match state_at t ~node key with
            | Some st -> st.entries <> []
            | None -> false)
          (replica_nodes t key)
      in
      (* Nothing left on any replica, dead ones included: the tombstones
         have no stale copy to fence off, so the key can be collected
         outright — exactly the pre-quorum final state. *)
      if not held_anywhere then begin
        List.iter (fun node -> Hashtbl.remove t.tables.(node) key) (replica_nodes t key);
        Hashtbl.remove t.directory key
      end;
      removed

let remove_key t key = remove t ~key (fun _ -> true)

let check_node t node =
  if node < 0 || node >= Array.length t.tables then
    invalid_arg "Replicated_store: bad node index"

let fail_node t node =
  check_node t node;
  ignore (Dht.Liveness.fail t.liveness node)

let revive_node t node =
  check_node t node;
  ignore (Dht.Liveness.revive t.liveness node)

let alive t node =
  check_node t node;
  Dht.Liveness.alive t.liveness node

let drop_state t node =
  check_node t node;
  Hashtbl.reset t.tables.(node)

(* ------------------------------------------------------------------ *)
(* Reconciliation: the least upper bound of two replica states.  When
   one side's version dominates, its content wins wholesale; otherwise
   (equal versions over diverged content, or genuinely concurrent
   histories) entries are unioned and the union is fenced by the merged
   tombstone set, so a removal observed on either side sticks. *)

let clone_entries entries = List.map (fun e -> { e with value = e.value }) entries

let merge_states a b =
  let version = Version.merge a.version b.version in
  match Version.compare a.version b.version with
  | Version.Dominates -> { entries = clone_entries a.entries; tombs = a.tombs; version }
  | Version.Dominated -> { entries = clone_entries b.entries; tombs = b.tombs; version }
  | Version.Eq | Version.Concurrent ->
      let tombs =
        a.tombs @ List.filter (fun v -> not (List.exists (fun tv -> tv = v) a.tombs)) b.tombs
      in
      let entries =
        clone_entries a.entries
        @ List.filter
            (fun e -> not (List.exists (fun e' -> e'.value = e.value) a.entries))
            (clone_entries b.entries)
      in
      let entries =
        List.filter (fun e -> not (List.exists (fun tv -> tv = e.value) tombs)) entries
      in
      { entries; tombs; version }

let state_equal a b =
  Version.equal a.version b.version
  && List.equal (fun x y -> x.value = y.value && x.expires_at = y.expires_at)
       a.entries b.entries
  && a.tombs = b.tombs

let empty_state () = { entries = []; tombs = []; version = Version.zero }

let quorum_read t ~key ~nodes =
  let states =
    List.filter_map
      (fun node ->
        if Dht.Liveness.alive t.liveness node then begin
          ignore (live_entries t t.tables.(node) key : 'v entry list);
          Some
            ( node,
              match state_at t ~node key with
              | Some st -> st
              | None -> empty_state () )
        end
        else None)
      nodes
  in
  match states with
  | [] -> ([], Version.zero, [])
  | (_, first) :: rest ->
      let merged = List.fold_left (fun acc (_, st) -> merge_states acc st) first rest in
      let repairs =
        List.filter_map
          (fun (node, st) ->
            if state_equal st merged then None
            else begin
              let gained =
                List.filter
                  (fun e ->
                    not (List.exists (fun e' -> e'.value = e.value) st.entries))
                  merged.entries
                |> List.map (fun e -> e.value)
              in
              let target = get_state t.tables.(node) key in
              target.entries <- clone_entries merged.entries;
              target.tombs <- merged.tombs;
              target.version <- merged.version;
              Some (node, gained)
            end)
          states
      in
      (values merged.entries, merged.version, repairs)

let sync_key t ~key ~nodes =
  let _, _, repairs = quorum_read t ~key ~nodes in
  repairs

(* ------------------------------------------------------------------ *)
(* Maintenance surface: what the {!Anti_entropy} pass (and the repair
   walk below) need to see of the per-replica states. *)

let sorted_keys t = Stdx.Det_tbl.sorted_keys ~compare:Key.compare t.directory

let render_state t ~node key ~render =
  ignore (live_entries t t.tables.(node) key : 'v entry list);
  match state_at t ~node key with
  | None -> ""
  | Some st ->
      let entry e = Printf.sprintf "%s@%h" (render e.value) e.expires_at in
      String.concat ";" (List.map entry st.entries)
      ^ "!"
      ^ String.concat ";" (List.map render st.tombs)
      ^ "!"
      ^ Version.to_string st.version

let entry_values t ~node key =
  match state_at t ~node key with Some st -> values st.entries | None -> []

let repair ?(on_restore = fun ~node:_ _ -> ()) t =
  let restored = ref 0 in
  (* Repair order decides which replica serves as the copy source under
     partial failure; walk the directory in key order so runs agree. *)
  Stdx.Det_tbl.iter_sorted ~compare:Key.compare
    (fun key () ->
      let replicas = replica_nodes t key in
      let source =
        first_replica t key ~accept:(fun node ->
            Dht.Liveness.alive t.liveness node
            && live_entries t t.tables.(node) key <> [])
      in
      match source with
      | None -> () (* no live holder: lost until republished *)
      | Some source ->
          let src = Hashtbl.find t.tables.(source) key in
          List.iter
            (fun node ->
              if
                node <> source
                && Dht.Liveness.alive t.liveness node
                && live_entries t t.tables.(node) key = []
              then begin
                (* An empty state whose version dominates the source's is
                   a tombstone for writes the source slept through;
                   restoring from it would resurrect the deletion. *)
                let target_newer =
                  match state_at t ~node key with
                  | None -> false
                  | Some st -> Version.compare st.version src.version = Version.Dominates
                in
                if not target_newer then begin
                  let st = get_state t.tables.(node) key in
                  st.entries <- clone_entries src.entries;
                  st.tombs <- src.tombs;
                  st.version <- Version.merge st.version src.version;
                  List.iter
                    (fun e ->
                      incr restored;
                      on_restore ~node e.value)
                    src.entries
                end
              end)
            replicas)
    t.directory;
  !restored

let key_count t = Hashtbl.length t.directory

let entry_count t =
  Hashtbl.fold
    (fun key () acc ->
      match live_node t key with
      | Some node -> acc + List.length (live_entries t t.tables.(node) key)
      | None -> acc)
    t.directory 0

let total_replica_entries t =
  Array.fold_left
    (fun acc table ->
      Hashtbl.fold
        (fun _key st n ->
          n + List.length (List.filter (fun e -> not (expired t e)) st.entries))
        table acc)
    0 t.tables

let keys_per_node t =
  Array.map
    (fun table ->
      Hashtbl.fold
        (fun _key st n ->
          if List.exists (fun e -> not (expired t e)) st.entries then n + 1 else n)
        table 0)
    t.tables

let entries_per_node t =
  Array.map
    (fun table ->
      Hashtbl.fold
        (fun _key st n ->
          n + List.length (List.filter (fun e -> not (expired t e)) st.entries))
        table 0)
    t.tables

let fold t ~init ~f =
  Stdx.Det_tbl.fold_sorted ~compare:Key.compare
    (fun key () acc ->
      match live_node t key with
      | None -> acc
      | Some node -> (
          match live_entries t t.tables.(node) key with
          | [] -> acc
          | entries -> f acc key (values entries)))
    t.directory init

(** Replicated, soft-state DHT storage with quorum bookkeeping.

    Section IV-D: because index entries are regular DHT data, "they can
    benefit from the mechanisms implemented by the DHT substrate for
    increasing availability and scalability, such as data replication".
    This store writes every key to the [replication] nodes the resolver
    designates (the primary and its ring successors, Chord/DHash-style) and
    reads from live replicas, so index paths survive node failures without
    any change to the index layer.

    Under churn the store is {e soft state}: every entry carries an expiry
    (virtual time, from the [clock] passed at creation), publishers refresh
    entries by re-inserting them, an abrupt failure drops a node's contents
    ({!drop_state}), and a {!repair} pass re-homes entries onto live
    replicas that lost them.  With the defaults — a private all-alive
    liveness set, a constant clock and infinite TTLs — the store behaves
    exactly like the static {!Store} with [replication = 1].

    Every key additionally carries, per replica, a dotted {!Version}
    vector and a tombstone set.  Writes reach the {e live} replicas only
    (the coordinator — the first live replica — bumps its own dot, so a
    replica that slept through the write is left causally behind);
    removes leave tombstoned states behind so neither {!repair} nor the
    {!Anti_entropy} pass can resurrect a deletion from a stale copy.
    With every replica alive the version machinery is invisible: entry
    lists, traffic and the final table shapes are exactly the
    pre-quorum ones. *)

type 'v t

val create :
  resolver:Dht.Resolver.t ->
  replication:int ->
  ?read_quorum:int ->
  ?write_quorum:int ->
  ?on_write_acks:(acks:int -> needed:int -> unit) ->
  ?liveness:Dht.Liveness.t ->
  ?clock:(unit -> float) ->
  unit ->
  'v t
(** [liveness] (default: a private set with every node alive) is shared by
    reference: the churn driver fails/revives nodes there and every store
    built over it sees the change.  [clock] (default: constantly [0.0])
    supplies the virtual time used to judge entry expiry.

    [read_quorum] (default 1) and [write_quorum] (default [replication])
    are the R/W of the Dynamo-style N/R/W model; the store records them
    and counts write acknowledgements, while the read-side quorum walk
    lives in the index layer (which owns the RPC billing).
    [on_write_acks] fires once per coordinated write with the number of
    live replicas that took the write and the configured [write_quorum],
    so the caller can count under-acknowledged writes.
    @raise Invalid_argument when [replication < 1], a quorum falls
    outside [1, replication], or [liveness] covers a different node
    count than the resolver. *)

val replication : 'v t -> int
val read_quorum : 'v t -> int
val write_quorum : 'v t -> int
val liveness : 'v t -> Dht.Liveness.t

val node_of : 'v t -> Hashing.Key.t -> int
(** The primary node responsible for a key. *)

val replica_nodes : 'v t -> Hashing.Key.t -> int list
(** The key's full replica set (primary first), dead or alive. *)

val replica_buf : 'v t -> Hashing.Key.t -> Stdx.Arena.Int_buf.t
(** The same replica set, resolved into the store's scratch buffer —
    the allocation-free variant the lookup hot path walks.  The buffer
    is shared per store: it stays valid until the next [replica_buf] /
    [live_node_id] call on this store, so walk it before resolving
    another key. *)

val live_node : 'v t -> Hashing.Key.t -> int option
(** The acting primary: the first live node of the replica set. *)

val live_node_id : 'v t -> Hashing.Key.t -> int
(** {!live_node} without the option: the acting primary's index, or
    [-1] when the whole replica set is dead. *)

val insert : ?expires_at:float -> 'v t -> key:Hashing.Key.t -> 'v -> unit
(** Register one more entry under [key] (duplicates allowed; most recent
    first) on every {e live} replica node.  [expires_at] defaults to
    [infinity] (hard state). *)

val insert_unique :
  ?expires_at:float ->
  equal:('v -> 'v -> bool) ->
  'v t ->
  key:Hashing.Key.t ->
  'v ->
  bool
(** Like {!insert} but a refresh when an [equal] entry is already present
    on some live replica: the existing copies take the new [expires_at]
    and live replicas that lost the entry get it back.  Returns whether
    the entry was genuinely new. *)

val lookup : 'v t -> Hashing.Key.t -> 'v list
(** Unexpired entries from the acting primary (the first live replica);
    [] when the key is unknown there or every replica is down. *)

val lookup_at : 'v t -> node:int -> Hashing.Key.t -> 'v list
(** One replica's unexpired entries; [] when that node is dead or does
    not hold the key.  The index layer drives its bounded retry loop with
    this, billing each attempt. *)

val read_at : 'v t -> node:int -> Hashing.Key.t -> ('v list * Version.t) option
(** Like {!lookup_at} but versioned: the replica's unexpired entries and
    its version vector for the key; [None] when the node is dead. *)

val version_at : 'v t -> node:int -> Hashing.Key.t -> Version.t
(** The replica's version vector for the key ({!Version.zero} when it
    holds no state), dead or alive — an oracle view, not a message. *)

val live_merged_version : 'v t -> Hashing.Key.t -> Version.t
(** Least upper bound of the key's versions across every {e live}
    replica — what a read consulting all of them would see.  An oracle
    for staleness accounting; performs no messaging. *)

val quorum_read :
  'v t ->
  key:Hashing.Key.t ->
  nodes:int list ->
  'v list * Version.t * (int * 'v list) list
(** Reconcile the listed replicas' states of [key] (dead ones are
    skipped): returns the merged unexpired values, the merged version,
    and — having overwritten every diverged consulted replica with the
    merged state (read repair) — the per-node list of values each
    repaired replica gained, for traffic billing.  Dominance decides the
    merge; equal-version divergence and concurrent histories take the
    entry union fenced by the merged tombstone set. *)

val sync_key : 'v t -> key:Hashing.Key.t -> nodes:int list -> (int * 'v list) list
(** {!quorum_read} for its repair side effect only: converge the listed
    replicas on the key's merged state and report what each gained. *)

val mem : 'v t -> Hashing.Key.t -> bool
(** Is some live replica holding an unexpired entry for the key? *)

val available : 'v t -> Hashing.Key.t -> bool
(** Alias of {!mem} — the availability measure of the Section IV-D
    ablation. *)

val remove : 'v t -> key:Hashing.Key.t -> ('v -> bool) -> int
(** Remove matching entries from every {e live} replica (a write, like
    {!insert}: dead replicas keep their copies and are fenced off by the
    tombstones left behind); returns the maximum number removed on any
    single live replica (the logical count), 0 when every replica is
    down.  When afterwards no replica — dead ones included — holds an
    entry, the key and its tombstones are collected outright. *)

val remove_key : 'v t -> Hashing.Key.t -> int
(** Remove the key everywhere; returns the logical entry count removed. *)

val fail_node : 'v t -> int -> unit
(** Mark a node as failed: its replicas stop answering but its contents
    are kept, as a paused process would (the static ablation's model). *)

val revive_node : 'v t -> int -> unit

val alive : 'v t -> int -> bool

val drop_state : 'v t -> int -> unit
(** Forget everything a node stored — an abrupt failure losing RAM state.
    Combine with {!fail_node} (or the shared liveness) for crash-stop
    churn; the node rejoins empty and reacquires entries through
    republication and {!repair}. *)

val repair : ?on_restore:(node:int -> 'v -> unit) -> 'v t -> int
(** Full-state re-homing: for every key, copy the entries of the first
    live replica that still holds it onto live replicas that lost them (a
    rejoined node, a node that missed the insert while down) — unless
    the target's version dominates the source's, i.e. the "lost" state
    is really a tombstone for a remove the source slept through.  Keys
    with no live holder are left for republication.  [on_restore] fires
    once per copied entry (for traffic billing); returns the number of
    entries re-homed.  For digest-based divergence repair see
    {!Anti_entropy}. *)

val key_count : 'v t -> int
(** Distinct keys registered and not removed (counted once, not per
    replica). *)

val entry_count : 'v t -> int
(** Logical entries: unexpired entries on the acting primary of each key,
    summed. *)

val total_replica_entries : 'v t -> int
(** Unexpired entries across all replicas — the storage cost of
    replication. *)

val keys_per_node : 'v t -> int array
(** Distinct keys with unexpired entries physically held by each node. *)

val entries_per_node : 'v t -> int array
(** Unexpired entries physically held by each node. *)

val fold :
  'v t -> init:'acc -> f:('acc -> Hashing.Key.t -> 'v list -> 'acc) -> 'acc
(** Fold over every key with the acting primary's unexpired entries
    (iteration order unspecified); keys with no live holder are
    skipped. *)

(** {1 Maintenance surface}

    What the {!Anti_entropy} pass reads of the per-replica states; not a
    general-purpose API. *)

val sorted_keys : 'v t -> Hashing.Key.t list
(** Every registered key, in {!Hashing.Key.compare} order. *)

val render_state : 'v t -> node:int -> Hashing.Key.t -> render:('v -> string) -> string
(** Canonical rendering of one replica's state for a key — entries (with
    expiries), tombstones and version; [""] when the node holds no
    state.  Two replicas render identically iff their states are
    identical, which is what the anti-entropy digests hash. *)

val entry_values : 'v t -> node:int -> Hashing.Key.t -> 'v list
(** The raw entry values a node physically holds for the key (expiry not
    consulted) — the volume a full-state exchange would ship. *)

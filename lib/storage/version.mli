(** Dotted version vectors ordering replica states of one key.

    A vector maps each writing actor (a node id) to the number of write
    events it coordinated.  Vectors are kept in a sorted normal form, so
    structural equality coincides with {!equal} and every operation is
    deterministic.  {!merge} is the least upper bound (pointwise max):
    commutative, associative and idempotent, which is what lets
    anti-entropy reconcile replicas in any exchange order. *)

type t

val zero : t
(** The empty history: no writes observed. *)

val well_formed : t -> bool
(** Internal invariant — sorted strictly by actor, all counters
    positive.  Exposed for the property tests. *)

val counter : t -> actor:int -> int
(** The actor's component, [0] when absent. *)

val bump : t -> actor:int -> t
(** Record one more write event coordinated by [actor].
    @raise Invalid_argument on a negative actor id. *)

val merge : t -> t -> t
(** Least upper bound of the two histories. *)

type relation = Eq | Dominates | Dominated | Concurrent

val compare : t -> t -> relation
(** Causal order: [Dominates] when the first vector has seen every event
    of the second plus at least one more, [Concurrent] when each side
    has events the other lacks. *)

val equal : t -> t -> bool

val dots : t -> int
(** Number of actors with a nonzero component (the vector's wire
    size driver). *)

val dominates_or_eq : t -> t -> bool
(** [compare a b] is [Eq] or [Dominates] — "a is at least as new". *)

val to_string : t -> string
(** Canonical rendering ["{actor:count,...}"]; equal vectors render
    identically, which the anti-entropy digests rely on. *)

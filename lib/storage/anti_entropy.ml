module Key = Hashing.Key
module Rstore = Replicated_store

(* One digest message: a header plus the 20-byte SHA-1. *)
let digest_message_bytes = 48 + 20

type stats = {
  exchanges : int;
  digest_matches : int;
  digest_bytes : int;
  keys_shipped : int;
  entries_shipped : int;
  shipped_bytes : int;
  full_state_bytes : int;
}

let zero_stats =
  {
    exchanges = 0;
    digest_matches = 0;
    digest_bytes = 0;
    keys_shipped = 0;
    entries_shipped = 0;
    shipped_bytes = 0;
    full_state_bytes = 0;
  }

let add a b =
  {
    exchanges = a.exchanges + b.exchanges;
    digest_matches = a.digest_matches + b.digest_matches;
    digest_bytes = a.digest_bytes + b.digest_bytes;
    keys_shipped = a.keys_shipped + b.keys_shipped;
    entries_shipped = a.entries_shipped + b.entries_shipped;
    shipped_bytes = a.shipped_bytes + b.shipped_bytes;
    full_state_bytes = a.full_state_bytes + b.full_state_bytes;
  }

let digest bindings = Hashing.Sha1.digest_string (String.concat "\n" bindings)

let range_bindings store ~node ~keys ~render =
  List.map
    (fun key ->
      Key.to_hex key ^ "=" ^ Rstore.render_state store ~node key ~render)
    keys

let range_digest store ~node ~keys ~render =
  digest (range_bindings store ~node ~keys ~render)

(* Group the directory's keys by their replica set.  Keys sharing a
   replica list form one range a coordinator/peer pair can summarize
   with a single digest; iterating buckets in replica-list order (and
   keys in key order inside each) keeps the whole pass deterministic. *)
let buckets store =
  let tbl : (int list, Key.t list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun key ->
      let replicas = Rstore.replica_nodes store key in
      let prev = match Hashtbl.find_opt tbl replicas with Some l -> l | None -> [] in
      Hashtbl.replace tbl replicas (key :: prev))
    (Rstore.sorted_keys store);
  Stdx.Det_tbl.fold_sorted
    ~compare:(List.compare Int.compare)
    (fun replicas keys acc -> (replicas, List.rev keys) :: acc)
    tbl []
  |> List.rev

let run store ~render ~entry_bytes ?(on_exchange = fun ~peer:_ ~bytes:_ -> ())
    ?(on_ship = fun ~node:_ ~bytes:_ -> ()) () =
  let liveness = Rstore.liveness store in
  List.fold_left
    (fun acc (replicas, keys) ->
      match List.filter (Dht.Liveness.alive liveness) replicas with
      | [] | [ _ ] -> acc (* nobody to exchange with *)
      | coordinator :: peers ->
          List.fold_left
            (fun acc peer ->
              (* Push-pull digest exchange: the coordinator sends its
                 range digest, the peer answers with its own. *)
              let bytes = 2 * digest_message_bytes in
              on_exchange ~peer ~bytes;
              let acc =
                { acc with exchanges = acc.exchanges + 1; digest_bytes = acc.digest_bytes + bytes }
              in
              (* What a digestless full-state push-pull would have moved
                 on this same divergence: both sides' entire ranges. *)
              let full =
                List.fold_left
                  (fun sum key ->
                    List.fold_left
                      (fun sum v -> sum + entry_bytes v)
                      sum
                      (Rstore.entry_values store ~node:coordinator key
                      @ Rstore.entry_values store ~node:peer key))
                  0 keys
              in
              let acc = { acc with full_state_bytes = acc.full_state_bytes + full } in
              let dc = range_digest store ~node:coordinator ~keys ~render in
              let dp = range_digest store ~node:peer ~keys ~render in
              if String.equal dc dp then
                { acc with digest_matches = acc.digest_matches + 1 }
              else
                List.fold_left
                  (fun acc key ->
                    let sc = Rstore.render_state store ~node:coordinator key ~render in
                    let sp = Rstore.render_state store ~node:peer key ~render in
                    if String.equal sc sp then acc
                    else begin
                      let repairs =
                        Rstore.sync_key store ~key ~nodes:[ coordinator; peer ]
                      in
                      let shipped, entries =
                        List.fold_left
                          (fun (bytes, entries) (node, gained) ->
                            let b =
                              List.fold_left (fun b v -> b + entry_bytes v) 0 gained
                            in
                            if b > 0 then on_ship ~node ~bytes:b;
                            (bytes + b, entries + List.length gained))
                          (0, 0) repairs
                      in
                      {
                        acc with
                        keys_shipped = acc.keys_shipped + 1;
                        entries_shipped = acc.entries_shipped + entries;
                        shipped_bytes = acc.shipped_bytes + shipped;
                      }
                    end)
                  acc keys)
            acc peers)
    zero_stats (buckets store)

(** Digest-based anti-entropy over a {!Replicated_store}.

    The {!Replicated_store.repair} walk only re-homes keys a replica
    lost {e entirely}; a replica that slept through a refresh or a
    remove keeps serving its stale copy.  This pass reconciles such
    divergence the way DHT deployments do, without shipping full state:
    the directory's keys are grouped into ranges by replica set, the
    first live replica of each range (the coordinator) exchanges a
    single SHA-1 digest of its range with every other live replica, and
    only when the digests disagree are the diverged keys compared and
    merged ({!Replicated_store.sync_key} — dominance decides, tombstones
    fence removals, so a deletion can never be resurrected).

    Digests are computed over the canonical
    {!Replicated_store.render_state} bindings in ascending key order
    (via [Stdx.Det_tbl]), so two replicas digest equal iff their range
    states are identical, and the whole pass is deterministic. *)

type stats = {
  exchanges : int;  (** Digest push-pulls performed (one per live pair). *)
  digest_matches : int;  (** Exchanges where the digests agreed. *)
  digest_bytes : int;  (** Bytes spent on digest messages. *)
  keys_shipped : int;  (** Diverged keys that were reconciled. *)
  entries_shipped : int;  (** Entries moved to converge them. *)
  shipped_bytes : int;  (** Bytes of those entries. *)
  full_state_bytes : int;
      (** What a digestless full-state push-pull would have moved on the
          same divergence — both sides' entire ranges, every exchange.
          The digest scheme's win is
          [digest_bytes + shipped_bytes < full_state_bytes]. *)
}

val zero_stats : stats

val add : stats -> stats -> stats
(** Componentwise sum (aggregate over several passes or stores). *)

val digest : string list -> Hashing.Sha1.digest
(** Digest of a canonical binding list.  Equal lists digest equally;
    distinct lists digest distinctly (up to SHA-1 collisions) — the
    property test pins both directions. *)

val range_bindings :
  'v Replicated_store.t ->
  node:int ->
  keys:Hashing.Key.t list ->
  render:('v -> string) ->
  string list
(** One replica's canonical ["keyhex=state"] bindings for a key range,
    in the given key order. *)

val range_digest :
  'v Replicated_store.t ->
  node:int ->
  keys:Hashing.Key.t list ->
  render:('v -> string) ->
  Hashing.Sha1.digest
(** [digest] of {!range_bindings}. *)

val run :
  'v Replicated_store.t ->
  render:('v -> string) ->
  entry_bytes:('v -> int) ->
  ?on_exchange:(peer:int -> bytes:int -> unit) ->
  ?on_ship:(node:int -> bytes:int -> unit) ->
  unit ->
  stats
(** One full pass: every key range, every live replica pair.
    [render] is the canonical entry rendering baked into the digests;
    [entry_bytes] prices one entry for the byte accounting.
    [on_exchange] fires per digest push-pull (for billing the digest
    messages to the peer), [on_ship] per replica that gained entries
    (for billing the shipped bytes).  Ranges with fewer than two live
    replicas are skipped — a lone survivor has nobody to reconcile
    with. *)

module Key = Hashing.Key

(* One hash table per node, from key to its entry list.  Placement is
   delegated to the resolver, so the same store works over the static DHT
   and over Chord. *)

type 'v t = {
  resolver : Dht.Resolver.t;
  tables : (Key.t, 'v list) Hashtbl.t array;
}

let create ~resolver () =
  let n = Dht.Resolver.node_count resolver in
  { resolver; tables = Array.init n (fun _ -> Hashtbl.create 64) }

let resolver t = t.resolver

let node_of t key = Dht.Resolver.responsible t.resolver key

let table_of t key = t.tables.(node_of t key)

let insert t ~key v =
  let table = table_of t key in
  let existing = Option.value ~default:[] (Hashtbl.find_opt table key) in
  Hashtbl.replace table key (v :: existing)

let insert_unique ~equal t ~key v =
  let table = table_of t key in
  let existing = Option.value ~default:[] (Hashtbl.find_opt table key) in
  if List.exists (equal v) existing then false
  else begin
    Hashtbl.replace table key (v :: existing);
    true
  end

let lookup t key = Option.value ~default:[] (Hashtbl.find_opt (table_of t key) key)

let mem t key = Hashtbl.mem (table_of t key) key

let remove t ~key predicate =
  let table = table_of t key in
  match Hashtbl.find_opt table key with
  | None -> 0
  | Some entries ->
      let keep, drop = List.partition (fun v -> not (predicate v)) entries in
      (match keep with
      | [] -> Hashtbl.remove table key
      | _ :: _ -> Hashtbl.replace table key keep);
      List.length drop

let remove_key t key =
  let table = table_of t key in
  match Hashtbl.find_opt table key with
  | None -> 0
  | Some entries ->
      Hashtbl.remove table key;
      List.length entries

let key_count t = Array.fold_left (fun acc table -> acc + Hashtbl.length table) 0 t.tables

let entry_count t =
  Array.fold_left
    (fun acc table -> Hashtbl.fold (fun _ entries n -> n + List.length entries) table acc)
    0 t.tables

let keys_per_node t = Array.map Hashtbl.length t.tables

let entries_per_node t =
  Array.map
    (fun table -> Hashtbl.fold (fun _ entries acc -> acc + List.length entries) table 0)
    t.tables

let fold t ~init ~f =
  Array.fold_left
    (fun acc table ->
      Stdx.Det_tbl.fold_sorted ~compare:Key.compare
        (fun key entries acc -> f acc key entries)
        table acc)
    init t.tables

(* Dotted version vectors for replicated index entries: a sorted
   association list from actor (node id) to a strictly positive event
   counter.  The sorted-list normal form makes structural equality,
   merge and comparison deterministic — two vectors describing the same
   causal history are the same OCaml value. *)

type t = (int * int) list

let zero = []

let rec well_formed = function
  | [] -> true
  | [ (a, n) ] -> a >= 0 && n > 0
  | (a, n) :: ((a', _) :: _ as rest) ->
      a >= 0 && n > 0 && a < a' && well_formed rest

let counter t ~actor =
  match List.assoc_opt actor t with Some n -> n | None -> 0

let bump t ~actor =
  if actor < 0 then invalid_arg "Version.bump: negative actor";
  let rec go = function
    | [] -> [ (actor, 1) ]
    | (a, n) :: rest ->
        if a = actor then (a, n + 1) :: rest
        else if a > actor then (actor, 1) :: (a, n) :: rest
        else (a, n) :: go rest
  in
  go t

(* Pointwise max: the least upper bound of the two causal histories.
   Commutative, associative and idempotent — the qcheck laws pin this. *)
let merge a b =
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (xa, xn) :: xs, (ya, yn) :: ys ->
        if xa = ya then (xa, Stdlib.max xn yn) :: go xs ys
        else if xa < ya then (xa, xn) :: go xs b
        else (ya, yn) :: go a ys
  in
  go a b

type relation = Eq | Dominates | Dominated | Concurrent

(* One pass over the merged actor set, tracking whether each side has a
   component the other lacks. *)
let compare a b =
  let rec go a_ahead b_ahead a b =
    match (a, b) with
    | [], [] -> (a_ahead, b_ahead)
    | _ :: _, [] -> (true, b_ahead)
    | [], _ :: _ -> (a_ahead, true)
    | (xa, xn) :: xs, (ya, yn) :: ys ->
        if xa = ya then
          go (a_ahead || xn > yn) (b_ahead || yn > xn) xs ys
        else if xa < ya then go true b_ahead xs b
        else go a_ahead true a ys
  in
  match go false false a b with
  | false, false -> Eq
  | true, false -> Dominates
  | false, true -> Dominated
  | true, true -> Concurrent

let equal a b = compare a b = Eq
let dots = List.length
let dominates_or_eq a b = match compare a b with Eq | Dominates -> true | _ -> false

let to_string t =
  let dot (a, n) = Printf.sprintf "%d:%d" a n in
  "{" ^ String.concat "," (List.map dot t) ^ "}"

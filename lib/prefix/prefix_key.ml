let max_bytes = Hashing.Key.bits / 8

let hex_of_padded s ~pad =
  let buf = Buffer.create (2 * max_bytes) in
  let n = Stdlib.min (String.length s) max_bytes in
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "%02x" (Char.code s.[i]))
  done;
  for _ = n to max_bytes - 1 do
    Buffer.add_string buf (Printf.sprintf "%02x" (Char.code pad))
  done;
  Buffer.contents buf

let encode s = Hashing.Key.of_hex (hex_of_padded s ~pad:'\x00')

let range p =
  ( Hashing.Key.of_hex (hex_of_padded p ~pad:'\x00'),
    Hashing.Key.of_hex (hex_of_padded p ~pad:'\xff') )

let in_range p ~key =
  let lo, hi = range p in
  Hashing.Key.compare lo key <= 0 && Hashing.Key.compare key hi <= 0

let is_prefix p s =
  String.length p <= String.length s
  && String.equal p (String.sub s 0 (String.length p))

type tree = { members : int array }

let build members =
  if members = [] then invalid_arg "Multicast.build: empty member list";
  let seen = Hashtbl.create 16 in
  let uniq =
    List.filter
      (fun node ->
        if Hashtbl.mem seen node then false
        else begin
          Hashtbl.add seen node ();
          true
        end)
      members
  in
  { members = Array.of_list uniq }

let member_count t = Array.length t.members
let members t = Array.to_list t.members
let root t = t.members.(0)
let edge_count t = Array.length t.members - 1

let edges t =
  let n = Array.length t.members in
  let acc = ref [] in
  for i = n - 1 downto 1 do
    acc := (t.members.((i - 1) / 2), t.members.(i)) :: !acc
  done;
  !acc

(* Level of heap slot [i]: the root sits at level 1 (one hop from the
   initiator), its children at level 2, ... *)
let level i =
  let l = ref 1 and j = ref i in
  while !j > 0 do
    j := (!j - 1) / 2;
    incr l
  done;
  !l

let depth t = level (Array.length t.members - 1)

type stats = { messages : int; depth : int; fanout : int }

let disseminate ~rpc ~category ~bytes ~deliver t =
  let n = Array.length t.members in
  (* Initiator hands the payload to the root, then each tree edge forwards
     it one level down: exactly one message per member, n = 1 + edge_count. *)
  Dht.Rpc.send_oneway rpc ~lossy:false ~dst:t.members.(0)
    ~bytes:(bytes t.members.(0)) ~category ~deliver:(fun () ->
      deliver t.members.(0);
      true);
  for i = 1 to n - 1 do
    let node = t.members.(i) in
    Dht.Rpc.send_oneway rpc ~lossy:false ~dst:node ~bytes:(bytes node)
      ~category
      ~deliver:(fun () ->
        deliver node;
        true)
  done;
  { messages = n; depth = depth t; fanout = n }

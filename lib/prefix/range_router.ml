let rec index_of node i = function
  | [] -> None
  | x :: _ when x = node -> Some i
  | _ :: rest -> index_of node (i + 1) rest

let truncate_after i xs =
  List.filteri (fun j _ -> j <= i) xs

let covering_nodes resolver ~lo ~hi =
  let node_count = Dht.Resolver.node_count resolver in
  let first = Dht.Resolver.responsible resolver lo in
  let last = Dht.Resolver.responsible resolver hi in
  if first = last then
    if
      node_count > 1
      && first = Dht.Resolver.responsible resolver Hashing.Key.zero
    then
      (* Both endpoints land on the node owning the wrapping arc (the one
         responsible for key zero).  Its interval runs through the top of
         the ring, so [lo] may sit in its low part and [hi] in its high
         part with every other node's interval in between — the walk
         below would stop immediately and silently drop them.  The
         resolver interface cannot expose the interval boundary, so cover
         the whole ring: over-covering keeps query results exact (the
         extra nodes contribute nothing), it only costs contacts on this
         degenerate huge-arc case. *)
      Dht.Resolver.replicas resolver lo node_count
    else [ first ]
  else
    (* Walk the ring clockwise from responsible(lo) until we pass
       responsible(hi).  Resolver.replicas already expresses "primary plus
       ring successors" on every substrate, so grow the walk by doubling
       until the terminal node appears. *)
    let rec grow r =
      let nodes = Dht.Resolver.replicas resolver lo r in
      match index_of last 0 nodes with
      | Some i -> truncate_after i nodes
      | None when r >= node_count -> nodes
      | None -> grow (Stdlib.min node_count (r * 2))
    in
    grow (Stdlib.min node_count 4)

let covering_prefix resolver p =
  let lo, hi = Prefix_key.range p in
  covering_nodes resolver ~lo ~hi

(** Deterministic spanning-tree multicast over a covering-node set.

    Given the nodes covering a prefix range (in ring-walk order), this
    module lays them out as an implicit binary heap: member [0] is the
    root, the children of slot [i] are slots [2i+1] and [2i+2].  The
    initiator sends one message to the root and every tree edge forwards
    one message down, so disseminating to [n] members costs exactly [n]
    messages — [1 + edge_count], within the O(n) optimal bound of the
    Darmstadt construction — and reaches everyone in [O(log n)] levels.

    Determinism (lint rule D2): the tree is a pure function of the member
    {e list order}.  Members are deduplicated first-occurrence-first and
    stored in an array; no hashtable iteration order leaks into the edge
    set, so two runs over the same covering set produce byte-identical
    trees, stats, and delivery order. *)

type tree

val build : int list -> tree
(** Deduplicate (keeping first occurrences) and lay the members out as an
    implicit heap.  The first member becomes the root.
    @raise Invalid_argument on an empty list. *)

val root : tree -> int
val member_count : tree -> int

val members : tree -> int list
(** Members in heap-slot (delivery) order, root first. *)

val edge_count : tree -> int
(** [member_count - 1]. *)

val edges : tree -> (int * int) list
(** [(parent, child)] pairs in child-slot order — deterministic. *)

val depth : tree -> int
(** Hops from the initiator to the deepest member: the root is 1 hop,
    its children 2, ...  [depth] of a singleton tree is 1. *)

type stats = { messages : int; depth : int; fanout : int }
(** One dissemination: total messages sent (initiator→root plus one per
    edge), tree depth in hops, and members reached. *)

val disseminate :
  rpc:Dht.Rpc.t ->
  category:Dht.Network.category ->
  bytes:(int -> int) ->
  deliver:(int -> unit) ->
  tree ->
  stats
(** Fan a payload to every member, exactly once each, via reliable
    one-way sends: the initiator→root message plus one message per tree
    edge.  [bytes node] prices the message {e addressed to} [node] (so
    per-subtree aggregation can be modelled by the caller); [deliver
    node] applies the payload at [node].  Messages are billed on [rpc]'s
    network under [category].  Always [messages = member_count]. *)

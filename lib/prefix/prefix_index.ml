module Key = Hashing.Key
module Wire = P2pindex.Wire

type instruments = {
  queries : Obs.Metrics.Counter.t;
  installs : Obs.Metrics.Counter.t;
  covering : Obs.Metrics.Histogram.t;
  results : Obs.Metrics.Histogram.t;
  mc_fanout : Obs.Metrics.Histogram.t;
  mc_depth : Obs.Metrics.Histogram.t;
  mc_messages : Obs.Metrics.Histogram.t;
}

type 'a t = {
  resolver : Dht.Resolver.t;
  rpc : Dht.Rpc.t;
  render : 'a -> string;
  liveness : Dht.Liveness.t option;
  stores : (string, 'a list) Hashtbl.t array;
  obs : instruments option;
}

let small_buckets =
  Obs.Metrics.exponential_buckets ~start:1.0 ~factor:2.0 ~count:10

let make_instruments registry =
  let counter name help = Obs.Metrics.counter registry ~help name in
  let histogram name help =
    Obs.Metrics.histogram registry ~help ~buckets:small_buckets name
  in
  {
    queries =
      counter "p2pindex_prefix_queries_total" "Routed prefix queries issued.";
    installs =
      counter "p2pindex_prefix_installs_total"
        "Index entries installed on covering nodes.";
    covering =
      histogram "p2pindex_prefix_covering_nodes"
        "Covering nodes contacted per prefix query.";
    results =
      histogram "p2pindex_prefix_results" "Result-set size per prefix query.";
    mc_fanout =
      histogram "p2pindex_prefix_multicast_fanout"
        "Members reached per multicast dissemination.";
    mc_depth =
      histogram "p2pindex_prefix_multicast_depth"
        "Spanning-tree depth in hops per multicast dissemination.";
    mc_messages =
      histogram "p2pindex_prefix_multicast_messages"
        "Messages sent per multicast dissemination.";
  }

let create ?rpc ?metrics ?liveness ~render ~resolver () =
  let rpc = match rpc with Some r -> r | None -> Dht.Rpc.create () in
  {
    resolver;
    rpc;
    render;
    liveness;
    stores =
      Array.init (Dht.Resolver.node_count resolver) (fun _ ->
          Hashtbl.create 16);
    obs = Option.map make_instruments metrics;
  }

let node_count t = Dht.Resolver.node_count t.resolver

let alive t node =
  match t.liveness with None -> true | Some l -> Dht.Liveness.alive l node

let observe_stats t (s : Multicast.stats) =
  match t.obs with
  | None -> ()
  | Some o ->
      Obs.Metrics.Histogram.observe_int o.mc_fanout s.fanout;
      Obs.Metrics.Histogram.observe_int o.mc_depth s.depth;
      Obs.Metrics.Histogram.observe_int o.mc_messages s.messages

(* Entries are deduplicated by rendered payload so equality never relies on
   polymorphic compare over ['a]. *)
let store_entry t node ~term payload =
  let tbl = t.stores.(node) in
  let existing = Option.value ~default:[] (Hashtbl.find_opt tbl term) in
  let rendered = t.render payload in
  if List.exists (fun p -> String.equal (t.render p) rendered) existing then
    false
  else begin
    Hashtbl.replace tbl term (payload :: existing);
    true
  end

let install_bytes t ~term payload = Wire.cache_install_bytes term (t.render payload)

let count_install t =
  match t.obs with
  | None -> ()
  | Some o -> Obs.Metrics.Counter.incr o.installs

let publish t ~term payload =
  let dst = Dht.Resolver.responsible t.resolver (Prefix_key.encode term) in
  count_install t;
  Dht.Rpc.send_oneway t.rpc ~lossy:false ~dst
    ~bytes:(install_bytes t ~term payload)
    ~category:Dht.Network.Maintenance
    ~deliver:(fun () -> store_entry t dst ~term payload)

let publish_multicast t entries =
  match entries with
  | [] -> None
  | _ ->
      let by_node : (int, (string * 'a) list) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (term, payload) ->
          let dst =
            Dht.Resolver.responsible t.resolver (Prefix_key.encode term)
          in
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_node dst) in
          Hashtbl.replace by_node dst ((term, payload) :: prev))
        entries;
      let groups = Stdx.Det_tbl.sorted_bindings by_node in
      let tree = Multicast.build (List.map fst groups) in
      let members = Array.of_list (Multicast.members tree) in
      let n = Array.length members in
      let payload_of = Hashtbl.create 16 in
      List.iter
        (fun (node, batch) -> Hashtbl.replace payload_of node (List.rev batch))
        groups;
      let own_bytes node =
        List.fold_left
          (fun acc (term, payload) -> acc + install_bytes t ~term payload)
          0
          (Option.value ~default:[] (Hashtbl.find_opt payload_of node))
      in
      (* A tree message addressed to [node] carries every install destined to
         [node]'s whole subtree, so price each slot bottom-up. *)
      let subtree = Array.make n 0 in
      for i = n - 1 downto 0 do
        let kids = ref 0 in
        if (2 * i) + 1 < n then kids := !kids + subtree.((2 * i) + 1);
        if (2 * i) + 2 < n then kids := !kids + subtree.((2 * i) + 2);
        subtree.(i) <- own_bytes members.(i) + !kids
      done;
      let slot_of = Hashtbl.create 16 in
      Array.iteri (fun i node -> Hashtbl.replace slot_of node i) members;
      let stats =
        Multicast.disseminate ~rpc:t.rpc ~category:Dht.Network.Maintenance
          ~bytes:(fun node -> subtree.(Hashtbl.find slot_of node))
          ~deliver:(fun node ->
            List.iter
              (fun (term, payload) ->
                count_install t;
                ignore (store_entry t node ~term payload))
              (Option.value ~default:[] (Hashtbl.find_opt payload_of node)))
          tree
      in
      observe_stats t stats;
      Some stats

let covering_nodes t ~prefix = Range_router.covering_prefix t.resolver prefix

let live_covering t ~prefix =
  List.filter (alive t) (covering_nodes t ~prefix)

let compare_result t (term, p) (term', p') =
  match String.compare term term' with
  | 0 -> String.compare (t.render p) (t.render p')
  | c -> c

let dedup_sorted t rs =
  let rec go = function
    | a :: b :: rest when compare_result t a b = 0 -> go (b :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go rs

let merge_results t rs = dedup_sorted t (List.sort (compare_result t) rs)

(* What one covering node contributes: its bindings whose term extends the
   prefix, in deterministic term order.  Terms longer than the key width can
   collide on one arc point, hence the exact re-check here. *)
let local_results t node ~prefix =
  Stdx.Det_tbl.fold_sorted
    (fun term payloads acc ->
      if Prefix_key.is_prefix prefix term then
        List.fold_left (fun acc p -> (term, p) :: acc) acc payloads
      else acc)
    t.stores.(node) []
  |> merge_results t

let request_wire prefix = Wire.request_bytes (prefix ^ "*")

let response_wire t rs = Wire.response_bytes (List.map (fun (_, p) -> t.render p) rs)

let call_node t ?route_key ~prefix node =
  let handler ~node =
    if alive t node then
      let rs = local_results t node ~prefix in
      Dht.Rpc.Reply { bytes = response_wire t rs; value = rs }
    else Dht.Rpc.No_response
  in
  match
    Dht.Rpc.call t.rpc ~dst:node ?route_key
      ~request_bytes:(request_wire prefix) ~handler ()
  with
  | Dht.Rpc.Answered { value; _ } -> value
  | Dht.Rpc.Exhausted -> []

(* Direct mode: route to the head of the arc, then contact each further
   covering node with its own request/response exchange. *)
let query_direct t ~prefix ~lo members =
  match members with
  | [] -> []
  | first :: rest ->
      let acc = call_node t ~route_key:lo ~prefix first in
      List.fold_left (fun acc node -> call_node t ~prefix node @ acc) acc rest

(* Multicast mode: one routed call to the tree root, then the query fans down
   the tree edges and the result sets aggregate back up along the same edges.
   Per-member results travel once per level above them, which is the
   bytes-vs-initiator-load trade-off the prefix-sweep experiment plots. *)
let query_multicast t ~prefix ~lo members =
  let tree = Multicast.build members in
  let arr = Array.of_list (Multicast.members tree) in
  let n = Array.length arr in
  let locals = Array.map (fun node -> local_results t node ~prefix) arr in
  let subtree = Array.make n [] in
  for i = n - 1 downto 0 do
    let kids = ref [] in
    if (2 * i) + 1 < n then kids := subtree.((2 * i) + 1);
    if (2 * i) + 2 < n then kids := subtree.((2 * i) + 2) @ !kids;
    subtree.(i) <- merge_results t (locals.(i) @ !kids)
  done;
  let root = arr.(0) in
  let root_reply ~node:_ =
    if alive t root then
      Dht.Rpc.Reply { bytes = response_wire t subtree.(0); value = () }
    else Dht.Rpc.No_response
  in
  match
    Dht.Rpc.call t.rpc ~dst:root ~route_key:lo
      ~request_bytes:(request_wire prefix) ~handler:root_reply ()
  with
  | Dht.Rpc.Exhausted -> []
  | Dht.Rpc.Answered _ ->
      (* Downward fan: one query copy per tree edge. *)
      List.iter
        (fun (_parent, child) ->
          Dht.Rpc.send_oneway t.rpc ~lossy:false ~dst:child
            ~bytes:(request_wire prefix) ~category:Dht.Network.Request
            ~deliver:(fun () -> true))
        (Multicast.edges tree);
      (* Upward aggregation: each child ships its subtree's merged results
         to its parent. *)
      for i = 1 to n - 1 do
        Dht.Rpc.send_oneway t.rpc ~lossy:false
          ~dst:arr.((i - 1) / 2)
          ~bytes:(response_wire t subtree.(i))
          ~category:Dht.Network.Response
          ~deliver:(fun () -> true)
      done;
      observe_stats t
        { messages = n; depth = Multicast.depth tree; fanout = n };
      subtree.(0)

let query ?(multicast = false) t ~prefix =
  (match t.obs with
  | None -> ()
  | Some o -> Obs.Metrics.Counter.incr o.queries);
  let lo, _hi = Prefix_key.range prefix in
  let members = live_covering t ~prefix in
  (match t.obs with
  | None -> ()
  | Some o ->
      Obs.Metrics.Histogram.observe_int o.covering (List.length members));
  let results =
    match members with
    | [] -> []
    | _ ->
        if multicast then query_multicast t ~prefix ~lo members
        else merge_results t (query_direct t ~prefix ~lo members)
  in
  (match t.obs with
  | None -> ()
  | Some o ->
      Obs.Metrics.Histogram.observe_int o.results (List.length results));
  results

let query_broadcast t ~prefix =
  let acc = ref [] in
  for node = 0 to node_count t - 1 do
    if alive t node then acc := call_node t ~prefix node @ !acc
  done;
  merge_results t !acc

let drop_node_state t node = Hashtbl.reset t.stores.(node)

let entries_on t node =
  Stdx.Det_tbl.fold_sorted
    (fun _ payloads acc -> acc + List.length payloads)
    t.stores.(node) 0

let entry_count t =
  let acc = ref 0 in
  Array.iteri (fun node _ -> acc := !acc + entries_on t node) t.stores;
  !acc

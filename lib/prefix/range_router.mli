(** Key-range to covering-node-set resolution.

    Because {!Prefix_key} maps a prefix onto one contiguous clockwise arc
    [\[lo, hi\]] of the ring, the nodes that can hold matching entries are
    exactly the responsible node of [lo] and its ring successors up to
    (and including) the responsible node of [hi].  This module computes
    that set through the substrate-agnostic {!Dht.Resolver.replicas}
    walk, so it works on Chord, Pastry, CAN and the static resolver
    alike, without assuming node indexes are ring-ordered. *)

val covering_nodes :
  Dht.Resolver.t -> lo:Hashing.Key.t -> hi:Hashing.Key.t -> int list
(** Node indexes covering the clockwise arc [\[lo, hi\]], in ring-walk
    order starting at [responsible lo] and ending at [responsible hi]
    (both inclusive; a single node when the arc lies inside one
    responsibility interval).  The result is always a {e superset} of the
    nodes holding matching entries: when both endpoints resolve to the
    node owning the wrapping arc (responsible for key zero) the interval
    boundary is unobservable through the resolver interface, and the
    whole ring is returned rather than risk dropping covered nodes —
    queries stay exact, only the contact count grows on that degenerate
    huge-arc case.  Deterministic for a fixed resolver. *)

val covering_prefix : Dht.Resolver.t -> string -> int list
(** [covering_nodes] over {!Prefix_key.range} of the prefix. *)

(** The routed prefix/range index — the fourth index scheme.

    The paper's Simple/Flat/Complex schemes hash whole query strings, so a
    prefix query can only be answered by flooding every node or filtering
    client-side.  This index instead files each term under its
    {!Prefix_key} order-preserving key, which turns a prefix query into a
    contiguous ring arc: the query routes once to the head of the arc and
    then touches only the handful of {!Range_router} covering nodes — the
    Darmstadt prefix-search construction on top of this repo's resolver,
    RPC and wire-accounting layers.

    Two query shapes are offered.  {e Direct} contacts each covering node
    with its own request/response exchange (cheap bytes, initiator pays
    one round-trip per node).  {e Multicast} sends one routed call to the
    root of a {!Multicast} spanning tree over the covering nodes; the
    query fans down the tree edges and results aggregate back up, so
    entries travel once per tree level — fewer initiator interactions,
    more relay bytes.  The [prefix-sweep] experiment plots this
    trade-off.

    All traffic is billed on the supplied {!Dht.Rpc.t} (Request/Response
    for queries, Maintenance for installs), so the scheme participates in
    fault plans and churn like the hashed schemes.  Every iteration is
    over sorted views ({!Stdx.Det_tbl}) or arrays: byte-deterministic. *)

type 'a t
(** A prefix index storing payloads of type ['a], one logical store per
    node of the resolver's population. *)

val create :
  ?rpc:Dht.Rpc.t ->
  ?metrics:Obs.Metrics.t ->
  ?liveness:Dht.Liveness.t ->
  render:('a -> string) ->
  resolver:Dht.Resolver.t ->
  unit ->
  'a t
(** [render] gives each payload its canonical wire string — used for byte
    accounting {e and} payload identity (no polymorphic compare).  With
    [metrics], the [p2pindex_prefix_*] counters and histograms are
    registered.  Without [rpc] a transparent unbilled channel is used. *)

val publish : 'a t -> term:string -> 'a -> unit
(** Install one [(term, payload)] entry on the node responsible for
    [Prefix_key.encode term], billed as one reliable Maintenance message
    (only when the entry is fresh — duplicate installs are free no-ops). *)

val publish_multicast : 'a t -> (string * 'a) list -> Multicast.stats option
(** Install a batch through the spanning tree: entries are grouped by
    responsible node, a deterministic tree is built over those nodes, and
    each tree message carries the installs for its whole subtree (priced
    bottom-up).  Final store state is identical to calling {!publish} per
    entry; only the message/byte accounting differs.  [None] on an empty
    batch. *)

val covering_nodes : 'a t -> prefix:string -> int list
(** The nodes whose arcs intersect the prefix's key range, in ring-walk
    order — dead or alive. *)

val query : ?multicast:bool -> 'a t -> prefix:string -> (string * 'a) list
(** All entries whose term starts with [prefix], merged over the live
    covering nodes, sorted by [(term, rendered payload)] and
    deduplicated.  [multicast] (default false) selects the spanning-tree
    shape described above; both shapes return identical results on a
    fault-free network. *)

val query_broadcast : 'a t -> prefix:string -> (string * 'a) list
(** The flooding baseline: ask {e every} live node and filter — same
    result set as {!query}, used by the [prefix-sweep] experiment to
    price what routing saves. *)

val drop_node_state : 'a t -> int -> unit
(** Forget everything stored on one node (churn failure hook). *)

val entry_count : 'a t -> int
val entries_on : 'a t -> int -> int

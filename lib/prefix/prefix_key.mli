(** Order-preserving term-to-key mapping (the Darmstadt prefix-search
    construction).

    The three paper schemes place index entries by {e hashing} the query
    string, which scatters lexicographically adjacent terms uniformly over
    the ring — good for load, fatal for prefix search.  This module is the
    opposite mapping: the first {!max_bytes} bytes of a term are packed
    big-endian into the 160-bit key space, so [compare a b] on terms and
    [Key.compare (encode a) (encode b)] agree (up to the truncation), and
    every prefix [p] corresponds to one {e contiguous} arc of the ring:
    [\[encode p, p padded with 0xff\]].  A prefix query therefore routes to
    the small set of nodes whose responsibility arcs intersect that
    interval instead of being flooded to everyone.

    Terms longer than {!max_bytes} collapse onto the key of their
    truncation; covering nodes resolve such collisions with a node-local
    exact prefix filter (see {!Prefix_index}), so results stay exact. *)

val max_bytes : int
(** Bytes of a term that survive into the key: 20 (160 bits / 8). *)

val encode : string -> Hashing.Key.t
(** Big-endian packing of the term's first {!max_bytes} bytes, zero-padded
    on the right.  Monotone: [String.compare a b] and
    [Key.compare (encode a) (encode b)] have the same sign whenever [a]
    and [b] differ within their first {!max_bytes} bytes. *)

val range : string -> Hashing.Key.t * Hashing.Key.t
(** [range p] is the inclusive key interval [(lo, hi)] covering exactly
    the encodings of strings that start with [p]: [p] padded with [0x00]
    and with [0xff].  [range ""] spans the whole space. *)

val in_range : string -> key:Hashing.Key.t -> bool
(** [in_range p ~key]: does [key] fall inside [range p] (inclusive)? *)

val is_prefix : string -> string -> bool
(** [is_prefix p s]: is [p] a (not necessarily proper) prefix of [s]? *)

(* Candidate generation by trigram overlap, verification by edit distance.
   The trigram index maps each character trigram (of the padded, lowercased
   string) to the known values containing it; a misspelling with distance d
   still shares most trigrams with its source, so collecting values that
   share enough trigrams yields a small, high-recall candidate set without
   scanning the vocabulary. *)

type t = {
  values : (string, string) Hashtbl.t; (* lowercased -> original *)
  trigrams : (string, string list ref) Hashtbl.t; (* trigram -> lowercased values *)
}

let create () = { values = Hashtbl.create 256; trigrams = Hashtbl.create 1024 }

let pad s = "\x01\x01" ^ s ^ "\x02"

let trigrams_of s =
  let padded = pad s in
  let n = String.length padded in
  if n < 3 then [ padded ]
  else List.init (n - 2) (fun i -> String.sub padded i 3) |> List.sort_uniq String.compare

let add t value =
  let key = String.lowercase_ascii value in
  if not (Hashtbl.mem t.values key) then begin
    Hashtbl.replace t.values key value;
    List.iter
      (fun trigram ->
        match Hashtbl.find_opt t.trigrams trigram with
        | Some bucket -> bucket := key :: !bucket
        | None -> Hashtbl.replace t.trigrams trigram (ref [ key ]))
      (trigrams_of key)
  end

let of_list values =
  let t = create () in
  List.iter (add t) values;
  t

let size t = Hashtbl.length t.values

let mem t value = Hashtbl.mem t.values (String.lowercase_ascii value)

(* Damerau-Levenshtein with two rolling rows plus one for transpositions. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev2 = Array.make (lb + 1) 0 in
    let prev = Array.init (lb + 1) (fun j -> j) in
    let current = Array.make (lb + 1) 0 in
    for i = 1 to la do
      current.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        let best =
          Stdlib.min
            (Stdlib.min (prev.(j) + 1) (current.(j - 1) + 1))
            (prev.(j - 1) + cost)
        in
        let best =
          if i > 1 && j > 1 && a.[i - 1] = b.[j - 2] && a.[i - 2] = b.[j - 1] then
            Stdlib.min best (prev2.(j - 2) + 1)
          else best
        in
        current.(j) <- best
      done;
      Array.blit prev 0 prev2 0 (lb + 1);
      Array.blit current 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let default_max_distance s = 1 + (String.length s / 4)

let suggest ?max_distance ?(limit = 5) t input =
  let key = String.lowercase_ascii input in
  match Hashtbl.find_opt t.values key with
  | Some original -> [ (original, 0) ]
  | None ->
      let max_distance =
        match max_distance with Some d -> d | None -> default_max_distance key
      in
      (* Count shared trigrams per candidate. *)
      let shared = Hashtbl.create 64 in
      List.iter
        (fun trigram ->
          match Hashtbl.find_opt t.trigrams trigram with
          | Some bucket ->
              List.iter
                (fun candidate ->
                  Hashtbl.replace shared candidate
                    (1 + Option.value ~default:0 (Hashtbl.find_opt shared candidate)))
                !bucket
          | None -> ())
        (trigrams_of key);
      (* A candidate within edit distance d shares at least
         |trigrams| - 3d trigrams; prune on that bound before the exact
         distance computation. *)
      let own_count = List.length (trigrams_of key) in
      let min_shared = Stdlib.max 1 (own_count - (3 * max_distance)) in
      let verified =
        Stdx.Det_tbl.fold_sorted ~compare:String.compare
          (fun candidate count acc ->
            if count >= min_shared then
              let d = edit_distance key candidate in
              if d <= max_distance then (candidate, d) :: acc else acc
            else acc)
          shared []
      in
      let sorted =
        List.sort
          (fun (a, da) (b, db) ->
            if da <> db then Int.compare da db else String.compare a b)
          verified
      in
      let rec take k = function
        | [] -> []
        | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
      in
      List.map (fun (c, d) -> (Hashtbl.find t.values c, d)) (take limit sorted)

let correct t input =
  match suggest ~limit:2 t input with
  | [] -> None
  | [ (best, _) ] -> Some best
  | (best, d1) :: (_, d2) :: _ -> if d1 < d2 then Some best else None

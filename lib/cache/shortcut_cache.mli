(** Per-node shortcut tables: the adaptive distributed cache of Section IV-C.

    Each node allocates index entries for caching.  A shortcut is a direct
    mapping from a (generic) query to the descriptor of a target file; a
    user following the same path later can jump straight to the file.
    Entries are keyed by the {e pair} (query, target) — one cached key per
    pair, which is what the paper counts in Fig. 14 — and evicted LRU-first
    when the node's capacity is bounded.

    Under churn, shortcuts are soft state like any other index entry: each
    carries a TTL measured on the cache's virtual [clock], expired entries
    vanish lazily on access, and {!clear} models a node losing its cache in
    a crash.  The defaults (constant clock, infinite TTL) reproduce the
    static behavior exactly.

    The structure is polymorphic in the query type; canonical strings
    identify entries, mirroring how the DHT would store them. *)

type 'q t

val create :
  ?metrics:Obs.Metrics.t ->
  ?clock:(unit -> float) ->
  ?ttl:float ->
  capacity:int option ->
  unit ->
  'q t
(** One node's cache.  [capacity = None] is unbounded.  [clock] (default:
    constantly [0.0]) supplies the virtual time entries are judged against;
    [ttl] (default [infinity]) is stamped on every install and refresh.
    With [metrics], lookups, installs, evictions and TTL expirations bump
    the [p2pindex_cache_{hits,misses,installs,evictions,expirations}_total]
    counters; caches created against the same registry share them, so the
    totals are network-wide.
    @raise Invalid_argument when [ttl <= 0]. *)

val find : 'q t -> query_key:string -> ('q * 'q) list
(** All unexpired shortcuts cached under this query (pairs of query and
    target descriptor), most recent first.  Hits refresh recency; expired
    entries found along the way are purged. *)

val find_target : 'q t -> query_key:string -> target_key:string -> 'q option
(** The cached target for an exact (query, target) pair, refreshing
    recency — the simulation's "is the relevant data already in the cache"
    test.  An expired entry is purged and reported as a miss. *)

val add : 'q t -> query_key:string -> target_key:string -> 'q * 'q -> bool
(** Install a shortcut with a fresh TTL; returns false when the pair was
    already cached and unexpired (its recency and TTL are refreshed). *)

val clear : 'q t -> unit
(** Drop everything — the node crashed and its cache is gone. *)

val size : 'q t -> int
(** Number of cached entries (pairs), counting entries that have expired
    but not yet been purged. *)

val capacity : 'q t -> int option

val is_full : 'q t -> bool
(** True when a bounded cache is at capacity. *)

val entries : 'q t -> ('q * 'q) list
(** All unexpired cached pairs, most recent first. *)

(** Per-node shortcut tables: the adaptive distributed cache of Section IV-C.

    Each node allocates index entries for caching.  A shortcut is a direct
    mapping from a (generic) query to the descriptor of a target file; a
    user following the same path later can jump straight to the file.
    Entries are keyed by the {e pair} (query, target) — one cached key per
    pair, which is what the paper counts in Fig. 14 — and evicted LRU-first
    when the node's capacity is bounded.

    The structure is polymorphic in the query type; canonical strings
    identify entries, mirroring how the DHT would store them. *)

type 'q t

val create : ?metrics:Obs.Metrics.t -> capacity:int option -> unit -> 'q t
(** One node's cache.  [capacity = None] is unbounded.  With [metrics],
    lookups, installs and evictions bump the
    [p2pindex_cache_{hits,misses,installs,evictions}_total] counters;
    caches created against the same registry share them, so the totals are
    network-wide. *)

val find : 'q t -> query_key:string -> ('q * 'q) list
(** All shortcuts cached under this query (pairs of query and target
    descriptor), most recent first.  Hits refresh recency. *)

val find_target : 'q t -> query_key:string -> target_key:string -> 'q option
(** The cached target for an exact (query, target) pair, refreshing
    recency — the simulation's "is the relevant data already in the cache"
    test. *)

val add : 'q t -> query_key:string -> target_key:string -> 'q * 'q -> bool
(** Install a shortcut; returns false when the pair was already cached
    (its recency is refreshed). *)

val size : 'q t -> int
(** Number of cached entries (pairs). *)

val capacity : 'q t -> int option

val is_full : 'q t -> bool
(** True when a bounded cache is at capacity. *)

val entries : 'q t -> ('q * 'q) list
(** All cached pairs, most recent first. *)

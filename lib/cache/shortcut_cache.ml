(* Entries live in an LRU keyed by the (query, target) string pair, with a
   secondary index from query string to the set of its cached pairs so that
   [find] is proportional to the number of shortcuts for that query, not the
   cache size.  The LRU eviction hook keeps the secondary index in sync.

   Entry state is arena-backed: the LRU stores a dense arena id, the expiry
   stamp lives in a float column and the cached pair in a dummy-backed slot
   column.  The old per-entry cell record mixed an immutable pair with a
   mutable float, so every install boxed the float and allocated a record;
   the columns pay one [Some pair] box per install and nothing per probe.

   Entries are soft state under churn: each carries an expiry stamped from
   the cache's virtual clock at install time, and expired entries are
   purged lazily on access.  With the default infinite TTL nothing ever
   expires and the cache behaves exactly as the static version did. *)

module String_pair = struct
  type t = string * string
end

(* Hit/miss/eviction counters, shared by every per-node cache built against
   the same registry (fetch-or-create returns one instrument per name). *)
type instruments = {
  hits : Obs.Metrics.Counter.t;
  misses : Obs.Metrics.Counter.t;
  evictions : Obs.Metrics.Counter.t;
  installs : Obs.Metrics.Counter.t;
  expirations : Obs.Metrics.Counter.t;
}

type 'q t = {
  lru : (String_pair.t, int) Lru.t;  (** values are arena ids *)
  arena : Stdx.Arena.t;
  pairs : ('q * 'q) option Stdx.Arena.Slots.t;
      (** [None] is the dummy: the query type is abstract here, so no
          ['q] value exists to stand in for vacant slots. *)
  expiry : Stdx.Arena.Float_col.col;
  by_query : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  clock : unit -> float;
  ttl : float;
  instruments : instruments option;
}

let unindex by_query (query_key, target_key) =
  match Hashtbl.find_opt by_query query_key with
  | None -> ()
  | Some targets ->
      Hashtbl.remove targets target_key;
      if Hashtbl.length targets = 0 then Hashtbl.remove by_query query_key

let make_instruments registry =
  let counter name help = Obs.Metrics.counter registry ~help name in
  {
    hits = counter "p2pindex_cache_hits_total" "Shortcut lookups that found an entry";
    misses = counter "p2pindex_cache_misses_total" "Shortcut lookups that found nothing";
    evictions = counter "p2pindex_cache_evictions_total" "Entries evicted LRU-first";
    installs = counter "p2pindex_cache_installs_total" "Fresh shortcut pairs installed";
    expirations =
      counter "p2pindex_cache_expirations_total" "Entries dropped because their TTL ran out";
  }

let create ?metrics ?(clock = fun () -> 0.0) ?(ttl = infinity) ~capacity () =
  if not (ttl > 0.) then invalid_arg "Shortcut_cache.create: ttl must be > 0";
  let by_query = Hashtbl.create 16 in
  let instruments = Option.map make_instruments metrics in
  let arena =
    Stdx.Arena.create ~checked:false
      ~capacity:(match capacity with Some c -> Stdlib.max 1 c | None -> 16)
      ()
  in
  let pairs = Stdx.Arena.Slots.make arena ~dummy:None in
  let expiry = Stdx.Arena.Float_col.make arena ~default:infinity in
  let on_evict pair_key id =
    unindex by_query pair_key;
    Stdx.Arena.Slots.clear pairs id;
    Stdx.Arena.free arena id;
    match instruments with
    | Some ins -> Obs.Metrics.Counter.incr ins.evictions
    | None -> ()
  in
  {
    lru = Lru.create ?capacity ~on_evict ();
    arena;
    pairs;
    expiry;
    by_query;
    clock;
    ttl;
    instruments;
  }

let expired t id = Stdx.Arena.Float_col.get t.expiry id <= t.clock ()

(* Return an entry's arena slot to the free list. *)
let release t id =
  Stdx.Arena.Slots.clear t.pairs id;
  Stdx.Arena.free t.arena id

(* [Lru.remove] bypasses the eviction hook, so unindex by hand. *)
let purge t key id =
  ignore (Lru.remove t.lru key : bool);
  unindex t.by_query key;
  release t id;
  match t.instruments with
  | Some ins -> Obs.Metrics.Counter.incr ins.expirations
  | None -> ()

(* Fetch a pair if cached and fresh, purging it when its TTL ran out.
   The slot read already yields the option, so a fresh hit allocates
   nothing. *)
let live_find t key =
  match Lru.find t.lru key with
  | None -> None
  | Some id ->
      if expired t id then begin
        purge t key id;
        None
      end
      else Stdx.Arena.Slots.get t.pairs id

let count_outcome t ~hit =
  match t.instruments with
  | None -> ()
  | Some ins -> Obs.Metrics.Counter.incr (if hit then ins.hits else ins.misses)

let find t ~query_key =
  let found =
    match Hashtbl.find_opt t.by_query query_key with
    | None -> []
    | Some targets ->
        (* Collect first (purging while iterating would mutate [targets]
           underneath us), in sorted order so the result list — and any
           simulation decision made over it — is iteration-order free. *)
        let target_keys = Stdx.Det_tbl.sorted_keys ~compare:String.compare targets in
        List.filter_map
          (fun target_key -> live_find t (query_key, target_key))
          target_keys
  in
  count_outcome t ~hit:(found <> []);
  found

let find_target t ~query_key ~target_key =
  let found =
    match live_find t (query_key, target_key) with
    | Some (_query, target) -> Some target
    | None -> None
  in
  count_outcome t ~hit:(found <> None);
  found

let add t ~query_key ~target_key pair =
  let key = (query_key, target_key) in
  (* An expired leftover is not a refresh: drop it so the install counts
     (and recurses through the eviction path) as fresh. *)
  (match Lru.peek t.lru key with
  | Some id when expired t id -> purge t key id
  | Some _ | None -> ());
  let expires_at = if t.ttl = infinity then infinity else t.clock () +. t.ttl in
  match Lru.peek t.lru key with
  | Some id ->
      (* Refresh: new pair and TTL in place, recency via [Lru.add]'s touch. *)
      Stdx.Arena.Slots.set t.pairs id (Some pair);
      Stdx.Arena.Float_col.set t.expiry id expires_at;
      Lru.add t.lru key id;
      false
  | None ->
      let id = Stdx.Arena.alloc t.arena in
      Stdx.Arena.Slots.set t.pairs id (Some pair);
      Stdx.Arena.Float_col.set t.expiry id expires_at;
      (* May evict the LRU tail, whose hook frees that entry's id. *)
      Lru.add t.lru key id;
      let targets =
        match Hashtbl.find_opt t.by_query query_key with
        | Some targets -> targets
        | None ->
            let targets = Hashtbl.create 4 in
            Hashtbl.replace t.by_query query_key targets;
            targets
      in
      Hashtbl.replace targets target_key ();
      (match t.instruments with
      | Some ins -> Obs.Metrics.Counter.incr ins.installs
      | None -> ());
      true

let clear t =
  Lru.fold t.lru ~init:() ~f:(fun () _key id -> release t id);
  Lru.clear t.lru;
  Hashtbl.reset t.by_query

let size t = Lru.length t.lru

let capacity t = Lru.capacity t.lru

let is_full t =
  match Lru.capacity t.lru with None -> false | Some c -> Lru.length t.lru >= c

let entries t =
  List.filter_map
    (fun (_key, id) ->
      if expired t id then None else Stdx.Arena.Slots.get t.pairs id)
    (Lru.to_list t.lru)

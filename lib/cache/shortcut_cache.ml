(* Entries live in an LRU keyed by the (query, target) string pair, with a
   secondary index from query string to the set of its cached pairs so that
   [find] is proportional to the number of shortcuts for that query, not the
   cache size.  The LRU eviction hook keeps the secondary index in sync. *)

module String_pair = struct
  type t = string * string
end

(* Hit/miss/eviction counters, shared by every per-node cache built against
   the same registry (fetch-or-create returns one instrument per name). *)
type instruments = {
  hits : Obs.Metrics.Counter.t;
  misses : Obs.Metrics.Counter.t;
  evictions : Obs.Metrics.Counter.t;
  installs : Obs.Metrics.Counter.t;
}

type 'q t = {
  lru : (String_pair.t, 'q * 'q) Lru.t;
  by_query : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  instruments : instruments option;
}

let unindex by_query (query_key, target_key) =
  match Hashtbl.find_opt by_query query_key with
  | None -> ()
  | Some targets ->
      Hashtbl.remove targets target_key;
      if Hashtbl.length targets = 0 then Hashtbl.remove by_query query_key

let make_instruments registry =
  let counter name help = Obs.Metrics.counter registry ~help name in
  {
    hits = counter "p2pindex_cache_hits_total" "Shortcut lookups that found an entry";
    misses = counter "p2pindex_cache_misses_total" "Shortcut lookups that found nothing";
    evictions = counter "p2pindex_cache_evictions_total" "Entries evicted LRU-first";
    installs = counter "p2pindex_cache_installs_total" "Fresh shortcut pairs installed";
  }

let create ?metrics ~capacity () =
  let by_query = Hashtbl.create 16 in
  let instruments = Option.map make_instruments metrics in
  let on_evict pair _value =
    unindex by_query pair;
    match instruments with
    | Some ins -> Obs.Metrics.Counter.incr ins.evictions
    | None -> ()
  in
  { lru = Lru.create ?capacity ~on_evict (); by_query; instruments }

let count_outcome t ~hit =
  match t.instruments with
  | None -> ()
  | Some ins -> Obs.Metrics.Counter.incr (if hit then ins.hits else ins.misses)

let find t ~query_key =
  let found =
    match Hashtbl.find_opt t.by_query query_key with
    | None -> []
    | Some targets ->
        Hashtbl.fold
          (fun target_key () acc ->
            match Lru.find t.lru (query_key, target_key) with
            | Some pair -> pair :: acc
            | None -> acc)
          targets []
  in
  count_outcome t ~hit:(found <> []);
  found

let find_target t ~query_key ~target_key =
  let found =
    match Lru.find t.lru (query_key, target_key) with
    | Some (_query, target) -> Some target
    | None -> None
  in
  count_outcome t ~hit:(found <> None);
  found

let add t ~query_key ~target_key pair =
  let fresh = not (Lru.mem t.lru (query_key, target_key)) in
  Lru.add t.lru (query_key, target_key) pair;
  if fresh then begin
    let targets =
      match Hashtbl.find_opt t.by_query query_key with
      | Some targets -> targets
      | None ->
          let targets = Hashtbl.create 4 in
          Hashtbl.replace t.by_query query_key targets;
          targets
    in
    Hashtbl.replace targets target_key ();
    match t.instruments with
    | Some ins -> Obs.Metrics.Counter.incr ins.installs
    | None -> ()
  end;
  fresh

let size t = Lru.length t.lru

let capacity t = Lru.capacity t.lru

let is_full t =
  match Lru.capacity t.lru with None -> false | Some c -> Lru.length t.lru >= c

let entries t = List.map snd (Lru.to_list t.lru)

(* Entries live in an LRU keyed by the (query, target) string pair, with a
   secondary index from query string to the set of its cached pairs so that
   [find] is proportional to the number of shortcuts for that query, not the
   cache size.  The LRU eviction hook keeps the secondary index in sync.

   Entries are soft state under churn: each carries an expiry stamped from
   the cache's virtual clock at install time, and expired entries are
   purged lazily on access.  With the default infinite TTL nothing ever
   expires and the cache behaves exactly as the static version did. *)

module String_pair = struct
  type t = string * string
end

type 'q cell = { pair : 'q * 'q; mutable expires_at : float }

(* Hit/miss/eviction counters, shared by every per-node cache built against
   the same registry (fetch-or-create returns one instrument per name). *)
type instruments = {
  hits : Obs.Metrics.Counter.t;
  misses : Obs.Metrics.Counter.t;
  evictions : Obs.Metrics.Counter.t;
  installs : Obs.Metrics.Counter.t;
  expirations : Obs.Metrics.Counter.t;
}

type 'q t = {
  lru : (String_pair.t, 'q cell) Lru.t;
  by_query : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  clock : unit -> float;
  ttl : float;
  instruments : instruments option;
}

let unindex by_query (query_key, target_key) =
  match Hashtbl.find_opt by_query query_key with
  | None -> ()
  | Some targets ->
      Hashtbl.remove targets target_key;
      if Hashtbl.length targets = 0 then Hashtbl.remove by_query query_key

let make_instruments registry =
  let counter name help = Obs.Metrics.counter registry ~help name in
  {
    hits = counter "p2pindex_cache_hits_total" "Shortcut lookups that found an entry";
    misses = counter "p2pindex_cache_misses_total" "Shortcut lookups that found nothing";
    evictions = counter "p2pindex_cache_evictions_total" "Entries evicted LRU-first";
    installs = counter "p2pindex_cache_installs_total" "Fresh shortcut pairs installed";
    expirations =
      counter "p2pindex_cache_expirations_total" "Entries dropped because their TTL ran out";
  }

let create ?metrics ?(clock = fun () -> 0.0) ?(ttl = infinity) ~capacity () =
  if not (ttl > 0.) then invalid_arg "Shortcut_cache.create: ttl must be > 0";
  let by_query = Hashtbl.create 16 in
  let instruments = Option.map make_instruments metrics in
  let on_evict pair _cell =
    unindex by_query pair;
    match instruments with
    | Some ins -> Obs.Metrics.Counter.incr ins.evictions
    | None -> ()
  in
  { lru = Lru.create ?capacity ~on_evict (); by_query; clock; ttl; instruments }

let expired t cell = cell.expires_at <= t.clock ()

(* [Lru.remove] bypasses the eviction hook, so unindex by hand. *)
let purge t key =
  ignore (Lru.remove t.lru key);
  unindex t.by_query key;
  match t.instruments with
  | Some ins -> Obs.Metrics.Counter.incr ins.expirations
  | None -> ()

(* Fetch a pair if cached and fresh, purging it when its TTL ran out. *)
let live_find t key =
  match Lru.find t.lru key with
  | None -> None
  | Some cell ->
      if expired t cell then begin
        purge t key;
        None
      end
      else Some cell.pair

let count_outcome t ~hit =
  match t.instruments with
  | None -> ()
  | Some ins -> Obs.Metrics.Counter.incr (if hit then ins.hits else ins.misses)

let find t ~query_key =
  let found =
    match Hashtbl.find_opt t.by_query query_key with
    | None -> []
    | Some targets ->
        (* Collect first (purging while iterating would mutate [targets]
           underneath us), in sorted order so the result list — and any
           simulation decision made over it — is iteration-order free. *)
        let target_keys = Stdx.Det_tbl.sorted_keys ~compare:String.compare targets in
        List.filter_map
          (fun target_key -> live_find t (query_key, target_key))
          target_keys
  in
  count_outcome t ~hit:(found <> []);
  found

let find_target t ~query_key ~target_key =
  let found =
    match live_find t (query_key, target_key) with
    | Some (_query, target) -> Some target
    | None -> None
  in
  count_outcome t ~hit:(found <> None);
  found

let add t ~query_key ~target_key pair =
  let key = (query_key, target_key) in
  (* An expired leftover is not a refresh: drop it so the install counts
     (and recurses through the eviction path) as fresh. *)
  (match Lru.peek t.lru key with
  | Some cell when expired t cell -> purge t key
  | Some _ | None -> ());
  let fresh = not (Lru.mem t.lru key) in
  let expires_at = if t.ttl = infinity then infinity else t.clock () +. t.ttl in
  Lru.add t.lru key { pair; expires_at };
  if fresh then begin
    let targets =
      match Hashtbl.find_opt t.by_query query_key with
      | Some targets -> targets
      | None ->
          let targets = Hashtbl.create 4 in
          Hashtbl.replace t.by_query query_key targets;
          targets
    in
    Hashtbl.replace targets target_key ();
    match t.instruments with
    | Some ins -> Obs.Metrics.Counter.incr ins.installs
    | None -> ()
  end;
  fresh

let clear t =
  Lru.clear t.lru;
  Hashtbl.reset t.by_query

let size t = Lru.length t.lru

let capacity t = Lru.capacity t.lru

let is_full t =
  match Lru.capacity t.lru with None -> false | Some c -> Lru.length t.lru >= c

let entries t =
  List.filter_map
    (fun (_key, cell) -> if expired t cell then None else Some cell.pair)
    (Lru.to_list t.lru)

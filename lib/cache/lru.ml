(* Classic design: entries live in a hash table for O(1) lookup and in an
   intrusive doubly-linked list ordered by recency (head = most recent).
   The list uses option-linked records; the invariants are
     - head has no prev, tail has no next,
     - table and list always hold exactly the same entries. *)

type ('k, 'v) entry = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) entry option;
  mutable next : ('k, 'v) entry option;
}

type ('k, 'v) t = {
  capacity : int option;
  on_evict : 'k -> 'v -> unit;
  table : ('k, ('k, 'v) entry) Hashtbl.t;
  mutable head : ('k, 'v) entry option;
  mutable tail : ('k, 'v) entry option;
}

let create ?capacity ?(on_evict = fun _ _ -> ()) () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Lru.create: capacity must be positive"
  | Some _ | None -> ());
  { capacity; on_evict; table = Hashtbl.create 16; head = None; tail = None }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let is_empty t = length t = 0

let unlink t entry =
  (match entry.prev with
  | Some p -> p.next <- entry.next
  | None -> t.head <- entry.next);
  (match entry.next with
  | Some n -> n.prev <- entry.prev
  | None -> t.tail <- entry.prev);
  entry.prev <- None;
  entry.next <- None

let push_front t entry =
  entry.next <- t.head;
  entry.prev <- None;
  (match t.head with Some h -> h.prev <- Some entry | None -> t.tail <- Some entry);
  t.head <- Some entry

let touch t entry =
  match t.head with
  (* lint: allow phys-equal — intrusive-list node identity, not structural equality *)
  | Some h when h == entry -> ()
  | Some _ | None ->
      unlink t entry;
      push_front t entry

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some entry ->
      touch t entry;
      Some entry.value

let peek t k =
  match Hashtbl.find_opt t.table k with None -> None | Some entry -> Some entry.value

let mem t k = Hashtbl.mem t.table k

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some entry ->
      unlink t entry;
      Hashtbl.remove t.table entry.key;
      t.on_evict entry.key entry.value

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some entry ->
      entry.value <- v;
      touch t entry
  | None ->
      (match t.capacity with
      | Some c when Hashtbl.length t.table >= c -> evict_lru t
      | Some _ | None -> ());
      let entry = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k entry;
      push_front t entry

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> false
  | Some entry ->
      unlink t entry;
      Hashtbl.remove t.table k;
      true

let fold t ~init ~f =
  let rec walk acc = function
    | None -> acc
    | Some entry -> walk (f acc entry.key entry.value) entry.next
  in
  walk init t.head

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

module Xml = Xmlkit.Xml

type axis = Child | Descendant

type test = Name of string | Prefix of string | Wildcard

type node = { axis : axis; test : test; children : node list }

type t = node list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Canonical rendering.  Normalization sorts children by this rendering,
   which makes [to_string] deterministic and injective, so the rendered
   string doubles as the DHT hashing key. *)

let axis_string = function Child -> "/" | Descendant -> "//"

let test_string = function Name n -> n | Prefix p -> p ^ "*" | Wildcard -> "*"

let rec render_node buffer n =
  Buffer.add_string buffer (test_string n.test);
  match n.children with
  | [] -> ()
  | [ only ] ->
      (* Single-child chains print inline: first/John. *)
      Buffer.add_string buffer (axis_string only.axis);
      render_node buffer only
  | many ->
      List.iter
        (fun child ->
          Buffer.add_char buffer '[';
          if child.axis = Descendant then Buffer.add_string buffer "//";
          render_node buffer child;
          Buffer.add_char buffer ']')
        many

let node_string n =
  let buffer = Buffer.create 64 in
  render_node buffer n;
  Buffer.contents buffer

let to_string q =
  let buffer = Buffer.create 64 in
  List.iter
    (fun top ->
      Buffer.add_string buffer (axis_string top.axis);
      render_node buffer top)
    q;
  Buffer.contents buffer

let pp ppf q = Format.pp_print_string ppf (to_string q)

(* ------------------------------------------------------------------ *)
(* Pattern homomorphism, used both for the covering relation and for
   normalization (a predicate subsumed by a sibling is redundant and gets
   minimized away, giving equivalent queries a unique normal form). *)

let is_prefix p s =
  String.length p <= String.length s && String.equal p (String.sub s 0 (String.length p))

let test_covers general specific =
  match (general, specific) with
  | Wildcard, (Name _ | Prefix _ | Wildcard) -> true
  | Name n, Name n' -> String.equal n n'
  | Name _, (Prefix _ | Wildcard) -> false
  | Prefix p, Name n -> is_prefix p n
  (* Prefix-vs-prefix subsumption is deliberately asymmetric: [Smi*] covers
     [Smith*] because every name starting with "Smith" also starts with
     "Smi" — the SHORTER pattern is the more general one, so the covering
     test asks whether [p] (general) is a prefix of [p'] (specific), never
     the reverse.  [Smith*] does not cover [Smi*]: "Smirnov" matches the
     latter only. *)
  | Prefix p, Prefix p' -> is_prefix p p'
  | Prefix p, Wildcard -> String.equal p ""

let rec pnode_maps_to general specific =
  test_covers general.test specific.test
  && List.for_all (fun gchild -> has_target specific gchild) general.children

and has_target specific gchild =
  match gchild.axis with
  | Child ->
      List.exists
        (fun schild -> schild.axis = Child && pnode_maps_to gchild schild)
        specific.children
  | Descendant ->
      List.exists
        (fun schild -> pnode_maps_to gchild schild || has_target schild gchild)
        specific.children

(* Does requiring sibling [keeper] (from the same parent) already imply
   sibling [candidate]?  True when [candidate] embeds into [keeper] and the
   root axes are compatible: a descendant-axis candidate is implied by any
   downward match, a child-axis one only by a child-axis keeper. *)
let sibling_subsumes ~keeper ~candidate =
  (match (candidate.axis, keeper.axis) with
  | Descendant, (Child | Descendant) -> pnode_maps_to candidate keeper || has_target keeper candidate
  | Child, Child -> pnode_maps_to candidate keeper
  | Child, Descendant -> false)

(* ------------------------------------------------------------------ *)
(* Construction and normalization. *)

let compare_nodes a b = String.compare (node_string a) (node_string b)

let minimize children =
  (* Drop any node subsumed by another remaining sibling; one at a time so
     that mutually-subsuming (equivalent) siblings leave one survivor. *)
  let rec drop_one kept = function
    | [] -> None
    | c :: rest ->
        let others = List.rev_append kept rest in
        if List.exists (fun keeper -> sibling_subsumes ~keeper ~candidate:c) others then
          Some others
        else drop_one (c :: kept) rest
  in
  let rec fixpoint children =
    match drop_one [] children with
    | Some smaller -> fixpoint smaller
    | None -> children
  in
  fixpoint children

let normalize_children children =
  let sorted = List.sort compare_nodes children in
  let rec dedup = function
    | a :: b :: rest when compare_nodes a b = 0 -> dedup (b :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  List.sort compare_nodes (minimize (dedup sorted))

let node ?(axis = Child) test children = { axis; test; children = normalize_children children }

let named ?axis n children = node ?axis (Name n) children

let value_leaf v = named v []

let query tops = normalize_children tops

let top_nodes q = q
let node_axis n = n.axis
let node_test n = n.test
let node_children n = n.children

let compare a b = String.compare (to_string a) (to_string b)
let equal a b = compare a b = 0

(* ------------------------------------------------------------------ *)
(* Parsing.  Grammar:
     query := (('/' | '//') step)+
     step  := test pred* ( ('/' | '//') step )?     -- inline chain
     pred  := '[' ('//')? step ']'
     test  := '*' | token
   Tokens may contain any characters except '/', '[', ']' and '*'. *)

type cursor = { input : string; mutable pos : int }

let peek c = if c.pos < String.length c.input then Some c.input.[c.pos] else None

let looking_at c prefix =
  let len = String.length prefix in
  c.pos + len <= String.length c.input && String.sub c.input c.pos len = prefix

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let parse_axis c =
  if looking_at c "//" then begin
    c.pos <- c.pos + 2;
    Descendant
  end
  else if looking_at c "/" then begin
    c.pos <- c.pos + 1;
    Child
  end
  else fail c "expected '/' or '//'"

let parse_test c =
  match peek c with
  | Some '*' ->
      c.pos <- c.pos + 1;
      Wildcard
  | Some _ ->
      let start = c.pos in
      let rec scan () =
        match peek c with
        | Some ('/' | '[' | ']' | '*') | None -> ()
        | Some _ ->
            c.pos <- c.pos + 1;
            scan ()
      in
      scan ();
      if c.pos = start then fail c "expected a name test";
      let name = String.trim (String.sub c.input start (c.pos - start)) in
      (* A trailing '*' turns the name into a prefix test: [Smi*]. *)
      if peek c = Some '*' then begin
        c.pos <- c.pos + 1;
        Prefix name
      end
      else Name name
  | None -> fail c "expected a name test"

let rec parse_step c =
  let test = parse_test c in
  let rec parse_preds acc =
    match peek c with
    | Some '[' ->
        c.pos <- c.pos + 1;
        let axis = if looking_at c "//" then (c.pos <- c.pos + 2; Descendant) else Child in
        let sub = parse_step c in
        let sub = { sub with axis } in
        (match peek c with
        | Some ']' -> c.pos <- c.pos + 1
        | Some _ | None -> fail c "expected ']'");
        parse_preds (sub :: acc)
    | Some _ | None -> List.rev acc
  in
  let preds = parse_preds [] in
  (* Inline chain: a '/' here continues below this step. *)
  match peek c with
  | Some '/' ->
      let axis = parse_axis c in
      let sub = parse_step c in
      node test (({ sub with axis } : node) :: preds)
  | Some _ | None -> node test preds

and parse_top c =
  let axis = parse_axis c in
  let step = parse_step c in
  { step with axis }

let of_string input =
  let trimmed = String.trim input in
  if String.equal trimmed "" then raise (Parse_error "empty query");
  let c = { input = trimmed; pos = 0 } in
  let rec loop acc =
    if c.pos >= String.length trimmed then List.rev acc
    else if looking_at c "/" then loop (parse_top c :: acc)
    else fail c "unexpected trailing content"
  in
  let tops = loop [] in
  match tops with
  | [] -> raise (Parse_error "empty query")
  | _ :: _ -> query tops

(* ------------------------------------------------------------------ *)
(* Matching: embed the pattern into a document tree. *)

let test_matches_doc test (dnode : Xml.t) =
  match (test, dnode) with
  | Wildcard, _ -> true
  | Name n, Xml.Element (n', _, _) -> String.equal n n'
  | Name n, Xml.Text s -> String.equal n s
  | Prefix p, Xml.Element (n', _, _) -> is_prefix p n'
  | Prefix p, Xml.Text s -> is_prefix p s

let rec doc_node_matches dnode pnode =
  test_matches_doc pnode.test dnode
  && List.for_all (fun child -> doc_has_embedding dnode child) pnode.children

and doc_has_embedding dnode child =
  match child.axis with
  | Child -> List.exists (fun c -> doc_node_matches c child) (Xml.children dnode)
  | Descendant ->
      List.exists
        (fun c -> doc_node_matches c child || doc_has_embedding c child)
        (Xml.children dnode)

let matches q doc =
  (* The document root is the single child of a virtual root context. *)
  let match_top top =
    match top.axis with
    | Child -> doc_node_matches doc top
    | Descendant -> doc_node_matches doc top || doc_has_embedding doc top
  in
  List.for_all match_top q

(* ------------------------------------------------------------------ *)
(* Most specific query of a descriptor: mirror the whole document. *)

let rec pattern_of_doc (dnode : Xml.t) =
  match dnode with
  | Xml.Text s -> value_leaf s
  | Xml.Element (n, _, children) -> named n (List.map pattern_of_doc children)

let of_document doc = query [ pattern_of_doc doc ]

(* ------------------------------------------------------------------ *)
(* Covering: homomorphism from the covering pattern into the covered one
   (pnode_maps_to / has_target above). *)

let covers general specific =
  let top_has_target gtop =
    match gtop.axis with
    | Child ->
        List.exists (fun stop -> stop.axis = Child && pnode_maps_to gtop stop) specific
    | Descendant ->
        List.exists
          (fun stop -> pnode_maps_to gtop stop || has_target stop gtop)
          specific
  in
  List.for_all top_has_target general

(* ------------------------------------------------------------------ *)
(* Size measures and generalization. *)

let rec node_prefix_terms n acc =
  let acc =
    match n.test with Prefix p -> p :: acc | Name _ | Wildcard -> acc
  in
  List.fold_left (fun acc c -> node_prefix_terms c acc) acc n.children

let prefix_terms q =
  List.rev (List.fold_left (fun acc n -> node_prefix_terms n acc) [] q)

let rec count_node n = 1 + List.fold_left (fun acc c -> acc + count_node c) 0 n.children

let node_count q = List.fold_left (fun acc n -> acc + count_node n) 0 q

let rec node_depth n =
  1 + List.fold_left (fun acc c -> Stdlib.max acc (node_depth c)) 0 n.children

let depth q = List.fold_left (fun acc n -> Stdlib.max acc (node_depth n)) 0 q

(* All ways of deleting exactly one leaf node from a node's subtree; each
   result is the subtree with that leaf removed, or None when the deleted
   leaf was the subtree itself. *)
let rec delete_one_leaf n =
  match n.children with
  | [] -> [ None ]
  | children ->
      let rec over_children before = function
        | [] -> []
        | child :: after ->
            let variants =
              List.map
                (fun deleted ->
                  let rebuilt =
                    match deleted with
                    | None -> List.rev_append before after
                    | Some child' -> List.rev_append before (child' :: after)
                  in
                  Some (node ~axis:n.axis n.test rebuilt))
                (delete_one_leaf child)
            in
            variants @ over_children (child :: before) after
      in
      over_children [] children

let generalizations q =
  let rec over_tops before = function
    | [] -> []
    | top :: after ->
        let variants =
          List.filter_map
            (fun deleted ->
              match deleted with
              | None ->
                  (* Deleting a whole top-level pattern: only allowed when
                     something remains. *)
                  let rest = List.rev_append before after in
                  if rest = [] then None else Some (query rest)
              | Some top' -> Some (query (List.rev_append before (top' :: after))))
            (delete_one_leaf top)
        in
        variants @ over_tops (top :: before) after
  in
  let results = over_tops [] q in
  (* Deduplicate: symmetric subtrees can yield the same generalization. *)
  List.sort_uniq compare results

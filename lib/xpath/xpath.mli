(** The XPath subset of Section III-B, with the covering relation.

    A query is an existential tree pattern over XML documents: location steps
    separated by [/] (child) or [//] (descendant), element name tests or the
    wildcard [*], and nested predicates in brackets.  Values are written as
    final location steps, as in the paper:

    {v /article[author[first/John][last/Smith]][conf/INFOCOM] v}

    Semantics: a document {e matches} a query iff there is an embedding of
    the pattern into the document tree — name tests match elements of that
    name or text nodes with that content, [*] matches any node, child edges
    map to parent/child edges, descendant edges to downward paths.

    Queries are kept in a canonical normal form (predicates sorted
    recursively), so equivalent expressions written in different orders
    compare equal — the "unique normalized format" the paper assumes. *)

type axis =
  | Child  (** [/] — direct child. *)
  | Descendant  (** [//] — any strict descendant. *)

type test =
  | Name of string  (** An element name, or a value at leaf position. *)
  | Prefix of string
      (** [p*] — any element or value starting with [p]: the "substring
          matching" generalization of Section IV-C (e.g. all authors whose
          name starts with a given letter). *)
  | Wildcard  (** [*] — matches any node. *)

type node
(** One pattern node: an incoming axis, a test, and sub-patterns. *)

type t
(** A normalized query. *)

val node : ?axis:axis -> test -> node list -> node
(** Build a pattern node; children are normalized: sorted, deduplicated,
    and {e minimized} — a sub-pattern subsumed by a sibling (e.g. the
    redundant [author/last/Smith] next to [author[first/John][last/Smith]])
    is dropped, so equivalent expressions share one normal form.  [axis]
    defaults to [Child]. *)

val named : ?axis:axis -> string -> node list -> node
(** [named n subs] is [node ~axis (Name n) subs]. *)

val value_leaf : string -> node
(** A leaf value test, e.g. the [John] in [first/John]. *)

val query : node list -> t
(** A query from its top-level pattern nodes (normalized). *)

val top_nodes : t -> node list
val node_axis : node -> axis
val node_test : node -> test
val node_children : node -> node list

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
(** Canonical rendering: single-child chains print inline ([first/John]),
    multi-child nodes print bracketed predicates.  [to_string] is injective
    on normalized queries and is the string hashed into the DHT key space. *)

val pp : Format.formatter -> t -> unit

exception Parse_error of string

val of_string : string -> t
(** Parse and normalize.  @raise Parse_error on malformed input. *)

val matches : t -> Xmlkit.Xml.t -> bool
(** [matches q doc]: does [doc] match [q]? *)

val of_document : Xmlkit.Xml.t -> t
(** The {e most specific query} (MSD) of a descriptor: the pattern that tests
    the presence of every element and value in the document (Section III-B).
    [matches (of_document d) d] always holds. *)

val covers : t -> t -> bool
(** [covers q' q] is the covering relation [q' ⊒ q]: every document matching
    [q] also matches [q'].  Decided by searching for a pattern homomorphism
    from [q'] into [q] — sound in general, and complete for patterns that do
    not combine [//] and [*] (all queries in this project).  Reflexive and
    transitive; a partial order on normalized queries.

    On prefix tests the relation is asymmetric by design: [Smi*] covers
    [Smith*] (the {e shorter} pattern is the more general one), while
    [Smith*] does not cover [Smi*]. *)

val prefix_terms : t -> string list
(** Every [Prefix] test string in the query, in canonical (normalized
    rendering) order — what the routed prefix scheme compiles into range
    queries.  Empty when the query has no [p*] step. *)

val node_count : t -> int
(** Number of pattern nodes (a size measure for storage accounting). *)

val depth : t -> int
(** Height of the deepest pattern branch. *)

val generalizations : t -> t list
(** Immediate generalizations: all queries obtained by deleting one leaf
    pattern node (never the whole query).  Each result covers the input.
    Empty when only a single pattern node remains. *)

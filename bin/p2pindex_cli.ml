(* p2pindex — command-line front end.

   Subcommands:
     simulate    run one Section V simulation and print its report
     experiment  regenerate one of the paper's tables/figures
     corpus      generate a synthetic DBLP-like corpus as XML
     search      publish a corpus and answer field queries against it
     chord       exercise the Chord substrate (joins, lookups, churn)
     metrics     render an exported metrics snapshot as a table *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument parsers. *)

let scheme_arg =
  let parse s =
    match Bib.Schemes.of_label s with
    | Some kind -> Ok kind
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown scheme %S (simple|flat|complex|complex+ac|prefix)" s))
  in
  let print ppf kind = Format.pp_print_string ppf (Bib.Schemes.label kind) in
  Arg.conv (parse, print)

let policy_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "none" | "no-cache" -> Ok Cache.Policy.no_cache
    | "single" -> Ok Cache.Policy.single_cache
    | "multi" -> Ok Cache.Policy.multi_cache
    | other ->
        if String.length other > 3 && String.sub other 0 3 = "lru" then
          match int_of_string_opt (String.sub other 3 (String.length other - 3)) with
          | Some k when k > 0 -> Ok (Cache.Policy.lru k)
          | Some _ | None -> Error (`Msg "LRU capacity must be a positive integer")
        else Error (`Msg (Printf.sprintf "unknown policy %S (none|single|multi|lru<K>)" s))
  in
  let print ppf p = Format.pp_print_string ppf (Cache.Policy.label p) in
  Arg.conv (parse, print)

let seed_term =
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let nodes_term default =
  Arg.(value & opt int default & info [ "nodes" ] ~docv:"N" ~doc:"Number of peer nodes.")

let articles_term default =
  Arg.(value & opt int default & info [ "articles" ] ~docv:"N" ~doc:"Corpus size.")

let verbose_term =
  Arg.(value & flag_all
       & info [ "v"; "verbose" ]
           ~doc:"Print telemetry events to stderr (repeat for per-operation detail).")

(* Output paths are validated up front — the writers pick their format from
   the suffix, so a typo would silently produce the wrong format at the end
   of a long run. *)
let out_path_arg ~what ~allowed =
  let parse s =
    if List.exists (Filename.check_suffix s) allowed then Ok s
    else
      Error
        (`Msg
           (Printf.sprintf "%s file %S must end in %s" what s
              (String.concat " or " allowed)))
  in
  Arg.conv (parse, Format.pp_print_string)

let metrics_path_arg = out_path_arg ~what:"metrics" ~allowed:[ ".prom"; ".txt"; ".json" ]
let trace_path_arg = out_path_arg ~what:"trace" ~allowed:[ ".jsonl" ]

let apply_verbosity = function
  | [] -> ()
  | [ _ ] ->
      Obs.Log.install_reporter ();
      Obs.Log.set_verbosity Obs.Log.Events
  | _ :: _ :: _ ->
      Obs.Log.install_reporter ();
      Obs.Log.set_verbosity Obs.Log.Debug

(* ------------------------------------------------------------------ *)
(* simulate *)

let simulate_cmd =
  let run scheme policy nodes articles queries seed substrate hops churn_rate ttl
      republish replication loss_rate duplicate_rate latency rpc_timeout rpc_retries
      hedge prefix_len multicast read_quorum write_quorum anti_entropy concurrency
      coalesce shards domains trace metrics_out trace_out profile_phases verbose =
    apply_verbosity verbose;
    (* Scale flags are validated before anything is built: at large scale
       a bad combination used to fail minutes into setup with an obscure
       exception from deep inside replica resolution. *)
    if nodes < 1 then begin
      Printf.eprintf "simulate: --nodes must be >= 1 (got %d)\n" nodes;
      exit 2
    end;
    if articles < 1 then begin
      Printf.eprintf "simulate: --articles must be >= 1 (got %d)\n" articles;
      exit 2
    end;
    if queries < 1 then begin
      Printf.eprintf "simulate: --queries must be >= 1 (got %d)\n" queries;
      exit 2
    end;
    (* Prefix flags are checked before anything is built, in the same
       up-front style as the engine flags below. *)
    if (prefix_len <> None || multicast) && scheme <> Bib.Schemes.Prefix then begin
      prerr_endline
        "simulate: --prefix-len and --multicast require --scheme prefix";
      exit 2
    end;
    (match prefix_len with
    | Some l when l < 1 || l > Prefix.Prefix_key.max_bytes ->
        Printf.eprintf "simulate: --prefix-len must be in [1, %d] (got %d)\n"
          Prefix.Prefix_key.max_bytes l;
        exit 2
    | Some _ | None -> ());
    (* Engine flags are checked before anything is built, so a bad
       combination fails fast with a clear message. *)
    if concurrency < 1 then begin
      Printf.eprintf "simulate: --concurrency must be >= 1 (got %d)\n" concurrency;
      exit 2
    end;
    if coalesce && concurrency = 1 then begin
      prerr_endline
        "simulate: --coalesce requires --concurrency > 1 (coalescing needs \
         overlapping sessions to merge)";
      exit 2
    end;
    let churn =
      match churn_rate with
      | Some rate ->
          let c = Sim.Runner.default_churn in
          Some
            {
              c with
              Sim.Runner.churn_rate = rate;
              ttl = Option.value ttl ~default:c.ttl;
              republish_period = Option.value republish ~default:c.republish_period;
              replication = Option.value replication ~default:c.replication;
            }
      | None ->
          if ttl <> None || republish <> None then begin
            prerr_endline "simulate: --ttl and --republish require --churn-rate";
            exit 2
          end;
          None
    in
    let fault_requested =
      loss_rate <> None || duplicate_rate <> None || latency <> None
      || rpc_timeout <> None || rpc_retries <> None || hedge
    in
    let faults =
      if not fault_requested then None
      else
        let f = Sim.Runner.default_faults in
        Some
          {
            Sim.Runner.loss_rate = Option.value loss_rate ~default:f.loss_rate;
            duplicate_rate = Option.value duplicate_rate ~default:f.duplicate_rate;
            latency_mean = Option.value latency ~default:f.latency_mean;
            rpc_timeout = Option.value rpc_timeout ~default:f.rpc_timeout;
            rpc_retries = Option.value rpc_retries ~default:f.rpc_retries;
            hedge;
            fault_replication = Option.value replication ~default:f.fault_replication;
          }
    in
    if replication <> None && churn = None && faults = None then begin
      prerr_endline
        "simulate: --replication requires --churn-rate or a fault flag";
      exit 2
    end;
    (match faults with
    | Some f ->
        let bad fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt in
        let check_rate name r =
          if not (r >= 0.0 && r <= 1.0) then
            bad "simulate: %s must be in [0, 1] (got %g)" name r
        in
        check_rate "--loss-rate" f.Sim.Runner.loss_rate;
        check_rate "--duplicate-rate" f.duplicate_rate;
        if not (f.latency_mean >= 0.0) then
          bad "simulate: --latency must be >= 0 (got %g)" f.latency_mean;
        if not (f.rpc_timeout > 0.0) then
          bad "simulate: --rpc-timeout must be > 0 (got %g)" f.rpc_timeout;
        if f.rpc_retries < 0 then
          bad "simulate: --rpc-retries must be >= 0 (got %d)" f.rpc_retries
    | None -> ());
    (* Quorum flags are validated against the replication factor the
       churn/fault blocks configure, before anything is built. *)
    let quorum_requested =
      read_quorum <> None || write_quorum <> None || anti_entropy <> None
    in
    let quorum =
      if not quorum_requested then None
      else begin
        let repl =
          let cr =
            match churn with Some c -> c.Sim.Runner.replication | None -> 1
          in
          let fr =
            match faults with
            | Some f -> f.Sim.Runner.fault_replication
            | None -> 1
          in
          Stdlib.max cr fr
        in
        let check_quorum name = function
          | Some q when q < 1 || q > repl ->
              Printf.eprintf
                "simulate: %s must be in [1, replication] (got %d, replication \
                 %d)\n"
                name q repl;
              exit 2
          | Some _ | None -> ()
        in
        check_quorum "--read-quorum" read_quorum;
        check_quorum "--write-quorum" write_quorum;
        (match anti_entropy with
        | Some i when not (i >= 0.0) ->
            Printf.eprintf
              "simulate: --anti-entropy-interval must be >= 0 (got %g)\n" i;
            exit 2
        | Some i when i > 0.0 && churn = None ->
            prerr_endline
              "simulate: --anti-entropy-interval requires --churn-rate (the \
               churn driver schedules the passes)";
            exit 2
        | Some _ | None -> ());
        Some
          {
            Sim.Runner.read_quorum = Option.value read_quorum ~default:1;
            write_quorum = Option.value write_quorum ~default:repl;
            anti_entropy_interval = Option.value anti_entropy ~default:0.0;
          }
      end
    in
    (* Sharding flags.  --shards is the logical partition (it changes the
       modelled network: S isolated slices); --domains is pure scheduling
       and can never change a byte of the output.  Feasibility is checked
       here so a million-node run fails in milliseconds, not minutes. *)
    if shards < 1 then begin
      Printf.eprintf "simulate: --shards must be >= 1 (got %d)\n" shards;
      exit 2
    end;
    if domains < 1 then begin
      Printf.eprintf "simulate: --domains must be >= 1 (got %d)\n" domains;
      exit 2
    end;
    let repl =
      Stdlib.max
        (match churn with Some c -> c.Sim.Runner.replication | None -> 1)
        (match faults with Some f -> f.Sim.Runner.fault_replication | None -> 1)
    in
    if repl > nodes then begin
      Printf.eprintf
        "simulate: replication %d exceeds --nodes %d (every replica needs a \
         distinct node)\n"
        repl nodes;
      exit 2
    end;
    if shards > 1 then begin
      if shards > nodes || shards > articles || shards > queries then begin
        Printf.eprintf
          "simulate: --shards %d needs at least that many nodes, articles and \
           queries (got %d/%d/%d)\n"
          shards nodes articles queries;
        exit 2
      end;
      if repl > nodes / shards then begin
        Printf.eprintf
          "simulate: replication %d does not fit the smallest of %d shards \
           (%d nodes per shard)\n"
          repl shards (nodes / shards);
        exit 2
      end;
      if trace <> None || trace_out <> None then begin
        prerr_endline
          "simulate: --trace and --trace-out are per-run facilities; not \
           available with --shards > 1";
        exit 2
      end
    end;
    if profile_phases && Stdlib.min domains shards > 1 then begin
      prerr_endline
        "simulate: --profile-phases needs a single worker domain (GC counters \
         are per-domain); use --domains 1";
      exit 2
    end;
    (* Prefix runs carve a browsing share out of the author-only class so
       the routed scheme actually sees Author_prefix queries; every other
       scheme keeps the untouched BibFinder mix. *)
    let prefix, mix =
      if scheme = Bib.Schemes.Prefix then
        ( Some
            {
              Sim.Runner.prefix_len = Option.value prefix_len ~default:1;
              multicast;
            },
          Workload.Query_gen.prefix_mix Sim.Runner.default_config.mix )
      else (None, Sim.Runner.default_config.mix)
    in
    let config =
      {
        Sim.Runner.default_config with
        scheme;
        policy;
        node_count = nodes;
        article_count = articles;
        query_count = queries;
        seed;
        substrate;
        charge_route_hops = hops;
        mix;
        churn;
        faults;
        prefix;
        quorum;
      }
    in
    let events =
      Option.map
        (fun path ->
          let corpus =
            Bib.Corpus.generate ~seed (Bib.Corpus.default_config ~article_count:articles)
          in
          let lines = In_channel.with_open_text path Workload.Trace.load_lines in
          Workload.Trace.replay ~articles:corpus lines)
        trace
    in
    let tracer = Option.map (fun _path -> Obs.Trace.create ()) trace_out in
    (* Profiling reads the monotonic clock, so it is strictly opt-in: the
       default run keeps its byte-reproducible report and snapshot. *)
    let phases =
      if profile_phases then Some (Obs.Phase.create ~clock:Monotonic_clock.now ())
      else None
    in
    (* The default path stays Engine.run verbatim (it alone supports trace
       replay and span collection); sharded runs go through the merge. *)
    let er, sharded =
      if shards = 1 then
        (* With one shard extra domains have nothing to schedule, so this is
           also the --domains N degenerate case — byte-identical by construction. *)
        (Sim.Engine.run ?events ?tracer ?phases ~concurrency ~coalesce config, None)
      else
        let sr = Sim.Sharded.run ~shards ~domains ?phases ~concurrency ~coalesce config in
        (sr.Sim.Sharded.engine, Some sr)
    in
    let r = er.Sim.Engine.base in
    let open Sim.Runner in
    let substrate_label =
      match substrate with
      | Static -> "oracle"
      | Chord -> "Chord"
      | Pastry -> "Pastry"
      | Can -> "CAN"
      | Kademlia -> "Kademlia"
    in
    Printf.printf "scheme %s, policy %s, %d nodes, %d articles, %d queries (%s substrate)%s\n"
      (Bib.Schemes.label scheme) (Cache.Policy.label policy) nodes articles
      (Stdx.Stats.Summary.count r.interactions)
      substrate_label
      (match trace with Some path -> " replaying " ^ path | None -> "");
    Printf.printf "  interactions/query      %8.3f\n" (interactions_mean r);
    Printf.printf "  normal traffic/query    %8.0f B\n" (normal_traffic_per_query r);
    Printf.printf "  cache traffic/query     %8.0f B\n" (cache_traffic_per_query r);
    Printf.printf "  hit ratio               %8.1f %%\n" (hit_ratio r *. 100.0);
    Printf.printf "  hits at first node      %8.1f %%\n" (first_node_hit_share r *. 100.0);
    Printf.printf "  non-indexed errors      %8d\n" r.errors;
    Printf.printf "  cached keys/node        %8.1f (max %d)\n" (cached_keys_mean r)
      (cached_keys_max r);
    Printf.printf "  regular keys/node       %8.0f\n" (regular_keys_mean r);
    Printf.printf "  index storage           %8s\n"
      (Stdx.Tabular.fmt_bytes (float_of_int r.index_bytes));
    Printf.printf "  article storage         %8s\n"
      (Stdx.Tabular.fmt_bytes (float_of_int r.article_bytes));
    (* Absolute per-category accounting: the same numbers land in the
       metrics snapshot and, split over spans, in the trace export. *)
    Printf.printf "  request bytes           %8d B\n" r.request_bytes;
    Printf.printf "  response bytes          %8d B\n" r.response_bytes;
    Printf.printf "  cache-update bytes      %8d B\n" r.cache_bytes;
    Printf.printf "  maintenance bytes       %8d B\n" r.maintenance_bytes;
    Printf.printf "  network messages        %8d\n" r.network_messages;
    (* Printed only for prefix-scheme runs, so every other report stays
       byte-identical to the historical output. *)
    (match config.Sim.Runner.prefix with
    | Some p ->
        Printf.printf "  prefix queries          %8d (len %d, %s)\n"
          (Obs.Metrics.counter_total r.metrics "p2pindex_prefix_queries_total")
          p.Sim.Runner.prefix_len
          (if p.Sim.Runner.multicast then "multicast dissemination"
           else "direct exchanges")
    | None -> ());
    (match churn with
    | Some c ->
        Printf.printf "  churn rate              %8.4f /node/s (replication %d, ttl %.0f s)\n"
          c.Sim.Runner.churn_rate c.replication c.ttl;
        Printf.printf "  availability            %8.1f %% (%d unreachable)\n"
          (availability r *. 100.0) r.unreachable;
        Printf.printf "  maintenance/query       %8.0f B\n" (maintenance_traffic_per_query r)
    | None -> ());
    (* Printed only when the fault plan actually perturbs the run, so the
       fault-free report stays byte-identical to the historical output. *)
    (match config.Sim.Runner.faults with
    | Some f when Sim.Runner.fault_active config ->
        Printf.printf
          "  fault plan              loss %.2f, dup %.2f, latency %.3f s (timeout %.2f s, %d retries%s)\n"
          f.Sim.Runner.loss_rate f.duplicate_rate f.latency_mean f.rpc_timeout
          f.rpc_retries
          (if f.hedge then ", hedged" else "");
        Printf.printf "  lookup success          %8.1f %% (%d of %d rpcs answered)\n"
          (lookup_success_rate r *. 100.0)
          (r.rpc_calls - r.rpc_exhausted)
          r.rpc_calls;
        Printf.printf "  rpc timeouts/retries    %8d / %d\n" r.rpc_timeouts r.rpc_retries;
        Printf.printf "  hedges fired/won        %8d / %d\n" r.rpc_hedges r.rpc_hedges_won;
        Printf.printf "  messages lost/duped     %8d / %d\n" r.rpc_lost_messages
          r.rpc_duplicates_suppressed
    | Some _ | None -> ());
    (* Printed only when the quorum block actually changes the run, so
       the plain report stays byte-identical to the historical output. *)
    (match config.Sim.Runner.quorum with
    | Some q when Sim.Runner.quorum_active config ->
        Printf.printf "  quorum                  R=%d, W=%d of %d replicas\n"
          q.Sim.Runner.read_quorum q.Sim.Runner.write_quorum
          (Sim.Runner.effective_replication config);
        Printf.printf "  quorum reads            %8d (stale %.2f %%, %d read repairs)\n"
          r.quorum_reads
          (stale_read_rate r *. 100.0)
          r.quorum_read_repairs;
        Printf.printf "  quorum writes           %8d (%d under-acknowledged)\n"
          r.quorum_writes r.quorum_write_failures;
        if q.Sim.Runner.anti_entropy_interval > 0.0 then
          Printf.printf
            "  anti-entropy            %8d rounds (digests %d B, shipped %d B; \
             full state %d B)\n"
            r.antientropy_rounds r.antientropy_digest_bytes
            r.antientropy_shipped_bytes r.antientropy_full_state_bytes
    | Some _ | None -> ());
    (* Printed only in concurrent mode, so the sequential report stays
       byte-identical to the historical output. *)
    if concurrency > 1 then begin
      Printf.printf "  concurrency             %8d (peak in flight %d)\n"
        er.Sim.Engine.concurrency er.Sim.Engine.peak_in_flight;
      Printf.printf "  session latency         %8.3f s mean\n"
        (Stdx.Stats.Summary.mean er.Sim.Engine.session_latency);
      if coalesce then
        Printf.printf "  coalesced probes        %8d\n" er.Sim.Engine.coalesced
    end;
    (* Printed only in sharded mode, so the unsharded report stays
       byte-identical to the historical output.  The worker count is
       deliberately absent: --domains is scheduling, and the whole report
       must stay byte-identical across it. *)
    (match sharded with
    | Some sr ->
        Printf.printf "  shards                  %8d (isolated slices, merged in shard order)\n"
          sr.Sim.Sharded.shard_count
    | None -> ());
    (match phases with
    | Some p ->
        print_string "\nphase profile (wall clock; p2pindex_phase_* / p2pindex_gc_* \
                      gauges ride the metrics snapshot):\n";
        print_string (Obs.Phase.render_table p)
    | None -> ());
    (match metrics_out with
    | Some path ->
        Obs.Export.write_metrics ~path r.metrics;
        Printf.printf "wrote metrics snapshot to %s\n" path
    | None -> ());
    (match (tracer, trace_out) with
    | Some collector, Some path ->
        Obs.Trace.end_trace collector;
        Obs.Export.write_trace_jsonl ~path collector;
        Printf.printf "wrote %d traces (%d spans) to %s\n"
          (Obs.Trace.trace_count collector)
          (Obs.Trace.span_count collector)
          path
    | _ -> ())
  in
  let scheme =
    Arg.(value & opt scheme_arg Bib.Schemes.Simple
         & info [ "scheme" ] ~docv:"SCHEME"
             ~doc:"Indexing scheme: simple, flat, complex, or prefix (the routed \
                   prefix/range scheme; gives the workload an author-prefix \
                   browsing share).")
  in
  let policy =
    Arg.(value & opt policy_arg Cache.Policy.no_cache
         & info [ "policy" ] ~docv:"POLICY" ~doc:"Cache policy: none, single, multi, lru<K>.")
  in
  let queries =
    Arg.(value & opt int 50_000 & info [ "queries" ] ~docv:"N" ~doc:"Workload length.")
  in
  let substrate =
    let substrate_conv =
      Arg.enum
        [
          ("static", Sim.Runner.Static);
          ("chord", Sim.Runner.Chord);
          ("pastry", Sim.Runner.Pastry);
          ("can", Sim.Runner.Can);
          ("kademlia", Sim.Runner.Kademlia);
        ]
    in
    Arg.(value
         & opt substrate_conv Sim.Runner.Static
         & info [ "substrate" ] ~docv:"SUBSTRATE" ~doc:"DHT substrate: static, chord, pastry, can, kademlia.")
  in
  let hops =
    Arg.(value & flag & info [ "charge-hops" ] ~doc:"Bill substrate routing hops as traffic.")
  in
  let churn_rate =
    Arg.(value & opt (some float) None
         & info [ "churn-rate" ] ~docv:"RATE"
             ~doc:"Run the churned mode: mean node failures per node per virtual second \
                   (sessions drawn with mean 1/RATE).")
  in
  let ttl =
    Arg.(value & opt (some float) None
         & info [ "ttl" ] ~docv:"SECONDS"
             ~doc:"Soft-state lifetime of index entries and shortcuts (requires \
                   $(b,--churn-rate); default 300).")
  in
  let republish =
    Arg.(value & opt (some float) None
         & info [ "republish" ] ~docv:"SECONDS"
             ~doc:"Period between republish rounds refreshing TTLs (requires \
                   $(b,--churn-rate); default 100).")
  in
  let replication =
    Arg.(value & opt (some int) None
         & info [ "replication" ] ~docv:"R"
             ~doc:"Replica nodes per index entry (requires $(b,--churn-rate) or a fault \
                   flag; default 3 under churn, 1 under faults).")
  in
  let loss_rate =
    Arg.(value & opt (some float) None
         & info [ "loss-rate" ] ~docv:"P"
             ~doc:"Drop each message with probability P (per direction); turns on the \
                   fault-injecting RPC layer.")
  in
  let duplicate_rate =
    Arg.(value & opt (some float) None
         & info [ "duplicate-rate" ] ~docv:"P"
             ~doc:"Deliver each surviving message twice with probability P.")
  in
  let latency =
    Arg.(value & opt (some float) None
         & info [ "latency" ] ~docv:"SECONDS"
             ~doc:"Mean of the exponential per-direction message latency (virtual \
                   seconds); round-trips beyond the RPC timeout fail.")
  in
  let rpc_timeout =
    Arg.(value & opt (some float) None
         & info [ "rpc-timeout" ] ~docv:"SECONDS"
             ~doc:"Deadline each RPC attempt waits for its reply (default 0.5).")
  in
  let rpc_retries =
    Arg.(value & opt (some int) None
         & info [ "rpc-retries" ] ~docv:"N"
             ~doc:"Extra attempts after a timeout, with exponential backoff (default 2).")
  in
  let hedge =
    Arg.(value & flag
         & info [ "hedge" ]
             ~doc:"Fire a hedged second request to the next replica when the first \
                   attempt runs past half the timeout.")
  in
  let prefix_len =
    Arg.(value & opt (some int) None
         & info [ "prefix-len" ] ~docv:"N"
             ~doc:"Last-name characters an author-prefix query keeps, in [1, 20] \
                   (requires $(b,--scheme) prefix; default 1).")
  in
  let multicast =
    Arg.(value & flag
         & info [ "multicast" ]
             ~doc:"Answer prefix queries and install the range index through the \
                   spanning-tree multicast instead of per-covering-node exchanges \
                   (requires $(b,--scheme) prefix).")
  in
  let read_quorum =
    Arg.(value & opt (some int) None
         & info [ "read-quorum" ] ~docv:"R"
             ~doc:"Consult R live replicas per lookup step and reconcile their \
                   answers by version vector, read-repairing divergence; within \
                   [1, replication] (default 1).")
  in
  let write_quorum =
    Arg.(value & opt (some int) None
         & info [ "write-quorum" ] ~docv:"W"
             ~doc:"Live-replica acknowledgements a write needs before it counts \
                   as fully acknowledged; within [1, replication] (default: the \
                   replication factor).")
  in
  let anti_entropy =
    Arg.(value & opt (some float) None
         & info [ "anti-entropy-interval" ] ~docv:"SECONDS"
             ~doc:"Replace the periodic full-state repair with digest-based \
                   anti-entropy passes at this interval (requires \
                   $(b,--churn-rate); 0 keeps the repair walk).")
  in
  let concurrency =
    Arg.(value & opt int 1
         & info [ "concurrency" ] ~docv:"N"
             ~doc:"Run up to N user sessions concurrently on the virtual clock \
                   (default 1: the sequential runner, byte-identical output).")
  in
  let coalesce =
    Arg.(value & flag
         & info [ "coalesce" ]
             ~doc:"Deduplicate identical in-flight lookups: followers ride the \
                   first probe's response for a small consultation ticket \
                   (requires $(b,--concurrency) > 1).")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"S"
             ~doc:"Partition the population into S isolated shards, each a \
                   complete simulation of its slice, merged deterministically \
                   (default 1: the unsharded network).")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Run shards on up to N parallel domains (clamped to the shard \
                   count).  Pure scheduling: the report is byte-identical for \
                   every N.")
  in
  let trace =
    Arg.(value & opt (some file) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Replay a query trace (see the workload subcommand) instead of generating one.")
  in
  let metrics_out =
    Arg.(value & opt (some metrics_path_arg) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write the run's metrics snapshot to FILE: .prom or .txt for Prometheus \
                   text, .json for JSON.")
  in
  let trace_out =
    Arg.(value & opt (some trace_path_arg) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Record one trace per user session and write them to FILE (.jsonl).")
  in
  let profile_phases =
    Arg.(value & flag
         & info [ "profile-phases" ]
             ~doc:"Profile the run's stages (setup, walk, tally, report): print a \
                   wall-clock and allocation table, and add the \
                   $(b,p2pindex_phase_*) and $(b,p2pindex_gc_*) gauges to the \
                   metrics snapshot.  Timings come from the real clock, so the \
                   report is no longer byte-reproducible.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one Section V simulation")
    Term.(
      const run $ scheme $ policy $ nodes_term 500 $ articles_term 10_000 $ queries
      $ seed_term $ substrate $ hops $ churn_rate $ ttl $ republish $ replication
      $ loss_rate $ duplicate_rate $ latency $ rpc_timeout $ rpc_retries $ hedge
      $ prefix_len $ multicast $ read_quorum $ write_quorum $ anti_entropy
      $ concurrency $ coalesce $ shards $ domains $ trace $ metrics_out
      $ trace_out $ profile_phases $ verbose_term)

(* ------------------------------------------------------------------ *)
(* experiment *)

let experiment_cmd =
  let run id quick =
    let scale = if quick then Sim.Experiments.quick_scale else Sim.Experiments.paper_scale in
    let grid = Sim.Experiments.Grid.create scale in
    match id with
    | None ->
        List.iter
          (fun id -> ignore (Sim.Experiments.print_experiment grid id))
          Sim.Experiments.all_experiment_ids
    | Some id ->
        if not (Sim.Experiments.print_experiment grid id) then begin
          Printf.eprintf "unknown experiment %S; known ids: %s\n" id
            (String.concat ", " Sim.Experiments.all_experiment_ids);
          exit 1
        end
  in
  let id =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"ID" ~doc:"Experiment id (fig7..fig15, storage, keys, table1, ...).")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced scale.") in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate one of the paper's tables or figures")
    Term.(const run $ id $ quick)

(* ------------------------------------------------------------------ *)
(* corpus *)

let corpus_cmd =
  let run count seed limit =
    let articles =
      Bib.Corpus.generate ~seed (Bib.Corpus.default_config ~article_count:count)
    in
    Array.iteri
      (fun i article ->
        if i < limit then
          print_endline (Xmlkit.Xml.to_string ~indent:true (Bib.Article.to_xml article)))
      articles;
    if count > limit then Printf.printf "<!-- ... %d more articles -->\n" (count - limit)
  in
  let limit =
    Arg.(value & opt int 10 & info [ "limit" ] ~docv:"N" ~doc:"Print at most N descriptors.")
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"Generate a synthetic DBLP-like corpus as XML descriptors")
    Term.(const run $ articles_term 100 $ seed_term $ limit)

(* ------------------------------------------------------------------ *)
(* search *)

let search_cmd =
  let run articles nodes seed scheme author title conf year =
    let corpus = Bib.Corpus.generate ~seed (Bib.Corpus.default_config ~article_count:articles) in
    let resolver = Dht.Static_dht.resolver (Dht.Static_dht.create ~seed ~node_count:nodes ()) in
    let index = Bib.Bib_index.create ~resolver () in
    Bib.Bib_index.publish_corpus index ~kind:scheme corpus;
    let author =
      Option.map
        (fun s ->
          match String.index_opt s ' ' with
          | Some i ->
              {
                Bib.Article.first = String.sub s 0 i;
                last = String.sub s (i + 1) (String.length s - i - 1);
              }
          | None -> { Bib.Article.first = ""; last = s })
        author
    in
    let query = Bib.Bib_query.fields ?author ?title ?conf ?year () in
    Printf.printf "query: %s\n" (Bib.Bib_query.to_string query);
    let interactions = ref 0 in
    let run_query q = Bib.Bib_index.search_with_generalization ~interactions index q in
    let results = run_query query in
    (* Exact matching found nothing: validate the fields against the known
       vocabularies and retry (the Section VI misspelling recovery). *)
    let results =
      if results <> [] then results
      else
        match Bib.Spellfix.fix (Bib.Spellfix.of_corpus corpus) query with
        | Bib.Spellfix.Corrected fixed ->
            Printf.printf "no exact match; did you mean: %s\n" (Bib.Bib_query.to_string fixed);
            run_query fixed
        | Bib.Spellfix.Unchanged | Bib.Spellfix.Unfixable -> []
    in
    Printf.printf "%d result(s) in %d interactions\n" (List.length results) !interactions;
    List.iter
      (fun (msd, (file : Storage.Block_store.file)) ->
        Printf.printf "  %-18s %s\n" file.name (Bib.Bib_query.to_string msd))
      results
  in
  let author =
    Arg.(value & opt (some string) None
         & info [ "author" ] ~docv:"\"First Last\"" ~doc:"Author constraint.")
  in
  let title =
    Arg.(value & opt (some string) None & info [ "title" ] ~docv:"TITLE" ~doc:"Title constraint.")
  in
  let conf =
    Arg.(value & opt (some string) None & info [ "conf" ] ~docv:"VENUE" ~doc:"Venue constraint.")
  in
  let year =
    Arg.(value & opt (some int) None & info [ "year" ] ~docv:"YEAR" ~doc:"Year constraint.")
  in
  let scheme =
    Arg.(value & opt scheme_arg Bib.Schemes.Simple
         & info [ "scheme" ] ~docv:"SCHEME" ~doc:"Indexing scheme.")
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Publish a synthetic corpus and search it with field queries")
    Term.(
      const run $ articles_term 1_000 $ nodes_term 50 $ seed_term $ scheme $ author $ title
      $ conf $ year)

(* ------------------------------------------------------------------ *)
(* workload *)

let workload_cmd =
  let run articles queries seed output =
    let corpus = Bib.Corpus.generate ~seed (Bib.Corpus.default_config ~article_count:articles) in
    let gen = Workload.Query_gen.create ~articles:corpus ~seed () in
    let events = Workload.Query_gen.events gen queries in
    match output with
    | Some path ->
        Out_channel.with_open_text path (fun out -> Workload.Trace.save out events);
        Printf.printf "wrote %d queries to %s\n" queries path
    | None ->
        List.iter
          (fun event -> print_endline (Workload.Trace.to_line (Workload.Trace.line_of_event event)))
          events
  in
  let queries =
    Arg.(value & opt int 100 & info [ "queries" ] ~docv:"N" ~doc:"Number of queries.")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write the trace to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Generate a replayable query trace with the Section V-C user model")
    Term.(const run $ articles_term 1_000 $ queries $ seed_term $ output)

(* ------------------------------------------------------------------ *)
(* chord *)

let chord_cmd =
  let run nodes lookups seed fail_fraction =
    let ring = Dht.Chord.create_network ~seed ~node_count:nodes () in
    Printf.printf "ring of %d nodes, converged: %b\n" (Dht.Chord.live_count ring)
      (Dht.Chord.is_converged ring);
    if fail_fraction > 0.0 then begin
      (* Spread failures around the ring: a run of consecutive failures
         longer than the successor list legitimately defeats repair. *)
      let step = Stdlib.max 2 (int_of_float (1.0 /. fail_fraction)) in
      let victims =
        List.filteri (fun i _ -> i mod step = 0) (Dht.Chord.live_keys ring)
      in
      List.iter (Dht.Chord.leave ring) victims;
      Dht.Chord.stabilize ring ~rounds:8;
      Printf.printf "failed %d nodes, repaired: %b\n" (List.length victims)
        (Dht.Chord.is_converged ring)
    end;
    let g = Stdx.Prng.create ~seed:(Int64.add seed 1L) in
    let summary = Stdx.Stats.Summary.create () in
    let correct = ref 0 in
    for _ = 1 to lookups do
      let key = Hashing.Key.random g in
      let owner, hops = Dht.Chord.lookup ring key in
      Stdx.Stats.Summary.add_int summary hops;
      if Hashing.Key.equal owner (Dht.Chord.responsible_oracle ring key) then incr correct
    done;
    Printf.printf "%d lookups: %.2f mean hops (max %.0f), %d/%d correct\n" lookups
      (Stdx.Stats.Summary.mean summary)
      (Stdx.Stats.Summary.max summary)
      !correct lookups
  in
  let lookups =
    Arg.(value & opt int 1_000 & info [ "lookups" ] ~docv:"N" ~doc:"Number of random lookups.")
  in
  let fail_fraction =
    Arg.(value & opt float 0.0
         & info [ "fail" ] ~docv:"F" ~doc:"Fraction of nodes to fail before measuring.")
  in
  Cmd.v
    (Cmd.info "chord" ~doc:"Exercise the Chord substrate")
    Term.(const run $ nodes_term 128 $ lookups $ seed_term $ fail_fraction)

(* ------------------------------------------------------------------ *)
(* metrics *)

let metrics_cmd =
  let run path =
    match Obs.Export.read_metrics ~path with
    | Ok snapshot -> print_string (Obs.Export.render_table snapshot)
    | Error msg ->
        Printf.eprintf "cannot read %s: %s\n" path msg;
        exit 1
  in
  let path =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE"
             ~doc:"Prometheus text file written by simulate --metrics-out.")
  in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Render an exported metrics snapshot as a table")
    Term.(const run $ path)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "Data indexing in peer-to-peer DHT networks (ICDCS 2004), reproduced in OCaml" in
  let info = Cmd.info "p2pindex" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            simulate_cmd;
            experiment_cmd;
            corpus_cmd;
            search_cmd;
            workload_cmd;
            chord_cmd;
            metrics_cmd;
          ]))

(* benchdiff — compare two BENCH_*.json reports and gate on regressions.

   Usage:
     benchdiff [--all] [--threshold PCT] BASELINE.json CURRENT.json

   Exit codes:
     0  no regressions and no missing metrics
     1  at least one regression or missing metric (the gate fails)
     2  usage error, unreadable/unparsable report, or scale mismatch

   The comparison itself lives in {!Obs.Bench_diff}; this is the thin CLI
   the Makefile's bench-smoke target and the CI regression gate call. *)

let usage () =
  prerr_endline
    "usage: benchdiff [--all] [--threshold PCT] BASELINE.json CURRENT.json\n\
     \  --all            print every metric row, not only the noteworthy ones\n\
     \  --threshold PCT  override every per-metric threshold with PCT percent\n\
     exit 0 = pass; 1 = regression or missing metric; 2 = usage/parse error"

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("benchdiff: " ^ msg);
      exit 2)
    fmt

type options = { all : bool; threshold : float option; paths : string list }

let parse_args argv =
  let rec go opts = function
    | [] -> opts
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | "--all" :: rest -> go { opts with all = true } rest
    | "--threshold" :: value :: rest -> (
        match float_of_string_opt value with
        | Some pct when pct >= 0.0 ->
            go { opts with threshold = Some (pct /. 100.0) } rest
        | Some _ | None -> die "--threshold %s: expected a percentage >= 0" value)
    | [ "--threshold" ] -> die "--threshold needs a value (percent)"
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        die "unknown option %S" arg
    | path :: rest -> go { opts with paths = path :: opts.paths } rest
  in
  let opts =
    go { all = false; threshold = None; paths = [] } (List.tl (Array.to_list argv))
  in
  match List.rev opts.paths with
  | [ baseline; current ] -> (opts, baseline, current)
  | other -> die "expected exactly 2 report paths, got %d" (List.length other)

let load path =
  match Obs.Bench_report.read ~path with
  | Ok report -> report
  | Error msg -> die "%s: %s" path msg

let () =
  let opts, baseline_path, current_path = parse_args Sys.argv in
  let baseline = load baseline_path in
  let current = load current_path in
  let threshold_for = Option.map (fun t -> fun _name -> t) opts.threshold in
  match Obs.Bench_diff.compare_reports ?threshold_for ~baseline current with
  | Error msg -> die "%s" msg
  | Ok result ->
      Printf.printf "baseline %s (%s)  vs  current %s (%s)\n"
        baseline.Obs.Bench_report.label baseline_path
        current.Obs.Bench_report.label current_path;
      print_string (Obs.Bench_diff.render ~all:opts.all result);
      exit (if Obs.Bench_diff.ok result then 0 else 1)

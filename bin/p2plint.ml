(* p2plint — determinism & hygiene static analysis for this repository.

   Parses every .ml under lib/, bin/, bench/ and test/ with the compiler
   frontend and runs the pluggable rule set of Lint.Rules over each file.
   Exit status: 0 clean, 1 violations found, 2 usage or I/O error. *)

let usage =
  "p2plint [options] [ROOT]\n\n\
   Static analysis enforcing the repo's determinism contract (see\n\
   DESIGN.md, \"Enforced invariants\").  ROOT defaults to the current\n\
   directory; the scan covers lib/, bin/, bench/ and test/ beneath it.\n\n\
   Options:"

let () =
  let root = ref "." in
  let json_out = ref "" in
  let only = ref "" in
  let disabled = ref [] in
  let dirs = ref Lint.Engine.default_dirs in
  let quiet = ref false in
  let list_rules = ref false in
  let spec =
    [
      ( "--json",
        Arg.Set_string json_out,
        "FILE  also write the JSON report to FILE ('-' for stdout)" );
      ( "--only",
        Arg.Set_string only,
        "RULES  comma-separated rule codes/ids to run (default: all)" );
      ( "--disable",
        Arg.String (fun s -> disabled := s :: !disabled),
        "RULE  disable one rule by code or id (repeatable)" );
      ( "--dirs",
        Arg.String (fun s -> dirs := String.split_on_char ',' s),
        "DIRS  comma-separated sub-directories to scan (default: lib,bin,bench,test)"
      );
      ("--quiet", Arg.Set quiet, " print only the summary line");
      ("--list-rules", Arg.Set list_rules, " list the rule set and exit");
    ]
  in
  let positional = ref [] in
  Arg.parse spec (fun a -> positional := a :: !positional) usage;
  (match !positional with
  | [] -> ()
  | [ r ] -> root := r
  | _ ->
      prerr_endline "p2plint: at most one ROOT argument";
      exit 2);
  if !list_rules then begin
    List.iter
      (fun (r : Lint.Rule.t) -> Printf.printf "%s %s: %s\n" r.code r.id r.summary)
      Lint.Rules.all;
    exit 0
  end;
  let resolve name =
    match Lint.Rules.find name with
    | Some r -> r
    | None ->
        Printf.eprintf "p2plint: unknown rule %S (try --list-rules)\n" name;
        exit 2
  in
  let rules =
    match !only with
    | "" -> Lint.Rules.all
    | names -> List.map resolve (String.split_on_char ',' names)
  in
  let rules =
    List.filter
      (fun (r : Lint.Rule.t) ->
        not
          (List.exists
             (fun name -> Lint.Rule.matches (resolve name) r.code)
             !disabled))
      rules
  in
  if not (Sys.file_exists !root && Sys.is_directory !root) then begin
    Printf.eprintf "p2plint: root %S is not a directory\n" !root;
    exit 2
  end;
  let files, violations = Lint.Engine.lint_tree ~rules ~root:!root ~dirs:!dirs in
  let files_scanned = List.length files in
  let text = Lint.Report.render_text ~files_scanned violations in
  if !quiet then
    (* The summary is the last line of the text report. *)
    let lines = String.split_on_char '\n' (String.trim text) in
    print_endline (List.nth lines (List.length lines - 1))
  else print_string text;
  (match !json_out with
  | "" -> ()
  | "-" -> print_string (Lint.Report.render_json ~files_scanned violations)
  | path ->
      let oc = open_out_bin path in
      output_string oc (Lint.Report.render_json ~files_scanned violations);
      close_out oc);
  exit (if violations = [] then 0 else 1)

(* p2plint — determinism & hygiene static analysis for this repository.

   Parses every .ml under lib/, bin/, bench/ and test/ with the compiler
   frontend and runs the pluggable rule set of Lint.Rules over each file.
   With --typed it additionally loads the .cmt files dune emits under
   _build (run `dune build @check` first) and runs the P-series
   hot-path rules of Lint.Typed_rules over every [@hot] call-graph scope.
   Exit status: 0 clean, 1 violations found, 2 usage or I/O error. *)

let usage =
  "p2plint [options] [ROOT]\n\n\
   Static analysis enforcing the repo's determinism contract (see\n\
   DESIGN.md, \"Enforced invariants\" and \"Typed hot-path invariants\").\n\
   ROOT defaults to the current directory; the scan covers lib/, bin/,\n\
   bench/ and test/ beneath it.\n\n\
   Options:"

let die fmt =
  Printf.ksprintf
    (fun message ->
      prerr_endline ("p2plint: " ^ message);
      exit 2)
    fmt

(* Output paths are validated before any work happens, matching the
   bench CLI convention: a bad extension is a usage error, not a
   surprise after a long run. *)
let check_extension ~flag ~ext path =
  if not (String.equal path "-" || Filename.check_suffix path ext) then
    die "%s %s: use a %s path (or '-' for stdout)" flag path ext

let write_output path contents =
  if String.equal path "-" then print_string contents
  else begin
    let oc = open_out_bin path in
    output_string oc contents;
    close_out oc
  end

let () =
  let root = ref "." in
  let json_out = ref "" in
  let text_out = ref "" in
  let only = ref "" in
  let disabled = ref [] in
  let dirs = ref Lint.Engine.default_dirs in
  let quiet = ref false in
  let list_rules = ref false in
  let typed = ref false in
  let cmt_dirs = ref [] in
  let spec =
    [
      ( "--json-out",
        Arg.Set_string json_out,
        "FILE  write the JSON report to FILE.json ('-' for stdout)" );
      ( "--json",
        Arg.Set_string json_out,
        "FILE  alias for --json-out" );
      ( "--text-out",
        Arg.Set_string text_out,
        "FILE  also write the text report to FILE.txt ('-' for stdout)" );
      ( "--typed",
        Arg.Set typed,
        "  also run the typed P-series over .cmt files (default dir: \
         _build/default under ROOT)" );
      ( "--cmt-dir",
        Arg.String (fun s -> cmt_dirs := s :: !cmt_dirs),
        "DIR  scan DIR recursively for .cmt files (repeatable; implies \
         --typed)" );
      ( "--only",
        Arg.Set_string only,
        "RULES  comma-separated rule codes/ids to run (default: all)" );
      ( "--disable",
        Arg.String (fun s -> disabled := s :: !disabled),
        "RULE  disable one rule by code or id (repeatable)" );
      ( "--dirs",
        Arg.String (fun s -> dirs := String.split_on_char ',' s),
        "DIRS  comma-separated sub-directories to scan (default: lib,bin,bench,test)"
      );
      ("--quiet", Arg.Set quiet, " print only the summary line");
      ("--list-rules", Arg.Set list_rules, " list the rule set and exit");
    ]
  in
  let positional = ref [] in
  Arg.parse spec (fun a -> positional := a :: !positional) usage;
  (match !positional with
  | [] -> ()
  | [ r ] -> root := r
  | _ -> die "at most one ROOT argument");
  if !list_rules then begin
    List.iter
      (fun (r : Lint.Rule.t) -> Printf.printf "%s %s: %s\n" r.code r.id r.summary)
      Lint.Rules.everything;
    exit 0
  end;
  if not (String.equal !json_out "") then
    check_extension ~flag:"--json-out" ~ext:".json" !json_out;
  if not (String.equal !text_out "") then
    check_extension ~flag:"--text-out" ~ext:".txt" !text_out;
  let typed = !typed || !cmt_dirs <> [] in
  let resolve name =
    match Lint.Rules.find name with
    | Some r -> r
    | None -> die "unknown rule %S (try --list-rules)" name
  in
  let rules =
    match !only with
    | "" -> Lint.Rules.everything
    | names -> List.map resolve (String.split_on_char ',' names)
  in
  let rules =
    List.filter
      (fun (r : Lint.Rule.t) ->
        not
          (List.exists
             (fun name -> Lint.Rule.matches (resolve name) r.code)
             !disabled))
      rules
  in
  if not (Sys.file_exists !root && Sys.is_directory !root) then
    die "root %S is not a directory" !root;
  let cmt_dirs =
    if not typed then []
    else begin
      let chosen =
        match !cmt_dirs with
        | [] -> [ Filename.concat !root Lint.Typed_engine.default_cmt_dir ]
        | dirs -> List.rev dirs
      in
      List.iter
        (fun dir ->
          if not (Sys.file_exists dir && Sys.is_directory dir) then
            die "cmt dir %S is not a directory (run `dune build @check`?)" dir)
        chosen;
      chosen
    end
  in
  let known = Lint.Rules.everything in
  let files, violations =
    Lint.Engine.lint_tree ~rules ~known ~root:!root ~dirs:!dirs ()
  in
  let cmts_loaded, violations =
    if not typed then (None, violations)
    else begin
      (* The fixture corpus seeds deliberate violations for the lint's
         own tests; like the syntactic scan, repo runs skip it. *)
      let exclude rel =
        List.exists
          (fun part -> String.equal part "lint_fixtures")
          (String.split_on_char '/' rel)
      in
      let typed_files, typed_violations =
        Lint.Typed_engine.run ~rules ~known ~root:!root ~exclude ~cmt_dirs ()
      in
      ( Some (List.length typed_files),
        List.sort Lint.Rule.compare_violation (violations @ typed_violations)
      )
    end
  in
  let files_scanned = List.length files in
  let text = Lint.Report.render_text ~files_scanned ?cmts_loaded violations in
  if !quiet then
    (* The summary is the last line of the text report. *)
    let lines = String.split_on_char '\n' (String.trim text) in
    print_endline (List.nth lines (List.length lines - 1))
  else print_string text;
  if not (String.equal !text_out "") then write_output !text_out text;
  if not (String.equal !json_out "") then
    write_output !json_out
      (Lint.Report.render_json ~files_scanned ?cmts_loaded violations);
  exit (if violations = [] then 0 else 1)

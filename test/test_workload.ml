(* Workload generator tests: the Section V-C user model. *)

module Query_gen = Workload.Query_gen
module Q = Bib.Bib_query
module Article = Bib.Article

let corpus n = Bib.Corpus.generate ~seed:7L (Bib.Corpus.default_config ~article_count:n)

let queries_always_match_target () =
  let articles = corpus 300 in
  let gen = Query_gen.create ~articles ~seed:1L () in
  for _ = 1 to 2_000 do
    let event = Query_gen.next gen in
    Alcotest.(check bool) "query matches its target" true
      (Q.matches_article event.query event.target)
  done

let structure_mix_matches_bibfinder () =
  let articles = corpus 300 in
  let gen = Query_gen.create ~articles ~seed:2L () in
  let counts = Hashtbl.create 5 in
  let draws = 20_000 in
  for _ = 1 to draws do
    let event = Query_gen.next gen in
    Hashtbl.replace counts event.structure
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts event.structure))
  done;
  let share s = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts s)) /. float_of_int draws in
  let close what observed expected =
    Alcotest.(check bool)
      (Printf.sprintf "%s share %.3f near %.2f" what observed expected)
      true
      (Float.abs (observed -. expected) < 0.02)
  in
  close "author" (share Query_gen.Author) 0.60;
  close "title" (share Query_gen.Title) 0.20;
  close "year" (share Query_gen.Year) 0.10;
  close "author+title" (share Query_gen.Author_title) 0.05;
  close "author+year" (share Query_gen.Author_year) 0.05

let popularity_skew_respected () =
  let articles = corpus 1_000 in
  let gen = Query_gen.create ~articles ~seed:3L () in
  let top = ref 0 in
  let draws = 20_000 in
  for _ = 1 to draws do
    let event = Query_gen.next gen in
    if event.target.Article.id = 1 then incr top
  done;
  let share = float_of_int !top /. float_of_int draws in
  (* Over 1,000 ranks the normalized fitted law gives the top article a
     probability of c / F(1000) = 0.063 / 0.499 ~ 0.126. *)
  Alcotest.(check bool)
    (Printf.sprintf "top article share %.3f near 0.126" share)
    true
    (Float.abs (share -. 0.126) < 0.02)

let author_field_is_primary_author () =
  let articles = corpus 200 in
  let gen = Query_gen.create ~articles ~seed:4L () in
  for _ = 1 to 1_000 do
    let event = Query_gen.next gen in
    match event.query with
    | Q.Fields { author = Some a; _ } ->
        Alcotest.(check bool) "primary author used" true
          (Article.author_equal a (List.hd event.target.Article.authors))
    | Q.Fields _ -> ()
    | Q.Msd _ | Q.Author_last_prefix _ ->
        Alcotest.fail "workload only emits field queries"
  done

let structure_matches_query_shape () =
  let articles = corpus 100 in
  let gen = Query_gen.create ~articles ~seed:5L () in
  for _ = 1 to 1_000 do
    let event = Query_gen.next gen in
    let expected_fields =
      match event.structure with
      | Query_gen.Author -> 1
      | Query_gen.Title -> 1
      | Query_gen.Year -> 1
      | Query_gen.Author_title -> 2
      | Query_gen.Author_year -> 2
      | Query_gen.Author_conf -> 2
      | Query_gen.Author_prefix -> 1
    in
    Alcotest.(check int) "constraint count matches structure" expected_fields
      (Q.constraint_count event.query)
  done

let generation_deterministic () =
  let articles = corpus 100 in
  let a = Query_gen.events (Query_gen.create ~articles ~seed:9L ()) 200 in
  let b = Query_gen.events (Query_gen.create ~articles ~seed:9L ()) 200 in
  Alcotest.(check bool) "same seed, same stream" true
    (List.for_all2
       (fun (x : Query_gen.event) (y : Query_gen.event) ->
         Article.equal x.target y.target && Q.equal x.query y.query)
       a b);
  let c = Query_gen.events (Query_gen.create ~articles ~seed:10L ()) 200 in
  Alcotest.(check bool) "different seed, different stream" true
    (List.exists2 (fun (x : Query_gen.event) (y : Query_gen.event) -> not (Q.equal x.query y.query)) a c)

let custom_mix () =
  let articles = corpus 100 in
  let mix =
    { Query_gen.p_author = 0.0; p_title = 1.0; p_year = 0.0; p_author_title = 0.0;
      p_author_year = 0.0; p_author_conf = 0.0; p_author_prefix = 0.0 }
  in
  (* Zero-weight structures must never be drawn; choose_weighted rejects
     non-positive weights, so the generator filters them. *)
  match Query_gen.create ~mix ~articles ~seed:11L () with
  | gen ->
      for _ = 1 to 100 do
        let event = Query_gen.next gen in
        Alcotest.(check string) "only titles" "title"
          (Query_gen.structure_label event.structure)
      done
  | exception Invalid_argument _ ->
      (* Acceptable alternative: the mix validator rejects zero weights. *)
      ()

let rejects_empty_corpus () =
  Alcotest.check_raises "empty corpus" (Invalid_argument "Query_gen.create: empty corpus")
    (fun () -> ignore (Query_gen.create ~articles:[||] ~seed:1L ()))

let rejects_oversized_popularity () =
  let articles = corpus 10 in
  let popularity = Stdx.Power_law.fitted_cdf ~n:100 () in
  Alcotest.check_raises "support too large"
    (Invalid_argument "Query_gen.create: popularity support exceeds the corpus") (fun () ->
      ignore (Query_gen.create ~popularity ~articles ~seed:1L ()))

(* ------------------------------------------------------------------ *)
(* Traces. *)

let trace_line_roundtrip () =
  let articles = corpus 100 in
  let gen = Query_gen.create ~articles ~seed:21L () in
  for _ = 1 to 200 do
    let event = Query_gen.next gen in
    let line = Workload.Trace.line_of_event event in
    let reparsed = Workload.Trace.of_line (Workload.Trace.to_line line) in
    Alcotest.(check int) "rank survives" line.Workload.Trace.target_rank
      reparsed.Workload.Trace.target_rank;
    Alcotest.(check string) "query survives" line.Workload.Trace.query_string
      reparsed.Workload.Trace.query_string
  done

let trace_replay_reconstructs_events () =
  let articles = corpus 150 in
  let gen = Query_gen.create ~articles ~seed:23L () in
  let events = Query_gen.events gen 300 in
  let lines = List.map Workload.Trace.line_of_event events in
  let replayed = Workload.Trace.replay ~articles lines in
  Alcotest.(check int) "same length" (List.length events) (List.length replayed);
  List.iter2
    (fun (a : Query_gen.event) (b : Query_gen.event) ->
      Alcotest.(check bool) "same target" true (Article.equal a.target b.target);
      Alcotest.(check string) "same query" (Q.to_string a.query) (Q.to_string b.query))
    events replayed

let trace_file_roundtrip () =
  let articles = corpus 80 in
  let gen = Query_gen.create ~articles ~seed:27L () in
  let events = Query_gen.events gen 100 in
  let path = Filename.temp_file "p2pindex" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun out -> Workload.Trace.save out events);
      let lines = In_channel.with_open_text path Workload.Trace.load_lines in
      Alcotest.(check int) "all lines back" 100 (List.length lines);
      let replayed = Workload.Trace.replay ~articles lines in
      List.iter2
        (fun (a : Query_gen.event) (b : Query_gen.event) ->
          Alcotest.(check string) "query preserved through the file"
            (Q.to_string a.query) (Q.to_string b.query))
        events replayed)

let trace_rejects_garbage () =
  List.iter
    (fun input ->
      match Workload.Trace.of_line input with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted malformed line %S" input)
    [ ""; "notanumber\tauthor\tq"; "1\tnostructure\tq"; "1\tauthor"; "-3\tauthor\tq" ]

let trace_detects_wrong_corpus () =
  let articles = corpus 50 in
  let other = Bib.Corpus.generate ~seed:99L (Bib.Corpus.default_config ~article_count:50) in
  let gen = Query_gen.create ~articles ~seed:29L () in
  let lines = List.map Workload.Trace.line_of_event (Query_gen.events gen 50) in
  match Workload.Trace.replay ~articles:other lines with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "replay against a different corpus must fail"

let suite =
  [
    ( "workload:trace",
      [
        Alcotest.test_case "line roundtrip" `Quick trace_line_roundtrip;
        Alcotest.test_case "replay reconstructs events" `Quick trace_replay_reconstructs_events;
        Alcotest.test_case "file roundtrip" `Quick trace_file_roundtrip;
        Alcotest.test_case "garbage rejected" `Quick trace_rejects_garbage;
        Alcotest.test_case "wrong corpus detected" `Quick trace_detects_wrong_corpus;
      ] );
    ( "workload",
      [
        Alcotest.test_case "queries match their targets" `Quick queries_always_match_target;
        Alcotest.test_case "BibFinder mix respected" `Quick structure_mix_matches_bibfinder;
        Alcotest.test_case "popularity skew respected" `Quick popularity_skew_respected;
        Alcotest.test_case "primary author in queries" `Quick author_field_is_primary_author;
        Alcotest.test_case "structure matches shape" `Quick structure_matches_query_shape;
        Alcotest.test_case "deterministic" `Quick generation_deterministic;
        Alcotest.test_case "custom mix" `Quick custom_mix;
        Alcotest.test_case "empty corpus rejected" `Quick rejects_empty_corpus;
        Alcotest.test_case "oversized popularity rejected" `Quick rejects_oversized_popularity;
      ] );
  ]

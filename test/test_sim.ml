(* Simulation harness tests: correctness invariants of the user-session
   walk, the reproduction shapes at reduced scale, and the experiments
   plumbing.  Shapes (orderings, monotone effects) are asserted, not the
   paper's absolute numbers — those are recorded in EXPERIMENTS.md. *)

module Runner = Sim.Runner
module Experiments = Sim.Experiments
module Schemes = Bib.Schemes
module Policy = Cache.Policy

(* A small but non-trivial scale so the whole suite stays fast. *)
let small =
  {
    Runner.default_config with
    node_count = 50;
    article_count = 400;
    query_count = 3_000;
    seed = 7L;
  }

let run ?(scheme = Schemes.Simple) ?(policy = Policy.no_cache) () =
  Runner.run { small with scheme; policy }

let every_session_succeeds () =
  List.iter
    (fun scheme ->
      List.iter
        (fun policy ->
          let r = run ~scheme ~policy () in
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: no unreachable targets" (Schemes.label scheme)
               (Policy.label policy))
            0 r.Runner.unreachable)
        Policy.paper_policies)
    (Schemes.all @ [ Schemes.Complex_ac ])

let determinism () =
  let a = run ~policy:(Policy.lru 10) () in
  let b = run ~policy:(Policy.lru 10) () in
  Alcotest.(check (float 0.0)) "same interactions" (Runner.interactions_mean a)
    (Runner.interactions_mean b);
  Alcotest.(check int) "same traffic" a.Runner.response_bytes b.Runner.response_bytes;
  Alcotest.(check int) "same errors" a.Runner.errors b.Runner.errors

let flat_needs_fewest_interactions () =
  let by scheme = Runner.interactions_mean (run ~scheme ()) in
  let simple = by Schemes.Simple and flat = by Schemes.Flat and complex = by Schemes.Complex in
  Alcotest.(check bool)
    (Printf.sprintf "flat %.2f < simple %.2f" flat simple)
    true (flat < simple);
  Alcotest.(check bool)
    (Printf.sprintf "simple %.2f <= complex %.2f" simple complex)
    true (simple <= complex)

let flat_generates_most_traffic () =
  let by scheme = Runner.normal_traffic_per_query (run ~scheme ()) in
  Alcotest.(check bool) "flat most traffic" true
    (by Schemes.Flat > by Schemes.Simple && by Schemes.Flat > by Schemes.Complex)

let caching_reduces_interactions_and_traffic () =
  List.iter
    (fun scheme ->
      let base = run ~scheme () in
      let cached = run ~scheme ~policy:Policy.single_cache () in
      Alcotest.(check bool) "fewer interactions with cache" true
        (Runner.interactions_mean cached < Runner.interactions_mean base);
      Alcotest.(check bool) "less normal traffic with cache" true
        (Runner.normal_traffic_per_query cached < Runner.normal_traffic_per_query base))
    Schemes.all

let larger_caches_help_more () =
  let hit k = Runner.hit_ratio (run ~policy:(Policy.lru k) ()) in
  let h10 = hit 10 and h20 = hit 20 and h30 = hit 30 in
  Alcotest.(check bool)
    (Printf.sprintf "hit ratio grows: %.2f <= %.2f <= %.2f" h10 h20 h30)
    true
    (h10 <= h20 +. 0.02 && h20 <= h30 +. 0.02);
  let single = Runner.hit_ratio (run ~policy:Policy.single_cache ()) in
  Alcotest.(check bool) "unbounded beats bounded" true (h30 <= single +. 0.02)

let multi_cache_marginal_over_single () =
  let multi = run ~policy:Policy.multi_cache () in
  let single = run ~policy:Policy.single_cache () in
  Alcotest.(check bool) "multi at least as good" true
    (Runner.hit_ratio multi >= Runner.hit_ratio single -. 0.02);
  Alcotest.(check bool) "but within a few points (paper: marginal)" true
    (Runner.hit_ratio multi -. Runner.hit_ratio single < 0.15);
  Alcotest.(check bool) "multi stores more" true
    (Runner.cached_keys_mean multi >= Runner.cached_keys_mean single)

let most_hits_at_first_node () =
  let r = run ~policy:Policy.multi_cache () in
  Alcotest.(check bool)
    (Printf.sprintf "first-node share %.2f > 0.7" (Runner.first_node_hit_share r))
    true
    (Runner.first_node_hit_share r > 0.7)

let lru_respects_capacity () =
  List.iter
    (fun k ->
      let r = run ~policy:(Policy.lru k) () in
      Alcotest.(check bool)
        (Printf.sprintf "max cached %d <= %d" (Runner.cached_keys_max r) k)
        true
        (Runner.cached_keys_max r <= k))
    [ 10; 20; 30 ]

let no_cache_stores_nothing () =
  let r = run () in
  Alcotest.(check int) "no cached keys" 0 (Runner.cached_keys_max r);
  Alcotest.(check int) "no cache traffic" 0 r.Runner.cache_bytes;
  Alcotest.(check int) "no hits" 0 r.Runner.hits

let errors_only_author_year () =
  (* Without caching, errors are exactly the author+year queries (the only
     non-indexed shape in the workload): ~5% of the total. *)
  let r = run () in
  let share = float_of_int r.Runner.errors /. float_of_int small.query_count in
  Alcotest.(check bool)
    (Printf.sprintf "error share %.3f near 0.05" share)
    true
    (Float.abs (share -. 0.05) < 0.015);
  (* Each error costs roughly one extra probe. *)
  Alcotest.(check bool) "about one extra interaction per error" true
    (Stdx.Stats.Summary.mean r.Runner.error_probes < 1.5)

let caching_reduces_errors () =
  let base = (run ()).Runner.errors in
  let single = (run ~policy:Policy.single_cache ()).Runner.errors in
  let lru30 = (run ~policy:(Policy.lru 30) ()).Runner.errors in
  Alcotest.(check bool)
    (Printf.sprintf "single %d < lru30 %d < none %d" single lru30 base)
    true
    (single <= lru30 && lru30 < base)

let traffic_categories_consistent () =
  let r = run ~policy:Policy.single_cache () in
  Alcotest.(check bool) "requests billed" true (r.Runner.request_bytes > 0);
  Alcotest.(check bool) "responses dominate requests" true
    (r.Runner.response_bytes > r.Runner.request_bytes);
  Alcotest.(check bool) "cache traffic present" true (r.Runner.cache_bytes > 0);
  Alcotest.(check bool) "publishing was billed" true (r.Runner.publish_bytes > 0)

let touches_cover_all_interactions () =
  let r = run () in
  let total_touches = Array.fold_left ( + ) 0 r.Runner.node_touches in
  let total_interactions =
    int_of_float (Stdx.Stats.Summary.total r.Runner.interactions)
  in
  Alcotest.(check int) "one touch per interaction" total_interactions total_touches

let substrate_independence () =
  (* The paper's layering claim: index-layer metrics are identical over the
     oracle resolver, Chord, Pastry, CAN and Kademlia — even though the
     ownership rules place keys on different nodes, the number of
     user-system interactions only depends on the index chains. *)
  let static = Runner.run { small with substrate = Runner.Static } in
  let chord = Runner.run { small with substrate = Runner.Chord } in
  let pastry = Runner.run { small with substrate = Runner.Pastry } in
  let can = Runner.run { small with substrate = Runner.Can } in
  let kademlia = Runner.run { small with substrate = Runner.Kademlia } in
  Alcotest.(check (float 1e-9)) "chord: same interactions"
    (Runner.interactions_mean static) (Runner.interactions_mean chord);
  Alcotest.(check int) "chord: same errors" static.Runner.errors chord.Runner.errors;
  Alcotest.(check (float 1e-9)) "pastry: same interactions"
    (Runner.interactions_mean static) (Runner.interactions_mean pastry);
  Alcotest.(check int) "pastry: same errors" static.Runner.errors pastry.Runner.errors;
  Alcotest.(check (float 1e-9)) "CAN: same interactions"
    (Runner.interactions_mean static) (Runner.interactions_mean can);
  Alcotest.(check int) "CAN: same errors" static.Runner.errors can.Runner.errors;
  Alcotest.(check (float 1e-9)) "Kademlia: same interactions"
    (Runner.interactions_mean static) (Runner.interactions_mean kademlia);
  Alcotest.(check int) "Kademlia: same errors" static.Runner.errors kademlia.Runner.errors

let chord_hops_charged_when_asked () =
  let chord =
    Runner.run { small with substrate = Runner.Chord; charge_route_hops = true }
  in
  Alcotest.(check bool) "routing overhead billed as maintenance" true
    (chord.Runner.maintenance_bytes > 0)

let regular_keys_count_entries () =
  let r = run () in
  let total = Array.fold_left ( + ) 0 r.Runner.regular_keys in
  (* mappings + one stored file per article *)
  Alcotest.(check int) "entries = mappings + files" (r.Runner.index_mappings + small.article_count) total

let trace_replay_equals_generation () =
  (* Replaying the trace of the generated workload must reproduce the run
     bit-for-bit. *)
  let articles =
    Bib.Corpus.generate ~seed:small.seed
      (Bib.Corpus.default_config ~article_count:small.article_count)
  in
  let gen =
    Workload.Query_gen.create ~articles
      ~popularity:
        (Stdx.Power_law.fitted_cdf ~alpha:Stdx.Power_law.paper_alpha
           ~n:small.article_count ())
      ~seed:(Int64.add small.seed 1_000_003L) ()
  in
  let events = Workload.Query_gen.events gen small.query_count in
  let generated = Runner.run { small with policy = Policy.lru 20 } in
  let replayed = Runner.run ~events { small with policy = Policy.lru 20 } in
  Alcotest.(check (float 0.0)) "same interactions"
    (Runner.interactions_mean generated) (Runner.interactions_mean replayed);
  Alcotest.(check int) "same hits" generated.Runner.hits replayed.Runner.hits;
  Alcotest.(check int) "same errors" generated.Runner.errors replayed.Runner.errors;
  Alcotest.(check int) "same traffic" generated.Runner.response_bytes
    replayed.Runner.response_bytes

let experiments_quick_scale () =
  let scale =
    { Experiments.node_count = 40; article_count = 200; query_count = 1_000; seed = 3L }
  in
  let grid = Experiments.Grid.create scale in
  (* Every experiment renders without error. *)
  List.iter
    (fun id ->
      Alcotest.(check bool) (Printf.sprintf "experiment %s prints" id) true
        (Experiments.print_experiment grid id))
    Experiments.all_experiment_ids;
  Alcotest.(check bool) "unknown id rejected" false
    (Experiments.print_experiment grid "fig99")

let tiny_scale =
  { Experiments.node_count = 40; article_count = 200; query_count = 1_000; seed = 3L }

let experiments_typed_shapes () =
  let grid = Experiments.Grid.create tiny_scale in
  (* Every figure's typed output has the expected arity. *)
  Alcotest.(check int) "fig7: seven structures (author+conf and author-prefix at weight 0)" 7
    (List.length (Experiments.fig7_query_mix tiny_scale));
  Alcotest.(check int) "fig11: 3 schemes x 5 policies" 15
    (List.length (Experiments.fig11_interactions grid));
  Alcotest.(check int) "fig12: 3 schemes x 6 policies" 18
    (List.length (Experiments.fig12_traffic grid));
  Alcotest.(check int) "fig13: 3 schemes x 5 caching policies" 15
    (List.length (Experiments.fig13_hit_ratio grid));
  Alcotest.(check int) "fig13 first-node: one per scheme" 3
    (List.length (Experiments.fig13_first_node_share grid));
  Alcotest.(check int) "fig14: 3 schemes x 5 caching policies" 15
    (List.length (Experiments.fig14_cache_storage grid));
  Alcotest.(check int) "fig15: three policies" 3
    (List.length (Experiments.fig15_hotspots grid));
  Alcotest.(check int) "table1: 3 policies x 3 schemes" 9
    (List.length (Experiments.table1_errors grid));
  Alcotest.(check int) "storage: three rows" 3
    (List.length (Experiments.storage_overhead grid))

let hotspot_replication_monotone () =
  let rows = Experiments.ablation_hotspot_replication tiny_scale in
  Alcotest.(check int) "four replication levels" 4 (List.length rows);
  let rec check_decreasing = function
    | (a : Experiments.hotspot_replication_row)
      :: (b : Experiments.hotspot_replication_row)
      :: rest ->
        Alcotest.(check bool)
          (Printf.sprintf "busiest %.3f >= %.3f as replicas grow" a.busiest_share
             b.busiest_share)
          true
          (a.busiest_share >= b.busiest_share -. 1e-9);
        Alcotest.(check bool) "imbalance falls" true (a.load_gini >= b.load_gini -. 1e-9);
        check_decreasing (b :: rest)
    | [ _ ] | [] -> ()
  in
  check_decreasing rows

let replication_availability_monotone () =
  let rows = Experiments.ablation_replication tiny_scale in
  (* For a fixed failure fraction, availability grows with replication. *)
  List.iter
    (fun fraction ->
      let series =
        List.filter
          (fun (r : Experiments.replication_row) -> r.failed_fraction = fraction)
          rows
        |> List.sort (fun (a : Experiments.replication_row) b ->
               Int.compare a.replication b.replication)
      in
      let rec check = function
        | (a : Experiments.replication_row) :: (b : Experiments.replication_row) :: rest ->
            Alcotest.(check bool)
              (Printf.sprintf "r=%d availability %.2f <= r=%d %.2f" a.replication
                 a.available_keys b.replication b.available_keys)
              true
              (a.available_keys <= b.available_keys +. 1e-9);
            check (b :: rest)
        | [ _ ] | [] -> ()
      in
      check series)
    [ 0.1; 0.3; 0.5 ]

let fig15_caching_relieves_hotspot () =
  let grid = Experiments.Grid.create tiny_scale in
  match Experiments.fig15_hotspots grid with
  | [ no_cache; single; _lru ] ->
      let busiest s = List.assoc 1 s.Experiments.share_by_rank in
      Alcotest.(check bool)
        (Printf.sprintf "single %.3f <= no-cache %.3f" (busiest single) (busiest no_cache))
        true
        (busiest single <= busiest no_cache +. 0.01)
  | _ -> Alcotest.fail "expected three hotspot series"

let scheme_variant_ablation () =
  match Experiments.ablation_scheme_variants tiny_scale with
  | [ complex; complex_ac ] ->
      Alcotest.(check bool) "entry point removes errors" true
        (complex_ac.Experiments.non_indexed_errors < complex.Experiments.non_indexed_errors);
      Alcotest.(check bool) "entry point shortens lookups" true
        (complex_ac.Experiments.interactions <= complex.Experiments.interactions +. 1e-9);
      Alcotest.(check bool) "entry point costs storage" true
        (complex_ac.Experiments.index_megabytes > complex.Experiments.index_megabytes)
  | rows -> Alcotest.failf "expected 2 scheme rows, got %d" (List.length rows)

let experiments_grid_memoizes () =
  let scale =
    { Experiments.node_count = 40; article_count = 200; query_count = 500; seed = 3L }
  in
  let grid = Experiments.Grid.create scale in
  let a = Experiments.Grid.report grid ~scheme:Schemes.Simple ~policy:Policy.no_cache in
  let b = Experiments.Grid.report grid ~scheme:Schemes.Simple ~policy:Policy.no_cache in
  (* lint: allow phys-equal — the memoization contract under test is physical identity *)
  Alcotest.(check bool) "same physical report" true (a == b)

let storage_ordering () =
  let scale =
    { Experiments.node_count = 40; article_count = 400; query_count = 10; seed = 5L }
  in
  let grid = Experiments.Grid.create scale in
  match Experiments.storage_overhead grid with
  | [ simple; flat; complex ] ->
      Alcotest.(check string) "rows ordered" "Simple" simple.Experiments.scheme;
      Alcotest.(check bool) "simple cheapest" true
        (simple.Experiments.index_bytes < complex.Experiments.index_bytes);
      Alcotest.(check bool) "flat most expensive" true
        (complex.Experiments.index_bytes < flat.Experiments.index_bytes);
      Alcotest.(check bool) "index is a small fraction of data" true
        (simple.Experiments.index_to_data_ratio < 0.02)
  | rows -> Alcotest.failf "expected 3 storage rows, got %d" (List.length rows)

let suite =
  [
    ( "sim:walk",
      [
        Alcotest.test_case "every session succeeds" `Slow every_session_succeeds;
        Alcotest.test_case "deterministic" `Quick determinism;
        Alcotest.test_case "touches cover interactions" `Quick touches_cover_all_interactions;
        Alcotest.test_case "regular keys count entries" `Quick regular_keys_count_entries;
        Alcotest.test_case "trace replay equals generation" `Quick
          trace_replay_equals_generation;
      ] );
    ( "sim:shapes",
      [
        Alcotest.test_case "flat fewest interactions" `Quick flat_needs_fewest_interactions;
        Alcotest.test_case "flat most traffic" `Quick flat_generates_most_traffic;
        Alcotest.test_case "caching helps" `Quick caching_reduces_interactions_and_traffic;
        Alcotest.test_case "larger caches help more" `Slow larger_caches_help_more;
        Alcotest.test_case "multi marginal over single" `Quick multi_cache_marginal_over_single;
        Alcotest.test_case "hits concentrate at first node" `Quick most_hits_at_first_node;
        Alcotest.test_case "LRU capacity respected" `Slow lru_respects_capacity;
        Alcotest.test_case "no-cache stores nothing" `Quick no_cache_stores_nothing;
        Alcotest.test_case "errors are author+year" `Quick errors_only_author_year;
        Alcotest.test_case "caching reduces errors" `Quick caching_reduces_errors;
        Alcotest.test_case "traffic categories" `Quick traffic_categories_consistent;
      ] );
    ( "sim:substrate",
      [
        Alcotest.test_case "substrate independence" `Slow substrate_independence;
        Alcotest.test_case "chord hops charged" `Slow chord_hops_charged_when_asked;
      ] );
    ( "sim:experiments",
      [
        Alcotest.test_case "all experiments print" `Slow experiments_quick_scale;
        Alcotest.test_case "grid memoizes" `Quick experiments_grid_memoizes;
        Alcotest.test_case "storage ordering" `Quick storage_ordering;
        Alcotest.test_case "typed output shapes" `Slow experiments_typed_shapes;
        Alcotest.test_case "hotspot replication monotone" `Quick hotspot_replication_monotone;
        Alcotest.test_case "replication availability monotone" `Quick
          replication_availability_monotone;
        Alcotest.test_case "caching relieves the hotspot" `Slow fig15_caching_relieves_hotspot;
        Alcotest.test_case "scheme variant ablation" `Quick scheme_variant_ablation;
      ] );
  ]

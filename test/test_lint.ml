(* The p2plint analyzer: fixture corpus with seeded violations, report
   determinism, and the repo's own self-lint invariant.

   The fixture corpus lives in test/lint_fixtures (declared as a source_tree
   dependency of this test, so it is present next to the executable); the
   self-lint test walks upward from the working directory to the nearest
   tree that looks like the repo root (dune-project + lib/), which inside
   _build is the sandboxed copy of the sources. *)

let contains_substring haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec scan i = i + ln <= lh && (String.equal (String.sub haystack i ln) needle || scan (i + 1)) in
  scan 0

let fixture_root () =
  let candidate = Filename.concat (Sys.getcwd ()) "lint_fixtures" in
  if Sys.file_exists candidate && Sys.is_directory candidate then Some candidate
  else None

let repo_root () =
  let rec search dir =
    if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lib")
      && Sys.is_directory (Filename.concat dir "lib")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else search parent
  in
  search (Sys.getcwd ())

let lint root dirs = Lint.Engine.lint_tree ~rules:Lint.Rules.all ~root ~dirs

(* ------------------------------------------------------------------ *)
(* Fixture corpus: exact report over the seeded positives, silence over
   the negatives. *)

let expected_fixture_report =
  "bin/d1_bad.ml:2:14: D1 ambient-nondeterminism: `Random.int` is ambient \
   nondeterminism; thread a seeded Stdx.Prng (or a virtual clock) instead\n\
   bin/d1_bad.ml:4:13: D1 ambient-nondeterminism: `Unix.gettimeofday` is ambient \
   nondeterminism; thread a seeded Stdx.Prng (or a virtual clock) instead\n\
   bin/d1_bad.ml:6:14: D1 ambient-nondeterminism: `Random.self_init` is ambient \
   nondeterminism; thread a seeded Stdx.Prng (or a virtual clock) instead\n\
   bin/d2_bad.ml:2:15: D2 unordered-iteration: Hashtbl.fold visits bindings in \
   nondeterministic bucket order and this accumulator is order-sensitive; use \
   Stdx.Det_tbl.fold_sorted (or sorted_keys / sorted_bindings)\n\
   bin/d2_bad.ml:4:15: D2 unordered-iteration: Hashtbl.iter visits bindings in \
   nondeterministic bucket order; use Stdx.Det_tbl.iter_sorted\n\
   bin/d3_bad.ml:2:17: D3 phys-equal: physical equality (==) depends on value \
   representation; use structural (dis)equality or suppress with the identity \
   argument spelled out\n\
   bin/d3_bad.ml:4:13: D3 phys-equal: `Obj.magic` defeats the type system\n\
   bin/e1_bad.ml:2:39: E1 catch-all-handler: `with _ ->` swallows unexpected \
   exceptions; match the specific exceptions the expression can raise\n\
   bin/e1_bad.ml:4:32: E1 catch-all-handler: `with Failure _ ->` swallows \
   unexpected exceptions; match the specific exceptions the expression can raise\n\
   bin/o1_bad.ml:2:52: O1 metric-naming: metric name \"lookup_count\": must be \
   p2pindex_<subsystem>_<name> in lower_snake_case\n\
   bin/o1_bad.ml:4:54: O1 metric-naming: metric name \
   \"p2pindex_queue_depth_seconds\": gauges take no _total/_seconds unit suffix\n\
   bin/s1_bad.ml:2:0: S1 bad-suppression: suppression of \"phys-equal\" lacks a \
   justification (write \"phys-equal — why it is safe\")\n\
   bin/s1_bad.ml:3:22: D3 phys-equal: physical equality (==) depends on value \
   representation; use structural (dis)equality or suppress with the identity \
   argument spelled out\n\
   lib/h1_bad.ml:1:0: H1 missing-mli: module has no interface; add h1_bad.mli\n\
   p2plint: 14 violations in 7 files (13 files scanned)\n"

let fixtures_exact_report () =
  match fixture_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let files, violations = lint root [ "lib"; "bin" ] in
      let rendered =
        Lint.Report.render_text ~files_scanned:(List.length files) violations
      in
      Alcotest.(check string) "exact text report" expected_fixture_report rendered

let fixtures_negatives_are_clean () =
  match fixture_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let _files, violations = lint root [ "lib"; "bin" ] in
      List.iter
        (fun (v : Lint.Rule.violation) ->
          Alcotest.(check bool)
            (Printf.sprintf "violation only in *_bad fixtures (%s)" v.file)
            false
            (contains_substring v.file "_ok"))
        violations

let fixtures_cover_every_rule () =
  match fixture_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let _files, violations = lint root [ "lib"; "bin" ] in
      let hit code = List.exists (fun (v : Lint.Rule.violation) -> String.equal v.code code) violations in
      List.iter
        (fun code -> Alcotest.(check bool) (code ^ " fires") true (hit code))
        [ "D1"; "D2"; "D3"; "E1"; "H1"; "O1"; "S1" ]

(* ------------------------------------------------------------------ *)
(* Determinism: two full runs render byte-identical reports. *)

let reports_are_deterministic () =
  match fixture_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let render () =
        let files, violations = lint root [ "lib"; "bin" ] in
        let n = List.length files in
        (Lint.Report.render_text ~files_scanned:n violations,
         Lint.Report.render_json ~files_scanned:n violations)
      in
      let text_a, json_a = render () in
      let text_b, json_b = render () in
      Alcotest.(check string) "text byte-identical across runs" text_a text_b;
      Alcotest.(check string) "json byte-identical across runs" json_a json_b;
      Alcotest.(check bool) "json is one line plus newline" true
        (String.length json_a > 0
        && json_a.[String.length json_a - 1] = '\n'
        && not (String.contains (String.sub json_a 0 (String.length json_a - 1)) '\n'));
      Alcotest.(check bool) "json carries the version marker" true
        (contains_substring json_a "\"version\":1")

(* ------------------------------------------------------------------ *)
(* The enforced invariant: the repository lints clean. *)

let repo_self_lints_clean () =
  match repo_root () with
  | None -> Alcotest.skip ()
  | Some root ->
      let files, violations = lint root Lint.Engine.default_dirs in
      Alcotest.(check bool) "scanned a real tree" true (List.length files > 50);
      let rendered =
        Lint.Report.render_text ~files_scanned:(List.length files) violations
      in
      Alcotest.(check string)
        (Printf.sprintf "repo at %s lints clean" root)
        (Printf.sprintf "p2plint: clean (%d files scanned)\n" (List.length files))
        rendered

let suite =
  [
    ( "lint:fixtures",
      [
        Alcotest.test_case "exact report over the corpus" `Quick fixtures_exact_report;
        Alcotest.test_case "negatives stay silent" `Quick fixtures_negatives_are_clean;
        Alcotest.test_case "every rule has a firing positive" `Quick fixtures_cover_every_rule;
      ] );
    ( "lint:determinism",
      [ Alcotest.test_case "byte-identical re-renders" `Quick reports_are_deterministic ] );
    ( "lint:self",
      [ Alcotest.test_case "repository lints clean" `Quick repo_self_lints_clean ] );
  ]
